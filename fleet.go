package bolt

import (
	"fmt"
	"time"

	"bolt/internal/fleet"
	"bolt/internal/serve"
)

// Fleet-layer re-exports. The router, autoscaler, and failure
// injector live in internal/fleet; NewFleet wires them to this
// package's compilation pipeline and one shared tuning-log cache —
// which is what lets a replica added at runtime compile its tenants'
// variants measurement-free from its peers' entries.
type (
	// FleetReplica sizes one replica's worker pool (Workers homogeneous
	// streams, or one worker per Devices entry).
	FleetReplica = fleet.ReplicaConfig
	// HedgeOptions configures duplicate requests on at-risk deadlines.
	HedgeOptions = fleet.HedgeOptions
	// AutoscaleOptions drives backlog-based fleet sizing.
	AutoscaleOptions = fleet.AutoscaleOptions
	// FailurePlan seeds random fault injection across the fleet.
	FailurePlan = fleet.FailurePlan
	// BatchFault is one injected fault decision (kill or stall) for one
	// dispatched batch.
	BatchFault = serve.BatchFault
	// FleetResult is one completed fleet request: the replica's
	// ServeResult plus the routing story (replica, hedged, retried).
	FleetResult = fleet.Result
	// FleetStats is a fleet snapshot: per-replica rows (each with its
	// full ServeStats) summing exactly to the aggregate, plus
	// router-level hedge/retry and autoscale counters.
	FleetStats = fleet.Stats
	// FleetReplicaStats is one replica's row in FleetStats.
	FleetReplicaStats = fleet.ReplicaStats
)

// Fleet errors (test with errors.Is).
var (
	// ErrFleetClosed is returned by fleet calls after Close.
	ErrFleetClosed = fleet.ErrClosed
	// ErrNoReplica is returned when no live replica can take a request.
	ErrNoReplica = fleet.ErrNoReplica
	// ErrInjectedKill is the default error injected kills answer
	// batches with.
	ErrInjectedKill = fleet.ErrInjectedKill
)

// FleetOptions configures a Fleet: the initial replica pools, the
// per-replica serving knobs, the shared compilation cache, and the
// robustness machinery (hedging, autoscaling, fault injection).
type FleetOptions struct {
	// Replicas are the initial replica pools. Nil means one single
	// homogeneous worker. Each entry sets Workers or Devices, not both
	// (the same rule as ServerOptions).
	Replicas []FleetReplica
	// QueueDepth, BatchWindow and Jobs apply to every replica exactly
	// as the same-named ServerOptions fields do to one server.
	QueueDepth  int
	BatchWindow time.Duration
	Jobs        int
	// CacheFile backs every replica's variant compiles with one
	// persistent tuning-log database, shared fleet-wide: any bucket any
	// replica ever profiled recompiles measurement-free everywhere —
	// including on replicas the autoscaler adds mid-run, which warm
	// entirely from their peers' entries.
	CacheFile string
	// Hedge configures duplicate requests when a deadline is at risk:
	// after Hedge.Timeout on the wall clock (or immediately, when the
	// chosen replica's modeled backlog exceeds Hedge.BacklogSeconds)
	// the request is duplicated on a second replica; the first healthy
	// result wins and the loser is drained and counted.
	Hedge HedgeOptions
	// Autoscale grows the fleet on sustained modeled backlog and
	// shrinks it when idle; replicas it spawns redeploy every tenant
	// through the regular Deploy lifecycle and warm before routing.
	Autoscale AutoscaleOptions
	// Failures seeds the random failure injector; scripted
	// deterministic faults go through Fleet.InjectFault regardless.
	Failures *FailurePlan
	// Trace, when set, records every replica's request-lifecycle spans
	// plus the router's route/hedge/retry spans into the tracer.
	// Tracing never touches the simulated clocks.
	Trace *Tracer
	// TraceLabel names the router's process in the exported trace
	// ("fleet" when empty; replicas are always "replica N").
	TraceLabel string
}

// Fleet is the replicated serving endpoint: N Server-equivalent
// replicas behind an EFT-backlog router, sharing one tuning log and
// one compilation pipeline. See internal/fleet for the routing,
// hedging, and autoscaling semantics; this wrapper adds the bolt
// compilation story (precision gate included) on top.
type Fleet struct {
	dev  *Device
	opts FleetOptions
	flt  *fleet.Fleet
	pipe *tenantPipeline
}

// NewFleet starts a fleet of replicas over dev (replicas with Devices
// entries model those instead, exactly like ServerOptions.Devices).
// Models are added with Deploy; Close drains every replica and
// persists the shared tuning log.
func NewFleet(dev *Device, opts FleetOptions) (*Fleet, error) {
	if len(opts.Replicas) == 0 {
		opts.Replicas = []FleetReplica{{Workers: 1}}
	}
	// Same-named devices must agree fleet-wide, not just within one
	// replica: every replica compiles through one shared tuning log
	// whose keys are device-name-scoped.
	byName := make(map[string]*Device)
	for i, rc := range opts.Replicas {
		if rc.Workers > 0 && len(rc.Devices) > 0 {
			return nil, fmt.Errorf("bolt: FleetOptions.Replicas[%d]: Workers (%d) and Devices (%d entries) are mutually exclusive — set exactly one of them",
				i, rc.Workers, len(rc.Devices))
		}
		if err := validateDeviceList(fmt.Sprintf("FleetOptions.Replicas[%d].Devices", i), rc.Devices, byName); err != nil {
			return nil, err
		}
	}
	if g := opts.Autoscale.Grow; g.Workers > 0 && len(g.Devices) > 0 {
		return nil, fmt.Errorf("bolt: FleetOptions.Autoscale.Grow: Workers (%d) and Devices (%d entries) are mutually exclusive — set exactly one of them",
			g.Workers, len(g.Devices))
	} else if err := validateDeviceList("FleetOptions.Autoscale.Grow.Devices", g.Devices, byName); err != nil {
		return nil, err
	}
	cp, err := newCachePersister(opts.CacheFile)
	if err != nil {
		return nil, err
	}
	gateDev := dev
	if len(opts.Replicas[0].Devices) > 0 {
		gateDev = opts.Replicas[0].Devices[0]
	}
	f := &Fleet{dev: dev, opts: opts, pipe: &tenantPipeline{
		dev:     dev,
		gateDev: gateDev,
		cp:      cp,
		jobs:    opts.Jobs,
		reports: make(map[string]DeployReport),
	}}
	f.flt = fleet.New(fleet.Options{
		Replicas:    opts.Replicas,
		QueueDepth:  opts.QueueDepth,
		BatchWindow: opts.BatchWindow,
		CompileJobs: opts.Jobs,
		Hedge:       opts.Hedge,
		Autoscale:   opts.Autoscale,
		Failures:    opts.Failures,
		Trace:       opts.Trace,
		TraceLabel:  opts.TraceLabel,
		// Closing the fleet flushes the shared tuning log, mirroring
		// Server.
		OnClose: func() { _ = cp.persist() },
	})
	return f, nil
}

// Deploy registers a model on every live replica — and on every
// replica the autoscaler adds later, which warms it measurement-free
// from the shared tuning log. Precision requests are gated once,
// fleet-wide (numerics are schedule-independent, so one gate decision
// holds for every replica).
func (f *Fleet) Deploy(name string, g *Graph, opts DeployOptions) error {
	compile, sopts, err := f.pipe.tenantCompiler(name, g, opts)
	if err != nil {
		return err
	}
	return f.flt.Deploy(name, compile, sopts)
}

// DeployReport returns the precision-gate outcome for a model
// deployed with a non-default DeployOptions.Precision (see
// Server.DeployReport).
func (f *Fleet) DeployReport(name string) (DeployReport, bool) {
	return f.pipe.report(name)
}

// Undeploy removes a model from every live replica.
func (f *Fleet) Undeploy(name string) error { return f.flt.Undeploy(name) }

// Warm compiles a model's variants on every live replica (all its
// buckets when none are named). The first replica profiles; the rest
// hit the shared tuning log.
func (f *Fleet) Warm(model string, buckets ...int) error {
	return f.flt.Warm(model, buckets...)
}

// Infer routes one single-sample request to the replica with the
// lowest modeled EFT backlog and blocks until its batch completes
// (hedging and retries included — a killed batch surfaces here only
// if every attempt failed).
func (f *Fleet) Infer(model string, inputs map[string]*Tensor, opts InferOptions) (*Tensor, error) {
	return f.flt.Infer(model, inputs, opts)
}

// InferAsync routes one request and returns the channel its
// FleetResult arrives on. Exactly one result is delivered per
// request, whatever hedges, retries, or faults happen behind it.
func (f *Fleet) InferAsync(model string, inputs map[string]*Tensor, opts InferOptions) (<-chan FleetResult, error) {
	return f.flt.InferAsync(model, inputs, opts)
}

// Replicas returns the number of live replicas.
func (f *Fleet) Replicas() int { return f.flt.Replicas() }

// Grow spawns one replica (AutoscaleOptions.Grow's pool, defaulting
// to the first configured replica), deploys and warms every tenant on
// it from the shared tuning log, and adds it to the routing set.
func (f *Fleet) Grow() (int, error) { return f.flt.Grow() }

// Shrink retires the newest live replica after draining it.
func (f *Fleet) Shrink() (int, error) { return f.flt.Shrink() }

// PollAutoscale samples the backlog once and applies the sizing
// policy (for deterministic, caller-paced autoscaling; set
// AutoscaleOptions.Interval for background polling).
func (f *Fleet) PollAutoscale() (grew, shrank bool) { return f.flt.PollAutoscale() }

// InjectFault scripts a fault (kill or stall) for the next count
// batches dispatched to one worker of one replica — the seedable,
// deterministic face of the failure injector.
func (f *Fleet) InjectFault(replica, worker, count int, fault BatchFault) {
	f.flt.InjectFault(replica, worker, count, fault)
}

// Stats snapshots the fleet: per-replica rows plus their exact
// aggregate (quiesce first when exact sums matter).
func (f *Fleet) Stats() FleetStats { return f.flt.Stats() }

// Snapshot renders the fleet's always-on metrics as a deterministic
// text exposition: every replica's rows merged (counters add,
// histograms merge) plus the router's hedge/retry/autoscale counters.
// Works whether or not tracing is enabled.
func (f *Fleet) Snapshot() string { return f.flt.Snapshot() }

// Close stops accepting requests, drains every replica, and persists
// the shared tuning log, returning the outcome of that final persist.
// Safe to call more than once.
func (f *Fleet) Close() error {
	f.flt.Close()
	return f.pipe.cp.lastErr()
}
