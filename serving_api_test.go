package bolt_test

// Multi-tenant server validation (PR 4): the two-tenant -race stress
// required by the acceptance criteria (outputs bit-identical to
// per-model RunUnplanned, no tenant starved under equal offered load,
// high-priority tail no worse than bulk), plus lifecycle
// (Deploy/Undeploy/Close) and the shared tuning-log persistence fix.
// Run with -race.

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bolt"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// buildTinyMLP is a second tenant architecture: a pure GEMM chain over
// 64 features.
func buildTinyMLP() *bolt.Graph {
	b := bolt.NewBuilder()
	x := b.Input("x", bolt.FP16, 1, 64)
	h := b.Dense(x, b.Weight("w1", 64, 32))
	h = b.Activation(h, bolt.ReLU)
	d := b.Dense(h, b.Weight("w2", 32, 8))
	return b.Build(b.Softmax(d))
}

func mlpInput(seed int64) map[string]*bolt.Tensor {
	in := bolt.NewTensor(bolt.FP16, 1, 64)
	in.FillRandom(seed, 1)
	return map[string]*bolt.Tensor{"x": in}
}

// TestServerTwoTenantFairnessStress is the PR-4 acceptance stress: two
// symmetric tenants (equal-cost models, equal offered load, mixed
// priorities) on one shared worker pool. Every batched output must be
// bit-identical to the per-model RunUnplanned oracle, and neither
// tenant may starve (per-tenant throughput within 2x of the other).
func TestServerTwoTenantFairnessStress(t *testing.T) {
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Workers: 2, BatchWindow: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tenants := []string{"tenant-a", "tenant-b"}
	for _, name := range tenants {
		if err := srv.Deploy(name, buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
			t.Fatal(err)
		}
	}

	// Per-model clone-based oracle over a separately compiled module.
	oracleRes, err := bolt.Compile(buildTiny1(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const perTenant = 12
	inputs := make([]map[string]*bolt.Tensor, perTenant)
	oracle := make([]*bolt.Tensor, perTenant)
	for i := range inputs {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*bolt.Tensor{"image": in}
		oracle[i] = oracleRes.Module.RunUnplanned(inputs[i])
	}

	var wg sync.WaitGroup
	for _, name := range tenants {
		for i := 0; i < perTenant; i++ {
			pri := bolt.PriorityBulk
			if i%3 == 0 {
				pri = bolt.PriorityHigh
			}
			wg.Add(1)
			go func(name string, i int, pri bolt.Priority) {
				defer wg.Done()
				out, err := srv.Infer(name, inputs[i], bolt.InferOptions{Priority: pri})
				if err != nil {
					t.Errorf("%s request %d: %v", name, i, err)
					return
				}
				if d := tensor.MaxAbsDiff(out, oracle[i]); d != 0 {
					t.Errorf("%s request %d: diff %g from per-model RunUnplanned oracle", name, i, d)
				}
			}(name, i, pri)
		}
	}
	wg.Wait()

	var thr [2]float64
	for k, name := range tenants {
		st, ok := srv.ModelStats(name)
		if !ok {
			t.Fatalf("missing stats for %s", name)
		}
		if st.Requests != perTenant {
			t.Errorf("%s served %d requests, want %d", name, st.Requests, perTenant)
		}
		if st.SimMakespan <= 0 || st.Throughput() <= 0 {
			t.Fatalf("%s starved: %+v", name, st)
		}
		thr[k] = st.Throughput()
	}
	if ratio := thr[0] / thr[1]; ratio > 2 || ratio < 0.5 {
		t.Errorf("tenant throughput ratio %.2fx under equal offered load, want within 2x", ratio)
	}
	agg := srv.Stats()
	if agg.Requests != 2*perTenant {
		t.Errorf("aggregate requests %d, want %d", agg.Requests, 2*perTenant)
	}
	hi, bulk := agg.PriorityPercentile(bolt.PriorityHigh, 99), agg.PriorityPercentile(bolt.PriorityBulk, 99)
	if hi <= 0 || bulk <= 0 {
		t.Fatalf("missing per-priority latency windows: high %g bulk %g", hi, bulk)
	}
	// The high-p99 <= bulk-p99 SLO is asserted where arrival order is
	// deterministic (the serve-level preemption test and the
	// BENCH_pr4.json smoke); under this unordered goroutine flood a
	// late-arriving high request can legitimately land on a
	// deep-clocked worker, so here it is informational only.
	t.Logf("p99 under unordered flood: high %.1fus, bulk %.1fus", hi*1e6, bulk*1e6)
}

// TestServerMixedArchitectureLifecycle deploys two different
// architectures, checks both serve bit-identical results, then walks
// the lifecycle: Undeploy removes one tenant without disturbing the
// other, Close rejects everything.
func TestServerMixedArchitectureLifecycle(t *testing.T) {
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Deploy("cnn", buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Deploy("mlp", buildTinyMLP(), bolt.DeployOptions{Buckets: []int{1, 2}, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Models(); len(got) != 2 || got[0] != "cnn" || got[1] != "mlp" {
		t.Errorf("Models() = %v, want [cnn mlp]", got)
	}

	cnnOracle, err := bolt.Compile(buildTiny1(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mlpOracle, err := bolt.Compile(buildTinyMLP(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cnnIn := map[string]*bolt.Tensor{"image": bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)}
	cnnIn["image"].FillRandom(5, 1)
	mlpIn := mlpInput(6)

	out, err := srv.Infer("cnn", cnnIn, bolt.InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(out, cnnOracle.Module.RunUnplanned(cnnIn)); d != 0 {
		t.Errorf("cnn output differs from oracle by %g", d)
	}
	out, err = srv.Infer("mlp", mlpIn, bolt.InferOptions{Priority: bolt.PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(out, mlpOracle.Module.RunUnplanned(mlpIn)); d != 0 {
		t.Errorf("mlp output differs from oracle by %g", d)
	}
	if _, err := srv.Infer("ghost", mlpIn, bolt.InferOptions{}); !errors.Is(err, bolt.ErrNotDeployed) {
		t.Errorf("unknown model = %v, want ErrNotDeployed", err)
	}

	if err := srv.Undeploy("mlp"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Infer("mlp", mlpIn, bolt.InferOptions{}); !errors.Is(err, bolt.ErrNotDeployed) {
		t.Errorf("undeployed model = %v, want ErrNotDeployed", err)
	}
	if _, err := srv.Infer("cnn", cnnIn, bolt.InferOptions{}); err != nil {
		t.Errorf("surviving tenant broken after Undeploy: %v", err)
	}
	if agg := srv.Stats(); agg.Requests != 3 {
		t.Errorf("aggregate requests %d, want 3 (undeployed traffic stays counted)", agg.Requests)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Infer("cnn", cnnIn, bolt.InferOptions{}); !errors.Is(err, bolt.ErrServeClosed) {
		t.Errorf("Infer after Close = %v, want ErrServeClosed", err)
	}
}

// TestServerSharedTuningCache pins the tunelog satellite: the server
// loads the cache file once, concurrent Warm compiles share the one
// in-memory log, and nothing is lost to the old per-compile load→save
// race — after Close the file holds every variant's workloads, and a
// second server warms from it without growing it.
func TestServerSharedTuningCache(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "tune.json")
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Workers: 1, Jobs: 4, CacheFile: cacheFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Deploy("m", buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	// Concurrent warm across all buckets: every compile records into
	// the shared log.
	if err := srv.Warm("m"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	loadLog := func() *tunelog.Log {
		t.Helper()
		f, err := os.Open(cacheFile)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		log := tunelog.New()
		if err := log.Load(f); err != nil {
			t.Fatal(err)
		}
		return log
	}
	cold := loadLog()
	if cold.Len() == 0 {
		t.Fatal("cache file holds no entries after concurrent Warm + Close")
	}

	// A second server over the same file recompiles measurement-free:
	// the database must not grow.
	srv2, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Workers: 1, Jobs: 4, CacheFile: cacheFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Deploy("m", buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Warm("m"); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	if warm := loadLog(); warm.Len() != cold.Len() {
		t.Errorf("warm recompile grew the cache from %d to %d entries (cache misses)", cold.Len(), warm.Len())
	}

	// The compatibility wrapper shares the persistence path: an Engine
	// closed through serve.Engine.Close must still flush the log (the
	// server's OnClose hook).
	engCache := filepath.Join(t.TempDir(), "eng.json")
	eng, err := bolt.NewEngine(buildTiny1(), bolt.T4(), bolt.ServeOptions{
		Buckets: []int{1, 2}, CacheFile: engCache, Jobs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Warm(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if fi, err := os.Stat(engCache); err != nil || fi.Size() == 0 {
		t.Errorf("NewEngine cache not persisted through Close: %v", err)
	}
}
