package bolt_test

import (
	"os"
	"path/filepath"
	"testing"

	"bolt"
)

// buildBERTish constructs a multi-GEMM encoder slice at BERT-base
// dimensions (batch 32, seq 40): several projection GEMMs sharing one
// shape plus the two FFN GEMMs — the workload mix of paper Figure 1.
func buildBERTish() *bolt.Graph {
	b := bolt.NewBuilder()
	x := b.Input("x", bolt.FP16, 1280, 768)
	q := b.Dense(x, b.Weight("wq", 768, 768))
	k := b.Dense(x, b.Weight("wk", 768, 768))
	v := b.Dense(x, b.Weight("wv", 768, 768))
	attn := b.Add(b.Add(q, k), v)
	attn = b.Dense(attn, b.Weight("wo", 768, 768))
	f := b.Dense(attn, b.Weight("w1", 768, 3072))
	f = b.Activation(f, bolt.GELU)
	f = b.Dense(f, b.Weight("w2", 3072, 768))
	return b.Build(b.Add(attn, f))
}

// buildAttentionHeads builds a model whose 12 attention-projection
// GEMMs are all the same workload — dedup must profile it once.
func buildAttentionHeads() *bolt.Graph {
	b := bolt.NewBuilder()
	x := b.Input("x", bolt.FP16, 1280, 768)
	sum := b.Dense(x, b.Weight("w0", 768, 768))
	for i := 1; i < 12; i++ {
		h := b.Dense(x, b.Weight("w"+string(rune('a'+i)), 768, 768))
		sum = b.Add(sum, h)
	}
	return b.Build(sum)
}

// TestWarmCacheRecompileMeasuresNothing: a second compile of the same
// model through a CacheFile must resolve every workload from the log
// and perform zero profiler measurements.
func TestWarmCacheRecompileMeasuresNothing(t *testing.T) {
	dev := bolt.T4()
	cache := filepath.Join(t.TempDir(), "tune.json")

	cold, err := bolt.Compile(buildTiny(), dev, bolt.Options{CacheFile: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Tuning.Measurements == 0 || cold.Tuning.ProfiledWorkloads == 0 {
		t.Fatalf("cold compile measured nothing: %+v", cold.Tuning)
	}
	if cold.Tuning.CacheHits != 0 {
		t.Errorf("cold compile hit a fresh cache %d times", cold.Tuning.CacheHits)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	warm, err := bolt.Compile(buildTiny(), dev, bolt.Options{CacheFile: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Tuning.Measurements != 0 {
		t.Errorf("warm recompile measured %d candidates, want 0", warm.Tuning.Measurements)
	}
	if warm.Tuning.ProfiledWorkloads != 0 {
		t.Errorf("warm recompile profiled %d workloads, want 0", warm.Tuning.ProfiledWorkloads)
	}
	if warm.Tuning.CacheHits != warm.Tuning.UniqueWorkloads {
		t.Errorf("cache hits %d != unique workloads %d", warm.Tuning.CacheHits, warm.Tuning.UniqueWorkloads)
	}
	if warm.TuningTime >= cold.TuningTime {
		t.Errorf("warm tuning time %v not below cold %v", warm.TuningTime, cold.TuningTime)
	}
	// The cached selection must reproduce the cold module exactly.
	if warm.Module.Time() != cold.Module.Time() {
		t.Errorf("warm module time %g != cold %g", warm.Module.Time(), cold.Module.Time())
	}
	assertSameKernels(t, cold, warm)
}

// TestJobsDeterministicAndFaster: the profiling pool must not change
// which kernels are selected, and its tuning time must model
// concurrency honestly (critical path < serial time).
func TestJobsDeterministicAndFaster(t *testing.T) {
	dev := bolt.T4()
	serial, err := bolt.Compile(buildBERTish(), dev, bolt.Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := bolt.Compile(buildBERTish(), dev, bolt.Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Tuning.UniqueWorkloads < 3 {
		t.Fatalf("model should present >= 3 unique GEMM workloads, got %d", serial.Tuning.UniqueWorkloads)
	}
	assertSameKernels(t, serial, pool)
	if pool.TuningTime >= serial.TuningTime {
		t.Errorf("Jobs:8 tuning time %v not strictly below Jobs:1 %v", pool.TuningTime, serial.TuningTime)
	}
	// Same Jobs value must reproduce the same tuning time (static
	// partitioning keeps the critical path deterministic).
	again, err := bolt.Compile(buildBERTish(), dev, bolt.Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if again.TuningTime != pool.TuningTime {
		t.Errorf("Jobs:8 tuning time not deterministic: %v vs %v", again.TuningTime, pool.TuningTime)
	}
}

// TestDedupProfilesRepeatedWorkloadOnce: 12 identical attention GEMMs
// collapse to a single profiled task.
func TestDedupProfilesRepeatedWorkloadOnce(t *testing.T) {
	dev := bolt.T4()
	res, err := bolt.Compile(buildAttentionHeads(), dev, bolt.Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuning.Workloads != 12 {
		t.Fatalf("extracted %d workloads, want 12", res.Tuning.Workloads)
	}
	if res.Tuning.UniqueWorkloads != 1 {
		t.Errorf("dedup left %d unique workloads, want 1", res.Tuning.UniqueWorkloads)
	}
	if res.Tuning.ProfiledWorkloads != 1 {
		t.Errorf("profiled %d workloads, want 1", res.Tuning.ProfiledWorkloads)
	}
	// All 12 Dense kernels must still lower, sharing the one result.
	dense := 0
	for i := range res.Module.Kernels {
		if res.Module.Kernels[i].Node.Op.String() == "dense" {
			dense++
		}
	}
	if dense != 12 {
		t.Errorf("%d dense kernels lowered, want 12", dense)
	}
}

// assertSameKernels requires two compiles to have produced the same
// kernel selection (names and modeled times).
func assertSameKernels(t *testing.T, a, b *bolt.CompileResult) {
	t.Helper()
	ka, kb := a.Module.Kernels, b.Module.Kernels
	if len(ka) != len(kb) {
		t.Fatalf("kernel count differs: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i].Name != kb[i].Name {
			t.Errorf("kernel %d name differs: %s vs %s", i, ka[i].Name, kb[i].Name)
		}
		if ka[i].Desc != kb[i].Desc {
			t.Errorf("kernel %d desc differs (%s)", i, ka[i].Name)
		}
	}
}
