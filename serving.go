package bolt

import (
	"fmt"
	"os"
	"sync"
	"time"

	"bolt/internal/accuracy"
	"bolt/internal/gpu"
	"bolt/internal/obs"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/serve"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// Serving-layer re-exports. The multi-tenant scheduler lives in
// internal/serve; NewServer wires it to this package's compilation
// pipeline and tuning-log cache.
type (
	// Engine is the single-model serving view (the pre-multi-tenant
	// surface, kept for compatibility; new code should use Server).
	Engine = serve.Engine
	// ServeStats is a snapshot of serving counters, per model or
	// aggregate, with per-priority latency windows.
	ServeStats = serve.Stats
	// ServeResult is one completed request (InferAsync).
	ServeResult = serve.Result
	// Priority classifies a request for the scheduler.
	Priority = serve.Priority
	// InferOptions carries a request's Priority, MaxWait, and simulated
	// arrival time.
	InferOptions = serve.InferOptions
	// DeviceStats is one worker's share of the served work on a
	// (possibly heterogeneous) pool: busy seconds, batches, utilization
	// share, and per-device makespan.
	DeviceStats = serve.DeviceStats
	// StageBreakdown is one priority class's accumulated stage-latency
	// decomposition (ServeStats.Stages): formation wait + queue wait +
	// execute + deliver, summing bit-exactly to latency per request.
	StageBreakdown = serve.StageBreakdown
	// Tracer records deterministic request-lifecycle spans from every
	// endpoint it is handed to (ServerOptions.Trace,
	// FleetOptions.Trace). Export with ExportJSON — the output is
	// Chrome trace-event JSON, viewable in Perfetto.
	Tracer = obs.Tracer
	// TraceSpan is one recorded span (Tracer query APIs).
	TraceSpan = obs.Span
)

// NewTracer returns an empty tracer ready to hand to ServerOptions.Trace
// or FleetOptions.Trace. Tracing never touches the simulated clocks:
// every benchmark number and stats oracle is bit-identical with and
// without it.
func NewTracer() *Tracer { return obs.NewTracer() }

// Request priorities. High preempts the batch window, bulk waits for
// full buckets; neither can starve another model thanks to the
// weighted round-robin across tenants.
const (
	PriorityNormal = serve.PriorityNormal
	PriorityHigh   = serve.PriorityHigh
	PriorityBulk   = serve.PriorityBulk
)

// Serving errors (test with errors.Is).
var (
	// ErrServeClosed is returned by Infer/Deploy after Close.
	ErrServeClosed = serve.ErrClosed
	// ErrNotDeployed is returned for model names the server does not
	// (or no longer) serve(s).
	ErrNotDeployed = serve.ErrNotDeployed
)

// ServerOptions configures the resources every model deployed on one
// Server shares.
type ServerOptions struct {
	// Workers is the number of concurrent executors (simulated device
	// streams) shared by all models, all modeling the device NewServer
	// was given. Values < 1 mean 1. Mutually exclusive with Devices.
	Workers int
	// Devices makes the pool heterogeneous: one worker per entry, each
	// modeling that device (e.g. {T4(), T4(), A100()}). Every deployed
	// model compiles per-(device, bucket) variants through the shared
	// tuning log (keys are device-scoped, so all classes coexist in one
	// cache file), and the scheduler dispatches each batch to the
	// worker with the smallest modeled finish time (clock + that
	// device's batch cost) — big buckets gravitate to the fast device.
	// Mutually exclusive with Workers: setting both is a configuration
	// error, not a preference.
	Devices []*Device
	// QueueDepth bounds the pending-request queue across all models;
	// Infer blocks when it is full. Values < 1 mean 1024.
	QueueDepth int
	// BatchWindow is the default batch window for models that do not
	// set their own: how long the batcher holds an underfull
	// normal-priority batch hoping to fill the largest bucket (0 =
	// dispatch greedily). High-priority requests preempt it; bulk
	// requests wait several windows for a full bucket.
	BatchWindow time.Duration
	// CacheFile backs every model's variant compiles with one
	// persistent tuning-log database: the server loads it once, shares
	// the in-memory log across all tenants' compiles (buckets whose
	// workloads were ever profiled before recompile measurement-free —
	// the paper's §2.1 serving story), and persists it after each
	// compile and on Close.
	CacheFile string
	// Jobs is both the profiling pool width within one variant compile
	// and how many variant compiles (Warm or lazy) may run
	// concurrently — a Jobs-wide Warm can briefly run Jobs^2 profiling
	// goroutines. That is deliberate: profiling work is simulated
	// (cheap host goroutines), each compile's TuningTime is its own
	// pool's critical path regardless of what runs beside it, and
	// kernel selection is deterministic for any pool width.
	Jobs int
	// Trace, when set, records request-lifecycle spans (enqueue → plan
	// → compile → dispatch → execute → deliver) into the tracer.
	// Tracing never touches the simulated clocks.
	Trace *Tracer
	// TraceLabel names this server's process in the exported trace
	// ("server" when empty).
	TraceLabel string
}

// Precision selects the compute precision a tenant's variants are
// compiled at. The zero value serves the model exactly as authored —
// bit-identical to servers that predate mixed precision.
type Precision int

const (
	// PrecisionDefault compiles the graph as authored (no rewrite).
	PrecisionDefault Precision = iota
	// PrecisionFP32 serves CUDA-core FP32 variants — also the oracle
	// every reduced-precision deploy is gated against.
	PrecisionFP32
	// PrecisionFP16 serves tensor-core FP16 variants.
	PrecisionFP16
	// PrecisionINT8 serves tensor-core INT8 variants (weight-side
	// symmetric quantization with dynamically scaled activations).
	PrecisionINT8
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case PrecisionDefault:
		return "default"
	case PrecisionFP32:
		return "float32"
	case PrecisionFP16:
		return "float16"
	case PrecisionINT8:
		return "int8"
	default:
		return fmt.Sprintf("precision(%d)", int(p))
	}
}

// dtype maps the precision to its tensor dtype; ok is false for
// PrecisionDefault (no rewrite requested).
func (p Precision) dtype() (tensor.DType, bool) {
	switch p {
	case PrecisionFP32:
		return tensor.FP32, true
	case PrecisionFP16:
		return tensor.FP16, true
	case PrecisionINT8:
		return tensor.INT8, true
	}
	return 0, false
}

// DeployReport records how a tenant's precision request was resolved:
// the served precision, the measured calibration divergence, and the
// fallback reason when the accuracy gate rejected the variant.
type DeployReport = accuracy.DivergenceReport

// calibration* fix the accuracy gate's sampling: deterministic seeded
// batches so gate decisions are reproducible across runs and pools.
const (
	calibrationBatches = 2
	calibrationSeed    = 20517
)

// DeployOptions configures one model's batching and scheduling share.
type DeployOptions struct {
	// Buckets are the allowed batch sizes (bucket 1 is implied). Nil
	// means {1, 2, 4, 8}. Each bucket compiles lazily, on first use, as
	// a batch variant of the source graph.
	Buckets []int
	// Weight is the model's weighted-round-robin share when several
	// models contend for the workers. Values < 1 mean 1.
	Weight int
	// BatchWindow overrides ServerOptions.BatchWindow for this model.
	BatchWindow time.Duration
	// MaxVariantBytes bounds the modeled memory (parameters + planned
	// activation arena) of this model's compiled variants held per
	// device class; beyond it the least-recently-used variants are
	// evicted (ServeStats.Evictions) and recompile on next use through
	// the tuning log, measurement-free. Zero means unbounded.
	MaxVariantBytes int64
	// AllowPadding lets the scheduler run a partial batch on a larger
	// compiled bucket with zero-padded rows whenever the cost model says
	// the padded run finishes earlier than draining the rows as a strict
	// chain of exact buckets. Padded outputs are stripped back to the
	// real rows (bit-identical to an unpadded run); ServeStats counts
	// the padded batches and rows. Ignored for single-bucket models.
	AllowPadding bool
	// ContinuousBatching replaces the batch-window formation rule for
	// this model: a forming batch absorbs queued arrivals while the
	// modeled marginal gain of one more row is positive, then
	// dispatches — work-conserving, so BatchWindow degrades to the
	// MaxWait default for this model's requests. Ignored for
	// single-bucket models.
	ContinuousBatching bool
	// TopK, when > 0, makes this model's variant compiles guided: the
	// cost model in the server's shared tuning log ranks each
	// workload's candidates and only the k best are measured. First-use
	// (lazy) bucket compiles are where this bites — a cold bucket under
	// live traffic tunes in a fraction of the full-sweep time. Until
	// the shared model has trained, sweeps stay full.
	TopK int
	// TrustThreshold, when > 0, lets this model's variant compiles skip
	// measurement entirely once the shared cost model's held-out
	// confidence reaches it (see Options.TrustThreshold).
	TrustThreshold float64
	// Precision requests FP32/FP16/INT8 variants for this tenant: the
	// source graph is precision-rewritten (weights cast, compute dtypes
	// annotated) before any bucket variant compiles, so every
	// (device, bucket) variant — and therefore the EFT dispatcher's
	// cost for it — is priced at that precision's tensor-core (or
	// CUDA-core) rate. The default serves the graph as authored.
	Precision Precision
	// AccuracyBudget gates reduced-precision deploys: the requested
	// variant's outputs on deterministic calibration batches must stay
	// within this relative L-inf divergence of the FP32 RunUnplanned
	// oracle, or the tenant falls back to FP32 (see DeployReport).
	// Zero means ungated. Ignored for PrecisionDefault/PrecisionFP32.
	AccuracyBudget float64
}

// Server is the multi-tenant serving endpoint: several models share
// one worker pool, one scheduler, and one tuning-log cache. Requests
// carry (model, priority); the batcher keeps per-model/per-priority
// queues and dispatches via weighted round-robin across tenants, with
// high-priority requests preempting the batch window while bulk
// requests wait for full buckets.
type Server struct {
	dev  *Device
	opts ServerOptions
	srv  *serve.Server
	// pipe is the shared tenant-compile pipeline (tuning log, persist
	// path, precision gate); Fleet endpoints build the identical
	// pipeline, which is what makes a fleet's replicas warm from each
	// other's entries.
	pipe *tenantPipeline
}

// cachePersister owns one endpoint's persistent tuning log: the
// in-memory log shared by every tenant's compiles, plus the
// serialized, atomic write-back to its backing file. Saves first
// merge entries other processes wrote since our load (memory wins),
// then rename the whole log into place — so within one endpoint no
// compile's entries are ever lost to a load→save race.
type cachePersister struct {
	cache *tunelog.Log
	file  string
	mu    sync.Mutex
	// err is the outcome of the latest persist attempt (guarded by
	// mu); Close surfaces it.
	err error
}

// newCachePersister loads the backing file (when named) into a fresh
// shared log.
func newCachePersister(file string) (*cachePersister, error) {
	cache := tunelog.New()
	if file != "" {
		var err error
		if cache, err = loadCache(file); err != nil {
			return nil, err
		}
	}
	return &cachePersister{cache: cache, file: file}, nil
}

// persist writes the shared tuning log back to its file (a no-op
// without one).
func (p *cachePersister) persist() error {
	if p.cache == nil || p.file == "" {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, err := os.Open(p.file); err == nil {
		// Best-effort, memory-wins merge of external writers' entries
		// (our fresher results keep their keys); a corrupt or
		// unreadable file is simply overwritten by our good data.
		_ = p.cache.Merge(f)
		f.Close()
	}
	p.err = saveCache(p.cache, p.file)
	return p.err
}

// lastErr returns the latest persist outcome.
func (p *cachePersister) lastErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// tenantPipeline is everything one serving endpoint (a Server or
// every replica of a Fleet) shares across its tenants' variant
// compiles: the default device for anonymous workers, the device
// class accuracy gating compiles against, the shared tuning log with
// its persist hook, and the per-model precision-gate reports.
type tenantPipeline struct {
	dev     *Device // anonymous homogeneous workers compile for this device
	gateDev *Device // device class the accuracy gate decides on
	cp      *cachePersister
	jobs    int

	// reports holds each deployed model's precision-gate outcome
	// (models deployed at PrecisionDefault have no entry).
	reportsMu sync.Mutex
	reports   map[string]DeployReport
}

// tenantCompiler resolves one model's deploy: it runs the precision
// gate (when requested), records the gate report, and returns the
// per-(device, bucket) compile closure plus the scheduler-facing
// options. The closure compiles relay.Rebatch clones through the
// regular pipeline against the shared tuning log — every endpoint
// (and every fleet replica) holding the same pipeline compiles
// measurement-free from its peers' entries.
func (p *tenantPipeline) tenantCompiler(name string, g *Graph, opts DeployOptions) (serve.CompileVariantOn, serve.DeployOptions, error) {
	src := g
	if dt, ok := opts.Precision.dtype(); ok {
		// Precision-rewrite the source once, gated: the requested
		// variant must clear the tenant's accuracy budget against the
		// FP32 RunUnplanned oracle on deterministic calibration batches
		// or the tenant serves FP32. Numerics are schedule-independent
		// (functional execution reuses the reference path), so gating on
		// one device class decides for the whole pool.
		deployed, rep, err := accuracy.GatePrecision(g, dt, opts.AccuracyBudget,
			calibrationBatches, calibrationSeed,
			func(cg *relay.Graph) (*rt.Module, error) {
				res, err := compileTemplated(cg, p.gateDev, templatedConfig{
					cache:          p.cp.cache,
					jobs:           p.jobs,
					topK:           opts.TopK,
					trustThreshold: opts.TrustThreshold,
				})
				if err != nil {
					return nil, err
				}
				return res.Module, nil
			})
		if err != nil {
			return nil, serve.DeployOptions{}, fmt.Errorf("bolt: deploy %s at %s: %w", name, opts.Precision, err)
		}
		src = deployed
		p.reportsMu.Lock()
		p.reports[name] = rep
		p.reportsMu.Unlock()
	}
	compile := func(dev *gpu.Device, batch int) (*rt.Module, error) {
		if dev == nil {
			dev = p.dev // anonymous homogeneous worker: the endpoint device
		}
		vg, err := relay.Rebatch(src, batch)
		if err != nil {
			return nil, err
		}
		res, err := compileTemplated(vg, dev, templatedConfig{
			cache:          p.cp.cache,
			jobs:           p.jobs,
			topK:           opts.TopK,
			trustThreshold: opts.TrustThreshold,
		})
		if err != nil {
			return nil, err
		}
		// A transient persist failure must not fail the variant: the
		// module is compiled and serviceable, the entries stay in the
		// shared in-memory log, and the next persist (next compile or
		// Close, which surfaces the latest error) retries the write.
		_ = p.cp.persist()
		return res.Module, nil
	}
	return compile, serve.DeployOptions{
		Buckets:            opts.Buckets,
		Weight:             opts.Weight,
		BatchWindow:        opts.BatchWindow,
		MaxVariantBytes:    opts.MaxVariantBytes,
		AllowPadding:       opts.AllowPadding,
		ContinuousBatching: opts.ContinuousBatching,
	}, nil
}

// report looks up a model's precision-gate outcome.
func (p *tenantPipeline) report(name string) (DeployReport, bool) {
	p.reportsMu.Lock()
	defer p.reportsMu.Unlock()
	rep, ok := p.reports[name]
	return rep, ok
}

// validateDeviceList rejects nil entries and same-named devices with
// different specs: workers that model the same device are grouped
// into one class by Name and share compiled variants, so two
// same-named entries with different specs would silently serve one
// spec's modules on the other's worker. byName accumulates across
// calls so a fleet's replicas are checked against each other — they
// share one tuning log, whose keys are device-name-scoped.
func validateDeviceList(field string, devices []*Device, byName map[string]*Device) error {
	for i, d := range devices {
		if d == nil {
			return fmt.Errorf("bolt: %s[%d] is nil", field, i)
		}
		if prev, ok := byName[d.Name]; ok && *prev != *d {
			return fmt.Errorf("bolt: %s[%d] %q differs from an earlier entry with the same name: same-named devices form one class and must have identical specs", field, i, d.Name)
		}
		byName[d.Name] = d
	}
	return nil
}

// NewServer starts an empty multi-tenant server over dev (or over
// ServerOptions.Devices when the pool is heterogeneous — dev then only
// backs deployments on servers with legacy anonymous workers). Models
// are added with Deploy; Close drains in-flight work and persists the
// tuning log.
func NewServer(dev *Device, opts ServerOptions) (*Server, error) {
	if opts.Workers > 0 && len(opts.Devices) > 0 {
		return nil, fmt.Errorf("bolt: ServerOptions.Workers (%d) and ServerOptions.Devices (%d entries) are mutually exclusive: Devices already implies one worker per device — set exactly one of them",
			opts.Workers, len(opts.Devices))
	}
	if err := validateDeviceList("ServerOptions.Devices", opts.Devices, make(map[string]*Device)); err != nil {
		return nil, err
	}
	// The server always keeps an in-memory tuning log: it is the home
	// of the shared cost model that guided variant compiles rank by,
	// and it lets every tenant's compiles learn from each other within
	// the process even when nothing persists. With CacheFile set it is
	// additionally loaded from (and persisted to) disk.
	cp, err := newCachePersister(opts.CacheFile)
	if err != nil {
		return nil, err
	}
	gateDev := dev
	if len(opts.Devices) > 0 {
		gateDev = opts.Devices[0]
	}
	s := &Server{dev: dev, opts: opts, pipe: &tenantPipeline{
		dev:     dev,
		gateDev: gateDev,
		cp:      cp,
		jobs:    opts.Jobs,
		reports: make(map[string]DeployReport),
	}}
	s.srv = serve.NewServer(serve.ServerOptions{
		Workers:     opts.Workers,
		Devices:     opts.Devices,
		QueueDepth:  opts.QueueDepth,
		BatchWindow: opts.BatchWindow,
		CompileJobs: opts.Jobs,
		Trace:       opts.Trace,
		TraceLabel:  opts.TraceLabel,
		// Closing through any view — this Server or a compatibility
		// Engine — flushes the shared tuning log.
		OnClose: func() { _ = s.persistCache() },
	})
	return s, nil
}

// Deploy registers a model under a unique name. Each (device, batch
// bucket) variant's module is compiled on demand from a relay.Rebatch
// clone of the source graph through the regular pipeline (profiler +
// shared tunelog cache) targeting that worker's device — on a
// heterogeneous pool a T4 worker and an A100 worker each execute a
// module tuned for their own silicon, and the device-scoped tunelog
// keys keep both families in one cache file. The source graph is
// never mutated and its weights are shared across all variants.
func (s *Server) Deploy(name string, g *Graph, opts DeployOptions) error {
	compile, sopts, err := s.pipe.tenantCompiler(name, g, opts)
	if err != nil {
		return err
	}
	return s.srv.DeployOn(name, compile, sopts)
}

// DeployReport returns the precision-gate outcome for a model deployed
// with a non-default DeployOptions.Precision: the served precision,
// the measured calibration divergence, and the fallback reason if the
// accuracy budget rejected the requested variant. ok is false for
// unknown models and for models served as authored.
func (s *Server) DeployReport(name string) (DeployReport, bool) {
	return s.pipe.report(name)
}

// Undeploy removes a model: new requests for it fail with
// ErrNotDeployed, queued requests are answered with the same error,
// and its served traffic stays counted in the aggregate Stats.
func (s *Server) Undeploy(name string) error { return s.srv.Undeploy(name) }

// Models lists the currently deployed model names, sorted.
func (s *Server) Models() []string { return s.srv.Models() }

// Infer runs one single-sample request (every input's leading dim must
// be 1) against a deployed model and blocks until its batch completes.
func (s *Server) Infer(model string, inputs map[string]*Tensor, opts InferOptions) (*Tensor, error) {
	return s.srv.Infer(model, inputs, opts)
}

// InferAsync enqueues one single-sample request and returns the
// channel its ServeResult will be delivered on.
func (s *Server) InferAsync(model string, inputs map[string]*Tensor, opts InferOptions) (<-chan ServeResult, error) {
	return s.srv.InferAsync(model, inputs, opts)
}

// Warm compiles a model's variants for the given buckets (all its
// configured buckets when none are named) before traffic arrives. The
// compiles run concurrently, Jobs wide; the returned error joins every
// failed bucket's error, naming the bucket.
func (s *Server) Warm(model string, buckets ...int) error {
	return s.srv.Warm(model, buckets...)
}

// Stats aggregates every model's serving counters (with per-priority
// latency windows; see ServeStats.PriorityPercentile).
// ServeStats.BacklogSeconds carries the modeled EFT backlog at
// snapshot time; use Backlog for the probe alone.
func (s *Server) Stats() ServeStats { return s.srv.Stats() }

// Backlog returns the server's modeled EFT backlog — the simulated
// seconds of accepted-but-unfinished work (queued rows priced by the
// dispatcher's own memoized bucket costs, plus committed-but-unretired
// batch time) — without building a full stats snapshot. This is the
// signal fleet routers and autoscalers balance on.
func (s *Server) Backlog() float64 { return s.srv.BacklogSeconds() }

// ModelStats returns one deployed model's serving counters.
func (s *Server) ModelStats(name string) (ServeStats, bool) { return s.srv.ModelStats(name) }

// Snapshot renders the server's always-on metrics as a deterministic
// text exposition: request/batch counters, per-worker device rows,
// per-stage latency histograms, and per-priority breakdowns. Works
// whether or not tracing is enabled.
func (s *Server) Snapshot() string { return s.srv.Snapshot() }

// Close rejects new requests, flushes and answers every accepted
// request, stops the workers, and persists the tuning log (via the
// underlying server's close hook), returning the outcome of that
// final persist. Safe to call more than once.
func (s *Server) Close() error {
	s.srv.Close()
	return s.pipe.cp.lastErr()
}

// persistCache flushes the shared tuning log (see
// cachePersister.persist; kept as a method for the close hook).
func (s *Server) persistCache() error { return s.pipe.cp.persist() }

// ServeOptions configures NewEngine (the single-model compatibility
// surface; new code should use NewServer + ServerOptions).
type ServeOptions struct {
	// Buckets are the allowed batch sizes (bucket 1 is implied). Nil
	// means {1, 2, 4, 8}.
	Buckets []int
	// Workers is the number of concurrent executors (simulated device
	// streams). Values < 1 mean 1.
	Workers int
	// QueueDepth bounds the pending-request queue; Infer blocks when it
	// is full. Values < 1 mean 1024.
	QueueDepth int
	// BatchWindow is how long the batcher holds an underfull batch
	// hoping to fill the largest bucket (0 = dispatch greedily).
	BatchWindow time.Duration
	// CacheFile backs every variant compile with a persistent
	// tuning-log database (loaded once, shared, persisted after each
	// compile).
	CacheFile string
	// Jobs is the profiling pool width for variant compiles.
	Jobs int
	// AllowPadding enables padded-bucket dispatch for the engine's model
	// (see DeployOptions.AllowPadding).
	AllowPadding bool
	// ContinuousBatching enables modeled marginal-gain batch formation
	// (see DeployOptions.ContinuousBatching).
	ContinuousBatching bool
	// Trace records request-lifecycle spans (see ServerOptions.Trace).
	Trace *Tracer
	// TraceLabel names the engine's trace process (see
	// ServerOptions.TraceLabel).
	TraceLabel string
}

// NewEngine starts a single-model serving engine: a thin wrapper over
// a one-model Server. Requests to Infer are coalesced by the dynamic
// batcher at normal priority, exactly as before the multi-tenant
// redesign; migrate to NewServer/Deploy/Infer for multiple models,
// request priorities, and fair scheduling.
func NewEngine(g *Graph, dev *Device, opts ServeOptions) (*Engine, error) {
	srv, err := NewServer(dev, ServerOptions{
		Workers:     opts.Workers,
		QueueDepth:  opts.QueueDepth,
		BatchWindow: opts.BatchWindow,
		CacheFile:   opts.CacheFile,
		Jobs:        opts.Jobs,
		Trace:       opts.Trace,
		TraceLabel:  opts.TraceLabel,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Deploy(serve.EngineModel, g, DeployOptions{
		Buckets:            opts.Buckets,
		AllowPadding:       opts.AllowPadding,
		ContinuousBatching: opts.ContinuousBatching,
	}); err != nil {
		srv.Close()
		return nil, err
	}
	return srv.srv.EngineFor(serve.EngineModel)
}
