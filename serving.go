package bolt

import (
	"time"

	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/serve"
)

// Serving-layer re-exports. Engine is the dynamic-batching serving
// engine of internal/serve; NewEngine wires it to this package's
// compilation pipeline.
type (
	// Engine serves single-sample inference requests over dynamically
	// batched, batch-bucketed variants of one model.
	Engine = serve.Engine
	// ServeStats is a snapshot of an engine's serving counters.
	ServeStats = serve.Stats
	// ServeResult is one completed request (InferAsync).
	ServeResult = serve.Result
)

// ServeOptions configures NewEngine.
type ServeOptions struct {
	// Buckets are the allowed batch sizes (bucket 1 is implied). Nil
	// means {1, 2, 4, 8}. Each bucket compiles lazily, on first use, as
	// a batch variant of the source graph.
	Buckets []int
	// Workers is the number of concurrent executors (simulated device
	// streams). Values < 1 mean 1.
	Workers int
	// QueueDepth bounds the pending-request queue; Infer blocks when it
	// is full. Values < 1 mean 1024.
	QueueDepth int
	// BatchWindow is how long the batcher holds an underfull batch
	// hoping to fill the largest bucket (0 = dispatch greedily).
	BatchWindow time.Duration
	// CacheFile backs every variant compile with a persistent
	// tuning-log database: buckets whose workloads were ever profiled
	// before — by an earlier engine, another variant, or boltc —
	// recompile measurement-free (the paper's §2.1 serving story).
	CacheFile string
	// Jobs is the profiling pool width for variant compiles.
	Jobs int
}

// NewEngine starts a serving engine for the graph: requests to Infer
// are coalesced by a dynamic batcher into batch-bucketed runs, and
// each bucket's module is compiled on demand from a relay.Rebatch
// clone of the source graph through the regular pipeline (profiler +
// tunelog cache). The source graph is never mutated and its weights
// are shared across all variants.
func NewEngine(g *Graph, dev *Device, opts ServeOptions) (*Engine, error) {
	compile := func(batch int) (*rt.Module, error) {
		vg, err := relay.Rebatch(g, batch)
		if err != nil {
			return nil, err
		}
		res, err := Compile(vg, dev, Options{CacheFile: opts.CacheFile, Jobs: opts.Jobs})
		if err != nil {
			return nil, err
		}
		return res.Module, nil
	}
	return serve.New(compile, serve.Options{
		Buckets:     opts.Buckets,
		Workers:     opts.Workers,
		QueueDepth:  opts.QueueDepth,
		BatchWindow: opts.BatchWindow,
	})
}
