package bolt_test

// Observability validation at the public API (PR 10): a traced server
// and a traced fleet must export valid Chrome trace-event JSON with
// every lifecycle span kind present, per-request stage durations that
// sum bit-exactly to the end-to-end latency, and — for a serial,
// single-worker run — byte-identical exports across two seeded runs
// through the real compilation pipeline. Run with -race (these are in
// the CI serving-stress list).

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bolt"
)

// serialTracedRun drives a one-worker engine through the real compile
// pipeline with strictly serial requests, so the whole span tree —
// compile spans included — depends only on modeled costs.
func serialTracedRun(t *testing.T) *bolt.Tracer {
	t.Helper()
	tr := bolt.NewTracer()
	eng, err := bolt.NewEngine(buildTiny1(), bolt.T4(), bolt.ServeOptions{
		Buckets: []int{1, 2}, Workers: 1, Trace: tr, TraceLabel: "server",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Warm(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(i+1), 1)
		if _, err := eng.Infer(map[string]*bolt.Tensor{"image": in}); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestTraceServingExportStable pins the end-to-end determinism story:
// two seeded serial runs through the real tuning pipeline export the
// same bytes, the export parses as Chrome trace-event JSON, and every
// lifecycle span kind appears.
func TestTraceServingExportStable(t *testing.T) {
	a := serialTracedRun(t).ExportJSON()
	if b := serialTracedRun(t).ExportJSON(); !bytes.Equal(a, b) {
		t.Fatalf("trace differs across identical seeded runs:\n%s\nvs\n%s", a, b)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	kinds := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			kinds[ev["name"].(string)]++
		}
	}
	for _, want := range []string{"request", "enqueue", "plan", "compile", "dispatch", "execute", "deliver"} {
		if kinds[want] == 0 {
			t.Errorf("no %q spans in the export (kinds: %v)", want, kinds)
		}
	}
}

// TestTraceServerResultBreakdown floods a traced multi-tenant server
// and checks the public Result decomposition: QueueWait +
// ExecuteSeconds must equal SimLatency bit-for-bit on every delivered
// request, and the Snapshot exposition must account for all of them.
func TestTraceServerResultBreakdown(t *testing.T) {
	tr := bolt.NewTracer()
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Workers: 2, BatchWindow: 2 * time.Millisecond, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Deploy("m", buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm("m"); err != nil {
		t.Fatal(err)
	}
	const n = 12
	chans := make([]<-chan bolt.ServeResult, n)
	for i := 0; i < n; i++ {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(i+1), 1)
		ch, err := srv.InferAsync("m", map[string]*bolt.Tensor{"image": in}, bolt.InferOptions{
			SimArrival: float64(i) * 1e-4,
		})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if got := res.QueueWait + res.ExecuteSeconds; got != res.SimLatency {
			t.Errorf("request %d: QueueWait (%v) + ExecuteSeconds (%v) = %v != SimLatency %v",
				i, res.QueueWait, res.ExecuteSeconds, got, res.SimLatency)
		}
	}
	snap := srv.Snapshot()
	if !strings.Contains(snap, "requests_total 12") {
		t.Errorf("Snapshot does not account 12 requests:\n%s", snap)
	}
	if !strings.Contains(snap, `stage_seconds_bucket{stage="queue_wait"`) {
		t.Errorf("Snapshot missing queue_wait histogram:\n%s", snap)
	}
	if got := len(tr.ByKind("request")); got != n {
		t.Errorf("%d request spans, want %d", got, n)
	}
}

// TestTraceFleetSpans drives a traced two-replica fleet through a
// scripted kill (answered by a retry) and an immediate-hedge policy:
// the export must carry route spans for every delivered request plus
// hedge and retry spans, all nested on valid JSON.
func TestTraceFleetSpans(t *testing.T) {
	tr := bolt.NewTracer()
	flt, err := bolt.NewFleet(bolt.T4(), bolt.FleetOptions{
		Replicas:    []bolt.FleetReplica{{Workers: 1}, {Workers: 1}},
		BatchWindow: time.Millisecond,
		// Any backlog at all hedges at placement time, so the flood below
		// deterministically issues hedges once the first batch commits.
		Hedge: bolt.HedgeOptions{BacklogSeconds: 1e-12},
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := flt.Deploy("m", buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := flt.Warm("m"); err != nil {
		t.Fatal(err)
	}
	// The first batch on replica 0's worker dies; the router must retry
	// its requests on replica 1.
	flt.InjectFault(0, 0, 1, bolt.BatchFault{Err: bolt.ErrInjectedKill})
	const n = 10
	chans := make([]<-chan bolt.FleetResult, n)
	for i := 0; i < n; i++ {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(i+1), 1)
		ch, err := flt.InferAsync("m", map[string]*bolt.Tensor{"image": in}, bolt.InferOptions{
			SimArrival: float64(i) * 1e-4,
		})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	var retried, hedged int
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if got := res.QueueWait + res.ExecuteSeconds; got != res.SimLatency {
			t.Errorf("request %d: breakdown sum %v != SimLatency %v", i, got, res.SimLatency)
		}
		if res.Retried {
			retried++
		}
		if res.Hedged {
			hedged++
		}
	}
	if err := flt.Close(); err != nil {
		t.Fatal(err)
	}
	if retried == 0 {
		t.Error("scripted kill produced no retried deliveries")
	}
	if got := len(tr.ByKind("route")); got != n {
		t.Errorf("%d route spans, want %d", got, n)
	}
	if got := len(tr.ByKind("retry")); got == 0 {
		t.Error("no retry spans recorded")
	}
	if hedged > 0 && len(tr.ByKind("hedge")) == 0 {
		t.Error("hedged deliveries but no hedge spans recorded")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.ExportJSON(), &doc); err != nil {
		t.Fatalf("fleet export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("fleet export is empty")
	}
	snap := flt.Snapshot()
	if !strings.Contains(snap, "fleet_retries_total") || strings.Contains(snap, "fleet_retries_total 0") {
		t.Errorf("fleet Snapshot does not count the retry:\n%s", snap)
	}
	if !strings.Contains(snap, "fleet_delivered_total 10") {
		t.Errorf("fleet Snapshot missing delivered counter:\n%s", snap)
	}
}
