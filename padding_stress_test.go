package bolt_test

// Concurrency validation for padded-bucket dispatch: batches the
// scheduler runs zero-padded on a larger compiled bucket must answer
// every request bit-identically to the per-sample clone-based
// RunUnplanned oracle. Run with -race.

import (
	"sync"
	"testing"

	"bolt"
	"bolt/internal/tensor"
)

// TestPaddedServingBitIdentical floods a single-worker engine whose
// bucket ladder ({1, 8}, launch-overhead-dominated tiny CNN) makes a
// padded bucket-8 dispatch the modeled winner for any 2..7 coalesced
// rows, and checks every answered request bit-for-bit against the
// unpadded per-sample oracle. Waves repeat until a padded batch has
// actually run, so the test cannot pass vacuously on a scheduling
// interleaving that only ever saw one pending request.
func TestPaddedServingBitIdentical(t *testing.T) {
	src := buildTiny1()
	oracleRes, err := bolt.Compile(buildTiny1(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 5
	inputs := make([]map[string]*bolt.Tensor, distinct)
	oracle := make([]*bolt.Tensor, distinct)
	for i := range inputs {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(200+i), 1)
		inputs[i] = map[string]*bolt.Tensor{"image": in}
		oracle[i] = oracleRes.Module.RunUnplanned(inputs[i])
	}

	eng, err := bolt.NewEngine(src, bolt.T4(), bolt.ServeOptions{
		Buckets: []int{1, 8}, Workers: 1,
		AllowPadding: true, ContinuousBatching: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Price the whole ladder up front so dispatch never stalls on a
	// background pricing compile mid-wave.
	if err := eng.Warm(); err != nil {
		t.Fatal(err)
	}

	// Each wave fires a burst of requests per oracle input. Half the
	// waves enqueue from concurrent goroutines (scheduler racing the
	// enqueuers), half enqueue back-to-back from this goroutine so the
	// queue is guaranteed to hold partial batches while the single
	// worker is busy — the interleaving that forces padded dispatches
	// even when the scheduler otherwise drains requests one by one.
	const perInput = 3
	for wave := 0; wave < 20; wave++ {
		chans := make([]<-chan bolt.ServeResult, distinct*perInput)
		if wave%2 == 0 {
			var mu sync.Mutex
			var wg sync.WaitGroup
			for i := range chans {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ch, err := eng.InferAsync(inputs[i%distinct])
					if err != nil {
						t.Errorf("wave %d req %d: %v", wave, i, err)
						return
					}
					mu.Lock()
					chans[i] = ch
					mu.Unlock()
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
		} else {
			for i := range chans {
				ch, err := eng.InferAsync(inputs[i%distinct])
				if err != nil {
					t.Fatalf("wave %d req %d: %v", wave, i, err)
				}
				chans[i] = ch
			}
		}
		for i, ch := range chans {
			res := <-ch
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if d := tensor.MaxAbsDiff(res.Output, oracle[i%distinct]); d != 0 {
				t.Fatalf("wave %d req %d (bucket %d): output differs by %g from unpadded oracle",
					wave, i, res.Batch, d)
			}
		}
		if st := eng.Stats(); st.PaddedBatches > 0 {
			if st.PaddedRows == 0 {
				t.Error("padded batches counted without padded rows")
			}
			return
		}
	}
	t.Fatal("20 waves never produced a padded dispatch; the padded execution path went unexercised")
}
