package bolt_test

// Guided-tuning API surface (PR 7): the TopK/TrustThreshold knobs on
// bolt.Options and DeployOptions, the cost model's persistence through
// CacheFile, and the -race stress over concurrent guided variant
// compiles sharing one server cost model.

import (
	"path/filepath"
	"sync"
	"testing"

	"bolt"
	"bolt/internal/models"
	"bolt/internal/tensor"
)

func TestGuidedKnobValidation(t *testing.T) {
	g := buildTinyMLP()
	if _, err := bolt.Compile(g, bolt.T4(), bolt.Options{TopK: 8}); err == nil {
		t.Error("TopK without CacheFile must fail: the cost model lives in the tuning log")
	}
	if _, err := bolt.Compile(buildTinyMLP(), bolt.T4(), bolt.Options{TrustThreshold: 0.5}); err == nil {
		t.Error("TrustThreshold without CacheFile must fail")
	}
	if _, err := bolt.Compile(buildTinyMLP(), bolt.T4(), bolt.Options{Baseline: true, TopK: 8, BaselineTrials: 4}); err == nil {
		t.Error("TopK with Baseline must fail: the opaque tuner has its own internal model")
	}
}

func TestGuidedCompileThroughCacheFile(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "tune.json")

	// Cold full sweep: profiles everything, trains the cost model, and
	// persists both entries and model to the cache file.
	full, err := bolt.Compile(models.ResNetAt(18, 8, 32), bolt.T4(), bolt.Options{CacheFile: cacheFile, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if full.Tuning.Measurements != full.Tuning.EnumeratedCandidates {
		t.Fatalf("unguided compile must be a full sweep: %d of %d",
			full.Tuning.Measurements, full.Tuning.EnumeratedCandidates)
	}

	// A different batch size presents entirely new workload keys —
	// cache entries miss, but the persisted model guides: at most TopK
	// measurements per workload and a smaller tuning bill.
	guided, err := bolt.Compile(models.ResNetAt(18, 4, 32), bolt.T4(),
		bolt.Options{CacheFile: cacheFile, Jobs: 4, TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := guided.Tuning
	if s.ProfiledWorkloads == 0 {
		t.Fatal("rebatched model should present cold workloads")
	}
	if s.Measurements > 8*s.ProfiledWorkloads {
		t.Errorf("guided compile measured %d candidates over %d workloads, budget 8 each",
			s.Measurements, s.ProfiledWorkloads)
	}
	if s.SkippedCandidates == 0 {
		t.Error("guided compile skipped nothing; guidance did not engage")
	}
	if guided.Module.Time() <= 0 {
		t.Error("guided module is unpriceable")
	}
}

// TestServerGuidedCompileStress exercises concurrent guided variant
// compiles against one shared server cost model under -race: two
// tenants warm simultaneously with TopK guidance (concurrent
// Plan/Observe/Fit on the shared predictor) while inference outputs
// stay bit-identical to the clone-based oracle.
func TestServerGuidedCompileStress(t *testing.T) {
	if testing.Short() {
		t.Skip("guided serving stress is not short")
	}
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{Workers: 2, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Tenant "train" full-sweeps its buckets, training the server's
	// shared in-memory cost model.
	if err := srv.Deploy("train", models.ResNetAt(18, 1, 32), bolt.DeployOptions{Buckets: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm("train"); err != nil {
		t.Fatal(err)
	}

	// Two guided tenants at a new resolution: every bucket workload is
	// absent from the shared log, so their Warm compiles run guided,
	// concurrently, against the model tenant "train" just built.
	for _, name := range []string{"guided-a", "guided-b"} {
		if err := srv.Deploy(name, models.ResNetAt(18, 1, 48), bolt.DeployOptions{Buckets: []int{1, 2}, TopK: 6}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	warmErrs := make([]error, 2)
	for i, name := range []string{"guided-a", "guided-b"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			warmErrs[i] = srv.Warm(name)
		}(i, name)
	}
	wg.Wait()
	for i, err := range warmErrs {
		if err != nil {
			t.Fatalf("guided warm %d: %v", i, err)
		}
	}

	// Numerics are template-independent: whatever configs guidance
	// picked, outputs must match the clone-based oracle bit-for-bit.
	oracleRes, err := bolt.Compile(models.ResNetAt(18, 1, 48), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 4
	inputs := make([]map[string]*bolt.Tensor, distinct)
	oracle := make([]*bolt.Tensor, distinct)
	for i := range inputs {
		in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 1, 3, 48, 48)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*bolt.Tensor{"data": in}
		oracle[i] = oracleRes.Module.RunUnplanned(inputs[i])
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := []string{"guided-a", "guided-b"}[c%2]
			for it := 0; it < 3; it++ {
				i := (c + it) % distinct
				out, err := srv.Infer(name, inputs[i], bolt.InferOptions{})
				if err != nil {
					t.Errorf("caller %d: %v", c, err)
					return
				}
				if d := tensor.MaxAbsDiff(out, oracle[i]); d != 0 {
					t.Errorf("caller %d iter %d: diff %g from oracle", c, it, d)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}
