module bolt

go 1.24
