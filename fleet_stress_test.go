package bolt_test

// Fleet-layer validation at the public API (PR 9): the single-replica
// equivalence check against a bare Server, the Undeploy/Close drain
// with hedged duplicates still in flight, and the FleetStats
// aggregation exactness including a replica grown mid-run. Run with
// -race (these are in the CI serving-stress list).

import (
	"sync"
	"testing"
	"time"

	"bolt"
	"bolt/internal/tensor"
)

// TestFleetSingleReplicaBitIdentical pins the degenerate fleet: one
// replica, no failures, no hedging must behave exactly like a bare
// bolt.Server — every output bit-identical to the server's and to the
// clone-based oracle, with the same request accounting.
func TestFleetSingleReplicaBitIdentical(t *testing.T) {
	const n = 12
	inputs := make([]map[string]*bolt.Tensor, n)
	for i := range inputs {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*bolt.Tensor{"image": in}
	}
	oracleRes, err := bolt.Compile(buildTiny1(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{Workers: 1, BatchWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	flt, err := bolt.NewFleet(bolt.T4(), bolt.FleetOptions{
		Replicas:    []bolt.FleetReplica{{Workers: 1}},
		BatchWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	deploy := bolt.DeployOptions{Buckets: []int{1, 2, 4}}
	if err := srv.Deploy("m", buildTiny1(), deploy); err != nil {
		t.Fatal(err)
	}
	if err := flt.Deploy("m", buildTiny1(), deploy); err != nil {
		t.Fatal(err)
	}

	srvOut := make([]*bolt.Tensor, n)
	fltOut := make([]*bolt.Tensor, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := srv.Infer("m", inputs[i], bolt.InferOptions{})
			if err != nil {
				t.Errorf("server request %d: %v", i, err)
				return
			}
			srvOut[i] = out
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := flt.Infer("m", inputs[i], bolt.InferOptions{})
			if err != nil {
				t.Errorf("fleet request %d: %v", i, err)
				return
			}
			fltOut[i] = out
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if srvOut[i] == nil || fltOut[i] == nil {
			continue // already reported
		}
		oracle := oracleRes.Module.RunUnplanned(inputs[i])
		if d := tensor.MaxAbsDiff(fltOut[i], srvOut[i]); d != 0 {
			t.Errorf("request %d: fleet output differs from bare server by %g", i, d)
		}
		if d := tensor.MaxAbsDiff(fltOut[i], oracle); d != 0 {
			t.Errorf("request %d: fleet output differs from oracle by %g", i, d)
		}
	}
	st := flt.Stats()
	if st.Routed != n || st.Delivered != n || st.DeliveredErrors != 0 {
		t.Errorf("fleet routed/delivered/errors %d/%d/%d, want %d/%d/0", st.Routed, st.Delivered, st.DeliveredErrors, n, n)
	}
	if st.HedgesIssued != 0 || st.Retries != 0 {
		t.Errorf("degenerate fleet hedged (%d) or retried (%d)", st.HedgesIssued, st.Retries)
	}
	if st.Serve.Requests != srv.Stats().Requests {
		t.Errorf("fleet served %d rows, bare server %d", st.Serve.Requests, srv.Stats().Requests)
	}
}

// TestFleetUndeployCloseHedgedDrain is the PR-9 regression stress:
// Undeploy then Close while hedged duplicates are still in flight
// must deliver exactly one result per request and drain cleanly (no
// goroutine may be left blocked on an abandoned duplicate).
func TestFleetUndeployCloseHedgedDrain(t *testing.T) {
	flt, err := bolt.NewFleet(bolt.T4(), bolt.FleetOptions{
		Replicas:    []bolt.FleetReplica{{Workers: 1}, {Workers: 1}},
		BatchWindow: time.Millisecond,
		Hedge:       bolt.HedgeOptions{Timeout: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := flt.Deploy("m", buildTiny1(), bolt.DeployOptions{Buckets: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := flt.Warm("m"); err != nil {
		t.Fatal(err)
	}
	// Stall both replicas' workers so primaries and their hedged
	// duplicates are all in flight when the model is torn down.
	flt.InjectFault(0, 0, 2, bolt.BatchFault{StallHostDelay: 100 * time.Millisecond})
	flt.InjectFault(1, 0, 2, bolt.BatchFault{StallHostDelay: 100 * time.Millisecond})
	const n = 4
	in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
	in.FillRandom(7, 1)
	chans := make([]<-chan bolt.FleetResult, n)
	for i := range chans {
		ch, err := flt.InferAsync("m", map[string]*bolt.Tensor{"image": in}, bolt.InferOptions{Priority: bolt.PriorityHigh})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	time.Sleep(20 * time.Millisecond) // let hedge timers fire mid-flight
	if err := flt.Undeploy("m"); err != nil {
		t.Fatal(err)
	}
	if err := flt.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		if _, ok := <-ch; !ok {
			t.Errorf("request %d: channel closed without a result", i)
		}
		select {
		case extra, ok := <-ch:
			if ok {
				t.Errorf("request %d: double delivery: %+v", i, extra)
			}
		default:
		}
	}
	st := flt.Stats()
	if st.Routed != n || st.Delivered != n {
		t.Errorf("routed/delivered %d/%d, want %d/%d (requests lost in the drain)", st.Routed, st.Delivered, n, n)
	}
}

// TestFleetStatsAggregationExact checks the FleetStats contract at
// the public API: after a quiesced run that grew a replica mid-way,
// every per-replica row must sum exactly to the aggregate.
func TestFleetStatsAggregationExact(t *testing.T) {
	flt, err := bolt.NewFleet(bolt.T4(), bolt.FleetOptions{
		Replicas:    []bolt.FleetReplica{{Workers: 1}, {Workers: 1}},
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := flt.Deploy("m", buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	const n = 8
	infer := func(count int) {
		var wg sync.WaitGroup
		for i := 0; i < count; i++ {
			in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
			in.FillRandom(int64(i+1), 1)
			wg.Add(1)
			go func(in *bolt.Tensor) {
				defer wg.Done()
				ch, err := flt.InferAsync("m", map[string]*bolt.Tensor{"image": in}, bolt.InferOptions{})
				if err != nil {
					t.Errorf("infer: %v", err)
					return
				}
				res := <-ch
				if res.Err != nil {
					t.Errorf("infer: %v", res.Err)
					return
				}
				if got := res.QueueWait + res.ExecuteSeconds; got != res.SimLatency {
					t.Errorf("fleet result breakdown %v != SimLatency %v", got, res.SimLatency)
				}
			}(in)
		}
		wg.Wait()
	}
	infer(n)
	if _, err := flt.Grow(); err != nil {
		t.Fatal(err)
	}
	infer(n)
	if err := flt.Close(); err != nil {
		t.Fatal(err)
	}

	st := flt.Stats()
	if len(st.Replicas) != 3 {
		t.Fatalf("got %d replica rows, want 3", len(st.Replicas))
	}
	grown := 0
	var requests, batches, hedges, retries, growEv int64
	for _, r := range st.Replicas {
		if r.Grown {
			grown++
		}
		requests += r.Serve.Requests
		batches += r.Serve.Batches
		hedges += r.HedgesIssued
		retries += r.Retries
		growEv += r.GrowEvents
	}
	if grown != 1 {
		t.Errorf("%d rows flagged Grown, want 1", grown)
	}
	if requests != st.Serve.Requests {
		t.Errorf("per-replica requests sum %d != aggregate %d", requests, st.Serve.Requests)
	}
	if batches != st.Serve.Batches {
		t.Errorf("per-replica batches sum %d != aggregate %d", batches, st.Serve.Batches)
	}
	if hedges != st.HedgesIssued || retries != st.Retries || growEv != st.GrowEvents {
		t.Errorf("router counter sums (hedges %d, retries %d, grows %d) != aggregates (%d, %d, %d)",
			hedges, retries, growEv, st.HedgesIssued, st.Retries, st.GrowEvents)
	}
	if st.GrowEvents != 1 {
		t.Errorf("grow events %d, want 1", st.GrowEvents)
	}
	if st.Routed != 2*n || st.Delivered != 2*n {
		t.Errorf("routed/delivered %d/%d, want %d/%d", st.Routed, st.Delivered, 2*n, 2*n)
	}
	if st.Serve.Requests != 2*n {
		t.Errorf("served rows %d, want %d (no hedges -> one replica row per request)", st.Serve.Requests, 2*n)
	}
}
