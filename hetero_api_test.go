package bolt_test

// Heterogeneous device pool validation (PR 5): single-device pools
// stay bit-identical to the PR-4 serving behavior, mixed T4+A100 pools
// serve every request bit-identically to the oracle of whichever
// device ran it (per-device variant compilation through one shared
// tuning log), options are validated, and the per-tenant variant
// budget evicts without corrupting results. Run with -race.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bolt"
	"bolt/internal/tensor"
)

// TestServerSingleDevicePoolBitIdentical is the PR-5 migration
// acceptance: a Devices pool with one T4 entry must be
// behavior-identical to PR-4 scheduling — every batched output
// bit-identical to the per-model RunUnplanned oracle under concurrent
// load, with the pool's single device row accounting for every batch.
func TestServerSingleDevicePoolBitIdentical(t *testing.T) {
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Devices:     []*bolt.Device{bolt.T4()},
		BatchWindow: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Deploy("m", buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	oracleRes, err := bolt.Compile(buildTiny1(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const requests = 16
	inputs := make([]map[string]*bolt.Tensor, requests)
	oracle := make([]*bolt.Tensor, requests)
	for i := range inputs {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*bolt.Tensor{"image": in}
		oracle[i] = oracleRes.Module.RunUnplanned(inputs[i])
	}
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := srv.Infer("m", inputs[i], bolt.InferOptions{})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if d := tensor.MaxAbsDiff(out, oracle[i]); d != 0 {
				t.Errorf("request %d: diff %g from RunUnplanned oracle", i, d)
			}
		}(i)
	}
	wg.Wait()
	agg := srv.Stats()
	if len(agg.Devices) != 1 || agg.Devices[0].Device != "Tesla T4" {
		t.Fatalf("device rows %+v, want exactly one Tesla T4", agg.Devices)
	}
	if agg.Devices[0].Batches != agg.Batches {
		t.Errorf("device row has %d batches, aggregate %d", agg.Devices[0].Batches, agg.Batches)
	}
	if agg.Devices[0].UtilizationShare != 1 {
		t.Errorf("single device utilization share %g, want 1", agg.Devices[0].UtilizationShare)
	}
}

// TestServerHeteroPoolPerDeviceOracles runs a mixed T4+A100 pool under
// concurrent load: every request's output must be bit-identical to the
// RunUnplanned oracle compiled for the device that served it (the
// variants really are per-device), and the per-device rows must sum to
// the aggregate.
func TestServerHeteroPoolPerDeviceOracles(t *testing.T) {
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Devices:     []*bolt.Device{bolt.T4(), bolt.A100()},
		BatchWindow: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Deploy("m", buildTiny1(), bolt.DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm("m"); err != nil {
		t.Fatal(err)
	}
	oracles := map[string]*bolt.Module{}
	for _, dev := range []*bolt.Device{bolt.T4(), bolt.A100()} {
		res, err := bolt.Compile(buildTiny1(), dev, bolt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		oracles[dev.Name] = res.Module
	}
	const requests = 24
	inputs := make([]map[string]*bolt.Tensor, requests)
	chans := make([]<-chan bolt.ServeResult, requests)
	for i := range inputs {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*bolt.Tensor{"image": in}
		ch, err := srv.InferAsync("m", inputs[i], bolt.InferOptions{Priority: bolt.PriorityBulk})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		mod, ok := oracles[res.Device]
		if !ok {
			t.Fatalf("request %d served by unknown device %q", i, res.Device)
		}
		if d := tensor.MaxAbsDiff(res.Output, mod.RunUnplanned(inputs[i])); d != 0 {
			t.Errorf("request %d on %s: diff %g from that device's oracle", i, res.Device, d)
		}
	}
	agg := srv.Stats()
	var batches int64
	for _, d := range agg.Devices {
		batches += d.Batches
	}
	if batches != agg.Batches {
		t.Errorf("per-device batches sum to %d, aggregate %d", batches, agg.Batches)
	}
}

// TestServerOptionsValidation pins the configuration satellite:
// Workers and Devices together must be rejected loudly (not silently
// preferred), and nil device entries must be rejected.
func TestServerOptionsValidation(t *testing.T) {
	_, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Workers: 2,
		Devices: []*bolt.Device{bolt.T4()},
	})
	if err == nil {
		t.Fatal("Workers+Devices both set must error")
	}
	if !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("error %q does not explain the conflict", err)
	}
	if _, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Devices: []*bolt.Device{bolt.T4(), nil},
	}); err == nil {
		t.Fatal("nil Devices entry must error")
	}
	// Same-named devices share one variant class, so divergent specs
	// under one name must be rejected, not silently collapsed.
	tweaked := bolt.T4()
	tweaked.SMs *= 2
	if _, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Devices: []*bolt.Device{bolt.T4(), tweaked},
	}); err == nil {
		t.Fatal("same-named devices with different specs must error")
	}
	// Two stock instances of the same device are fine: one class.
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Devices: []*bolt.Device{bolt.T4(), bolt.T4()},
	})
	if err != nil {
		t.Fatalf("two identical T4 instances rejected: %v", err)
	}
	srv.Close()
}

// TestServerEvictionBudget pins the bolt-level eviction surface: a
// tight MaxVariantBytes evicts compiled variants (counted in Stats)
// while serving stays correct through recompiles.
func TestServerEvictionBudget(t *testing.T) {
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Deploy("m", buildTiny1(), bolt.DeployOptions{
		Buckets:         []int{1, 2},
		MaxVariantBytes: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm("m"); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.ModelStats("m")
	if st.Evictions < 1 {
		t.Errorf("evictions = %d after warming 2 buckets into a 1-byte budget, want >= 1", st.Evictions)
	}
	in := map[string]*bolt.Tensor{"image": bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)}
	in["image"].FillRandom(3, 1)
	oracleRes, err := bolt.Compile(buildTiny1(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Infer("m", in, bolt.InferOptions{Priority: bolt.PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(out, oracleRes.Module.RunUnplanned(in)); d != 0 {
		t.Errorf("post-eviction output differs from oracle by %g", d)
	}
}
