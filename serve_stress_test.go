package bolt_test

// Concurrency validation for the PR-3 serving engine and the pooled
// executor: planned concurrent Module.Run and batched Engine.Infer
// must both be bit-identical to the clone-based RunUnplanned oracle.
// Run with -race.

import (
	"sync"
	"testing"
	"time"

	"bolt"
	"bolt/internal/models"
	"bolt/internal/tensor"
)

// serveZooGraph builds the stress-test zoo model: ResNet-18 at a
// reduced resolution (batch 1), affordable under -race.
func serveZooGraph() *bolt.Graph { return models.ResNetAt(18, 1, 32) }

func zooInput(seed int64) map[string]*bolt.Tensor {
	in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 1, 3, 32, 32)
	in.FillRandom(seed, 1)
	return map[string]*bolt.Tensor{"data": in}
}

// TestConcurrentModuleRunBitIdentical hammers one planned module from
// 8 goroutines and checks every result bit-for-bit against the
// clone-based oracle: the pooled ExecStates must never bleed into each
// other.
func TestConcurrentModuleRunBitIdentical(t *testing.T) {
	res, err := bolt.Compile(buildTiny(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Module
	const distinct = 4
	inputs := make([]map[string]*bolt.Tensor, distinct)
	oracle := make([]*bolt.Tensor, distinct)
	for i := range inputs {
		in := bolt.NewTensor(bolt.FP16, 4, 8, 16, 16)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*bolt.Tensor{"image": in}
		oracle[i] = m.RunUnplanned(inputs[i])
	}
	const callers, iters = 8, 6
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (c + it) % distinct
				out := m.Run(inputs[i])
				if d := tensor.MaxAbsDiff(out, oracle[i]); d != 0 {
					t.Errorf("caller %d iter %d: diff %g from oracle", c, it, d)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestEngineInferStress floods a serving engine over a zoo model with
// 8 concurrent callers; every batched output must be bit-identical to
// the per-sample RunUnplanned oracle.
func TestEngineInferStress(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo engine stress is not short")
	}
	g := serveZooGraph()
	oracleRes, err := bolt.Compile(models.ResNetAt(18, 1, 32), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 8
	inputs := make([]map[string]*bolt.Tensor, distinct)
	oracle := make([]*bolt.Tensor, distinct)
	for i := range inputs {
		inputs[i] = zooInput(int64(i + 1))
		oracle[i] = oracleRes.Module.RunUnplanned(inputs[i])
	}

	eng, err := bolt.NewEngine(g, bolt.T4(), bolt.ServeOptions{
		Buckets: []int{1, 2, 4}, Workers: 4, BatchWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const callers, perCaller = 8, 2
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perCaller; r++ {
				i := (c*perCaller + r) % distinct
				ch, err := eng.InferAsync(inputs[i])
				if err != nil {
					t.Errorf("caller %d: %v", c, err)
					return
				}
				res := <-ch
				if res.Err != nil {
					t.Errorf("caller %d: %v", c, res.Err)
					return
				}
				if d := tensor.MaxAbsDiff(res.Output, oracle[i]); d != 0 {
					t.Errorf("caller %d req %d: diff %g from unbatched oracle", c, r, d)
					return
				}
				// The stage decomposition is exact on every delivered result.
				if got := res.QueueWait + res.ExecuteSeconds; got != res.SimLatency {
					t.Errorf("caller %d req %d: QueueWait+ExecuteSeconds = %v != SimLatency %v",
						c, r, got, res.SimLatency)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := eng.Stats()
	if st.Requests != callers*perCaller {
		t.Errorf("requests %d, want %d", st.Requests, callers*perCaller)
	}
	if st.SimMakespan <= 0 {
		t.Error("no simulated time accounted")
	}
}

// TestBatcherMatchesUnbatched forces a bucket-4 batch and checks each
// coalesced request's slice against the per-sample oracle — the
// batcher's stack/slice round trip must be lossless.
func TestBatcherMatchesUnbatched(t *testing.T) {
	src := buildTiny1()
	oracleRes, err := bolt.Compile(buildTiny1(), bolt.T4(), bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := bolt.NewEngine(src, bolt.T4(), bolt.ServeOptions{
		Buckets: []int{4}, Workers: 1, BatchWindow: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 4
	inputs := make([]map[string]*bolt.Tensor, n)
	oracle := make([]*bolt.Tensor, n)
	for i := range inputs {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
		in.FillRandom(int64(100+i), 1)
		inputs[i] = map[string]*bolt.Tensor{"image": in}
		oracle[i] = oracleRes.Module.RunUnplanned(inputs[i])
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := eng.Infer(inputs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if d := tensor.MaxAbsDiff(out, oracle[i]); d != 0 {
				t.Errorf("request %d: batched output differs by %g", i, d)
			}
		}(i)
	}
	wg.Wait()
	if st := eng.Stats(); st.BatchSizes[4] == 0 {
		t.Logf("note: flood was not coalesced into a bucket-4 batch: %v", st.BatchSizes)
	}
}

// buildTiny1 is buildTiny at batch 1 (the serving source shape).
func buildTiny1() *bolt.Graph {
	b := bolt.NewBuilder()
	x := b.Input("image", bolt.FP16, 1, 8, 16, 16)
	c := b.Conv2D(x, b.Weight("w1", 16, 3, 3, 8), 1, 1)
	c = b.BiasAdd(c, b.Weight("b1", 16))
	c = b.Activation(c, bolt.GELU)
	c = b.Conv2D(c, b.Weight("w2", 16, 1, 1, 16), 1, 0)
	c = b.Activation(c, bolt.ReLU)
	g := b.GlobalAvgPool(c)
	d := b.Dense(g, b.Weight("fc", 16, 8))
	return b.Build(b.Softmax(d))
}

// TestBaselineRejectsPipelineOptions pins the satellite fix: the
// Baseline path must reject the options it used to drop silently.
func TestBaselineRejectsPipelineOptions(t *testing.T) {
	dev := bolt.T4()
	if _, err := bolt.Compile(buildTiny(), dev, bolt.Options{Baseline: true, CacheFile: "x.json"}); err == nil {
		t.Error("Baseline+CacheFile must error")
	}
	if _, err := bolt.Compile(buildTiny(), dev, bolt.Options{Baseline: true, Jobs: 4}); err == nil {
		t.Error("Baseline+Jobs must error")
	}
}
