package bolt_test

// Runtime benchmarks for the slot-based, memory-planned executor:
// ResNet-50 Module.Run on the planned arena vs. the clone-based
// reference executor, plus the Module.Time pricing path. Results are
// emitted to BENCH_pr2.json so the allocs/op win is tracked as an
// artifact; CI runs a 1-iteration smoke so regressions surface.
//
//	go test -run '^$' -bench BenchmarkModuleRun -benchtime 1x .

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"bolt"
	"bolt/internal/models"
	"bolt/internal/tensor"
)

const runBenchBatch = 1

var (
	runBenchOnce sync.Once
	runBenchMod  *bolt.Module
	runBenchIn   map[string]*bolt.Tensor
)

// resnet50Module compiles ResNet-50 once and shares it across
// benchmark iterations (compilation is deterministic).
func resnet50Module(b *testing.B) (*bolt.Module, map[string]*bolt.Tensor) {
	b.Helper()
	runBenchOnce.Do(func() {
		res, err := bolt.Compile(models.ResNet(50, runBenchBatch), bolt.T4(), bolt.Options{})
		if err != nil {
			panic(err)
		}
		runBenchMod = res.Module
		in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, runBenchBatch, 3, 224, 224)
		in.FillRandom(1, 1)
		runBenchIn = map[string]*bolt.Tensor{"data": in}
	})
	return runBenchMod, runBenchIn
}

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

var (
	benchRowMu sync.Mutex
	benchRows  = map[string]benchRow{}
)

// measureRun runs f as a sub-benchmark, additionally recording ns/op
// and allocs/op for the JSON artifact (sub-benchmark results are not
// programmatically accessible, so the accounting is done inline).
func measureRun(b *testing.B, name string, f func()) {
	b.Run(name, func(sb *testing.B) {
		sb.ReportAllocs()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < sb.N; i++ {
			f()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		benchRowMu.Lock()
		benchRows[name] = benchRow{
			Name:        name,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(sb.N),
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(sb.N),
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(sb.N),
		}
		benchRowMu.Unlock()
	})
}

// BenchmarkModuleRun compares the planned executor against the
// clone-based reference on a full ResNet-50 forward pass and writes
// BENCH_pr2.json. Target: >= 50% fewer allocs/op planned vs clone.
func BenchmarkModuleRun(b *testing.B) {
	m, inputs := resnet50Module(b)
	m.Run(inputs) // materialize the arena outside the measurement

	measureRun(b, "resnet50/planned", func() { m.Run(inputs) })
	measureRun(b, "resnet50/clone", func() { m.RunUnplanned(inputs) })
	measureRun(b, "resnet50/time", func() { _ = m.Time() })

	writeBenchArtifact(b, m)
}

func writeBenchArtifact(b *testing.B, m *bolt.Module) {
	benchRowMu.Lock()
	rows := make([]benchRow, 0, len(benchRows))
	for _, r := range benchRows {
		rows = append(rows, r)
	}
	benchRowMu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })

	mem := m.Memory()
	artifact := struct {
		Model      string     `json:"model"`
		Batch      int        `json:"batch"`
		Benchmarks []benchRow `json:"benchmarks"`
		Memory     struct {
			ParamBytes           int     `json:"param_bytes"`
			PeakActivationBytes  int     `json:"peak_activation_bytes"`
			NaiveActivationBytes int     `json:"naive_activation_bytes"`
			PlannedArenaBytes    int     `json:"planned_arena_bytes"`
			ArenaBuffers         int     `json:"arena_buffers"`
			ReuseFactor          float64 `json:"reuse_factor"`
		} `json:"memory"`
		AllocsReduction float64 `json:"allocs_reduction_vs_clone"`
	}{Model: "resnet50", Batch: runBenchBatch, Benchmarks: rows}
	artifact.Memory.ParamBytes = mem.ParamBytes
	artifact.Memory.PeakActivationBytes = mem.PeakActivationBytes
	artifact.Memory.NaiveActivationBytes = mem.NaiveActivationBytes
	artifact.Memory.PlannedArenaBytes = mem.PlannedArenaBytes
	artifact.Memory.ArenaBuffers = mem.ArenaBuffers
	artifact.Memory.ReuseFactor = mem.ReuseFactor
	var planned, clone float64
	for _, r := range rows {
		switch r.Name {
		case "resnet50/planned":
			planned = r.AllocsPerOp
		case "resnet50/clone":
			clone = r.AllocsPerOp
		}
	}
	if clone > 0 {
		artifact.AllocsReduction = 1 - planned/clone
	}

	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr2.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_pr2.json: planned %.0f vs clone %.0f allocs/op (%.0f%% reduction), arena %0.1f MB vs naive %0.1f MB",
		planned, clone, 100*artifact.AllocsReduction,
		float64(mem.PlannedArenaBytes)/1e6, float64(mem.NaiveActivationBytes)/1e6)
}
