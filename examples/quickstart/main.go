// Quickstart: build a small convolutional network with the public API,
// compile it with Bolt, execute it functionally, and compare against
// the Ansor-style baseline — the whole paper in 80 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bolt"
)

func main() {
	dev := bolt.T4()

	build := func() *bolt.Graph {
		b := bolt.NewBuilder()
		// A PyTorch-style NCHW input: Bolt's layout pass will move the
		// network to NHWC for the templated kernels.
		x := b.Input("image", bolt.FP16, 8, 16, 32, 32)
		// Conv + bias + activation: fused into one templated kernel's
		// epilogue.
		c := b.Conv2D(x, b.Weight("w1", 32, 3, 3, 16), 1, 1)
		c = b.BiasAdd(c, b.Weight("b1", 32))
		c = b.Activation(c, bolt.Hardswish)
		// A channel-preserving 1x1 conv: threadblock residence holds,
		// so Bolt fuses the pair into one persistent kernel.
		c = b.Conv2D(c, b.Weight("w2", 32, 1, 1, 32), 1, 0)
		c = b.BiasAdd(c, b.Weight("b2", 32))
		c = b.Activation(c, bolt.ReLU)
		// Classifier head.
		g := b.GlobalAvgPool(c)
		d := b.Dense(g, b.Weight("wfc", 32, 10))
		d = b.BiasAdd(d, b.Weight("bfc", 10))
		return b.Build(b.Softmax(d))
	}

	// Compile with Bolt: hardware-native templated search.
	boltRes, err := bolt.Compile(build(), dev, bolt.Options{EmitSource: true})
	if err != nil {
		log.Fatal(err)
	}
	// Compile the same network with the opaque auto-tuner baseline.
	baseRes, err := bolt.Compile(build(), dev, bolt.Options{Baseline: true, BaselineTrials: 64})
	if err != nil {
		log.Fatal(err)
	}

	// Functional execution: both pipelines must agree numerically.
	in := bolt.NewTensor(bolt.FP16, 8, 16, 32, 32)
	in.FillRandom(42, 1)
	outBolt := boltRes.Module.Run(map[string]*bolt.Tensor{"image": in})
	outBase := baseRes.Module.Run(map[string]*bolt.Tensor{"image": in})

	fmt.Println("=== quickstart: Bolt vs opaque auto-tuning ===")
	fmt.Printf("output shape:              %v (probabilities, rows sum to 1)\n", outBolt.Shape())
	fmt.Printf("max |bolt - baseline|:     %.4g (FP16 noise only)\n", maxDiff(outBolt, outBase))
	fmt.Printf("bolt latency:              %.1f us  (%d kernel launches)\n",
		boltRes.Module.Time()*1e6, boltRes.Module.LaunchCount())
	fmt.Printf("baseline latency:          %.1f us  (%d kernel launches)\n",
		baseRes.Module.Time()*1e6, baseRes.Module.LaunchCount())
	fmt.Printf("speedup:                   %.2fx\n", baseRes.Module.Time()/boltRes.Module.Time())
	fmt.Printf("bolt tuning time:          %v (templated search)\n", boltRes.TuningTime.Round(1e9))
	fmt.Printf("baseline tuning time:      %v (opaque search)\n", baseRes.TuningTime.Round(1e9))

	fmt.Println("\n=== one generated kernel (white-box CUTLASS instantiation) ===")
	src := boltRes.Module.Sources()
	fmt.Println(firstBlock(src))
}

func maxDiff(a, b *bolt.Tensor) float64 {
	m := 0.0
	for i, v := range a.Data() {
		d := float64(v - b.Data()[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func firstBlock(src string) string {
	for i := 1; i < len(src); i++ {
		if src[i-1] == '\n' && src[i] == '\n' {
			return src[:i]
		}
	}
	return src
}
