// Persistent kernel fusion: the paper's deepest graph optimization
// (§3.1.1), shown end to end on a back-to-back GEMM pair from a
// recommendation model and a RepVGG-style 3x3+1x1 conv pair.
//
// For each pair the example (1) validates threadblock residence,
// (2) picks RF- vs shared-memory residence automatically, (3) checks
// the fused kernel computes exactly what the unfused pipeline does,
// and (4) reports the modeled speedup, matching Tables 1 and 2.
//
//	go run ./examples/fusion
package main

import (
	"fmt"
	"log"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/persistent"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

func main() {
	dev := gpu.T4()
	relu := cutlass.BiasActivation(cutlass.ActReLU)

	fmt.Println("=== back-to-back GEMM fusion (DLRM-style MLP, Table 1) ===")
	m, n0, k0, n1 := 16384, 64, 256, 16
	cfg0, _ := relay.ResidenceConfig(n0, dev)
	cfg1, _ := relay.ResidenceConfig(n1, dev)
	layers := []persistent.GemmLayer{
		{N: n0, K: k0, Config: cfg0, Epilogue: relu},
		{N: n1, K: n0, Config: cfg1, Epilogue: relu},
	}
	fused, err := persistent.ChooseGemmResidence(m, layers, dev)
	if err != nil {
		log.Fatal(err)
	}

	// Functional check on a smaller M (same math, faster to verify).
	const mSmall = 128
	a0 := tensor.New(tensor.FP16, mSmall, k0)
	a0.FillRandom(1, 0.5)
	w0 := tensor.New(tensor.FP16, k0, n0)
	w0.FillRandom(2, 0.2)
	w1 := tensor.New(tensor.FP16, n0, n1)
	w1.FillRandom(3, 0.2)
	b0 := tensor.New(tensor.FP16, n0)
	b0.FillRandom(4, 0.5)
	b1 := tensor.New(tensor.FP16, n1)
	b1.FillRandom(5, 0.5)

	small := &persistent.FusedGemm{M: mSmall, Layers: layers, Kind: fused.Kind}
	got := small.Run(a0, []*tensor.Tensor{w0, w1}, []*tensor.Tensor{b0, b1})
	d0 := cutlass.ReferenceGemm(a0, w0, b0, relu)
	want := cutlass.ReferenceGemm(d0, w1, b1, relu)

	fmt.Printf("chain: (%d,%d,%d) -> (%d,%d,%d), both with BiasAdd+ReLU epilogues\n", m, n0, k0, m, n1, n0)
	fmt.Printf("residence chosen: %s (Warp_N == ThreadBlock_N == GEMM_N holds)\n", fused.Kind)
	fmt.Printf("fused == unfused numerically: %v (max diff %.4g)\n",
		tensor.AllClose(got, want, 1e-2, 1e-3), tensor.MaxAbsDiff(got, want))
	unfusedT := persistent.UnfusedGemmTime(dev, m, layers)
	fmt.Printf("unfused: %.1f us (2 launches, intermediate through DRAM)\n", unfusedT*1e6)
	fmt.Printf("fused:   %.1f us (1 launch, intermediate in %s)\n", fused.Time(dev)*1e6, fused.Kind)
	fmt.Printf("speedup: %.2fx  (paper Table 1: 1.24-1.46x)\n\n", unfusedT/fused.Time(dev))

	fmt.Println("=== back-to-back Conv2D fusion (RepVGG 3x3 + 1x1, Table 2) ===")
	first := cutlass.Conv3x3(32, 56, 56, 48, 48, 1, 1)
	then := cutlass.Conv1x1(32, first.OutH(), first.OutW(), 48, 48)
	ccfg, _ := relay.ResidenceConfig(48, dev)
	convLayers := []persistent.ConvLayer{
		{Shape: first, Config: ccfg, Epilogue: relu},
		{Shape: then, Config: ccfg, Epilogue: relu},
	}
	cf, err := persistent.ChooseConvResidence(convLayers, dev)
	if err != nil {
		log.Fatal(err)
	}
	unfusedC := persistent.UnfusedConvTime(dev, convLayers)
	fmt.Printf("chain: %d^2 %d->%d 3x3 s1  ->  %d^2 %d->%d 1x1 s1 p0\n",
		first.H, first.IC, first.OC, then.H, then.IC, then.OC)
	fmt.Printf("residence chosen: %s\n", cf.Kind)
	fmt.Printf("unfused: %.1f us   fused: %.1f us   speedup: %.2fx  (paper Table 2: 1.10-2.02x)\n\n",
		unfusedC*1e6, cf.Time(dev)*1e6, unfusedC/cf.Time(dev))

	fmt.Println("=== why residence matters: a case fusion must reject ===")
	big := 3072
	if _, ok := relay.ResidenceConfig(big, dev); !ok {
		fmt.Printf("GEMM_N = %d: threadblock tile covering all of N would need %d KB of\n", big, 2*(64+big)*32*2/1024)
		fmt.Println("shared memory staging — residence infeasible, so Bolt keeps the GEMMs unfused")
		fmt.Println("(persistent kernels are designed for memory-bound small-N chains, paper §5).")
	}
}
