// BERT encoder GEMMs: the workload that motivates the paper (Figures 1
// and 8a). For each projection GEMM of BERT-base at batch 32 /
// sequence length 40, compare three ways of getting a kernel:
//
//   - the opaque auto-tuner (Ansor baseline) — thousands of trials,
//     SIMT-only schedules, no tensor cores;
//
//   - the fixed-function vendor library (cuBLAS-like) — hardware-native
//     but inflexible;
//
//   - Bolt — templated search over the same library's parameter space,
//     reaching vendor performance in seconds of profiling.
//
//     go run ./examples/bert
package main

import (
	"fmt"
	"log"

	"bolt"
	"bolt/internal/ansor"
	"bolt/internal/cublaslike"
	"bolt/internal/gpu"
	"bolt/internal/models"
	"bolt/internal/tensor"
)

func main() {
	dev := bolt.T4()
	lib := cublaslike.New(dev)

	const batch, seq = 32, 40
	fmt.Printf("BERT-base encoder GEMMs, batch=%d seq=%d (M = %d rows)\n\n", batch, seq, batch*seq)
	fmt.Printf("%-18s %12s %12s %12s %10s %12s\n",
		"GEMM (M,N,K)", "Ansor us", "cuBLAS us", "Bolt us", "Bolt/Ansor", "Bolt TFLOPS")

	for _, w := range models.BERTGemms(batch, seq) {
		// Baseline: 256-trial evolutionary search (a fraction of the
		// paper's 2000, enough to converge on this space).
		tuner := ansor.NewTuner(dev, nil, 7)
		ansorRes := tuner.TuneGemm(w.M, w.N, w.K, 256, tensor.FP16)

		// Vendor library: fixed-function heuristic pick.
		libT := lib.GemmTime(w.M, w.N, w.K)

		// Bolt: light-weight profiler over the templated space.
		cfg, boltT, err := bolt.ProfileGemm(dev, w.M, w.N, w.K)
		if err != nil {
			log.Fatal(err)
		}
		_ = cfg

		flops := 2 * float64(w.M) * float64(w.N) * float64(w.K)
		fmt.Printf("(%d,%d,%d)%*s %12.1f %12.1f %12.1f %9.1fx %12.1f\n",
			w.M, w.N, w.K, 18-len(fmt.Sprintf("(%d,%d,%d)", w.M, w.N, w.K)), "",
			ansorRes.Time*1e6, libT*1e6, boltT*1e6, ansorRes.Time/boltT, flops/boltT/1e12)
	}

	// The flexibility half of the story: Bolt fuses epilogues the
	// vendor library has no entry point for.
	fmt.Println("\nepilogue flexibility (GEMM + BiasAdd + activation in ONE kernel):")
	for _, act := range []bolt.Activation{bolt.ReLU, bolt.GELU, bolt.Hardswish, bolt.Softplus} {
		supported := "no  (must fall back to separate kernels)"
		if act == bolt.ReLU {
			supported = "yes (fixed-function entry point exists)"
		}
		fmt.Printf("  %-10s  vendor library: %-42s  bolt: yes (epilogue functor)\n", act, supported)
	}
	_ = gpu.T4

	serveMixedPrecision()
}

// serveMixedPrecision serves the BERT FFN block (whose BiasAdd + GELU
// ride the up-projection GEMM's epilogue) as four tenants of one A100
// server, each requesting a different compute precision. Reduced
// precisions are accuracy-gated at deploy time against the FP32
// unplanned-run oracle; the last tenant's impossible budget shows the
// FP32 fallback.
func serveMixedPrecision() {
	fmt.Println("\nmixed-precision serving (BERT-base FFN block, batch variants on an A100):")
	srv, err := bolt.NewServer(bolt.A100(), bolt.ServerOptions{Jobs: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	tenants := []struct {
		name   string
		prec   bolt.Precision
		budget float64
	}{
		{"ffn-fp32", bolt.PrecisionFP32, 0},
		{"ffn-fp16", bolt.PrecisionFP16, 0.05},
		{"ffn-int8", bolt.PrecisionINT8, 0.25},
		{"ffn-int8-tight", bolt.PrecisionINT8, 1e-9}, // gate must reject this
	}
	for _, tn := range tenants {
		if err := srv.Deploy(tn.name, models.BERTMLP(1, 768, 3072), bolt.DeployOptions{
			Buckets:        []int{1, 8},
			Precision:      tn.prec,
			AccuracyBudget: tn.budget,
		}); err != nil {
			log.Fatal(err)
		}
		if err := srv.Warm(tn.name); err != nil {
			log.Fatal(err)
		}
	}

	// The identical request replayed against every tenant: same bits in,
	// precision-specific bits out.
	for _, tn := range tenants {
		in := bolt.NewTensor(bolt.FP16, 1, 768)
		in.FillRandom(1, 1)
		if _, err := srv.Infer(tn.name, map[string]*bolt.Tensor{"tokens": in}, bolt.InferOptions{}); err != nil {
			log.Fatal(err)
		}
		rep, _ := srv.DeployReport(tn.name)
		div := "      (oracle)"
		if rep.Divergence >= 0 {
			div = fmt.Sprintf("div %.2e", rep.Divergence)
		}
		note := "accuracy gate passed"
		if rep.Fallback {
			note = rep.Reason
		} else if rep.Budget == 0 {
			note = "ungated"
		}
		fmt.Printf("  %-15s requested %-8s -> serving %-8s %s  %s\n",
			tn.name, rep.Requested, rep.Served, div, note)
	}
	fmt.Println("\nevery (device, bucket) variant — and its EFT dispatch cost — is " +
		"priced at the served precision's tensor-core rate, so FP16/INT8 " +
		"tenants buy real modeled throughput, never silent accuracy loss.")
}
