// Heterogeneous serving: one bolt.Server whose workers model different
// GPUs (a Tesla T4 and an A100). Every deployed model compiles
// per-device batch variants through one shared tuning log, and the
// scheduler dispatches each batch to the worker with the smallest
// modeled finish time — so the A100 absorbs most of the work while the
// T4 stays busy, and per-device stats show the split.
//
//	go run ./examples/heteroserving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bolt"
)

func buildCNN() *bolt.Graph {
	b := bolt.NewBuilder()
	x := b.Input("image", bolt.FP16, 1, 8, 32, 32)
	c := b.Conv2D(x, b.Weight("w1", 16, 3, 3, 8), 1, 1)
	c = b.BiasAdd(c, b.Weight("b1", 16))
	c = b.Activation(c, bolt.ReLU)
	c = b.MaxPool(c, 2, 2, 0)
	c = b.Conv2D(c, b.Weight("w2", 32, 3, 3, 16), 2, 1)
	c = b.BiasAdd(c, b.Weight("b2", 32))
	c = b.Activation(c, bolt.ReLU)
	g := b.GlobalAvgPool(c)
	d := b.Dense(g, b.Weight("fc", 32, 10))
	return b.Build(b.Softmax(d))
}

func main() {
	// A mixed pool: Devices replaces Workers (setting both is an
	// error). Each entry becomes one worker modeling that device.
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Devices:     []*bolt.Device{bolt.T4(), bolt.A100()},
		BatchWindow: 5 * time.Millisecond,
		Jobs:        2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	if err := srv.Deploy("cnn", buildCNN(), bolt.DeployOptions{
		Buckets: []int{1, 2, 4, 8},
	}); err != nil {
		log.Fatal(err)
	}
	// Warm compiles every (device, bucket) variant up front: 4 buckets
	// x 2 device classes, all through one shared tuning log whose keys
	// are device-scoped.
	if err := srv.Warm("cnn"); err != nil {
		log.Fatal(err)
	}

	// Offered load: 64 requests arriving as a seeded Poisson process on
	// the simulated clock, so latencies reflect queueing rather than a
	// flood at t=0.
	const requests = 64
	rng := rand.New(rand.NewSource(1))
	arrival := 0.0
	chans := make([]<-chan bolt.ServeResult, requests)
	for i := range chans {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 32, 32)
		in.FillRandom(int64(i+1), 1)
		arrival += rng.ExpFloat64() * 3e-6 // mean 3us between arrivals
		ch, err := srv.InferAsync("cnn", map[string]*bolt.Tensor{"image": in}, bolt.InferOptions{
			Priority:   bolt.PriorityBulk, // wait for full buckets
			SimArrival: arrival,
		})
		if err != nil {
			log.Fatal(err)
		}
		chans[i] = ch
	}
	served := map[string]int{}
	for _, ch := range chans {
		res := <-ch
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		served[res.Device]++
	}

	st := srv.Stats()
	fmt.Println("=== heterogeneous serving: 1x T4 + 1x A100 ===")
	fmt.Printf("requests: %d   batches: %d   makespan: %.1f us   p99 latency: %.1f us\n",
		st.Requests, st.Batches, st.SimMakespan*1e6, st.LatencyPercentile(99)*1e6)
	for _, d := range st.Devices {
		fmt.Printf("worker %d (%-14s): %3d requests, %2d batches, busy %6.1f us, share %4.1f%%, makespan %6.1f us\n",
			d.Worker, d.Device, served[d.Device], d.Batches, d.BusySeconds*1e6,
			d.UtilizationShare*100, d.SimMakespan*1e6)
	}
	fmt.Println("\nthe A100's share tracks its modeled speed advantage on this " +
		"workload: earliest-finish-time dispatch keeps both devices busy " +
		"instead of splitting batches evenly.")
}
