// Dynamic shapes: the tuning-latency motivation of the paper (§1,
// §2.1). NLP models see a new GEMM workload for every (batch,
// sequence-length) pair at serving time. Tuning-log databases miss on
// unseen shapes, and re-tuning with an opaque searcher costs an hour
// per shape — while Bolt's pre-generated sample programs make a new
// shape a few seconds of measurement.
//
//	go run ./examples/dynamicshapes
package main

import (
	"fmt"

	"bolt/internal/ansor"
	"bolt/internal/gpu"
	"bolt/internal/profiler"
	"bolt/internal/tensor"
)

func main() {
	dev := gpu.T4()

	var boltClock gpu.Clock
	prof := profiler.New(dev, &boltClock)
	prof.Measure.NoiseStdDev = 0

	fmt.Println("serving BERT-base FFN GEMMs (N=3072, K=768) under dynamic sequence lengths")
	fmt.Print("every sequence length is a brand-new workload for the tuner\n\n")
	fmt.Printf("%8s %18s %16s %22s %12s\n", "seq len", "workload", "Bolt profile", "Ansor re-tune (est.)", "kernel us")

	totalAnsor := 0.0
	for _, seq := range []int{8, 24, 40, 72, 96, 160, 224, 384, 512} {
		m := 32 * seq
		before := boltClock.Elapsed()
		res, err := prof.ProfileGemm(profiler.GemmWorkload{M: m, N: 3072, K: 768, DType: tensor.FP16})
		if err != nil {
			panic(err)
		}
		boltCost := boltClock.Elapsed() - before

		// Estimate the opaque-search cost for the same shape at the
		// paper's 2000-trial budget by timing a scaled-down search.
		var ansorClock gpu.Clock
		tuner := ansor.NewTuner(dev, &ansorClock, int64(seq))
		tuner.TuneGemm(m, 3072, 768, 100, tensor.FP16)
		ansorCost := ansorClock.Elapsed() * 2000 / 100
		totalAnsor += ansorCost

		fmt.Printf("%8d (%6d,3072,768) %15.1fs %20.0fmin %12.1f\n",
			seq, m, boltCost, ansorCost/60, res.Time*1e6)
	}

	fmt.Printf("\ncumulative tuning cost for 9 dynamic shapes:\n")
	fmt.Printf("  Bolt:  %.0f s   (sample programs compiled once, reused across shapes)\n", boltClock.Elapsed())
	fmt.Printf("  Ansor: %.1f h  (full search per shape; a tuning-log cache cannot help unseen shapes)\n", totalAnsor/3600)
	fmt.Println("\nthis asymmetry is why the paper argues opaque tuning cannot serve dynamic models (§2.1).")
}
