// Fleet serving: three bolt.Server replicas behind one EFT-backlog
// router, sharing a single tuning log. A scripted fault kills one
// worker's batch mid-stream — the router retries the affected
// requests on the healthy replicas and no request is lost. A replica
// grown at runtime warms every tenant variant measurement-free from
// its peers' shared tuning-log entries.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bolt"
)

func buildCNN() *bolt.Graph {
	b := bolt.NewBuilder()
	x := b.Input("image", bolt.FP16, 1, 8, 32, 32)
	c := b.Conv2D(x, b.Weight("w1", 16, 3, 3, 8), 1, 1)
	c = b.BiasAdd(c, b.Weight("b1", 16))
	c = b.Activation(c, bolt.ReLU)
	c = b.MaxPool(c, 2, 2, 0)
	c = b.Conv2D(c, b.Weight("w2", 32, 3, 3, 16), 2, 1)
	c = b.BiasAdd(c, b.Weight("b2", 32))
	c = b.Activation(c, bolt.ReLU)
	g := b.GlobalAvgPool(c)
	d := b.Dense(g, b.Weight("fc", 32, 10))
	return b.Build(b.Softmax(d))
}

func main() {
	flt, err := bolt.NewFleet(bolt.T4(), bolt.FleetOptions{
		Replicas: []bolt.FleetReplica{
			{Workers: 2}, {Workers: 2}, {Workers: 2},
		},
		BatchWindow: 2 * time.Millisecond,
		Jobs:        2,
		// Hedge a request on a second replica when its first attempt
		// has not come back within the timeout.
		Hedge: bolt.HedgeOptions{Timeout: 50 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer flt.Close()

	// Deploy registers the tenant on every replica; the first replica
	// profiles each bucket variant, the rest warm from the shared
	// tuning log.
	if err := flt.Deploy("cnn", buildCNN(), bolt.DeployOptions{
		Buckets: []int{1, 2, 4, 8},
	}); err != nil {
		log.Fatal(err)
	}
	if err := flt.Warm("cnn"); err != nil {
		log.Fatal(err)
	}

	// Script a failure: the next batch dispatched on replica 0's
	// worker 0 fails. The router retries its requests elsewhere.
	flt.InjectFault(0, 0, 1, bolt.BatchFault{Err: bolt.ErrInjectedKill})

	// A seeded Poisson stream on the simulated clock, routed to the
	// replica with the lowest modeled EFT backlog at enqueue time.
	const requests = 64
	rng := rand.New(rand.NewSource(1))
	arrival := 0.0
	chans := make([]<-chan bolt.FleetResult, requests)
	for i := range chans {
		in := bolt.NewTensor(bolt.FP16, 1, 8, 32, 32)
		in.FillRandom(int64(i+1), 1)
		arrival += rng.ExpFloat64() * 3e-6
		ch, err := flt.InferAsync("cnn", map[string]*bolt.Tensor{"image": in}, bolt.InferOptions{
			Priority:   bolt.PriorityBulk,
			MaxWait:    2 * time.Millisecond,
			SimArrival: arrival,
		})
		if err != nil {
			log.Fatal(err)
		}
		chans[i] = ch
	}
	retried := 0
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			log.Fatalf("request %d: %v", i, res.Err)
		}
		if res.Retried {
			retried++
		}
	}
	fmt.Printf("served %d requests, %d rescued by retry after the injected kill\n", requests, retried)

	// Grow a replica at runtime: it redeploys and warms every tenant
	// purely from the shared tuning log — zero new profiler
	// measurements — then joins the routing set.
	id, err := flt.Grow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grew replica %d (warmed measurement-free from the shared tuning log)\n", id)

	st := flt.Stats()
	fmt.Printf("fleet: routed %d, delivered %d (errors %d), retries %d, hedges issued/won/canceled %d/%d/%d\n",
		st.Routed, st.Delivered, st.DeliveredErrors, st.Retries,
		st.HedgesIssued, st.HedgesWon, st.HedgesCanceled)
	for _, r := range st.Replicas {
		fmt.Printf("  replica %d: live=%v grown=%v rows=%d batches=%d failed=%d\n",
			r.Replica, r.Live, r.Grown, r.Serve.Requests, r.Serve.Batches, r.Serve.FailedBatches)
	}
}
