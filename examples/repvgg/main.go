// System-model codesign on RepVGG (paper §3.3 and §4.3): design models
// that exploit what the compiler makes cheap.
//
//   - Principle 1: epilogue fusion makes activation functions nearly
//     free — explore them for accuracy (Table 4).
//
//   - Principle 2: persistent fusion makes channel-preserving 1x1 convs
//     cheap — deepen with them instead of expensive 3x3s (Table 5).
//
//   - Principle 3: padding is not free — design aligned shapes.
//
//     go run ./examples/repvgg
package main

import (
	"fmt"
	"log"

	"bolt"
	"bolt/internal/accuracy"
	"bolt/internal/models"
	"bolt/internal/relay"
)

func throughput(g *relay.Graph, dev *bolt.Device, batch int) float64 {
	res, err := bolt.Compile(g, dev, bolt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return res.Module.Throughput(batch)
}

func main() {
	dev := bolt.T4()
	const batch = 32

	fmt.Println("=== principle 1: explore activation functions (epilogue fusion makes them cheap) ===")
	fmt.Printf("%-12s %10s %14s\n", "activation", "top-1", "img/s (batch 32)")
	for _, act := range []bolt.Activation{bolt.ReLU, bolt.GELU, bolt.Hardswish, bolt.Softplus} {
		top1, err := accuracy.Top1("A0", accuracy.Epochs120Simple, act, false, 0)
		if err != nil {
			log.Fatal(err)
		}
		imgs := throughput(models.RepVGG("A0", batch, models.RepVGGOptions{Activation: act}), dev, batch)
		fmt.Printf("%-12s %10.2f %14.0f\n", act, top1, imgs)
	}
	fmt.Println("-> Hardswish buys +0.67 top-1 for ~nothing: pick it.")

	fmt.Println("\n=== principle 2: deepen with 1x1 convs (persistent fusion makes them cheap) ===")
	fmt.Printf("%-16s %10s %14s %10s\n", "model", "top-1", "img/s", "params(M)")
	for _, v := range []string{"A0", "A1", "B0"} {
		top1, _ := accuracy.Top1(v, accuracy.Epochs200Simple, bolt.ReLU, false, 0)
		imgs := throughput(models.RepVGG(v, batch, models.RepVGGOptions{}), dev, batch)
		fmt.Printf("RepVGG-%-9s %10.2f %14.0f %10.2f\n", v, top1, imgs, accuracy.Params(v, false))
	}
	for _, v := range []string{"A0", "A1", "B0"} {
		top1, _ := accuracy.Top1(v, accuracy.Epochs200Simple, bolt.ReLU, true, 0)
		imgs := throughput(models.RepVGG(v, batch, models.RepVGGOptions{Deepen1x1: true}), dev, batch)
		fmt.Printf("RepVGGAug-%-6s %10.2f %14.0f %10.2f\n", v, top1, imgs, accuracy.Params(v, true))
	}
	fmt.Println("-> every Aug variant gains ~0.8 top-1; Bolt fuses each 3x3+1x1 pair into one persistent kernel.")

	fmt.Println("\n=== combined: the codesign headline (paper Table 6) ===")
	a1, _ := accuracy.Top1("A1", accuracy.Epochs300Advanced, bolt.ReLU, false, 0)
	a1Aug, _ := accuracy.Top1("A1", accuracy.Epochs300Advanced, bolt.Hardswish, true, 0)
	b0, _ := accuracy.Top1("B0", accuracy.Epochs300Advanced, bolt.ReLU, false, 0)
	a1Imgs := throughput(models.RepVGG("A1", batch, models.RepVGGOptions{}), dev, batch)
	a1AugImgs := throughput(models.RepVGG("A1", batch, models.RepVGGOptions{Deepen1x1: true, Activation: bolt.Hardswish}), dev, batch)
	b0Imgs := throughput(models.RepVGG("B0", batch, models.RepVGGOptions{}), dev, batch)
	fmt.Printf("conventional deepening  A1 -> B0:        +%.2f top-1, %4.0f -> %4.0f img/s\n", b0-a1, a1Imgs, b0Imgs)
	fmt.Printf("codesigned deepening    A1 -> Aug-A1:    +%.2f top-1, %4.0f -> %4.0f img/s\n", a1Aug-a1, a1Imgs, a1AugImgs)
	fmt.Println("-> system-friendly 1x1 deepening buys more accuracy per unit of speed than more 3x3 layers.")

	fmt.Println("\n=== principle 3: align tensor shapes (padding is not free) ===")
	shape := models.Table3Workloads()[0].Shape() // IC=46 production conv
	_, tUnaligned, err := bolt.ProfileConv(dev, shape)
	if err != nil {
		log.Fatal(err)
	}
	aligned := shape
	aligned.IC = 48
	_, tAligned, err := bolt.ProfileConv(dev, aligned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conv IC=46 (alignment 2 kernels):  %.1f us\n", tUnaligned*1e6)
	fmt.Printf("conv IC=48 (alignment 8 kernels):  %.1f us\n", tAligned*1e6)
	fmt.Println("-> Bolt pads automatically, but a model designed with IC=48 never pays the pad kernel at all.")
}
