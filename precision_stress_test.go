package bolt_test

// Mixed-precision serving validation (PR 8): precision-rewritten
// tenant variants on a heterogeneous pool, the deploy-time accuracy
// gate, and the bit-identity contracts — FP32 and default-precision
// tenants against per-device RunUnplanned oracles, INT8 against the
// planned-vs-unplanned invariant. Run with -race.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bolt"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

// precisionOracles compiles a CastPrecision clone of buildTiny1 at dt
// for each pool device and returns the modules keyed by device name —
// the per-device RunUnplanned oracle a served output is checked
// against.
func precisionOracles(t *testing.T, dt tensor.DType, devs []*bolt.Device) map[string]*bolt.Module {
	t.Helper()
	oracles := map[string]*bolt.Module{}
	for _, dev := range devs {
		cg, err := relay.CastPrecision(buildTiny1(), dt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bolt.Compile(cg, dev, bolt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		oracles[dev.Name] = res.Module
	}
	return oracles
}

// TestServerMixedPrecisionServing deploys one source model as five
// tenants — default, FP32, FP16, INT8, and an INT8 request whose
// accuracy budget forces the FP32 fallback — on a {T4, A100} pool and
// floods them concurrently. Every response must be bit-identical to
// the RunUnplanned oracle of that tenant's *served* precision compiled
// for the device that answered; the deploy reports must record the
// gate decisions.
func TestServerMixedPrecisionServing(t *testing.T) {
	devs := []*bolt.Device{bolt.T4(), bolt.A100()}
	srv, err := bolt.NewServer(bolt.T4(), bolt.ServerOptions{
		Devices:     devs,
		BatchWindow: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// INT8 tenants serve bucket 1 only: dynamic activation scales are
	// per-tensor over the whole batch, so batching is not row-independent
	// at INT8 and a single-sample oracle is only exact for batch 1.
	tenants := []struct {
		name   string
		opts   bolt.DeployOptions
		served tensor.DType
	}{
		{"asis", bolt.DeployOptions{Buckets: []int{1, 2}}, tensor.FP16},
		{"fp32", bolt.DeployOptions{Buckets: []int{1, 2}, Precision: bolt.PrecisionFP32}, tensor.FP32},
		{"fp16", bolt.DeployOptions{Buckets: []int{1, 2}, Precision: bolt.PrecisionFP16, AccuracyBudget: 0.05}, tensor.FP16},
		{"int8", bolt.DeployOptions{Buckets: []int{1}, Precision: bolt.PrecisionINT8, AccuracyBudget: 0.5}, tensor.INT8},
		{"fallback", bolt.DeployOptions{Buckets: []int{1, 2}, Precision: bolt.PrecisionINT8, AccuracyBudget: 1e-9}, tensor.FP32},
	}
	for _, tn := range tenants {
		if err := srv.Deploy(tn.name, buildTiny1(), tn.opts); err != nil {
			t.Fatal(err)
		}
	}

	// Gate decisions first: they are deterministic, so assert exactly.
	if _, ok := srv.DeployReport("asis"); ok {
		t.Error("default-precision tenant must have no deploy report")
	}
	if rep, ok := srv.DeployReport("fp32"); !ok || rep.Fallback || rep.Divergence >= 0 {
		t.Errorf("fp32 report = %+v, ok=%v: want ungated, no fallback", rep, ok)
	}
	rep16, ok := srv.DeployReport("fp16")
	if !ok || rep16.Fallback {
		t.Fatalf("fp16 report = %+v, ok=%v: want gated pass", rep16, ok)
	}
	if rep16.Divergence <= 0 || rep16.Divergence > 0.05 {
		t.Errorf("fp16 divergence %g, want in (0, 0.05]", rep16.Divergence)
	}
	rep8, ok := srv.DeployReport("int8")
	if !ok || rep8.Fallback {
		t.Fatalf("int8 report = %+v, ok=%v: want gated pass", rep8, ok)
	}
	// On this tiny model the INT8 weight-grid error is averaged away by
	// the pooling tail and swallowed by FP16 glue rounding, so INT8 can
	// tie FP16's divergence; it must still be nonzero and in budget.
	if rep8.Divergence <= 0 || rep8.Divergence > 0.5 {
		t.Errorf("int8 divergence %g, want in (0, 0.5]", rep8.Divergence)
	}
	repFB, ok := srv.DeployReport("fallback")
	if !ok || !repFB.Fallback || repFB.Served != tensor.FP32 {
		t.Fatalf("fallback report = %+v, ok=%v: want FP32 fallback", repFB, ok)
	}
	if !strings.Contains(repFB.Reason, "falling back to float32") {
		t.Errorf("fallback reason %q does not explain the fallback", repFB.Reason)
	}
	t.Logf("gate: fp16 %s | int8 %s | fallback %s", rep16, rep8, repFB)

	oracles := map[tensor.DType]map[string]*bolt.Module{
		tensor.FP16: precisionOracles(t, tensor.FP16, devs),
		tensor.FP32: precisionOracles(t, tensor.FP32, devs),
		tensor.INT8: precisionOracles(t, tensor.INT8, devs),
	}
	// The default tenant serves the graph exactly as authored — its
	// oracle is the plain compile, not a CastPrecision clone.
	asisOracles := map[string]*bolt.Module{}
	for _, dev := range devs {
		res, err := bolt.Compile(buildTiny1(), dev, bolt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		asisOracles[dev.Name] = res.Module
	}

	const perTenant = 12
	var wg sync.WaitGroup
	for _, tn := range tenants {
		wg.Add(1)
		go func(name string, served tensor.DType) {
			defer wg.Done()
			byDev := oracles[served]
			if name == "asis" {
				byDev = asisOracles
			}
			for i := 0; i < perTenant; i++ {
				in := bolt.NewTensor(bolt.FP16, 1, 8, 16, 16)
				in.FillRandom(int64(1+i), 1)
				inputs := map[string]*bolt.Tensor{"image": in}
				ch, err := srv.InferAsync(name, inputs, bolt.InferOptions{Priority: bolt.PriorityBulk})
				if err != nil {
					t.Errorf("%s request %d: %v", name, i, err)
					return
				}
				res := <-ch
				if res.Err != nil {
					t.Errorf("%s request %d: %v", name, i, res.Err)
					return
				}
				mod, okDev := byDev[res.Device]
				if !okDev {
					t.Errorf("%s request %d served by unknown device %q", name, i, res.Device)
					return
				}
				if d := tensor.MaxAbsDiff(res.Output, mod.RunUnplanned(inputs)); d != 0 {
					t.Errorf("%s request %d on %s: diff %g from %v oracle", name, i, res.Device, d, served)
					return
				}
			}
		}(tn.name, tn.served)
	}
	wg.Wait()
}
