package bolt_test

// Benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation (§4). Each benchmark regenerates its
// experiment through the full pipeline (tuning + pricing on the device
// model) and reports the key scalar as a custom metric so `go test
// -bench` output can be compared against the paper directly:
//
//	go test -bench=. -benchmem
//
// The quick suite is used so a full sweep completes in seconds; run
// cmd/boltbench for the paper-fidelity trial budgets.

import (
	"strconv"
	"strings"
	"testing"

	"bolt/internal/bench"
	"bolt/internal/gpu"
)

// suite is shared across benchmarks (experiments are deterministic).
var suite = bench.NewQuickSuite(gpu.T4())

// reportColumn extracts a numeric column average and reports it as a
// benchmark metric.
func reportColumn(b *testing.B, t *bench.Table, col, metric string) {
	b.Helper()
	idx := -1
	for i, c := range t.Columns {
		if c == col {
			idx = i
		}
	}
	if idx < 0 {
		b.Fatalf("%s: no column %q", t.ID, col)
	}
	sum, n := 0.0, 0
	for _, r := range t.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(r[idx], "%"), 64)
		if err == nil {
			sum += v
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), metric)
	}
}

// BenchmarkFigure1 regenerates Figure 1 (Ansor vs cuBLAS FP16 GEMM).
// Paper shape: Ansor reaches <20% of cuBLAS.
func BenchmarkFigure1(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Figure1()
	}
	reportColumn(b, t, "Ansor", "ansor/cublas")
}

// BenchmarkFigure8a regenerates Figure 8a (GEMM, Bolt vs Ansor).
// Paper shape: 6.1-9.5x compute-bound, 1.9x memory-bound.
func BenchmarkFigure8a(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Figure8a()
	}
	reportColumn(b, t, "Bolt", "x-vs-ansor")
}

// BenchmarkFigure8b regenerates Figure 8b (Conv2D, Bolt vs Ansor).
// Paper shape: 2.7-3.5x.
func BenchmarkFigure8b(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Figure8b()
	}
	reportColumn(b, t, "Bolt", "x-vs-ansor")
}

// BenchmarkFigure9a regenerates Figure 9a (GEMM epilogue fusion).
// Paper shape: 1.45x average.
func BenchmarkFigure9a(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Figure9a()
	}
	reportColumn(b, t, "Bolt w/ fusion", "x-fusion")
}

// BenchmarkFigure9b regenerates Figure 9b (Conv2D epilogue fusion).
// Paper shape: 1.38x average.
func BenchmarkFigure9b(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Figure9b()
	}
	reportColumn(b, t, "Bolt w/ fusion", "x-fusion")
}

// BenchmarkTable1 regenerates Table 1 (persistent GEMM fusion).
// Paper shape: 1.24-1.46x.
func BenchmarkTable1(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Table1()
	}
	reportColumn(b, t, "w/ fuse", "x-fusion")
}

// BenchmarkTable2 regenerates Table 2 (persistent Conv fusion).
// Paper shape: 1.10-2.02x.
func BenchmarkTable2(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Table2()
	}
	reportColumn(b, t, "w/ fuse", "x-fusion")
}

// BenchmarkTable3 regenerates Table 3 (kernel padding).
// Paper shape: ~1.8x speedup at 9-24% pad cost.
func BenchmarkTable3(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Table3()
	}
	reportColumn(b, t, "padded", "x-padding")
}

// BenchmarkFigure10a regenerates Figure 10a (end-to-end inference).
// Paper shape: 2.8x average speedup.
func BenchmarkFigure10a(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Figure10a()
	}
	reportColumn(b, t, "speedup", "x-vs-ansor")
}

// BenchmarkFigure10b regenerates Figure 10b (tuning time).
// Paper shape: Bolt < 20 min/model, Ansor ~12 h average.
func BenchmarkFigure10b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = suite.Figure10b()
	}
}

// BenchmarkTable4 regenerates Table 4 (activation codesign).
func BenchmarkTable4(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Table4()
	}
	reportColumn(b, t, "speed (img/s)", "img/s")
}

// BenchmarkTable5 regenerates Table 5 (1x1 deepening codesign).
func BenchmarkTable5(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Table5()
	}
	reportColumn(b, t, "speed (img/s)", "img/s")
}

// BenchmarkTable6 regenerates Table 6 (combined codesign).
func BenchmarkTable6(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = suite.Table6()
	}
	reportColumn(b, t, "speed (img/s)", "img/s")
}
