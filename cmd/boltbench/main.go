// Command boltbench regenerates every table and figure in the Bolt
// paper's evaluation section on the simulated device.
//
// Usage:
//
//	boltbench                 # all experiments at paper trial budgets
//	boltbench -quick          # reduced tuning budgets (seconds)
//	boltbench -exp fig8a      # one experiment
//	boltbench -list           # list experiment ids
//	boltbench -exp tab4 -trace out.json  # also dump a Perfetto trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bolt/internal/bench"
	"bolt/internal/gpu"
	"bolt/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced tuning budgets (fast)")
	exp := flag.String("exp", "", "run a single experiment id (see -list)")
	list := flag.Bool("list", false, "list experiment ids")
	ablations := flag.Bool("ablations", false, "run the ablation/extension experiments instead")
	device := flag.String("device", "t4", "device model: t4 or a100")
	trace := flag.String("trace", "", "write the serving experiments' request-lifecycle spans to this file (Chrome trace-event JSON, viewable in Perfetto); the fleet experiment's stall arm lands in <file>.stall.json")
	flag.Parse()

	if *list {
		fmt.Println("paper experiments:")
		for _, id := range bench.IDs() {
			fmt.Printf("  %-14s %s\n", id, bench.Describe(id))
		}
		fmt.Println("ablations and extensions (-ablations):")
		for _, id := range bench.AblationIDs() {
			fmt.Printf("  %-14s %s\n", id, bench.Describe(id))
		}
		return
	}

	var dev *gpu.Device
	switch *device {
	case "t4":
		dev = gpu.T4()
	case "a100":
		dev = gpu.A100()
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(2)
	}

	s := bench.NewSuite(dev)
	if *quick {
		s = bench.NewQuickSuite(dev)
	}
	// The serving experiments double as the PR-3..PR-9 CI artifacts.
	s.ServingArtifact = "BENCH_pr3.json"
	s.MultiModelArtifact = "BENCH_pr4.json"
	s.HeteroArtifact = "BENCH_pr5.json"
	s.PaddingArtifact = "BENCH_pr6.json"
	s.ColdstartArtifact = "BENCH_pr7.json"
	s.PrecisionArtifact = "BENCH_pr8.json"
	s.FleetArtifact = "BENCH_pr9.json"
	if *trace != "" {
		s.Trace = obs.NewTracer()
		s.StallTrace = obs.NewTracer()
	}
	fmt.Printf("device: %s (%s)  quick=%v\n\n", dev.Name, dev.Arch, *quick)

	regen := func(id string) func() *bench.Table {
		if f := s.ByID(id); f != nil {
			return f
		}
		return s.AblationByID(id)
	}
	ids := bench.IDs()
	if *ablations {
		ids = bench.AblationIDs()
	}
	if *exp != "" {
		if regen(*exp) == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		t0 := time.Now()
		table := regen(id)()
		fmt.Println(table.Render())
		fmt.Printf("  [regenerated in %v]\n\n", time.Since(t0).Round(time.Millisecond))
	}

	if *trace != "" {
		writeTrace(*trace, s.Trace)
		if s.StallTrace.Len() > 0 {
			writeTrace(strings.TrimSuffix(*trace, ".json")+".stall.json", s.StallTrace)
		}
	}
}

// writeTrace exports one tracer as Chrome trace-event JSON and reports
// its span count (plus any spans dropped to full ring buffers).
func writeTrace(path string, tr *obs.Tracer) {
	if err := os.WriteFile(path, tr.ExportJSON(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write trace %s: %v\n", path, err)
		os.Exit(1)
	}
	msg := fmt.Sprintf("trace: %d spans -> %s", tr.Len(), path)
	if d := tr.Dropped(); d > 0 {
		msg += fmt.Sprintf(" (%d dropped)", d)
	}
	fmt.Println(msg)
}
