// Command boltprof runs Bolt's light-weight profiler on a single GEMM
// or Conv2D workload and dumps the ranked candidate table — the
// paper's §3.2.2 search made visible.
//
// Usage:
//
//	boltprof -gemm 1280,3072,768
//	boltprof -conv 32,56,56,64,64,3,1,1     # N,H,W,IC,OC,kernel,stride,pad
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/profiler"
	"bolt/internal/tensor"
)

func parseInts(s string, n int) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d comma-separated ints, got %q", n, s)
	}
	out := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	gemm := flag.String("gemm", "", "GEMM workload M,N,K")
	conv := flag.String("conv", "", "Conv workload N,H,W,IC,OC,kernel,stride,pad")
	top := flag.Int("top", 10, "show the top-k candidates")
	flag.Parse()

	dev := gpu.T4()
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0

	switch {
	case *gemm != "":
		dims, err := parseInts(*gemm, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		w := profiler.GemmWorkload{M: dims[0], N: dims[1], K: dims[2], DType: tensor.FP16}
		configs, times := p.RankGemm(w)
		fmt.Printf("workload %s on %s: %d candidates (hardware-native templated search)\n\n", w, dev.Name, len(configs))
		for i := 0; i < len(configs) && i < *top; i++ {
			flops := 2 * float64(dims[0]) * float64(dims[1]) * float64(dims[2])
			fmt.Printf("%2d. %-55s %8.1f us  %6.1f TFLOPS\n", i+1, configs[i].Name(), times[i]*1e6, flops/times[i]/1e12)
		}
	case *conv != "":
		dims, err := parseInts(*conv, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		shape := cutlass.ConvShape{N: dims[0], H: dims[1], W: dims[2], IC: dims[3], OC: dims[4],
			KH: dims[5], KW: dims[5], StrideH: dims[6], StrideW: dims[6], PadH: dims[7], PadW: dims[7]}
		res, err := p.ProfileConv(profiler.ConvWorkload{Shape: shape, DType: tensor.FP16})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("workload %v on %s\n", shape, dev.Name)
		fmt.Printf("best: %s\n", res.Config.Name())
		fmt.Printf("time: %.1f us (%.1f TFLOPS), %d candidates profiled\n",
			res.Time*1e6, shape.FLOPs()/res.Time/1e12, res.Candidates)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
