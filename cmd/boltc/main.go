// Command boltc compiles a model-zoo network end-to-end through Bolt
// (or the Ansor baseline) and reports per-kernel timing, throughput,
// tuning cost, and optionally the generated CUDA-like source.
//
// Usage:
//
//	boltc -model repvgg-a0
//	boltc -model resnet50 -baseline -trials 128
//	boltc -model vgg16 -emit        # print generated kernel sources
//	boltc -model repvgg-a0 -cache tune.json -jobs 8
//	boltc -model repvgg-a0 -cache tune.json   # warm: zero measurements
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bolt"
	"bolt/internal/models"
	"bolt/internal/relay"
)

func buildModel(name string, batch int) *relay.Graph {
	switch name {
	case "vgg16":
		return models.VGG(16, batch)
	case "vgg19":
		return models.VGG(19, batch)
	case "resnet18":
		return models.ResNet(18, batch)
	case "resnet50":
		return models.ResNet(50, batch)
	case "repvgg-a0":
		return models.RepVGG("A0", batch, models.RepVGGOptions{})
	case "repvgg-a1":
		return models.RepVGG("A1", batch, models.RepVGGOptions{})
	case "repvgg-b0":
		return models.RepVGG("B0", batch, models.RepVGGOptions{})
	case "repvggaug-a0":
		return models.RepVGG("A0", batch, models.RepVGGOptions{Deepen1x1: true, Activation: bolt.Hardswish})
	default:
		return nil
	}
}

func main() {
	model := flag.String("model", "repvgg-a0", "vgg16|vgg19|resnet18|resnet50|repvgg-a0|repvgg-a1|repvgg-b0|repvggaug-a0")
	batch := flag.Int("batch", 32, "inference batch size")
	baseline := flag.Bool("baseline", false, "compile with the Ansor-style baseline tuner")
	trials := flag.Int("trials", 900, "baseline tuning trials per task")
	emit := flag.Bool("emit", false, "print generated kernel source")
	topk := flag.Int("report", 10, "show the k slowest kernels")
	cacheFile := flag.String("cache", "", "persistent tuning-log database (JSON); loaded before compiling, saved after")
	jobs := flag.Int("jobs", 1, "concurrent profiling workers (tuning time reports the pool's critical path)")
	flag.Parse()
	if *jobs < 1 {
		*jobs = 1
	}

	g := buildModel(*model, *batch)
	if g == nil {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}
	if *baseline && (*cacheFile != "" || *jobs > 1) {
		fmt.Fprintln(os.Stderr, "warning: -cache and -jobs apply to the Bolt pipeline only; ignored with -baseline")
		*cacheFile = ""
		*jobs = 1
	}
	dev := bolt.T4()

	t0 := time.Now()
	res, err := bolt.Compile(g, dev, bolt.Options{
		Baseline: *baseline, BaselineTrials: *trials, EmitSource: *emit,
		CacheFile: *cacheFile, Jobs: *jobs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := res.Module

	tuner := "bolt (hardware-native templated search)"
	if *baseline {
		tuner = "ansor baseline (opaque schedule search)"
	}
	fmt.Printf("model: %s  batch: %d  device: %s\n", *model, *batch, dev.Name)
	fmt.Printf("tuner: %s\n", tuner)
	fmt.Printf("compile wall time: %v   simulated tuning time: %v\n",
		time.Since(t0).Round(time.Millisecond), res.TuningTime.Round(time.Second))
	if !*baseline {
		fmt.Printf("tuning pipeline: %d workloads -> %d unique, %d cache hits, %d profiled (%d candidate measurements, jobs=%d)\n",
			res.Tuning.Workloads, res.Tuning.UniqueWorkloads, res.Tuning.CacheHits,
			res.Tuning.ProfiledWorkloads, res.Tuning.Measurements, *jobs)
	}
	fmt.Printf("kernel launches per batch: %d\n", m.LaunchCount())
	fmt.Printf("modeled latency: %.3f ms   throughput: %.0f images/sec\n",
		m.Time()*1e3, m.Throughput(*batch))
	mem := m.Memory()
	fmt.Printf("parameters: %.1f MB   peak activation: %.1f MB\n",
		float64(mem.ParamBytes)/1e6, float64(mem.PeakActivationBytes)/1e6)
	fmt.Printf("activation arena: %.1f MB planned (%d buffers) vs %.1f MB naive sum — %.1fx reuse\n\n",
		float64(mem.PlannedArenaBytes)/1e6, mem.ArenaBuffers,
		float64(mem.NaiveActivationBytes)/1e6, mem.ReuseFactor)

	fmt.Printf("slowest kernels:\n")
	for i, r := range m.Report() {
		if i >= *topk {
			break
		}
		fmt.Printf("  %5.1f%%  %8.1f us  %-18s %s\n", r.Percent, r.Time*1e6, r.Op, r.Name)
	}

	if *emit {
		fmt.Printf("\n--- generated kernel sources ---\n%s", m.Sources())
	}
}
