package bolt_test

import (
	"strings"
	"testing"
	"time"

	"bolt"
)

// buildTiny constructs a small NCHW CNN through the public API.
func buildTiny() *bolt.Graph {
	b := bolt.NewBuilder()
	x := b.Input("image", bolt.FP16, 4, 8, 16, 16)
	c := b.Conv2D(x, b.Weight("w1", 16, 3, 3, 8), 1, 1)
	c = b.BiasAdd(c, b.Weight("b1", 16))
	c = b.Activation(c, bolt.GELU)
	c = b.Conv2D(c, b.Weight("w2", 16, 1, 1, 16), 1, 0)
	c = b.Activation(c, bolt.ReLU)
	g := b.GlobalAvgPool(c)
	d := b.Dense(g, b.Weight("fc", 16, 8))
	return b.Build(b.Softmax(d))
}

func TestPublicCompileAndRun(t *testing.T) {
	dev := bolt.T4()
	res, err := bolt.Compile(buildTiny(), dev, bolt.Options{EmitSource: true})
	if err != nil {
		t.Fatal(err)
	}
	in := bolt.NewTensor(bolt.FP16, 4, 8, 16, 16)
	in.FillRandom(1, 1)
	out := res.Module.Run(map[string]*bolt.Tensor{"image": in})
	if len(out.Shape()) != 2 || out.Shape()[0] != 4 || out.Shape()[1] != 8 {
		t.Fatalf("output shape %v", out.Shape())
	}
	if res.TuningTime <= 0 {
		t.Error("tuning time must be accounted")
	}
	if !strings.Contains(res.Module.Sources(), "cutlass") {
		t.Error("EmitSource should produce CUTLASS instantiations")
	}
}

func TestPublicBaselineAgreesNumerically(t *testing.T) {
	dev := bolt.T4()
	boltRes, err := bolt.Compile(buildTiny(), dev, bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := bolt.Compile(buildTiny(), dev, bolt.Options{Baseline: true, BaselineTrials: 16})
	if err != nil {
		t.Fatal(err)
	}
	in := bolt.NewTensor(bolt.FP16, 4, 8, 16, 16)
	in.FillRandom(2, 1)
	a := boltRes.Module.Run(map[string]*bolt.Tensor{"image": in})
	b := baseRes.Module.Run(map[string]*bolt.Tensor{"image": in})
	for i := range a.Data() {
		d := a.Data()[i] - b.Data()[i]
		if d < -0.02 || d > 0.02 {
			t.Fatalf("outputs disagree at %d: %g vs %g", i, a.Data()[i], b.Data()[i])
		}
	}
	if boltRes.Module.Time() >= baseRes.Module.Time() {
		t.Error("Bolt should be faster than the baseline")
	}
	if boltRes.TuningTime >= baseRes.TuningTime {
		t.Error("Bolt should tune faster than the baseline")
	}
}

func TestPublicProfilers(t *testing.T) {
	dev := bolt.T4()
	cfg, tm, err := bolt.ProfileGemm(dev, 1280, 3072, 768)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Error("non-positive GEMM time")
	}
	if err := cfg.Validate(dev); err != nil {
		t.Errorf("profiled config invalid: %v", err)
	}
	shape := bolt.ConvShape{N: 8, H: 28, W: 28, IC: 64, OC: 64, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	_, ct, err := bolt.ProfileConv(dev, shape)
	if err != nil {
		t.Fatal(err)
	}
	if ct <= 0 {
		t.Error("non-positive conv time")
	}
}

func TestPublicA100(t *testing.T) {
	dev := bolt.A100()
	cfg, tm, err := bolt.ProfileGemm(dev, 4096, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Ampere profiles must pick multi-stage (cp.async) pipelines.
	if cfg.Stages < 3 {
		t.Errorf("A100 config uses %d stages, want >= 3", cfg.Stages)
	}
	tflops := 2.0 * 4096 * 4096 * 4096 / tm / 1e12
	if tflops < 200 {
		t.Errorf("A100 large GEMM at %.0f TFLOPS, want near the 312 peak", tflops)
	}
	// End-to-end compile on Ampere.
	res, err := bolt.Compile(buildTiny(), dev, bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Module.Time() <= 0 {
		t.Error("A100 module time must be positive")
	}
}

func TestTuningTimeBudget(t *testing.T) {
	// The paper's headline: common CNNs tune within 20 minutes.
	dev := bolt.T4()
	res, err := bolt.Compile(buildTiny(), dev, bolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuningTime > 20*time.Minute {
		t.Errorf("tuning took %v, want < 20 minutes", res.TuningTime)
	}
}
