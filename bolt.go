// Package bolt is the public API of the Bolt reproduction: an
// end-to-end tensor-program optimizer that bridges auto-tuning
// flexibility and hardware-native templated-library performance
// (Xing, Wang, Zhang, Chen, Chen, Zhu — "Bolt: Bridging the Gap
// between Auto-tuners and Hardware-native Performance", MLSys 2022).
//
// The typical flow mirrors the paper's Figure 3:
//
//	g := bolt.NewBuilder()            // author or import a model graph
//	... build graph ...
//	dev := bolt.T4()                  // pick a device model
//	mod, err := bolt.Compile(graph, dev, bolt.Options{})
//	out := mod.Run(inputs)            // functional execution
//	imgs := mod.Throughput(batch)     // modeled performance
//
// Compile runs graph-level optimization (BatchNorm folding, epilogue
// fusion, layout transformation, kernel padding, persistent kernel
// fusion), BYOC partitioning, hardware-native profiling of every
// templated kernel, and code generation. Set Options.Baseline to
// compile through the opaque Ansor-style auto-tuner instead, for
// comparisons.
package bolt

import (
	"time"

	"bolt/internal/ansor"
	"bolt/internal/codegen"
	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// Re-exported core types. The implementation lives in internal
// packages; these aliases are the supported public surface.
type (
	// Device is a GPU performance model (the simulated hardware).
	Device = gpu.Device
	// Graph is a relay dataflow graph.
	Graph = relay.Graph
	// Builder constructs graphs with shape inference.
	Builder = relay.Builder
	// Node is one operator in a graph.
	Node = relay.Node
	// Module is a compiled, runnable, priceable model.
	Module = rt.Module
	// Tensor is a dense n-dimensional array.
	Tensor = tensor.Tensor
	// Activation enumerates epilogue nonlinearities.
	Activation = cutlass.Activation
	// ConvShape describes a convolution problem.
	ConvShape = cutlass.ConvShape
	// GemmConfig is a CUTLASS-style template parameterization.
	GemmConfig = cutlass.GemmConfig
)

// Activation values.
const (
	ReLU      = cutlass.ActReLU
	GELU      = cutlass.ActGELU
	Hardswish = cutlass.ActHardswish
	Softplus  = cutlass.ActSoftplus
	Sigmoid   = cutlass.ActSigmoid
	Identity  = cutlass.ActIdentity
)

// Data types.
const (
	FP16 = tensor.FP16
	FP32 = tensor.FP32
)

// T4 returns the paper's evaluation device: an NVIDIA Tesla T4 model.
func T4() *Device { return gpu.T4() }

// A100 returns an NVIDIA A100 model (sm_80).
func A100() *Device { return gpu.A100() }

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return relay.NewBuilder() }

// NewTensor allocates a zero tensor.
func NewTensor(dt tensor.DType, shape ...int) *Tensor { return tensor.New(dt, shape...) }

// Options configures Compile.
type Options struct {
	// Baseline compiles with the opaque Ansor-style auto-tuner instead
	// of Bolt's templated search (for comparison experiments).
	Baseline bool
	// BaselineTrials is the per-task measurement budget for the
	// baseline tuner (default 900, the TVM-recommended setting).
	BaselineTrials int
	// EmitSource attaches generated CUDA-like CUTLASS instantiations to
	// each Bolt kernel (inspect with Module.Sources).
	EmitSource bool
	// Seed controls baseline search randomness.
	Seed int64
}

// CompileResult bundles the module with tuning metadata.
type CompileResult struct {
	Module *Module
	// TuningTime is the simulated wall-clock cost of auto-tuning
	// (profiling for Bolt; search for the baseline).
	TuningTime time.Duration
}

// Compile optimizes and compiles a graph for the device.
func Compile(g *Graph, dev *Device, opts Options) (*CompileResult, error) {
	var clock gpu.Clock
	if opts.Baseline {
		relay.FoldBatchNorm(g)
		relay.FuseEpilogue(g)
		trials := opts.BaselineTrials
		if trials == 0 {
			trials = 900
		}
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		m, err := codegen.Compile(g, dev, codegen.Options{
			Tuner:       codegen.TunerAnsor,
			AnsorTuner:  ansor.NewTuner(dev, &clock, seed),
			AnsorTrials: trials,
		})
		if err != nil {
			return nil, err
		}
		return &CompileResult{Module: m, TuningTime: clock.ElapsedDuration()}, nil
	}

	if err := relay.Optimize(g, dev); err != nil {
		return nil, err
	}
	p := profiler.New(dev, &clock)
	m, err := codegen.Compile(g, dev, codegen.Options{
		Tuner:      codegen.TunerBolt,
		Profiler:   p,
		EmitSource: opts.EmitSource,
	})
	if err != nil {
		return nil, err
	}
	// Charge the final module build (instantiating and compiling each
	// selected template into the runtime file).
	kernels := 0
	for i := range m.Kernels {
		if m.Kernels[i].Launches > 0 && m.Kernels[i].Node.IsAnchor() {
			kernels++
		}
	}
	clock.Advance(30 + 8*float64(kernels))
	return &CompileResult{Module: m, TuningTime: clock.ElapsedDuration()}, nil
}

// ProfileGemm searches the templated-kernel parameter space for one
// GEMM workload and returns the best configuration with its modeled
// time in seconds — the light-weight profiler of paper §3.2.2 as a
// standalone tool.
func ProfileGemm(dev *Device, m, n, k int) (GemmConfig, float64, error) {
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	res, err := p.ProfileGemm(profiler.GemmWorkload{M: m, N: n, K: k, DType: tensor.FP16})
	if err != nil {
		return GemmConfig{}, 0, err
	}
	return res.Config, res.Time, nil
}

// ProfileConv is the convolution counterpart of ProfileGemm.
func ProfileConv(dev *Device, s ConvShape) (GemmConfig, float64, error) {
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	res, err := p.ProfileConv(s)
	if err != nil {
		return GemmConfig{}, 0, err
	}
	return res.Config, res.Time, nil
}
