// Package bolt is the public API of the Bolt reproduction: an
// end-to-end tensor-program optimizer that bridges auto-tuning
// flexibility and hardware-native templated-library performance
// (Xing, Wang, Zhang, Chen, Chen, Zhu — "Bolt: Bridging the Gap
// between Auto-tuners and Hardware-native Performance", MLSys 2022).
//
// The typical flow mirrors the paper's Figure 3:
//
//	g := bolt.NewBuilder()            // author or import a model graph
//	... build graph ...
//	dev := bolt.T4()                  // pick a device model
//	mod, err := bolt.Compile(graph, dev, bolt.Options{})
//	out := mod.Run(inputs)            // functional execution
//	imgs := mod.Throughput(batch)     // modeled performance
//
// Compile runs graph-level optimization (BatchNorm folding, epilogue
// fusion, layout transformation, kernel padding, persistent kernel
// fusion), BYOC partitioning, hardware-native profiling of every
// templated kernel, and code generation. Set Options.Baseline to
// compile through the opaque Ansor-style auto-tuner instead, for
// comparisons.
package bolt

import (
	"fmt"
	"os"
	"time"

	"bolt/internal/ansor"
	"bolt/internal/codegen"
	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// Re-exported core types. The implementation lives in internal
// packages; these aliases are the supported public surface.
type (
	// Device is a GPU performance model (the simulated hardware).
	Device = gpu.Device
	// Graph is a relay dataflow graph.
	Graph = relay.Graph
	// Builder constructs graphs with shape inference.
	Builder = relay.Builder
	// Node is one operator in a graph.
	Node = relay.Node
	// Module is a compiled, runnable, priceable model.
	Module = rt.Module
	// Tensor is a dense n-dimensional array.
	Tensor = tensor.Tensor
	// TuningStats reports what the compilation pipeline's tuning stages
	// did: workload counts, dedup, cache hits, and measurements.
	TuningStats = rt.TuningStats
	// Activation enumerates epilogue nonlinearities.
	Activation = cutlass.Activation
	// ConvShape describes a convolution problem.
	ConvShape = cutlass.ConvShape
	// GemmConfig is a CUTLASS-style template parameterization.
	GemmConfig = cutlass.GemmConfig
)

// Activation values.
const (
	ReLU      = cutlass.ActReLU
	GELU      = cutlass.ActGELU
	Hardswish = cutlass.ActHardswish
	Softplus  = cutlass.ActSoftplus
	Sigmoid   = cutlass.ActSigmoid
	Identity  = cutlass.ActIdentity
)

// Data types.
const (
	FP16 = tensor.FP16
	FP32 = tensor.FP32
	INT8 = tensor.INT8
)

// T4 returns the paper's evaluation device: an NVIDIA Tesla T4 model.
func T4() *Device { return gpu.T4() }

// A100 returns an NVIDIA A100 model (sm_80).
func A100() *Device { return gpu.A100() }

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return relay.NewBuilder() }

// NewTensor allocates a zero tensor.
func NewTensor(dt tensor.DType, shape ...int) *Tensor { return tensor.New(dt, shape...) }

// Options configures Compile.
type Options struct {
	// Baseline compiles with the opaque Ansor-style auto-tuner instead
	// of Bolt's templated search (for comparison experiments).
	Baseline bool
	// BaselineTrials is the per-task measurement budget for the
	// baseline tuner (default 900, the TVM-recommended setting).
	BaselineTrials int
	// EmitSource attaches generated CUDA-like CUTLASS instantiations to
	// each Bolt kernel (inspect with Module.Sources).
	EmitSource bool
	// Seed controls baseline search randomness.
	Seed int64
	// CacheFile names a persistent tuning-log database (JSON). If the
	// file exists it is loaded before compilation — workloads found in
	// it skip profiling entirely — and the (possibly grown) database is
	// written back afterwards. A warm recompile of the same model
	// performs zero measurements.
	CacheFile string
	// Jobs is the number of concurrent profiling workers. TuningTime
	// reports the pool's critical path (max across workers), so more
	// jobs means honestly less simulated tuning time. Values < 1 mean 1.
	Jobs int
	// TopK, when > 0, enables guided tuning: the cost model persisted
	// in CacheFile ranks each workload's candidates and only the k
	// best are measured. Requires CacheFile (the model lives in the
	// tuning log); until the model has trained, sweeps stay full. The
	// default (0) is the unchanged full sweep.
	TopK int
	// TrustThreshold, when > 0, lets sufficiently confident models skip
	// measurement entirely: once the cost model's held-out
	// rank-correlation confidence reaches the threshold, workloads
	// resolve to the predicted-best config with zero measurements, and
	// their tunelog entries are flagged predicted. Requires CacheFile.
	TrustThreshold float64
}

// CompileResult bundles the module with tuning metadata.
type CompileResult struct {
	Module *Module
	// TuningTime is the simulated wall-clock cost of auto-tuning
	// (profiling for Bolt; search for the baseline). With Jobs > 1 the
	// profiling portion is the pool's critical path, not the sum.
	TuningTime time.Duration
	// Tuning breaks the pipeline's work down: total and unique
	// workloads, cache hits (unique workloads resolved from CacheFile
	// without measuring), and candidate kernels actually measured.
	Tuning TuningStats
}

// loadCache reads the tuning-log database at path, returning an empty
// log when the file does not yet exist (a cold cache is not an error).
func loadCache(path string) (*tunelog.Log, error) {
	log := tunelog.New()
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return log, nil
	}
	if err != nil {
		return nil, fmt.Errorf("bolt: opening cache: %w", err)
	}
	defer f.Close()
	if err := log.Load(f); err != nil {
		return nil, fmt.Errorf("bolt: loading cache %s: %w", path, err)
	}
	return log, nil
}

// saveCache writes the tuning-log database back to path atomically
// (temp file + rename), so an interrupted compile never leaves a
// truncated database behind.
func saveCache(log *tunelog.Log, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("bolt: writing cache: %w", err)
	}
	if err := log.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("bolt: writing cache %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bolt: writing cache %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bolt: writing cache: %w", err)
	}
	return nil
}

// Compile optimizes and compiles a graph for the device.
func Compile(g *Graph, dev *Device, opts Options) (*CompileResult, error) {
	var clock gpu.Clock
	if opts.Baseline {
		// The opaque tuner has no workload-keyed cache (a tuning log
		// cannot help shapes it searches from scratch, §2.1) and no
		// profiling pool, so these options would be silently dropped —
		// fail loudly instead.
		if opts.CacheFile != "" {
			return nil, fmt.Errorf("bolt: Options.CacheFile is not supported with Baseline: the Ansor-style search has no persistent tuning-log integration")
		}
		if opts.Jobs > 1 {
			return nil, fmt.Errorf("bolt: Options.Jobs is not supported with Baseline: the Ansor-style search has no profiling pool")
		}
		if opts.TopK > 0 || opts.TrustThreshold > 0 {
			return nil, fmt.Errorf("bolt: guided tuning (TopK/TrustThreshold) is not supported with Baseline: the Ansor-style search has its own internal cost model")
		}
		relay.FoldBatchNorm(g)
		relay.FuseEpilogue(g)
		trials := opts.BaselineTrials
		if trials == 0 {
			trials = 900
		}
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		m, err := codegen.Compile(g, dev, codegen.Options{
			Tuner:       codegen.TunerAnsor,
			AnsorTuner:  ansor.NewTuner(dev, &clock, seed),
			AnsorTrials: trials,
		})
		if err != nil {
			return nil, err
		}
		return &CompileResult{Module: m, TuningTime: clock.ElapsedDuration()}, nil
	}

	if (opts.TopK > 0 || opts.TrustThreshold > 0) && opts.CacheFile == "" {
		return nil, fmt.Errorf("bolt: guided tuning (TopK=%d, TrustThreshold=%g) requires Options.CacheFile: the cost model persists in the tuning log", opts.TopK, opts.TrustThreshold)
	}
	var cache *tunelog.Log
	if opts.CacheFile != "" {
		var err error
		if cache, err = loadCache(opts.CacheFile); err != nil {
			return nil, err
		}
	}
	res, err := compileTemplated(g, dev, templatedConfig{
		cache:          cache,
		jobs:           opts.Jobs,
		emitSource:     opts.EmitSource,
		topK:           opts.TopK,
		trustThreshold: opts.TrustThreshold,
	})
	if err != nil {
		return nil, err
	}
	if cache != nil {
		if err := saveCache(cache, opts.CacheFile); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// templatedConfig parameterizes one templated compile: the shared
// tuning log (nil for no cache, no guidance), the profiling pool
// width, and the guided-tuning knobs.
type templatedConfig struct {
	cache          *tunelog.Log
	jobs           int
	emitSource     bool
	topK           int
	trustThreshold float64
}

// compileTemplated is the templated (non-baseline) pipeline over an
// in-memory tuning log: graph optimization, profiling through the
// log, code generation, and the module-build charge. Compile wraps it
// with CacheFile load/save; the serving Server calls it directly with
// a log it loaded once and shares across every tenant's variant
// compiles.
func compileTemplated(g *Graph, dev *Device, cfg templatedConfig) (*CompileResult, error) {
	var clock gpu.Clock
	if err := relay.Optimize(g, dev); err != nil {
		return nil, err
	}
	p := profiler.New(dev, &clock)
	m, err := codegen.Compile(g, dev, codegen.Options{
		Tuner:          codegen.TunerBolt,
		Profiler:       p,
		Log:            cfg.cache,
		Jobs:           cfg.jobs,
		TopK:           cfg.topK,
		TrustThreshold: cfg.trustThreshold,
		EmitSource:     cfg.emitSource,
	})
	if err != nil {
		return nil, err
	}
	// Charge the final module build (instantiating and compiling each
	// selected template into the runtime file).
	clock.Advance(gpu.ModuleBuildSeconds(m.TemplatedKernels()))
	return &CompileResult{
		Module:     m,
		TuningTime: clock.ElapsedDuration(),
		Tuning:     m.Tuning,
	}, nil
}

// ProfileGemm searches the templated-kernel parameter space for one
// GEMM workload and returns the best configuration with its modeled
// time in seconds — the light-weight profiler of paper §3.2.2 as a
// standalone tool.
func ProfileGemm(dev *Device, m, n, k int) (GemmConfig, float64, error) {
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	res, err := p.ProfileGemm(profiler.GemmWorkload{M: m, N: n, K: k, DType: tensor.FP16})
	if err != nil {
		return GemmConfig{}, 0, err
	}
	return res.Config, res.Time, nil
}

// ProfileConv is the convolution counterpart of ProfileGemm.
func ProfileConv(dev *Device, s ConvShape) (GemmConfig, float64, error) {
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	res, err := p.ProfileConv(profiler.ConvWorkload{Shape: s, DType: tensor.FP16})
	if err != nil {
		return GemmConfig{}, 0, err
	}
	return res.Config, res.Time, nil
}
