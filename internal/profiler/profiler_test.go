package profiler

import (
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

func TestCandidateCountIsTens(t *testing.T) {
	p := New(gpu.T4(), nil)
	for _, w := range []GemmWorkload{
		{1024, 1024, 1024, tensor.FP16},
		{32, 768, 768, tensor.FP16},
		{1280, 3072, 768, tensor.FP16},
	} {
		c := p.GemmCandidates(w)
		if len(c) == 0 {
			t.Fatalf("%s: no candidates", w)
		}
		// "For each GPU architecture, Bolt produces tens of best
		// parameter combinations" (§3.2.2) — not thousands.
		if len(c) > 100 {
			t.Errorf("%s: %d candidates, want tens", w, len(c))
		}
		for _, cfg := range c {
			if err := cfg.Validate(p.dev); err != nil {
				t.Fatalf("invalid candidate: %v", err)
			}
			if !cfg.SupportsProblem(w.M, w.N, w.K) {
				t.Fatalf("candidate %s cannot run %s", cfg.Name(), w)
			}
			if cfg.Op != gpu.OpClassTensorOp {
				t.Error("profiler candidates must target tensor cores")
			}
		}
	}
}

func TestSmallProblemsGetSmallTiles(t *testing.T) {
	p := New(gpu.T4(), nil)
	small := p.GemmCandidates(GemmWorkload{128, 128, 512, tensor.FP16})
	for _, c := range small {
		if c.TB.M > 64 || c.TB.N > 64 {
			t.Errorf("small problem offered %v threadblock (SM starvation)", c.TB)
		}
	}
	big := p.GemmCandidates(GemmWorkload{4096, 4096, 1024, tensor.FP16})
	found := false
	for _, c := range big {
		if c.TB.M >= 128 && c.TB.N >= 128 {
			found = true
		}
	}
	if !found {
		t.Error("large problem should include large threadblocks")
	}
}

func TestAlignmentFollowsShape(t *testing.T) {
	p := New(gpu.T4(), nil)
	for _, c := range p.GemmCandidates(GemmWorkload{1024, 1024, 1024, tensor.FP16}) {
		if c.AlignA != 8 {
			t.Error("divisible-by-8 shape should use alignment 8")
		}
	}
	for _, c := range p.GemmCandidates(GemmWorkload{1024, 1022, 1024, tensor.FP16}) {
		if c.AlignB != 2 {
			t.Errorf("N=1022 should force alignment 2, got %d", c.AlignB)
		}
	}
}

func TestProfileGemmPicksFastest(t *testing.T) {
	d := gpu.T4()
	p := New(d, nil)
	p.Measure.NoiseStdDev = 0 // deterministic for the oracle check
	w := GemmWorkload{1280, 3072, 768, tensor.FP16}
	res, err := p.ProfileGemm(w)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: the chosen config's model time must equal the minimum
	// over all candidates.
	bestOracle := -1.0
	for _, cfg := range p.GemmCandidates(w) {
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		tm := d.KernelTime(g.Desc(d, w.M, w.N, w.K))
		if bestOracle < 0 || tm < bestOracle {
			bestOracle = tm
		}
	}
	got := d.KernelTime((&cutlass.Gemm{Config: res.Config, Epilogue: cutlass.DefaultEpilogue()}).Desc(d, w.M, w.N, w.K))
	if got != bestOracle {
		t.Errorf("profiler picked %.4g, oracle best is %.4g", got, bestOracle)
	}
}

func TestProfileCaching(t *testing.T) {
	var clock gpu.Clock
	p := New(gpu.T4(), &clock)
	w := GemmWorkload{1024, 1024, 1024, tensor.FP16}
	if _, err := p.ProfileGemm(w); err != nil {
		t.Fatal(err)
	}
	before := clock.Elapsed()
	if _, err := p.ProfileGemm(w); err != nil {
		t.Fatal(err)
	}
	if clock.Elapsed() != before {
		t.Error("cached re-profile must not charge the clock")
	}
}

func TestCompileChargedOncePerConfig(t *testing.T) {
	var clock gpu.Clock
	p := New(gpu.T4(), &clock)
	// Two workloads of the same size class share sample programs;
	// compile cost must not double.
	if _, err := p.ProfileGemm(GemmWorkload{1024, 1024, 1024, tensor.FP16}); err != nil {
		t.Fatal(err)
	}
	afterFirst := clock.Elapsed()
	if _, err := p.ProfileGemm(GemmWorkload{2048, 2048, 2048, tensor.FP16}); err != nil {
		t.Fatal(err)
	}
	secondCost := clock.Elapsed() - afterFirst
	if secondCost > afterFirst/2 {
		t.Errorf("second workload cost %.1fs vs first %.1fs: sample programs not reused", secondCost, afterFirst)
	}
}

func TestProfileConv(t *testing.T) {
	p := New(gpu.T4(), nil)
	s := cutlass.Conv3x3(32, 56, 56, 64, 64, 1, 1)
	res, err := p.ProfileConv(ConvWorkload{Shape: s, DType: tensor.FP16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Candidates == 0 {
		t.Errorf("bad conv result: %+v", res)
	}
	conv := &cutlass.Conv2D{Shape: s, Config: res.Config, Epilogue: cutlass.DefaultEpilogue()}
	if !conv.SupportsProblem() {
		t.Error("chosen conv config violates channel alignment")
	}
}

func TestProfileConvUnalignedChannels(t *testing.T) {
	p := New(gpu.T4(), nil)
	// IC=46: alignment 2 kernels only.
	s := cutlass.Conv3x3(32, 20, 26, 46, 32, 1, 1)
	res, err := p.ProfileConv(ConvWorkload{Shape: s, DType: tensor.FP16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.AlignA != 2 {
		t.Errorf("IC=46 should force alignment 2, got %d", res.Config.AlignA)
	}
}

func TestTuningTimeIsMinutesNotHours(t *testing.T) {
	var clock gpu.Clock
	p := New(gpu.T4(), &clock)
	// Profile a ResNet-50-like task set (Figure 10b: Bolt finishes all
	// models within 20 minutes).
	shapes := []cutlass.ConvShape{
		cutlass.Conv3x3(32, 56, 56, 64, 64, 1, 1),
		cutlass.Conv3x3(32, 56, 56, 128, 128, 2, 1),
		cutlass.Conv3x3(32, 28, 28, 128, 128, 1, 1),
		cutlass.Conv3x3(32, 28, 28, 256, 256, 2, 1),
		cutlass.Conv3x3(32, 14, 14, 256, 256, 1, 1),
		cutlass.Conv3x3(32, 14, 14, 512, 512, 2, 1),
		cutlass.Conv3x3(32, 7, 7, 512, 512, 1, 1),
	}
	for _, s := range shapes {
		if _, err := p.ProfileConv(ConvWorkload{Shape: s, DType: tensor.FP16}); err != nil {
			t.Fatal(err)
		}
	}
	if min := clock.Elapsed() / 60; min > 20 {
		t.Errorf("profiling 7 tasks took %.1f simulated minutes, want < 20", min)
	}
}
