package profiler

import (
	"sync"
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// TestOddShapes: the profiler must serve unaligned and degenerate
// problem shapes by falling back to narrower alignments, never
// erroring on a shape a model could legitimately contain.
func TestOddShapes(t *testing.T) {
	p := New(gpu.T4(), nil)
	shapes := []GemmWorkload{
		{M: 1, N: 8, K: 8, DType: tensor.FP16},       // single row
		{M: 7, N: 9, K: 11, DType: tensor.FP16},      // all-odd (alignment 1)
		{M: 100000, N: 8, K: 8, DType: tensor.FP16},  // extreme aspect
		{M: 33, N: 1022, K: 62, DType: tensor.FP16},  // alignment 2
		{M: 4096, N: 4, K: 8192, DType: tensor.FP16}, // skinny N
	}
	for _, w := range shapes {
		res, err := p.ProfileGemm(w)
		if err != nil {
			t.Errorf("%s: %v", w, err)
			continue
		}
		if res.Time <= 0 {
			t.Errorf("%s: non-positive time", w)
		}
		if !res.Config.SupportsProblem(w.M, w.N, w.K) {
			t.Errorf("%s: chosen config cannot run the problem", w)
		}
	}
}

// TestOddAlignmentCandidates: an all-odd shape must use alignment-1
// kernels and still validate.
func TestOddAlignmentCandidates(t *testing.T) {
	p := New(gpu.T4(), nil)
	for _, c := range p.GemmCandidates(GemmWorkload{M: 7, N: 9, K: 11, DType: tensor.FP16}) {
		if c.AlignA != 1 || c.AlignB != 1 {
			t.Fatalf("odd shape got alignment %d/%d", c.AlignA, c.AlignB)
		}
	}
}

// TestConcurrentProfiling: the cache must be safe under concurrent
// profiling of overlapping workload sets (the compiler profiles tasks
// from multiple goroutines in principle).
func TestConcurrentProfiling(t *testing.T) {
	p := New(gpu.T4(), nil)
	shapes := []cutlass.ConvShape{
		cutlass.Conv3x3(8, 28, 28, 64, 64, 1, 1),
		cutlass.Conv3x3(8, 28, 28, 128, 128, 1, 1),
		cutlass.Conv1x1(8, 28, 28, 64, 64),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.ProfileConv(ConvWorkload{Shape: shapes[i%len(shapes)], DType: tensor.FP16}); err != nil {
				errs <- err
			}
			if _, err := p.ProfileGemm(GemmWorkload{M: 512, N: 512, K: 512, DType: tensor.FP16}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAmpereCandidates: on sm_80 the candidates must use the Ampere
// instruction shape and multistage pipelines.
func TestAmpereCandidates(t *testing.T) {
	p := New(gpu.A100(), nil)
	cands := p.GemmCandidates(GemmWorkload{M: 4096, N: 4096, K: 4096, DType: tensor.FP16})
	if len(cands) == 0 {
		t.Fatal("no A100 candidates")
	}
	for _, c := range cands {
		if c.Inst != (cutlass.Shape3{M: 16, N: 8, K: 16}) {
			t.Fatalf("wrong instruction shape %v for sm_80", c.Inst)
		}
		if c.Stages < 3 {
			t.Fatalf("sm_80 candidate with %d stages", c.Stages)
		}
	}
}

// TestDeterministicChoice: with noiseless measurement the profiler
// must pick the same config every time (reproducible builds).
func TestDeterministicChoice(t *testing.T) {
	w := GemmWorkload{M: 1280, N: 768, K: 768, DType: tensor.FP16}
	var prev *Result
	for i := 0; i < 3; i++ {
		p := New(gpu.T4(), nil)
		p.Measure.NoiseStdDev = 0
		res, err := p.ProfileGemm(w)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && res.Config.Name() != prev.Config.Name() {
			t.Fatalf("profiler not deterministic: %s vs %s", res.Config.Name(), prev.Config.Name())
		}
		prev = &res
	}
}
