// Package profiler implements Bolt's light-weight hardware-native
// performance profiler (paper §3.2.2).
//
// Unlike opaque auto-tuners that explore thousands of candidate
// schedules, the profiler *knows the hardware*: for each GPU
// architecture it enumerates only tens of template parameter
// combinations selected by white-box tuning guidelines —
//
//   - large warp tiles within register-file capacity (higher
//     compute-to-memory ratio);
//   - four or eight warps per threadblock;
//   - small threadblocks for small problems (launch enough blocks to
//     keep SMs busy);
//   - the widest alignment the problem shape divides;
//
// then measures each candidate on the device. Sample kernels are
// generated once per architecture and reused across models and
// workloads, so per-workload tuning costs seconds, not hours.
package profiler

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"

	"bolt/internal/costmodel"
	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// GemmWorkload identifies one GEMM problem.
type GemmWorkload struct {
	M, N, K int
	DType   tensor.DType
}

// String renders like the paper's workload tables: "(M, N, K)".
func (w GemmWorkload) String() string { return fmt.Sprintf("(%d, %d, %d)", w.M, w.N, w.K) }

// ConvWorkload identifies one convolution problem: the full shape plus
// the element type (same-shape convs of different dtypes are distinct
// tuning tasks, mirroring tunelog.Key).
type ConvWorkload struct {
	Shape cutlass.ConvShape
	DType tensor.DType
}

// Result is the outcome of profiling one workload.
type Result struct {
	Config cutlass.GemmConfig
	// Time is the measured kernel time in seconds for the best config
	// (the model's predicted time when Predicted is set).
	Time float64
	// Candidates is how many configurations were actually measured
	// (the full enumeration on an unguided sweep; at most Guidance.TopK
	// under guidance; 0 for a predicted resolution).
	Candidates int
	// Enumerated is how many configurations the architecture-guided
	// search enumerated before guidance cut the list (0 for cache-hit
	// results, which enumerate nothing).
	Enumerated int
	// Predicted marks a measurement-free resolution: the trust gate
	// accepted the cost model's pick without running a single sample.
	Predicted bool
	// PredictionError is the relative error |predicted - measured| /
	// measured of the model's score for the chosen config, when a
	// trained model was consulted and the config was measured; -1 when
	// not applicable.
	PredictionError float64
}

// Guidance configures cost-model-guided candidate selection.
type Guidance struct {
	// Model ranks candidates and learns from every measurement. Nil
	// disables guidance entirely (full sweep, no training).
	Model *costmodel.Predictor
	// TopK measures only the model's k best-ranked candidates per
	// workload (0 = full sweep). Ignored until the model is trained.
	TopK int
	// TrustThreshold skips measurement entirely — emitting the model's
	// predicted-best config — once Model.Confidence() (held-out rank
	// correlation) reaches it. 0 = never skip.
	TrustThreshold float64
}

// Plan is a guided profiling decision for one workload: which
// candidates to measure (ranked best-first under guidance), or a
// measurement-free predicted pick.
type Plan struct {
	// Enumerated is the full candidate count before guidance.
	Enumerated int
	// Measure is the candidate subset to measure; nil when Predicted.
	Measure []cutlass.GemmConfig
	// Guided reports whether the model reordered or cut the list.
	Guided bool
	// Predicted means skip measurement: Config and Time carry the
	// model's pick and its predicted kernel seconds.
	Predicted bool
	Config    cutlass.GemmConfig
	Time      float64
}

// Profiler searches template parameters for GEMM and Conv workloads on
// one device, caching best configurations per workload (the paper's
// pre-generated, reusable sample programs).
type Profiler struct {
	dev   *gpu.Device
	clock *gpu.Clock

	mu        sync.Mutex
	gemmCache map[GemmWorkload]Result
	convCache map[ConvWorkload]Result

	// CompileLatency is the simulated cost of building one sample
	// program. Bolt pre-generates them per architecture, so this is
	// charged once per distinct config, not per workload.
	CompileLatency float64
	compiled       map[string]bool

	// Measure controls the per-candidate measurement methodology.
	Measure gpu.MeasureOptions

	// Guide configures cost-model-guided candidate selection. Set it
	// before profiling starts; Worker copies it, so every pool worker
	// shares one model. The zero value is a full sweep.
	Guide Guidance
}

// New creates a profiler for the device. The clock accumulates
// simulated tuning time (Figure 10b); pass nil to skip accounting.
func New(dev *gpu.Device, clock *gpu.Clock) *Profiler {
	m := gpu.QuickMeasure()
	// Per-run profiling-harness overhead: launching a fresh sample
	// kernel, synchronizing, and reading timers costs milliseconds per
	// candidate regardless of how fast the kernel itself runs. It is
	// most of the measurement bill for microsecond kernels, and exactly
	// what guided top-k pruning saves.
	m.LaunchOverhead = 5e-3
	return &Profiler{
		dev:            dev,
		clock:          clock,
		gemmCache:      make(map[GemmWorkload]Result),
		convCache:      make(map[ConvWorkload]Result),
		CompileLatency: 0.9, // seconds per sample program (nvcc on one template)
		compiled:       make(map[string]bool),
		Measure:        m,
	}
}

// Worker derives a pool worker from a prototype profiler: same device
// and measurement methodology, but its own clock and caches. Sample
// programs named in precompiled are treated as already built (the
// pipeline pre-generates them once and shares them across workers, so
// no worker re-charges nvcc for a template another already compiled).
func (p *Profiler) Worker(clock *gpu.Clock, precompiled []string) *Profiler {
	w := New(p.dev, clock)
	w.CompileLatency = p.CompileLatency
	w.Measure = p.Measure
	w.Guide = p.Guide
	for _, name := range precompiled {
		w.compiled[name] = true
	}
	return w
}

// Clock returns the profiler's tuning clock (may be nil).
func (p *Profiler) Clock() *gpu.Clock { return p.clock }

// workloadRNG derives a deterministic noise stream from a workload's
// identity. Measurement noise therefore depends only on the workload,
// never on profiling order or pool partitioning — Jobs:1 and Jobs:8
// select identical kernels.
func workloadRNG(id string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(id))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// alignmentFor returns the widest alignment dividing n.
func alignmentFor(n int) int {
	for _, a := range []int{8, 4, 2} {
		if n%a == 0 {
			return a
		}
	}
	return 1
}

// alignFor caps the divisibility-derived alignment at the dtype's
// 128-bit vector width (FP32 loads at most 4 elements per ldg.128).
func alignFor(n int, dt tensor.DType) int {
	a := alignmentFor(n)
	if m := cutlass.MaxAlignment(dt); a > m {
		a = m
	}
	return a
}

// GemmCandidates enumerates the architecture-guided configurations for
// a GEMM workload: tens of combinations, not thousands. FP16 and INT8
// workloads target the tensor cores; FP32 has no tensor-core path on
// any modeled architecture, so its candidates are SIMT (CUDA-core)
// kernels with a degenerate 1x1x1 instruction tile.
func (p *Profiler) GemmCandidates(w GemmWorkload) []cutlass.GemmConfig {
	inst := cutlass.InstructionShape(p.dev.Arch)
	op := gpu.OpClassTensorOp
	if w.DType == tensor.FP32 {
		op = gpu.OpClassSIMT
		inst = cutlass.Shape3{M: 1, N: 1, K: 1}
	}
	alignA := alignFor(w.K, w.DType)
	alignB := alignFor(w.N, w.DType)
	alignC := alignFor(w.N, w.DType)

	// Threadblock shapes by problem size class: small problems need
	// small threadblocks to launch enough blocks (tuning guideline 3).
	var tbShapes []cutlass.Shape3
	smallM := w.M <= 512
	smallN := w.N <= 512
	switch {
	case smallM && smallN:
		tbShapes = []cutlass.Shape3{{M: 32, N: 32, K: 32}, {M: 64, N: 32, K: 32}, {M: 32, N: 64, K: 32}, {M: 64, N: 64, K: 32}}
	case smallM:
		// Small M: one tile row; tiny tiles keep enough blocks in
		// flight to cover the SMs.
		tbShapes = []cutlass.Shape3{
			{M: 32, N: 32, K: 32}, {M: 32, N: 64, K: 32}, {M: 32, N: 128, K: 32},
			{M: 64, N: 64, K: 32}, {M: 64, N: 128, K: 32}, {M: 64, N: 256, K: 32},
		}
	case smallN:
		tbShapes = []cutlass.Shape3{
			{M: 32, N: 32, K: 32}, {M: 64, N: 32, K: 32}, {M: 128, N: 32, K: 32},
			{M: 64, N: 64, K: 32}, {M: 128, N: 64, K: 32}, {M: 256, N: 64, K: 32},
		}
	default:
		tbShapes = []cutlass.Shape3{
			{M: 128, N: 128, K: 32}, {M: 128, N: 256, K: 32}, {M: 256, N: 128, K: 32},
			{M: 128, N: 64, K: 32}, {M: 64, N: 128, K: 32}, {M: 128, N: 128, K: 64},
		}
	}

	stages := []int{2}
	if p.dev.Arch >= gpu.SM80 {
		stages = []int{3, 4}
	}

	var out []cutlass.GemmConfig
	for _, tb := range tbShapes {
		for _, warps := range []int{4, 8} { // tuning guideline 2
			for _, warp := range warpPartitions(tb, warps, inst) {
				for _, st := range stages {
					for _, sw := range []int{1, 2} {
						cfg := cutlass.GemmConfig{
							TB: tb, Warp: warp, Inst: inst,
							Stages: st, SwizzleLog: sw,
							AlignA: alignA, AlignB: alignB, AlignC: alignC,
							Op: op, DType: w.DType,
						}
						if cfg.Validate(p.dev) == nil && cfg.SupportsProblem(w.M, w.N, w.K) {
							out = append(out, cfg)
						}
					}
				}
			}
		}
	}
	return dedupConfigs(out)
}

// warpPartitions returns warp tiles that split tb into the requested
// warp count, preferring large warp tiles (tuning guideline 1).
func warpPartitions(tb cutlass.Shape3, warps int, inst cutlass.Shape3) []cutlass.Shape3 {
	var out []cutlass.Shape3
	for wm := 1; wm <= warps; wm *= 2 {
		wn := warps / wm
		if tb.M%wm != 0 || tb.N%wn != 0 {
			continue
		}
		warp := cutlass.Shape3{M: tb.M / wm, N: tb.N / wn, K: tb.K}
		if warp.M%inst.M != 0 || warp.N%inst.N != 0 || warp.K%inst.K != 0 {
			continue
		}
		out = append(out, warp)
	}
	return out
}

func dedupConfigs(in []cutlass.GemmConfig) []cutlass.GemmConfig {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, c := range in {
		key := fmt.Sprintf("%v|%v|%d|%d|%d", c.TB, c.Warp, c.Stages, c.SwizzleLog, c.AlignA)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	return out
}

// chargeCompile charges the one-time sample-program build cost.
func (p *Profiler) chargeCompile(name string) {
	if p.compiled[name] {
		return
	}
	p.compiled[name] = true
	if p.clock != nil {
		p.clock.Advance(p.CompileLatency)
	}
}

// gemmGroupID identifies a GEMM workload for both the deterministic
// noise stream and the cost model's rank-correlation groups.
func gemmGroupID(w GemmWorkload) string { return "gemm:" + w.String() + ":" + w.DType.String() }

// convGroupID is the convolution counterpart of gemmGroupID.
func convGroupID(w ConvWorkload) string { return fmt.Sprintf("conv:%+v:%s", w.Shape, w.DType) }

// plan applies the profiler's guidance to an enumerated candidate
// list. Without an applicable model it returns a full sweep in
// enumeration order (the exact unguided behavior). With one, it ranks
// candidates by predicted time (stable sort, so ties keep enumeration
// order and the plan is deterministic), then either keeps the top-k
// or — when held-out confidence clears the trust threshold — resolves
// the workload measurement-free from the prediction.
func (p *Profiler) plan(cands []cutlass.GemmConfig, feat func(cutlass.GemmConfig) []float64) Plan {
	pl := Plan{Enumerated: len(cands), Measure: cands}
	g := p.Guide
	if g.Model == nil || !g.Model.Trained() || (g.TopK <= 0 && g.TrustThreshold <= 0) {
		return pl
	}
	preds := make([]float64, len(cands))
	for i, cfg := range cands {
		preds[i] = g.Model.Predict(feat(cfg))
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return preds[idx[a]] < preds[idx[b]] })
	if g.TrustThreshold > 0 && g.Model.Confidence() >= g.TrustThreshold {
		pl.Guided = true
		pl.Predicted = true
		pl.Config = cands[idx[0]]
		pl.Time = math.Exp(preds[idx[0]])
		pl.Measure = nil
		return pl
	}
	// Only cut the list when top-k actually shrinks it; a full-length
	// sweep stays in enumeration order so a below-threshold trust gate
	// falls back to exactly the unguided measurement sequence.
	if k := g.TopK; k > 0 && k < len(cands) {
		ranked := make([]cutlass.GemmConfig, k)
		for i, j := range idx[:k] {
			ranked[i] = cands[j]
		}
		pl.Guided = true
		pl.Measure = ranked
	}
	return pl
}

// PlanGemm enumerates a GEMM workload's candidates and applies the
// profiler's guidance. It charges no clock and takes no measurement.
func (p *Profiler) PlanGemm(w GemmWorkload) (Plan, error) {
	cands := p.GemmCandidates(w)
	if len(cands) == 0 {
		return Plan{}, fmt.Errorf("profiler: no valid candidates for %s", w)
	}
	return p.plan(cands, func(cfg cutlass.GemmConfig) []float64 {
		return costmodel.Features(cfg, w.M, w.N, w.K, nil, p.dev)
	}), nil
}

// ProfileGemm measures the workload's candidates (all of them, or the
// guided subset) and returns the fastest, caching the result.
func (p *Profiler) ProfileGemm(w GemmWorkload) (Result, error) {
	p.mu.Lock()
	if r, ok := p.gemmCache[w]; ok {
		p.mu.Unlock()
		return r, nil
	}
	p.mu.Unlock()
	plan, err := p.PlanGemm(w)
	if err != nil {
		return Result{}, err
	}
	return p.ProfileGemmPlan(w, plan)
}

// ProfileGemmPlan resolves a workload according to a previously
// computed plan: a predicted plan caches the model's pick without
// measuring (zero tuning-clock charge); otherwise exactly the planned
// candidates are compiled and measured. Every measurement is fed back
// to the guidance model (training is a separate, explicit Fit so the
// ranking stays frozen while a profiling pool is in flight).
func (p *Profiler) ProfileGemmPlan(w GemmWorkload, plan Plan) (Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.gemmCache[w]; ok {
		return r, nil
	}
	if plan.Predicted {
		r := Result{Config: plan.Config, Time: plan.Time, Enumerated: plan.Enumerated, Predicted: true, PredictionError: -1}
		p.gemmCache[w] = r
		return r, nil
	}
	if len(plan.Measure) == 0 {
		return Result{}, fmt.Errorf("profiler: empty measurement plan for %s", w)
	}
	group := gemmGroupID(w)
	rng := workloadRNG(group)
	best := Result{Time: -1, Candidates: len(plan.Measure), Enumerated: plan.Enumerated, PredictionError: -1}
	bestPred := math.NaN()
	for _, cfg := range plan.Measure {
		p.chargeCompile(cfg.Name())
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		t := gpu.Measure(p.dev, g.Desc(p.dev, w.M, w.N, w.K), p.Measure, rng, p.clock)
		var pred float64
		if p.Guide.Model != nil && t > 0 {
			f := costmodel.Features(cfg, w.M, w.N, w.K, nil, p.dev)
			if p.Guide.Model.Trained() {
				pred = p.Guide.Model.Predict(f)
			} else {
				pred = math.NaN()
			}
			p.Guide.Model.Observe(group, f, math.Log(t))
		} else {
			pred = math.NaN()
		}
		if best.Time < 0 || t < best.Time {
			best.Time = t
			best.Config = cfg
			bestPred = pred
		}
	}
	if !math.IsNaN(bestPred) && best.Time > 0 {
		best.PredictionError = math.Abs(math.Exp(bestPred)-best.Time) / best.Time
	}
	p.gemmCache[w] = best
	return best, nil
}

// ConvCandidates enumerates the architecture-guided configurations for
// a convolution: the implicit-GEMM candidates with alignments rewritten
// to follow the channel counts, not the implicit-GEMM dims.
func (p *Profiler) ConvCandidates(w ConvWorkload) []cutlass.GemmConfig {
	s := w.Shape
	m, n, k := s.ImplicitGemm()
	cands := p.GemmCandidates(GemmWorkload{M: m, N: n, K: k, DType: w.DType})
	ica := alignFor(s.IC, w.DType)
	oca := alignFor(s.OC, w.DType)
	filtered := cands[:0]
	for _, cfg := range cands {
		cfg.AlignA, cfg.AlignB, cfg.AlignC = ica, ica, oca
		conv := &cutlass.Conv2D{Shape: s, Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		if conv.SupportsProblem() {
			filtered = append(filtered, cfg)
		}
	}
	return filtered
}

// PlanConv enumerates a convolution workload's candidates and applies
// the profiler's guidance (no clock charge, no measurement).
func (p *Profiler) PlanConv(w ConvWorkload) (Plan, error) {
	filtered := p.ConvCandidates(w)
	if len(filtered) == 0 {
		return Plan{}, fmt.Errorf("profiler: no valid candidates for %v", w)
	}
	s := w.Shape
	m, n, k := s.ImplicitGemm()
	return p.plan(filtered, func(cfg cutlass.GemmConfig) []float64 {
		return costmodel.Features(cfg, m, n, k, &s, p.dev)
	}), nil
}

// ProfileConv measures candidates for a convolution workload (all of
// them, or the guided subset).
func (p *Profiler) ProfileConv(w ConvWorkload) (Result, error) {
	p.mu.Lock()
	if r, ok := p.convCache[w]; ok {
		p.mu.Unlock()
		return r, nil
	}
	p.mu.Unlock()
	plan, err := p.PlanConv(w)
	if err != nil {
		return Result{}, err
	}
	return p.ProfileConvPlan(w, plan)
}

// ProfileConvPlan is the convolution counterpart of ProfileGemmPlan.
func (p *Profiler) ProfileConvPlan(w ConvWorkload, plan Plan) (Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.convCache[w]; ok {
		return r, nil
	}
	if plan.Predicted {
		r := Result{Config: plan.Config, Time: plan.Time, Enumerated: plan.Enumerated, Predicted: true, PredictionError: -1}
		p.convCache[w] = r
		return r, nil
	}
	if len(plan.Measure) == 0 {
		return Result{}, fmt.Errorf("profiler: empty measurement plan for %v", w)
	}
	s := w.Shape
	m, n, k := s.ImplicitGemm()
	group := convGroupID(w)
	rng := workloadRNG(group)
	best := Result{Time: -1, Candidates: len(plan.Measure), Enumerated: plan.Enumerated, PredictionError: -1}
	bestPred := math.NaN()
	for _, cfg := range plan.Measure {
		p.chargeCompile(cfg.Name())
		conv := &cutlass.Conv2D{Shape: s, Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		t := gpu.Measure(p.dev, conv.Desc(p.dev), p.Measure, rng, p.clock)
		var pred float64
		if p.Guide.Model != nil && t > 0 {
			f := costmodel.Features(cfg, m, n, k, &s, p.dev)
			if p.Guide.Model.Trained() {
				pred = p.Guide.Model.Predict(f)
			} else {
				pred = math.NaN()
			}
			p.Guide.Model.Observe(group, f, math.Log(t))
		} else {
			pred = math.NaN()
		}
		if best.Time < 0 || t < best.Time {
			best.Time = t
			best.Config = cfg
			bestPred = pred
		}
	}
	if !math.IsNaN(bestPred) && best.Time > 0 {
		best.PredictionError = math.Abs(math.Exp(bestPred)-best.Time) / best.Time
	}
	p.convCache[w] = best
	return best, nil
}

// RankGemm returns all candidates with their measured times, sorted
// fastest first (for cmd/boltprof's candidate dump).
func (p *Profiler) RankGemm(w GemmWorkload) ([]cutlass.GemmConfig, []float64) {
	cands := p.GemmCandidates(w)
	times := make([]float64, len(cands))
	for i, cfg := range cands {
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		times[i] = p.dev.KernelTime(g.Desc(p.dev, w.M, w.N, w.K))
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return times[idx[a]] < times[idx[b]] })
	outC := make([]cutlass.GemmConfig, len(cands))
	outT := make([]float64, len(cands))
	for i, j := range idx {
		outC[i], outT[i] = cands[j], times[j]
	}
	return outC, outT
}
