// Package profiler implements Bolt's light-weight hardware-native
// performance profiler (paper §3.2.2).
//
// Unlike opaque auto-tuners that explore thousands of candidate
// schedules, the profiler *knows the hardware*: for each GPU
// architecture it enumerates only tens of template parameter
// combinations selected by white-box tuning guidelines —
//
//   - large warp tiles within register-file capacity (higher
//     compute-to-memory ratio);
//   - four or eight warps per threadblock;
//   - small threadblocks for small problems (launch enough blocks to
//     keep SMs busy);
//   - the widest alignment the problem shape divides;
//
// then measures each candidate on the device. Sample kernels are
// generated once per architecture and reused across models and
// workloads, so per-workload tuning costs seconds, not hours.
package profiler

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// GemmWorkload identifies one GEMM problem.
type GemmWorkload struct {
	M, N, K int
	DType   tensor.DType
}

// String renders like the paper's workload tables: "(M, N, K)".
func (w GemmWorkload) String() string { return fmt.Sprintf("(%d, %d, %d)", w.M, w.N, w.K) }

// ConvWorkload identifies one convolution problem: the full shape plus
// the element type (same-shape convs of different dtypes are distinct
// tuning tasks, mirroring tunelog.Key).
type ConvWorkload struct {
	Shape cutlass.ConvShape
	DType tensor.DType
}

// Result is the outcome of profiling one workload.
type Result struct {
	Config cutlass.GemmConfig
	// Time is the measured kernel time in seconds for the best config.
	Time float64
	// Candidates is how many configurations were measured.
	Candidates int
}

// Profiler searches template parameters for GEMM and Conv workloads on
// one device, caching best configurations per workload (the paper's
// pre-generated, reusable sample programs).
type Profiler struct {
	dev   *gpu.Device
	clock *gpu.Clock

	mu        sync.Mutex
	gemmCache map[GemmWorkload]Result
	convCache map[ConvWorkload]Result

	// CompileLatency is the simulated cost of building one sample
	// program. Bolt pre-generates them per architecture, so this is
	// charged once per distinct config, not per workload.
	CompileLatency float64
	compiled       map[string]bool

	// Measure controls the per-candidate measurement methodology.
	Measure gpu.MeasureOptions
}

// New creates a profiler for the device. The clock accumulates
// simulated tuning time (Figure 10b); pass nil to skip accounting.
func New(dev *gpu.Device, clock *gpu.Clock) *Profiler {
	return &Profiler{
		dev:            dev,
		clock:          clock,
		gemmCache:      make(map[GemmWorkload]Result),
		convCache:      make(map[ConvWorkload]Result),
		CompileLatency: 0.9, // seconds per sample program (nvcc on one template)
		compiled:       make(map[string]bool),
		Measure:        gpu.QuickMeasure(),
	}
}

// Worker derives a pool worker from a prototype profiler: same device
// and measurement methodology, but its own clock and caches. Sample
// programs named in precompiled are treated as already built (the
// pipeline pre-generates them once and shares them across workers, so
// no worker re-charges nvcc for a template another already compiled).
func (p *Profiler) Worker(clock *gpu.Clock, precompiled []string) *Profiler {
	w := New(p.dev, clock)
	w.CompileLatency = p.CompileLatency
	w.Measure = p.Measure
	for _, name := range precompiled {
		w.compiled[name] = true
	}
	return w
}

// Clock returns the profiler's tuning clock (may be nil).
func (p *Profiler) Clock() *gpu.Clock { return p.clock }

// workloadRNG derives a deterministic noise stream from a workload's
// identity. Measurement noise therefore depends only on the workload,
// never on profiling order or pool partitioning — Jobs:1 and Jobs:8
// select identical kernels.
func workloadRNG(id string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(id))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// alignmentFor returns the widest alignment dividing n.
func alignmentFor(n int) int {
	for _, a := range []int{8, 4, 2} {
		if n%a == 0 {
			return a
		}
	}
	return 1
}

// GemmCandidates enumerates the architecture-guided configurations for
// a GEMM workload: tens of combinations, not thousands.
func (p *Profiler) GemmCandidates(w GemmWorkload) []cutlass.GemmConfig {
	inst := cutlass.InstructionShape(p.dev.Arch)
	alignA := alignmentFor(w.K)
	alignB := alignmentFor(w.N)
	alignC := alignmentFor(w.N)

	// Threadblock shapes by problem size class: small problems need
	// small threadblocks to launch enough blocks (tuning guideline 3).
	var tbShapes []cutlass.Shape3
	smallM := w.M <= 512
	smallN := w.N <= 512
	switch {
	case smallM && smallN:
		tbShapes = []cutlass.Shape3{{M: 32, N: 32, K: 32}, {M: 64, N: 32, K: 32}, {M: 32, N: 64, K: 32}, {M: 64, N: 64, K: 32}}
	case smallM:
		// Small M: one tile row; tiny tiles keep enough blocks in
		// flight to cover the SMs.
		tbShapes = []cutlass.Shape3{
			{M: 32, N: 32, K: 32}, {M: 32, N: 64, K: 32}, {M: 32, N: 128, K: 32},
			{M: 64, N: 64, K: 32}, {M: 64, N: 128, K: 32}, {M: 64, N: 256, K: 32},
		}
	case smallN:
		tbShapes = []cutlass.Shape3{
			{M: 32, N: 32, K: 32}, {M: 64, N: 32, K: 32}, {M: 128, N: 32, K: 32},
			{M: 64, N: 64, K: 32}, {M: 128, N: 64, K: 32}, {M: 256, N: 64, K: 32},
		}
	default:
		tbShapes = []cutlass.Shape3{
			{M: 128, N: 128, K: 32}, {M: 128, N: 256, K: 32}, {M: 256, N: 128, K: 32},
			{M: 128, N: 64, K: 32}, {M: 64, N: 128, K: 32}, {M: 128, N: 128, K: 64},
		}
	}

	stages := []int{2}
	if p.dev.Arch >= gpu.SM80 {
		stages = []int{3, 4}
	}

	var out []cutlass.GemmConfig
	for _, tb := range tbShapes {
		for _, warps := range []int{4, 8} { // tuning guideline 2
			for _, warp := range warpPartitions(tb, warps, inst) {
				for _, st := range stages {
					for _, sw := range []int{1, 2} {
						cfg := cutlass.GemmConfig{
							TB: tb, Warp: warp, Inst: inst,
							Stages: st, SwizzleLog: sw,
							AlignA: alignA, AlignB: alignB, AlignC: alignC,
							Op: gpu.OpClassTensorOp, DType: w.DType,
						}
						if cfg.Validate(p.dev) == nil && cfg.SupportsProblem(w.M, w.N, w.K) {
							out = append(out, cfg)
						}
					}
				}
			}
		}
	}
	return dedupConfigs(out)
}

// warpPartitions returns warp tiles that split tb into the requested
// warp count, preferring large warp tiles (tuning guideline 1).
func warpPartitions(tb cutlass.Shape3, warps int, inst cutlass.Shape3) []cutlass.Shape3 {
	var out []cutlass.Shape3
	for wm := 1; wm <= warps; wm *= 2 {
		wn := warps / wm
		if tb.M%wm != 0 || tb.N%wn != 0 {
			continue
		}
		warp := cutlass.Shape3{M: tb.M / wm, N: tb.N / wn, K: tb.K}
		if warp.M%inst.M != 0 || warp.N%inst.N != 0 || warp.K%inst.K != 0 {
			continue
		}
		out = append(out, warp)
	}
	return out
}

func dedupConfigs(in []cutlass.GemmConfig) []cutlass.GemmConfig {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, c := range in {
		key := fmt.Sprintf("%v|%v|%d|%d|%d", c.TB, c.Warp, c.Stages, c.SwizzleLog, c.AlignA)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	return out
}

// chargeCompile charges the one-time sample-program build cost.
func (p *Profiler) chargeCompile(name string) {
	if p.compiled[name] {
		return
	}
	p.compiled[name] = true
	if p.clock != nil {
		p.clock.Advance(p.CompileLatency)
	}
}

// ProfileGemm measures all candidates for the workload and returns the
// fastest, caching the result.
func (p *Profiler) ProfileGemm(w GemmWorkload) (Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.gemmCache[w]; ok {
		return r, nil
	}
	cands := p.GemmCandidates(w)
	if len(cands) == 0 {
		return Result{}, fmt.Errorf("profiler: no valid candidates for %s", w)
	}
	rng := workloadRNG("gemm:" + w.String() + ":" + w.DType.String())
	best := Result{Time: -1, Candidates: len(cands)}
	for _, cfg := range cands {
		p.chargeCompile(cfg.Name())
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		t := gpu.Measure(p.dev, g.Desc(p.dev, w.M, w.N, w.K), p.Measure, rng, p.clock)
		if best.Time < 0 || t < best.Time {
			best.Time = t
			best.Config = cfg
		}
	}
	p.gemmCache[w] = best
	return best, nil
}

// ConvCandidates enumerates the architecture-guided configurations for
// a convolution: the implicit-GEMM candidates with alignments rewritten
// to follow the channel counts, not the implicit-GEMM dims.
func (p *Profiler) ConvCandidates(w ConvWorkload) []cutlass.GemmConfig {
	s := w.Shape
	m, n, k := s.ImplicitGemm()
	cands := p.GemmCandidates(GemmWorkload{M: m, N: n, K: k, DType: w.DType})
	ica := alignmentFor(s.IC)
	oca := alignmentFor(s.OC)
	filtered := cands[:0]
	for _, cfg := range cands {
		cfg.AlignA, cfg.AlignB, cfg.AlignC = ica, ica, oca
		conv := &cutlass.Conv2D{Shape: s, Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		if conv.SupportsProblem() {
			filtered = append(filtered, cfg)
		}
	}
	return filtered
}

// ProfileConv measures candidates for a convolution workload.
func (p *Profiler) ProfileConv(w ConvWorkload) (Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.convCache[w]; ok {
		return r, nil
	}
	s := w.Shape
	filtered := p.ConvCandidates(w)
	if len(filtered) == 0 {
		return Result{}, fmt.Errorf("profiler: no valid candidates for %v", w)
	}
	rng := workloadRNG(fmt.Sprintf("conv:%+v:%s", s, w.DType))
	best := Result{Time: -1, Candidates: len(filtered)}
	for _, cfg := range filtered {
		p.chargeCompile(cfg.Name())
		conv := &cutlass.Conv2D{Shape: s, Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		t := gpu.Measure(p.dev, conv.Desc(p.dev), p.Measure, rng, p.clock)
		if best.Time < 0 || t < best.Time {
			best.Time = t
			best.Config = cfg
		}
	}
	p.convCache[w] = best
	return best, nil
}

// RankGemm returns all candidates with their measured times, sorted
// fastest first (for cmd/boltprof's candidate dump).
func (p *Profiler) RankGemm(w GemmWorkload) ([]cutlass.GemmConfig, []float64) {
	cands := p.GemmCandidates(w)
	times := make([]float64, len(cands))
	for i, cfg := range cands {
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		times[i] = p.dev.KernelTime(g.Desc(p.dev, w.M, w.N, w.K))
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return times[idx[a]] < times[idx[b]] })
	outC := make([]cutlass.GemmConfig, len(cands))
	outT := make([]float64, len(cands))
	for i, j := range idx {
		outC[i], outT[i] = cands[j], times[j]
	}
	return outC, outT
}
