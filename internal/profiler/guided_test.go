package profiler

import (
	"testing"

	"bolt/internal/costmodel"
	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// trainGemmModel fits a predictor from noise-free full sweeps over a
// grid of GEMM workloads (the online-training path: a model attached
// to an unguided profiler learns from every measurement).
func trainGemmModel(t testing.TB, dev *gpu.Device) *costmodel.Predictor {
	t.Helper()
	model := costmodel.NewPredictor(1)
	p := New(dev, nil)
	p.Measure.NoiseStdDev = 0
	p.Guide = Guidance{Model: model}
	for _, m := range []int{64, 128, 256, 512, 1024} {
		for _, n := range []int{256, 768, 2048} {
			for _, k := range []int{256, 1024} {
				if _, err := p.ProfileGemm(GemmWorkload{M: m, N: n, K: k, DType: tensor.FP16}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	model.Fit()
	if !model.Trained() {
		t.Fatal("model did not train from the sweep observations")
	}
	return model
}

// fullSweep profiles a workload with no guidance at all.
func fullSweep(t testing.TB, dev *gpu.Device, w GemmWorkload) Result {
	t.Helper()
	p := New(dev, nil)
	p.Measure.NoiseStdDev = 0
	r, err := p.ProfileGemm(w)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// deviceTimeOf returns the noise-free device time of one config on a
// workload (the oracle's per-config quality measure).
func deviceTimeOf(t testing.TB, dev *gpu.Device, w GemmWorkload, cfg cutlass.GemmConfig) float64 {
	t.Helper()
	p := New(dev, nil)
	cands, times := p.RankGemm(w)
	for i, c := range cands {
		if c == cfg {
			return times[i]
		}
	}
	t.Fatalf("config %s not among candidates for %s", cfg.Name(), w)
	return 0
}

func TestGuidedTopKMeasuresAtMostK(t *testing.T) {
	dev := gpu.T4()
	model := trainGemmModel(t, dev)
	w := GemmWorkload{M: 384, N: 512, K: 512, DType: tensor.FP16}
	oracle := fullSweep(t, dev, w)

	var clock gpu.Clock
	p := New(dev, &clock)
	p.Measure.NoiseStdDev = 0
	p.Guide = Guidance{Model: model, TopK: 8}
	r, err := p.ProfileGemm(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Predicted {
		t.Fatal("top-k guidance must still measure, not predict")
	}
	if r.Candidates > 8 {
		t.Fatalf("guided profile measured %d candidates, budget 8", r.Candidates)
	}
	if r.Enumerated <= 8 {
		t.Fatalf("enumeration (%d) should exceed the top-k budget, else the test is vacuous", r.Enumerated)
	}
	if oracle.Candidates != oracle.Enumerated {
		t.Fatalf("unguided sweep should measure all %d enumerated, measured %d", oracle.Enumerated, oracle.Candidates)
	}
	if ratio := r.Time / oracle.Time; ratio > 1.15 {
		t.Fatalf("guided pick is %.3fx the full-sweep oracle, want <= 1.15x", ratio)
	}
	if r.PredictionError < 0 {
		t.Fatalf("guided measured result should report a prediction error, got %v", r.PredictionError)
	}
}

func TestGuidedTuningTimeCut(t *testing.T) {
	dev := gpu.T4()
	model := trainGemmModel(t, dev)
	w := GemmWorkload{M: 384, N: 512, K: 512, DType: tensor.FP16}

	var fullClock gpu.Clock
	pf := New(dev, &fullClock)
	pf.Measure.NoiseStdDev = 0
	if _, err := pf.ProfileGemm(w); err != nil {
		t.Fatal(err)
	}

	var guidedClock gpu.Clock
	pg := New(dev, &guidedClock)
	pg.Measure.NoiseStdDev = 0
	pg.Guide = Guidance{Model: model, TopK: 8}
	if _, err := pg.ProfileGemm(w); err != nil {
		t.Fatal(err)
	}
	if g, f := guidedClock.Elapsed(), fullClock.Elapsed(); g > 0.5*f {
		t.Fatalf("guided tuning cost %.1fs vs full sweep %.1fs, want <= 0.5x", g, f)
	}
}

func TestGuidedDisabledIsBitIdentical(t *testing.T) {
	dev := gpu.T4()
	w := GemmWorkload{M: 384, N: 512, K: 512, DType: tensor.FP16}
	plain := fullSweep(t, dev, w)

	// A model attached with no TopK/TrustThreshold trains silently but
	// must not change measurement order, selection, or accounting.
	model := costmodel.NewPredictor(1)
	var clockA, clockB gpu.Clock
	pa := New(dev, &clockA)
	pa.Measure.NoiseStdDev = 0
	pa.Guide = Guidance{Model: model}
	ra, err := pa.ProfileGemm(w)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Config != plain.Config || ra.Time != plain.Time || ra.Candidates != plain.Candidates {
		t.Fatalf("observing-only guidance changed the result: %+v vs %+v", ra, plain)
	}

	// An untrained model with TopK set must fall back to the full sweep.
	pb := New(dev, &clockB)
	pb.Measure.NoiseStdDev = 0
	pb.Guide = Guidance{Model: costmodel.NewPredictor(1), TopK: 4}
	rb, err := pb.ProfileGemm(w)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Config != plain.Config || rb.Candidates != plain.Candidates {
		t.Fatalf("untrained model must not cut the sweep: %+v vs %+v", rb, plain)
	}
	if clockA.Elapsed() != clockB.Elapsed() {
		t.Fatalf("tuning clocks diverged: %v vs %v", clockA.Elapsed(), clockB.Elapsed())
	}
}

func TestTrustGateSkipsMeasurementWhenConfident(t *testing.T) {
	dev := gpu.T4()
	model := trainGemmModel(t, dev)
	conf := model.Confidence()
	if conf <= 0.3 {
		t.Fatalf("trained model confidence %.3f too low for this test's premise", conf)
	}
	w := GemmWorkload{M: 384, N: 512, K: 512, DType: tensor.FP16}
	oracle := fullSweep(t, dev, w)

	var clock gpu.Clock
	p := New(dev, &clock)
	p.Measure.NoiseStdDev = 0
	p.Guide = Guidance{Model: model, TrustThreshold: conf * 0.9}
	r, err := p.ProfileGemm(w)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Predicted {
		t.Fatalf("confidence %.3f >= threshold %.3f must skip measurement", conf, conf*0.9)
	}
	if r.Candidates != 0 {
		t.Fatalf("predicted resolution measured %d candidates, want 0", r.Candidates)
	}
	if r.Enumerated == 0 {
		t.Fatal("predicted resolution should still report the enumerated count")
	}
	if e := clock.Elapsed(); e != 0 {
		t.Fatalf("predicted resolution charged %.2fs tuning time, want 0", e)
	}
	// The predicted pick must be a real candidate of decent quality.
	trueTime := deviceTimeOf(t, dev, w, r.Config)
	if ratio := trueTime / oracle.Time; ratio > 1.25 {
		t.Fatalf("predicted pick runs at %.3fx the oracle, want <= 1.25x", ratio)
	}
}

func TestTrustGateRefusesPoisonedModel(t *testing.T) {
	dev := gpu.T4()
	w := GemmWorkload{M: 384, N: 512, K: 512, DType: tensor.FP16}

	// Poison: real candidate features, targets replaced by a
	// deterministic pseudo-random stream uncorrelated with them. The
	// model trains (weights exist) but cannot rank held-out samples,
	// so its confidence must stay below any sane threshold.
	poisoned := costmodel.NewPredictor(1)
	enum := New(dev, nil)
	seed := uint64(0x9e3779b97f4a7c15)
	for _, m := range []int{64, 128, 256, 512, 1024} {
		for _, n := range []int{256, 768, 2048} {
			wl := GemmWorkload{M: m, N: n, K: 512, DType: tensor.FP16}
			group := gemmGroupID(wl)
			for _, cfg := range enum.GemmCandidates(wl) {
				seed = seed*6364136223846793005 + 1442695040888963407
				y := -14 + 6*float64(seed>>11)/float64(1<<53)
				poisoned.Observe(group, costmodel.Features(cfg, wl.M, wl.N, wl.K, nil, dev), y)
			}
		}
	}
	poisoned.Fit()
	if !poisoned.Trained() {
		t.Fatal("poisoned model should still fit (that is the danger)")
	}
	if c := poisoned.Confidence(); c > 0.35 {
		t.Fatalf("poisoned model confidence %.3f should be low", c)
	}

	var clock gpu.Clock
	p := New(dev, &clock)
	p.Measure.NoiseStdDev = 0
	p.Guide = Guidance{Model: poisoned, TrustThreshold: 0.5}
	r, err := p.ProfileGemm(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Predicted {
		t.Fatal("trust gate accepted a poisoned model: measurement-free resolution below confidence")
	}
	if r.Candidates != r.Enumerated {
		t.Fatalf("below-threshold trust gate must fall back to the full sweep, measured %d/%d",
			r.Candidates, r.Enumerated)
	}
	plain := fullSweep(t, dev, w)
	if r.Config != plain.Config || r.Time != plain.Time {
		t.Fatalf("poisoned-model fallback changed selection: %+v vs %+v", r, plain)
	}
}

func TestGuidedConvProfileRespectsBudget(t *testing.T) {
	dev := gpu.A100()
	model := costmodel.NewPredictor(1)
	trainP := New(dev, nil)
	trainP.Measure.NoiseStdDev = 0
	trainP.Guide = Guidance{Model: model}
	shapes := []cutlass.ConvShape{
		{N: 8, H: 56, W: 56, IC: 64, OC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 8, H: 28, W: 28, IC: 128, OC: 128, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 8, H: 14, W: 14, IC: 256, OC: 256, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 8, H: 56, W: 56, IC: 64, OC: 128, KH: 1, KW: 1, StrideH: 2, StrideW: 2},
		{N: 8, H: 28, W: 28, IC: 128, OC: 256, KH: 1, KW: 1, StrideH: 2, StrideW: 2},
		{N: 8, H: 56, W: 56, IC: 64, OC: 128, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{N: 8, H: 28, W: 28, IC: 128, OC: 256, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	}
	for _, s := range shapes {
		if _, err := trainP.ProfileConv(ConvWorkload{Shape: s, DType: tensor.FP16}); err != nil {
			t.Fatal(err)
		}
	}
	model.Fit()
	if !model.Trained() {
		t.Fatal("conv model did not train")
	}

	// Held out: a new combination of individually-seen implicit-GEMM
	// dims (M=6272, N=256, K=2304), the distribution guided serving
	// compiles actually face (new layers of a known model family).
	held := ConvWorkload{
		Shape: cutlass.ConvShape{N: 8, H: 28, W: 28, IC: 256, OC: 256, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		DType: tensor.FP16,
	}
	oracleP := New(dev, nil)
	oracleP.Measure.NoiseStdDev = 0
	oracle, err := oracleP.ProfileConv(held)
	if err != nil {
		t.Fatal(err)
	}
	g := New(dev, nil)
	g.Measure.NoiseStdDev = 0
	g.Guide = Guidance{Model: model, TopK: 8}
	r, err := g.ProfileConv(held)
	if err != nil {
		t.Fatal(err)
	}
	if r.Candidates > 8 || r.Enumerated <= 8 {
		t.Fatalf("guided conv measured %d of %d enumerated, want <= 8 of > 8", r.Candidates, r.Enumerated)
	}
	if ratio := r.Time / oracle.Time; ratio > 1.15 {
		t.Fatalf("guided conv pick is %.3fx the oracle, want <= 1.15x", ratio)
	}
}
