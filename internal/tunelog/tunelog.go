// Package tunelog implements a tuning-log database in the spirit of
// TopHub / Lorien (paper §2.1): a persistent cache mapping workload
// signatures to previously tuned schedules, so static models can skip
// re-tuning.
//
// The paper's argument — which the ext-dyn experiment quantifies — is
// that this mitigation "only goes so far": models with dynamic shapes
// present workloads whose exact signatures are only known at runtime,
// where the cache misses and the full opaque search cost returns.
// Maintaining the database across TVM versions and devices also
// "incurs substantial costs", which the Stale machinery models.
package tunelog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"bolt/internal/ansor"
)

// Key identifies a tuning task: operator kind, problem dimensions,
// target device, and the tuner version that produced the entry
// (entries from older tuner versions are stale — schedules do not
// transfer reliably across code generators).
type Key struct {
	Kind    string `json:"kind"` // "gemm" or "conv2d"
	M       int    `json:"m"`
	N       int    `json:"n"`
	K       int    `json:"k"`
	Device  string `json:"device"`
	Version int    `json:"version"`
}

// String renders the key compactly.
func (k Key) String() string {
	return fmt.Sprintf("%s(%d,%d,%d)@%s/v%d", k.Kind, k.M, k.N, k.K, k.Device, k.Version)
}

// Entry is one cached tuning result.
type Entry struct {
	Schedule ansor.Schedule `json:"schedule"`
	// TimeSeconds is the measured kernel time when the entry was
	// recorded.
	TimeSeconds float64 `json:"time_seconds"`
	// Trials records how much search produced this entry.
	Trials int `json:"trials"`
}

// Log is a thread-safe tuning-log database with hit/miss accounting.
type Log struct {
	mu      sync.Mutex
	entries map[Key]Entry

	// CurrentVersion invalidates entries recorded by older tuners.
	CurrentVersion int

	Hits, Misses, StaleHits int
}

// New returns an empty log at tuner version 1.
func New() *Log {
	return &Log{entries: make(map[Key]Entry), CurrentVersion: 1}
}

// Lookup returns the cached entry for a workload. Entries from older
// tuner versions count as stale (a miss that additionally signals the
// maintenance burden).
func (l *Log) Lookup(k Key) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k.Version = l.CurrentVersion
	if e, ok := l.entries[k]; ok {
		l.Hits++
		return e, true
	}
	// Probe older versions for staleness accounting.
	for v := l.CurrentVersion - 1; v >= 1; v-- {
		k.Version = v
		if _, ok := l.entries[k]; ok {
			l.StaleHits++
			break
		}
	}
	l.Misses++
	return Entry{}, false
}

// Record stores a tuning result at the current version.
func (l *Log) Record(k Key, e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k.Version = l.CurrentVersion
	l.entries[k] = e
}

// Len returns the number of stored entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// HitRate returns hits / lookups (0 when never queried).
func (l *Log) HitRate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.Hits + l.Misses
	if total == 0 {
		return 0
	}
	return float64(l.Hits) / float64(total)
}

// jsonEntry is the serialization record (maps with struct keys do not
// round-trip through encoding/json).
type jsonEntry struct {
	Key   Key   `json:"key"`
	Entry Entry `json:"entry"`
}

// Save writes the database as JSON (the on-disk format TopHub-style
// registries ship).
func (l *Log) Save(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rows := make([]jsonEntry, 0, len(l.entries))
	for k, e := range l.entries {
		rows = append(rows, jsonEntry{Key: k, Entry: e})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key.String() < rows[j].Key.String() })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// Load merges a saved database into this one.
func (l *Log) Load(r io.Reader) error {
	var rows []jsonEntry
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return fmt.Errorf("tunelog: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, row := range rows {
		l.entries[row.Key] = row.Entry
	}
	return nil
}

// GemmKey builds the key for a GEMM task.
func GemmKey(m, n, k int, device string) Key {
	return Key{Kind: "gemm", M: m, N: n, K: k, Device: device, Version: 1}
}

// ConvKey builds the key for a conv task on its implicit-GEMM dims.
func ConvKey(m, n, k int, device string) Key {
	return Key{Kind: "conv2d", M: m, N: n, K: k, Device: device, Version: 1}
}
