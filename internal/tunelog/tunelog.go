// Package tunelog implements a tuning-log database in the spirit of
// TopHub / Lorien (paper §2.1): a persistent cache mapping workload
// signatures to previously tuned schedules, so static models can skip
// re-tuning.
//
// The paper's argument — which the ext-dyn experiment quantifies — is
// that this mitigation "only goes so far": models with dynamic shapes
// present workloads whose exact signatures are only known at runtime,
// where the cache misses and the full opaque search cost returns.
// Maintaining the database across TVM versions and devices also
// "incurs substantial costs", which the Stale machinery models.
package tunelog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"bolt/internal/ansor"
	"bolt/internal/costmodel"
	"bolt/internal/cutlass"
	"bolt/internal/tensor"
)

// Key identifies a tuning task: operator kind, problem dimensions,
// element type, target device, and the tuner version that produced the
// entry (entries from older tuner versions are stale — schedules do
// not transfer reliably across code generators).
//
// The dtype is part of the key because an FP16 and an FP32 GEMM of the
// same shape are different tasks (different instructions, different
// alignments, different best tiles). Conv tasks additionally carry the
// full convolution geometry: two distinct ConvShapes can project to
// the same implicit-GEMM (M, N, K) yet price differently (activation
// footprint, stride, padding), so the projection alone must not alias
// them.
type Key struct {
	Kind  string `json:"kind"` // "gemm" or "conv2d"
	M     int    `json:"m"`
	N     int    `json:"n"`
	K     int    `json:"k"`
	DType string `json:"dtype"`
	// Conv is the full convolution geometry (zero for GEMM tasks).
	Conv    cutlass.ConvShape `json:"conv,omitzero"`
	Device  string            `json:"device"`
	Version int               `json:"version"`
}

// String renders the key compactly.
func (k Key) String() string {
	if k.Kind == "conv2d" {
		c := k.Conv
		return fmt.Sprintf("%s(n%d,h%d,w%d,ic%d,oc%d,k%dx%d,s%dx%d,p%dx%d,%s)@%s/v%d",
			k.Kind, c.N, c.H, c.W, c.IC, c.OC, c.KH, c.KW,
			c.StrideH, c.StrideW, c.PadH, c.PadW, k.DType, k.Device, k.Version)
	}
	return fmt.Sprintf("%s(%d,%d,%d,%s)@%s/v%d", k.Kind, k.M, k.N, k.K, k.DType, k.Device, k.Version)
}

// Entry is one cached tuning result. Bolt's profiler stores the
// selected template parameterization in Config; the Ansor baseline
// stores its opaque Schedule. Either may be zero when the other tuner
// produced the entry.
type Entry struct {
	Schedule ansor.Schedule `json:"schedule,omitzero"`
	// Config is the CUTLASS-style template selection (Bolt entries).
	Config cutlass.GemmConfig `json:"config,omitzero"`
	// TimeSeconds is the measured kernel time when the entry was
	// recorded.
	TimeSeconds float64 `json:"time_seconds"`
	// Trials records how much search produced this entry (measured
	// candidates for Bolt, search trials for Ansor).
	Trials int `json:"trials"`
	// Predicted marks a measurement-free entry: the cost model's trust
	// gate emitted its predicted-best config without running a sample,
	// and TimeSeconds is the model's estimate, not a measurement.
	Predicted bool `json:"predicted,omitempty"`
}

// Log is a thread-safe tuning-log database with hit/miss accounting.
type Log struct {
	mu      sync.Mutex
	entries map[Key]Entry

	// CurrentVersion invalidates entries recorded by older tuners.
	CurrentVersion int

	Hits, Misses, StaleHits int

	// Model is the cost model trained from this log's measurements. It
	// persists alongside the entries (Save/Load/Merge), so a process
	// loading a warm tunelog starts with a trained predictor and can
	// guide — or skip — profiling of workloads the log has never seen.
	// The Predictor is internally synchronized; Log methods only attach
	// and detach it.
	Model *costmodel.Predictor
}

// New returns an empty log at tuner version 1 with a fresh, untrained
// cost model (deterministic seed: logs are reproducible artifacts).
func New() *Log {
	return &Log{entries: make(map[Key]Entry), CurrentVersion: 1, Model: costmodel.NewPredictor(1)}
}

// Lookup returns the cached entry for a workload. Entries from older
// tuner versions count as stale (a miss that additionally signals the
// maintenance burden).
func (l *Log) Lookup(k Key) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k.Version = l.CurrentVersion
	if e, ok := l.entries[k]; ok {
		l.Hits++
		return e, true
	}
	// Probe older versions for staleness accounting.
	for v := l.CurrentVersion - 1; v >= 1; v-- {
		k.Version = v
		if _, ok := l.entries[k]; ok {
			l.StaleHits++
			break
		}
	}
	l.Misses++
	return Entry{}, false
}

// Record stores a tuning result at the current version.
func (l *Log) Record(k Key, e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k.Version = l.CurrentVersion
	l.entries[k] = e
}

// Len returns the number of stored entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// HitRate returns hits / lookups (0 when never queried).
func (l *Log) HitRate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.Hits + l.Misses
	if total == 0 {
		return 0
	}
	return float64(l.Hits) / float64(total)
}

// jsonEntry is the serialization record (maps with struct keys do not
// round-trip through encoding/json).
type jsonEntry struct {
	Key   Key   `json:"key"`
	Entry Entry `json:"entry"`
}

// jsonLog is the v2 on-disk format: the entry rows plus the cost model
// trained from them. The original format was a bare entry array;
// readers sniff the first non-space byte to accept both.
type jsonLog struct {
	Entries []jsonEntry          `json:"entries"`
	Model   *costmodel.Predictor `json:"model,omitempty"`
}

// Save writes the database as JSON (the on-disk format TopHub-style
// registries ship), including the trained cost model when present.
func (l *Log) Save(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rows := make([]jsonEntry, 0, len(l.entries))
	for k, e := range l.entries {
		rows = append(rows, jsonEntry{Key: k, Entry: e})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key.String() < rows[j].Key.String() })
	out := jsonLog{Entries: rows}
	if l.Model != nil && l.Model.Len() > 0 {
		out.Model = l.Model
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// decode reads either on-disk format: the v2 object or the legacy bare
// entry array (which carries no model).
func decode(r io.Reader) (jsonLog, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return jsonLog{}, fmt.Errorf("tunelog: %w", err)
	}
	trimmed := bytes.TrimLeft(buf, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var rows []jsonEntry
		if err := json.Unmarshal(trimmed, &rows); err != nil {
			return jsonLog{}, fmt.Errorf("tunelog: %w", err)
		}
		return jsonLog{Entries: rows}, nil
	}
	var db jsonLog
	if err := json.Unmarshal(trimmed, &db); err != nil {
		return jsonLog{}, fmt.Errorf("tunelog: %w", err)
	}
	return db, nil
}

// ingestModel folds a decoded file model into this log's predictor.
// Observations merge (deduplicated) in both the Load and Merge
// directions — measurements are facts, not preferences, so there is no
// conflict to resolve — and the merged model refits.
func (l *Log) ingestModel(m *costmodel.Predictor) {
	if m == nil {
		return
	}
	if l.Model == nil {
		l.Model = costmodel.NewPredictor(1)
	}
	l.Model.Ingest(m)
}

// Load merges a saved database into this one (file entries win key
// conflicts — use Merge to keep in-memory entries instead). A v2 file's
// cost model is folded into the log's predictor, so a warm process
// starts trained.
func (l *Log) Load(r io.Reader) error {
	db, err := decode(r)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, row := range db.Entries {
		l.entries[row.Key] = row.Entry
	}
	l.ingestModel(db.Model)
	return nil
}

// Merge reads a saved database and adds only entries whose keys are
// absent from this log: in-memory entries win conflicts. This is the
// write-back direction — a server persisting its shared log merges in
// what other processes wrote to the file without clobbering its own
// fresher results. Cost-model observations merge symmetrically.
func (l *Log) Merge(r io.Reader) error {
	db, err := decode(r)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, row := range db.Entries {
		if _, ok := l.entries[row.Key]; !ok {
			l.entries[row.Key] = row.Entry
		}
	}
	l.ingestModel(db.Model)
	return nil
}

// GemmKey builds the key for a GEMM task.
func GemmKey(m, n, k int, dt tensor.DType, device string) Key {
	return Key{Kind: "gemm", M: m, N: n, K: k, DType: dt.String(), Device: device, Version: 1}
}

// ConvKey builds the key for a conv task from its full shape. The
// implicit-GEMM dims are stored alongside for reporting, but the
// shape itself is what keys the entry.
func ConvKey(s cutlass.ConvShape, dt tensor.DType, device string) Key {
	m, n, k := s.ImplicitGemm()
	return Key{Kind: "conv2d", M: m, N: n, K: k, DType: dt.String(), Conv: s, Device: device, Version: 1}
}
