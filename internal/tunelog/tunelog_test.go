package tunelog

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bolt/internal/ansor"
	"bolt/internal/costmodel"
	"bolt/internal/cutlass"
	"bolt/internal/tensor"
)

func sched() ansor.Schedule {
	return ansor.Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 8, ThreadN: 8, Vec: 8, Unroll: 64}
}

func TestLookupRecord(t *testing.T) {
	l := New()
	k := GemmKey(1280, 3072, 768, tensor.FP16, "t4")
	if _, ok := l.Lookup(k); ok {
		t.Fatal("empty log hit")
	}
	l.Record(k, Entry{Schedule: sched(), TimeSeconds: 1e-4, Trials: 2000})
	e, ok := l.Lookup(k)
	if !ok || e.Trials != 2000 {
		t.Fatal("recorded entry not found")
	}
	// A different shape must miss — the dynamic-shape failure mode.
	if _, ok := l.Lookup(GemmKey(1281, 3072, 768, tensor.FP16, "t4")); ok {
		t.Error("near-miss shape must not hit")
	}
	// A different device must miss.
	if _, ok := l.Lookup(GemmKey(1280, 3072, 768, tensor.FP16, "a100")); ok {
		t.Error("different device must not hit")
	}
	if l.Hits != 1 || l.Misses != 3 {
		t.Errorf("hits %d misses %d, want 1/3", l.Hits, l.Misses)
	}
	if l.HitRate() != 0.25 {
		t.Errorf("hit rate %f", l.HitRate())
	}
}

// TestDTypeDoesNotCollide: an FP16 and an FP32 GEMM of the same shape
// are different tuning tasks and must not share a cache entry.
func TestDTypeDoesNotCollide(t *testing.T) {
	l := New()
	l.Record(GemmKey(1024, 1024, 1024, tensor.FP16, "t4"), Entry{TimeSeconds: 1e-4})
	if _, ok := l.Lookup(GemmKey(1024, 1024, 1024, tensor.FP32, "t4")); ok {
		t.Error("FP32 lookup hit an FP16 entry")
	}
	if _, ok := l.Lookup(GemmKey(1024, 1024, 1024, tensor.FP16, "t4")); !ok {
		t.Error("same-dtype lookup must hit")
	}
}

// TestConvShapeDoesNotAlias: two conv shapes with identical
// implicit-GEMM projections are distinct tasks. (N=2,H=8 vs N=8,H=4
// with matching channel counts both project to the same (M,N,K).)
func TestConvShapeDoesNotAlias(t *testing.T) {
	a := cutlass.Conv1x1(2, 8, 8, 64, 32)
	b := cutlass.Conv1x1(8, 4, 4, 64, 32)
	am, an, ak := a.ImplicitGemm()
	bm, bn, bk := b.ImplicitGemm()
	if am != bm || an != bn || ak != bk {
		t.Fatalf("test premise broken: projections differ (%d,%d,%d) vs (%d,%d,%d)", am, an, ak, bm, bn, bk)
	}
	l := New()
	l.Record(ConvKey(a, tensor.FP16, "t4"), Entry{TimeSeconds: 1e-4})
	if _, ok := l.Lookup(ConvKey(b, tensor.FP16, "t4")); ok {
		t.Error("distinct conv shapes with equal implicit-GEMM dims must not alias")
	}
	if _, ok := l.Lookup(ConvKey(a, tensor.FP16, "t4")); !ok {
		t.Error("identical conv shape must hit")
	}
}

func TestVersionStaleness(t *testing.T) {
	l := New()
	k := GemmKey(512, 512, 512, tensor.FP16, "t4")
	l.Record(k, Entry{Schedule: sched(), TimeSeconds: 1e-5, Trials: 900})
	// Tuner upgrade: old entries stop matching and count as stale.
	l.CurrentVersion = 2
	if _, ok := l.Lookup(k); ok {
		t.Fatal("stale entry served after version bump")
	}
	if l.StaleHits != 1 {
		t.Errorf("stale hits %d, want 1 (the maintenance-burden signal)", l.StaleHits)
	}
	// Re-recording at the new version restores hits.
	l.Record(k, Entry{Schedule: sched(), TimeSeconds: 9e-6, Trials: 900})
	if _, ok := l.Lookup(k); !ok {
		t.Error("re-tuned entry must hit")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := New()
	cfg := cutlass.GemmConfig{
		TB:     cutlass.Shape3{M: 128, N: 128, K: 32},
		Warp:   cutlass.Shape3{M: 64, N: 64, K: 32},
		Inst:   cutlass.Shape3{M: 16, N: 8, K: 8},
		Stages: 2, SwizzleLog: 2, AlignA: 8, AlignB: 8, AlignC: 8,
	}
	l.Record(GemmKey(1024, 1024, 1024, tensor.FP16, "t4"),
		Entry{Schedule: sched(), Config: cfg, TimeSeconds: 3e-4, Trials: 2000})
	l.Record(ConvKey(cutlass.Conv3x3(32, 56, 56, 64, 64, 1, 1), tensor.FP16, "t4"),
		Entry{Schedule: sched(), TimeSeconds: 6e-4, Trials: 900})
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2 := New()
	if err := l2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", l2.Len())
	}
	e, ok := l2.Lookup(GemmKey(1024, 1024, 1024, tensor.FP16, "t4"))
	if !ok || e.TimeSeconds != 3e-4 {
		t.Error("round-tripped entry wrong")
	}
	if e.Config != cfg {
		t.Errorf("config did not round-trip: %+v", e.Config)
	}
	if err := l2.Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("corrupt database must error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := GemmKey(64*i, 64, 64, tensor.FP16, "t4")
			l.Record(k, Entry{Schedule: sched(), TimeSeconds: 1e-6})
			l.Lookup(k)
			l.Lookup(GemmKey(1, 2, 3, tensor.FP16, "t4"))
		}(i)
	}
	wg.Wait()
	if l.Len() != 16 || l.Hits != 16 || l.Misses != 16 {
		t.Errorf("concurrent accounting wrong: len %d hits %d misses %d", l.Len(), l.Hits, l.Misses)
	}
}

func TestMergeMemoryWins(t *testing.T) {
	k := GemmKey(128, 256, 512, tensor.FP16, "t4")
	k2 := GemmKey(64, 64, 64, tensor.FP16, "t4")

	// The "file": an external writer's database with k (older result)
	// and k2 (a key we do not have).
	ext := New()
	ext.Record(k, Entry{TimeSeconds: 2e-6, Trials: 2})
	ext.Record(k2, Entry{TimeSeconds: 3e-6, Trials: 3})
	var buf bytes.Buffer
	if err := ext.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fileBytes := buf.Bytes()

	// Merge: our fresher entry for k must survive, k2 must be added.
	l := New()
	l.Record(k, Entry{TimeSeconds: 1e-6, Trials: 1})
	if err := l.Merge(bytes.NewReader(fileBytes)); err != nil {
		t.Fatal(err)
	}
	if e, ok := l.Lookup(k); !ok || e.Trials != 1 {
		t.Errorf("Merge clobbered the in-memory entry: %+v", e)
	}
	if e, ok := l.Lookup(k2); !ok || e.Trials != 3 {
		t.Errorf("Merge did not add the missing key: %+v", e)
	}

	// Load is the opposite direction: file entries win.
	l2 := New()
	l2.Record(k, Entry{TimeSeconds: 1e-6, Trials: 1})
	if err := l2.Load(bytes.NewReader(fileBytes)); err != nil {
		t.Fatal(err)
	}
	if e, ok := l2.Lookup(k); !ok || e.Trials != 2 {
		t.Errorf("Load must prefer file entries: %+v", e)
	}
}

// trainedModel builds a small predictor with enough structure to fit.
func trainedModel(scale float64) *costmodel.Predictor {
	p := costmodel.NewPredictor(1)
	for g := 0; g < 4; g++ {
		for i := 0; i < 8; i++ {
			x := float64(i + g)
			p.Observe(fmt.Sprintf("g%d", g), []float64{1, x, x * x}, scale*(2*x-1))
		}
	}
	p.Fit()
	return p
}

func TestSaveLoadRoundTripsModel(t *testing.T) {
	l := New()
	l.Record(GemmKey(64, 64, 64, tensor.FP16, "T4"), Entry{TimeSeconds: 1e-6, Trials: 5})
	l.Model = trainedModel(1)
	if !l.Model.Trained() {
		t.Fatal("setup: model did not train")
	}
	wantConf := l.Model.Confidence()

	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	warm := New()
	if err := warm.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if warm.Model == nil || !warm.Model.Trained() {
		t.Fatal("loaded log must carry a trained model")
	}
	if got := warm.Model.Confidence(); got != wantConf {
		t.Errorf("model confidence changed across save/load: %v != %v", got, wantConf)
	}
	if warm.Model.Len() != l.Model.Len() {
		t.Errorf("observation count changed: %d != %d", warm.Model.Len(), l.Model.Len())
	}

	// Merge direction: observations union and the model refits.
	merged := New()
	merged.Model = trainedModel(1)
	if err := merged.Merge(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if merged.Model.Len() != l.Model.Len() {
		t.Errorf("merging identical observations must dedup: %d != %d", merged.Model.Len(), l.Model.Len())
	}
}

func TestLoadLegacyArrayFormat(t *testing.T) {
	// Pre-v2 logs are a bare entry array with no model; they must still
	// load (and merge) without error.
	legacy := `[
  {"key": {"kind": "gemm", "m": 64, "n": 64, "k": 64, "dtype": "float16", "device": "T4", "version": 1},
   "entry": {"time_seconds": 2.5e-06, "trials": 7}}
]`
	l := New()
	if err := l.Load(strings.NewReader(legacy)); err != nil {
		t.Fatal(err)
	}
	if e, ok := l.Lookup(GemmKey(64, 64, 64, tensor.FP16, "T4")); !ok || e.Trials != 7 {
		t.Errorf("legacy entry missing after load: %+v ok=%v", e, ok)
	}
	if l.Model.Trained() {
		t.Error("legacy file carries no model; predictor must stay untrained")
	}
	l2 := New()
	if err := l2.Merge(strings.NewReader(legacy)); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 1 {
		t.Errorf("legacy merge added %d entries, want 1", l2.Len())
	}
}

func TestPredictedEntryRoundTrips(t *testing.T) {
	l := New()
	k := GemmKey(128, 128, 128, tensor.FP16, "T4")
	l.Record(k, Entry{TimeSeconds: 3e-6, Trials: 0, Predicted: true})
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2 := New()
	if err := l2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	e, ok := l2.Lookup(k)
	if !ok || !e.Predicted {
		t.Errorf("predicted flag lost across save/load: %+v ok=%v", e, ok)
	}
}
