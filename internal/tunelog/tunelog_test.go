package tunelog

import (
	"bytes"
	"sync"
	"testing"

	"bolt/internal/ansor"
)

func sched() ansor.Schedule {
	return ansor.Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 8, ThreadN: 8, Vec: 8, Unroll: 64}
}

func TestLookupRecord(t *testing.T) {
	l := New()
	k := GemmKey(1280, 3072, 768, "t4")
	if _, ok := l.Lookup(k); ok {
		t.Fatal("empty log hit")
	}
	l.Record(k, Entry{Schedule: sched(), TimeSeconds: 1e-4, Trials: 2000})
	e, ok := l.Lookup(k)
	if !ok || e.Trials != 2000 {
		t.Fatal("recorded entry not found")
	}
	// A different shape must miss — the dynamic-shape failure mode.
	if _, ok := l.Lookup(GemmKey(1281, 3072, 768, "t4")); ok {
		t.Error("near-miss shape must not hit")
	}
	// A different device must miss.
	if _, ok := l.Lookup(GemmKey(1280, 3072, 768, "a100")); ok {
		t.Error("different device must not hit")
	}
	if l.Hits != 1 || l.Misses != 3 {
		t.Errorf("hits %d misses %d, want 1/3", l.Hits, l.Misses)
	}
	if l.HitRate() != 0.25 {
		t.Errorf("hit rate %f", l.HitRate())
	}
}

func TestVersionStaleness(t *testing.T) {
	l := New()
	k := GemmKey(512, 512, 512, "t4")
	l.Record(k, Entry{Schedule: sched(), TimeSeconds: 1e-5, Trials: 900})
	// Tuner upgrade: old entries stop matching and count as stale.
	l.CurrentVersion = 2
	if _, ok := l.Lookup(k); ok {
		t.Fatal("stale entry served after version bump")
	}
	if l.StaleHits != 1 {
		t.Errorf("stale hits %d, want 1 (the maintenance-burden signal)", l.StaleHits)
	}
	// Re-recording at the new version restores hits.
	l.Record(k, Entry{Schedule: sched(), TimeSeconds: 9e-6, Trials: 900})
	if _, ok := l.Lookup(k); !ok {
		t.Error("re-tuned entry must hit")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := New()
	l.Record(GemmKey(1024, 1024, 1024, "t4"), Entry{Schedule: sched(), TimeSeconds: 3e-4, Trials: 2000})
	l.Record(ConvKey(100352, 64, 576, "t4"), Entry{Schedule: sched(), TimeSeconds: 6e-4, Trials: 900})
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2 := New()
	if err := l2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", l2.Len())
	}
	e, ok := l2.Lookup(GemmKey(1024, 1024, 1024, "t4"))
	if !ok || e.TimeSeconds != 3e-4 {
		t.Error("round-tripped entry wrong")
	}
	if err := l2.Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("corrupt database must error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := GemmKey(64*i, 64, 64, "t4")
			l.Record(k, Entry{Schedule: sched(), TimeSeconds: 1e-6})
			l.Lookup(k)
			l.Lookup(GemmKey(1, 2, 3, "t4"))
		}(i)
	}
	wg.Wait()
	if l.Len() != 16 || l.Hits != 16 || l.Misses != 16 {
		t.Errorf("concurrent accounting wrong: len %d hits %d misses %d", l.Len(), l.Hits, l.Misses)
	}
}
