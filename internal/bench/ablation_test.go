package bench

import (
	"strings"
	"testing"
)

func TestAblationSwizzleMonotone(t *testing.T) {
	tab := quick().AblationSwizzle()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// DRAM traffic must be non-increasing with swizzle group size.
	prev := 1e18
	for i := range tab.Rows {
		gb := cellF(t, tab, i, "DRAM GB/launch")
		if gb > prev {
			t.Errorf("traffic increased at row %d: %.2f > %.2f", i, gb, prev)
		}
		prev = gb
	}
	// Swizzle must never hurt.
	if v := cellF(t, tab, 3, "vs swizzle=1"); v < 1 {
		t.Errorf("8x8 swizzle slower than none: %.2f", v)
	}
}

func TestAblationWarpsHasValidAndInvalid(t *testing.T) {
	tab := quick().AblationWarps()
	invalid := 0
	for _, r := range tab.Rows {
		if strings.Contains(strings.Join(r, " "), "invalid") {
			invalid++
		}
	}
	if invalid == 0 {
		t.Error("the 2-warp giant-tile row should blow the register cap")
	}
	if invalid >= len(tab.Rows) {
		t.Error("some warp partitions must be valid")
	}
}

func TestAblationSmallTBPrefersSmallTiles(t *testing.T) {
	tab := quick().AblationSmallTB()
	if len(tab.Rows) < 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	first := cellF(t, tab, 0, "time us")
	last := cellF(t, tab, len(tab.Rows)-1, "time us")
	if first >= last {
		t.Errorf("smallest threadblock (%.1fus) should beat biggest (%.1fus) on M=32", first, last)
	}
	// Active SMs must decrease as tiles grow.
	if cellF(t, tab, 0, "active SMs") <= cellF(t, tab, len(tab.Rows)-1, "active SMs") {
		t.Error("bigger tiles must strand SMs")
	}
}

func TestAblationResidenceOrdering(t *testing.T) {
	tab := quick().AblationResidence()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	unfused := cellF(t, tab, 0, "time us")
	rf := cellF(t, tab, 1, "time us")
	smem := cellF(t, tab, 2, "time us")
	if !(rf < unfused && smem < unfused) {
		t.Errorf("both residences should beat unfused: %v %v %v", unfused, rf, smem)
	}
	if rf > smem*1.05 {
		t.Errorf("RF residence (%.1f) should not lose to smem (%.1f) on a small-N pair", rf, smem)
	}
}

func TestAblationStagesHelpOnAmpere(t *testing.T) {
	tab := quick().AblationStages()
	two := cellF(t, tab, 0, "TFLOPS")
	five := cellF(t, tab, len(tab.Rows)-1, "TFLOPS")
	if five <= two {
		t.Errorf("deep cp.async pipelines should help on sm_80: %0.f vs %0.f TFLOPS", five, two)
	}
}

func TestExtensionDynamicShapes(t *testing.T) {
	tab := quick().ExtensionDynamicShapes()
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	hits := 0
	for i := range tab.Rows {
		boltCost := cell(t, tab, i, "Bolt cost")
		if !strings.HasSuffix(boltCost, "s") {
			t.Errorf("row %d bolt cost %q not in seconds", i, boltCost)
		}
		switch cell(t, tab, i, "TopHub cache") {
		case "hit":
			hits++
			if cell(t, tab, i, "Ansor cost") != "0 (cached)" {
				t.Errorf("row %d: cache hit must cost nothing", i)
			}
		case "miss":
			if !strings.HasSuffix(cell(t, tab, i, "Ansor cost"), "min") {
				t.Errorf("row %d: cache miss should cost a re-tune in minutes", i)
			}
		default:
			t.Errorf("row %d: bad cache cell %q", i, cell(t, tab, i, "TopHub cache"))
		}
		// The kernels themselves: Bolt faster at every sequence length.
		if cellF(t, tab, i, "Bolt us") >= cellF(t, tab, i, "Ansor us") {
			t.Errorf("row %d: Bolt kernel not faster", i)
		}
	}
	// Exactly the static deployment shape (seq=40) hits the database —
	// that is the paper's dynamic-shape argument in one number.
	if hits != 1 {
		t.Errorf("%d cache hits, want exactly 1 (seq=40)", hits)
	}
	// Later shapes reuse compiled sample programs: profiling cost must
	// drop sharply after the first few shapes.
	first := strings.TrimSuffix(cell(t, tab, 0, "Bolt cost"), "s")
	last := strings.TrimSuffix(cell(t, tab, 4, "Bolt cost"), "s")
	f, l := mustF(t, first), mustF(t, last)
	if l > f/2 {
		t.Errorf("sample-program reuse should make later shapes cheap: first %.1fs, last %.1fs", f, l)
	}
}

func mustF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestExtensionDeepChains(t *testing.T) {
	tab := quick().ExtensionDeepChains()
	// Speedup must be monotone in fusion depth.
	prev := 0.0
	for i := range tab.Rows {
		v := cellF(t, tab, i, "vs unfused")
		if v < prev {
			t.Errorf("deeper fusion got slower at row %d: %.2f < %.2f", i, v, prev)
		}
		prev = v
	}
	if prev < 1.5 {
		t.Errorf("4-layer fusion speedup %.2f too small", prev)
	}
}

func TestExtensionINT8(t *testing.T) {
	tab := quick().ExtensionINT8()
	for i := range tab.Rows {
		v := cellF(t, tab, i, "INT8 speedup")
		if v < 1.1 || v > 2.3 {
			t.Errorf("row %d INT8 speedup %.2f outside [1.1, 2.3] (IMMA peak is 2x HMMA)", i, v)
		}
	}
}

func TestAblationRegistry(t *testing.T) {
	s := quick()
	for _, id := range AblationIDs() {
		f := s.AblationByID(id)
		if f == nil {
			t.Fatalf("no regenerator for %s", id)
		}
		tab := f()
		if tab.ID != id || len(tab.Rows) == 0 {
			t.Errorf("%s malformed: id=%s rows=%d", id, tab.ID, len(tab.Rows))
		}
	}
	if got := len(s.Ablations()); got != len(AblationIDs()) {
		t.Errorf("Ablations returned %d tables", got)
	}
}
