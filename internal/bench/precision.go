package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"bolt/internal/accuracy"
	"bolt/internal/codegen"
	"bolt/internal/gpu"
	"bolt/internal/models"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/serve"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// The precision experiment exercises the PR-8 mixed-precision serving
// path end to end: one BERT FFN model (the examples/bert workload in
// served form — GELU rides the up-projection GEMM's epilogue) deployed
// at FP32, FP16, and INT8 on an A100 worker, each arm accuracy-gated
// against the FP32 RunUnplanned oracle at deploy time and then flooded
// with the identical seeded Poisson request stream. A fourth arm
// requests INT8 under an impossible budget to demonstrate the FP32
// fallback. Every number is computed on the simulated clocks, so the
// experiment is deterministic. It emits BENCH_pr8.json for CI.

// precisionGELUModel is the served BERT-base FFN block at batch 1.
func precisionGELUModel() *relay.Graph { return models.BERTMLP(1, 768, 3072) }

// precisionRow is one arm's measured result.
type precisionRow struct {
	Arm        string  `json:"arm"`
	Requested  string  `json:"requested"`
	Served     string  `json:"served"`
	Budget     float64 `json:"budget"`
	Divergence float64 `json:"divergence"`
	FellBack   bool    `json:"fell_back"`
	Requests   int64   `json:"requests"`
	Throughput float64 `json:"throughput_imgs_per_sec"`
	MakespanUs float64 `json:"makespan_us"`
	P50Us      float64 `json:"p50_us"`
	P99Us      float64 `json:"p99_us"`
	Batch8Us   float64 `json:"batch8_us"`
}

// precisionArtifact is the BENCH_pr8.json schema.
type precisionArtifact struct {
	Model    string         `json:"model"`
	Device   string         `json:"device"`
	Requests int            `json:"requests"`
	Rows     []precisionRow `json:"rows"`
	// Launch counts of the batch-8 FP16 variant vs its graph's anchor
	// count: BiasAdd+GELU ride the GEMM epilogues, so the whole FFN
	// block is two launches.
	FP16Launches int `json:"fp16_launches"`
	// The CI-enforced numbers: served-throughput ratios under the same
	// Poisson stream, and the fallback demonstration.
	FP16VsFP32            float64 `json:"fp16_vs_fp32"`
	INT8VsFP16            float64 `json:"int8_vs_fp16"`
	FallbackDemonstrated  bool    `json:"fallback_demonstrated"`
	DivergencesWithinGate bool    `json:"divergences_within_gate"`
}

// precisionCompilerOn compiles a precision-cast graph for one device
// through the shared tuning log (dtype-scoped keys keep FP32/FP16/INT8
// variants of the same shapes apart in one cache).
func precisionCompilerOn(dev *gpu.Device, log *tunelog.Log) func(*relay.Graph) (*rt.Module, error) {
	return func(g *relay.Graph) (*rt.Module, error) {
		if err := relay.Optimize(g, dev); err != nil {
			return nil, err
		}
		p, _ := newProfilerOn(dev)
		return codegen.Compile(g, dev, codegen.Options{
			Tuner: codegen.TunerBolt, Profiler: p, Log: log,
		})
	}
}

func (s *Suite) runPrecision() precisionArtifact {
	requests := s.PrecisionRequests
	requests -= requests % 8 // full largest buckets only
	if requests < 16 {
		requests = 16
	}
	dev := gpu.A100()
	log := tunelog.New()
	compile := precisionCompilerOn(dev, log)

	arms := []struct {
		name   string
		dt     tensor.DType
		budget float64
	}{
		{"fp32", tensor.FP32, 0},
		{"fp16", tensor.FP16, 0.05},
		{"int8", tensor.INT8, 0.25},
		// An impossible budget: the gate must reject INT8 and serve FP32.
		{"int8-tight", tensor.INT8, 1e-9},
	}

	// Gate every arm first (this also primes the shared tuning log), and
	// price each deployed graph's full bucket to find the fastest arm —
	// the Poisson stream is sized to saturate it, so every arm's
	// makespan measures serving capacity, not the arrival span.
	deployed := make([]*relay.Graph, len(arms))
	reports := make([]accuracy.DivergenceReport, len(arms))
	cost8 := make([]float64, len(arms))
	mod8 := make([]*rt.Module, len(arms))
	for i, a := range arms {
		g, rep, err := accuracy.GatePrecision(precisionGELUModel(), a.dt, a.budget, 2, 20518, compile)
		if err != nil {
			panic(err)
		}
		deployed[i], reports[i] = g, rep
		vg, err := relay.Rebatch(g, 8)
		if err != nil {
			panic(err)
		}
		m, err := compile(vg)
		if err != nil {
			panic(err)
		}
		mod8[i] = m
		cost8[i] = m.Time()
	}
	fastest := cost8[0]
	for _, c := range cost8[1:] {
		if c < fastest {
			fastest = c
		}
	}
	arrivals := PoissonArrivals(requests, 0.25*fastest/8, 23)
	inputs := make([]map[string]*tensor.Tensor, requests)
	for i := range inputs {
		in := tensor.New(tensor.FP16, 1, 768)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*tensor.Tensor{"tokens": in}
	}

	art := precisionArtifact{
		Model:    "bert-mlp-768-3072",
		Device:   dev.Name,
		Requests: requests,
	}
	var fp32TP, fp16TP, int8TP float64
	for i, a := range arms {
		srv := serve.NewServer(serve.ServerOptions{
			Devices:     []*gpu.Device{dev},
			QueueDepth:  requests,
			BatchWindow: 10 * time.Millisecond,
			CompileJobs: 2,
			Trace:       s.Trace,
			TraceLabel:  "precision " + a.name,
		})
		if err := srv.DeployOn("bertmlp", s.tenantCompilerOn(deployed[i], log), serve.DeployOptions{
			Buckets: []int{1, 2, 4, 8},
		}); err != nil {
			panic(err)
		}
		if err := srv.Warm("bertmlp"); err != nil {
			panic(err)
		}
		chans := make([]<-chan serve.Result, requests)
		for r := range inputs {
			ch, err := srv.InferAsync("bertmlp", inputs[r], serve.InferOptions{
				Priority:   serve.PriorityBulk,
				SimArrival: arrivals[r],
			})
			if err != nil {
				panic(err)
			}
			chans[r] = ch
		}
		for _, ch := range chans {
			if res := <-ch; res.Err != nil {
				panic(res.Err)
			}
		}
		st := srv.Stats()
		srv.Close()
		rep := reports[i]
		row := precisionRow{
			Arm:        a.name,
			Requested:  rep.Requested.String(),
			Served:     rep.Served.String(),
			Budget:     rep.Budget,
			Divergence: rep.Divergence,
			FellBack:   rep.Fallback,
			Requests:   st.Requests,
			Throughput: st.Throughput(),
			MakespanUs: st.SimMakespan * 1e6,
			P50Us:      st.LatencyPercentile(50) * 1e6,
			P99Us:      st.LatencyPercentile(99) * 1e6,
			Batch8Us:   cost8[i] * 1e6,
		}
		art.Rows = append(art.Rows, row)
		switch a.name {
		case "fp32":
			fp32TP = row.Throughput
		case "fp16":
			fp16TP = row.Throughput
			art.FP16Launches = mod8[i].LaunchCount()
		case "int8":
			int8TP = row.Throughput
		case "int8-tight":
			art.FallbackDemonstrated = rep.Fallback && rep.Served == tensor.FP32
		}
	}
	if fp32TP > 0 {
		art.FP16VsFP32 = fp16TP / fp32TP
	}
	if fp16TP > 0 {
		art.INT8VsFP16 = int8TP / fp16TP
	}
	art.DivergencesWithinGate = true
	for i, a := range arms {
		rep := reports[i]
		if a.budget > 0 && !rep.Fallback && rep.Divergence > a.budget {
			art.DivergencesWithinGate = false
		}
	}
	return art
}

// Precision reproduces the mixed-precision serving experiment: the
// BERT FFN workload deployed at FP32/FP16/INT8 with deploy-time
// accuracy gating, identical seeded Poisson streams replayed against
// each precision arm on an A100 worker, plus the forced-fallback arm.
// When Suite.PrecisionArtifact is set, the raw numbers are also
// written there as JSON (boltbench points it at BENCH_pr8.json).
func (s *Suite) Precision() *Table {
	art := s.runPrecision()
	t := &Table{
		ID:      "precision",
		Title:   fmt.Sprintf("Mixed-precision serving: %d Poisson requests per arm on %s (simulated device time)", art.Requests, art.Device),
		Columns: []string{"arm", "served", "divergence", "imgs/s", "makespan us", "p99 us", "batch-8 us"},
		Notes: []string{
			"BERT-base FFN block (768-3072-768); BiasAdd+GELU ride the GEMM epilogues",
			fmt.Sprintf("FP16 batch-8 variant launches %d kernels for the whole block", art.FP16Launches),
			fmt.Sprintf("served throughput under the same stream: FP16 %.2fx FP32, INT8 %.2fx FP16 (CI-enforced)",
				art.FP16VsFP32, art.INT8VsFP16),
			"int8-tight requests INT8 under a 1e-9 budget: the gate rejects it and serves FP32",
		},
	}
	for _, r := range art.Rows {
		div := "-"
		if r.Divergence >= 0 {
			div = fmt.Sprintf("%.2e", r.Divergence)
		}
		served := r.Served
		if r.FellBack {
			served += " (fallback)"
		}
		t.AddRow(r.Arm, served, div, i0(r.Throughput), f1(r.MakespanUs), f1(r.P99Us), f1(r.Batch8Us))
	}
	if s.PrecisionArtifact != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(s.PrecisionArtifact, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
	}
	return t
}
