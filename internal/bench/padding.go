package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"bolt/internal/gpu"
	"bolt/internal/rt"
	"bolt/internal/serve"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// The padding experiment is the PR-6 ablation: the same seeded Poisson
// request stream (the PR-5 mixed 1x T4 + 1x A100 pool and widenet
// model) replayed under four batching policies — strict buckets with
// the fixed batch window, continuous marginal-gain formation, continuous
// formation plus padded-bucket dispatch, and the single-bucket guard
// (adaptive flags on a one-rung ladder, which must short-circuit to
// strict with zero padded batches). The strict baseline holds partial
// batches for the window while devices idle; continuous formation
// dispatches as soon as the modeled marginal gain of one more row goes
// negative, and padding lets those partial batches ride a larger
// compiled bucket when the cost model prices that earlier than a chain
// of exact buckets. Every number is computed on the simulated clocks,
// and batch composition is made deterministic by gating the variant
// compiles until the whole stream is queued (see floodPadding). It
// emits BENCH_pr6.json for CI.

// paddingPolicy is one batching policy under test.
type paddingPolicy struct {
	name       string
	buckets    []int
	pad        bool
	continuous bool
	requests   int // 0 = the full stream
}

// paddingRow is one policy's measured result.
type paddingRow struct {
	Policy        string        `json:"policy"`
	Requests      int64         `json:"requests"`
	Batches       int64         `json:"batches"`
	PaddedBatches int64         `json:"padded_batches"`
	PaddedRows    int64         `json:"padded_rows"`
	BatchSizes    map[int]int64 `json:"batch_sizes"`
	Throughput    float64       `json:"throughput_imgs_per_sec"`
	MakespanUs    float64       `json:"makespan_us"`
	P50Us         float64       `json:"p50_us"`
	P99Us         float64       `json:"p99_us"`
}

// paddingArtifact is the BENCH_pr6.json schema.
type paddingArtifact struct {
	Model    string       `json:"model"`
	Pool     string       `json:"pool"`
	Requests int          `json:"requests"`
	Rows     []paddingRow `json:"rows"`
	// Modeled bucket costs bounding the padding trade: a bucket-8 run
	// costs little more than bucket 1 on this launch-bound ladder's
	// small end, which is exactly when padding partial batches pays.
	T4Batch1Us float64 `json:"t4_batch1_us"`
	T4Batch8Us float64 `json:"t4_batch8_us"`
	// The CI-enforced numbers: continuous+padded must not lose modeled
	// throughput against strict buckets, its p99 must stay within 1.1x,
	// it must actually pad, and the single-bucket guard must never pad.
	StrictThroughput   float64 `json:"strict_throughput"`
	PaddedThroughput   float64 `json:"padded_throughput"`
	ThroughputGain     float64 `json:"throughput_gain"`
	StrictP99Us        float64 `json:"strict_p99_us"`
	PaddedP99Us        float64 `json:"padded_p99_us"`
	P99Ratio           float64 `json:"p99_ratio"`
	PaddedBatches      int64   `json:"padded_batches"`
	GuardPaddedBatches int64   `json:"guard_padded_batches"`
}

// floodPadding replays the prepared request stream against one policy
// and returns the aggregate stats. Batch composition is deterministic:
// the variant compiles are gated shut until the scheduler has absorbed
// the entire stream (nothing can be priced, so nothing can dispatch),
// then the gate opens and every planning decision sees the full queue —
// host scheduling noise cannot change which rows coalesce. From there
// the outcome depends only on modeled costs and simulated arrivals.
func (s *Suite) floodPadding(devices []*gpu.Device, log *tunelog.Log, pol paddingPolicy, inputs []map[string]*tensor.Tensor, arrivals []float64) serve.Stats {
	gate := make(chan struct{})
	inner := s.tenantCompilerOn(heteroModel(), log)
	gated := func(dev *gpu.Device, batch int) (*rt.Module, error) {
		<-gate
		return inner(dev, batch)
	}
	srv := serve.NewServer(serve.ServerOptions{
		Devices:     devices,
		QueueDepth:  len(inputs),
		BatchWindow: 10 * time.Millisecond,
		CompileJobs: 2,
		Trace:       s.Trace,
		TraceLabel:  "padding " + pol.name,
	})
	defer srv.Close()
	if err := srv.DeployOn("widenet", gated, serve.DeployOptions{
		Buckets:            pol.buckets,
		AllowPadding:       pol.pad,
		ContinuousBatching: pol.continuous,
	}); err != nil {
		panic(err)
	}
	chans := make([]<-chan serve.Result, len(inputs))
	for i, in := range inputs {
		ch, err := srv.InferAsync("widenet", in, serve.InferOptions{
			Priority:   serve.PriorityBulk,
			SimArrival: arrivals[i],
		})
		if err != nil {
			panic(err)
		}
		chans[i] = ch
	}
	for srv.Pending() < len(inputs) {
		time.Sleep(200 * time.Microsecond)
	}
	close(gate)
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			panic(res.Err)
		}
	}
	return srv.Stats()
}

func (s *Suite) runPadding() paddingArtifact {
	requests := s.PaddingRequests
	requests -= requests % 8 // strict baseline: full largest buckets only
	if requests < 16 {
		requests = 16
	}
	log := tunelog.New()
	t4, a100 := gpu.T4(), gpu.A100()
	compile := s.tenantCompilerOn(heteroModel(), log)

	// Price the ladder's ends on the T4 (priming the shared tuning log
	// along the way): the bucket-8/bucket-1 cost ratio is what makes
	// padding a partial batch to a full rung nearly free on this model.
	mod1T4, err := compile(t4, 1)
	if err != nil {
		panic(err)
	}
	mod8T4, err := compile(t4, 8)
	if err != nil {
		panic(err)
	}
	cost1T4, cost8T4 := mod1T4.Time(), mod8T4.Time()

	// Offered load at roughly a third of the mixed pool's bucket-8
	// service capacity: under-capacity on purpose, so the strict baseline's
	// batches routinely idle a device while they wait to fill and its
	// last full bucket cannot even start before the final arrival — the
	// gaps continuous formation and padding exist to close. (Near
	// saturation the comparison inverts: a backlogged queue hands strict
	// full buckets for free and padding only spends compute the pool no
	// longer has spare.) Arrivals use the PR-5 seeded Poisson generator.
	arrivals := PoissonArrivals(requests, 1.25*cost8T4/8, 17)
	inputs := make([]map[string]*tensor.Tensor, requests)
	for i := range inputs {
		in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 1, 16, 32, 32)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*tensor.Tensor{"image": in}
	}

	guardN := 16
	if guardN > requests {
		guardN = requests
	}
	ladder := []int{1, 2, 4, 8}
	policies := []paddingPolicy{
		{name: "strict buckets", buckets: ladder},
		{name: "continuous", buckets: ladder, continuous: true},
		{name: "continuous+padded", buckets: ladder, pad: true, continuous: true},
		{name: "single-bucket guard", buckets: []int{1}, pad: true, continuous: true, requests: guardN},
	}

	art := paddingArtifact{
		Model:      "widenet-16x32",
		Pool:       "1x T4 + 1x A100",
		Requests:   requests,
		T4Batch1Us: cost1T4 * 1e6,
		T4Batch8Us: cost8T4 * 1e6,
	}
	devices := []*gpu.Device{t4, a100}
	for _, pol := range policies {
		ins, arrs := inputs, arrivals
		if pol.requests > 0 && pol.requests < len(inputs) {
			ins, arrs = inputs[:pol.requests], arrivals[:pol.requests]
		}
		st := s.floodPadding(devices, log, pol, ins, arrs)
		row := paddingRow{
			Policy:        pol.name,
			Requests:      st.Requests,
			Batches:       st.Batches,
			PaddedBatches: st.PaddedBatches,
			PaddedRows:    st.PaddedRows,
			BatchSizes:    st.BatchSizes,
			Throughput:    st.Throughput(),
			MakespanUs:    st.SimMakespan * 1e6,
			P50Us:         st.LatencyPercentile(50) * 1e6,
			P99Us:         st.LatencyPercentile(99) * 1e6,
		}
		art.Rows = append(art.Rows, row)
		switch pol.name {
		case "strict buckets":
			art.StrictThroughput = row.Throughput
			art.StrictP99Us = row.P99Us
		case "continuous+padded":
			art.PaddedThroughput = row.Throughput
			art.PaddedP99Us = row.P99Us
			art.PaddedBatches = row.PaddedBatches
		case "single-bucket guard":
			art.GuardPaddedBatches = row.PaddedBatches
		}
	}
	if art.StrictThroughput > 0 {
		art.ThroughputGain = art.PaddedThroughput / art.StrictThroughput
	}
	if art.StrictP99Us > 0 {
		art.P99Ratio = art.PaddedP99Us / art.StrictP99Us
	}
	return art
}

// Padding reproduces the padded-dispatch / continuous-batching
// ablation: one seeded Poisson stream replayed under strict buckets,
// continuous formation, continuous+padded dispatch, and the
// single-bucket guard. When Suite.PaddingArtifact is set, the raw
// numbers are also written there as JSON (boltbench points it at
// BENCH_pr6.json).
func (s *Suite) Padding() *Table {
	art := s.runPadding()
	t := &Table{
		ID:      "padding",
		Title:   fmt.Sprintf("Padded-bucket dispatch + continuous batching: %d Poisson requests on %s (simulated device time)", art.Requests, art.Pool),
		Columns: []string{"policy", "imgs/s", "makespan us", "p50 us", "p99 us", "batches", "padded (rows)", "batch sizes"},
		Notes: []string{
			"identical seeded Poisson arrivals replayed under each policy; compiles are gated until the whole stream is queued, so batch composition is deterministic",
			fmt.Sprintf("modeled T4 batch cost: bucket 1 %.1f us vs bucket 8 %.1f us — padding a partial batch onto a big rung is nearly free at the ladder's launch-bound end",
				art.T4Batch1Us, art.T4Batch8Us),
			fmt.Sprintf("continuous+padded vs strict: %.2fx throughput, p99 %.2fx (CI enforces gain >= 1 and p99 <= 1.1x)",
				art.ThroughputGain, art.P99Ratio),
			fmt.Sprintf("single-bucket guard padded %d batches (CI enforces 0: adaptive flags on a one-rung ladder must short-circuit)", art.GuardPaddedBatches),
		},
	}
	for _, r := range art.Rows {
		sizes := make([]int, 0, len(r.BatchSizes))
		for k := range r.BatchSizes {
			sizes = append(sizes, k)
		}
		sort.Ints(sizes)
		hist := ""
		for i, k := range sizes {
			if i > 0 {
				hist += ", "
			}
			hist += fmt.Sprintf("%dx%d", k, r.BatchSizes[k])
		}
		t.AddRow(r.Policy, i0(r.Throughput), f1(r.MakespanUs), f1(r.P50Us), f1(r.P99Us),
			fmt.Sprintf("%d", r.Batches), fmt.Sprintf("%d (%d)", r.PaddedBatches, r.PaddedRows), hist)
	}
	if s.PaddingArtifact != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(s.PaddingArtifact, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
	}
	return t
}
