package bench

import "testing"

// TestDescribeCoversAllIDs keeps boltbench -list honest: every
// runnable experiment id must have a one-line description.
func TestDescribeCoversAllIDs(t *testing.T) {
	for _, id := range append(IDs(), AblationIDs()...) {
		if Describe(id) == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
	if Describe("no-such-experiment") != "" {
		t.Error("unknown id should describe as empty")
	}
	if len(descriptions) != len(IDs())+len(AblationIDs()) {
		t.Errorf("descriptions has %d entries, want %d (stale id?)",
			len(descriptions), len(IDs())+len(AblationIDs()))
	}
}
