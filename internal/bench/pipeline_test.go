package bench

import (
	"fmt"
	"testing"
)

// TestExtensionCompileCache pins the pipeline's two claims: warm
// recompiles through the tuning log measure nothing, and widening the
// profiling pool shrinks the cold critical path.
func TestExtensionCompileCache(t *testing.T) {
	tab := quick().ExtensionCompileCache()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	prevCold := 1e18
	for i := range tab.Rows {
		var cold, warm int
		if _, err := fmt.Sscanf(cell(t, tab, i, "measurements"), "%d -> %d", &cold, &warm); err != nil {
			t.Fatalf("row %d measurements cell: %v", i, err)
		}
		if cold == 0 {
			t.Errorf("row %d: cold compile measured nothing", i)
		}
		if warm != 0 {
			t.Errorf("row %d: warm recompile measured %d candidates, want 0", i, warm)
		}
		var coldT, warmT float64
		if _, err := fmt.Sscanf(cell(t, tab, i, "cold tune"), "%fs", &coldT); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(cell(t, tab, i, "warm tune"), "%fs", &warmT); err != nil {
			t.Fatal(err)
		}
		if warmT != 0 {
			t.Errorf("row %d: warm tuning time %.2fs, want 0", i, warmT)
		}
		if coldT > prevCold {
			t.Errorf("row %d: more jobs made the critical path longer (%.1fs > %.1fs)", i, coldT, prevCold)
		}
		prevCold = coldT
	}
	// Jobs must actually buy wall-clock: the widest pool beats serial.
	var first, last float64
	fmt.Sscanf(cell(t, tab, 0, "cold tune"), "%fs", &first)
	fmt.Sscanf(cell(t, tab, 3, "cold tune"), "%fs", &last)
	if last >= first {
		t.Errorf("8-way pool (%.1fs) not faster than serial (%.1fs)", last, first)
	}
}
