package bench

import (
	"fmt"

	"bolt/internal/codegen"
	"bolt/internal/models"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tunelog"
)

// ExtensionCompileCache quantifies the concurrent, cache-backed
// compilation pipeline: cold compiles fan unresolved workloads across
// a profiling pool (tuning time = critical path, so it shrinks with
// jobs), and a warm recompile through the persistent tuning log
// measures nothing at all.
func (s *Suite) ExtensionCompileCache() *Table {
	t := &Table{
		ID:      "ext-cache",
		Title:   "Extension: concurrent, cache-backed compilation (RepVGG-A0, batch 8)",
		Columns: []string{"jobs", "cold tune", "warm tune", "unique tasks", "cache hits", "measurements"},
		Notes: []string{
			"cold: empty tuning log; warm: immediate recompile through the same log",
			"tuning time is the profiling pool's critical path (max across workers, not the sum)",
		},
	}
	build := func() *relay.Graph { return models.RepVGG("A0", 8, models.RepVGGOptions{}) }
	compileWithLog := func(log *tunelog.Log, jobs int) rt.TuningStats {
		g := build()
		if err := relay.Optimize(g, s.Dev); err != nil {
			panic(err)
		}
		p, _ := s.newProfiler()
		m, err := codegen.Compile(g, s.Dev, codegen.Options{
			Tuner: codegen.TunerBolt, Profiler: p, Log: log, Jobs: jobs,
		})
		if err != nil {
			panic(err)
		}
		return m.Tuning
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		log := tunelog.New()
		cold := compileWithLog(log, jobs)
		warm := compileWithLog(log, jobs)
		t.AddRow(fmt.Sprint(jobs),
			fmt.Sprintf("%.1fs", cold.TuningSeconds),
			fmt.Sprintf("%.1fs", warm.TuningSeconds),
			fmt.Sprint(cold.UniqueWorkloads),
			fmt.Sprintf("%d -> %d", cold.CacheHits, warm.CacheHits),
			fmt.Sprintf("%d -> %d", cold.Measurements, warm.Measurements))
	}
	return t
}
