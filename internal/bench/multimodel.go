package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"bolt/internal/cutlass"
	"bolt/internal/relay"
	"bolt/internal/serve"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// The multimodel experiment exercises the PR-4 multi-tenant server:
// two models (the serving CNN and an MLP) deployed on one shared
// worker pool, driven by a mixed-priority seeded Poisson request
// stream on the simulated clock (so the latency tails reflect
// queueing under contention, not a flood at t=0). It
// validates the two scheduling promises deterministically on the
// simulated clocks — weighted round-robin keeps every tenant's
// throughput alive (no starvation), and high-priority requests, which
// preempt the batch window and drain first within each batch, see a
// p99 no worse than bulk requests. It emits BENCH_pr4.json for CI.

// multiMLPModel builds the second tenant: a small MLP over 256
// features — a deliberately different architecture (pure GEMM chain)
// from the CNN tenant, so the shared tunelog cache holds disjoint
// workload families.
func multiMLPModel() *relay.Graph {
	b := relay.NewBuilder()
	x := b.Input("x", tensor.FP16, 1, 256)
	h := b.Dense(x, b.Weight("w1", 256, 128))
	h = b.Activation(h, cutlass.ActReLU)
	h = b.Dense(h, b.Weight("w2", 128, 64))
	h = b.Activation(h, cutlass.ActReLU)
	d := b.Dense(h, b.Weight("w3", 64, 10))
	return b.Build(b.Softmax(d))
}

// multiModelRow is one tenant's measured result.
type multiModelRow struct {
	Model    string `json:"model"`
	Requests int64  `json:"requests"`
	// Throughput is the tenant's requests over its own makespan (the
	// simulated clock when its last batch finished) — tenants starved
	// until the end of the schedule show a depressed value.
	Throughput float64       `json:"throughput_imgs_per_sec"`
	MakespanUs float64       `json:"makespan_us"`
	HighP50Us  float64       `json:"high_p50_us"`
	HighP99Us  float64       `json:"high_p99_us"`
	BulkP50Us  float64       `json:"bulk_p50_us"`
	BulkP99Us  float64       `json:"bulk_p99_us"`
	Batches    map[int]int64 `json:"batches"`
}

// multiModelArtifact is the BENCH_pr4.json schema.
type multiModelArtifact struct {
	Workers          int             `json:"workers"`
	RequestsPerModel int             `json:"requests_per_model"`
	Rows             []multiModelRow `json:"rows"`
	// ThroughputRatio is max/min per-tenant throughput under equal
	// offered load — the fairness number (1.0 = perfectly even;
	// starvation drives it up).
	ThroughputRatio float64 `json:"throughput_ratio_max_over_min"`
	// HighP99Us / BulkP99Us are the aggregate per-priority tails; the
	// CI smoke asserts high <= bulk.
	HighP99Us float64 `json:"high_p99_us"`
	BulkP99Us float64 `json:"bulk_p99_us"`
}

func (s *Suite) runMultiModel() multiModelArtifact {
	requests := s.MultiModelRequests
	// Keep the priority pattern's tail bulk-only: a multiple of 4, one
	// high per 4 requests.
	requests -= requests % 4
	if requests < 8 {
		requests = 8
	}
	const workers = 2
	log := tunelog.New()
	type tenantSpec struct {
		name    string
		compile serve.CompileVariant
		input   func(seed int64) map[string]*tensor.Tensor
	}
	tenants := []tenantSpec{
		{"servenet-8x32", s.tenantCompiler(servingModel(), log), func(seed int64) map[string]*tensor.Tensor {
			in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 1, 8, 32, 32)
			in.FillRandom(seed, 1)
			return map[string]*tensor.Tensor{"image": in}
		}},
		{"mlp-256", s.tenantCompiler(multiMLPModel(), log), func(seed int64) map[string]*tensor.Tensor {
			in := tensor.New(tensor.FP16, 1, 256)
			in.FillRandom(seed, 1)
			return map[string]*tensor.Tensor{"x": in}
		}},
	}

	srv := serve.NewServer(serve.ServerOptions{
		Workers:     workers,
		QueueDepth:  len(tenants) * requests,
		BatchWindow: 5 * time.Millisecond,
		CompileJobs: 2,
		Trace:       s.Trace,
		TraceLabel:  "multimodel",
	})
	defer srv.Close()
	for _, tn := range tenants {
		if err := srv.Deploy(tn.name, tn.compile, serve.DeployOptions{Buckets: []int{1, 2, 4, 8}}); err != nil {
			panic(err)
		}
	}
	// Warm every variant up front so the stream measures scheduling,
	// not compilation interleaving.
	for _, tn := range tenants {
		if err := srv.Warm(tn.name); err != nil {
			panic(err)
		}
	}

	// Offered load: the tenants' requests interleave one-for-one on a
	// seeded Poisson arrival stream at ~4x one worker's CNN bucket-8
	// service rate (the pool stays backlogged, so WRR fairness is
	// exercised under contention), every fourth request
	// latency-sensitive, the rest bulk.
	mod8, err := s.tenantCompiler(servingModel(), log)(8)
	if err != nil {
		panic(err)
	}
	arrivals := PoissonArrivals(len(tenants)*requests, 0.25*mod8.Time()/8, 11)
	var chans []<-chan serve.Result
	for i := 0; i < requests; i++ {
		pri := serve.PriorityBulk
		if i%4 == 0 {
			pri = serve.PriorityHigh
		}
		for k, tn := range tenants {
			ch, err := srv.InferAsync(tn.name, tn.input(int64(i+1)), serve.InferOptions{
				Priority:   pri,
				SimArrival: arrivals[i*len(tenants)+k],
			})
			if err != nil {
				panic(err)
			}
			chans = append(chans, ch)
		}
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			panic(res.Err)
		}
	}

	art := multiModelArtifact{Workers: workers, RequestsPerModel: requests}
	minT, maxT := math.Inf(1), 0.0
	for _, tn := range tenants {
		st, ok := srv.ModelStats(tn.name)
		if !ok {
			panic("model stats missing for " + tn.name)
		}
		row := multiModelRow{
			Model:      tn.name,
			Requests:   st.Requests,
			Throughput: st.Throughput(),
			MakespanUs: st.SimMakespan * 1e6,
			HighP50Us:  st.PriorityPercentile(serve.PriorityHigh, 50) * 1e6,
			HighP99Us:  st.PriorityPercentile(serve.PriorityHigh, 99) * 1e6,
			BulkP50Us:  st.PriorityPercentile(serve.PriorityBulk, 50) * 1e6,
			BulkP99Us:  st.PriorityPercentile(serve.PriorityBulk, 99) * 1e6,
			Batches:    st.BatchSizes,
		}
		art.Rows = append(art.Rows, row)
		if row.Throughput < minT {
			minT = row.Throughput
		}
		if row.Throughput > maxT {
			maxT = row.Throughput
		}
	}
	if minT > 0 {
		art.ThroughputRatio = maxT / minT
	}
	agg := srv.Stats()
	art.HighP99Us = agg.PriorityPercentile(serve.PriorityHigh, 99) * 1e6
	art.BulkP99Us = agg.PriorityPercentile(serve.PriorityBulk, 99) * 1e6
	return art
}

// MultiModel reproduces the multi-tenant serving experiment: two
// models of different architectures share one server under a
// mixed-priority flood; weighted round-robin keeps both alive and
// high-priority requests beat bulk on tail latency. When
// Suite.MultiModelArtifact is set, the raw numbers are also written
// there as JSON (boltbench points it at BENCH_pr4.json).
func (s *Suite) MultiModel() *Table {
	art := s.runMultiModel()
	t := &Table{
		ID:      "multimodel",
		Title:   fmt.Sprintf("Multi-tenant server: 2 models x %d requests each, mixed priorities, %d shared workers (simulated device time)", art.RequestsPerModel, art.Workers),
		Columns: []string{"model", "requests", "imgs/s", "high p50 us", "high p99 us", "bulk p50 us", "bulk p99 us", "batches run"},
		Notes: []string{
			"every 4th request is high priority (preempts the batch window), the rest are bulk (wait for full buckets)",
			"per-tenant throughput = requests / that tenant's last completion on the shared worker clocks",
			fmt.Sprintf("fairness: max/min tenant throughput = %.2fx under equal offered load — the gap tracks the architectures' per-batch cost asymmetry (the cheap MLP retires its share early), not starvation; the symmetric two-tenant race test pins the within-2x bound", art.ThroughputRatio),
			fmt.Sprintf("priority SLO: aggregate high p99 %.1f us <= bulk p99 %.1f us (CI-enforced)", art.HighP99Us, art.BulkP99Us),
		},
	}
	for _, r := range art.Rows {
		t.AddRow(r.Model, fmt.Sprint(r.Requests), i0(r.Throughput),
			f1(r.HighP50Us), f1(r.HighP99Us), f1(r.BulkP50Us), f1(r.BulkP99Us),
			fmt.Sprint(r.Batches))
	}
	if s.MultiModelArtifact != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(s.MultiModelArtifact, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
	}
	return t
}
