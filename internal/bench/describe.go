package bench

// Describe returns a one-line description of an experiment id (paper
// experiments from IDs, ablations/extensions from AblationIDs), or ""
// for an unknown id. boltbench -list prints these next to the ids.
func Describe(id string) string {
	return descriptions[id]
}

var descriptions = map[string]string{
	"fig1":   "Ansor vs cuBLAS: FP16 GEMM sweep motivating templated search",
	"fig8a":  "GEMM performance, Bolt profiler vs Ansor tuning",
	"fig8b":  "Conv2D performance, Bolt profiler vs Ansor tuning",
	"fig9a":  "GEMM epilogue fusion (bias/ReLU/GELU folded into the kernel)",
	"fig9b":  "Conv2D epilogue fusion (bias/activation folded into the kernel)",
	"tab1":   "back-to-back GEMM fusion with persistent kernels",
	"tab2":   "back-to-back Conv2D fusion with persistent kernels",
	"tab3":   "automated padding for alignment-hostile shapes",
	"fig10a": "end-to-end inference speed across the model zoo",
	"fig10b": "auto-tuning wall-clock time, Bolt vs Ansor budgets",
	"tab4":   "RepVGG activation-function codesign accuracy/speed",
	"tab5":   "RepVGG 1x1-deepening codesign accuracy/speed",
	"tab6":   "combined RepVGG codesign (deepening + Hardswish)",

	"abl-swizzle":   "ablation: threadblock swizzling vs DRAM traffic",
	"abl-warps":     "ablation: warps per threadblock (guideline 2)",
	"abl-smalltb":   "ablation: small-problem threadblock sizing (guideline 3)",
	"abl-residence": "ablation: RF vs smem residence for fused GEMM pairs",
	"abl-stages":    "ablation: cp.async pipeline depth on sm_80",
	"ext-dyn":       "extension: dynamic sequence lengths vs a static tuning-log cache",
	"ext-chain":     "extension: fusing MLP chains deeper than pairs",
	"ext-int8":      "extension: INT8 (IMMA) vs FP16 templated GEMM",
	"ext-cache":     "extension: concurrent cache-backed model compilation",
	"serving":       "serving engine: dynamic batching under a request flood",
	"multimodel":    "multi-tenant server: two models, mixed priorities, shared workers",
	"hetero":        "heterogeneous device pool: EFT routing across T4/A100 mixes",
	"padding":       "padded-bucket dispatch and continuous batch formation",
	"coldstart":     "cost-model-guided cold compile: ranked candidates, top-k measured",
	"precision":     "mixed-precision tenants: FP16/INT8 variants behind accuracy gates",
	"fleet":         "replicated fleet: EFT routing, warm scale-up, autoscaling, hedged failures",
}
