package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"bolt/internal/codegen"
	"bolt/internal/gpu"
	"bolt/internal/models"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tunelog"
)

// The coldstart experiment is the PR-7 ablation: what does cost-model
// guidance buy on a cold tuning log? On each device class (T4 and
// A100) a full sweep of ResNet-18 trains the log's cost model; the
// trained model is then transferred into fresh *entry-free* logs — the
// warm-process/cold-workload scenario — and the same model is compiled
// again under top-k guidance and under the predict-only trust gate.
// Everything is noise-free and single-seeded, so the artifact is
// byte-stable across runs. It emits BENCH_pr7.json for CI.

// coldstartTopK is the guided arm's per-workload measurement budget.
const coldstartTopK = 8

// coldstartRow is one (device, arm) compile.
type coldstartRow struct {
	Device string `json:"device"`
	Arm    string `json:"arm"`
	// Budget is the per-workload measurement cap (0 = unbounded).
	Budget             int     `json:"budget"`
	ProfiledWorkloads  int     `json:"profiled_workloads"`
	Measurements       int     `json:"measurements"`
	Enumerated         int     `json:"enumerated_candidates"`
	PredictedWorkloads int     `json:"predicted_workloads"`
	TuningSeconds      float64 `json:"tuning_seconds"`
	// TuningVsFull is this arm's tuning cost relative to the same
	// device's full sweep (CI enforces <= 0.5 for the guided arms).
	TuningVsFull float64 `json:"tuning_vs_full"`
	ModuleUs     float64 `json:"module_us"`
	// SlowdownVsFull compares end-to-end modeled module time against
	// the full sweep's picks (CI enforces <= 1.05).
	SlowdownVsFull  float64 `json:"slowdown_vs_full"`
	PredictionError float64 `json:"prediction_error"`
}

// coldstartDevice is one device's arm set plus its model confidence.
type coldstartDevice struct {
	Device     string         `json:"device"`
	Confidence float64        `json:"confidence"`
	Trust      float64        `json:"trust_threshold"`
	Rows       []coldstartRow `json:"rows"`
}

// coldstartArtifact is the BENCH_pr7.json schema.
type coldstartArtifact struct {
	Model   string            `json:"model"`
	TopK    int               `json:"top_k"`
	Devices []coldstartDevice `json:"devices"`
}

// coldstartCompile runs the templated pipeline for ResNet-18 against
// the given log with the guidance knobs set.
func (s *Suite) coldstartCompile(dev *gpu.Device, log *tunelog.Log, topK int, trust float64) *rt.Module {
	g := models.ResNet(18, s.Batch)
	if err := relay.Optimize(g, dev); err != nil {
		panic(err)
	}
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	m, err := codegen.Compile(g, dev, codegen.Options{
		Tuner: codegen.TunerBolt, Profiler: p, Log: log,
		Jobs: 4, TopK: topK, TrustThreshold: trust,
	})
	if err != nil {
		panic(err)
	}
	return m
}

func (s *Suite) runColdstart() coldstartArtifact {
	art := coldstartArtifact{
		Model: fmt.Sprintf("resnet18-b%d", s.Batch),
		TopK:  coldstartTopK,
	}
	for _, dev := range []*gpu.Device{gpu.T4(), gpu.A100()} {
		// Arm 1: the cold full sweep. Its measurements train the log's
		// cost model, and its tuning bill and kernel picks are the
		// baselines the guided arms are judged against.
		trainLog := tunelog.New()
		full := s.coldstartCompile(dev, trainLog, 0, 0)
		conf := trainLog.Model.Confidence()
		trust := conf * 0.9

		// The guided arms get the trained model but none of the cache
		// entries: fresh logs, model transferred — exactly what a warm
		// process sees when a new model's workloads arrive.
		coldLog := func() *tunelog.Log {
			l := tunelog.New()
			l.Model.Ingest(trainLog.Model)
			return l
		}
		topk := s.coldstartCompile(dev, coldLog(), coldstartTopK, 0)
		predict := s.coldstartCompile(dev, coldLog(), 0, trust)

		row := func(arm string, budget int, m *rt.Module) coldstartRow {
			st := m.Tuning
			r := coldstartRow{
				Device: dev.Name, Arm: arm, Budget: budget,
				ProfiledWorkloads:  st.ProfiledWorkloads,
				Measurements:       st.Measurements,
				Enumerated:         st.EnumeratedCandidates,
				PredictedWorkloads: st.PredictedWorkloads,
				TuningSeconds:      st.TuningSeconds,
				ModuleUs:           m.Time() * 1e6,
				PredictionError:    st.PredictionError,
			}
			if fs := full.Tuning.TuningSeconds; fs > 0 {
				r.TuningVsFull = st.TuningSeconds / fs
			}
			r.SlowdownVsFull = m.Time() / full.Time()
			return r
		}
		art.Devices = append(art.Devices, coldstartDevice{
			Device: dev.Name, Confidence: conf, Trust: trust,
			Rows: []coldstartRow{
				row("full sweep", 0, full),
				row(fmt.Sprintf("top-%d", coldstartTopK), coldstartTopK, topk),
				row("predict-only", 0, predict),
			},
		})
	}
	return art
}

// Coldstart reproduces the cost-model-guided cold-compile study: a
// full sweep trains the tunelog's cost model, then the same model is
// recompiled against entry-free logs under top-k guidance and the
// predict-only trust gate, on both device classes. When
// Suite.ColdstartArtifact is set, the raw numbers are also written
// there as JSON (boltbench points it at BENCH_pr7.json).
func (s *Suite) Coldstart() *Table {
	art := s.runColdstart()
	t := &Table{
		ID:      "coldstart",
		Title:   fmt.Sprintf("Cost-model-guided cold compile: %s, trained model vs entry-free tuning log", art.Model),
		Columns: []string{"device", "arm", "measured/enumerated", "predicted wl", "tuning s", "vs full", "module us", "slowdown"},
		Notes: []string{
			"the full sweep trains the log's ridge cost model; guided arms transfer only the model into fresh entry-free logs (warm process, cold workloads)",
			fmt.Sprintf("top-%d measures at most %d candidates per workload; predict-only resolves every workload measurement-free once held-out rank confidence clears the trust gate", coldstartTopK, coldstartTopK),
			"CI enforces: guided arms tune at <= 0.5x the full sweep with chosen kernels within 1.05x, and predict-only performs zero measurements",
		},
	}
	for _, d := range art.Devices {
		for _, r := range d.Rows {
			t.AddRow(r.Device, r.Arm,
				fmt.Sprintf("%d/%d", r.Measurements, r.Enumerated),
				fmt.Sprint(r.PredictedWorkloads),
				f1(r.TuningSeconds), f2(r.TuningVsFull),
				f1(r.ModuleUs), f2(r.SlowdownVsFull))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s model confidence %.3f (trust gate set to %.3f)", d.Device, d.Confidence, d.Trust))
	}
	if s.ColdstartArtifact != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(s.ColdstartArtifact, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
	}
	return t
}
