package bench

import (
	"bolt/internal/accuracy"
	"bolt/internal/cutlass"
	"bolt/internal/models"
)

// repvggThroughput compiles a RepVGG variant through the full Bolt
// pipeline and returns images/sec.
func (s *Suite) repvggThroughput(variant string, opts models.RepVGGOptions) float64 {
	g := models.RepVGG(variant, s.Batch, opts)
	m, _ := s.compileBolt(g)
	return m.Throughput(s.Batch)
}

// Table4 reproduces the activation-function study on RepVGG-A0
// (codesign principle 1): epilogue fusion makes richer activations
// nearly free, so accuracy can be bought cheaply. Paper shape:
// Hardswish +0.67% top-1 with only a small speed dip; even Softplus
// costs only ~7.7% speed.
func (s *Suite) Table4() *Table {
	t := &Table{
		ID:      "tab4",
		Title:   "RepVGG-A0 with different activation functions (120 epochs + simple aug)",
		Columns: []string{"activation", "top-1 acc", "speed (img/s)"},
		Notes: []string{
			"accuracy from the calibrated model (see internal/accuracy); speed measured end-to-end on the device model",
			"paper: ReLU 72.31/5909, GELU 72.38/5645, Hardswish 72.98/5713, Softplus 72.57/5453",
		},
	}
	for _, act := range epilogueActivations {
		top1, err := accuracy.Top1("A0", accuracy.Epochs120Simple, act, false, 0)
		if err != nil {
			panic(err)
		}
		imgs := s.repvggThroughput("A0", models.RepVGGOptions{Activation: act})
		t.AddRow(act.String(), f2(top1), i0(imgs))
	}
	return t
}

// Table5 reproduces the 1x1 deepening study (codesign principle 2):
// persistent fusion makes channel-preserving 1x1 convolutions cheap,
// so depth can be added with little speed loss. Paper shape: +0.74 to
// +0.82 top-1 for ~15% average speed loss.
func (s *Suite) Table5() *Table {
	t := &Table{
		ID:      "tab5",
		Title:   "Deepening RepVGG with 1x1 Conv2Ds (200 epochs + simple aug)",
		Columns: []string{"model", "top-1 acc", "speed (img/s)", "params (M)"},
		Notes: []string{
			"RepVGGAug adds a 1x1 conv after every 3x3 (except the wide head stage); Bolt fuses the pairs with persistent kernels",
			"paper: accuracy +0.82/+0.77/+0.74 for A0/A1/B0 at ~15.3% average speed cost",
		},
	}
	for _, variant := range []string{"A0", "A1", "B0"} {
		top1, _ := accuracy.Top1(variant, accuracy.Epochs200Simple, cutlass.ActReLU, false, 0)
		imgs := s.repvggThroughput(variant, models.RepVGGOptions{})
		t.AddRow("RepVGG-"+variant, f2(top1), i0(imgs), f2(accuracy.Params(variant, false)))
	}
	for _, variant := range []string{"A0", "A1", "B0"} {
		top1, _ := accuracy.Top1(variant, accuracy.Epochs200Simple, cutlass.ActReLU, true, 0)
		imgs := s.repvggThroughput(variant, models.RepVGGOptions{Deepen1x1: true})
		t.AddRow("RepVGGAug-"+variant, f2(top1), i0(imgs), f2(accuracy.Params(variant, true)))
	}
	return t
}

// Table6 reproduces the combined codesign study: 1x1 deepening +
// Hardswish under the 300-epoch advanced recipe. Paper shape:
// RepVGGAug-A1 beats RepVGG-B0 in both accuracy and speed — codesign
// buys accuracy more efficiently than conventional 3x3 deepening.
func (s *Suite) Table6() *Table {
	t := &Table{
		ID:      "tab6",
		Title:   "Combined codesign: 1x1 deepening + Hardswish (300 epochs + advanced aug)",
		Columns: []string{"model", "top-1 acc", "speed (img/s)"},
		Notes: []string{
			"paper: base 73.41/74.89/75.89; augmented 74.54/76.72/77.22",
			"paper headline: RepVGGAug-A1 gains +1.83 top-1 over RepVGG-A1 at similar speed overhead to the A1->B0 step",
		},
	}
	for _, variant := range []string{"A0", "A1", "B0"} {
		top1, _ := accuracy.Top1(variant, accuracy.Epochs300Advanced, cutlass.ActReLU, false, 0)
		imgs := s.repvggThroughput(variant, models.RepVGGOptions{})
		t.AddRow("RepVGG-"+variant, f2(top1), i0(imgs))
	}
	for _, variant := range []string{"A0", "A1", "B0"} {
		top1, _ := accuracy.Top1(variant, accuracy.Epochs300Advanced, cutlass.ActHardswish, true, 0)
		imgs := s.repvggThroughput(variant, models.RepVGGOptions{Deepen1x1: true, Activation: cutlass.ActHardswish})
		t.AddRow("RepVGGAug-"+variant, f2(top1), i0(imgs))
	}
	return t
}
