package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"bolt/internal/fleet"
	"bolt/internal/gpu"
	"bolt/internal/obs"
	"bolt/internal/rt"
	"bolt/internal/serve"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// The fleet experiment exercises the PR-9 replicated-serving layer:
// N server replicas behind the EFT-backlog router, sharing one tuning
// log. One seeded Poisson stream is replayed against a healthy
// three-replica fleet and against the same fleet with a scripted worker
// failure (a kill answered by retry, a long stall answered by a
// hedged duplicate); the failure arms must lose zero requests and
// keep the caller-observed p99 within fleetP99Budget of the healthy
// baseline. Two more stages prove the operational story: a replica
// grown mid-run must compile every tenant variant with zero profiler
// measurements (warming purely from its peers' shared tuning-log
// entries), and the autoscaler must record at least one grow and one
// shrink on a bursty (MMPP) trace. It emits BENCH_pr9.json for CI.

// fleetP99Budget is the CI-enforced ceiling on each failure arm's
// caller-observed p99 relative to the healthy baseline.
const fleetP99Budget = 1.5

// fleetCompiler is the serving CNN's variant compiler with an
// optional profiler-measurement counter, so the warm scale-up stage
// can prove a replica added mid-run compiled measurement-free.
func (s *Suite) fleetCompiler(log *tunelog.Log, measured *atomic.Int64) serve.CompileVariantOn {
	inner := s.tenantCompilerOn(servingModel(), log)
	return func(dev *gpu.Device, batch int) (*rt.Module, error) {
		m, err := inner(dev, batch)
		if err == nil && measured != nil {
			measured.Add(int64(m.Tuning.Measurements))
		}
		return m, err
	}
}

// rankPercentile is the nearest-rank percentile over the caller-side
// latency sample (the same method serve.Stats uses, applied to
// delivered fleet results only — hedged losers never skew it).
func rankPercentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// fleetFloodChunk is the number of requests floodFleet keeps in
// flight at once (four full buckets).
const fleetFloodChunk = 32

// floodFleet replays the prepared stream against a fleet and returns
// the delivered simulated latencies (successes only) and the number
// of results delivered with an error.
//
// The stream is enqueued in bucket-aligned chunks with a drain
// barrier between them. The barrier bounds how far the simulated
// clocks can run ahead of the host timeline: retries and hedges are
// issued in host time, so if the whole stream were enqueued at once,
// the healthy replicas would have already committed every future
// batch by the time a rescue lands, pinning the rescued rows' start
// time at end-of-stream and making the failure arms' p99 grow with
// the stream length instead of with the fault's actual cost.
func floodFleet(f *fleet.Fleet, inputs []map[string]*tensor.Tensor, arrivals []float64) (lats []float64, errs int64) {
	for base := 0; base < len(inputs); base += fleetFloodChunk {
		hi := base + fleetFloodChunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		chans := make([]<-chan fleet.Result, 0, hi-base)
		for i := base; i < hi; i++ {
			ch, err := f.InferAsync("fleetnet", inputs[i], serve.InferOptions{
				Priority: serve.PriorityBulk,
				// Cap the bulk hold so wall-clock hedge timers race real
				// service, not the batcher's willingness to wait.
				MaxWait:    2 * time.Millisecond,
				SimArrival: arrivals[i],
			})
			if err != nil {
				panic(err)
			}
			chans = append(chans, ch)
		}
		for _, ch := range chans {
			res := <-ch
			if res.Err != nil {
				errs++
				continue
			}
			lats = append(lats, res.SimLatency)
		}
	}
	return lats, errs
}

// fleetArmRow is one (fleet configuration, fault script) replay.
type fleetArmRow struct {
	Arm             string  `json:"arm"`
	Replicas        int     `json:"replicas"`
	Requests        int64   `json:"requests"`
	Delivered       int64   `json:"delivered"`
	DeliveredErrors int64   `json:"delivered_errors"`
	FailedBatches   int64   `json:"failed_batches"`
	Retries         int64   `json:"retries"`
	HedgesIssued    int64   `json:"hedges_issued"`
	HedgesWon       int64   `json:"hedges_won"`
	HedgesCanceled  int64   `json:"hedges_canceled"`
	P50Us           float64 `json:"p50_us"`
	P99Us           float64 `json:"p99_us"`
	// P99VsHealthy is this arm's p99 over the healthy baseline's (CI
	// enforces <= fleetP99Budget for the failure arms).
	P99VsHealthy float64 `json:"p99_vs_healthy"`
}

// fleetArtifact is the BENCH_pr9.json schema.
type fleetArtifact struct {
	Model     string        `json:"model"`
	Requests  int           `json:"requests"`
	P99Budget float64       `json:"p99_budget"`
	Rows      []fleetArmRow `json:"rows"`
	// Warm scale-up: profiler measurements spent compiling the initial
	// replicas' variants vs. the replica added by Grow mid-run (CI
	// enforces the latter == 0 — it warms from the shared tuning log).
	MeasurementsInitial      int64 `json:"measurements_initial"`
	MeasurementsGrownReplica int64 `json:"measurements_grown_replica"`
	GrownReplicaRequests     int64 `json:"grown_replica_requests"`
	// Autoscaling on the bursty trace: the MMPP stream's gap CV^2
	// (Poisson is ~1) and the recorded scale events (CI enforces >= 1
	// of each).
	BurstyGapCV2          float64 `json:"bursty_gap_cv2"`
	AutoscaleGrowEvents   int64   `json:"autoscale_grow_events"`
	AutoscaleShrinkEvents int64   `json:"autoscale_shrink_events"`
}

// runFleetArm replays one stream against a fresh three-replica fleet
// (four workers each) with the given hedge policy and fault script.
// When tr is set, the arm's route/hedge/retry spans and each replica's
// request-lifecycle spans are recorded into it.
func (s *Suite) runFleetArm(arm string, log *tunelog.Log, hedge fleet.HedgeOptions, inject func(*fleet.Fleet), inputs []map[string]*tensor.Tensor, arrivals []float64, tr *obs.Tracer) fleetArmRow {
	f := fleet.New(fleet.Options{
		Replicas:    []fleet.ReplicaConfig{{Workers: 4}, {Workers: 4}, {Workers: 4}},
		QueueDepth:  len(inputs),
		BatchWindow: 2 * time.Millisecond,
		CompileJobs: 2,
		Hedge:       hedge,
		Trace:       tr,
		TraceLabel:  "fleet " + arm,
	})
	if err := f.Deploy("fleetnet", s.fleetCompiler(log, nil), serve.DeployOptions{
		Buckets: []int{1, 2, 4, 8},
	}); err != nil {
		panic(err)
	}
	if err := f.Warm("fleetnet"); err != nil {
		panic(err)
	}
	if inject != nil {
		inject(f)
	}
	lats, errs := floodFleet(f, inputs, arrivals)
	f.Close()
	st := f.Stats()
	return fleetArmRow{
		Arm:             arm,
		Replicas:        len(st.Replicas),
		Requests:        st.Routed,
		Delivered:       st.Delivered,
		DeliveredErrors: errs,
		FailedBatches:   st.Serve.FailedBatches,
		Retries:         st.Retries,
		HedgesIssued:    st.HedgesIssued,
		HedgesWon:       st.HedgesWon,
		HedgesCanceled:  st.HedgesCanceled,
		P50Us:           rankPercentile(lats, 50) * 1e6,
		P99Us:           rankPercentile(lats, 99) * 1e6,
	}
}

// runFleetWarmGrow runs the warm scale-up stage: a fresh tuning log
// (so the initial compiles really measure), then Grow mid-run, whose
// replica must warm every tenant variant measurement-free.
func (s *Suite) runFleetWarmGrow(art *fleetArtifact, inputs []map[string]*tensor.Tensor, arrivals []float64) {
	warmLog := tunelog.New()
	var measured atomic.Int64
	f := fleet.New(fleet.Options{
		Replicas:    []fleet.ReplicaConfig{{Workers: 1}, {Workers: 1}},
		QueueDepth:  len(inputs),
		BatchWindow: 2 * time.Millisecond,
		CompileJobs: 2,
	})
	if err := f.Deploy("fleetnet", s.fleetCompiler(warmLog, &measured), serve.DeployOptions{
		Buckets: []int{1, 2, 4, 8},
	}); err != nil {
		panic(err)
	}
	if err := f.Warm("fleetnet"); err != nil {
		panic(err)
	}
	art.MeasurementsInitial = measured.Load()
	if _, err := f.Grow(); err != nil {
		panic(err)
	}
	art.MeasurementsGrownReplica = measured.Load() - art.MeasurementsInitial
	// Route some traffic so the grown replica demonstrably serves.
	if _, errs := floodFleet(f, inputs, arrivals); errs > 0 {
		panic(fmt.Sprintf("fleet warm-grow flood delivered %d errors", errs))
	}
	f.Close()
	st := f.Stats()
	for _, r := range st.Replicas {
		if r.Grown {
			art.GrownReplicaRequests += r.Serve.Requests
		}
	}
}

// runFleetAutoscale drives a one-replica fleet with a bursty MMPP
// stream and caller-paced autoscaler polls: the burst must grow the
// fleet, the following idle drain must shrink it back.
func (s *Suite) runFleetAutoscale(art *fleetArtifact, log *tunelog.Log, inputs []map[string]*tensor.Tensor, meanGap float64) {
	n := len(inputs)
	bursty := BurstyArrivals(n, BurstyOptions{
		BurstInterarrival: meanGap / 4,
		IdleInterarrival:  meanGap * 4,
		BurstDwell:        float64(n) / 2 * meanGap,
		IdleDwell:         float64(n) / 2 * meanGap,
	}, 31)
	prev := 0.0
	gaps := make([]float64, n)
	for i, a := range bursty {
		gaps[i] = a - prev
		prev = a
	}
	mean, varsum := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(n)
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	art.BurstyGapCV2 = varsum / float64(n) / (mean * mean)

	f := fleet.New(fleet.Options{
		Replicas:    []fleet.ReplicaConfig{{Workers: 2}},
		QueueDepth:  n,
		BatchWindow: 2 * time.Millisecond,
		CompileJobs: 2,
		Autoscale: fleet.AutoscaleOptions{
			// Any queued work sustained over two polls grows the fleet; a
			// fully drained queue sustained over two polls shrinks it.
			GrowBacklogSeconds:   1e-9,
			ShrinkBacklogSeconds: 1e-12,
			SustainPolls:         2,
			MinReplicas:          1,
			MaxReplicas:          2,
		},
	})
	if err := f.Deploy("fleetnet", s.fleetCompiler(log, nil), serve.DeployOptions{
		Buckets: []int{1, 2, 4, 8},
	}); err != nil {
		panic(err)
	}
	if err := f.Warm("fleetnet"); err != nil {
		panic(err)
	}
	// First half of the trace lands on the lone replica; two polls of
	// sustained backlog grow the fleet, the second half is then routed
	// across both replicas.
	half := n / 2
	chans := make([]<-chan fleet.Result, 0, n)
	enqueue := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ch, err := f.InferAsync("fleetnet", inputs[i], serve.InferOptions{
				Priority:   serve.PriorityBulk,
				MaxWait:    2 * time.Millisecond,
				SimArrival: bursty[i],
			})
			if err != nil {
				panic(err)
			}
			chans = append(chans, ch)
		}
	}
	enqueue(0, half)
	f.PollAutoscale()
	f.PollAutoscale()
	enqueue(half, n)
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			panic(res.Err)
		}
	}
	// Idle: the drained queue sustained over two polls shrinks the
	// fleet back to MinReplicas.
	f.PollAutoscale()
	f.PollAutoscale()
	f.Close()
	st := f.Stats()
	art.AutoscaleGrowEvents = st.GrowEvents
	art.AutoscaleShrinkEvents = st.ShrinkEvents
}

func (s *Suite) runFleet() fleetArtifact {
	requests := s.FleetRequests
	requests -= requests % 8
	if requests < 16 {
		requests = 16
	}
	log := tunelog.New()
	// Price the full bucket (also primes the shared log, so every arm
	// below warms measurement-free) and derive the offered load: a
	// per-row gap of half the bucket-8 per-row service time keeps the
	// four-worker fleet around 50% utilized — busy enough for real
	// queueing, slack enough that a failure arm's rescued requests have
	// somewhere to go.
	mod8, err := s.fleetCompiler(log, nil)(nil, 8)
	if err != nil {
		panic(err)
	}
	meanGap := 0.5 * mod8.Time() / 8
	arrivals := PoissonArrivals(requests, meanGap, 23)
	inputs := make([]map[string]*tensor.Tensor, requests)
	for i := range inputs {
		in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 1, 8, 32, 32)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*tensor.Tensor{"image": in}
	}

	art := fleetArtifact{
		Model:     "servenet-8x32",
		Requests:  requests,
		P99Budget: fleetP99Budget,
	}

	healthy := s.runFleetArm("healthy", log, fleet.HedgeOptions{}, nil, inputs, arrivals, s.Trace)
	kill := s.runFleetArm("worker kill (retried)", log, fleet.HedgeOptions{}, func(f *fleet.Fleet) {
		// The first batch dispatched on replica 0's worker 0 fails; the
		// router retries its requests on the healthy replicas at normal
		// priority (so the rescues still coalesce into buckets).
		f.InjectFault(0, 0, 1, serve.BatchFault{Err: fleet.ErrInjectedKill})
	}, inputs, arrivals, nil)
	stall := s.runFleetArm("worker stall (hedged)", log, fleet.HedgeOptions{Timeout: 40 * time.Millisecond}, func(f *fleet.Fleet) {
		// The first batch on replica 0's worker 0 stalls far past the
		// hedge timeout; its requests are duplicated on the healthy
		// replicas and the duplicates win while the stalled loser
		// drains. The host delay must dwarf the hedge timeout plus the
		// hedged attempt's own host latency — the deliver race runs on
		// the host clock, so too small a gap lets the stalled primary
		// win under race-detector slowdown and its 0.05s simulated
		// penalty lands on the latency tail.
		f.InjectFault(0, 0, 1, serve.BatchFault{
			StallSimSeconds: 0.05,
			StallHostDelay:  2 * time.Second,
		})
	}, inputs, arrivals, s.StallTrace)
	for _, r := range []*fleetArmRow{&healthy, &kill, &stall} {
		if healthy.P99Us > 0 {
			r.P99VsHealthy = r.P99Us / healthy.P99Us
		}
	}
	art.Rows = []fleetArmRow{healthy, kill, stall}

	// Stage 2: warm scale-up (its own fresh tuning log, and a short
	// stream so the grown replica demonstrably serves).
	short := requests / 2
	if short < 16 {
		short = 16
	}
	s.runFleetWarmGrow(&art, inputs[:short], arrivals[:short])

	// Stage 3: autoscaling on the bursty trace (shared primed log).
	s.runFleetAutoscale(&art, log, inputs, meanGap)
	return art
}

// Fleet reproduces the replicated-serving experiment: one seeded
// request stream replayed against a healthy fleet and against
// scripted worker failures (kill answered by retry, stall answered by
// a hedged duplicate), plus the warm scale-up and bursty-autoscaling
// stages. When Suite.FleetArtifact is set, the raw numbers are also
// written there as JSON (boltbench points it at BENCH_pr9.json).
func (s *Suite) Fleet() *Table {
	art := s.runFleet()
	t := &Table{
		ID:      "fleet",
		Title:   fmt.Sprintf("Fleet serving: %d Poisson requests, 3 replicas x 4 workers, scripted worker failures (simulated device time)", art.Requests),
		Columns: []string{"arm", "delivered/routed", "errs", "retries", "hedges i/w/c", "p50 us", "p99 us", "vs healthy"},
		Notes: []string{
			"identical seeded arrivals per arm; failure arms script one fault on replica 0 worker 0 (kill -> retry, 2s stall -> hedge); rescued bulk attempts are escalated to normal priority",
			fmt.Sprintf("CI enforces: zero lost requests and failure-arm p99 <= %.1fx healthy", art.P99Budget),
			fmt.Sprintf("warm scale-up: initial replicas spent %d profiler measurements; the replica grown mid-run spent %d (CI enforces 0) and then served %d requests",
				art.MeasurementsInitial, art.MeasurementsGrownReplica, art.GrownReplicaRequests),
			fmt.Sprintf("autoscaler on the bursty trace (gap CV^2 %.1f): %d grow, %d shrink events (CI enforces >= 1 each)",
				art.BurstyGapCV2, art.AutoscaleGrowEvents, art.AutoscaleShrinkEvents),
		},
	}
	for _, r := range art.Rows {
		t.AddRow(r.Arm,
			fmt.Sprintf("%d/%d", r.Delivered, r.Requests),
			fmt.Sprint(r.DeliveredErrors),
			fmt.Sprint(r.Retries),
			fmt.Sprintf("%d/%d/%d", r.HedgesIssued, r.HedgesWon, r.HedgesCanceled),
			f1(r.P50Us), f1(r.P99Us), f2(r.P99VsHealthy))
	}
	if s.FleetArtifact != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(s.FleetArtifact, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
	}
	return t
}
