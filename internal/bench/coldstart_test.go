package bench

import (
	"reflect"
	"testing"

	"bolt/internal/gpu"
)

// TestColdstartDeterministicAndBounded is the PR-7 acceptance check
// for the experiment itself: identical suites produce bit-identical
// artifacts (noise-free measurements, seeded model, plans frozen
// before the pool), the top-k arm honors its per-workload budget and
// tunes at <= 0.5x the full sweep, the predict-only arm measures
// nothing, and both guided arms pick kernels within the 1.05x CI
// envelope of the full sweep's choices.
func TestColdstartDeterministicAndBounded(t *testing.T) {
	run := func() coldstartArtifact {
		return NewQuickSuite(gpu.T4()).runColdstart()
	}
	art := run()
	if again := run(); !reflect.DeepEqual(art, again) {
		t.Fatalf("coldstart experiment is not deterministic:\nfirst:  %+v\nsecond: %+v", art, again)
	}

	if len(art.Devices) != 2 {
		t.Fatalf("want T4 and A100 device sections, got %d", len(art.Devices))
	}
	for _, d := range art.Devices {
		if len(d.Rows) != 3 {
			t.Fatalf("%s: want full/top-k/predict arms, got %d rows", d.Device, len(d.Rows))
		}
		full, topk, predict := d.Rows[0], d.Rows[1], d.Rows[2]

		if full.Measurements != full.Enumerated || full.Measurements == 0 {
			t.Errorf("%s: full sweep must measure everything: %d of %d",
				d.Device, full.Measurements, full.Enumerated)
		}
		if topk.Measurements > topk.Budget*topk.ProfiledWorkloads {
			t.Errorf("%s: top-k measured %d candidates over %d workloads, budget %d each",
				d.Device, topk.Measurements, topk.ProfiledWorkloads, topk.Budget)
		}
		if topk.TuningVsFull > 0.5 {
			t.Errorf("%s: top-k tuned at %.2fx the full sweep, CI envelope is <= 0.5x",
				d.Device, topk.TuningVsFull)
		}
		if predict.Measurements != 0 || predict.TuningSeconds != 0 {
			t.Errorf("%s: predict-only arm measured (%d measurements, %.3fs)",
				d.Device, predict.Measurements, predict.TuningSeconds)
		}
		if predict.PredictedWorkloads != predict.ProfiledWorkloads {
			t.Errorf("%s: predict-only resolved %d of %d workloads via the trust gate",
				d.Device, predict.PredictedWorkloads, predict.ProfiledWorkloads)
		}
		for _, r := range []coldstartRow{topk, predict} {
			if r.SlowdownVsFull > 1.05 {
				t.Errorf("%s/%s: chosen kernels run at %.4fx the full sweep's, CI envelope is <= 1.05x",
					d.Device, r.Arm, r.SlowdownVsFull)
			}
		}
	}
}
