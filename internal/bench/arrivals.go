package bench

import "math/rand"

// PoissonArrivals returns the first n arrival times (simulated
// seconds) of a Poisson process with the given mean interarrival time:
// seeded exponential gaps, cumulatively summed. The serving benchmarks
// stamp these onto requests (InferOptions.SimArrival) so a worker
// cannot start a batch before its members arrived and each request's
// latency is completion minus arrival — percentiles then reflect
// steady-state queueing under offered load rather than a flood at
// simulated t=0. Deterministic for a fixed seed.
func PoissonArrivals(n int, meanInterarrival float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() * meanInterarrival
		out[i] = t
	}
	return out
}

// BurstyOptions shapes an MMPP-style on/off arrival process: a
// two-state Markov-modulated Poisson stream that alternates between a
// burst phase (fast arrivals) and an idle phase (slow arrivals),
// with exponentially distributed phase dwell times. This is the
// canonical bursty-traffic model for serving systems — the mean rate
// can match a plain Poisson stream while the variance (and therefore
// queueing tails, hedging pressure, and autoscaler excursions) is far
// higher.
type BurstyOptions struct {
	// BurstInterarrival is the mean interarrival time during a burst;
	// IdleInterarrival during the idle phase (idle should be the larger
	// of the two).
	BurstInterarrival float64
	IdleInterarrival  float64
	// BurstDwell and IdleDwell are the mean simulated seconds the
	// process stays in each phase before switching.
	BurstDwell float64
	IdleDwell  float64
	// StartIdle starts the process in the idle phase (default: burst).
	StartIdle bool
}

// BurstyArrivals returns the first n arrival times of the seeded
// on/off process described by opts. Within a phase, arrivals are
// Poisson at that phase's rate; phase switches occur at exponential
// dwell boundaries (a gap spanning a switch is re-drawn from the new
// phase's rate at the boundary, which keeps the process memoryless).
// Deterministic for a fixed seed.
func BurstyArrivals(n int, opts BurstyOptions, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	idle := opts.StartIdle
	t := 0.0
	// phaseEnd is the simulated time of the next phase switch.
	dwell := func() float64 {
		if idle {
			return rng.ExpFloat64() * opts.IdleDwell
		}
		return rng.ExpFloat64() * opts.BurstDwell
	}
	phaseEnd := t + dwell()
	for i := 0; i < n; {
		mean := opts.BurstInterarrival
		if idle {
			mean = opts.IdleInterarrival
		}
		next := t + rng.ExpFloat64()*mean
		if next > phaseEnd {
			// The gap crosses a phase boundary: advance to the switch and
			// re-draw in the new phase (exponential gaps are memoryless, so
			// restarting the draw at the boundary is exact).
			t = phaseEnd
			idle = !idle
			phaseEnd = t + dwell()
			continue
		}
		t = next
		out[i] = t
		i++
	}
	return out
}
