package bench

import "math/rand"

// poissonArrivals returns the first n arrival times (simulated
// seconds) of a Poisson process with the given mean interarrival time:
// seeded exponential gaps, cumulatively summed. The serving benchmarks
// stamp these onto requests (InferOptions.SimArrival) so a worker
// cannot start a batch before its members arrived and each request's
// latency is completion minus arrival — percentiles then reflect
// steady-state queueing under offered load rather than a flood at
// simulated t=0. Deterministic for a fixed seed.
func poissonArrivals(n int, meanInterarrival float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() * meanInterarrival
		out[i] = t
	}
	return out
}
