// Package bench is the experiment harness: one regenerator per table
// and figure in the paper's evaluation (§4), each returning a rendered
// Table whose shape can be compared against the published result. The
// per-experiment index lives in DESIGN.md; paper-vs-measured values
// are recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // experiment id, e.g. "fig8a"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records methodology and the paper's expected shape.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws an ASCII table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func us(v float64) string  { return fmt.Sprintf("%.1f", v*1e6) }
func i0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// fmtSscan is a tiny strconv wrapper kept here so test helpers can
// parse rendered numbers without importing fmt in every file.
func fmtSscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}
