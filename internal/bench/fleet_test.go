package bench

import (
	"testing"

	"bolt/internal/gpu"
)

// TestFleetExperimentGates is the PR-9 acceptance check for the
// experiment itself, mirroring the CI gates on BENCH_pr9.json: no arm
// loses a request, the scripted kill is retried and the scripted
// stall is hedged with the caller-observed p99 inside the budget, the
// replica grown mid-run compiles measurement-free, and the autoscaler
// records at least one grow and one shrink on the bursty trace.
func TestFleetExperimentGates(t *testing.T) {
	s := NewQuickSuite(gpu.T4())
	s.FleetRequests = 32 // 4 full buckets: affordable under `go test`
	art := s.runFleet()

	if len(art.Rows) != 3 {
		t.Fatalf("got %d arms, want 3", len(art.Rows))
	}
	healthy, kill, stall := art.Rows[0], art.Rows[1], art.Rows[2]
	for _, r := range art.Rows {
		if r.Requests != int64(art.Requests) {
			t.Errorf("%s routed %d requests, want %d", r.Arm, r.Requests, art.Requests)
		}
		if r.Delivered != r.Requests {
			t.Errorf("%s delivered %d of %d routed requests — requests were lost", r.Arm, r.Delivered, r.Requests)
		}
		if r.DeliveredErrors != 0 {
			t.Errorf("%s delivered %d errors, want 0", r.Arm, r.DeliveredErrors)
		}
	}
	if healthy.FailedBatches != 0 || healthy.Retries != 0 || healthy.HedgesIssued != 0 {
		t.Errorf("healthy arm saw failures (failed %d, retries %d, hedges %d), want none",
			healthy.FailedBatches, healthy.Retries, healthy.HedgesIssued)
	}
	if kill.FailedBatches < 1 || kill.Retries < 1 {
		t.Errorf("kill arm: %d failed batches, %d retries, want >= 1 of each", kill.FailedBatches, kill.Retries)
	}
	if stall.HedgesIssued < 1 || stall.HedgesWon < 1 {
		t.Errorf("stall arm: %d hedges issued, %d won, want >= 1 of each", stall.HedgesIssued, stall.HedgesWon)
	}
	for _, r := range []fleetArmRow{kill, stall} {
		if r.P99VsHealthy > fleetP99Budget {
			t.Errorf("%s p99 is %.2fx healthy (%.1f us vs %.1f us), budget %.1fx",
				r.Arm, r.P99VsHealthy, r.P99Us, healthy.P99Us, fleetP99Budget)
		}
	}

	if art.MeasurementsInitial <= 0 {
		t.Errorf("initial replicas spent %d profiler measurements, want > 0 (fresh log must measure)", art.MeasurementsInitial)
	}
	if art.MeasurementsGrownReplica != 0 {
		t.Errorf("replica grown mid-run spent %d profiler measurements, want 0 (shared-tunelog warm-up)", art.MeasurementsGrownReplica)
	}
	if art.GrownReplicaRequests <= 0 {
		t.Errorf("grown replica served %d requests, want > 0", art.GrownReplicaRequests)
	}

	if art.BurstyGapCV2 <= 1 {
		t.Errorf("bursty trace gap CV^2 = %.2f, want > 1 (must be burstier than Poisson)", art.BurstyGapCV2)
	}
	if art.AutoscaleGrowEvents < 1 || art.AutoscaleShrinkEvents < 1 {
		t.Errorf("autoscaler recorded %d grow / %d shrink events, want >= 1 each",
			art.AutoscaleGrowEvents, art.AutoscaleShrinkEvents)
	}
}
