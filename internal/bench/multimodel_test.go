package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMultiModelFairnessAndPrioritySLO is the PR-4 acceptance gate on
// the benchmark artifact: under a mixed-priority flood over two
// tenants sharing one worker pool, no tenant starves (every model's
// throughput is positive) and the high-priority aggregate p99 does not
// exceed the bulk p99 — both deterministic claims on the simulated
// clocks.
func TestMultiModelFairnessAndPrioritySLO(t *testing.T) {
	s := quick()
	s.MultiModelRequests = 16
	s.MultiModelArtifact = filepath.Join(t.TempDir(), "BENCH_pr4.json")
	tab := s.MultiModel()
	if len(tab.Rows) != 2 {
		t.Fatalf("multimodel table has %d rows, want 2 tenants", len(tab.Rows))
	}

	data, err := os.ReadFile(s.MultiModelArtifact)
	if err != nil {
		t.Fatal(err)
	}
	var art multiModelArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Rows) != 2 {
		t.Fatalf("artifact has %d rows, want 2", len(art.Rows))
	}
	for _, r := range art.Rows {
		if r.Requests != int64(art.RequestsPerModel) {
			t.Errorf("tenant %s served %d requests, want %d", r.Model, r.Requests, art.RequestsPerModel)
		}
		if r.Throughput <= 0 {
			t.Errorf("tenant %s starved: throughput %g", r.Model, r.Throughput)
		}
		if r.MakespanUs <= 0 {
			t.Errorf("tenant %s has no simulated makespan", r.Model)
		}
		if r.HighP99Us <= 0 || r.BulkP99Us <= 0 {
			t.Errorf("tenant %s missing per-priority percentiles: %+v", r.Model, r)
		}
		if r.HighP99Us > r.BulkP99Us {
			t.Errorf("tenant %s: high p99 %.1fus exceeds bulk p99 %.1fus", r.Model, r.HighP99Us, r.BulkP99Us)
		}
	}
	if art.HighP99Us > art.BulkP99Us {
		t.Errorf("aggregate high p99 %.1fus exceeds bulk p99 %.1fus", art.HighP99Us, art.BulkP99Us)
	}
	if art.ThroughputRatio <= 0 {
		t.Errorf("throughput ratio %g, want > 0", art.ThroughputRatio)
	}
}
