package bench

import (
	"fmt"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/models"
	"bolt/internal/persistent"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// The ablations quantify the design choices DESIGN.md calls out:
// which parts of the templated search and of persistent fusion
// actually buy the performance. They go beyond the paper's tables
// (its §3.2.2 lists the tuning guidelines without isolating them).

// AblationIDs lists the extension experiments.
func AblationIDs() []string {
	return []string{"abl-swizzle", "abl-warps", "abl-smalltb", "abl-residence", "abl-stages", "ext-dyn", "ext-chain", "ext-int8", "ext-cache", "serving", "multimodel", "hetero", "padding", "coldstart", "precision", "fleet"}
}

// AblationByID returns the regenerator for an ablation id.
func (s *Suite) AblationByID(id string) func() *Table {
	m := map[string]func() *Table{
		"abl-swizzle":   s.AblationSwizzle,
		"abl-warps":     s.AblationWarps,
		"abl-smalltb":   s.AblationSmallTB,
		"abl-residence": s.AblationResidence,
		"abl-stages":    s.AblationStages,
		"ext-dyn":       s.ExtensionDynamicShapes,
		"ext-chain":     s.ExtensionDeepChains,
		"ext-int8":      s.ExtensionINT8,
		"ext-cache":     s.ExtensionCompileCache,
		"serving":       s.Serving,
		"multimodel":    s.MultiModel,
		"hetero":        s.Hetero,
		"padding":       s.Padding,
		"coldstart":     s.Coldstart,
		"precision":     s.Precision,
		"fleet":         s.Fleet,
	}
	return m[id]
}

// Ablations runs all extension experiments.
func (s *Suite) Ablations() []*Table {
	out := make([]*Table, 0, len(AblationIDs()))
	for _, id := range AblationIDs() {
		out = append(out, s.AblationByID(id)())
	}
	return out
}

// AblationSwizzle isolates the threadblock-swizzling parameter: tile
// groups of 2^k share operand rows/columns through L2, cutting DRAM
// traffic on large GEMMs.
func (s *Suite) AblationSwizzle() *Table {
	t := &Table{
		ID:      "abl-swizzle",
		Title:   "Ablation: threadblock swizzling on a 4096^3 FP16 GEMM",
		Columns: []string{"swizzle group", "DRAM GB/launch", "time us", "vs swizzle=1"},
		Notes:   []string{"swizzling is one of the profiler's searched parameters (§3.2.2)"},
	}
	m, n, k := 4096, 4096, 4096
	base := -1.0
	for sw := 0; sw <= 3; sw++ {
		cfg := cutlass.GemmConfig{
			TB:     cutlass.Shape3{M: 128, N: 128, K: 32},
			Warp:   cutlass.Shape3{M: 64, N: 64, K: 32},
			Inst:   cutlass.InstructionShape(s.Dev.Arch),
			Stages: 2, SwizzleLog: sw,
			AlignA: 8, AlignB: 8, AlignC: 8,
			Op: gpu.OpClassTensorOp, DType: tensor.FP16,
		}
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		desc := g.Desc(s.Dev, m, n, k)
		tm := s.Dev.KernelTime(desc)
		if sw == 0 {
			base = tm
		}
		t.AddRow(fmt.Sprintf("%dx%d", 1<<sw, 1<<sw),
			f2((desc.GlobalLoadB+desc.GlobalStoreB)/1e9), us(tm), f2(base/tm))
	}
	return t
}

// AblationWarps isolates tuning guideline 2: "four or eight warps per
// threadblock tends to have better performance".
func (s *Suite) AblationWarps() *Table {
	t := &Table{
		ID:      "abl-warps",
		Title:   "Ablation: warps per threadblock on a 2048^3 FP16 GEMM (128x128 tile)",
		Columns: []string{"warps", "warp tile", "regs/thread", "time us"},
		Notes:   []string{"guideline 2 (§3.2.2): 4-8 warps balance occupancy vs per-warp tile size"},
	}
	m, n, k := 2048, 2048, 2048
	for _, w := range []struct {
		warps int
		warp  cutlass.Shape3
	}{
		{2, cutlass.Shape3{M: 128, N: 64, K: 32}},
		{4, cutlass.Shape3{M: 64, N: 64, K: 32}},
		{8, cutlass.Shape3{M: 64, N: 32, K: 32}},
		{16, cutlass.Shape3{M: 32, N: 32, K: 32}},
	} {
		cfg := cutlass.GemmConfig{
			TB: cutlass.Shape3{M: 128, N: 128, K: 32}, Warp: w.warp,
			Inst:   cutlass.InstructionShape(s.Dev.Arch),
			Stages: 2, SwizzleLog: 2, AlignA: 8, AlignB: 8, AlignC: 8,
			Op: gpu.OpClassTensorOp, DType: tensor.FP16,
		}
		if cfg.Validate(s.Dev) != nil {
			t.AddRow(fmt.Sprint(w.warps), w.warp.String(), "-", "invalid (register cap)")
			continue
		}
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		t.AddRow(fmt.Sprint(w.warps), w.warp.String(),
			fmt.Sprint(cfg.RegsPerThread()), us(g.Time(s.Dev, m, n, k)))
	}
	return t
}

// AblationSmallTB isolates tuning guideline 3: small problems need
// small threadblocks to keep SMs busy.
func (s *Suite) AblationSmallTB() *Table {
	t := &Table{
		ID:      "abl-smalltb",
		Title:   "Ablation: threadblock size on a small GEMM (M=32, N=768, K=768)",
		Columns: []string{"threadblock", "grid blocks", "active SMs", "time us"},
		Notes:   []string{"guideline 3 (§3.2.2): small problems need small threadblocks to launch enough blocks"},
	}
	m, n, k := 32, 768, 768
	for _, tb := range []cutlass.Shape3{
		{M: 32, N: 32, K: 32}, {M: 32, N: 64, K: 32},
		{M: 32, N: 128, K: 32}, {M: 32, N: 256, K: 32},
	} {
		warpN := tb.N
		if warpN > 64 {
			warpN = 64
		}
		cfg := cutlass.GemmConfig{
			TB: tb, Warp: cutlass.Shape3{M: 16, N: warpN, K: 32},
			Inst:   cutlass.InstructionShape(s.Dev.Arch),
			Stages: 2, SwizzleLog: 0, AlignA: 8, AlignB: 8, AlignC: 8,
			Op: gpu.OpClassTensorOp, DType: tensor.FP16,
		}
		if err := cfg.Validate(s.Dev); err != nil {
			continue
		}
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		desc := g.Desc(s.Dev, m, n, k)
		bd := s.Dev.Breakdown(desc)
		t.AddRow(tb.String(), fmt.Sprint(desc.GridBlocks), fmt.Sprint(bd.ActiveSMs), us(bd.Total))
	}
	return t
}

// AblationResidence forces each residence kind on one Table-1 pair,
// plus the unfused baseline, isolating where the fusion win comes
// from.
func (s *Suite) AblationResidence() *Table {
	t := &Table{
		ID:      "abl-residence",
		Title:   "Ablation: residence kind on the (16384,64,256)+(16384,16,64) pair",
		Columns: []string{"variant", "launches", "regs/thread", "smem KB", "time us"},
		Notes: []string{
			"RF residence holds the producer's accumulator in registers; smem residence stages it with a conflict-free layout",
		},
	}
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	mk := func(n, k int) persistent.GemmLayer {
		cfg, _ := relay.ResidenceConfig(n, s.Dev)
		return persistent.GemmLayer{N: n, K: k, Config: cfg, Epilogue: relu}
	}
	m := 16384
	layers := []persistent.GemmLayer{mk(64, 256), mk(16, 64)}

	t.AddRow("unfused (epilogue fusion only)", "2", "-", "-",
		us(persistent.UnfusedGemmTime(s.Dev, m, layers)))

	for _, kind := range []persistent.Residence{persistent.RFResident, persistent.SMEMResident} {
		ls := make([]persistent.GemmLayer, len(layers))
		copy(ls, layers)
		for i := range ls {
			if kind == persistent.RFResident {
				ls[i].Config.Warp.N = ls[i].Config.TB.N
			}
		}
		f, err := persistent.NewFusedGemm(m, ls, kind, s.Dev)
		if err != nil {
			t.AddRow(kind.String(), "-", "-", "-", "invalid: "+err.Error())
			continue
		}
		desc := f.Desc(s.Dev)
		t.AddRow(kind.String(), "1", fmt.Sprint(desc.RegsPerThread),
			fmt.Sprint(desc.SharedMemBytes>>10), us(f.Time(s.Dev)))
	}
	return t
}

// AblationStages isolates the multistage (cp.async) pipeline depth on
// Ampere, which Turing lacks.
func (s *Suite) AblationStages() *Table {
	t := &Table{
		ID:      "abl-stages",
		Title:   "Ablation: pipeline stages on A100 (sm_80), 4096^3 FP16 GEMM",
		Columns: []string{"stages", "smem KB", "time us", "TFLOPS"},
		Notes:   []string{"deep cp.async pipelines are an sm_80 feature; Turing kernels are limited to 2 stages"},
	}
	dev := gpu.A100()
	m, n, k := 4096, 4096, 4096
	for stages := 2; stages <= 5; stages++ {
		cfg := cutlass.GemmConfig{
			TB:     cutlass.Shape3{M: 128, N: 128, K: 32},
			Warp:   cutlass.Shape3{M: 64, N: 64, K: 32},
			Inst:   cutlass.InstructionShape(dev.Arch),
			Stages: stages, SwizzleLog: 2,
			AlignA: 8, AlignB: 8, AlignC: 8,
			Op: gpu.OpClassTensorOp, DType: tensor.FP16,
		}
		if err := cfg.Validate(dev); err != nil {
			t.AddRow(fmt.Sprint(stages), "-", "invalid", "-")
			continue
		}
		g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
		tm := g.Time(dev, m, n, k)
		t.AddRow(fmt.Sprint(stages), fmt.Sprint(cfg.SharedMemBytes()>>10),
			us(tm), f1(2*float64(m)*float64(n)*float64(k)/tm/1e12))
	}
	return t
}

// ExtensionDynamicShapes reproduces the paper's *motivation* for fast
// tuning (§2.1): models with dynamic sequence lengths present new
// workloads at runtime. A TopHub-style tuning-log database (built by
// tuning the *static* deployment shape, seq=40) hits only that shape;
// every other length is a miss that costs a full opaque re-tune.
// Bolt's pre-generated sample programs make per-shape profiling a
// subsecond-to-seconds affair.
func (s *Suite) ExtensionDynamicShapes() *Table {
	t := &Table{
		ID:      "ext-dyn",
		Title:   "Extension: dynamic sequence lengths (BERT FFN GEMM, batch 32)",
		Columns: []string{"seq len", "workload (M,N,K)", "TopHub cache", "Ansor cost", "Bolt cost", "Bolt us", "Ansor us"},
		Notes: []string{
			"the tuning-log database was built for the static deployment shape (seq=40) only (§2.1)",
			"Bolt reuses pre-generated sample programs: per-shape cost is measurement only",
		},
	}
	p, boltClock := s.newProfiler()
	trials := s.MicroTrials / 4
	if trials < 64 {
		trials = 64
	}

	// The database a static deployment would ship: the seq=40 task.
	db := tunelog.New()
	staticTuner, _ := s.newAnsor()
	staticRes := staticTuner.TuneGemm(32*40, 3072, 768, trials, tensor.FP16)
	db.Record(tunelog.GemmKey(32*40, 3072, 768, tensor.FP16, s.Dev.Arch.String()),
		tunelog.Entry{Schedule: staticRes.Schedule, TimeSeconds: staticRes.Time, Trials: trials})

	for _, seq := range []int{16, 40, 64, 128, 256} {
		m := 32 * seq
		before := boltClock.Elapsed()
		res, err := p.ProfileGemm(profiler.GemmWorkload{M: m, N: 3072, K: 768, DType: tensor.FP16})
		if err != nil {
			panic(err)
		}
		boltCost := boltClock.Elapsed() - before

		var ansorTime, ansorCost float64
		cache := "miss"
		if e, ok := db.Lookup(tunelog.GemmKey(m, 3072, 768, tensor.FP16, s.Dev.Arch.String())); ok {
			// Cache hit: the stored schedule is reused for free.
			cache = "hit"
			ansorTime = e.TimeSeconds
		} else {
			tuner, ansorClock := s.newAnsor()
			ar := tuner.TuneGemm(m, 3072, 768, trials, tensor.FP16)
			ansorTime = ar.Time
			// Scale the re-tune cost to the paper's 2000-trial budget.
			ansorCost = ansorClock.Elapsed() * 2000 / float64(trials)
		}

		ansorCostStr := "0 (cached)"
		if ansorCost > 0 {
			ansorCostStr = fmt.Sprintf("%.0fmin", ansorCost/60)
		}
		t.AddRow(fmt.Sprint(seq), fmt.Sprintf("(%d,3072,768)", m),
			cache, ansorCostStr, fmt.Sprintf("%.1fs", boltCost),
			us(res.Time), us(ansorTime))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("database hit rate over the trace: %.0f%%", db.HitRate()*100))
	return t
}

// ExtensionDeepChains extends Table 1 beyond pairs: persistent kernels
// can fuse longer GEMM chains "by extending the persistent kernel
// templates and duplicating the GEMM pipelines" (§3.1.1).
func (s *Suite) ExtensionDeepChains() *Table {
	t := &Table{
		ID:      "ext-chain",
		Title:   "Extension: fusing deeper MLP chains (M=32768, layer widths 64-64-32-16)",
		Columns: []string{"fused layers", "launches", "time us", "vs unfused"},
		Notes:   []string{"the paper fuses pairs in Table 1 and notes deeper chains 'can further improve the performance'"},
	}
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	mk := func(n, k int) persistent.GemmLayer {
		cfg, _ := relay.ResidenceConfig(n, s.Dev)
		return persistent.GemmLayer{N: n, K: k, Config: cfg, Epilogue: relu}
	}
	m := 32768
	chain := []persistent.GemmLayer{mk(64, 128), mk(64, 64), mk(32, 64), mk(16, 32)}
	unfused := persistent.UnfusedGemmTime(s.Dev, m, chain)
	t.AddRow("none (4 kernels)", "4", us(unfused), f2(1.0))
	for depth := 2; depth <= len(chain); depth++ {
		f, err := persistent.ChooseGemmResidence(m, chain[:depth], s.Dev)
		if err != nil {
			t.AddRow(fmt.Sprint(depth), "-", "invalid", "-")
			continue
		}
		rest := persistent.UnfusedGemmTime(s.Dev, m, chain[depth:])
		total := f.Time(s.Dev) + rest
		t.AddRow(fmt.Sprintf("first %d (%s)", depth, f.Kind),
			fmt.Sprint(1+len(chain)-depth), us(total), f2(unfused/total))
	}
	return t
}

// ExtensionINT8 prices the mixed-precision path the templated library
// exposes beyond the paper's FP16 evaluation: INT8 IMMA kernels at 2x
// the FP16 tensor-core rate.
func (s *Suite) ExtensionINT8() *Table {
	t := &Table{
		ID:      "ext-int8",
		Title:   "Extension: INT8 (IMMA) vs FP16 (HMMA) templated GEMM on T4",
		Columns: []string{"workload (M,N,K)", "FP16 us", "INT8 us", "INT8 speedup"},
		Notes:   []string{"CUTLASS templates cover B1/INT4/INT8/FP16/BF16/TF32/... (§2.2); T4 IMMA peak is 2x HMMA"},
	}
	int8Cfg := cutlass.GemmConfig{
		TB:     cutlass.Shape3{M: 128, N: 128, K: 64},
		Warp:   cutlass.Shape3{M: 64, N: 64, K: 64},
		Inst:   cutlass.Shape3{M: 8, N: 8, K: 16},
		Stages: 2, SwizzleLog: 2,
		AlignA: 16, AlignB: 16, AlignC: 16,
		Op: gpu.OpClassTensorOp, DType: tensor.INT8,
	}
	p, _ := s.newProfiler()
	for _, w := range []struct{ M, N, K int }{
		{1024, 1024, 1024}, {2048, 2048, 2048}, {4096, 4096, 4096},
	} {
		res, err := p.ProfileGemm(profiler.GemmWorkload{M: w.M, N: w.N, K: w.K, DType: tensor.FP16})
		if err != nil {
			panic(err)
		}
		i8 := &cutlass.Gemm{Config: int8Cfg, Epilogue: cutlass.Epilogue{Alpha: 1, OutDType: tensor.INT8}}
		i8T := i8.Time(s.Dev, w.M, w.N, w.K)
		t.AddRow(fmt.Sprintf("(%d,%d,%d)", w.M, w.N, w.K), us(res.Time), us(i8T), f2(res.Time/i8T))
	}
	return t
}

var _ = models.Table1Workloads // keep import set stable for future rows
