package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"bolt/internal/codegen"
	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/serve"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// The hetero experiment exercises the PR-5 heterogeneous device pool:
// one server whose workers model different GPUs (Tesla T4 and A100),
// each deployed model compiled per-(device, bucket) through one shared
// tuning log (keys are device-scoped, so both families coexist), and
// batches dispatched by modeled earliest finish time. Identical seeded
// Poisson request streams are replayed against a 2x T4 pool, a mixed
// 1x T4 + 1x A100 pool, and a 2x A100 pool; the mixed pool must beat
// the homogeneous T4 pool on modeled makespan, and the A100's share of
// the served batches must track its modeled speed advantage. Every
// number is computed on the simulated clocks, so the experiment is
// deterministic. It emits BENCH_pr5.json for CI.

// heteroModel builds the source CNN for the heterogeneous experiment:
// wider than the serving CNN so the batch-8 variant is compute-heavy
// enough for the A100's tensor-core advantage to show through the
// launch and memory floors (the serving CNN's convs are so small that
// both devices sit near the launch-bound floor).
func heteroModel() *relay.Graph {
	b := relay.NewBuilder()
	x := b.Input("image", tensor.FP16, 1, 16, 32, 32)
	c := b.Conv2D(x, b.Weight("w1", 64, 3, 3, 16), 1, 1)
	c = b.BiasAdd(c, b.Weight("b1", 64))
	c = b.Activation(c, cutlass.ActReLU)
	c = b.Conv2D(c, b.Weight("w2", 64, 3, 3, 64), 1, 1)
	c = b.BiasAdd(c, b.Weight("b2", 64))
	c = b.Activation(c, cutlass.ActReLU)
	c = b.MaxPool(c, 2, 2, 0)
	c = b.Conv2D(c, b.Weight("w3", 128, 3, 3, 64), 1, 1)
	c = b.BiasAdd(c, b.Weight("b3", 128))
	c = b.Activation(c, cutlass.ActReLU)
	g := b.GlobalAvgPool(c)
	d := b.Dense(g, b.Weight("fc", 128, 10))
	return b.Build(b.Softmax(d))
}

// tenantCompilerOn is the device-parameterized form of tenantCompiler:
// the pool passes each device class's device, so a T4 worker and an
// A100 worker each compile variants tuned for their own silicon while
// recording into one shared tuning log.
func (s *Suite) tenantCompilerOn(src *relay.Graph, log *tunelog.Log) serve.CompileVariantOn {
	return func(dev *gpu.Device, batch int) (*rt.Module, error) {
		if dev == nil {
			dev = s.Dev
		}
		g, err := relay.Rebatch(src, batch)
		if err != nil {
			return nil, err
		}
		if err := relay.Optimize(g, dev); err != nil {
			return nil, err
		}
		p, _ := newProfilerOn(dev)
		return codegen.Compile(g, dev, codegen.Options{
			Tuner: codegen.TunerBolt, Profiler: p, Log: log,
		})
	}
}

// heteroDeviceRow is one worker's share of a pool's served work.
type heteroDeviceRow struct {
	Worker           int     `json:"worker"`
	Device           string  `json:"device"`
	Batches          int64   `json:"batches"`
	BusyUs           float64 `json:"busy_us"`
	UtilizationShare float64 `json:"utilization_share"`
	MakespanUs       float64 `json:"makespan_us"`
}

// heteroRow is one pool configuration's measured result.
type heteroRow struct {
	Pool       string            `json:"pool"`
	Requests   int64             `json:"requests"`
	Batches    int64             `json:"batches"`
	Throughput float64           `json:"throughput_imgs_per_sec"`
	MakespanUs float64           `json:"makespan_us"`
	P50Us      float64           `json:"p50_us"`
	P99Us      float64           `json:"p99_us"`
	Devices    []heteroDeviceRow `json:"devices"`
}

// heteroArtifact is the BENCH_pr5.json schema.
type heteroArtifact struct {
	Model    string      `json:"model"`
	Requests int         `json:"requests"`
	Rows     []heteroRow `json:"rows"`
	// Modeled bucket-8 batch cost per device, and their ratio — the
	// speed advantage EFT dispatch can actually exploit on this
	// workload (capped below the peak-TFLOPS ratio by launch overhead
	// and memory-bound layers).
	T4Batch8Us        float64 `json:"t4_batch8_us"`
	A100Batch8Us      float64 `json:"a100_batch8_us"`
	ModeledSpeedRatio float64 `json:"modeled_speed_ratio"`
	// PeakTFLOPSRatio is A100 peak tensor FP16 over T4's (the hardware
	// headroom the modeled ratio approaches as workloads grow).
	PeakTFLOPSRatio float64 `json:"peak_tflops_ratio"`
	// The CI-enforced numbers: the mixed pool's makespan win over 2x T4
	// at identical offered load, and the A100's share of the mixed
	// pool's batches relative to the T4's.
	Makespan2T4Us    float64 `json:"makespan_2t4_us"`
	MakespanHeteroUs float64 `json:"makespan_hetero_us"`
	HeteroSpeedup    float64 `json:"hetero_speedup"`
	WorkShareRatio   float64 `json:"work_share_ratio_a100_over_t4"`
}

// floodPool replays the prepared request stream against one pool
// configuration and returns its aggregate stats.
func (s *Suite) floodPool(devices []*gpu.Device, log *tunelog.Log, inputs []map[string]*tensor.Tensor, arrivals []float64, label string) serve.Stats {
	srv := serve.NewServer(serve.ServerOptions{
		Devices:     devices,
		QueueDepth:  len(inputs),
		BatchWindow: 10 * time.Millisecond,
		CompileJobs: 2,
		Trace:       s.Trace,
		TraceLabel:  label,
	})
	defer srv.Close()
	if err := srv.DeployOn("widenet", s.tenantCompilerOn(heteroModel(), log), serve.DeployOptions{
		Buckets: []int{1, 2, 4, 8},
	}); err != nil {
		panic(err)
	}
	// Warm every (device, bucket) variant so the flood measures
	// dispatch, not compilation interleaving (the shared log makes all
	// but the first pool's compiles measurement-free).
	if err := srv.Warm("widenet"); err != nil {
		panic(err)
	}
	chans := make([]<-chan serve.Result, len(inputs))
	for i, in := range inputs {
		// Bulk priority: batches dispatch as full largest buckets in
		// FIFO order, so batch composition is deterministic.
		ch, err := srv.InferAsync("widenet", in, serve.InferOptions{
			Priority:   serve.PriorityBulk,
			SimArrival: arrivals[i],
		})
		if err != nil {
			panic(err)
		}
		chans[i] = ch
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			panic(res.Err)
		}
	}
	return srv.Stats()
}

func (s *Suite) runHetero() heteroArtifact {
	requests := s.HeteroRequests
	requests -= requests % 8 // full largest buckets only
	if requests < 16 {
		requests = 16
	}
	log := tunelog.New()
	t4, a100 := gpu.T4(), gpu.A100()
	compile := s.tenantCompilerOn(heteroModel(), log)

	// Price the full bucket on both devices (this also primes the
	// shared tuning log, so every pool below warms measurement-free).
	mod8T4, err := compile(t4, 8)
	if err != nil {
		panic(err)
	}
	mod8A100, err := compile(a100, 8)
	if err != nil {
		panic(err)
	}
	cost8T4, cost8A100 := mod8T4.Time(), mod8A100.Time()

	// Offered load: a seeded Poisson stream at ~4x one T4 worker's
	// bucket-8 service rate, so every pool is service-bound (the
	// makespan measures capacity, not the arrival span) while arrivals
	// still stagger batch starts.
	arrivals := PoissonArrivals(requests, 0.25*cost8T4/8, 17)
	inputs := make([]map[string]*tensor.Tensor, requests)
	for i := range inputs {
		in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 1, 16, 32, 32)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*tensor.Tensor{"image": in}
	}

	art := heteroArtifact{
		Model:             "widenet-16x32",
		Requests:          requests,
		T4Batch8Us:        cost8T4 * 1e6,
		A100Batch8Us:      cost8A100 * 1e6,
		ModeledSpeedRatio: cost8T4 / cost8A100,
		PeakTFLOPSRatio:   a100.TensorFP16 / t4.TensorFP16,
	}
	pools := []struct {
		name    string
		devices []*gpu.Device
	}{
		{"2x T4", []*gpu.Device{t4, t4}},
		{"1x T4 + 1x A100", []*gpu.Device{t4, a100}},
		{"2x A100", []*gpu.Device{a100, a100}},
	}
	for _, p := range pools {
		st := s.floodPool(p.devices, log, inputs, arrivals, "hetero "+p.name)
		row := heteroRow{
			Pool:       p.name,
			Requests:   st.Requests,
			Batches:    st.Batches,
			Throughput: st.Throughput(),
			MakespanUs: st.SimMakespan * 1e6,
			P50Us:      st.LatencyPercentile(50) * 1e6,
			P99Us:      st.LatencyPercentile(99) * 1e6,
		}
		for _, d := range st.Devices {
			row.Devices = append(row.Devices, heteroDeviceRow{
				Worker:           d.Worker,
				Device:           d.Device,
				Batches:          d.Batches,
				BusyUs:           d.BusySeconds * 1e6,
				UtilizationShare: d.UtilizationShare,
				MakespanUs:       d.SimMakespan * 1e6,
			})
		}
		art.Rows = append(art.Rows, row)
		switch p.name {
		case "2x T4":
			art.Makespan2T4Us = row.MakespanUs
		case "1x T4 + 1x A100":
			art.MakespanHeteroUs = row.MakespanUs
			var t4Batches, a100Batches int64
			for _, d := range st.Devices {
				switch d.Device {
				case t4.Name:
					t4Batches += d.Batches
				case a100.Name:
					a100Batches += d.Batches
				}
			}
			if t4Batches > 0 {
				art.WorkShareRatio = float64(a100Batches) / float64(t4Batches)
			}
		}
	}
	if art.MakespanHeteroUs > 0 {
		art.HeteroSpeedup = art.Makespan2T4Us / art.MakespanHeteroUs
	}
	return art
}

// Hetero reproduces the heterogeneous-pool experiment: the same seeded
// Poisson request stream replayed against homogeneous and mixed device
// pools, with per-device variant compilation through one shared tuning
// log and cost-aware earliest-finish-time dispatch. When
// Suite.HeteroArtifact is set, the raw numbers are also written there
// as JSON (boltbench points it at BENCH_pr5.json).
func (s *Suite) Hetero() *Table {
	art := s.runHetero()
	t := &Table{
		ID:      "hetero",
		Title:   fmt.Sprintf("Heterogeneous pool: %d Poisson requests vs device mixes (simulated device time)", art.Requests),
		Columns: []string{"pool", "imgs/s", "makespan us", "p50 us", "p99 us", "per-device batches (busy us)"},
		Notes: []string{
			"identical seeded Poisson arrivals replayed against each pool; all batches are full bucket-8 dispatches",
			fmt.Sprintf("modeled bucket-8 cost: T4 %.1f us vs A100 %.1f us (%.2fx; peak-TFLOPS headroom %.1fx)",
				art.T4Batch8Us, art.A100Batch8Us, art.ModeledSpeedRatio, art.PeakTFLOPSRatio),
			fmt.Sprintf("mixed pool beats 2x T4 by %.2fx on modeled makespan (CI-enforced)", art.HeteroSpeedup),
			fmt.Sprintf("EFT dispatch gives the A100 %.1fx the T4's batches in the mixed pool — tracking its modeled speed advantage", art.WorkShareRatio),
		},
	}
	for _, r := range art.Rows {
		perDev := ""
		for i, d := range r.Devices {
			if i > 0 {
				perDev += ", "
			}
			perDev += fmt.Sprintf("%s: %d (%.0f)", d.Device, d.Batches, d.BusyUs)
		}
		t.AddRow(r.Pool, i0(r.Throughput), f1(r.MakespanUs), f1(r.P50Us), f1(r.P99Us), perDev)
	}
	if s.HeteroArtifact != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(s.HeteroArtifact, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
	}
	return t
}
