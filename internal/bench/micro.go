package bench

import (
	"fmt"

	"bolt/internal/ansor"
	"bolt/internal/cutlass"
	"bolt/internal/models"
	"bolt/internal/persistent"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// fig1Workloads are the five FP16 GEMMs of Figure 1: two large square
// GEMMs plus the three BERT GEMMs at batch 32 / sequence length 40.
func fig1Workloads() []struct{ M, N, K int } {
	ws := []struct{ M, N, K int }{
		{1024, 1024, 1024},
		{2048, 2048, 2048},
	}
	ws = append(ws, models.BERTGemms(32, 40)...)
	return ws
}

// Figure1 reproduces the motivation benchmark: Ansor-generated FP16
// GEMM speed normalized to cuBLAS. Paper shape: Ansor achieves less
// than ~20% of the vendor library.
func (s *Suite) Figure1() *Table {
	t := &Table{
		ID:      "fig1",
		Title:   "Ansor vs cuBLAS, FP16 GEMM (normalized speed, cuBLAS = 1.0)",
		Columns: []string{"workload (M,N,K)", "Ansor", "cuBLAS", "Ansor/cuBLAS"},
		Notes: []string{
			fmt.Sprintf("Ansor tuned with %d trials per workload", s.MicroTrials),
			"paper: Ansor reaches <20% of cuBLAS on tensor-core-eligible FP16 GEMMs",
		},
	}
	for _, w := range fig1Workloads() {
		tuner, _ := s.newAnsor()
		res := tuner.TuneGemm(w.M, w.N, w.K, s.MicroTrials, tensor.FP16)
		lib := s.Lib.GemmTime(w.M, w.N, w.K)
		ratio := lib / res.Time // speeds normalized to cuBLAS
		t.AddRow(fmt.Sprintf("(%d,%d,%d)", w.M, w.N, w.K), f2(ratio), f2(1.0), pct(ratio))
	}
	return t
}

// fig8aWorkloads are the six GEMMs of Figure 8a.
func fig8aWorkloads() []struct{ M, N, K int } {
	return []struct{ M, N, K int }{
		{32, 768, 768},
		{1280, 3072, 768},
		{1280, 768, 768},
		{1280, 768, 3072},
		{2048, 2048, 2048},
		{1024, 1024, 1024},
	}
}

// Figure8a reproduces the GEMM microbenchmark: Bolt vs Ansor
// (normalized speed, Ansor = 1.0). Paper shape: 6.1-9.5x on
// compute-intensive workloads, 1.9x on the memory-bound (32,768,768).
func (s *Suite) Figure8a() *Table {
	t := &Table{
		ID:      "fig8a",
		Title:   "GEMM performance, Bolt vs Ansor (normalized speed, Ansor = 1.0)",
		Columns: []string{"workload (M,N,K)", "Ansor", "Bolt", "Bolt TFLOPS"},
		Notes: []string{
			"paper: Bolt 6.1-9.5x on compute-intensive GEMMs, 1.9x on (32,768,768)",
		},
	}
	p, _ := s.newProfiler()
	for _, w := range fig8aWorkloads() {
		res, err := p.ProfileGemm(profiler.GemmWorkload{M: w.M, N: w.N, K: w.K, DType: tensor.FP16})
		if err != nil {
			panic(err)
		}
		tuner, _ := s.newAnsor()
		ar := tuner.TuneGemm(w.M, w.N, w.K, s.MicroTrials, tensor.FP16)
		speedup := ar.Time / res.Time
		tf := 2 * float64(w.M) * float64(w.N) * float64(w.K) / res.Time / 1e12
		t.AddRow(fmt.Sprintf("(%d,%d,%d)", w.M, w.N, w.K), f2(1.0), f2(speedup), f1(tf))
	}
	return t
}

// fig8bWorkloads are the seven ResNet-50 3x3 convolutions of Figure 8b
// (batch 32, padding (1,1)).
func fig8bWorkloads() []cutlass.ConvShape {
	return []cutlass.ConvShape{
		cutlass.Conv3x3(32, 56, 56, 64, 64, 1, 1),
		cutlass.Conv3x3(32, 56, 56, 128, 128, 2, 1),
		cutlass.Conv3x3(32, 28, 28, 128, 128, 1, 1),
		cutlass.Conv3x3(32, 28, 28, 256, 256, 2, 1),
		cutlass.Conv3x3(32, 14, 14, 256, 256, 1, 1),
		cutlass.Conv3x3(32, 14, 14, 512, 512, 2, 1),
		cutlass.Conv3x3(32, 7, 7, 512, 512, 1, 1),
	}
}

// Figure8b reproduces the Conv2D microbenchmark. Paper shape: Bolt
// 2.7-3.5x faster than Ansor across all seven workloads.
func (s *Suite) Figure8b() *Table {
	t := &Table{
		ID:      "fig8b",
		Title:   "Conv2D performance, Bolt vs Ansor (normalized speed, Ansor = 1.0)",
		Columns: []string{"workload (HW, IC->OC, stride)", "Ansor", "Bolt", "Bolt TFLOPS"},
		Notes:   []string{"paper: Bolt 2.7-3.5x across ResNet-50 3x3 convs"},
	}
	p, _ := s.newProfiler()
	for _, shape := range fig8bWorkloads() {
		res, err := p.ProfileConv(profiler.ConvWorkload{Shape: shape, DType: tensor.FP16})
		if err != nil {
			panic(err)
		}
		m, n, k := shape.ImplicitGemm()
		tuner, _ := s.newAnsor()
		ar := tuner.TuneConv(ansor.ConvGeometry{M: m, N: n, K: k,
			ActivationElems: shape.N * shape.H * shape.W * shape.IC}, s.MicroTrials, tensor.FP16)
		speedup := ar.Time / res.Time
		t.AddRow(fmt.Sprintf("%d^2, %d->%d, (%d,%d)", shape.H, shape.IC, shape.OC, shape.StrideH, shape.StrideW),
			f2(1.0), f2(speedup), f1(shape.FLOPs()/res.Time/1e12))
	}
	return t
}

// epilogueActivations are the four activations of Figure 9.
var epilogueActivations = []cutlass.Activation{
	cutlass.ActReLU, cutlass.ActGELU, cutlass.ActHardswish, cutlass.ActSoftplus,
}

// Figure9a reproduces GEMM epilogue fusion: the pattern
// GEMM+BiasAdd+Activation with the epilogue fused into the kernel vs
// computed as a separate TVM elementwise kernel. Paper shape: average
// speedup ~1.45x on the (1280, 3072, 768) GEMM.
func (s *Suite) Figure9a() *Table {
	t := &Table{
		ID:      "fig9a",
		Title:   "GEMM epilogue fusion, M=1280 N=3072 K=768 (normalized speed, w/o fusion = 1.0)",
		Columns: []string{"epilogue", "Bolt w/o fusion", "Bolt w/ fusion"},
		Notes:   []string{"paper: average GEMM epilogue-fusion speedup 1.45x"},
	}
	m, n, k := 1280, 3072, 768
	p, _ := s.newProfiler()
	res, err := p.ProfileGemm(profiler.GemmWorkload{M: m, N: n, K: k, DType: tensor.FP16})
	if err != nil {
		panic(err)
	}
	for _, act := range epilogueActivations {
		// Without fusion: plain GEMM kernel + separate bias+activation
		// elementwise kernel (an extra launch plus a full activation
		// read+write).
		plain := &cutlass.Gemm{Config: res.Config, Epilogue: cutlass.DefaultEpilogue()}
		unfused := plain.Time(s.Dev, m, n, k) + s.Dev.KernelTime(cutlass.ElementwiseDesc(s.Dev, m*n, act, tensor.FP16))
		// With fusion: the epilogue runs in the GEMM's epilogue phase.
		fused := (&cutlass.Gemm{Config: res.Config, Epilogue: cutlass.BiasActivation(act)}).Time(s.Dev, m, n, k)
		t.AddRow(act.String(), f2(1.0), f2(unfused/fused))
	}
	return t
}

// Figure9b reproduces Conv2D epilogue fusion on the 56x56, 64->64, 3x3
// stride-1 convolution. Paper shape: average speedup ~1.38x.
func (s *Suite) Figure9b() *Table {
	t := &Table{
		ID:      "fig9b",
		Title:   "Conv2D epilogue fusion, 56^2 64->64 3x3 s1 p1 (normalized speed, w/o fusion = 1.0)",
		Columns: []string{"epilogue", "Bolt w/o fusion", "Bolt w/ fusion"},
		Notes:   []string{"paper: average Conv2D epilogue-fusion speedup 1.38x"},
	}
	shape := cutlass.Conv3x3(32, 56, 56, 64, 64, 1, 1)
	p, _ := s.newProfiler()
	res, err := p.ProfileConv(profiler.ConvWorkload{Shape: shape, DType: tensor.FP16})
	if err != nil {
		panic(err)
	}
	m, n, _ := shape.ImplicitGemm()
	for _, act := range epilogueActivations {
		plain := &cutlass.Conv2D{Shape: shape, Config: res.Config, Epilogue: cutlass.DefaultEpilogue()}
		unfused := plain.Time(s.Dev) + s.Dev.KernelTime(cutlass.ElementwiseDesc(s.Dev, m*n, act, tensor.FP16))
		fused := (&cutlass.Conv2D{Shape: shape, Config: res.Config, Epilogue: cutlass.BiasActivation(act)}).Time(s.Dev)
		t.AddRow(act.String(), f2(1.0), f2(unfused/fused))
	}
	return t
}

// Table1 reproduces persistent GEMM fusion on the recommendation-model
// pairs. Paper shape: 1.24x-1.46x over the epilogue-fused unfused
// baseline.
func (s *Suite) Table1() *Table {
	t := &Table{
		ID:      "tab1",
		Title:   "Back-to-back GEMM fusion with persistent kernels (normalized speed)",
		Columns: []string{"1st GEMM (M,N,K)", "2nd GEMM (M,N,K)", "w/o fuse", "w/ fuse", "residence"},
		Notes:   []string{"paper: 1.24-1.46x; each GEMM carries a ReLU epilogue"},
	}
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	for _, w := range models.Table1Workloads() {
		mkLayer := func(n, k int) persistent.GemmLayer {
			cfg, ok := relay.ResidenceConfig(n, s.Dev)
			if !ok {
				panic(fmt.Sprintf("residence infeasible for N=%d", n))
			}
			return persistent.GemmLayer{N: n, K: k, Config: cfg, Epilogue: relu}
		}
		layers := []persistent.GemmLayer{mkLayer(w.N0, w.K0), mkLayer(w.N1, w.N0)}
		f, err := persistent.ChooseGemmResidence(w.M, layers, s.Dev)
		if err != nil {
			panic(err)
		}
		speedup := persistent.UnfusedGemmTime(s.Dev, w.M, layers) / f.Time(s.Dev)
		t.AddRow(fmt.Sprintf("%d %d %d", w.M, w.N0, w.K0),
			fmt.Sprintf("%d %d %d", w.M, w.N1, w.N0),
			f2(1.0), f2(speedup), f.Kind.String())
	}
	return t
}

// Table2 reproduces persistent Conv2D fusion on the RepVGG 3x3+1x1
// pairs. Paper shape: 1.10x-2.02x.
func (s *Suite) Table2() *Table {
	t := &Table{
		ID:      "tab2",
		Title:   "Back-to-back Conv2D fusion with persistent kernels (normalized speed)",
		Columns: []string{"3x3 Conv2D (HW, IC->OC, s)", "1x1 Conv2D (HW, IC->OC)", "w/o fuse", "w/ fuse", "residence"},
		Notes:   []string{"paper: 1.10-2.02x; each Conv2D carries BiasAdd+ReLU"},
	}
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	for _, w := range models.Table2Workloads() {
		mkLayer := func(shape cutlass.ConvShape) persistent.ConvLayer {
			cfg, ok := relay.ResidenceConfig(shape.OC, s.Dev)
			if !ok {
				panic(fmt.Sprintf("residence infeasible for OC=%d", shape.OC))
			}
			if shape.IC%cfg.AlignA != 0 {
				a := relay.AlignFor(shape.IC)
				cfg.AlignA, cfg.AlignB = a, a
			}
			return persistent.ConvLayer{Shape: shape, Config: cfg, Epilogue: relu}
		}
		layers := []persistent.ConvLayer{mkLayer(w.First), mkLayer(w.Then)}
		f, err := persistent.ChooseConvResidence(layers, s.Dev)
		if err != nil {
			panic(err)
		}
		speedup := persistent.UnfusedConvTime(s.Dev, layers) / f.Time(s.Dev)
		t.AddRow(fmt.Sprintf("%d^2, %d->%d, (%d,%d)", w.First.H, w.First.IC, w.First.OC, w.First.StrideH, w.First.StrideW),
			fmt.Sprintf("%d^2, %d->%d", w.Then.H, w.Then.IC, w.Then.OC),
			f2(1.0), f2(speedup), f.Kind.String())
	}
	return t
}

// Table3 reproduces automated kernel padding: unaligned-channel convs
// computed at alignment 2 vs padded to alignment 8 (pad kernel cost
// included). Paper shape: ~1.6-2.0x speedup, padding costing 9-24% of
// the total.
func (s *Suite) Table3() *Table {
	t := &Table{
		ID:      "tab3",
		Title:   "Automated kernel padding (normalized speed; cost = pad time / total time)",
		Columns: []string{"N", "HW", "IC->OC", "kernel", "unpadded", "padded", "cost"},
		Notes: []string{
			"unpadded convs run alignment-2 kernels; padded convs run alignment-8 plus an explicit pad kernel",
			"paper: ~1.8x average speedup at 9-24% padding cost",
		},
	}
	p, _ := s.newProfiler()
	for _, w := range models.Table3Workloads() {
		shape := w.Shape()
		// Unpadded: profile with the native (unaligned) channels.
		resU, err := p.ProfileConv(profiler.ConvWorkload{Shape: shape, DType: tensor.FP16})
		if err != nil {
			panic(err)
		}
		unpadded := resU.Time

		// Padded: channels rounded to 8; alignment-8 kernel + pad copy.
		padded := shape
		padded.IC = (shape.IC + 7) / 8 * 8
		resP, err := p.ProfileConv(profiler.ConvWorkload{Shape: padded, DType: tensor.FP16})
		if err != nil {
			panic(err)
		}
		padKernel := s.Dev.KernelTime(rt.PadDesc(shape.N*shape.H*shape.W*shape.IC,
			shape.N*shape.H*shape.W*padded.IC, tensor.FP16))
		total := resP.Time + padKernel
		t.AddRow(fmt.Sprint(w.N), fmt.Sprintf("%d,%d", w.H, w.W),
			fmt.Sprintf("%d->%d", w.IC, w.OC), fmt.Sprintf("(%d,%d)", w.KH, w.KW),
			f2(1.0), f2(unpadded/total), pct(padKernel/total))
	}
	return t
}
