package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"bolt/internal/gpu"
)

// quick returns a shared quick-mode suite (per-test isolation is not
// needed: experiments are deterministic given the suite's seeds).
func quick() *Suite { return NewQuickSuite(gpu.T4()) }

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("%s: no column %q", tab.ID, col)
	return ""
}

func cellF(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tab, row, col), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s row %d col %s: %v", tab.ID, row, col, err)
	}
	return v
}

func TestFigure1Shape(t *testing.T) {
	tab := quick().Figure1()
	if len(tab.Rows) != 5 {
		t.Fatalf("fig1 has %d rows, want 5", len(tab.Rows))
	}
	for i := range tab.Rows {
		r := cellF(t, tab, i, "Ansor")
		if r > 0.30 {
			t.Errorf("fig1 row %d: Ansor at %.0f%% of cuBLAS; paper shape is <~20%%", i, r*100)
		}
		if r < 0.05 {
			t.Errorf("fig1 row %d: Ansor at %.0f%% implausibly slow", i, r*100)
		}
	}
}

func TestFigure8aShape(t *testing.T) {
	tab := quick().Figure8a()
	if len(tab.Rows) != 6 {
		t.Fatalf("fig8a has %d rows", len(tab.Rows))
	}
	// Row 0 is the memory-bound (32,768,768): small speedup.
	if v := cellF(t, tab, 0, "Bolt"); v < 1.0 || v > 2.5 {
		t.Errorf("memory-bound GEMM speedup %.2f outside [1.0, 2.5] (paper: 1.9)", v)
	}
	// Compute-intensive rows: 6.1-9.5x in the paper; accept 4.5-11.
	for i := 1; i < 6; i++ {
		if v := cellF(t, tab, i, "Bolt"); v < 4.5 || v > 11 {
			t.Errorf("row %d speedup %.2f outside [4.5, 11] (paper: 6.1-9.5)", i, v)
		}
	}
}

func TestFigure8bShape(t *testing.T) {
	tab := quick().Figure8b()
	if len(tab.Rows) != 7 {
		t.Fatalf("fig8b has %d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		if v := cellF(t, tab, i, "Bolt"); v < 2.0 || v > 5.0 {
			t.Errorf("conv row %d speedup %.2f outside [2, 5] (paper: 2.7-3.5)", i, v)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	s := quick()
	for _, tab := range []*Table{s.Figure9a(), s.Figure9b()} {
		if len(tab.Rows) != 4 {
			t.Fatalf("%s has %d rows", tab.ID, len(tab.Rows))
		}
		sum := 0.0
		for i := range tab.Rows {
			v := cellF(t, tab, i, "Bolt w/ fusion")
			sum += v
			if v < 1.1 {
				t.Errorf("%s row %d: fusion speedup %.2f < 1.1", tab.ID, i, v)
			}
		}
		avg := sum / 4
		if avg < 1.25 || avg > 1.7 {
			t.Errorf("%s average fusion speedup %.2f outside [1.25, 1.7] (paper: 1.45/1.38)", tab.ID, avg)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab := quick().Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("tab1 has %d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		if v := cellF(t, tab, i, "w/ fuse"); v < 1.1 || v > 2.2 {
			t.Errorf("tab1 row %d fusion speedup %.2f outside [1.1, 2.2] (paper: 1.24-1.46)", i, v)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tab := quick().Table2()
	if len(tab.Rows) != 6 {
		t.Fatalf("tab2 has %d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		if v := cellF(t, tab, i, "w/ fuse"); v < 1.05 || v > 2.3 {
			t.Errorf("tab2 row %d fusion speedup %.2f outside [1.05, 2.3] (paper: 1.10-2.02)", i, v)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tab := quick().Table3()
	if len(tab.Rows) != 6 {
		t.Fatalf("tab3 has %d rows", len(tab.Rows))
	}
	wins := 0
	for i := range tab.Rows {
		sp := cellF(t, tab, i, "padded")
		cost := cellF(t, tab, i, "cost")
		if sp >= 1.05 {
			wins++
		}
		if cost <= 0 || cost >= 60 {
			t.Errorf("tab3 row %d pad cost %.0f%% outside (0, 60)", i, cost)
		}
	}
	// Padding must win on most workloads (the paper's average is 1.8x;
	// our pad kernel is relatively more expensive on the smallest
	// shapes — see EXPERIMENTS.md).
	if wins < 4 {
		t.Errorf("padding won on only %d/6 workloads", wins)
	}
}

func TestFigure10Shape(t *testing.T) {
	s := quick()
	a := s.Figure10a()
	if len(a.Rows) != 6 {
		t.Fatalf("fig10a has %d rows", len(a.Rows))
	}
	speedups := map[string]float64{}
	for i := range a.Rows {
		name := cell(t, a, i, "model")
		v := cellF(t, a, i, "speedup")
		speedups[name] = v
		if v < 1.3 {
			t.Errorf("%s end-to-end speedup %.2f < 1.3", name, v)
		}
		if v > 6 {
			t.Errorf("%s end-to-end speedup %.2f implausibly high", name, v)
		}
	}
	// Paper ordering: VGG gains most, ResNet least.
	if speedups["VGG-16"] <= speedups["ResNet-50"] {
		t.Error("VGG should gain more than ResNet (paper: 4.2x vs 1.5x)")
	}

	b := s.Figure10b()
	for i := range b.Rows {
		ansorT, err := time.ParseDuration(cell(t, b, i, "Ansor"))
		if err != nil {
			t.Fatal(err)
		}
		boltT, err := time.ParseDuration(cell(t, b, i, "Bolt"))
		if err != nil {
			t.Fatal(err)
		}
		if boltT > 20*time.Minute {
			t.Errorf("%s: Bolt tuning %v exceeds the paper's 20-minute bound", cell(t, b, i, "model"), boltT)
		}
		if ansorT < 2*time.Hour {
			t.Errorf("%s: Ansor tuning %v suspiciously fast (paper: ~12h average)", cell(t, b, i, "model"), ansorT)
		}
		if ansorT < 20*boltT {
			t.Errorf("%s: Ansor/Bolt tuning ratio %.0f too small", cell(t, b, i, "model"), float64(ansorT)/float64(boltT))
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tab := quick().Table4()
	speed := map[string]float64{}
	acc := map[string]float64{}
	for i := range tab.Rows {
		name := cell(t, tab, i, "activation")
		speed[name] = cellF(t, tab, i, "speed (img/s)")
		acc[name] = cellF(t, tab, i, "top-1 acc")
	}
	// Paper ordering: relu fastest, then hardswish, gelu, softplus
	// slowest; hardswish most accurate.
	if !(speed["relu"] >= speed["hardswish"] && speed["hardswish"] >= speed["gelu"] && speed["gelu"] >= speed["softplus"]) {
		t.Errorf("activation speed ordering wrong: %v", speed)
	}
	if acc["hardswish"] <= acc["relu"] {
		t.Error("hardswish should beat relu accuracy (paper: +0.67)")
	}
	// Even the most expensive activation costs little thanks to
	// epilogue fusion (paper: softplus -7.7%).
	if drop := 1 - speed["softplus"]/speed["relu"]; drop > 0.15 {
		t.Errorf("softplus costs %.0f%% of speed; fusion should keep it under 15%%", drop*100)
	}
}

func TestTable5Shape(t *testing.T) {
	tab := quick().Table5()
	if len(tab.Rows) != 6 {
		t.Fatalf("tab5 has %d rows", len(tab.Rows))
	}
	get := func(model string) (acc, sp, params float64) {
		for i := range tab.Rows {
			if cell(t, tab, i, "model") == model {
				return cellF(t, tab, i, "top-1 acc"), cellF(t, tab, i, "speed (img/s)"), cellF(t, tab, i, "params (M)")
			}
		}
		t.Fatalf("no row %s", model)
		return
	}
	for _, v := range []string{"A0", "A1", "B0"} {
		baseAcc, baseSp, baseP := get("RepVGG-" + v)
		augAcc, augSp, augP := get("RepVGGAug-" + v)
		if augAcc <= baseAcc {
			t.Errorf("%s: deepening should raise accuracy", v)
		}
		if augSp >= baseSp {
			t.Errorf("%s: deepening cannot be free", v)
		}
		if augP <= baseP {
			t.Errorf("%s: deepening must add params", v)
		}
		// Persistent fusion keeps the speed cost moderate (paper:
		// ~15.3% average; our fused 1x1s land in the same regime).
		if drop := 1 - augSp/baseSp; drop > 0.45 {
			t.Errorf("%s: 1x1 deepening costs %.0f%% speed — persistent fusion not effective", v, drop*100)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	tab := quick().Table6()
	get := func(model string) (acc, sp float64) {
		for i := range tab.Rows {
			if cell(t, tab, i, "model") == model {
				return cellF(t, tab, i, "top-1 acc"), cellF(t, tab, i, "speed (img/s)")
			}
		}
		t.Fatalf("no row %s", model)
		return
	}
	// Paper headline: RepVGGAug-A1 beats RepVGG-B0 on accuracy while
	// remaining speed-competitive: codesign > conventional deepening.
	augA1Acc, augA1Sp := get("RepVGGAug-A1")
	b0Acc, b0Sp := get("RepVGG-B0")
	if augA1Acc <= b0Acc {
		t.Errorf("RepVGGAug-A1 (%.2f) should out-accuracy RepVGG-B0 (%.2f)", augA1Acc, b0Acc)
	}
	if augA1Sp < 0.7*b0Sp {
		t.Errorf("RepVGGAug-A1 speed %.0f too far below RepVGG-B0 %.0f", augA1Sp, b0Sp)
	}
}

func TestAllAndByID(t *testing.T) {
	s := quick()
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("%d experiment ids, want 13 (every table and figure)", len(ids))
	}
	for _, id := range ids {
		f := s.ByID(id)
		if f == nil {
			t.Fatalf("no regenerator for %s", id)
		}
		tab := f()
		if tab.ID != id {
			t.Errorf("regenerator %s produced table %s", id, tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		if !strings.Contains(tab.Render(), tab.Title) {
			t.Errorf("%s render missing title", id)
		}
	}
	if got := len(s.All()); got != 13 {
		t.Errorf("All produced %d tables", got)
	}
}
