package bench

import (
	"reflect"
	"testing"

	"bolt/internal/gpu"
)

// TestPaddingDeterministicAndGuarded is the PR-6 acceptance check for
// the experiment itself: identical suites produce bit-identical
// artifacts (gated compiles make batch composition independent of host
// scheduling), the continuous+padded row actually pads while the
// single-bucket guard never does, the strict baseline runs nothing but
// full largest buckets, and the latency/throughput numbers stay inside
// the CI envelope. The hard throughput >= strict gate is enforced by
// the CI smoke at the real quick-mode stream size; at this test's
// affordable 24-request stream the tail is a larger fraction of the
// makespan, so throughput only gets a sanity band here.
func TestPaddingDeterministicAndGuarded(t *testing.T) {
	run := func() paddingArtifact {
		s := NewQuickSuite(gpu.T4())
		s.PaddingRequests = 24 // 3 full buckets: affordable under `go test`
		return s.runPadding()
	}
	art := run()
	if again := run(); !reflect.DeepEqual(art, again) {
		t.Fatalf("padding experiment is not deterministic:\nfirst:  %+v\nsecond: %+v", art, again)
	}

	if art.PaddedBatches <= 0 {
		t.Errorf("continuous+padded row never padded (padded_batches %d); the padded path went unexercised", art.PaddedBatches)
	}
	if art.GuardPaddedBatches != 0 {
		t.Errorf("single-bucket guard padded %d batches, must short-circuit to 0", art.GuardPaddedBatches)
	}
	if art.P99Ratio > 1.1 {
		t.Errorf("continuous+padded p99 is %.2fx strict, CI envelope is <= 1.1x", art.P99Ratio)
	}
	if art.ThroughputGain < 0.95 {
		t.Errorf("continuous+padded throughput is %.3fx strict, sanity band is >= 0.95x", art.ThroughputGain)
	}

	for _, row := range art.Rows {
		var rows int64
		for b, n := range row.BatchSizes {
			rows += int64(b) * n
			if b > 1 && row.Policy == "single-bucket guard" {
				t.Errorf("guard row ran a batch of %d on a {1} ladder", b)
			}
			if b != 8 && row.Policy == "strict buckets" {
				t.Errorf("strict row ran a partial batch of %d; full visibility should give full buckets only", b)
			}
		}
		// Padded rows are zero-filled filler, so the histogram counts
		// them on top of the real requests.
		if rows != row.Requests+row.PaddedRows {
			t.Errorf("%s: batch-size histogram holds %d rows, want %d requests + %d padded",
				row.Policy, rows, row.Requests, row.PaddedRows)
		}
		if (row.PaddedBatches > 0) != (row.PaddedRows > 0) {
			t.Errorf("%s: padded_batches %d inconsistent with padded_rows %d",
				row.Policy, row.PaddedBatches, row.PaddedRows)
		}
	}
}
