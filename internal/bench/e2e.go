package bench

import (
	"fmt"
	"time"

	"bolt/internal/codegen"
	"bolt/internal/gpu"
	"bolt/internal/models"
	"bolt/internal/relay"
	"bolt/internal/rt"
)

// e2eModels are the six networks of Figure 10.
func (s *Suite) e2eModels() []struct {
	Name  string
	Build func() *relay.Graph
} {
	b := s.Batch
	return []struct {
		Name  string
		Build func() *relay.Graph
	}{
		{"VGG-16", func() *relay.Graph { return models.VGG(16, b) }},
		{"VGG-19", func() *relay.Graph { return models.VGG(19, b) }},
		{"ResNet-18", func() *relay.Graph { return models.ResNet(18, b) }},
		{"ResNet-50", func() *relay.Graph { return models.ResNet(50, b) }},
		{"RepVGG-A0", func() *relay.Graph { return models.RepVGG("A0", b, models.RepVGGOptions{}) }},
		{"RepVGG-B0", func() *relay.Graph { return models.RepVGG("B0", b, models.RepVGGOptions{}) }},
	}
}

// compileBolt runs the full Bolt pipeline (optimize + profile +
// codegen) and returns the module plus its tuning clock.
func (s *Suite) compileBolt(g *relay.Graph) (*rt.Module, *gpu.Clock) {
	p, clock := s.newProfiler()
	if err := relay.Optimize(g, s.Dev); err != nil {
		panic(err)
	}
	m, err := codegen.Compile(g, s.Dev, codegen.Options{Tuner: codegen.TunerBolt, Profiler: p})
	if err != nil {
		panic(err)
	}
	// Final module build: each selected template is instantiated and
	// compiled into the runtime file (nvcc on the generated CUDA).
	// This — not the candidate search — is most of Bolt's minutes in
	// Figure 10b.
	clock.Advance(gpu.ModuleBuildSeconds(m.TemplatedKernels()))
	return m, clock
}

// compileAnsor runs the baseline pipeline: TVM-level fusion only, all
// anchors tuned by the opaque searcher.
func (s *Suite) compileAnsor(g *relay.Graph) (*rt.Module, *gpu.Clock, int) {
	relay.FoldBatchNorm(g)
	relay.FuseEpilogue(g)
	tuner, clock := s.newAnsor()
	m, err := codegen.Compile(g, s.Dev, codegen.Options{
		Tuner: codegen.TunerAnsor, AnsorTuner: tuner, AnsorTrials: s.E2ETrialsPerTask,
	})
	if err != nil {
		panic(err)
	}
	// Count distinct tuning tasks for the tuning-time scaling note.
	tasks := 0
	seen := map[string]bool{}
	for _, n := range g.Nodes {
		if n.Op == relay.OpConv2D || n.Op == relay.OpDense {
			key := fmt.Sprint(n.Op, n.Shape, n.Conv)
			if !seen[key] {
				seen[key] = true
				tasks++
			}
		}
	}
	return m, clock, tasks
}

// e2eResult caches one model's end-to-end measurements so Figure 10a
// and 10b share a single compilation.
type e2eResult struct {
	Name                    string
	BoltImgs, AnsorImgs     float64
	BoltTune, AnsorTune     time.Duration
	BoltLaunch, AnsorLaunch int
}

func (s *Suite) runE2E() []e2eResult {
	if s.e2eCache != nil {
		return s.e2eCache
	}
	var out []e2eResult
	for _, m := range s.e2eModels() {
		bolt, boltClock := s.compileBolt(m.Build())
		ansorMod, ansorClock, _ := s.compileAnsor(m.Build())
		// Scale the baseline's tuning time to the paper's 900
		// trials/task budget when running in quick mode.
		scale := 900.0 / float64(s.E2ETrialsPerTask)
		out = append(out, e2eResult{
			Name:       m.Name,
			BoltImgs:   bolt.Throughput(s.Batch),
			AnsorImgs:  ansorMod.Throughput(s.Batch),
			BoltTune:   boltClock.ElapsedDuration(),
			AnsorTune:  time.Duration(float64(ansorClock.ElapsedDuration()) * scale),
			BoltLaunch: bolt.LaunchCount(), AnsorLaunch: ansorMod.LaunchCount(),
		})
	}
	s.e2eCache = out
	return out
}

// Figure10a reproduces end-to-end inference speed (images/sec, batch
// 32, FP16). Paper shape: Bolt 4.2x on VGG, 1.5x on ResNet, 2.6x on
// RepVGG; 2.8x average.
func (s *Suite) Figure10a() *Table {
	t := &Table{
		ID:      "fig10a",
		Title:   fmt.Sprintf("End-to-end inference speed (images/sec, batch %d, FP16)", s.Batch),
		Columns: []string{"model", "Ansor", "Bolt", "speedup", "launches (Ansor->Bolt)"},
		Notes:   []string{"paper: 4.2x on VGG, 1.5x on ResNet, 2.6x on RepVGG; 2.8x average"},
	}
	for _, r := range s.runE2E() {
		t.AddRow(r.Name, i0(r.AnsorImgs), i0(r.BoltImgs), f2(r.BoltImgs/r.AnsorImgs),
			fmt.Sprintf("%d->%d", r.AnsorLaunch, r.BoltLaunch))
	}
	return t
}

// Figure10b reproduces auto-tuning time. Paper shape: Bolt finishes
// every model within 20 minutes; Ansor averages ~12 hours.
func (s *Suite) Figure10b() *Table {
	t := &Table{
		ID:      "fig10b",
		Title:   "Auto-tuning time (simulated wall clock)",
		Columns: []string{"model", "Ansor", "Bolt"},
		Notes: []string{
			fmt.Sprintf("Ansor budget: 900 trials/task (simulated %d, scaled); Bolt: profiler candidates only", s.E2ETrialsPerTask),
			"paper: Bolt < 20 minutes for every model; Ansor ~12 hours on average",
		},
	}
	for _, r := range s.runE2E() {
		t.AddRow(r.Name, r.AnsorTune.Round(time.Minute).String(), r.BoltTune.Round(time.Second).String())
	}
	return t
}
