package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestServingScalesWithWorkers is the PR-3 acceptance gate: aggregate
// throughput must scale >1.5x from 1 to 4 workers (it is deterministic
// on the simulated clocks, so the floor is safe), batching must
// actually coalesce, and the pooled executor's steady-state allocs
// must not balloon under concurrency.
func TestServingScalesWithWorkers(t *testing.T) {
	s := quick()
	s.ServingRequests = 32
	s.ServingArtifact = filepath.Join(t.TempDir(), "BENCH_pr3.json")
	tab := s.Serving()
	if len(tab.Rows) != 4 {
		t.Fatalf("serving table has %d rows, want 4", len(tab.Rows))
	}

	data, err := os.ReadFile(s.ServingArtifact)
	if err != nil {
		t.Fatal(err)
	}
	var art servingArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if art.WorkerScaling1To4 <= 1.5 {
		t.Errorf("throughput scaling 1->4 workers = %.2fx, want > 1.5x", art.WorkerScaling1To4)
	}
	coalesced := false
	for _, r := range art.Rows {
		if r.Throughput <= 0 || r.P50Us <= 0 || r.P99Us < r.P50Us {
			t.Errorf("malformed row: %+v", r)
		}
		if r.MaxBucket == 8 && r.Batches[8] > 0 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Error("no bucket-8 batch was ever dispatched")
	}
	if art.SingleCallerAllocsPerRun <= 0 {
		t.Errorf("single-caller allocs/run %.1f, want > 0", art.SingleCallerAllocsPerRun)
	}
	if art.ConcurrentCallersAllocsPerRun > 2*art.SingleCallerAllocsPerRun {
		t.Errorf("concurrent allocs/run %.1f exceeds 2x single-caller %.1f",
			art.ConcurrentCallersAllocsPerRun, art.SingleCallerAllocsPerRun)
	}
}
