package bench

import (
	"math"
	"reflect"
	"testing"

	"bolt/internal/gpu"
)

// TestHeteroDeterministicAndWins is the PR-5 acceptance check for the
// experiment itself: identical suites produce bit-identical artifacts
// (the whole pipeline — Poisson stream, per-device compiles, EFT
// dispatch — is deterministic), the mixed pool beats 2x T4 on modeled
// makespan, the A100 absorbs at least its fair share of the mixed
// pool's batches, and per-device rows sum exactly to each pool's
// aggregate.
func TestHeteroDeterministicAndWins(t *testing.T) {
	run := func() heteroArtifact {
		s := NewQuickSuite(gpu.T4())
		s.HeteroRequests = 24 // 3 full buckets: affordable under `go test`
		return s.runHetero()
	}
	art := run()
	if again := run(); !reflect.DeepEqual(art, again) {
		t.Fatalf("hetero experiment is not deterministic:\nfirst:  %+v\nsecond: %+v", art, again)
	}

	if art.HeteroSpeedup <= 1.0 {
		t.Errorf("1x T4 + 1x A100 makespan %.1f us did not beat 2x T4's %.1f us (speedup %.2fx)",
			art.MakespanHeteroUs, art.Makespan2T4Us, art.HeteroSpeedup)
	}
	if art.WorkShareRatio < 1 {
		t.Errorf("A100 ran %.2fx the T4's batches in the mixed pool, want >= 1 (EFT must favor the fast device)",
			art.WorkShareRatio)
	}
	if art.ModeledSpeedRatio <= 1 || art.ModeledSpeedRatio > art.PeakTFLOPSRatio {
		t.Errorf("modeled speed ratio %.2f outside (1, peak %.1f]", art.ModeledSpeedRatio, art.PeakTFLOPSRatio)
	}
	for _, row := range art.Rows {
		if row.Requests != int64(art.Requests) {
			t.Errorf("%s served %d requests, want %d", row.Pool, row.Requests, art.Requests)
		}
		var batches int64
		share := 0.0
		for _, d := range row.Devices {
			batches += d.Batches
			share += d.UtilizationShare
		}
		if batches != row.Batches {
			t.Errorf("%s per-device batches sum to %d, aggregate %d", row.Pool, batches, row.Batches)
		}
		if math.Abs(share-1) > 1e-9 {
			t.Errorf("%s utilization shares sum to %g, want 1", row.Pool, share)
		}
	}
}
