package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"bolt/internal/cutlass"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/serve"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// The serving experiment exercises the PR-3 concurrent serving engine:
// a seeded Poisson stream of single-sample requests is coalesced by
// the dynamic batcher into batch-bucketed runs over lazily compiled
// variants, and throughput/latency are measured on the simulated
// device clocks (one per worker) against the requests' simulated
// arrival times, so the numbers are deterministic, model what N device
// streams deliver, and reflect steady-state queueing. It emits
// BENCH_pr3.json for CI.

// servingModel builds the batch-1 source CNN the serving experiment
// feeds through the dynamic batcher: small enough that functional
// execution stays affordable inside CI, deep enough that every batch
// variant carries real templated kernels.
func servingModel() *relay.Graph {
	b := relay.NewBuilder()
	x := b.Input("image", tensor.FP16, 1, 8, 32, 32)
	c := b.Conv2D(x, b.Weight("w1", 16, 3, 3, 8), 1, 1)
	c = b.BiasAdd(c, b.Weight("b1", 16))
	c = b.Activation(c, cutlass.ActReLU)
	c = b.MaxPool(c, 2, 2, 0)
	c = b.Conv2D(c, b.Weight("w2", 32, 3, 3, 16), 2, 1)
	c = b.BiasAdd(c, b.Weight("b2", 32))
	c = b.Activation(c, cutlass.ActReLU)
	g := b.GlobalAvgPool(c)
	d := b.Dense(g, b.Weight("fc", 32, 10))
	return b.Build(b.Softmax(d))
}

// tenantCompiler returns a serving variant compiler for one source
// graph: Rebatch the source at the bucket size and run the regular
// pipeline backed by a shared in-memory tuning log, so buckets whose
// workloads overlap (and recompiles of a bucket ever seen before)
// measure nothing. Multiple tenants sharing one log model the
// server-wide tuning cache. It is the suite-device case of
// tenantCompilerOn (hetero.go).
func (s *Suite) tenantCompiler(src *relay.Graph, log *tunelog.Log) serve.CompileVariant {
	on := s.tenantCompilerOn(src, log)
	return func(batch int) (*rt.Module, error) {
		return on(nil, batch)
	}
}

// servingCompiler is tenantCompiler over the serving experiment's CNN.
func (s *Suite) servingCompiler(log *tunelog.Log) serve.CompileVariant {
	return s.tenantCompiler(servingModel(), log)
}

// servingRun is one engine configuration's measured result.
type servingRun struct {
	Workers    int           `json:"workers"`
	MaxBucket  int           `json:"max_bucket"`
	Throughput float64       `json:"throughput_imgs_per_sec"`
	P50Us      float64       `json:"p50_us"`
	P99Us      float64       `json:"p99_us"`
	Batches    map[int]int64 `json:"batches"`
}

// servingArtifact is the BENCH_pr3.json schema.
type servingArtifact struct {
	Model    string       `json:"model"`
	Requests int          `json:"requests"`
	Rows     []servingRun `json:"rows"`
	// WorkerScaling1To4 is throughput(workers=4)/throughput(workers=1)
	// at the full bucket set — the CI-enforced scaling number.
	WorkerScaling1To4 float64 `json:"worker_scaling_1_to_4"`
	// Per-run steady-state allocations of Module.Run on the pooled
	// executor: one caller vs. eight concurrent callers. Concurrency
	// must not regress allocation behavior (acceptance: within 2x).
	SingleCallerAllocsPerRun      float64 `json:"single_caller_allocs_per_run"`
	ConcurrentCallersAllocsPerRun float64 `json:"concurrent_callers_allocs_per_run"`
}

// floodEngine replays the prepared requests (with their simulated
// arrival times) against one engine configuration and returns its
// serving stats.
func (s *Suite) floodEngine(log *tunelog.Log, workers int, buckets []int, inputs []map[string]*tensor.Tensor, arrivals []float64, label string) serve.Stats {
	eng, err := serve.New(s.servingCompiler(log), serve.Options{
		Buckets:     buckets,
		Workers:     workers,
		QueueDepth:  len(inputs),
		BatchWindow: 5 * time.Millisecond,
		Trace:       s.Trace,
		TraceLabel:  label,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	if err := eng.Warm(); err != nil {
		panic(err)
	}
	chans := make([]<-chan serve.Result, len(inputs))
	for i, in := range inputs {
		ch, err := eng.InferAsyncOpts(in, serve.InferOptions{SimArrival: arrivals[i]})
		if err != nil {
			panic(err)
		}
		chans[i] = ch
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			panic(res.Err)
		}
	}
	return eng.Stats()
}

// measureRunAllocs reports steady-state allocations per Module.Run
// with the given caller count (the state pool is pre-filled so the
// measurement sees only the hot path).
func measureRunAllocs(mod *rt.Module, inputs map[string]*tensor.Tensor, callers, iters int) float64 {
	states := make([]*rt.ExecState, callers)
	for i := range states {
		states[i] = mod.AcquireState()
	}
	for _, st := range states {
		mod.ReleaseState(st)
	}
	mod.Run(inputs)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mod.Run(inputs)
			}
		}()
	}
	wg.Wait()
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(callers*iters)
}

func (s *Suite) runServing() servingArtifact {
	requests := s.ServingRequests
	inputs := make([]map[string]*tensor.Tensor, requests)
	for i := range inputs {
		in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 1, 8, 32, 32)
		in.FillRandom(int64(i+1), 1)
		inputs[i] = map[string]*tensor.Tensor{"image": in}
	}
	log := tunelog.New()
	buckets := []int{1, 2, 4, 8}
	art := servingArtifact{Model: "servenet-8x32", Requests: requests}

	// Offered load: a seeded Poisson stream whose arrival span covers
	// ~30% of the single-worker service time, so the one-worker
	// configuration is service-bound (throughput measures capacity)
	// while multi-worker latencies reflect queueing against real
	// arrival gaps instead of a flood at t=0. The bucket-8 compile here
	// also primes the shared tuning log.
	mod8, err := s.servingCompiler(log)(8)
	if err != nil {
		panic(err)
	}
	arrivals := PoissonArrivals(requests, 0.3*mod8.Time()/8, 7)

	configs := []struct {
		workers int
		buckets []int
	}{
		{1, buckets},
		{2, buckets},
		{4, buckets},
		{4, []int{1}}, // batching ablation: same streams, no coalescing
	}
	var base, four float64
	for _, c := range configs {
		label := fmt.Sprintf("serving %dw b%d", c.workers, c.buckets[len(c.buckets)-1])
		st := s.floodEngine(log, c.workers, c.buckets, inputs, arrivals, label)
		row := servingRun{
			Workers:    c.workers,
			MaxBucket:  c.buckets[len(c.buckets)-1],
			Throughput: st.Throughput(),
			P50Us:      st.LatencyPercentile(50) * 1e6,
			P99Us:      st.LatencyPercentile(99) * 1e6,
			Batches:    st.BatchSizes,
		}
		art.Rows = append(art.Rows, row)
		if c.workers == 1 && len(c.buckets) == len(buckets) {
			base = row.Throughput
		}
		if c.workers == 4 && len(c.buckets) == len(buckets) {
			four = row.Throughput
		}
	}
	if base > 0 {
		art.WorkerScaling1To4 = four / base
	}

	// Steady-state allocation accounting on the batch-1 variant.
	mod, err := s.servingCompiler(log)(1)
	if err != nil {
		panic(err)
	}
	art.SingleCallerAllocsPerRun = measureRunAllocs(mod, inputs[0], 1, 16)
	art.ConcurrentCallersAllocsPerRun = measureRunAllocs(mod, inputs[0], 8, 8)
	return art
}

// Serving reproduces the serving-engine experiment: dynamic batching
// and worker scaling on the simulated device streams. When
// Suite.ServingArtifact is set, the raw numbers are also written there
// as JSON (boltbench points it at BENCH_pr3.json).
func (s *Suite) Serving() *Table {
	art := s.runServing()
	t := &Table{
		ID:      "serving",
		Title:   fmt.Sprintf("Serving engine: dynamic batching, %d single-sample requests (simulated device time)", art.Requests),
		Columns: []string{"workers", "buckets", "imgs/s", "p50 us", "p99 us", "batches run", "vs 1 worker"},
		Notes: []string{
			"requests arrive as a seeded Poisson process on the sim clock; latency = completion - arrival (steady-state queueing)",
			fmt.Sprintf("worker scaling 1->4: %.2fx (CI floor: 1.5x)", art.WorkerScaling1To4),
			fmt.Sprintf("steady-state allocs/run: %.0f single caller, %.0f with 8 concurrent callers",
				art.SingleCallerAllocsPerRun, art.ConcurrentCallersAllocsPerRun),
		},
	}
	var base float64
	for _, r := range art.Rows {
		if r.Workers == 1 && r.MaxBucket == 8 {
			base = r.Throughput
		}
	}
	for _, r := range art.Rows {
		speedup := "-"
		if base > 0 {
			speedup = f2(r.Throughput / base)
		}
		t.AddRow(fmt.Sprint(r.Workers), fmt.Sprintf("1..%d", r.MaxBucket), i0(r.Throughput),
			f1(r.P50Us), f1(r.P99Us), fmt.Sprint(r.Batches), speedup)
	}
	if s.ServingArtifact != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(s.ServingArtifact, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
	}
	return t
}
