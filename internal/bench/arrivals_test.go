package bench

import (
	"math"
	"testing"
)

// stats returns mean and squared coefficient of variation of the
// interarrival gaps of an arrival-time sequence.
func gapStats(arrivals []float64) (mean, cv2 float64) {
	prev := 0.0
	gaps := make([]float64, len(arrivals))
	for i, a := range arrivals {
		gaps[i] = a - prev
		prev = a
	}
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	varsum := 0.0
	for _, g := range gaps {
		d := g - mean
		varsum += d * d
	}
	return mean, varsum / float64(len(gaps)) / (mean * mean)
}

func TestPoissonArrivalsDeterministicAndExponential(t *testing.T) {
	a := PoissonArrivals(5000, 0.5, 42)
	b := PoissonArrivals(5000, 0.5, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
	if c := PoissonArrivals(100, 0.5, 43); c[0] == a[0] {
		t.Error("different seeds produced the same first arrival")
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
	}
	mean, cv2 := gapStats(a)
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("mean interarrival %g, want ~0.5", mean)
	}
	// Exponential gaps have CV^2 = 1.
	if cv2 < 0.8 || cv2 > 1.2 {
		t.Errorf("Poisson gap CV^2 = %g, want ~1", cv2)
	}
}

func TestBurstyArrivalsAreBurstier(t *testing.T) {
	opts := BurstyOptions{
		BurstInterarrival: 0.05,
		IdleInterarrival:  2.0,
		BurstDwell:        5.0,
		IdleDwell:         5.0,
	}
	a := BurstyArrivals(5000, opts, 42)
	b := BurstyArrivals(5000, opts, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
	}
	// The on/off mixture must be overdispersed relative to any Poisson
	// stream: squared coefficient of variation of the gaps well above 1.
	_, cv2 := gapStats(a)
	if cv2 < 1.5 {
		t.Errorf("bursty gap CV^2 = %g, want > 1.5 (Poisson is ~1)", cv2)
	}
	// Both phases must actually occur: some gaps at burst scale, some
	// at idle scale.
	short, long := 0, 0
	prev := 0.0
	for _, x := range a {
		g := x - prev
		prev = x
		if g < 0.2 {
			short++
		}
		if g > 0.5 {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("phases missing: %d burst-scale gaps, %d idle-scale gaps", short, long)
	}
}
