package bench

import (
	"bolt/internal/ansor"
	"bolt/internal/cublaslike"
	"bolt/internal/gpu"
	"bolt/internal/obs"
	"bolt/internal/profiler"
)

// Suite holds the shared state for running the paper's experiments on
// one device.
type Suite struct {
	Dev *gpu.Device
	Lib *cublaslike.Library

	// MicroTrials is the Ansor budget per microbenchmark workload (the
	// paper tunes 2000 trials per workload for Figures 1 and 8).
	MicroTrials int
	// E2ETrialsPerTask is the Ansor budget per task for the end-to-end
	// study (the paper's "recommended 900 x the number of tasks").
	E2ETrialsPerTask int
	// Batch is the inference batch size (32 throughout the paper).
	Batch int
	// ServingRequests is the flood size for the serving experiment.
	ServingRequests int
	// ServingArtifact, when set, is where the serving experiment writes
	// its JSON artifact (boltbench points it at BENCH_pr3.json).
	ServingArtifact string
	// MultiModelRequests is the per-tenant flood size for the
	// multi-tenant serving experiment.
	MultiModelRequests int
	// MultiModelArtifact, when set, is where the multimodel experiment
	// writes its JSON artifact (boltbench points it at BENCH_pr4.json).
	MultiModelArtifact string
	// HeteroRequests is the Poisson-stream size for the heterogeneous
	// device-pool experiment (rounded down to full bucket-8 batches).
	HeteroRequests int
	// HeteroArtifact, when set, is where the hetero experiment writes
	// its JSON artifact (boltbench points it at BENCH_pr5.json).
	HeteroArtifact string
	// PaddingRequests is the Poisson-stream size for the padded-dispatch
	// / continuous-batching ablation (rounded down to a multiple of the
	// largest bucket so the strict baseline is deterministic).
	PaddingRequests int
	// PaddingArtifact, when set, is where the padding experiment writes
	// its JSON artifact (boltbench points it at BENCH_pr6.json).
	PaddingArtifact string
	// ColdstartArtifact, when set, is where the cost-model-guided
	// cold-compile experiment writes its JSON artifact (boltbench points
	// it at BENCH_pr7.json).
	ColdstartArtifact string
	// PrecisionRequests is the per-arm Poisson-stream size for the
	// mixed-precision serving experiment (rounded down to full bucket-8
	// batches).
	PrecisionRequests int
	// PrecisionArtifact, when set, is where the precision experiment
	// writes its JSON artifact (boltbench points it at BENCH_pr8.json).
	PrecisionArtifact string
	// FleetRequests is the Poisson-stream size for the replicated-fleet
	// experiment (rounded down to full bucket-8 batches).
	FleetRequests int
	// FleetArtifact, when set, is where the fleet experiment writes its
	// JSON artifact (boltbench points it at BENCH_pr9.json).
	FleetArtifact string
	// Trace, when set, records the serving experiments'
	// request-lifecycle spans — every serving arm's server is handed
	// this tracer, with the arm's name as its process label (boltbench
	// wires -trace here). Tracing never changes the measured numbers:
	// artifacts are bit-identical with and without it.
	Trace *obs.Tracer
	// StallTrace, when set, records the fleet experiment's
	// worker-stall arm separately, so the hedged-recovery span tree
	// (route/hedge wrapping the replicas' request spans) is inspectable
	// without the healthy arm's traffic interleaved (boltbench derives
	// its output path from -trace).
	StallTrace *obs.Tracer

	seed     int64
	e2eCache []e2eResult
}

// NewSuite builds a full-fidelity suite (paper trial budgets).
func NewSuite(dev *gpu.Device) *Suite {
	return &Suite{
		Dev: dev, Lib: cublaslike.New(dev),
		MicroTrials: 2000, E2ETrialsPerTask: 900, Batch: 32,
		ServingRequests: 96, MultiModelRequests: 64, HeteroRequests: 128,
		PaddingRequests: 128, PrecisionRequests: 64, FleetRequests: 96,
		seed: 1,
	}
}

// NewQuickSuite reduces tuning budgets so the whole suite runs in
// seconds (for tests and -quick runs). Reported tuning times are
// scaled back to the paper's budgets (see Figure10b notes).
func NewQuickSuite(dev *gpu.Device) *Suite {
	s := NewSuite(dev)
	s.MicroTrials = 192
	s.E2ETrialsPerTask = 96
	s.ServingRequests = 48
	s.MultiModelRequests = 32
	s.HeteroRequests = 48
	s.PaddingRequests = 48
	s.PrecisionRequests = 32
	s.FleetRequests = 48
	return s
}

// newProfiler builds a Bolt profiler with an attached tuning clock.
func (s *Suite) newProfiler() (*profiler.Profiler, *gpu.Clock) {
	return newProfilerOn(s.Dev)
}

// newProfilerOn is newProfiler for an explicit device (the
// heterogeneous experiments profile per device class). Noise-free, so
// every suite experiment is deterministic.
func newProfilerOn(dev *gpu.Device) (*profiler.Profiler, *gpu.Clock) {
	var clock gpu.Clock
	p := profiler.New(dev, &clock)
	p.Measure.NoiseStdDev = 0
	return p, &clock
}

// newAnsor builds a baseline tuner with an attached tuning clock.
func (s *Suite) newAnsor() (*ansor.Tuner, *gpu.Clock) {
	var clock gpu.Clock
	s.seed++
	return ansor.NewTuner(s.Dev, &clock, s.seed), &clock
}

// All runs every experiment in paper order.
func (s *Suite) All() []*Table {
	return []*Table{
		s.Figure1(),
		s.Figure8a(),
		s.Figure8b(),
		s.Figure9a(),
		s.Figure9b(),
		s.Table1(),
		s.Table2(),
		s.Table3(),
		s.Figure10a(),
		s.Figure10b(),
		s.Table4(),
		s.Table5(),
		s.Table6(),
	}
}

// ByID returns the experiment regenerator for an id like "fig8a".
func (s *Suite) ByID(id string) func() *Table {
	m := map[string]func() *Table{
		"fig1": s.Figure1, "fig8a": s.Figure8a, "fig8b": s.Figure8b,
		"fig9a": s.Figure9a, "fig9b": s.Figure9b,
		"tab1": s.Table1, "tab2": s.Table2, "tab3": s.Table3,
		"fig10a": s.Figure10a, "fig10b": s.Figure10b,
		"tab4": s.Table4, "tab5": s.Table5, "tab6": s.Table6,
	}
	return m[id]
}

// IDs lists experiment ids in paper order.
func IDs() []string {
	return []string{"fig1", "fig8a", "fig8b", "fig9a", "fig9b",
		"tab1", "tab2", "tab3", "fig10a", "fig10b", "tab4", "tab5", "tab6"}
}
