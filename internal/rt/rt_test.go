package rt

import (
	"math"
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

func TestBiasAddRunLayouts(t *testing.T) {
	bias := tensor.FromData(tensor.FP32, []float32{1, 2}, 2)

	// NCHW: channel is dim 1.
	x := tensor.NewWithLayout(tensor.FP32, tensor.LayoutNCHW, 1, 2, 2, 2)
	out := BiasAddRun(x, bias, tensor.LayoutNCHW)
	if out.At(0, 0, 1, 1) != 1 || out.At(0, 1, 0, 0) != 2 {
		t.Error("NCHW bias broadcast wrong")
	}
	// NHWC: channel is the trailing dim.
	x2 := tensor.NewWithLayout(tensor.FP32, tensor.LayoutNHWC, 1, 2, 2, 2)
	out2 := BiasAddRun(x2, bias, tensor.LayoutNHWC)
	if out2.At(0, 1, 1, 0) != 1 || out2.At(0, 0, 0, 1) != 2 {
		t.Error("NHWC bias broadcast wrong")
	}
	// 2-D: feature is the trailing dim.
	x3 := tensor.New(tensor.FP32, 3, 2)
	out3 := BiasAddRun(x3, bias, tensor.LayoutRowMajor)
	if out3.At(2, 0) != 1 || out3.At(0, 1) != 2 {
		t.Error("2-D bias broadcast wrong")
	}
}

func TestActivationAndAddRun(t *testing.T) {
	x := tensor.FromData(tensor.FP32, []float32{-1, 0, 2}, 3)
	relu := ActivationRun(x, cutlass.ActReLU)
	if relu.At(0) != 0 || relu.At(2) != 2 {
		t.Error("ReLU wrong")
	}
	y := tensor.FromData(tensor.FP32, []float32{10, 20, 30}, 3)
	sum := AddRun(x, y)
	if sum.At(0) != 9 || sum.At(2) != 32 {
		t.Error("Add wrong")
	}
	// Original tensors untouched.
	if x.At(0) != -1 {
		t.Error("ActivationRun/AddRun must not mutate inputs")
	}
}

func TestBatchNormRun(t *testing.T) {
	// One channel with gamma=2, beta=1, mean=3, var=4 (eps=0):
	// y = (x-3)/2*2 + 1 = x - 2.
	x := tensor.NewWithLayout(tensor.FP32, tensor.LayoutNCHW, 1, 1, 2, 2)
	x.Fill(5)
	one := func(v float32) *tensor.Tensor { return tensor.FromData(tensor.FP32, []float32{v}, 1) }
	out := BatchNormRun(x, one(2), one(1), one(3), one(4), 0, tensor.LayoutNCHW)
	if out.At(0, 0, 0, 0) != 3 {
		t.Errorf("BN output %g, want 3", out.At(0, 0, 0, 0))
	}
}

func TestMaxPoolRun(t *testing.T) {
	x := tensor.NewWithLayout(tensor.FP32, tensor.LayoutNHWC, 1, 4, 4, 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			x.Set(float32(i*4+j), 0, i, j, 0)
		}
	}
	out := MaxPoolRun(x, relay.PoolAttrs{Kernel: 2, Stride: 2}, tensor.LayoutNHWC)
	if !out.Shape().Equal(tensor.Shape{1, 2, 2, 1}) {
		t.Fatalf("pool shape %v", out.Shape())
	}
	// Max of each 2x2 block.
	want := [][]float32{{5, 7}, {13, 15}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if out.At(0, i, j, 0) != want[i][j] {
				t.Errorf("pool[%d][%d] = %g, want %g", i, j, out.At(0, i, j, 0), want[i][j])
			}
		}
	}
	// Padded pooling must ignore out-of-bounds (-inf identity).
	padded := MaxPoolRun(x, relay.PoolAttrs{Kernel: 3, Stride: 2, Pad: 1}, tensor.LayoutNHWC)
	if padded.At(0, 0, 0, 0) != 5 {
		t.Errorf("padded pool corner %g, want 5", padded.At(0, 0, 0, 0))
	}
	// NCHW path.
	xc := tensor.ToNCHW(x)
	outc := MaxPoolRun(xc, relay.PoolAttrs{Kernel: 2, Stride: 2}, tensor.LayoutNCHW)
	if outc.At(0, 0, 1, 1) != 15 {
		t.Error("NCHW pool wrong")
	}
}

func TestGlobalAvgPoolRun(t *testing.T) {
	x := tensor.NewWithLayout(tensor.FP32, tensor.LayoutNHWC, 2, 2, 2, 3)
	x.Fill(4)
	out := GlobalAvgPoolRun(x, tensor.LayoutNHWC)
	if !out.Shape().Equal(tensor.Shape{2, 3}) {
		t.Fatalf("gap shape %v", out.Shape())
	}
	if out.At(1, 2) != 4 {
		t.Error("gap of constant tensor must be the constant")
	}
}

func TestSoftmaxRun(t *testing.T) {
	x := tensor.FromData(tensor.FP32, []float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	out := SoftmaxRun(x)
	// Rows sum to 1; huge values must not overflow (stability).
	for r := 0; r < 2; r++ {
		sum := float32(0)
		for c := 0; c < 3; c++ {
			v := out.At(r, c)
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("softmax not numerically stable")
			}
			sum += v
		}
		if math.Abs(float64(sum)-1) > 1e-3 {
			t.Errorf("row %d sums to %g", r, sum)
		}
	}
	if !(out.At(0, 2) > out.At(0, 1) && out.At(0, 1) > out.At(0, 0)) {
		t.Error("softmax must be monotone in logits")
	}
}

func TestFlattenRun(t *testing.T) {
	x := tensor.New(tensor.FP16, 2, 3, 4)
	out := FlattenRun(x)
	if !out.Shape().Equal(tensor.Shape{2, 12}) {
		t.Errorf("flatten shape %v", out.Shape())
	}
}

func TestDescsAreMemoryBound(t *testing.T) {
	d := gpu.T4()
	for _, desc := range []gpu.KernelDesc{
		ElementwiseLikeDesc("e", 1<<20, 2, 1, tensor.FP16),
		PoolDesc("p", 1<<18, 3, tensor.FP16),
		PadDesc(1<<20, (1<<20)+4096, tensor.FP16),
	} {
		bd := d.Breakdown(desc)
		if bd.Memory <= bd.Compute {
			t.Errorf("%s should be memory bound: %+v", desc.Name, bd)
		}
		if bd.Total <= 0 {
			t.Errorf("%s has non-positive time", desc.Name)
		}
	}
}

func TestModuleAccounting(t *testing.T) {
	d := gpu.T4()
	n1 := &relay.Node{ID: 0, Op: relay.OpInput, Name: "x"}
	n2 := &relay.Node{ID: 1, Op: relay.OpActivation, Inputs: []*relay.Node{n1}}
	g := &relay.Graph{Nodes: []*relay.Node{n1, n2}, Inputs: []*relay.Node{n1}, Output: n2}
	in := tensor.FromData(tensor.FP32, []float32{-2, 3}, 2)
	m := &Module{
		Graph:  g,
		Device: d,
		Kernels: []Kernel{
			{Name: "in", Node: n1, Slot: 0, Launches: 0,
				Exec: func(env *Env, dst *tensor.Tensor) *tensor.Tensor { return env.Input("x") }},
			{Name: "act", Node: n2, Slot: 1, Launches: 1,
				Desc: ElementwiseLikeDesc("act", 2, 1, 1, tensor.FP32),
				Exec: func(env *Env, dst *tensor.Tensor) *tensor.Tensor {
					return ActivationInto(dst, env.Value(0), cutlass.ActReLU)
				}},
		},
	}
	out := m.Run(map[string]*tensor.Tensor{"x": in})
	if out.At(0) != 0 || out.At(1) != 3 {
		t.Error("module execution wrong")
	}
	if m.LaunchCount() != 1 {
		t.Errorf("launches = %d", m.LaunchCount())
	}
	if m.Time() != d.KernelTime(m.Kernels[1].Desc) {
		t.Error("Time must sum only launched kernels")
	}
	if m.Throughput(2) != 2/m.Time() {
		t.Error("Throughput wrong")
	}
	rows := m.Report()
	if len(rows) != 1 || rows[0].Percent != 100 {
		t.Errorf("report wrong: %+v", rows)
	}
}

// TestModuleRunRowsStripsPadding pins the padded-execution contract:
// RunRows on a zero-padded batch returns only the real rows, and those
// rows are bit-identical to running the same inputs unpadded — the
// runtime's operators are row-independent along the batch dim.
func TestModuleRunRowsStripsPadding(t *testing.T) {
	d := gpu.T4()
	n1 := &relay.Node{ID: 0, Op: relay.OpInput, Name: "x", Shape: tensor.Shape{4, 2}, DType: tensor.FP32}
	n2 := &relay.Node{ID: 1, Op: relay.OpActivation, Inputs: []*relay.Node{n1}, Shape: tensor.Shape{4, 2}, DType: tensor.FP32}
	g := &relay.Graph{Nodes: []*relay.Node{n1, n2}, Inputs: []*relay.Node{n1}, Output: n2}
	m := &Module{
		Graph:  g,
		Device: d,
		Kernels: []Kernel{
			{Name: "in", Node: n1, Slot: 0,
				Exec: func(env *Env, dst *tensor.Tensor) *tensor.Tensor { return env.Input("x") }},
			{Name: "act", Node: n2, Slot: 1, Launches: 1,
				Desc: ElementwiseLikeDesc("act", 8, 1, 1, tensor.FP32),
				Exec: func(env *Env, dst *tensor.Tensor) *tensor.Tensor {
					return ActivationInto(dst, env.Value(0), cutlass.ActReLU)
				}},
		},
	}
	real2 := tensor.FromData(tensor.FP32, []float32{-2, 3, 5, -7}, 2, 2)
	padded := tensor.PadBatch(real2, 4)
	out := m.RunRows(map[string]*tensor.Tensor{"x": padded}, 2)
	if !out.Shape().Equal(tensor.Shape{2, 2}) {
		t.Fatalf("RunRows shape %v, want (2, 2)", out.Shape())
	}
	oracle := m.RunUnplanned(map[string]*tensor.Tensor{"x": padded})
	for i := 0; i < 4; i++ {
		if out.Data()[i] != oracle.Data()[i] {
			t.Errorf("real row element %d = %g, want %g", i, out.Data()[i], oracle.Data()[i])
		}
	}
	want := []float32{0, 3, 5, 0}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("out[%d] = %g, want %g", i, out.Data()[i], v)
		}
	}
}

func TestEnvPanicsOnMissing(t *testing.T) {
	env := NewEnv(0, map[string]*tensor.Tensor{})
	defer func() {
		if recover() == nil {
			t.Error("missing input should panic")
		}
	}()
	env.Input("nope")
}

func TestMemoryReport(t *testing.T) {
	d := gpu.T4()
	w := tensor.New(tensor.FP16, 8, 16)
	c := &relay.Node{ID: 0, Op: relay.OpConstant, Shape: w.Shape(), DType: tensor.FP16, Value: w}
	in := &relay.Node{ID: 1, Op: relay.OpInput, Name: "x", Shape: tensor.Shape{4, 8}, DType: tensor.FP16}
	dn := &relay.Node{ID: 2, Op: relay.OpDense, Inputs: []*relay.Node{in, c}, Shape: tensor.Shape{4, 16}, DType: tensor.FP16}
	g := &relay.Graph{Nodes: []*relay.Node{c, in, dn}, Inputs: []*relay.Node{in}, Output: dn}
	m := &Module{Graph: g, Device: d}
	rep := m.Memory()
	if rep.ParamBytes != 8*16*2 {
		t.Errorf("param bytes %d, want %d", rep.ParamBytes, 8*16*2)
	}
	if rep.PeakActivationBytes != 4*16*2 {
		t.Errorf("peak activation %d, want %d", rep.PeakActivationBytes, 4*16*2)
	}
}
