package rt

import (
	"fmt"
	"math"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

// The functions in this file implement the fallback ("TVM") operators:
// functional semantics plus a priced kernel descriptor. They are
// deliberately simple memory-bound SIMT kernels — exactly the ops BYOC
// leaves outside the Bolt subgraph.

// ElementwiseLikeDesc prices a memory-bound elementwise kernel over
// `elems` elements with `streams` tensor operands (reads) and one
// write.
func ElementwiseLikeDesc(name string, elems, streams int, flopsPer float64, dt tensor.DType) gpu.KernelDesc {
	threads := 256
	blocks := (elems + threads*4 - 1) / (threads * 4)
	if blocks == 0 {
		blocks = 1
	}
	return gpu.KernelDesc{
		Name:            name,
		GridBlocks:      blocks,
		ThreadsPerBlock: threads,
		RegsPerThread:   32,
		FLOPs:           flopsPer * float64(elems),
		GlobalLoadB:     float64(streams * elems * dt.Size()),
		GlobalStoreB:    float64(elems * dt.Size()),
		OpClass:         gpu.OpClassSIMT,
		DType:           dt,
		AlignmentElems:  8,
		IssueEff:        0.85,
		MemEff:          0.95,
	}
}

// BiasAddRun broadcasts bias over the trailing (channel) dimension.
func BiasAddRun(x, bias *tensor.Tensor, layout tensor.Layout) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	bd := bias.Data()
	c := len(bd)
	s := x.Shape()
	if len(s) == 4 && layout == tensor.LayoutNCHW {
		n, ch, h, w := s[0], s[1], s[2], s[3]
		for in := 0; in < n; in++ {
			for ic := 0; ic < ch; ic++ {
				base := (in*ch + ic) * h * w
				for i := 0; i < h*w; i++ {
					d[base+i] += bd[ic]
				}
			}
		}
	} else {
		for i := range d {
			d[i] += bd[i%c]
		}
	}
	out.Quantize()
	return out
}

// ActivationRun applies the nonlinearity elementwise.
func ActivationRun(x *tensor.Tensor, act cutlass.Activation) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = act.Apply(v)
	}
	out.Quantize()
	return out
}

// AddRun is elementwise addition.
func AddRun(a, b *tensor.Tensor) *tensor.Tensor {
	out := a.Clone()
	d := out.Data()
	bd := b.Data()
	for i := range d {
		d[i] += bd[i]
	}
	out.Quantize()
	return out
}

// BatchNormRun applies inference-mode BN over the channel axis.
func BatchNormRun(x, gamma, beta, mean, variance *tensor.Tensor, eps float64, layout tensor.Layout) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	c := gamma.NumElements()
	scale := make([]float32, c)
	shift := make([]float32, c)
	for i := 0; i < c; i++ {
		s := gamma.Data()[i] / float32(math.Sqrt(float64(variance.Data()[i])+eps))
		scale[i] = s
		shift[i] = beta.Data()[i] - mean.Data()[i]*s
	}
	s := x.Shape()
	if len(s) == 4 && layout == tensor.LayoutNCHW {
		n, ch, h, w := s[0], s[1], s[2], s[3]
		for in := 0; in < n; in++ {
			for ic := 0; ic < ch; ic++ {
				base := (in*ch + ic) * h * w
				for i := 0; i < h*w; i++ {
					d[base+i] = d[base+i]*scale[ic] + shift[ic]
				}
			}
		}
	} else {
		for i := range d {
			d[i] = d[i]*scale[i%c] + shift[i%c]
		}
	}
	out.Quantize()
	return out
}

// MaxPoolRun computes 2-D max pooling for NHWC or NCHW tensors.
func MaxPoolRun(x *tensor.Tensor, p relay.PoolAttrs, layout tensor.Layout) *tensor.Tensor {
	s := x.Shape()
	var n, h, w, c int
	if layout == tensor.LayoutNCHW {
		n, c, h, w = s[0], s[1], s[2], s[3]
	} else {
		n, h, w, c = s[0], s[1], s[2], s[3]
	}
	oh := (h+2*p.Pad-p.Kernel)/p.Stride + 1
	ow := (w+2*p.Pad-p.Kernel)/p.Stride + 1
	var out *tensor.Tensor
	get := func(in, ih, iw, ic int) float32 {
		if layout == tensor.LayoutNCHW {
			return x.At(in, ic, ih, iw)
		}
		return x.At(in, ih, iw, ic)
	}
	if layout == tensor.LayoutNCHW {
		out = tensor.NewWithLayout(x.DType(), layout, n, c, oh, ow)
	} else {
		out = tensor.NewWithLayout(x.DType(), layout, n, oh, ow, c)
	}
	neg := float32(math.Inf(-1))
	for in := 0; in < n; in++ {
		for io := 0; io < oh; io++ {
			for jo := 0; jo < ow; jo++ {
				for ic := 0; ic < c; ic++ {
					best := neg
					for kh := 0; kh < p.Kernel; kh++ {
						ih := io*p.Stride - p.Pad + kh
						if ih < 0 || ih >= h {
							continue
						}
						for kw := 0; kw < p.Kernel; kw++ {
							iw := jo*p.Stride - p.Pad + kw
							if iw < 0 || iw >= w {
								continue
							}
							if v := get(in, ih, iw, ic); v > best {
								best = v
							}
						}
					}
					if layout == tensor.LayoutNCHW {
						out.Set(best, in, ic, io, jo)
					} else {
						out.Set(best, in, io, jo, ic)
					}
				}
			}
		}
	}
	return out
}

// GlobalAvgPoolRun averages spatial dims to (N, C).
func GlobalAvgPoolRun(x *tensor.Tensor, layout tensor.Layout) *tensor.Tensor {
	s := x.Shape()
	var n, h, w, c int
	if layout == tensor.LayoutNCHW {
		n, c, h, w = s[0], s[1], s[2], s[3]
	} else {
		n, h, w, c = s[0], s[1], s[2], s[3]
	}
	out := tensor.New(x.DType(), n, c)
	inv := 1 / float32(h*w)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			sum := float32(0)
			for ih := 0; ih < h; ih++ {
				for iw := 0; iw < w; iw++ {
					if layout == tensor.LayoutNCHW {
						sum += x.At(in, ic, ih, iw)
					} else {
						sum += x.At(in, ih, iw, ic)
					}
				}
			}
			out.Set(sum*inv, in, ic)
		}
	}
	return out
}

// SoftmaxRun applies a numerically stable row softmax over the last
// dimension.
func SoftmaxRun(x *tensor.Tensor) *tensor.Tensor {
	s := x.Shape()
	cols := s[len(s)-1]
	rows := x.NumElements() / cols
	out := x.Clone()
	d := out.Data()
	for r := 0; r < rows; r++ {
		row := d[r*cols : (r+1)*cols]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(float64(v - max))
			row[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range row {
			row[i] *= inv
		}
	}
	out.Quantize()
	return out
}

// FlattenRun reshapes to (N, rest).
func FlattenRun(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape()[0]
	return tensor.Reshape(x, n, x.NumElements()/n)
}

// PoolDesc prices a pooling kernel: each output element reads kernel^2
// inputs.
func PoolDesc(name string, outElems, kernel int, dt tensor.DType) gpu.KernelDesc {
	d := ElementwiseLikeDesc(name, outElems, 1, float64(kernel*kernel), dt)
	d.GlobalLoadB = float64(outElems * kernel * kernel * dt.Size())
	return d
}

// PadDesc prices the channel-padding copy kernel (Table 3's overhead:
// read the unpadded activation, write the padded one).
func PadDesc(inElems, outElems int, dt tensor.DType) gpu.KernelDesc {
	d := ElementwiseLikeDesc("pad_channels", outElems, 1, 0, dt)
	d.GlobalLoadB = float64(inElems * dt.Size())
	d.GlobalStoreB = float64(outElems * dt.Size())
	// The destination rows are aligned (that is the point); the
	// unaligned source rows cost some coalescing efficiency.
	d.AlignmentElems = 8
	d.MemEff = 0.8
	return d
}

func opName(n *relay.Node) string { return fmt.Sprintf("%s_%d", n.Op, n.ID) }
