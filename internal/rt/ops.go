package rt

import (
	"fmt"
	"math"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

// The functions in this file implement the fallback ("TVM") operators:
// functional semantics plus a priced kernel descriptor. They are
// deliberately simple memory-bound SIMT kernels — exactly the ops BYOC
// leaves outside the Bolt subgraph.
//
// Every operator has a destination-writing form (XxxInto) used by the
// planned executor: the result is written into dst, a pre-planned
// arena view, so the serving hot path performs no per-op allocation.
// A nil dst allocates, which is the clone-based reference semantics.
// The elementwise kernels (bias-add, activation, add, batch-norm,
// softmax) are single-pass and index-aligned, so dst may alias the
// first operand's buffer — the in-place case the memory planner emits
// when that operand dies at the op.

// ElementwiseLikeDesc prices a memory-bound elementwise kernel over
// `elems` elements with `streams` tensor operands (reads) and one
// write.
func ElementwiseLikeDesc(name string, elems, streams int, flopsPer float64, dt tensor.DType) gpu.KernelDesc {
	threads := 256
	blocks := (elems + threads*4 - 1) / (threads * 4)
	if blocks == 0 {
		blocks = 1
	}
	return gpu.KernelDesc{
		Name:            name,
		GridBlocks:      blocks,
		ThreadsPerBlock: threads,
		RegsPerThread:   32,
		FLOPs:           flopsPer * float64(elems),
		GlobalLoadB:     float64(streams * elems * dt.Size()),
		GlobalStoreB:    float64(elems * dt.Size()),
		OpClass:         gpu.OpClassSIMT,
		DType:           dt,
		AlignmentElems:  8,
		IssueEff:        0.85,
		MemEff:          0.95,
	}
}

// likeInput returns dst, or a fresh tensor shaped like x when dst is
// nil.
func likeInput(dst, x *tensor.Tensor) *tensor.Tensor {
	if dst != nil {
		return dst
	}
	return tensor.NewWithLayout(x.DType(), x.Layout(), x.Shape()...)
}

// BiasAddRun broadcasts bias over the trailing (channel) dimension.
func BiasAddRun(x, bias *tensor.Tensor, layout tensor.Layout) *tensor.Tensor {
	return BiasAddInto(nil, x, bias, layout)
}

// BiasAddInto is the destination form of BiasAddRun; dst may alias x.
func BiasAddInto(dst, x, bias *tensor.Tensor, layout tensor.Layout) *tensor.Tensor {
	out := likeInput(dst, x)
	d := out.Data()
	xd := x.Data()
	bd := bias.Data()
	c := len(bd)
	s := x.Shape()
	if len(s) == 4 && layout == tensor.LayoutNCHW {
		n, ch, h, w := s[0], s[1], s[2], s[3]
		for in := 0; in < n; in++ {
			for ic := 0; ic < ch; ic++ {
				base := (in*ch + ic) * h * w
				b := bd[ic]
				for i := 0; i < h*w; i++ {
					d[base+i] = xd[base+i] + b
				}
			}
		}
	} else {
		for i := range d {
			d[i] = xd[i] + bd[i%c]
		}
	}
	out.Quantize()
	return out
}

// ActivationRun applies the nonlinearity elementwise.
func ActivationRun(x *tensor.Tensor, act cutlass.Activation) *tensor.Tensor {
	return ActivationInto(nil, x, act)
}

// ActivationInto is the destination form of ActivationRun; dst may
// alias x.
func ActivationInto(dst, x *tensor.Tensor, act cutlass.Activation) *tensor.Tensor {
	out := likeInput(dst, x)
	d := out.Data()
	for i, v := range x.Data() {
		d[i] = act.Apply(v)
	}
	out.Quantize()
	return out
}

// AddRun is elementwise addition.
func AddRun(a, b *tensor.Tensor) *tensor.Tensor {
	return AddInto(nil, a, b)
}

// AddInto is the destination form of AddRun; dst may alias a or b.
func AddInto(dst, a, b *tensor.Tensor) *tensor.Tensor {
	out := likeInput(dst, a)
	d := out.Data()
	ad, bd := a.Data(), b.Data()
	for i := range d {
		d[i] = ad[i] + bd[i]
	}
	out.Quantize()
	return out
}

// BatchNormRun applies inference-mode BN over the channel axis.
func BatchNormRun(x, gamma, beta, mean, variance *tensor.Tensor, eps float64, layout tensor.Layout) *tensor.Tensor {
	return BatchNormInto(nil, x, gamma, beta, mean, variance, eps, layout)
}

// BatchNormInto is the destination form of BatchNormRun; dst may alias
// x.
func BatchNormInto(dst, x, gamma, beta, mean, variance *tensor.Tensor, eps float64, layout tensor.Layout) *tensor.Tensor {
	out := likeInput(dst, x)
	d := out.Data()
	xd := x.Data()
	c := gamma.NumElements()
	scale := make([]float32, c)
	shift := make([]float32, c)
	for i := 0; i < c; i++ {
		s := gamma.Data()[i] / float32(math.Sqrt(float64(variance.Data()[i])+eps))
		scale[i] = s
		shift[i] = beta.Data()[i] - mean.Data()[i]*s
	}
	s := x.Shape()
	if len(s) == 4 && layout == tensor.LayoutNCHW {
		n, ch, h, w := s[0], s[1], s[2], s[3]
		for in := 0; in < n; in++ {
			for ic := 0; ic < ch; ic++ {
				base := (in*ch + ic) * h * w
				sc, sh := scale[ic], shift[ic]
				for i := 0; i < h*w; i++ {
					d[base+i] = xd[base+i]*sc + sh
				}
			}
		}
	} else {
		for i := range d {
			d[i] = xd[i]*scale[i%c] + shift[i%c]
		}
	}
	out.Quantize()
	return out
}

// MaxPoolRun computes 2-D max pooling for NHWC or NCHW tensors.
func MaxPoolRun(x *tensor.Tensor, p relay.PoolAttrs, layout tensor.Layout) *tensor.Tensor {
	return MaxPoolInto(nil, x, p, layout)
}

// MaxPoolInto is the destination form of MaxPoolRun; dst must not
// alias x. The inner loops index the raw data slices directly — no
// per-element bounds-checked At/Set calls on the hot path.
func MaxPoolInto(dst, x *tensor.Tensor, p relay.PoolAttrs, layout tensor.Layout) *tensor.Tensor {
	s := x.Shape()
	var n, h, w, c int
	if layout == tensor.LayoutNCHW {
		n, c, h, w = s[0], s[1], s[2], s[3]
	} else {
		n, h, w, c = s[0], s[1], s[2], s[3]
	}
	oh := (h+2*p.Pad-p.Kernel)/p.Stride + 1
	ow := (w+2*p.Pad-p.Kernel)/p.Stride + 1
	out := dst
	if out == nil {
		if layout == tensor.LayoutNCHW {
			out = tensor.NewWithLayout(x.DType(), layout, n, c, oh, ow)
		} else {
			out = tensor.NewWithLayout(x.DType(), layout, n, oh, ow, c)
		}
	}
	xd, od := x.Data(), out.Data()
	neg := float32(math.Inf(-1))
	if layout == tensor.LayoutNCHW {
		for in := 0; in < n; in++ {
			for ic := 0; ic < c; ic++ {
				plane := (in*c + ic) * h * w
				oplane := (in*c + ic) * oh * ow
				for io := 0; io < oh; io++ {
					for jo := 0; jo < ow; jo++ {
						best := neg
						for kh := 0; kh < p.Kernel; kh++ {
							ih := io*p.Stride - p.Pad + kh
							if ih < 0 || ih >= h {
								continue
							}
							row := plane + ih*w
							for kw := 0; kw < p.Kernel; kw++ {
								iw := jo*p.Stride - p.Pad + kw
								if iw < 0 || iw >= w {
									continue
								}
								if v := xd[row+iw]; v > best {
									best = v
								}
							}
						}
						od[oplane+io*ow+jo] = best
					}
				}
			}
		}
	} else {
		for in := 0; in < n; in++ {
			for io := 0; io < oh; io++ {
				for jo := 0; jo < ow; jo++ {
					obase := ((in*oh+io)*ow + jo) * c
					for ic := 0; ic < c; ic++ {
						best := neg
						for kh := 0; kh < p.Kernel; kh++ {
							ih := io*p.Stride - p.Pad + kh
							if ih < 0 || ih >= h {
								continue
							}
							for kw := 0; kw < p.Kernel; kw++ {
								iw := jo*p.Stride - p.Pad + kw
								if iw < 0 || iw >= w {
									continue
								}
								if v := xd[((in*h+ih)*w+iw)*c+ic]; v > best {
									best = v
								}
							}
						}
						od[obase+ic] = best
					}
				}
			}
		}
	}
	return out
}

// GlobalAvgPoolRun averages spatial dims to (N, C).
func GlobalAvgPoolRun(x *tensor.Tensor, layout tensor.Layout) *tensor.Tensor {
	return GlobalAvgPoolInto(nil, x, layout)
}

// GlobalAvgPoolInto is the destination form of GlobalAvgPoolRun; dst
// must not alias x. Inner loops index raw data directly.
func GlobalAvgPoolInto(dst, x *tensor.Tensor, layout tensor.Layout) *tensor.Tensor {
	s := x.Shape()
	var n, h, w, c int
	if layout == tensor.LayoutNCHW {
		n, c, h, w = s[0], s[1], s[2], s[3]
	} else {
		n, h, w, c = s[0], s[1], s[2], s[3]
	}
	out := dst
	if out == nil {
		out = tensor.New(x.DType(), n, c)
	}
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(h*w)
	if layout == tensor.LayoutNCHW {
		for in := 0; in < n; in++ {
			for ic := 0; ic < c; ic++ {
				base := (in*c + ic) * h * w
				sum := float32(0)
				for i := 0; i < h*w; i++ {
					sum += xd[base+i]
				}
				od[in*c+ic] = sum * inv
			}
		}
	} else {
		for in := 0; in < n; in++ {
			for ic := 0; ic < c; ic++ {
				sum := float32(0)
				for i := 0; i < h*w; i++ {
					sum += xd[(in*h*w+i)*c+ic]
				}
				od[in*c+ic] = sum * inv
			}
		}
	}
	out.Quantize()
	return out
}

// SoftmaxRun applies a numerically stable row softmax over the last
// dimension.
func SoftmaxRun(x *tensor.Tensor) *tensor.Tensor {
	return SoftmaxInto(nil, x)
}

// SoftmaxInto is the destination form of SoftmaxRun; dst may alias x.
func SoftmaxInto(dst, x *tensor.Tensor) *tensor.Tensor {
	s := x.Shape()
	cols := s[len(s)-1]
	rows := x.NumElements() / cols
	out := likeInput(dst, x)
	d := out.Data()
	xd := x.Data()
	if len(d) > 0 && len(xd) > 0 && &d[0] != &xd[0] {
		copy(d, xd)
	}
	for r := 0; r < rows; r++ {
		row := d[r*cols : (r+1)*cols]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(float64(v - max))
			row[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range row {
			row[i] *= inv
		}
	}
	out.Quantize()
	return out
}

// FlattenRun reshapes to (N, rest).
func FlattenRun(x *tensor.Tensor) *tensor.Tensor {
	return FlattenInto(nil, x)
}

// FlattenInto is the destination form of FlattenRun. When the planner
// aliases dst to x's buffer (flatten is a pure reinterpretation), the
// copy degenerates to a no-op.
func FlattenInto(dst, x *tensor.Tensor) *tensor.Tensor {
	if dst == nil {
		n := x.Shape()[0]
		return tensor.Reshape(x, n, x.NumElements()/n)
	}
	d, xd := dst.Data(), x.Data()
	if len(d) > 0 && len(xd) > 0 && &d[0] != &xd[0] {
		copy(d, xd)
	}
	return dst
}

// PoolDesc prices a pooling kernel: each output element reads kernel^2
// inputs.
func PoolDesc(name string, outElems, kernel int, dt tensor.DType) gpu.KernelDesc {
	d := ElementwiseLikeDesc(name, outElems, 1, float64(kernel*kernel), dt)
	d.GlobalLoadB = float64(outElems * kernel * kernel * dt.Size())
	return d
}

// PadDesc prices the channel-padding copy kernel (Table 3's overhead:
// read the unpadded activation, write the padded one).
func PadDesc(inElems, outElems int, dt tensor.DType) gpu.KernelDesc {
	d := ElementwiseLikeDesc("pad_channels", outElems, 1, 0, dt)
	d.GlobalLoadB = float64(inElems * dt.Size())
	d.GlobalStoreB = float64(outElems * dt.Size())
	// The destination rows are aligned (that is the point); the
	// unaligned source rows cost some coalescing efficiency.
	d.AlignmentElems = 8
	d.MemEff = 0.8
	return d
}

func opName(n *relay.Node) string { return fmt.Sprintf("%s_%d", n.Op, n.ID) }
