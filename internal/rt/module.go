// Package rt is the runtime: it executes compiled modules functionally
// (for correctness validation on the emulated FP16 numerics) and prices
// them on the device model (for all performance experiments).
//
// A Module is the artifact Bolt's BYOC flow produces (paper Figure 3):
// a sequence of kernels — templated CUTLASS kernels for the Bolt
// subgraph, plain TVM kernels for the rest — compiled "into a single
// runtime file".
//
// Execution is slot-based and memory-planned: every kernel's value
// lives at a dense slot index (no map lookups on the hot path), and
// intermediate tensors are views into a liveness-planned arena that is
// allocated once and recycled across kernels and across Run calls.
package rt

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

// Kernel is one launchable unit in a compiled module.
type Kernel struct {
	Name string
	// Node is the graph node this kernel implements.
	Node *relay.Node
	// Slot is the dense index of this kernel's value in the execution
	// environment (the node's topological position).
	Slot int
	// Desc prices the launch; a zero GridBlocks Desc (folded glue ops,
	// compile-time constants) costs nothing.
	Desc gpu.KernelDesc
	// Launches is the number of device launches (0 for folded ops).
	Launches int
	// Source is the emitted CUDA-like code (Bolt kernels only).
	Source string
	// Exec computes the node's output. A non-nil dst is the kernel's
	// planned arena destination: the kernel must write its result there
	// and return it. A nil dst means allocate (the clone-based
	// reference semantics).
	Exec func(env *Env, dst *tensor.Tensor) *tensor.Tensor
}

// Env holds tensors materialized during execution, indexed by kernel
// slot. Values are a flat slice so the executor's inner loop performs
// no hashing.
type Env struct {
	vals   []*tensor.Tensor
	inputs map[string]*tensor.Tensor
}

// NewEnv returns an environment with n value slots.
func NewEnv(n int, inputs map[string]*tensor.Tensor) *Env {
	return &Env{vals: make([]*tensor.Tensor, n), inputs: inputs}
}

// Value returns the computed tensor at a slot.
func (e *Env) Value(slot int) *tensor.Tensor {
	v := e.vals[slot]
	if v == nil {
		panic(fmt.Sprintf("rt: slot %d not yet computed", slot))
	}
	return v
}

// Input returns a named graph input.
func (e *Env) Input(name string) *tensor.Tensor {
	v, ok := e.inputs[name]
	if !ok {
		panic(fmt.Sprintf("rt: missing input %q", name))
	}
	return v
}

// TuningStats summarizes the compilation pipeline's tuning work: how
// many GEMM/Conv tasks the graph presented, how dedup and the
// persistent tuning cache shrank them, and what the unresolved rest
// cost to profile. TuningSeconds is the *critical path* of the
// parallel profiling pool (max across workers, not the sum), so it
// models concurrent profiling honestly.
type TuningStats struct {
	// Workloads is the total number of GEMM/Conv tuning tasks extracted
	// from the graph (before dedup).
	Workloads int
	// UniqueWorkloads is the task count after dedup: repeated shapes
	// (e.g. BERT's identical attention GEMMs) collapse to one.
	UniqueWorkloads int
	// CacheHits is how many unique workloads were resolved from the
	// persistent tuning log without any measurement.
	CacheHits int
	// ProfiledWorkloads is how many unique workloads were measured.
	ProfiledWorkloads int
	// Measurements is the total number of candidate kernels measured.
	Measurements int
	// SamplePrograms is the number of distinct sample programs
	// (templates) compiled for this run.
	SamplePrograms int
	// TuningSeconds is the simulated critical-path profiling cost.
	TuningSeconds float64
	// EnumeratedCandidates is the total number of candidate kernels the
	// architecture-guided search enumerated across profiled workloads
	// (Measurements <= EnumeratedCandidates; the difference is what
	// cost-model guidance pruned).
	EnumeratedCandidates int
	// SkippedCandidates is how many enumerated candidates guidance
	// decided not to measure (top-k pruning plus fully predicted
	// workloads).
	SkippedCandidates int
	// PredictedWorkloads is how many unique workloads were resolved
	// measurement-free from the cost model (trust gate).
	PredictedWorkloads int
	// PredictionError is the mean relative error of the cost model's
	// prediction for the chosen config across measured workloads where
	// a trained model was consulted; -1 when no such workload exists.
	PredictionError float64
}

// Module is a compiled, runnable, priceable model. After compilation
// the module is immutable: all per-run mutable state (the activation
// arena, destination views, and slot environment) lives in ExecState,
// so any number of goroutines may Run the same module concurrently.
type Module struct {
	Graph   *relay.Graph
	Kernels []Kernel
	Device  *gpu.Device
	// Tuning reports what compilation's tuning pipeline did (zero for
	// the baseline tuner, which accounts its search on its own clock).
	Tuning TuningStats
	// Plan is the static memory plan execution states allocate their
	// arenas from (set by codegen; nil for hand-built modules, which
	// then execute clone-based).
	Plan *relay.MemoryPlan

	// progOnce computes the immutable per-program metadata shared by
	// every ExecState: arena buffer capacities and input slots.
	progOnce   sync.Once
	arenaElems []int
	// inputSlots are the env slots holding caller-owned input tensors,
	// cleared after each planned run so a pooled state does not retain
	// the previous request's data.
	inputSlots []int

	// poolMu guards free, the sync.Pool-style free list of execution
	// states Run recycles through.
	poolMu sync.Mutex
	free   []*ExecState

	// memOnce memoizes Memory for hand-built modules (planning on the
	// fly is pure but not free).
	memOnce sync.Once
	mem     MemoryReport
}

// Run executes the module functionally and returns the output tensor.
//
// With a memory plan (every codegen-compiled module), Run acquires a
// pooled execution state, writes intermediates into its
// liveness-planned arena, copies the output out, and releases the
// state — so the returned tensor is caller-owned and Run is safe for
// any number of concurrent callers. After warmup the pool holds one
// state per peak-concurrent caller and the hot path performs no arena
// or environment allocation. Callers that want the zero-copy view
// semantics instead manage a state explicitly with AcquireState /
// RunOn / ReleaseState.
func (m *Module) Run(inputs map[string]*tensor.Tensor) *tensor.Tensor {
	if m.Plan == nil {
		return m.exec(NewEnv(len(m.Kernels), inputs), nil)
	}
	st := m.AcquireState()
	out := m.RunOn(st, inputs).Clone()
	m.ReleaseState(st)
	return out
}

// RunRows executes the module on a (possibly padded) batch and returns
// only the first rows rows of the output, caller-owned. This is the
// padded-dispatch execution path: the serving scheduler may run a
// partial batch on a larger compiled bucket with zero-padded inputs,
// and the padding rows' outputs must never reach a caller. Every
// operator the runtime executes is row-independent along the leading
// batch dimension, so the real rows are bit-identical to an unpadded
// run. Safe for concurrent callers, like Run.
func (m *Module) RunRows(inputs map[string]*tensor.Tensor, rows int) *tensor.Tensor {
	if m.Plan == nil {
		return tensor.StripBatch(m.exec(NewEnv(len(m.Kernels), inputs), nil), rows)
	}
	st := m.AcquireState()
	out := tensor.StripBatch(m.RunOn(st, inputs), rows)
	m.ReleaseState(st)
	return out
}

// RunUnplanned executes with the clone-based reference semantics:
// every kernel allocates a fresh output and nothing is recycled. It is
// the oracle the planned executor is validated against bit-for-bit,
// and is safe for concurrent callers.
//
// For memory-planned modules each destination is freshly allocated
// with the node's annotated dtype — the same typing the planned
// arena views use. Under mixed precision a node's dtype can differ
// from its operand's (an INT8 anchor feeding float glue), and letting
// each op allocate from its input's dtype would quantize on the wrong
// grid and diverge from the planned path.
func (m *Module) RunUnplanned(inputs map[string]*tensor.Tensor) *tensor.Tensor {
	if m.Plan == nil {
		return m.exec(NewEnv(len(m.Kernels), inputs), nil)
	}
	dst := make([]*tensor.Tensor, len(m.Kernels))
	for i := range m.Kernels {
		n := m.Kernels[i].Node
		if _, ok := m.Plan.Assign[n.ID]; ok {
			dst[i] = tensor.NewWithLayout(n.DType, n.Layout, n.Shape...)
		}
	}
	return m.exec(NewEnv(len(m.Kernels), inputs), dst)
}

func (m *Module) exec(env *Env, dst []*tensor.Tensor) *tensor.Tensor {
	var out *tensor.Tensor
	for i := range m.Kernels {
		k := &m.Kernels[i]
		var d *tensor.Tensor
		if dst != nil {
			d = dst[i]
		}
		v := k.Exec(env, d)
		env.vals[k.Slot] = v
		if k.Node == m.Graph.Output {
			out = v
		}
	}
	if out == nil {
		panic("rt: output node was never executed")
	}
	return out
}

// Time returns the modeled end-to-end latency of one inference batch
// (seconds): the sum of every kernel launch.
func (m *Module) Time() float64 {
	total := 0.0
	for i := range m.Kernels {
		if m.Kernels[i].Launches > 0 {
			total += m.Device.KernelTime(m.Kernels[i].Desc)
		}
	}
	return total
}

// Throughput returns images/second for the given batch size (the
// paper's Figure 10a metric).
func (m *Module) Throughput(batch int) float64 {
	t := m.Time()
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return float64(batch) / t
}

// LaunchCount returns the number of device kernel launches per batch.
func (m *Module) LaunchCount() int {
	n := 0
	for i := range m.Kernels {
		n += m.Kernels[i].Launches
	}
	return n
}

// KernelTimeRow is a per-kernel time breakdown entry for diagnostics
// (cmd/boltc -report).
type KernelTimeRow struct {
	Name    string
	Op      string
	Time    float64
	Percent float64
}

// Report summarizes where the time goes, slowest kernel first.
func (m *Module) Report() []KernelTimeRow {
	total := m.Time()
	rows := make([]KernelTimeRow, 0, len(m.Kernels))
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if k.Launches == 0 {
			continue
		}
		t := m.Device.KernelTime(k.Desc)
		rows = append(rows, KernelTimeRow{Name: k.Name, Op: k.Node.Op.String(), Time: t, Percent: 100 * t / total})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Time > rows[j].Time })
	return rows
}

// Sources concatenates the emitted kernel sources (the "generated
// CUDA" a user would inspect).
func (m *Module) Sources() string {
	var b strings.Builder
	for i := range m.Kernels {
		if src := m.Kernels[i].Source; src != "" {
			b.WriteString(src)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// MemoryReport summarizes device-memory usage of a compiled module.
type MemoryReport struct {
	// ParamBytes is the total weight/bias storage, including padded
	// weights and the pre-allocated layout/padding buffers Bolt adds to
	// the model's parameters (paper §3.2.3).
	ParamBytes int
	// PeakActivationBytes is the largest single intermediate tensor
	// (the lower bound no plan can beat).
	PeakActivationBytes int
	// NaiveActivationBytes sums every intermediate tensor — what a
	// clone-per-op executor allocates over one run.
	NaiveActivationBytes int
	// PlannedArenaBytes is the footprint of the liveness-planned arena
	// the executor actually allocates.
	PlannedArenaBytes int
	// ArenaBuffers is the number of distinct reusable buffers.
	ArenaBuffers int
	// ReuseFactor is NaiveActivationBytes / PlannedArenaBytes: how many
	// times over the arena is recycled within one run.
	ReuseFactor float64
}

// Memory reports the module's memory plan from the graph and its
// memory plan. The report is computed once and memoized: hand-built
// modules (Plan == nil) would otherwise re-run relay.PlanMemory on
// every call.
func (m *Module) Memory() MemoryReport {
	m.memOnce.Do(func() {
		r := &m.mem
		for _, n := range m.Graph.Nodes {
			switch n.Op {
			case relay.OpConstant:
				r.ParamBytes += n.Shape.NumElements() * n.DType.Size()
			case relay.OpInput:
			default:
				if b := n.Shape.NumElements() * n.DType.Size(); b > r.PeakActivationBytes {
					r.PeakActivationBytes = b
				}
			}
		}
		plan := m.Plan
		if plan == nil {
			plan = relay.PlanMemory(m.Graph)
		}
		r.NaiveActivationBytes = plan.NaiveBytes
		r.PlannedArenaBytes = plan.ArenaBytes()
		r.ArenaBuffers = len(plan.Buffers)
		r.ReuseFactor = plan.ReuseFactor()
	})
	return m.mem
}

// TemplatedKernels counts the launched anchor kernels: the selected
// templates that the final module build must instantiate and compile
// into the runtime file.
func (m *Module) TemplatedKernels() int {
	n := 0
	for i := range m.Kernels {
		if m.Kernels[i].Launches > 0 && m.Kernels[i].Node.IsAnchor() {
			n++
		}
	}
	return n
}
