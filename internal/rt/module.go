// Package rt is the runtime: it executes compiled modules functionally
// (for correctness validation on the emulated FP16 numerics) and prices
// them on the device model (for all performance experiments).
//
// A Module is the artifact Bolt's BYOC flow produces (paper Figure 3):
// a sequence of kernels — templated CUTLASS kernels for the Bolt
// subgraph, plain TVM kernels for the rest — compiled "into a single
// runtime file".
//
// Execution is slot-based and memory-planned: every kernel's value
// lives at a dense slot index (no map lookups on the hot path), and
// intermediate tensors are views into a liveness-planned arena that is
// allocated once and recycled across kernels and across Run calls.
package rt

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

// Kernel is one launchable unit in a compiled module.
type Kernel struct {
	Name string
	// Node is the graph node this kernel implements.
	Node *relay.Node
	// Slot is the dense index of this kernel's value in the execution
	// environment (the node's topological position).
	Slot int
	// Desc prices the launch; a zero GridBlocks Desc (folded glue ops,
	// compile-time constants) costs nothing.
	Desc gpu.KernelDesc
	// Launches is the number of device launches (0 for folded ops).
	Launches int
	// Source is the emitted CUDA-like code (Bolt kernels only).
	Source string
	// Exec computes the node's output. A non-nil dst is the kernel's
	// planned arena destination: the kernel must write its result there
	// and return it. A nil dst means allocate (the clone-based
	// reference semantics).
	Exec func(env *Env, dst *tensor.Tensor) *tensor.Tensor
}

// Env holds tensors materialized during execution, indexed by kernel
// slot. Values are a flat slice so the executor's inner loop performs
// no hashing.
type Env struct {
	vals   []*tensor.Tensor
	inputs map[string]*tensor.Tensor
}

// NewEnv returns an environment with n value slots.
func NewEnv(n int, inputs map[string]*tensor.Tensor) *Env {
	return &Env{vals: make([]*tensor.Tensor, n), inputs: inputs}
}

// Value returns the computed tensor at a slot.
func (e *Env) Value(slot int) *tensor.Tensor {
	v := e.vals[slot]
	if v == nil {
		panic(fmt.Sprintf("rt: slot %d not yet computed", slot))
	}
	return v
}

// Input returns a named graph input.
func (e *Env) Input(name string) *tensor.Tensor {
	v, ok := e.inputs[name]
	if !ok {
		panic(fmt.Sprintf("rt: missing input %q", name))
	}
	return v
}

// TuningStats summarizes the compilation pipeline's tuning work: how
// many GEMM/Conv tasks the graph presented, how dedup and the
// persistent tuning cache shrank them, and what the unresolved rest
// cost to profile. TuningSeconds is the *critical path* of the
// parallel profiling pool (max across workers, not the sum), so it
// models concurrent profiling honestly.
type TuningStats struct {
	// Workloads is the total number of GEMM/Conv tuning tasks extracted
	// from the graph (before dedup).
	Workloads int
	// UniqueWorkloads is the task count after dedup: repeated shapes
	// (e.g. BERT's identical attention GEMMs) collapse to one.
	UniqueWorkloads int
	// CacheHits is how many unique workloads were resolved from the
	// persistent tuning log without any measurement.
	CacheHits int
	// ProfiledWorkloads is how many unique workloads were measured.
	ProfiledWorkloads int
	// Measurements is the total number of candidate kernels measured.
	Measurements int
	// SamplePrograms is the number of distinct sample programs
	// (templates) compiled for this run.
	SamplePrograms int
	// TuningSeconds is the simulated critical-path profiling cost.
	TuningSeconds float64
}

// Module is a compiled, runnable, priceable model.
type Module struct {
	Graph   *relay.Graph
	Kernels []Kernel
	Device  *gpu.Device
	// Tuning reports what compilation's tuning pipeline did (zero for
	// the baseline tuner, which accounts its search on its own clock).
	Tuning TuningStats
	// Plan is the static memory plan the executor allocates its arena
	// from (set by codegen; nil for hand-built modules, which then
	// execute clone-based).
	Plan *relay.MemoryPlan

	// Arena state, built lazily on the first planned Run and reused
	// across calls; mu serializes planned runs on the shared arena.
	mu    sync.Mutex
	arena *tensor.Arena
	dst   []*tensor.Tensor
	env   *Env
	// inputSlots are the env slots holding caller-owned input tensors,
	// cleared after each planned run so the module does not retain the
	// previous request's data.
	inputSlots []int
}

// Run executes the module functionally and returns the output tensor.
//
// With a memory plan (every codegen-compiled module), execution writes
// intermediates into a shared arena that is allocated on the first
// call and reused by every subsequent one — the serving-loop hot path.
// The returned tensor is a view into the arena, valid only until the
// next Run: callers that retain outputs across calls must Clone them,
// and concurrent use requires external synchronization that covers
// consuming (or cloning) the output, not just the call itself — the
// internal lock only keeps the arena itself consistent. Independent
// concurrent execution belongs on RunUnplanned.
func (m *Module) Run(inputs map[string]*tensor.Tensor) *tensor.Tensor {
	if m.Plan == nil {
		return m.exec(NewEnv(len(m.Kernels), inputs), nil)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureArena()
	m.env.inputs = inputs
	out := m.exec(m.env, m.dst)
	// Drop references to caller-owned tensors: the env persists across
	// calls and must not keep the previous request's inputs reachable.
	m.env.inputs = nil
	for _, s := range m.inputSlots {
		m.env.vals[s] = nil
	}
	return out
}

// RunUnplanned executes with the clone-based reference semantics:
// every kernel allocates a fresh output and nothing is recycled. It is
// the oracle the planned executor is validated against bit-for-bit,
// and is safe for concurrent callers.
func (m *Module) RunUnplanned(inputs map[string]*tensor.Tensor) *tensor.Tensor {
	return m.exec(NewEnv(len(m.Kernels), inputs), nil)
}

func (m *Module) exec(env *Env, dst []*tensor.Tensor) *tensor.Tensor {
	var out *tensor.Tensor
	for i := range m.Kernels {
		k := &m.Kernels[i]
		var d *tensor.Tensor
		if dst != nil {
			d = dst[i]
		}
		v := k.Exec(env, d)
		env.vals[k.Slot] = v
		if k.Node == m.Graph.Output {
			out = v
		}
	}
	if out == nil {
		panic("rt: output node was never executed")
	}
	return out
}

// ensureArena materializes the planned arena and the per-kernel
// destination views (one tensor header per node, created once; nodes
// sharing a buffer have disjoint live ranges, so their views are valid
// whenever the executor reads them).
func (m *Module) ensureArena() {
	if m.arena != nil {
		return
	}
	elems := make([]int, len(m.Plan.Buffers))
	for i, b := range m.Plan.Buffers {
		elems[i] = b.Elems
	}
	m.arena = tensor.NewArena(elems)
	m.dst = make([]*tensor.Tensor, len(m.Kernels))
	for i := range m.Kernels {
		n := m.Kernels[i].Node
		if n.Op == relay.OpInput {
			m.inputSlots = append(m.inputSlots, m.Kernels[i].Slot)
		}
		bi, ok := m.Plan.Assign[n.ID]
		if !ok {
			continue // inputs and constants live outside the arena
		}
		buf := m.arena.Buffer(bi)[:n.Shape.NumElements()]
		m.dst[i] = tensor.View(n.DType, n.Layout, buf, n.Shape...)
	}
	m.env = NewEnv(len(m.Kernels), nil)
}

// Time returns the modeled end-to-end latency of one inference batch
// (seconds): the sum of every kernel launch.
func (m *Module) Time() float64 {
	total := 0.0
	for i := range m.Kernels {
		if m.Kernels[i].Launches > 0 {
			total += m.Device.KernelTime(m.Kernels[i].Desc)
		}
	}
	return total
}

// Throughput returns images/second for the given batch size (the
// paper's Figure 10a metric).
func (m *Module) Throughput(batch int) float64 {
	t := m.Time()
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return float64(batch) / t
}

// LaunchCount returns the number of device kernel launches per batch.
func (m *Module) LaunchCount() int {
	n := 0
	for i := range m.Kernels {
		n += m.Kernels[i].Launches
	}
	return n
}

// KernelTimeRow is a per-kernel time breakdown entry for diagnostics
// (cmd/boltc -report).
type KernelTimeRow struct {
	Name    string
	Op      string
	Time    float64
	Percent float64
}

// Report summarizes where the time goes, slowest kernel first.
func (m *Module) Report() []KernelTimeRow {
	total := m.Time()
	rows := make([]KernelTimeRow, 0, len(m.Kernels))
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if k.Launches == 0 {
			continue
		}
		t := m.Device.KernelTime(k.Desc)
		rows = append(rows, KernelTimeRow{Name: k.Name, Op: k.Node.Op.String(), Time: t, Percent: 100 * t / total})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Time > rows[j].Time })
	return rows
}

// Sources concatenates the emitted kernel sources (the "generated
// CUDA" a user would inspect).
func (m *Module) Sources() string {
	var b strings.Builder
	for i := range m.Kernels {
		if src := m.Kernels[i].Source; src != "" {
			b.WriteString(src)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// MemoryReport summarizes device-memory usage of a compiled module.
type MemoryReport struct {
	// ParamBytes is the total weight/bias storage, including padded
	// weights and the pre-allocated layout/padding buffers Bolt adds to
	// the model's parameters (paper §3.2.3).
	ParamBytes int
	// PeakActivationBytes is the largest single intermediate tensor
	// (the lower bound no plan can beat).
	PeakActivationBytes int
	// NaiveActivationBytes sums every intermediate tensor — what a
	// clone-per-op executor allocates over one run.
	NaiveActivationBytes int
	// PlannedArenaBytes is the footprint of the liveness-planned arena
	// the executor actually allocates.
	PlannedArenaBytes int
	// ArenaBuffers is the number of distinct reusable buffers.
	ArenaBuffers int
	// ReuseFactor is NaiveActivationBytes / PlannedArenaBytes: how many
	// times over the arena is recycled within one run.
	ReuseFactor float64
}

// Memory computes the module's memory report from the graph and its
// memory plan (planning on the fly for hand-built modules).
func (m *Module) Memory() MemoryReport {
	var r MemoryReport
	for _, n := range m.Graph.Nodes {
		switch n.Op {
		case relay.OpConstant:
			r.ParamBytes += n.Shape.NumElements() * n.DType.Size()
		case relay.OpInput:
		default:
			if b := n.Shape.NumElements() * n.DType.Size(); b > r.PeakActivationBytes {
				r.PeakActivationBytes = b
			}
		}
	}
	plan := m.Plan
	if plan == nil {
		plan = relay.PlanMemory(m.Graph)
	}
	r.NaiveActivationBytes = plan.NaiveBytes
	r.PlannedArenaBytes = plan.ArenaBytes()
	r.ArenaBuffers = len(plan.Buffers)
	r.ReuseFactor = plan.ReuseFactor()
	return r
}
