// Package rt is the runtime: it executes compiled modules functionally
// (for correctness validation on the emulated FP16 numerics) and prices
// them on the device model (for all performance experiments).
//
// A Module is the artifact Bolt's BYOC flow produces (paper Figure 3):
// a sequence of kernels — templated CUTLASS kernels for the Bolt
// subgraph, plain TVM kernels for the rest — compiled "into a single
// runtime file".
package rt

import (
	"fmt"
	"math"

	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

// Kernel is one launchable unit in a compiled module.
type Kernel struct {
	Name string
	// Node is the graph node this kernel implements.
	Node *relay.Node
	// Desc prices the launch; a zero GridBlocks Desc (folded glue ops,
	// compile-time constants) costs nothing.
	Desc gpu.KernelDesc
	// Launches is the number of device launches (0 for folded ops).
	Launches int
	// Source is the emitted CUDA-like code (Bolt kernels only).
	Source string
	// Exec computes the node's output from the environment.
	Exec func(env *Env) *tensor.Tensor
}

// Env holds tensors materialized during execution.
type Env struct {
	vals   map[int]*tensor.Tensor
	inputs map[string]*tensor.Tensor
}

// Value returns the computed tensor for a node.
func (e *Env) Value(n *relay.Node) *tensor.Tensor {
	v, ok := e.vals[n.ID]
	if !ok {
		panic(fmt.Sprintf("rt: node %s not yet computed", n))
	}
	return v
}

// Input returns a named graph input.
func (e *Env) Input(name string) *tensor.Tensor {
	v, ok := e.inputs[name]
	if !ok {
		panic(fmt.Sprintf("rt: missing input %q", name))
	}
	return v
}

// TuningStats summarizes the compilation pipeline's tuning work: how
// many GEMM/Conv tasks the graph presented, how dedup and the
// persistent tuning cache shrank them, and what the unresolved rest
// cost to profile. TuningSeconds is the *critical path* of the
// parallel profiling pool (max across workers, not the sum), so it
// models concurrent profiling honestly.
type TuningStats struct {
	// Workloads is the total number of GEMM/Conv tuning tasks extracted
	// from the graph (before dedup).
	Workloads int
	// UniqueWorkloads is the task count after dedup: repeated shapes
	// (e.g. BERT's identical attention GEMMs) collapse to one.
	UniqueWorkloads int
	// CacheHits is how many unique workloads were resolved from the
	// persistent tuning log without any measurement.
	CacheHits int
	// ProfiledWorkloads is how many unique workloads were measured.
	ProfiledWorkloads int
	// Measurements is the total number of candidate kernels measured.
	Measurements int
	// SamplePrograms is the number of distinct sample programs
	// (templates) compiled for this run.
	SamplePrograms int
	// TuningSeconds is the simulated critical-path profiling cost.
	TuningSeconds float64
}

// Module is a compiled, runnable, priceable model.
type Module struct {
	Graph   *relay.Graph
	Kernels []Kernel
	Device  *gpu.Device
	// Tuning reports what compilation's tuning pipeline did (zero for
	// the baseline tuner, which accounts its search on its own clock).
	Tuning TuningStats
}

// Run executes the module functionally and returns the output tensor.
func (m *Module) Run(inputs map[string]*tensor.Tensor) *tensor.Tensor {
	env := &Env{vals: make(map[int]*tensor.Tensor, len(m.Kernels)), inputs: inputs}
	var out *tensor.Tensor
	for i := range m.Kernels {
		k := &m.Kernels[i]
		v := k.Exec(env)
		env.vals[k.Node.ID] = v
		if k.Node == m.Graph.Output {
			out = v
		}
	}
	if out == nil {
		panic("rt: output node was never executed")
	}
	return out
}

// Time returns the modeled end-to-end latency of one inference batch
// (seconds): the sum of every kernel launch.
func (m *Module) Time() float64 {
	total := 0.0
	for i := range m.Kernels {
		if m.Kernels[i].Launches > 0 {
			total += m.Device.KernelTime(m.Kernels[i].Desc)
		}
	}
	return total
}

// Throughput returns images/second for the given batch size (the
// paper's Figure 10a metric).
func (m *Module) Throughput(batch int) float64 {
	t := m.Time()
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return float64(batch) / t
}

// LaunchCount returns the number of device kernel launches per batch.
func (m *Module) LaunchCount() int {
	n := 0
	for i := range m.Kernels {
		n += m.Kernels[i].Launches
	}
	return n
}

// KernelReport returns a per-kernel time breakdown, slowest first,
// for diagnostics (cmd/boltc -report).
type KernelTimeRow struct {
	Name    string
	Op      string
	Time    float64
	Percent float64
}

// Report summarizes where the time goes.
func (m *Module) Report() []KernelTimeRow {
	total := m.Time()
	rows := make([]KernelTimeRow, 0, len(m.Kernels))
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if k.Launches == 0 {
			continue
		}
		t := m.Device.KernelTime(k.Desc)
		rows = append(rows, KernelTimeRow{Name: k.Name, Op: k.Node.Op.String(), Time: t, Percent: 100 * t / total})
	}
	for i := 1; i < len(rows); i++ {
		r := rows[i]
		j := i - 1
		for j >= 0 && rows[j].Time < r.Time {
			rows[j+1] = rows[j]
			j--
		}
		rows[j+1] = r
	}
	return rows
}

// Sources concatenates the emitted kernel sources (the "generated
// CUDA" a user would inspect).
func (m *Module) Sources() string {
	s := ""
	for i := range m.Kernels {
		if m.Kernels[i].Source != "" {
			s += m.Kernels[i].Source + "\n"
		}
	}
	return s
}

// MemoryReport summarizes device-memory usage of a compiled module.
type MemoryReport struct {
	// ParamBytes is the total weight/bias storage, including padded
	// weights and the pre-allocated layout/padding buffers Bolt adds to
	// the model's parameters (paper §3.2.3).
	ParamBytes int
	// PeakActivationBytes is the largest single intermediate tensor
	// (a lower bound on the activation arena).
	PeakActivationBytes int
}

// Memory computes the module's memory report from the graph.
func (m *Module) Memory() MemoryReport {
	var r MemoryReport
	for _, n := range m.Graph.Nodes {
		switch n.Op {
		case relay.OpConstant:
			r.ParamBytes += n.Shape.NumElements() * n.DType.Size()
		case relay.OpInput:
		default:
			if b := n.Shape.NumElements() * n.DType.Size(); b > r.PeakActivationBytes {
				r.PeakActivationBytes = b
			}
		}
	}
	return r
}
