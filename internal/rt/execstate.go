package rt

import (
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

// ExecState is the mutable half of a compiled module: one executor's
// activation arena, per-kernel destination views, and slot
// environment, all derived from the module's static memory plan. The
// Module itself is immutable after compilation, so any number of
// ExecStates can execute the same program concurrently — the serving
// engine keeps one in flight per worker.
//
// States are built by Module.NewState and recycled through the
// module's free list (Module.AcquireState / Module.ReleaseState), so a
// steady-state serving loop performs no arena or environment
// allocation at all.
type ExecState struct {
	arena *tensor.Arena
	env   *Env
	dst   []*tensor.Tensor
}

// initProgram computes the immutable per-program metadata every
// ExecState shares: the arena buffer capacities and the env slots that
// hold caller-owned input tensors. Called once, lazily, under
// m.progOnce.
func (m *Module) initProgram() {
	m.arenaElems = make([]int, len(m.Plan.Buffers))
	for i, b := range m.Plan.Buffers {
		m.arenaElems[i] = b.Elems
	}
	for i := range m.Kernels {
		if m.Kernels[i].Node.Op == relay.OpInput {
			m.inputSlots = append(m.inputSlots, m.Kernels[i].Slot)
		}
	}
}

// NewState materializes a fresh execution state from the memory plan:
// one arena allocation plus one tensor header per planned node (nodes
// sharing a buffer have disjoint live ranges, so their views are valid
// whenever the executor reads them). Panics if the module has no
// memory plan (hand-built modules execute clone-based through Run).
func (m *Module) NewState() *ExecState {
	if m.Plan == nil {
		panic("rt: NewState requires a memory-planned module")
	}
	m.progOnce.Do(m.initProgram)
	arena := tensor.NewArena(m.arenaElems)
	dst := make([]*tensor.Tensor, len(m.Kernels))
	for i := range m.Kernels {
		n := m.Kernels[i].Node
		bi, ok := m.Plan.Assign[n.ID]
		if !ok {
			continue // inputs and constants live outside the arena
		}
		buf := arena.Buffer(bi)[:n.Shape.NumElements()]
		dst[i] = tensor.View(n.DType, n.Layout, buf, n.Shape...)
	}
	return &ExecState{arena: arena, env: NewEnv(len(m.Kernels), nil), dst: dst}
}

// AcquireState pops a state from the module's free list, building a
// fresh one only when the list is empty. Under a bounded number of
// concurrent callers the pool converges to that many states and the
// hot path stops allocating.
func (m *Module) AcquireState() *ExecState {
	m.poolMu.Lock()
	if n := len(m.free); n > 0 {
		st := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		m.poolMu.Unlock()
		return st
	}
	m.poolMu.Unlock()
	return m.NewState()
}

// ReleaseState returns a state to the free list. The caller must be
// done with every tensor view obtained from RunOn on this state: the
// next acquirer will overwrite the arena.
func (m *Module) ReleaseState(st *ExecState) {
	if st == nil {
		return
	}
	// Drop caller-owned references defensively: RunOn clears them on
	// its normal path, but a run that panicked mid-execution (and was
	// recovered by the caller) may not have gotten there.
	st.env.inputs = nil
	for _, s := range m.inputSlots {
		st.env.vals[s] = nil
	}
	m.poolMu.Lock()
	m.free = append(m.free, st)
	m.poolMu.Unlock()
}

// RunOn executes the module on an explicitly held state and returns
// the output as a view into the state's arena. The view stays valid
// until the state's next RunOn or its release — callers that need the
// result past that point must Clone it. Distinct states may run
// concurrently; a single state must not.
func (m *Module) RunOn(st *ExecState, inputs map[string]*tensor.Tensor) *tensor.Tensor {
	st.env.inputs = inputs
	out := m.exec(st.env, st.dst)
	// Drop references to caller-owned tensors: the state persists in
	// the pool and must not keep the previous request's inputs
	// reachable.
	st.env.inputs = nil
	for _, s := range m.inputSlots {
		st.env.vals[s] = nil
	}
	return out
}
