package cublaslike

import (
	"testing"

	"bolt/internal/ansor"
	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

func TestLibraryOpens(t *testing.T) {
	l := New(gpu.T4())
	if len(l.configs) == 0 {
		t.Fatal("no valid kernels in table")
	}
	for _, c := range l.configs {
		if c.Op != gpu.OpClassTensorOp {
			t.Error("vendor FP16 kernels use tensor cores")
		}
	}
}

func TestHeuristicPicksBySize(t *testing.T) {
	l := New(gpu.T4())
	big := l.selectConfig(4096, 4096, 4096)
	small := l.selectConfig(128, 128, 512)
	if big.TB.Area() <= small.TB.Area() {
		t.Errorf("big problems should get bigger tiles: %v vs %v", big.TB, small.TB)
	}
}

func TestNearRooflineOnBigGemm(t *testing.T) {
	d := gpu.T4()
	l := New(d)
	m, n, k := 4096, 4096, 4096
	tflops := 2 * float64(m) * float64(n) * float64(k) / l.GemmTime(m, n, k) / 1e12
	// cuBLAS on T4 sustains roughly 45-60 FP16 TFLOPS on large GEMMs.
	if tflops < 40 || tflops > 65 {
		t.Errorf("vendor GEMM achieves %.0f TFLOPS, want hardware-native 40-65", tflops)
	}
}

func TestFigure1Shape(t *testing.T) {
	// The paper's Figure 1: Ansor achieves < ~25% of cuBLAS on FP16
	// GEMMs (roughly 20% in their measurements). Reproduce the ratio
	// band for the same five workloads.
	d := gpu.T4()
	l := New(d)
	workloads := []struct{ m, n, k int }{
		{1024, 1024, 1024},
		{2048, 2048, 2048},
		{1280, 768, 768},
		{1280, 3072, 768},
		{1280, 768, 3072},
	}
	for _, w := range workloads {
		tuner := ansor.NewTuner(d, nil, 99)
		res := tuner.TuneGemm(w.m, w.n, w.k, 192, tensor.FP16)
		ratio := l.GemmTime(w.m, w.n, w.k) / res.Time // ansor speed / cublas speed
		if ratio > 0.35 {
			t.Errorf("(%d,%d,%d): Ansor reaches %.0f%% of cuBLAS, paper shows ~20%%",
				w.m, w.n, w.k, ratio*100)
		}
		if ratio < 0.05 {
			t.Errorf("(%d,%d,%d): Ansor at %.0f%% of cuBLAS is implausibly slow", w.m, w.n, w.k, ratio*100)
		}
	}
}

func TestUnalignedFallback(t *testing.T) {
	d := gpu.T4()
	l := New(d)
	// N=1022 cannot use the alignment-8 kernels; the library falls back
	// to a narrower (slower) kernel rather than padding.
	aligned := l.GemmTime(1280, 1024, 768)
	unaligned := l.GemmTime(1280, 1022, 768)
	if unaligned <= aligned {
		t.Error("unaligned shape should be slower (no padding in fixed-function libraries)")
	}
}

func TestFixedFunctionLimits(t *testing.T) {
	l := New(gpu.T4())
	if !l.SupportsEpilogue(cutlass.BiasActivation(cutlass.ActReLU)) {
		t.Error("bias+ReLU is in the cuDNN op set")
	}
	for _, act := range []cutlass.Activation{cutlass.ActGELU, cutlass.ActHardswish, cutlass.ActSoftplus} {
		if l.SupportsEpilogue(cutlass.BiasActivation(act)) {
			t.Errorf("%v epilogue must be unsupported by the fixed op set", act)
		}
	}
	if l.SupportsPersistentFusion() {
		t.Error("fixed-function libraries cannot fuse back-to-back GEMMs")
	}
}

func TestGemmFunctional(t *testing.T) {
	l := New(gpu.T4())
	a := tensor.New(tensor.FP16, 32, 64)
	b := tensor.New(tensor.FP16, 64, 16)
	a.FillRandom(1, 1)
	b.FillRandom(2, 1)
	got := l.Gemm(a, b)
	want := cutlass.ReferenceGemm(a, b, nil, cutlass.DefaultEpilogue())
	if !tensor.AllClose(got, want, 1e-2, 1e-3) {
		t.Errorf("vendor GEMM numerics deviate: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestConvTime(t *testing.T) {
	l := New(gpu.T4())
	s := cutlass.Conv3x3(32, 56, 56, 64, 64, 1, 1)
	if tm := l.ConvTime(s); tm <= 0 {
		t.Errorf("conv time %g", tm)
	}
}
