// Package cublaslike models a traditional fixed-function vendor
// library (cuBLAS / cuDNN): a closed set of hand-optimized kernels
// behind a rigid API.
//
// Unlike templated CUTLASS, the primitive set is fixed — FP16 GEMM and
// convolution with at most a bias+ReLU epilogue — and cannot be
// extended with custom activations or persistent fusion. Kernel
// selection uses a built-in shape heuristic over a small pre-tuned
// configuration table, which is what vendor libraries ship after
// exhaustive offline tuning; this delivers hardware-native performance
// for supported ops (paper Figure 1's upper line) but zero
// flexibility.
package cublaslike

import (
	"fmt"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// Library is a handle to the vendor library on one device
// (cublasHandle_t, morally).
type Library struct {
	dev     *gpu.Device
	configs []cutlass.GemmConfig
}

// New opens the library for a device, installing its pre-tuned kernel
// table.
func New(dev *gpu.Device) *Library {
	inst := cutlass.InstructionShape(dev.Arch)
	stages := 2
	if dev.Arch >= gpu.SM80 {
		stages = 3
	}
	mk := func(tbM, tbN, tbK, wM, wN, swz int) cutlass.GemmConfig {
		return cutlass.GemmConfig{
			TB:   cutlass.Shape3{M: tbM, N: tbN, K: tbK},
			Warp: cutlass.Shape3{M: wM, N: wN, K: tbK},
			Inst: inst, Stages: stages, SwizzleLog: swz,
			AlignA: 8, AlignB: 8, AlignC: 8,
			Op: gpu.OpClassTensorOp, DType: tensor.FP16,
		}
	}
	lib := &Library{dev: dev}
	// The shipped kernel table: large, medium, small, and skinny tiles.
	lib.configs = []cutlass.GemmConfig{
		mk(256, 128, 32, 64, 64, 2),
		mk(128, 256, 32, 64, 64, 2),
		mk(128, 128, 32, 64, 64, 2),
		mk(128, 64, 32, 64, 32, 1),
		mk(64, 128, 32, 32, 64, 1),
		mk(64, 64, 32, 32, 32, 1),
		mk(64, 32, 32, 32, 32, 1),
		mk(32, 64, 32, 32, 32, 1),
	}
	valid := lib.configs[:0]
	for _, c := range lib.configs {
		if c.Validate(dev) == nil {
			valid = append(valid, c)
		}
	}
	lib.configs = valid
	return lib
}

// narrowAlign relaxes a config's alignment for shapes the 128-bit
// kernels cannot serve (the library silently falls back to slower
// kernels, it does not pad — padding is Bolt's trick).
func narrowAlign(c cutlass.GemmConfig, m, n, k int) cutlass.GemmConfig {
	for _, a := range []int{8, 4, 2, 1} {
		c.AlignA, c.AlignB, c.AlignC = a, a, a
		if c.SupportsProblem(m, n, k) {
			return c
		}
	}
	return c
}

// selectConfig applies the vendor heuristic: try every table entry on
// the internal performance model and take the fastest — the moral
// equivalent of cublasLt's pre-baked heuristics.
func (l *Library) selectConfig(m, n, k int) cutlass.GemmConfig {
	var best cutlass.GemmConfig
	bestT := -1.0
	for _, c := range l.configs {
		c = narrowAlign(c, m, n, k)
		g := &cutlass.Gemm{Config: c, Epilogue: cutlass.DefaultEpilogue()}
		t := l.dev.KernelTime(g.Desc(l.dev, m, n, k))
		if bestT < 0 || t < bestT {
			bestT = t
			best = c
		}
	}
	return best
}

// GemmTime prices D = A·B for an m×n×k FP16 GEMM through the library's
// selected kernel.
func (l *Library) GemmTime(m, n, k int) float64 {
	cfg := l.selectConfig(m, n, k)
	g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
	return l.dev.KernelTime(g.Desc(l.dev, m, n, k))
}

// Gemm executes the GEMM functionally through the selected kernel.
func (l *Library) Gemm(a, b *tensor.Tensor) *tensor.Tensor {
	as, bs := a.Shape(), b.Shape()
	cfg := l.selectConfig(as[0], bs[1], as[1])
	g := &cutlass.Gemm{Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
	return g.Run(a, b, nil)
}

// ConvTime prices a forward convolution through the library.
func (l *Library) ConvTime(s cutlass.ConvShape) float64 {
	m, n, k := s.ImplicitGemm()
	cfg := l.selectConfig(m, n, k)
	// Conv alignment is constrained by channels.
	for _, a := range []int{8, 4, 2, 1} {
		if s.IC%a == 0 && s.OC%a == 0 {
			cfg.AlignA, cfg.AlignB, cfg.AlignC = a, a, a
			break
		}
	}
	conv := &cutlass.Conv2D{Shape: s, Config: cfg, Epilogue: cutlass.DefaultEpilogue()}
	return l.dev.KernelTime(conv.Desc(l.dev))
}

// SupportsEpilogue reports whether the fixed-function API can fuse the
// requested epilogue. Only identity and bias+ReLU exist in the closed
// op set — this inflexibility is Bolt's motivation for template
// customization (paper §2.1, §3.1).
func (l *Library) SupportsEpilogue(e cutlass.Epilogue) bool {
	switch e.Act {
	case cutlass.ActIdentity, cutlass.ActReLU:
		return true
	default:
		return false
	}
}

// SupportsPersistentFusion is always false: fixed-function libraries
// cannot fuse back-to-back GEMMs/Convs.
func (l *Library) SupportsPersistentFusion() bool { return false }

// Describe returns a short description of the kernel the heuristic
// picks for a problem, for diagnostics.
func (l *Library) Describe(m, n, k int) string {
	cfg := l.selectConfig(m, n, k)
	return fmt.Sprintf("%s for (%d,%d,%d)", cfg.Name(), m, n, k)
}
