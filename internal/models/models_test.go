package models

import (
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

func countOp(g *relay.Graph, op relay.OpKind) int { return g.CountOp(op) }

func TestVGG16Structure(t *testing.T) {
	g := VGG(16, 32)
	if n := countOp(g, relay.OpConv2D); n != 13 {
		t.Errorf("VGG-16 has %d convs, want 13", n)
	}
	if n := countOp(g, relay.OpDense); n != 3 {
		t.Errorf("VGG-16 has %d dense, want 3", n)
	}
	if n := countOp(g, relay.OpMaxPool); n != 5 {
		t.Errorf("VGG-16 has %d pools, want 5", n)
	}
	if !g.Output.Shape.Equal(tensor.Shape{32, 1000}) {
		t.Errorf("output shape %v", g.Output.Shape)
	}
}

func TestVGG19Structure(t *testing.T) {
	g := VGG(19, 8)
	if n := countOp(g, relay.OpConv2D); n != 16 {
		t.Errorf("VGG-19 has %d convs, want 16", n)
	}
}

func TestResNet18Structure(t *testing.T) {
	g := ResNet(18, 32)
	// stem + 8 blocks * 2 convs + 3 downsample 1x1 = 20
	if n := countOp(g, relay.OpConv2D); n != 20 {
		t.Errorf("ResNet-18 has %d convs, want 20", n)
	}
	if n := countOp(g, relay.OpBatchNorm); n != 20 {
		t.Errorf("ResNet-18 has %d BNs, want 20", n)
	}
	if n := countOp(g, relay.OpAdd); n != 8 {
		t.Errorf("ResNet-18 has %d residual adds, want 8", n)
	}
	if !g.Output.Shape.Equal(tensor.Shape{32, 1000}) {
		t.Errorf("output shape %v", g.Output.Shape)
	}
}

func TestResNet50Structure(t *testing.T) {
	g := ResNet(50, 4)
	// stem + 16 bottlenecks * 3 + 4 downsamples = 53
	if n := countOp(g, relay.OpConv2D); n != 53 {
		t.Errorf("ResNet-50 has %d convs, want 53", n)
	}
	if n := countOp(g, relay.OpAdd); n != 16 {
		t.Errorf("ResNet-50 has %d residual adds, want 16", n)
	}
}

func TestRepVGGStructure(t *testing.T) {
	// A0: 1 + 2 + 4 + 14 + 1 = 22 convs.
	g := RepVGG("A0", 32, RepVGGOptions{})
	if n := countOp(g, relay.OpConv2D); n != 22 {
		t.Errorf("RepVGG-A0 has %d convs, want 22", n)
	}
	if n := countOp(g, relay.OpBatchNorm); n != 0 {
		t.Error("deploy-mode RepVGG must have no BN")
	}
	// B0: 1 + 4 + 6 + 16 + 1 = 28.
	g = RepVGG("B0", 32, RepVGGOptions{})
	if n := countOp(g, relay.OpConv2D); n != 28 {
		t.Errorf("RepVGG-B0 has %d convs, want 28", n)
	}
}

func TestRepVGGAugAddsPointwise(t *testing.T) {
	plain := RepVGG("A0", 8, RepVGGOptions{})
	aug := RepVGG("A0", 8, RepVGGOptions{Deepen1x1: true})
	// All 21 non-head 3x3 convs gain a 1x1 follower.
	want := countOp(plain, relay.OpConv2D) + 21
	if n := countOp(aug, relay.OpConv2D); n != want {
		t.Errorf("augmented A0 has %d convs, want %d", n, want)
	}
	partial := RepVGG("A0", 8, RepVGGOptions{Deepen1x1: true, Deepen1x1Layers: 3})
	if n := countOp(partial, relay.OpConv2D); n != countOp(plain, relay.OpConv2D)+3 {
		t.Errorf("partial deepening added %d convs, want 3", n-countOp(plain, relay.OpConv2D))
	}
}

func TestRepVGGActivationOption(t *testing.T) {
	g := RepVGG("A0", 8, RepVGGOptions{Activation: cutlass.ActHardswish})
	for _, n := range g.Nodes {
		if n.Op == relay.OpActivation && n.Act != cutlass.ActHardswish {
			t.Fatalf("activation %v leaked in", n.Act)
		}
	}
}

func TestRepVGGWidths(t *testing.T) {
	a0 := RepVGGVariant("A0")
	if a0.Width[0] != 48 || a0.Width[4] != 1280 {
		t.Errorf("A0 widths %v", a0.Width)
	}
	b0 := RepVGGVariant("B0")
	if b0.Blocks[2] != 16 || b0.Width[3] != 256 {
		t.Errorf("B0 spec %+v", b0)
	}
}

func TestBERTGemms(t *testing.T) {
	ws := BERTGemms(32, 40)
	if len(ws) != 3 {
		t.Fatalf("%d BERT workloads", len(ws))
	}
	if ws[0].M != 1280 {
		t.Errorf("M = %d, want 32*40=1280", ws[0].M)
	}
	if ws[1].N != 3072 || ws[2].K != 3072 {
		t.Error("FFN dims wrong")
	}
}

func TestTableWorkloads(t *testing.T) {
	if len(Table1Workloads()) != 4 {
		t.Error("Table 1 has 4 rows")
	}
	t2 := Table2Workloads()
	if len(t2) != 6 {
		t.Error("Table 2 has 6 rows")
	}
	for _, w := range t2 {
		if w.Then.KH != 1 || w.Then.StrideH != 1 || w.Then.PadH != 0 {
			t.Error("Table 2 second conv must be 1x1/s1/p0")
		}
		if w.Then.IC != w.First.OC {
			t.Error("Table 2 channel chaining broken")
		}
		if w.Then.H != w.First.OutH() {
			t.Error("Table 2 spatial chaining broken")
		}
	}
	for _, w := range Table3Workloads() {
		if w.IC%8 == 0 {
			t.Error("Table 3 workloads must have unaligned IC")
		}
		if err := w.Shape().Validate(); err != nil {
			t.Errorf("Table 3 shape invalid: %v", err)
		}
	}
}

func TestLazyWeightsKeepMemoryBounded(t *testing.T) {
	g := VGG(16, 32)
	// The 25088x4096 FC weight must exist but stay zero (lazy).
	for _, n := range g.Nodes {
		if n.Op == relay.OpConstant && n.Value.NumElements() > 1<<20 {
			if n.Value.Data()[0] != 0 || n.Value.Data()[12345] != 0 {
				t.Error("large weight was eagerly initialized")
			}
		}
	}
}
