// Package models is the model zoo: relay-graph builders for every
// network and workload the paper evaluates — VGG-16/19, ResNet-18/50,
// RepVGG-A0/A1/B0 (deploy mode) and their system-friendly augmented
// variants, the BERT encoder GEMMs of Figures 1/8a, and the
// recommendation-model MLP pairs of Table 1.
//
// All graphs are authored in NCHW FP16 (the PyTorch convention), so
// Bolt's layout-transformation pass has real work to do. Weights are
// deterministic pseudo-random (no trained checkpoints; the performance
// experiments never depend on weight values).
package models

import (
	"fmt"

	"bolt/internal/cutlass"
	"bolt/internal/relay"
	"bolt/internal/tensor"
)

// ImageNet input geometry.
const (
	imageSize = 224
	numClass  = 1000
)

// VGG builds VGG-16 or VGG-19 (Simonyan & Zisserman) with BiasAdd+ReLU
// after every conv and the three FC layers.
func VGG(depth, batch int) *relay.Graph { return VGGAt(depth, batch, imageSize) }

// VGGAt builds VGG at a custom input resolution (size must survive the
// five 2x2 pools, i.e. be a positive multiple of 32). Reduced sizes
// make functional-execution tests affordable; performance experiments
// use the ImageNet default.
func VGGAt(depth, batch, size int) *relay.Graph {
	var blocks [][]int
	switch depth {
	case 16:
		blocks = [][]int{{64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}}
	case 19:
		blocks = [][]int{{64, 64}, {128, 128}, {256, 256, 256, 256}, {512, 512, 512, 512}, {512, 512, 512, 512}}
	default:
		panic(fmt.Sprintf("models: no VGG-%d", depth))
	}
	b := relay.NewBuilder()
	b.LazyWeights = true
	x := b.Input("data", tensor.FP16, batch, 3, size, size)
	ic := 3
	li := 0
	for _, stage := range blocks {
		for _, oc := range stage {
			w := b.Weight(fmt.Sprintf("conv%d_w", li), oc, 3, 3, ic)
			x = b.Conv2D(x, w, 1, 1)
			x = b.BiasAdd(x, b.Weight(fmt.Sprintf("conv%d_b", li), oc))
			x = b.Activation(x, cutlass.ActReLU)
			ic = oc
			li++
		}
		x = b.MaxPool(x, 2, 2, 0)
	}
	x = b.Flatten(x) // 512 * 7 * 7 = 25088
	for i, units := range []int{4096, 4096} {
		x = b.Dense(x, b.Weight(fmt.Sprintf("fc%d_w", i), x.Shape[1], units))
		x = b.BiasAdd(x, b.Weight(fmt.Sprintf("fc%d_b", i), units))
		x = b.Activation(x, cutlass.ActReLU)
	}
	x = b.Dense(x, b.Weight("fc2_w", 4096, numClass))
	x = b.BiasAdd(x, b.Weight("fc2_b", numClass))
	return b.Build(b.Softmax(x))
}

// bnParams creates the four inference-mode BN constant vectors with
// benign values (unit variance, small random gamma scatter).
func bnParams(b *relay.Builder, name string, c int) (gamma, beta, mean, variance *relay.Node) {
	ones := make([]float32, c)
	zeros := make([]float32, c)
	vr := make([]float32, c)
	for i := range ones {
		ones[i] = 1
		vr[i] = 1
	}
	gamma = b.Constant(name+"_gamma", tensor.FromData(tensor.FP32, ones, c))
	beta = b.Constant(name+"_beta", tensor.FromData(tensor.FP32, zeros, c))
	mean = b.Constant(name+"_mean", tensor.FromData(tensor.FP32, append([]float32{}, zeros...), c))
	variance = b.Constant(name+"_var", tensor.FromData(tensor.FP32, vr, c))
	return
}

// convBN adds conv + BatchNorm (+ optional ReLU).
func convBN(b *relay.Builder, x *relay.Node, name string, ic, oc, kernel, stride, pad int, relu bool) *relay.Node {
	w := b.Weight(name+"_w", oc, kernel, kernel, ic)
	x = b.Conv2D(x, w, stride, pad)
	ga, be, me, va := bnParams(b, name, oc)
	x = b.BatchNorm(x, ga, be, me, va, 1e-5)
	if relu {
		x = b.Activation(x, cutlass.ActReLU)
	}
	return x
}

// ResNet builds ResNet-18 (basic blocks) or ResNet-50 (bottlenecks).
func ResNet(depth, batch int) *relay.Graph { return ResNetAt(depth, batch, imageSize) }

// ResNetAt builds ResNet at a custom input resolution (the classifier
// adapts via global average pooling).
func ResNetAt(depth, batch, size int) *relay.Graph {
	b := relay.NewBuilder()
	b.LazyWeights = true
	x := b.Input("data", tensor.FP16, batch, 3, size, size)
	x = convBN(b, x, "stem", 3, 64, 7, 2, 3, true)
	x = b.MaxPool(x, 3, 2, 1)

	switch depth {
	case 18:
		chans := []int{64, 128, 256, 512}
		reps := []int{2, 2, 2, 2}
		ic := 64
		for s, c := range chans {
			for r := 0; r < reps[s]; r++ {
				stride := 1
				if r == 0 && s > 0 {
					stride = 2
				}
				x = basicBlock(b, x, fmt.Sprintf("s%db%d", s, r), ic, c, stride)
				ic = c
			}
		}
	case 50:
		chans := []int{64, 128, 256, 512}
		reps := []int{3, 4, 6, 3}
		ic := 64
		for s, c := range chans {
			for r := 0; r < reps[s]; r++ {
				stride := 1
				if r == 0 && s > 0 {
					stride = 2
				}
				x = bottleneck(b, x, fmt.Sprintf("s%db%d", s, r), ic, c, stride)
				ic = c * 4
			}
		}
	default:
		panic(fmt.Sprintf("models: no ResNet-%d", depth))
	}
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, b.Weight("fc_w", x.Shape[1], numClass))
	x = b.BiasAdd(x, b.Weight("fc_b", numClass))
	return b.Build(b.Softmax(x))
}

func basicBlock(b *relay.Builder, x *relay.Node, name string, ic, oc, stride int) *relay.Node {
	identity := x
	y := convBN(b, x, name+"_1", ic, oc, 3, stride, 1, true)
	y = convBN(b, y, name+"_2", oc, oc, 3, 1, 1, false)
	if stride != 1 || ic != oc {
		identity = convBN(b, x, name+"_ds", ic, oc, 1, stride, 0, false)
	}
	return b.Activation(b.Add(y, identity), cutlass.ActReLU)
}

func bottleneck(b *relay.Builder, x *relay.Node, name string, ic, width, stride int) *relay.Node {
	out := width * 4
	identity := x
	y := convBN(b, x, name+"_1", ic, width, 1, 1, 0, true)
	y = convBN(b, y, name+"_2", width, width, 3, stride, 1, true)
	y = convBN(b, y, name+"_3", width, out, 1, 1, 0, false)
	if stride != 1 || ic != out {
		identity = convBN(b, x, name+"_ds", ic, out, 1, stride, 0, false)
	}
	return b.Activation(b.Add(y, identity), cutlass.ActReLU)
}

// RepVGGSpec describes one RepVGG variant's deploy-mode architecture.
type RepVGGSpec struct {
	Name   string
	Blocks []int // blocks per stage (stages 1-4; stage 0 is one layer)
	Width  []int // output channels per stage (5 entries)
}

// RepVGGVariant returns the published A0/A1/B0 geometry (Ding et al.,
// CVPR 2021, deploy mode: every block is a single 3x3 conv + ReLU).
func RepVGGVariant(name string) RepVGGSpec {
	switch name {
	case "A0":
		return RepVGGSpec{Name: name, Blocks: []int{2, 4, 14, 1}, Width: []int{48, 48, 96, 192, 1280}}
	case "A1":
		return RepVGGSpec{Name: name, Blocks: []int{2, 4, 14, 1}, Width: []int{64, 64, 128, 256, 1280}}
	case "B0":
		return RepVGGSpec{Name: name, Blocks: []int{4, 6, 16, 1}, Width: []int{64, 64, 128, 256, 1280}}
	default:
		panic(fmt.Sprintf("models: no RepVGG-%s", name))
	}
}

// RepVGGOptions customizes a build for the system-model codesign study.
type RepVGGOptions struct {
	// Activation replaces ReLU everywhere (Table 4's principle 1).
	Activation cutlass.Activation
	// Deepen1x1 adds a channel-preserving 1x1 conv (+activation) after
	// each 3x3 conv (Table 5's principle 2). The final wide stage is
	// skipped, as in the paper.
	Deepen1x1 bool
	// Deepen1x1Layers limits how many leading 3x3 convs get a 1x1
	// follower (0 = all eligible); the paper's flexible trade-off knob.
	Deepen1x1Layers int
}

// RepVGG builds a deploy-mode RepVGG variant.
func RepVGG(variant string, batch int, opts RepVGGOptions) *relay.Graph {
	return RepVGGAt(variant, batch, imageSize, opts)
}

// RepVGGAt builds a deploy-mode RepVGG variant at a custom input
// resolution.
func RepVGGAt(variant string, batch, size int, opts RepVGGOptions) *relay.Graph {
	spec := RepVGGVariant(variant)
	act := opts.Activation
	if act == cutlass.ActIdentity {
		act = cutlass.ActReLU
	}
	b := relay.NewBuilder()
	b.LazyWeights = true
	x := b.Input("data", tensor.FP16, batch, 3, size, size)

	li := 0
	deepened := 0
	addConv := func(x *relay.Node, ic, oc, stride int, wide bool) *relay.Node {
		w := b.Weight(fmt.Sprintf("l%d_w", li), oc, 3, 3, ic)
		x = b.Conv2D(x, w, stride, 1)
		x = b.BiasAdd(x, b.Weight(fmt.Sprintf("l%d_b", li), oc))
		x = b.Activation(x, act)
		li++
		if opts.Deepen1x1 && !wide && (opts.Deepen1x1Layers == 0 || deepened < opts.Deepen1x1Layers) {
			// System-friendly deepening: 1x1 conv with matched channels,
			// stride 1, no padding — exactly the persistent-fusion shape.
			pw := b.Weight(fmt.Sprintf("l%d_pw", li), oc, 1, 1, oc)
			x = b.Conv2D(x, pw, 1, 0)
			x = b.BiasAdd(x, b.Weight(fmt.Sprintf("l%d_pb", li), oc))
			x = b.Activation(x, act)
			deepened++
		}
		return x
	}

	// Stage 0: one 3x3 stride-2 layer from RGB.
	x = addConv(x, 3, spec.Width[0], 2, false)
	ic := spec.Width[0]
	for s := 0; s < 4; s++ {
		oc := spec.Width[s+1]
		wide := s == 3 // the 1280-channel head stage is never deepened
		for r := 0; r < spec.Blocks[s]; r++ {
			stride := 1
			if r == 0 {
				stride = 2
			}
			x = addConv(x, ic, oc, stride, wide)
			ic = oc
		}
	}
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, b.Weight("fc_w", ic, numClass))
	x = b.BiasAdd(x, b.Weight("fc_b", numClass))
	return b.Build(b.Softmax(x))
}

// BERTMLP builds the BERT encoder FFN block as a servable graph: rows
// of the hidden dimension through the up-projection — whose BiasAdd +
// GELU ride the GEMM's epilogue after fusion — and back down. This is
// the Figure-1 workload in graph form, the served counterpart of the
// standalone BERTGemms kernels below.
// Weights are eagerly initialized (no LazyWeights): the mixed-precision
// accuracy gate diffs real arithmetic against the FP32 oracle, which is
// vacuous on zero weights.
func BERTMLP(batch, hidden, ffn int) *relay.Graph {
	b := relay.NewBuilder()
	x := b.Input("tokens", tensor.FP16, batch, hidden)
	x = b.Dense(x, b.Weight("up_w", hidden, ffn))
	x = b.BiasAdd(x, b.Weight("up_b", ffn))
	x = b.Activation(x, cutlass.ActGELU)
	x = b.Dense(x, b.Weight("down_w", ffn, hidden))
	x = b.BiasAdd(x, b.Weight("down_b", hidden))
	return b.Build(x)
}

// BERTGemms returns the encoder GEMM workloads of Figures 1 and 8a for
// the given batch size and sequence length: M = batch*seq rows through
// the attention/FFN projections of BERT-base (hidden 768, FFN 3072).
func BERTGemms(batch, seq int) []struct{ M, N, K int } {
	m := batch * seq
	return []struct{ M, N, K int }{
		{m, 768, 768},  // QKV/output projections
		{m, 3072, 768}, // FFN up
		{m, 768, 3072}, // FFN down
	}
}

// B2BGemmWorkload is one back-to-back GEMM pair from Table 1
// (recommendation models: DCNv2, DLRM).
type B2BGemmWorkload struct {
	M      int
	N0, K0 int
	N1     int
}

// Table1Workloads returns the paper's four persistent-GEMM-fusion
// pairs.
func Table1Workloads() []B2BGemmWorkload {
	return []B2BGemmWorkload{
		{M: 2464, N0: 1, K0: 4, N1: 4},
		{M: 16384, N0: 64, K0: 256, N1: 16},
		{M: 32768, N0: 128, K0: 576, N1: 64},
		{M: 128320, N0: 32, K0: 96, N1: 96},
	}
}

// B2BConvWorkload is one 3x3 + 1x1 pair from Table 2 (RepVGG early
// layers).
type B2BConvWorkload struct {
	First cutlass.ConvShape
	Then  cutlass.ConvShape
}

// Table2Workloads returns the paper's six persistent-Conv-fusion pairs
// (batch 32).
func Table2Workloads() []B2BConvWorkload {
	mk := func(h, ic, oc, stride int) B2BConvWorkload {
		first := cutlass.Conv3x3(32, h, h, ic, oc, stride, 1)
		return B2BConvWorkload{
			First: first,
			Then:  cutlass.Conv1x1(32, first.OutH(), first.OutW(), oc, oc),
		}
	}
	return []B2BConvWorkload{
		mk(224, 3, 48, 2),
		mk(112, 48, 48, 2),
		mk(56, 48, 48, 1),
		mk(224, 3, 64, 2),
		mk(112, 64, 64, 2),
		mk(56, 64, 64, 1),
	}
}

// Table3Workload is one unaligned-channel convolution from Table 3
// (production workloads with IC not divisible by 8).
type Table3Workload struct {
	N, H, W, IC, OC, KH, KW, PadH, PadW int
}

// Shape converts to a ConvShape (stride 1, as in the paper).
func (w Table3Workload) Shape() cutlass.ConvShape {
	return cutlass.ConvShape{N: w.N, H: w.H, W: w.W, IC: w.IC, OC: w.OC,
		KH: w.KH, KW: w.KW, StrideH: 1, StrideW: 1, PadH: w.PadH, PadW: w.PadW}
}

// Table3Workloads returns the paper's six padding benchmarks.
func Table3Workloads() []Table3Workload {
	return []Table3Workload{
		{32, 20, 26, 46, 32, 3, 3, 1, 1},
		{32, 20, 26, 46, 32, 5, 5, 2, 2},
		{128, 14, 19, 46, 32, 5, 7, 0, 0},
		{288, 11, 15, 46, 32, 5, 7, 0, 0},
		{32, 20, 26, 174, 64, 3, 3, 1, 1},
		{32, 20, 26, 174, 64, 5, 5, 2, 2},
	}
}
