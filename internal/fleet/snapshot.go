package fleet

import (
	"bolt/internal/obs"
)

// This file is the fleet's metrics exposition: every replica fills
// the same obs.Registry (counters add, gauges keep their maximum,
// histograms merge — so the per-stage latency histograms aggregate
// across the whole fleet), then the router's own counters are layered
// on top. Per-worker rows share worker indices across replicas and
// therefore add; the replica-resolved story lives in Stats.

// Snapshot renders the fleet's metrics as a deterministic text
// exposition: the merged replica expositions (request/batch counters,
// stage-latency histograms, per-priority breakdowns) plus the
// fleet-level routing counters (routed/delivered, hedges, retries,
// autoscale events). It works whether or not tracing is enabled.
func (f *Fleet) Snapshot() string {
	reg := obs.NewRegistry()
	f.FillRegistry(reg)
	return reg.Render()
}

// FillRegistry adds the fleet's metric rows into reg: each replica's
// serve exposition merged together, plus the router's counters.
func (f *Fleet) FillRegistry(reg *obs.Registry) {
	f.mu.Lock()
	reps := append([]*replica(nil), f.replicas...)
	var hi, hw, hc, ret, grow, shrink int64
	var liveCount int
	for _, r := range reps {
		hi += r.hedgesIssued
		hw += r.hedgesWon
		hc += r.hedgesCanceled
		ret += r.retries
		grow += r.growEvents
		shrink += r.shrinkEvents
		if r.live {
			liveCount++
		}
	}
	routed, delivered, delErrs := f.routed, f.delivered, f.deliveredErrs
	f.mu.Unlock()

	// Replica snapshots lock each server; taken outside f.mu so a slow
	// replica cannot stall routing.
	for _, r := range reps {
		r.srv.FillRegistry(reg)
	}
	reg.Counter("fleet_routed_total", nil, float64(routed))
	reg.Counter("fleet_delivered_total", nil, float64(delivered))
	reg.Counter("fleet_delivered_errors_total", nil, float64(delErrs))
	reg.Counter("fleet_hedges_issued_total", nil, float64(hi))
	reg.Counter("fleet_hedges_won_total", nil, float64(hw))
	reg.Counter("fleet_hedges_canceled_total", nil, float64(hc))
	reg.Counter("fleet_retries_total", nil, float64(ret))
	reg.Counter("fleet_grow_events_total", nil, float64(grow))
	reg.Counter("fleet_shrink_events_total", nil, float64(shrink))
	reg.Gauge("fleet_live_replicas", nil, float64(liveCount))
}
