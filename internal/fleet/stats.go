package fleet

import (
	"bolt/internal/serve"
)

// ReplicaStats is one replica's share of the fleet's work: its full
// serve.Stats plus the router- and autoscaler-level counters charged
// to it. Every counter sums exactly to the corresponding Stats
// aggregate across the Replicas slice (retired replicas included —
// their served traffic stays counted).
type ReplicaStats struct {
	// Replica is the replica's stable id.
	Replica int
	// Live reports whether the replica is currently in the routing set.
	Live bool
	// Grown reports that the replica was added at runtime (autoscaler
	// or Grow) rather than configured at New.
	Grown bool
	// Serve is the replica's own serving snapshot (per-device rows
	// included).
	Serve serve.Stats
	// HedgesIssued counts hedges placed because an attempt on this
	// replica looked at risk; HedgesWon counts hedged duplicates this
	// replica won; HedgesCanceled counts this replica's attempts
	// drained as losers.
	HedgesIssued   int64
	HedgesWon      int64
	HedgesCanceled int64
	// Retries counts follow-up attempts triggered by this replica's
	// failed batches.
	Retries int64
	// GrowEvents/ShrinkEvents record this replica's autoscale
	// transitions (1 when it was grown / shrunk).
	GrowEvents   int64
	ShrinkEvents int64
}

// Stats is a fleet snapshot: per-replica rows plus their exact
// aggregate. Serve sums every replica's counters (a hedged request
// that ran on two replicas counts once per replica — the aggregate is
// work done, not requests routed; Routed/Delivered count the
// caller-visible story). Serve.SimMakespan is the largest replica
// makespan and Serve.BacklogSeconds the fleet-wide modeled backlog.
type Stats struct {
	Replicas []ReplicaStats
	Serve    serve.Stats

	HedgesIssued   int64
	HedgesWon      int64
	HedgesCanceled int64
	Retries        int64
	GrowEvents     int64
	ShrinkEvents   int64

	// Routed counts requests the fleet accepted; Delivered counts
	// results handed back (equal once drained — no request is lost),
	// and DeliveredErrors counts those delivered with an error.
	Routed          int64
	Delivered       int64
	DeliveredErrors int64
}

// Stats snapshots the fleet. Counters mutated while the snapshot is
// taken may land on either side; quiesce (or Close) first when exact
// sums matter.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	reps := append([]*replica(nil), f.replicas...)
	out := Stats{
		Routed:          f.routed,
		Delivered:       f.delivered,
		DeliveredErrors: f.deliveredErrs,
	}
	rows := make([]ReplicaStats, len(reps))
	for i, r := range reps {
		rows[i] = ReplicaStats{
			Replica:        r.id,
			Live:           r.live,
			Grown:          r.grown,
			HedgesIssued:   r.hedgesIssued,
			HedgesWon:      r.hedgesWon,
			HedgesCanceled: r.hedgesCanceled,
			Retries:        r.retries,
			GrowEvents:     r.growEvents,
			ShrinkEvents:   r.shrinkEvents,
		}
	}
	f.mu.Unlock()
	// Per-replica serve snapshots lock each server; taken outside f.mu
	// so a slow replica cannot stall routing.
	agg := serve.Stats{
		BatchSizes:        make(map[int]int64),
		PriorityLatencies: make(map[serve.Priority][]float64),
		Stages:            make(map[serve.Priority]serve.StageBreakdown),
	}
	for i, r := range reps {
		st := r.srv.Stats()
		rows[i].Serve = st
		agg.Requests += st.Requests
		agg.Batches += st.Batches
		agg.Evictions += st.Evictions
		agg.FailedBatches += st.FailedBatches
		agg.PaddedBatches += st.PaddedBatches
		agg.PaddedRows += st.PaddedRows
		agg.BacklogSeconds += st.BacklogSeconds
		for k, v := range st.BatchSizes {
			agg.BatchSizes[k] += v
		}
		agg.Latencies = append(agg.Latencies, st.Latencies...)
		for pri, w := range st.PriorityLatencies {
			agg.PriorityLatencies[pri] = append(agg.PriorityLatencies[pri], w...)
		}
		for pri, b := range st.Stages {
			merged := agg.Stages[pri]
			merged.Add(b)
			agg.Stages[pri] = merged
		}
		agg.Devices = append(agg.Devices, st.Devices...)
		if st.SimMakespan > agg.SimMakespan {
			agg.SimMakespan = st.SimMakespan
		}
		out.HedgesIssued += rows[i].HedgesIssued
		out.HedgesWon += rows[i].HedgesWon
		out.HedgesCanceled += rows[i].HedgesCanceled
		out.Retries += rows[i].Retries
		out.GrowEvents += rows[i].GrowEvents
		out.ShrinkEvents += rows[i].ShrinkEvents
	}
	out.Replicas = rows
	out.Serve = agg
	return out
}
