// Package fleet is Bolt's replicated-serving layer: N serve.Server
// replicas (each its own device pool and simulated clocks) behind one
// router. It is the in-server device pool one level up — the
// millions-of-users story — and keeps the repo's accounting
// convention: execution is functional on the host, time is priced on
// each replica's simulated devices, so fleet-level experiments stay
// deterministic.
//
// The router places every request on the live replica with the lowest
// modeled EFT backlog (serve.Server.BacklogSeconds — the same
// finish-time model in-server dispatch uses, so the two levels of
// load balancing speak one currency). Robustness is first-class:
//
//   - a seedable failure injector can kill or stall any replica's
//     worker mid-stream (through serve.ServerOptions.Fault);
//   - a request whose deadline is at risk is hedged on a second
//     replica — first healthy result wins, the loser is drained and
//     counted as canceled (the serving-side analogue of concurrent
//     error detection: redundant execution masks a faulty stream);
//   - a failed batch is retried once on a different replica, so an
//     injected fault costs latency, not answers;
//   - an autoscaler grows the fleet on sustained backlog and shrinks
//     it when idle, and a replica added at runtime warms its tenants'
//     variants measurement-free when the deploy closure shares a
//     tuning log with its peers (the bolt wrapper wires exactly that).
//
// Stats keeps per-replica rows (hedges, retries, autoscale events,
// and each replica's full serve.Stats) that sum exactly to the fleet
// aggregate, so fleet accounting is auditable the same way per-device
// accounting is inside one server.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bolt/internal/gpu"
	"bolt/internal/obs"
	"bolt/internal/serve"
	"bolt/internal/tensor"
)

// ErrClosed is returned by fleet calls after Close.
var ErrClosed = errors.New("fleet: closed")

// ErrNoReplica is returned when a request cannot be placed because no
// live replica exists (all shrunk or closed).
var ErrNoReplica = errors.New("fleet: no live replica")

// ReplicaConfig sizes one replica's worker pool: either Workers
// homogeneous streams or one worker per Devices entry (Devices wins
// when both are set, mirroring serve.ServerOptions).
type ReplicaConfig struct {
	Workers int
	Devices []*gpu.Device
}

// HedgeOptions configures request hedging.
type HedgeOptions struct {
	// Timeout is how long the router waits on the first attempt before
	// issuing a duplicate on a second replica (first healthy result
	// wins, the loser is drained). Zero disables hedging.
	Timeout time.Duration
	// BacklogSeconds, when > 0, hedges immediately at placement time if
	// the chosen replica's modeled backlog already exceeds it — the
	// deadline is at risk before the request even queues.
	BacklogSeconds float64
}

// Options configures a Fleet.
type Options struct {
	// Replicas are the initial replica pools. Nil means one single
	// homogeneous worker.
	Replicas []ReplicaConfig
	// QueueDepth, BatchWindow and CompileJobs are passed to every
	// replica's serve.ServerOptions.
	QueueDepth  int
	BatchWindow time.Duration
	CompileJobs int
	// Hedge configures duplicate requests on at-risk deadlines.
	Hedge HedgeOptions
	// Autoscale configures backlog-driven growth/shrink.
	Autoscale AutoscaleOptions
	// Failures seeds the random failure injector (scripted injection
	// via InjectFault works regardless). Nil means no random faults.
	Failures *FailurePlan
	// OnClose runs exactly once at the end of Close, after every
	// replica drained (the bolt wrapper persists the shared tuning log
	// here).
	OnClose func()
	// Trace, when set, records route/hedge/retry spans from the router
	// plus every replica's request-lifecycle spans into the tracer.
	// Each replica registers its own trace process ("replica N"); the
	// router's spans live under the fleet's process. Tracing never
	// touches the simulated clocks.
	Trace *obs.Tracer
	// TraceLabel names the fleet's router process in the exported trace
	// ("fleet" when empty).
	TraceLabel string
}

// tenantSpec is one deployed model's recipe, kept so replicas added
// at runtime can redeploy it through the same Deploy lifecycle.
type tenantSpec struct {
	name    string
	compile serve.CompileVariantOn
	opts    serve.DeployOptions
}

// replica is one serve.Server plus its router-level accounting. The
// counter fields are guarded by the owning Fleet's mu.
type replica struct {
	id   int
	srv  *serve.Server
	cfg  ReplicaConfig
	live bool

	grown bool // spawned by the autoscaler (or Grow), not at New

	consecFails int64 // consecutive failed attempts (health signal)

	hedgesIssued   int64 // hedges placed because this replica was slow
	hedgesWon      int64 // hedged duplicates this replica won
	hedgesCanceled int64 // this replica's attempts drained as losers
	retries        int64 // retries triggered by this replica's failures
	growEvents     int64 // 1 when this replica was added by a grow
	shrinkEvents   int64 // 1 when this replica was retired by a shrink
}

// Fleet routes requests across replicated servers. Safe for
// concurrent use.
type Fleet struct {
	opts Options
	inj  *injector

	tr      *obs.Tracer // nil when Options.Trace unset
	trProc  int         // the router's trace process id
	trShard *obs.Shard  // the router's span shard

	mu       sync.Mutex
	replicas []*replica // every replica ever, by id (retired keep their stats)
	tenants  map[string]*tenantSpec
	closed   bool

	routed        int64 // requests accepted by the fleet
	delivered     int64 // results delivered to callers
	deliveredErrs int64 // of those, delivered with an error

	consecHigh int // sustained-backlog poll streaks (autoscaler)
	consecLow  int

	// deployMu serializes tenant-set changes against replica-set
	// changes (Deploy/Undeploy vs Grow/Shrink), so a replica added
	// mid-run deploys exactly the live tenant set.
	deployMu sync.Mutex

	routeWG   sync.WaitGroup
	stopScale chan struct{}
	scaleWG   sync.WaitGroup
	closeHook sync.Once
}

// New starts a fleet with the configured initial replicas.
func New(opts Options) *Fleet {
	if len(opts.Replicas) == 0 {
		opts.Replicas = []ReplicaConfig{{Workers: 1}}
	}
	f := &Fleet{
		opts:    opts,
		inj:     newInjector(opts.Failures),
		tenants: make(map[string]*tenantSpec),
	}
	if opts.Trace != nil {
		label := opts.TraceLabel
		if label == "" {
			label = "fleet"
		}
		f.tr = opts.Trace
		f.trProc = f.tr.RegisterProcess(label)
		f.trShard = f.tr.NewShard()
	}
	for _, cfg := range opts.Replicas {
		f.addReplicaLocked(cfg, false)
	}
	if opts.Autoscale.Interval > 0 {
		f.stopScale = make(chan struct{})
		f.scaleWG.Add(1)
		go f.autoscaleLoop(f.stopScale)
	}
	return f
}

// addReplicaLocked constructs and registers one replica (caller holds
// f.mu or is New).
func (f *Fleet) addReplicaLocked(cfg ReplicaConfig, grown bool) *replica {
	r := &replica{id: len(f.replicas), cfg: cfg, live: true, grown: grown}
	if grown {
		r.growEvents = 1
	}
	r.srv = serve.NewServer(serve.ServerOptions{
		Workers:     cfg.Workers,
		Devices:     cfg.Devices,
		QueueDepth:  f.opts.QueueDepth,
		BatchWindow: f.opts.BatchWindow,
		CompileJobs: f.opts.CompileJobs,
		Fault:       f.inj.hook(r.id),
		Trace:       f.opts.Trace,
		TraceLabel:  fmt.Sprintf("replica %d", r.id),
	})
	f.replicas = append(f.replicas, r)
	return r
}

// liveLocked returns the live replicas (caller holds f.mu).
func (f *Fleet) liveLocked() []*replica {
	live := make([]*replica, 0, len(f.replicas))
	for _, r := range f.replicas {
		if r.live {
			live = append(live, r)
		}
	}
	return live
}

// Replicas returns the number of live replicas.
func (f *Fleet) Replicas() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.liveLocked())
}

// Deploy registers a model on every live replica (and on every
// replica added later). The compile closure is shared by all replicas
// — giving it a shared tuning-log cache is what makes later replicas
// warm up measurement-free.
func (f *Fleet) Deploy(name string, compile serve.CompileVariantOn, opts serve.DeployOptions) error {
	f.deployMu.Lock()
	defer f.deployMu.Unlock()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if _, dup := f.tenants[name]; dup {
		f.mu.Unlock()
		return fmt.Errorf("fleet: model %q already deployed", name)
	}
	spec := &tenantSpec{name: name, compile: compile, opts: opts}
	f.tenants[name] = spec
	live := f.liveLocked()
	f.mu.Unlock()
	for i, r := range live {
		if err := r.srv.DeployOn(name, compile, opts); err != nil {
			for _, u := range live[:i] {
				_ = u.srv.Undeploy(name)
			}
			f.mu.Lock()
			delete(f.tenants, name)
			f.mu.Unlock()
			return fmt.Errorf("fleet: replica %d: %w", r.id, err)
		}
	}
	return nil
}

// Undeploy removes a model from every live replica. Requests still
// queued for it are answered with ErrNotDeployed by each replica;
// hedged duplicates in flight drain cleanly.
func (f *Fleet) Undeploy(name string) error {
	f.deployMu.Lock()
	defer f.deployMu.Unlock()
	f.mu.Lock()
	if _, ok := f.tenants[name]; !ok {
		f.mu.Unlock()
		return fmt.Errorf("fleet: model %q: %w", name, serve.ErrNotDeployed)
	}
	delete(f.tenants, name)
	live := f.liveLocked()
	f.mu.Unlock()
	var errs []error
	for _, r := range live {
		if err := r.srv.Undeploy(name); err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", r.id, err))
		}
	}
	return errors.Join(errs...)
}

// Warm compiles a model's variants on every live replica (all its
// buckets when none are named).
func (f *Fleet) Warm(model string, buckets ...int) error {
	f.mu.Lock()
	live := f.liveLocked()
	f.mu.Unlock()
	var errs []error
	for _, r := range live {
		if err := r.srv.Warm(model, buckets...); err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", r.id, err))
		}
	}
	return errors.Join(errs...)
}

// Infer routes one request and blocks for its result.
func (f *Fleet) Infer(model string, inputs map[string]*tensor.Tensor, opts serve.InferOptions) (*tensor.Tensor, error) {
	ch, err := f.InferAsync(model, inputs, opts)
	if err != nil {
		return nil, err
	}
	res := <-ch
	return res.Output, res.Err
}

// InferAsync places one request on the live replica with the lowest
// modeled EFT backlog and returns the channel its Result arrives on.
// The enqueue happens synchronously in the caller's goroutine (so a
// single producer observes the same arrival order a bare server
// would, and replica backpressure blocks the caller exactly like
// serve.Server.InferAsync); only hedge/retry supervision runs in the
// background.
func (f *Fleet) InferAsync(model string, inputs map[string]*tensor.Tensor, opts serve.InferOptions) (<-chan Result, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := f.tenants[model]; !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: model %q: %w", model, serve.ErrNotDeployed)
	}
	r, backlog := f.pickLocked(nil)
	if r == nil {
		f.mu.Unlock()
		return nil, ErrNoReplica
	}
	f.routed++
	canHedge := len(f.liveLocked()) > 1
	f.mu.Unlock()
	ch, err := r.srv.InferAsync(model, inputs, opts)
	if err != nil {
		f.mu.Lock()
		f.routed--
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: replica %d: %w", r.id, err)
	}
	hedgeNow := canHedge && f.opts.Hedge.BacklogSeconds > 0 &&
		backlog > f.opts.Hedge.BacklogSeconds
	out := make(chan Result, 1)
	f.routeWG.Add(1)
	go f.watch(model, inputs, opts, attempt{rep: r, ch: ch}, hedgeNow, out)
	return out, nil
}

// Close stops accepting requests, drains every replica (all accepted
// requests are answered), waits for in-flight routing supervision,
// and runs OnClose once. Safe to call more than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	wasClosed := f.closed
	f.closed = true
	live := f.liveLocked()
	stop := f.stopScale
	f.stopScale = nil
	f.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	f.scaleWG.Wait()
	if !wasClosed {
		for _, r := range live {
			r.srv.Close()
		}
	}
	f.routeWG.Wait()
	f.closeHook.Do(func() {
		if f.opts.OnClose != nil {
			f.opts.OnClose()
		}
	})
}
