package fleet

import (
	"time"

	"bolt/internal/obs"
	"bolt/internal/serve"
	"bolt/internal/tensor"
)

// unhealthyAfter is how many consecutive failed attempts mark a
// replica unhealthy: the router stops picking it (unless it is the
// only choice) until a success resets the streak.
const unhealthyAfter = 3

// Result is one completed fleet request: the replica's serve.Result
// plus the routing story.
type Result struct {
	serve.Result
	// Replica is the replica that produced the delivered result.
	Replica int
	// Hedged reports that a duplicate attempt was issued for this
	// request (whether or not the hedge won).
	Hedged bool
	// Retried reports that the delivered result came from a retry after
	// the first attempt failed.
	Retried bool
}

// attempt is one placement of a request on one replica.
type attempt struct {
	rep *replica
	ch  <-chan serve.Result
}

// pickLocked chooses the live replica with the lowest modeled EFT
// backlog, skipping unhealthy replicas (and exclude) unless nothing
// else is live. Returns the choice and its backlog (caller holds
// f.mu).
func (f *Fleet) pickLocked(exclude *replica) (*replica, float64) {
	var best *replica
	bestBacklog := 0.0
	bestHealthy := false
	for _, r := range f.replicas {
		if !r.live || r == exclude {
			continue
		}
		backlog := r.srv.BacklogSeconds()
		healthy := r.consecFails < unhealthyAfter
		// A healthy replica always beats an unhealthy one; within a
		// health class, lowest backlog wins (ties keep the lowest id, so
		// routing is deterministic).
		switch {
		case best == nil,
			healthy && !bestHealthy,
			healthy == bestHealthy && backlog < bestBacklog:
			best, bestBacklog, bestHealthy = r, backlog, healthy
		}
	}
	return best, bestBacklog
}

// issueAttempt places a duplicate (hedge) or follow-up (retry) of a
// request on the best live replica other than exclude. A rescued bulk
// request is escalated to PriorityNormal: its deadline is already at
// risk, so it must not languish in the target replica's bulk queue —
// but PriorityHigh would dispatch it alone in a padded bucket, and a
// failed batch's rescues arrive together, so keeping them batchable
// lets them coalesce back into one full bucket. Returns nil when no
// other replica is live or the placement is rejected (closed,
// undeployed).
func (f *Fleet) issueAttempt(model string, inputs map[string]*tensor.Tensor, opts serve.InferOptions, exclude *replica) *attempt {
	if opts.Priority == serve.PriorityBulk {
		opts.Priority = serve.PriorityNormal
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	r, _ := f.pickLocked(exclude)
	f.mu.Unlock()
	if r == nil {
		return nil
	}
	ch, err := r.srv.InferAsync(model, inputs, opts)
	if err != nil {
		return nil
	}
	return &attempt{rep: r, ch: ch}
}

// noteResult updates a replica's health streak from one attempt
// outcome.
func (f *Fleet) noteResult(r *replica, failed bool) {
	f.mu.Lock()
	if failed {
		r.consecFails++
	} else {
		r.consecFails = 0
	}
	f.mu.Unlock()
}

// routeNote carries one routed request's placement story for span
// emission at delivery time. Replica ids are -1 until that transition
// actually happened.
type routeNote struct {
	model     string
	hedgeFrom int // replica whose risk triggered the hedge
	hedgeTo   int // replica the duplicate was placed on
	retryFrom int // replica whose failure triggered the retry
	retryTo   int // replica the follow-up was placed on
}

func newRouteNote(model string) routeNote {
	return routeNote{model: model, hedgeFrom: -1, hedgeTo: -1, retryFrom: -1, retryTo: -1}
}

// deliver hands the winning result to the caller (the watch goroutine
// is the channel's only sender, so a hedged loser can never
// double-send) and emits the request's fleet-level spans.
func (f *Fleet) deliver(out chan<- Result, res serve.Result, rep *replica, hedged, retried bool, note routeNote) {
	f.mu.Lock()
	f.delivered++
	if res.Err != nil {
		f.deliveredErrs++
	}
	f.mu.Unlock()
	f.emitRoute(res, rep, hedged, retried, note)
	out <- Result{Result: res, Replica: rep.id, Hedged: hedged, Retried: retried}
}

// emitRoute records the fleet-level span tree for one delivered
// request: a route span covering the request's simulated lifetime on
// the winning replica, wrapped around hedge/retry spans when the
// router placed extra attempts. Spans are priced on the delivered
// result's sim-clock interval, so they nest exactly around the
// replica's own request spans in the exported trace.
func (f *Fleet) emitRoute(res serve.Result, rep *replica, hedged, retried bool, note routeNote) {
	if f.tr == nil {
		return
	}
	start, dur := res.SimArrival, res.SimLatency
	if dur < 0 {
		dur = 0
	}
	f.trShard.Emit(obs.Span{
		Name: obs.KindRoute, Cat: obs.CatFleet, Proc: f.trProc,
		Track: "router", Start: start, Dur: dur,
		Args: []obs.Arg{
			{Key: "model", Val: note.model},
			{Key: "replica", Val: rep.id},
			{Key: "hedged", Val: hedged},
			{Key: "retried", Val: retried},
			{Key: "error", Val: res.Err != nil},
		},
	})
	if note.hedgeTo >= 0 {
		loser := note.hedgeFrom
		if loser == rep.id {
			loser = note.hedgeTo
		}
		f.trShard.Emit(obs.Span{
			Name: obs.KindHedge, Cat: obs.CatFleet, Proc: f.trProc,
			Track: "router", Start: start, Dur: dur,
			Args: []obs.Arg{
				{Key: "model", Val: note.model},
				{Key: "from", Val: note.hedgeFrom},
				{Key: "to", Val: note.hedgeTo},
				{Key: "winner", Val: rep.id},
				{Key: "loser", Val: loser},
			},
		})
	}
	if note.retryTo >= 0 {
		f.trShard.Emit(obs.Span{
			Name: obs.KindRetry, Cat: obs.CatFleet, Proc: f.trProc,
			Track: "router", Start: start, Dur: dur,
			Args: []obs.Arg{
				{Key: "model", Val: note.model},
				{Key: "from", Val: note.retryFrom},
				{Key: "to", Val: note.retryTo},
				{Key: "delivered", Val: rep.id},
			},
		})
	}
}

// drainLoser consumes a hedged duplicate that lost the race, so its
// replica's result channel never blocks a worker, and counts the
// cancellation.
func (f *Fleet) drainLoser(a *attempt) {
	f.routeWG.Add(1)
	go func() {
		defer f.routeWG.Done()
		<-a.ch
		f.mu.Lock()
		a.rep.hedgesCanceled++
		f.mu.Unlock()
	}()
}

// watch supervises one routed request: it waits on the primary
// attempt, hedges on a second replica when the deadline is at risk
// (immediately when hedgeNow, else after Hedge.Timeout), retries a
// failed attempt once on a different replica, and delivers exactly
// one Result. At most two attempts are ever in flight.
func (f *Fleet) watch(model string, inputs map[string]*tensor.Tensor, opts serve.InferOptions, prim attempt, hedgeNow bool, out chan<- Result) {
	defer f.routeWG.Done()
	a := prim
	var b *attempt
	var aRes, bRes *serve.Result
	hedged := false
	isRetry := false // b is a retry (a already failed) rather than a hedge
	note := newRouteNote(model)
	var timer <-chan time.Time
	if hedgeNow {
		if b = f.issueAttempt(model, inputs, opts, a.rep); b != nil {
			hedged = true
			note.hedgeFrom, note.hedgeTo = a.rep.id, b.rep.id
			f.mu.Lock()
			a.rep.hedgesIssued++
			f.mu.Unlock()
		}
	} else if f.opts.Hedge.Timeout > 0 {
		timer = time.After(f.opts.Hedge.Timeout)
	}
	for {
		aCh := a.ch
		if aRes != nil {
			aCh = nil
		}
		var bCh <-chan serve.Result
		if b != nil && bRes == nil {
			bCh = b.ch
		}
		if aCh == nil && bCh == nil {
			break
		}
		select {
		case res := <-aCh:
			aRes = &res
			f.noteResult(a.rep, res.Err != nil)
			if res.Err == nil {
				f.deliver(out, res, a.rep, hedged, false, note)
				if b != nil && bRes == nil {
					f.drainLoser(b)
				}
				return
			}
			if b == nil {
				// First failure and nothing else in flight: retry once on a
				// different replica.
				timer = nil
				if b = f.issueAttempt(model, inputs, opts, a.rep); b != nil {
					isRetry = true
					note.retryFrom, note.retryTo = a.rep.id, b.rep.id
					f.mu.Lock()
					a.rep.retries++
					f.mu.Unlock()
				} else {
					f.deliver(out, res, a.rep, hedged, false, note)
					return
				}
			}
			// A hedge is already in flight: it doubles as the retry.
		case res := <-bCh:
			bRes = &res
			f.noteResult(b.rep, res.Err != nil)
			if res.Err == nil {
				if !isRetry {
					f.mu.Lock()
					b.rep.hedgesWon++
					f.mu.Unlock()
				}
				f.deliver(out, res, b.rep, hedged, isRetry || aRes != nil, note)
				if aRes == nil {
					f.drainLoser(&a)
				}
				return
			}
			if aRes != nil {
				// Both attempts failed: deliver the follow-up's error.
				f.deliver(out, res, b.rep, hedged, isRetry, note)
				return
			}
			// The hedge failed first; keep waiting on the primary.
		case <-timer:
			timer = nil
			if b = f.issueAttempt(model, inputs, opts, a.rep); b != nil {
				hedged = true
				note.hedgeFrom, note.hedgeTo = a.rep.id, b.rep.id
				f.mu.Lock()
				a.rep.hedgesIssued++
				f.mu.Unlock()
			}
		}
	}
	// Fell out of the loop: the primary failed after its hedge had
	// already failed. Deliver the primary's error.
	f.deliver(out, *aRes, a.rep, hedged, false, note)
}
