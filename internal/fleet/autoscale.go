package fleet

import (
	"fmt"
	"time"
)

// AutoscaleOptions drives backlog-based fleet sizing. The signal is
// the mean modeled EFT backlog per live replica — the same seconds
// the router balances on — sampled once per poll; a decision needs
// SustainPolls consecutive polls past the threshold, so a single
// burst (or a single idle gap) does not thrash the fleet.
type AutoscaleOptions struct {
	// GrowBacklogSeconds grows the fleet when the mean per-replica
	// backlog stays above it. Zero disables growing.
	GrowBacklogSeconds float64
	// ShrinkBacklogSeconds shrinks the fleet when the mean per-replica
	// backlog stays below it. Zero disables shrinking.
	ShrinkBacklogSeconds float64
	// SustainPolls is how many consecutive polls must agree before a
	// decision fires. Values < 1 mean 1.
	SustainPolls int
	// MinReplicas floors the fleet size for shrinking (values < 1 mean
	// 1); MaxReplicas caps growing (0 means no cap).
	MinReplicas int
	MaxReplicas int
	// Grow is the pool configuration for replicas the autoscaler
	// spawns. The zero value clones the first configured replica.
	Grow ReplicaConfig
	// Interval, when > 0, polls in the background on a ticker. Zero
	// means manual polling via PollAutoscale (what the deterministic
	// benches use).
	Interval time.Duration
}

// Grow spawns one replica, deploys every registered tenant on it, and
// warms their variants before the router can see it — so when the
// deploy closures share a tuning log, the new replica compiles
// measurement-free from its peers' entries and serves at full speed
// from its first request. Returns the new replica's id.
func (f *Fleet) Grow() (int, error) {
	f.deployMu.Lock()
	defer f.deployMu.Unlock()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return -1, ErrClosed
	}
	cfg := f.opts.Autoscale.Grow
	if cfg.Workers == 0 && len(cfg.Devices) == 0 {
		cfg = f.opts.Replicas[0]
	}
	specs := make([]*tenantSpec, 0, len(f.tenants))
	for _, spec := range f.tenants {
		specs = append(specs, spec)
	}
	r := f.addReplicaLocked(cfg, true)
	// Hide the replica from the router until its tenants are warm.
	r.live = false
	f.mu.Unlock()
	for _, spec := range specs {
		if err := r.srv.DeployOn(spec.name, spec.compile, spec.opts); err != nil {
			r.srv.Close()
			return -1, fmt.Errorf("fleet: grow replica %d: deploy %q: %w", r.id, spec.name, err)
		}
		if err := r.srv.Warm(spec.name); err != nil {
			r.srv.Close()
			return -1, fmt.Errorf("fleet: grow replica %d: warm %q: %w", r.id, spec.name, err)
		}
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		r.srv.Close()
		return -1, ErrClosed
	}
	r.live = true
	f.mu.Unlock()
	return r.id, nil
}

// Shrink retires the newest live replica (preferring autoscaler-grown
// ones): it leaves the routing set immediately, then drains — every
// request already queued on it is answered. Returns the retired
// replica's id, or an error when the fleet is already at
// MinReplicas.
func (f *Fleet) Shrink() (int, error) {
	f.deployMu.Lock()
	defer f.deployMu.Unlock()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return -1, ErrClosed
	}
	live := f.liveLocked()
	min := f.opts.Autoscale.MinReplicas
	if min < 1 {
		min = 1
	}
	if len(live) <= min {
		f.mu.Unlock()
		return -1, fmt.Errorf("fleet: already at %d replica(s)", len(live))
	}
	var victim *replica
	for _, r := range live { // grown replicas retire first, then newest
		switch {
		case victim == nil:
			victim = r
		case r.grown != victim.grown:
			if r.grown {
				victim = r
			}
		case r.id > victim.id:
			victim = r
		}
	}
	victim.live = false
	victim.shrinkEvents++
	f.mu.Unlock()
	victim.srv.Close()
	return victim.id, nil
}

// PollAutoscale samples the mean per-replica backlog once and applies
// the sizing policy, reporting what (if anything) it did. Benches
// call this between request waves for deterministic scaling; set
// AutoscaleOptions.Interval for background polling instead.
func (f *Fleet) PollAutoscale() (grew, shrank bool) {
	a := f.opts.Autoscale
	sustain := a.SustainPolls
	if sustain < 1 {
		sustain = 1
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return false, false
	}
	live := f.liveLocked()
	if len(live) == 0 {
		f.mu.Unlock()
		return false, false
	}
	total := 0.0
	for _, r := range live {
		total += r.srv.BacklogSeconds()
	}
	mean := total / float64(len(live))
	if a.GrowBacklogSeconds > 0 && mean > a.GrowBacklogSeconds {
		f.consecHigh++
	} else {
		f.consecHigh = 0
	}
	if a.ShrinkBacklogSeconds > 0 && mean < a.ShrinkBacklogSeconds {
		f.consecLow++
	} else {
		f.consecLow = 0
	}
	doGrow := f.consecHigh >= sustain && (a.MaxReplicas == 0 || len(live) < a.MaxReplicas)
	doShrink := !doGrow && f.consecLow >= sustain && len(live) > max(1, a.MinReplicas)
	if doGrow {
		f.consecHigh = 0
	}
	if doShrink {
		f.consecLow = 0
	}
	f.mu.Unlock()
	if doGrow {
		if _, err := f.Grow(); err == nil {
			grew = true
		}
	}
	if doShrink {
		if _, err := f.Shrink(); err == nil {
			shrank = true
		}
	}
	return grew, shrank
}

// autoscaleLoop is the background poller (AutoscaleOptions.Interval).
func (f *Fleet) autoscaleLoop(stop <-chan struct{}) {
	defer f.scaleWG.Done()
	t := time.NewTicker(f.opts.Autoscale.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			f.PollAutoscale()
		}
	}
}
