package fleet

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/serve"
	"bolt/internal/tensor"
)

// testCompile builds a hand-made two-kernel module (input -> x+1) at
// the given batch, bound to the target device, optionally counting
// invocations — the fleet-level stand-in for the tuning pipeline.
func testCompile(counter *atomic.Int64) serve.CompileVariantOn {
	return func(dev *gpu.Device, batch int) (*rt.Module, error) {
		if counter != nil {
			counter.Add(1)
		}
		in := &relay.Node{ID: 0, Op: relay.OpInput, Name: "x",
			Shape: tensor.Shape{batch, 4}, DType: tensor.FP32}
		add := &relay.Node{ID: 1, Op: relay.OpActivation, Inputs: []*relay.Node{in},
			Shape: tensor.Shape{batch, 4}, DType: tensor.FP32}
		g := &relay.Graph{Nodes: []*relay.Node{in, add}, Inputs: []*relay.Node{in}, Output: add}
		if dev == nil {
			dev = gpu.T4()
		}
		return &rt.Module{
			Graph:  g,
			Device: dev,
			Kernels: []rt.Kernel{
				{Name: "in", Node: in, Slot: 0,
					Exec: func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor { return env.Input("x") }},
				{Name: "add1", Node: add, Slot: 1, Launches: 1,
					Desc: rt.ElementwiseLikeDesc("add1", batch*4, 1, 1, tensor.FP32),
					Exec: func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
						x := env.Value(0)
						out := x.Clone()
						for i, v := range x.Data() {
							out.Data()[i] = v + 1
						}
						return out
					}},
			},
		}, nil
	}
}

func sampleInput(seed int64) map[string]*tensor.Tensor {
	in := tensor.New(tensor.FP32, 1, 4)
	in.FillRandom(seed, 1)
	return map[string]*tensor.Tensor{"x": in}
}

// TestFleetServesAcrossReplicas pins the basic path: requests route,
// results come back correct, and the accounting closes (routed ==
// delivered, per-replica requests sum to the aggregate).
func TestFleetServesAcrossReplicas(t *testing.T) {
	f := New(Options{Replicas: []ReplicaConfig{{Workers: 1}, {Workers: 1}}})
	if err := f.Deploy("m", testCompile(nil), serve.DeployOptions{Buckets: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Warm("m"); err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		in := sampleInput(int64(i + 1))
		out, err := f.Infer("m", in, serve.InferOptions{Priority: serve.PriorityHigh})
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range in["x"].Data() {
			if out.Data()[j] != v+1 {
				t.Fatalf("request %d slot %d: got %g want %g", i, j, out.Data()[j], v+1)
			}
		}
	}
	f.Close()
	st := f.Stats()
	if st.Routed != n || st.Delivered != n || st.DeliveredErrors != 0 {
		t.Errorf("routed/delivered/errors = %d/%d/%d, want %d/%d/0",
			st.Routed, st.Delivered, st.DeliveredErrors, n, n)
	}
	var sum int64
	for _, r := range st.Replicas {
		sum += r.Serve.Requests
	}
	if sum != st.Serve.Requests || sum != n {
		t.Errorf("per-replica requests sum %d, aggregate %d, want %d", sum, st.Serve.Requests, n)
	}
}

// TestFleetRetriesOnKill pins the retry path: an injected kill on the
// chosen replica is masked by one retry on the other, the caller sees
// a healthy result, and the failure is charged to the right replica.
func TestFleetRetriesOnKill(t *testing.T) {
	f := New(Options{Replicas: []ReplicaConfig{{Workers: 1}, {Workers: 1}}})
	defer f.Close()
	if err := f.Deploy("m", testCompile(nil), serve.DeployOptions{Buckets: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Warm("m"); err != nil {
		t.Fatal(err)
	}
	// Both replicas idle: the router picks replica 0 (lowest id on a
	// backlog tie). Its next batch dies.
	f.InjectFault(0, 0, 1, serve.BatchFault{Err: ErrInjectedKill})
	ch, err := f.InferAsync("m", sampleInput(1), serve.InferOptions{Priority: serve.PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatalf("retry did not mask the kill: %v", res.Err)
	}
	if !res.Retried || res.Replica != 1 {
		t.Errorf("result replica=%d retried=%v, want the retry on replica 1", res.Replica, res.Retried)
	}
	st := f.Stats()
	if st.Retries != 1 || st.Replicas[0].Retries != 1 {
		t.Errorf("retries aggregate=%d replica0=%d, want 1/1", st.Retries, st.Replicas[0].Retries)
	}
	if st.Serve.FailedBatches != 1 || st.Replicas[0].Serve.FailedBatches != 1 {
		t.Errorf("failed batches aggregate=%d replica0=%d, want 1/1",
			st.Serve.FailedBatches, st.Replicas[0].Serve.FailedBatches)
	}
	if st.DeliveredErrors != 0 {
		t.Errorf("delivered errors %d, want 0", st.DeliveredErrors)
	}
}

// TestFleetHedgesOnStall pins the hedge path: a wall-clock stall on
// the chosen replica lets the hedge fire and win on the healthy one,
// and the loser is drained and counted as canceled.
func TestFleetHedgesOnStall(t *testing.T) {
	f := New(Options{
		Replicas: []ReplicaConfig{{Workers: 1}, {Workers: 1}},
		Hedge:    HedgeOptions{Timeout: 10 * time.Millisecond},
	})
	if err := f.Deploy("m", testCompile(nil), serve.DeployOptions{Buckets: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Warm("m"); err != nil {
		t.Fatal(err)
	}
	f.InjectFault(0, 0, 1, serve.BatchFault{StallHostDelay: time.Second})
	ch, err := f.InferAsync("m", sampleInput(1), serve.InferOptions{Priority: serve.PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Hedged || res.Replica != 0 && res.Replica != 1 {
		t.Errorf("result hedged=%v replica=%d", res.Hedged, res.Replica)
	}
	if res.Replica != 1 {
		t.Errorf("hedge on replica 1 should beat a 1s stall on replica 0 (won on %d)", res.Replica)
	}
	f.Close() // waits for the loser to drain
	st := f.Stats()
	if st.HedgesIssued != 1 || st.Replicas[0].HedgesIssued != 1 {
		t.Errorf("hedges issued aggregate=%d replica0=%d, want 1/1", st.HedgesIssued, st.Replicas[0].HedgesIssued)
	}
	if st.HedgesWon != 1 || st.Replicas[1].HedgesWon != 1 {
		t.Errorf("hedges won aggregate=%d replica1=%d, want 1/1", st.HedgesWon, st.Replicas[1].HedgesWon)
	}
	if st.HedgesCanceled != 1 || st.Replicas[0].HedgesCanceled != 1 {
		t.Errorf("hedges canceled aggregate=%d replica0=%d, want 1/1",
			st.HedgesCanceled, st.Replicas[0].HedgesCanceled)
	}
	if st.Routed != 1 || st.Delivered != 1 || st.DeliveredErrors != 0 {
		t.Errorf("routed/delivered/errors = %d/%d/%d, want 1/1/0", st.Routed, st.Delivered, st.DeliveredErrors)
	}
}

// TestFleetGrowDeploysAndWarmsTenants pins the runtime-grow lifecycle:
// the new replica carries every registered tenant, warmed before it
// joins the routing set, and serves correctly.
func TestFleetGrowDeploysAndWarmsTenants(t *testing.T) {
	var compiles atomic.Int64
	f := New(Options{Replicas: []ReplicaConfig{{Workers: 1}}})
	defer f.Close()
	if err := f.Deploy("m", testCompile(&compiles), serve.DeployOptions{Buckets: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Warm("m"); err != nil {
		t.Fatal(err)
	}
	before := compiles.Load()
	if before != 2 {
		t.Fatalf("warm compiled %d variants, want 2 (buckets 1 and 2)", before)
	}
	id, err := f.Grow()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || f.Replicas() != 2 {
		t.Fatalf("grow -> id %d, %d live replicas; want id 1 of 2", id, f.Replicas())
	}
	// Grow warms the new replica's own variants (the measurement-free
	// part is the tuning log inside the closure, exercised at the bolt
	// layer).
	if got := compiles.Load() - before; got != 2 {
		t.Errorf("grow compiled %d variants, want 2", got)
	}
	out, err := f.Infer("m", sampleInput(1), serve.InferOptions{Priority: serve.PriorityHigh})
	if err != nil || out == nil {
		t.Fatalf("infer after grow: %v", err)
	}
	st := f.Stats()
	if st.GrowEvents != 1 || !st.Replicas[1].Grown || st.Replicas[1].GrowEvents != 1 {
		t.Errorf("grow events aggregate=%d replica1 grown=%v events=%d, want 1/true/1",
			st.GrowEvents, st.Replicas[1].Grown, st.Replicas[1].GrowEvents)
	}
}

// TestFleetAutoscalePolls pins the sizing policy end to end: sustained
// queued backlog grows the fleet, a drained idle fleet shrinks back,
// and both transitions land in the stats.
func TestFleetAutoscalePolls(t *testing.T) {
	f := New(Options{
		Replicas:    []ReplicaConfig{{Workers: 1}},
		BatchWindow: time.Hour, // queued rows stay queued until MaxWait
		Autoscale: AutoscaleOptions{
			GrowBacklogSeconds:   1e-15,
			ShrinkBacklogSeconds: 1e-15,
			SustainPolls:         2,
			MaxReplicas:          2,
		},
	})
	defer f.Close()
	if err := f.Deploy("m", testCompile(nil), serve.DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Warm("m"); err != nil {
		t.Fatal(err)
	}
	chans := make([]<-chan Result, 3)
	for i := range chans {
		ch, err := f.InferAsync("m", sampleInput(int64(i+1)),
			serve.InferOptions{MaxWait: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	if grew, _ := f.PollAutoscale(); grew {
		t.Fatal("grew on the first high poll; sustain is 2")
	}
	grew, _ := f.PollAutoscale()
	if !grew || f.Replicas() != 2 {
		t.Fatalf("sustained backlog did not grow the fleet (grew=%v, replicas=%d)", grew, f.Replicas())
	}
	for _, ch := range chans { // drain: MaxWait dispatches the queued rows
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if _, shrank := f.PollAutoscale(); shrank {
		t.Fatal("shrank on the first idle poll; sustain is 2")
	}
	_, shrank := f.PollAutoscale()
	if !shrank || f.Replicas() != 1 {
		t.Fatalf("idle fleet did not shrink (shrank=%v, replicas=%d)", shrank, f.Replicas())
	}
	st := f.Stats()
	if st.GrowEvents != 1 || st.ShrinkEvents != 1 {
		t.Errorf("grow/shrink events %d/%d, want 1/1", st.GrowEvents, st.ShrinkEvents)
	}
	if len(st.Replicas) != 2 || !st.Replicas[0].Live || st.Replicas[1].Live {
		t.Errorf("replica liveness %+v, want original live, grown one retired", st.Replicas)
	}
}

// TestFleetUndeployWithHedgeInFlight pins the drain path: Undeploy
// while a hedged duplicate is still running delivers exactly one
// result per request and closes cleanly (the -race CI stress variant
// lives at the repo root against the public API).
func TestFleetUndeployWithHedgeInFlight(t *testing.T) {
	f := New(Options{
		Replicas: []ReplicaConfig{{Workers: 1}, {Workers: 1}},
		Hedge:    HedgeOptions{Timeout: 5 * time.Millisecond},
	})
	if err := f.Deploy("m", testCompile(nil), serve.DeployOptions{Buckets: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Warm("m"); err != nil {
		t.Fatal(err)
	}
	// Stall both replicas' workers so the primary and its hedge are
	// both in flight when the model is undeployed.
	f.InjectFault(0, 0, 1, serve.BatchFault{StallHostDelay: 100 * time.Millisecond})
	f.InjectFault(1, 0, 1, serve.BatchFault{StallHostDelay: 100 * time.Millisecond})
	ch, err := f.InferAsync("m", sampleInput(1), serve.InferOptions{Priority: serve.PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // both attempts dispatched and stalled
	if err := f.Undeploy("m"); err != nil {
		t.Fatal(err)
	}
	res, ok := <-ch
	if !ok {
		t.Fatal("result channel closed without a result")
	}
	// The dispatched batches were already in flight, so they complete
	// normally despite the undeploy.
	if res.Err != nil {
		t.Fatalf("in-flight batch should survive undeploy: %v", res.Err)
	}
	select {
	case extra, ok := <-ch:
		if ok {
			t.Fatalf("double delivery: %+v", extra)
		}
	case <-time.After(150 * time.Millisecond):
	}
	f.Close()
	st := f.Stats()
	if st.Routed != 1 || st.Delivered != 1 {
		t.Errorf("routed/delivered %d/%d, want 1/1", st.Routed, st.Delivered)
	}
	if st.HedgesCanceled != 1 {
		t.Errorf("the losing duplicate was not drained: canceled=%d", st.HedgesCanceled)
	}
}

// TestFleetClosedRejects pins the terminal state.
func TestFleetClosedRejects(t *testing.T) {
	f := New(Options{})
	if err := f.Deploy("m", testCompile(nil), serve.DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.InferAsync("m", sampleInput(1), serve.InferOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("InferAsync after Close: %v, want ErrClosed", err)
	}
	if err := f.Deploy("m2", testCompile(nil), serve.DeployOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Deploy after Close: %v, want ErrClosed", err)
	}
	if _, err := f.Grow(); !errors.Is(err, ErrClosed) {
		t.Errorf("Grow after Close: %v, want ErrClosed", err)
	}
	f.Close() // idempotent
}
