package fleet

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"bolt/internal/serve"
)

// ErrInjectedKill is the default error injected kills answer batches
// with.
var ErrInjectedKill = errors.New("fleet: injected worker failure")

// FailurePlan seeds random fault injection across the fleet: every
// dispatched batch on every replica independently draws a fault with
// the configured probabilities. Scripted, deterministic faults go
// through Fleet.InjectFault instead (what the gated benches use —
// random draws are seedable but their assignment to batches depends
// on worker scheduling order).
type FailurePlan struct {
	// Seed seeds the injector's RNG.
	Seed int64
	// KillProb is the per-batch probability of a kill (the batch fails
	// with Err; the replica retries elsewhere).
	KillProb float64
	// StallProb is the per-batch probability of a stall of
	// StallSimSeconds on the simulated clock and StallHostDelay on the
	// wall clock (what hedges race against).
	StallProb       float64
	StallSimSeconds float64
	StallHostDelay  time.Duration
	// Err overrides the kill error (nil means ErrInjectedKill).
	Err error
}

// faultKey addresses one worker of one replica.
type faultKey struct{ replica, worker int }

// injector is the fleet's fault source: a scripted per-worker queue
// consulted first, then the seeded random plan. It backs every
// replica's serve.ServerOptions.Fault hook.
type injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	plan     *FailurePlan
	scripted map[faultKey][]serve.BatchFault
}

func newInjector(plan *FailurePlan) *injector {
	in := &injector{scripted: make(map[faultKey][]serve.BatchFault)}
	if plan != nil {
		p := *plan
		if p.Err == nil {
			p.Err = ErrInjectedKill
		}
		in.plan = &p
		in.rng = rand.New(rand.NewSource(p.Seed))
	}
	return in
}

// hook binds the injector to one replica as its serve.FaultHook.
func (in *injector) hook(replica int) serve.FaultHook {
	return func(worker int) serve.BatchFault {
		return in.next(replica, worker)
	}
}

// next pops the scripted fault for (replica, worker) if one is
// queued, else draws from the random plan.
func (in *injector) next(replica, worker int) serve.BatchFault {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := faultKey{replica, worker}
	if q := in.scripted[key]; len(q) > 0 {
		f := q[0]
		if len(q) == 1 {
			delete(in.scripted, key)
		} else {
			in.scripted[key] = q[1:]
		}
		return f
	}
	if in.plan == nil {
		return serve.BatchFault{}
	}
	switch p := in.rng.Float64(); {
	case p < in.plan.KillProb:
		return serve.BatchFault{Err: in.plan.Err}
	case p < in.plan.KillProb+in.plan.StallProb:
		return serve.BatchFault{
			StallSimSeconds: in.plan.StallSimSeconds,
			StallHostDelay:  in.plan.StallHostDelay,
		}
	}
	return serve.BatchFault{}
}

// InjectFault scripts the given fault for the next count batches
// dispatched to one worker of one replica — deterministic fault
// placement for tests and gated benches. A zero fault with count > 0
// scripts healthy batches (useful to delay a random plan).
func (f *Fleet) InjectFault(replica, worker, count int, fault serve.BatchFault) {
	f.inj.mu.Lock()
	defer f.inj.mu.Unlock()
	key := faultKey{replica, worker}
	for i := 0; i < count; i++ {
		f.inj.scripted[key] = append(f.inj.scripted[key], fault)
	}
}
