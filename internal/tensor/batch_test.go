package tensor

import "testing"

// TestStackSliceRoundTrip pins the batcher's coalescing round trip:
// stacking samples and slicing them back is lossless, and the slices
// own their data.
func TestStackSliceRoundTrip(t *testing.T) {
	samples := make([]*Tensor, 3)
	for i := range samples {
		samples[i] = New(FP32, 1, 4)
		samples[i].FillRandom(int64(i+1), 1)
	}
	batch := StackBatch(samples)
	if !batch.Shape().Equal(Shape{3, 4}) {
		t.Fatalf("stacked shape %v, want (3, 4)", batch.Shape())
	}
	for i, s := range samples {
		got := SliceBatch(batch, i)
		for j, v := range s.Data() {
			if got.Data()[j] != v {
				t.Fatalf("sample %d differs at %d", i, j)
			}
		}
		// The slice owns its data: mutating it must not touch the batch.
		got.Data()[0] += 1
		if batch.Data()[i*4] == got.Data()[0] {
			t.Fatalf("sample %d aliases the batch tensor", i)
		}
	}
}

// TestPadStripBatch pins the padded-dispatch helpers: PadBatch
// zero-fills the extra rows (and is the identity at the exact size),
// StripBatch drops them again, and the strip owns its data.
func TestPadStripBatch(t *testing.T) {
	samples := make([]*Tensor, 3)
	for i := range samples {
		samples[i] = New(FP32, 1, 4)
		samples[i].FillRandom(int64(i+1), 1)
	}
	batch := StackBatch(samples)
	padded := PadBatch(batch, 8)
	if !padded.Shape().Equal(Shape{8, 4}) {
		t.Fatalf("padded shape %v, want (8, 4)", padded.Shape())
	}
	for j, v := range batch.Data() {
		if padded.Data()[j] != v {
			t.Fatalf("padded batch differs from real rows at %d", j)
		}
	}
	for j := 3 * 4; j < 8*4; j++ {
		if padded.Data()[j] != 0 {
			t.Fatalf("padding row element %d = %g, want 0", j, padded.Data()[j])
		}
	}
	if PadBatch(batch, 3) != batch {
		t.Error("PadBatch at the exact size must return the tensor unchanged")
	}

	stripped := StripBatch(padded, 3)
	if !stripped.Shape().Equal(Shape{3, 4}) {
		t.Fatalf("stripped shape %v, want (3, 4)", stripped.Shape())
	}
	for j, v := range batch.Data() {
		if stripped.Data()[j] != v {
			t.Fatalf("stripped batch differs at %d", j)
		}
	}
	// StripBatch copies even at the full size (the input may be an
	// arena view about to be recycled).
	full := StripBatch(padded, 8)
	full.Data()[0] += 1
	if padded.Data()[0] == full.Data()[0] {
		t.Error("StripBatch at full size aliases the input")
	}

	defer func() {
		if recover() == nil {
			t.Error("PadBatch shrinking the batch must panic")
		}
	}()
	PadBatch(padded, 2)
}

// TestBatchHelpersPreserveDType pins that the padded-dispatch helpers
// keep the element type intact for the mixed-precision serving path:
// an FP16 or INT8 request that is stacked, padded, run, stripped and
// sliced must come back in the dtype it arrived in, with the FP16
// grid untouched.
func TestBatchHelpersPreserveDType(t *testing.T) {
	for _, dt := range []DType{FP16, INT8} {
		samples := make([]*Tensor, 3)
		for i := range samples {
			samples[i] = New(dt, 1, 5)
			samples[i].FillRandom(int64(i+1), 2)
		}
		batch := StackBatch(samples)
		padded := PadBatch(batch, 8)
		stripped := StripBatch(padded, 3)
		slice := SliceBatch(padded, 1)
		for _, got := range []*Tensor{batch, padded, stripped, slice} {
			if got.DType() != dt {
				t.Fatalf("%v: helper output dtype %v, want %v", dt, got.DType(), dt)
			}
		}
		// Round-tripping must be lossless: every real row survives
		// pad+strip bit-identically (values are already on the dtype grid,
		// so any requantization drift would be a bug).
		for j, v := range batch.Data() {
			if stripped.Data()[j] != v {
				t.Fatalf("%v: pad+strip changed element %d: %g -> %g", dt, j, v, stripped.Data()[j])
			}
		}
		for j, v := range samples[1].Data() {
			if slice.Data()[j] != v {
				t.Fatalf("%v: slice changed element %d", dt, j)
			}
		}
	}
}

// TestBatchHelpersPreserveScale pins that the INT8 quantization scale
// rides along through every batch helper — losing it would silently
// rescale a quantized tenant's responses.
func TestBatchHelpersPreserveScale(t *testing.T) {
	samples := make([]*Tensor, 2)
	for i := range samples {
		samples[i] = New(INT8, 1, 4)
		samples[i].FillRandom(int64(i+1), 1)
	}
	samples[0].CalibrateScale()
	// A batch shares one scale: requantize the second sample onto it.
	samples[1].SetScale(samples[0].Scale())
	samples[1].Quantize()
	want := samples[0].Scale()
	if want == 1 {
		t.Fatalf("calibration left the default scale; test is vacuous")
	}
	batch := StackBatch(samples)
	padded := PadBatch(batch, 4)
	for name, got := range map[string]*Tensor{
		"StackBatch": batch,
		"PadBatch":   padded,
		"StripBatch": StripBatch(padded, 2),
		"SliceBatch": SliceBatch(padded, 0),
		"Clone":      padded.Clone(),
	} {
		if got.Scale() != want {
			t.Errorf("%s: scale %g, want %g", name, got.Scale(), want)
		}
	}
}
