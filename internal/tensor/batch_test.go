package tensor

import "testing"

// TestStackSliceRoundTrip pins the batcher's coalescing round trip:
// stacking samples and slicing them back is lossless, and the slices
// own their data.
func TestStackSliceRoundTrip(t *testing.T) {
	samples := make([]*Tensor, 3)
	for i := range samples {
		samples[i] = New(FP32, 1, 4)
		samples[i].FillRandom(int64(i+1), 1)
	}
	batch := StackBatch(samples)
	if !batch.Shape().Equal(Shape{3, 4}) {
		t.Fatalf("stacked shape %v, want (3, 4)", batch.Shape())
	}
	for i, s := range samples {
		got := SliceBatch(batch, i)
		for j, v := range s.Data() {
			if got.Data()[j] != v {
				t.Fatalf("sample %d differs at %d", i, j)
			}
		}
		// The slice owns its data: mutating it must not touch the batch.
		got.Data()[0] += 1
		if batch.Data()[i*4] == got.Data()[0] {
			t.Fatalf("sample %d aliases the batch tensor", i)
		}
	}
}

// TestPadStripBatch pins the padded-dispatch helpers: PadBatch
// zero-fills the extra rows (and is the identity at the exact size),
// StripBatch drops them again, and the strip owns its data.
func TestPadStripBatch(t *testing.T) {
	samples := make([]*Tensor, 3)
	for i := range samples {
		samples[i] = New(FP32, 1, 4)
		samples[i].FillRandom(int64(i+1), 1)
	}
	batch := StackBatch(samples)
	padded := PadBatch(batch, 8)
	if !padded.Shape().Equal(Shape{8, 4}) {
		t.Fatalf("padded shape %v, want (8, 4)", padded.Shape())
	}
	for j, v := range batch.Data() {
		if padded.Data()[j] != v {
			t.Fatalf("padded batch differs from real rows at %d", j)
		}
	}
	for j := 3 * 4; j < 8*4; j++ {
		if padded.Data()[j] != 0 {
			t.Fatalf("padding row element %d = %g, want 0", j, padded.Data()[j])
		}
	}
	if PadBatch(batch, 3) != batch {
		t.Error("PadBatch at the exact size must return the tensor unchanged")
	}

	stripped := StripBatch(padded, 3)
	if !stripped.Shape().Equal(Shape{3, 4}) {
		t.Fatalf("stripped shape %v, want (3, 4)", stripped.Shape())
	}
	for j, v := range batch.Data() {
		if stripped.Data()[j] != v {
			t.Fatalf("stripped batch differs at %d", j)
		}
	}
	// StripBatch copies even at the full size (the input may be an
	// arena view about to be recycled).
	full := StripBatch(padded, 8)
	full.Data()[0] += 1
	if padded.Data()[0] == full.Data()[0] {
		t.Error("StripBatch at full size aliases the input")
	}

	defer func() {
		if recover() == nil {
			t.Error("PadBatch shrinking the batch must panic")
		}
	}()
	PadBatch(padded, 2)
}
