package tensor

import "fmt"

// Batch stacking and slicing for the serving engine's dynamic batcher.
// Every layout the runtime uses stores the declared dim 0 outermost
// (NCHW/NHWC activations and row-major matrices alike carry the batch
// there), so one sample is a contiguous row block and stacking/slicing
// are straight copies.

// sampleElems returns the element count of one leading-dim sample.
func sampleElems(t *Tensor) int {
	if len(t.shape) == 0 || t.shape[0] == 0 {
		panic(fmt.Sprintf("tensor: no batch dimension in shape %v", t.shape))
	}
	return len(t.data) / t.shape[0]
}

// StackBatch concatenates single-sample tensors (leading dim 1, equal
// shapes) into one batch tensor with leading dim len(samples) — the
// dynamic batcher's request-coalescing step.
func StackBatch(samples []*Tensor) *Tensor {
	if len(samples) == 0 {
		panic("tensor: StackBatch of zero samples")
	}
	first := samples[0]
	if len(first.shape) == 0 || first.shape[0] != 1 {
		panic(fmt.Sprintf("tensor: StackBatch sample shape %v must have leading dim 1", first.shape))
	}
	shape := first.shape.Clone()
	shape[0] = len(samples)
	out := NewWithLayout(first.dtype, first.layout, shape...)
	out.scale = first.scale
	per := sampleElems(first)
	for i, s := range samples {
		if !s.shape.Equal(first.shape) || s.dtype != first.dtype || s.layout != first.layout {
			panic(fmt.Sprintf("tensor: StackBatch sample %d is %v, want %v", i, s, first))
		}
		copy(out.data[i*per:(i+1)*per], s.data)
	}
	return out
}

// PadBatch zero-pads a batch tensor's leading dim up to rows — the
// padded-dispatch step that lets a partial batch run on a larger
// compiled bucket's variant. Rows beyond the real samples are zero,
// which every row-independent operator maps to more (ignorable) zero
// rows. When the tensor already has rows samples it is returned as is.
func PadBatch(t *Tensor, rows int) *Tensor {
	if len(t.shape) == 0 || t.shape[0] > rows {
		panic(fmt.Sprintf("tensor: PadBatch shape %v does not fit in %d rows", t.shape, rows))
	}
	if t.shape[0] == rows {
		return t
	}
	shape := t.shape.Clone()
	shape[0] = rows
	out := NewWithLayout(t.dtype, t.layout, shape...)
	out.scale = t.scale
	copy(out.data, t.data) // the tail stays zero
	return out
}

// StripBatch copies the first rows samples of a batch tensor into a
// fresh tensor — the inverse of PadBatch on the output side, dropping
// the padding rows a padded run produced. The result always owns its
// data (like SliceBatch), so it stays valid after the batch tensor's
// arena is recycled.
func StripBatch(t *Tensor, rows int) *Tensor {
	if rows < 1 || len(t.shape) == 0 || rows > t.shape[0] {
		panic(fmt.Sprintf("tensor: StripBatch of %d rows out of range for shape %v", rows, t.shape))
	}
	shape := t.shape.Clone()
	shape[0] = rows
	out := &Tensor{shape: shape, dtype: t.dtype, layout: t.layout, scale: t.scale}
	per := sampleElems(t)
	out.data = append([]float32(nil), t.data[:rows*per]...)
	return out
}

// SliceBatch copies sample i of a batch tensor out into a fresh
// leading-dim-1 tensor — the batcher's response-splitting step. The
// result owns its data, so it stays valid after the batch tensor's
// arena is recycled.
func SliceBatch(t *Tensor, i int) *Tensor {
	if i < 0 || len(t.shape) == 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: SliceBatch index %d out of range for shape %v", i, t.shape))
	}
	shape := t.shape.Clone()
	shape[0] = 1
	out := &Tensor{shape: shape, dtype: t.dtype, layout: t.layout, scale: t.scale}
	per := sampleElems(t)
	out.data = append([]float32(nil), t.data[i*per:(i+1)*per]...)
	return out
}
