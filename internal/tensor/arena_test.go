package tensor

import "testing"

func TestArenaAndView(t *testing.T) {
	a := NewArena([]int{16, 4})
	if a.NumBuffers() != 2 {
		t.Fatalf("buffers = %d", a.NumBuffers())
	}
	if a.FootprintElems() != 20 {
		t.Errorf("footprint = %d", a.FootprintElems())
	}
	buf := a.Buffer(0)
	v := View(FP16, LayoutNHWC, buf[:16], 1, 2, 2, 4)
	v.Fill(2)
	if buf[3] != 2 {
		t.Error("view does not alias the arena buffer")
	}
	// A second view over the same buffer sees the first view's data —
	// the aliasing the planner's disjoint live ranges make safe.
	v2 := View(FP32, LayoutRowMajor, buf[:8], 2, 4)
	if v2.At(0, 3) != 2 {
		t.Error("recycled buffer must carry prior contents")
	}
}

func TestViewRejectsBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	View(FP16, LayoutRowMajor, make([]float32, 3), 2, 2)
}

func TestLayoutIntoVariantsMatchAllocating(t *testing.T) {
	x := NewWithLayout(FP16, LayoutNCHW, 2, 3, 4, 5)
	x.FillRandom(11, 1)

	want := ToNHWC(x)
	dst := NewWithLayout(FP16, LayoutNHWC, 2, 4, 5, 3)
	if got := ToNHWCInto(dst, x); MaxAbsDiff(got, want) != 0 {
		t.Error("ToNHWCInto deviates from ToNHWC")
	}
	back := NewWithLayout(FP16, LayoutNCHW, 2, 3, 4, 5)
	if got := ToNCHWInto(back, want); MaxAbsDiff(got, x) != 0 {
		t.Error("ToNCHWInto does not invert ToNHWC")
	}

	nhwc := ToNHWC(x)
	wantPad := PadChannels(nhwc, 8)
	dstPad := NewWithLayout(FP16, LayoutNHWC, 2, 4, 5, 8)
	dstPad.Fill(9) // dirty destination: pad lanes must be re-zeroed
	if got := PadChannelsInto(dstPad, nhwc, 8); MaxAbsDiff(got, wantPad) != 0 {
		t.Error("PadChannelsInto deviates (stale pad lanes?)")
	}
	wantSlice := SliceChannels(wantPad, 3)
	dstSlice := NewWithLayout(FP16, LayoutNHWC, 2, 4, 5, 3)
	if got := SliceChannelsInto(dstSlice, wantPad, 3); MaxAbsDiff(got, wantSlice) != 0 {
		t.Error("SliceChannelsInto deviates")
	}
}
