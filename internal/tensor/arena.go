package tensor

import "fmt"

// Arena is a set of reusable activation buffers, allocated once from a
// memory plan and recycled across kernels and across Run calls. It is
// the host-side stand-in for the device activation arena Bolt
// pre-allocates next to the model parameters (paper §3.2.3).
type Arena struct {
	bufs [][]float32
}

// NewArena allocates one buffer per requested element capacity.
func NewArena(elems []int) *Arena {
	a := &Arena{bufs: make([][]float32, len(elems))}
	for i, n := range elems {
		if n < 0 {
			panic(fmt.Sprintf("tensor: negative arena buffer size %d", n))
		}
		a.bufs[i] = make([]float32, n)
	}
	return a
}

// Buffer returns the backing storage of buffer i (aliased, not copied).
func (a *Arena) Buffer(i int) []float32 { return a.bufs[i] }

// NumBuffers returns how many buffers the arena holds.
func (a *Arena) NumBuffers() int { return len(a.bufs) }

// FootprintElems returns the total element capacity across buffers.
func (a *Arena) FootprintElems() int {
	n := 0
	for _, b := range a.bufs {
		n += len(b)
	}
	return n
}

// View wraps backing data in a tensor without copying or quantizing —
// the constructor arena-backed destinations use. The data is aliased;
// the caller is responsible for the buffer outliving the view and for
// not reading a view whose buffer has since been recycled.
func View(dt DType, layout Layout, data []float32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(data) {
		panic(fmt.Sprintf("tensor: view data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{shape: s, dtype: dt, layout: layout, data: data}
}
