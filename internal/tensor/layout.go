package tensor

import "fmt"

// ToNHWC returns a copy of a 4-D NCHW tensor permuted to NHWC. If the
// tensor is already NHWC it is deep-copied unchanged. This is the
// reference semantics for the layout-transformation kernels Bolt folds
// into a model's first and last layers.
func ToNHWC(t *Tensor) *Tensor { return ToNHWCInto(nil, t) }

// ToNHWCInto permutes into out (which must not alias t's data); a nil
// out allocates. It returns out.
func ToNHWCInto(out, t *Tensor) *Tensor {
	switch t.layout {
	case LayoutNHWC:
		if out == nil {
			return t.Clone()
		}
		copy(out.data, t.data)
		return out
	case LayoutNCHW:
		n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
		if out == nil {
			out = NewWithLayout(t.dtype, LayoutNHWC, n, h, w, c)
		}
		src := t.data
		dst := out.data
		for in := 0; in < n; in++ {
			for ic := 0; ic < c; ic++ {
				for ih := 0; ih < h; ih++ {
					srcRow := ((in*c+ic)*h + ih) * w
					for iw := 0; iw < w; iw++ {
						dst[((in*h+ih)*w+iw)*c+ic] = src[srcRow+iw]
					}
				}
			}
		}
		return out
	default:
		panic(fmt.Sprintf("tensor: ToNHWC on non-4D layout %v", t.layout))
	}
}

// ToNCHW returns a copy of a 4-D NHWC tensor permuted to NCHW. If the
// tensor is already NCHW it is deep-copied unchanged.
func ToNCHW(t *Tensor) *Tensor { return ToNCHWInto(nil, t) }

// ToNCHWInto permutes into out (which must not alias t's data); a nil
// out allocates. It returns out.
func ToNCHWInto(out, t *Tensor) *Tensor {
	switch t.layout {
	case LayoutNCHW:
		if out == nil {
			return t.Clone()
		}
		copy(out.data, t.data)
		return out
	case LayoutNHWC:
		n, h, w, c := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
		if out == nil {
			out = NewWithLayout(t.dtype, LayoutNCHW, n, c, h, w)
		}
		src := t.data
		dst := out.data
		for in := 0; in < n; in++ {
			for ih := 0; ih < h; ih++ {
				for iw := 0; iw < w; iw++ {
					srcRow := ((in*h+ih)*w + iw) * c
					for ic := 0; ic < c; ic++ {
						dst[((in*c+ic)*h+ih)*w+iw] = src[srcRow+ic]
					}
				}
			}
		}
		return out
	default:
		panic(fmt.Sprintf("tensor: ToNCHW on non-4D layout %v", t.layout))
	}
}

// PadChannels returns a copy of an NHWC tensor whose channel dimension is
// zero-padded up to newC. This is the reference semantics of Bolt's
// automated kernel padding (Section 3.2.3): tensors whose channel count
// is not divisible by 8 are padded so alignment-8 (128-bit) vectorized
// access becomes legal.
func PadChannels(t *Tensor, newC int) *Tensor { return PadChannelsInto(nil, t, newC) }

// PadChannelsInto pads into out (which must not alias t's data); a nil
// out allocates. It returns out.
func PadChannelsInto(out, t *Tensor, newC int) *Tensor {
	if t.layout != LayoutNHWC {
		panic("tensor: PadChannels requires NHWC layout")
	}
	n, h, w, c := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	if newC < c {
		panic(fmt.Sprintf("tensor: PadChannels shrinking %d -> %d", c, newC))
	}
	if newC == c {
		if out == nil {
			return t.Clone()
		}
		copy(out.data, t.data)
		return out
	}
	if out == nil {
		out = NewWithLayout(t.dtype, LayoutNHWC, n, h, w, newC)
	}
	rows := n * h * w
	for r := 0; r < rows; r++ {
		dstRow := out.data[r*newC : (r+1)*newC]
		copy(dstRow, t.data[r*c:(r+1)*c])
		// Arena buffers are recycled, so the pad lanes must be
		// re-zeroed on every execution.
		for i := c; i < newC; i++ {
			dstRow[i] = 0
		}
	}
	return out
}

// SliceChannels returns a copy of an NHWC tensor keeping only the first
// newC channels. It inverts PadChannels on the valid region.
func SliceChannels(t *Tensor, newC int) *Tensor { return SliceChannelsInto(nil, t, newC) }

// SliceChannelsInto slices into out (which must not alias t's data); a
// nil out allocates. It returns out.
func SliceChannelsInto(out, t *Tensor, newC int) *Tensor {
	if t.layout != LayoutNHWC {
		panic("tensor: SliceChannels requires NHWC layout")
	}
	n, h, w, c := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	if newC > c {
		panic(fmt.Sprintf("tensor: SliceChannels growing %d -> %d", c, newC))
	}
	if out == nil {
		out = NewWithLayout(t.dtype, LayoutNHWC, n, h, w, newC)
	}
	rows := n * h * w
	for r := 0; r < rows; r++ {
		copy(out.data[r*newC:(r+1)*newC], t.data[r*c:r*c+newC])
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on rank-%d tensor", len(t.shape)))
	}
	r, c := t.shape[0], t.shape[1]
	out := New(t.dtype, c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.data[j*r+i] = t.data[i*c+j]
		}
	}
	return out
}

// Reshape returns a view-copy of the tensor with a new shape of equal
// element count.
func Reshape(t *Tensor, shape ...int) *Tensor {
	s := Shape(shape)
	if s.NumElements() != t.NumElements() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.shape, s))
	}
	c := t.Clone()
	c.shape = s.Clone()
	if len(shape) != 4 {
		c.layout = LayoutRowMajor
	}
	return c
}
