// Package tensor provides dense n-dimensional tensors with explicit
// data types and memory layouts.
//
// It is the data substrate shared by the relay graph, the CUTLASS-style
// kernel templates, and the runtime executor. FP16 data is stored as
// raw binary16 words (see internal/fp16); compute paths decode to
// float32, mirroring how tensor cores consume half inputs and produce
// float accumulators.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"bolt/internal/fp16"
)

// DType enumerates the element types Bolt kernels understand.
type DType int

const (
	// FP16 is IEEE binary16, the dominant type in the paper's evaluation.
	FP16 DType = iota
	// FP32 is IEEE binary32.
	FP32
	// INT8 is a signed 8-bit integer (for mixed-precision extensions).
	INT8
)

// String returns the conventional lowercase name of the dtype.
func (d DType) String() string {
	switch d {
	case FP16:
		return "float16"
	case FP32:
		return "float32"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case FP16:
		return 2
	case FP32:
		return 4
	case INT8:
		return 1
	default:
		return 0
	}
}

// Layout describes the logical dimension ordering of a 4-D activation
// tensor. CUTLASS convolutions require NHWC; most PyTorch models are
// authored in NCHW, which is what Bolt's layout-transformation pass
// rewrites.
type Layout int

const (
	// LayoutNCHW orders as batch, channels, height, width.
	LayoutNCHW Layout = iota
	// LayoutNHWC orders as batch, height, width, channels.
	LayoutNHWC
	// LayoutRowMajor marks a 2-D matrix stored row major.
	LayoutRowMajor
	// LayoutColMajor marks a 2-D matrix stored column major.
	LayoutColMajor
)

// String returns the conventional name of the layout.
func (l Layout) String() string {
	switch l {
	case LayoutNCHW:
		return "NCHW"
	case LayoutNHWC:
		return "NHWC"
	case LayoutRowMajor:
		return "RowMajor"
	case LayoutColMajor:
		return "ColMajor"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Shape is a tensor shape: a list of dimension extents.
type Shape []int

// NumElements returns the product of the dimensions (1 for a scalar shape).
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// String renders the shape as "(d0, d1, ...)".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tensor is a dense tensor. Data is always held as float32 for
// arithmetic convenience; when DType is FP16 every element is kept
// quantized through binary16 so numerics match a real half buffer.
type Tensor struct {
	shape  Shape
	dtype  DType
	layout Layout
	data   []float32
	// scale is the symmetric INT8 quantization step: stored values are
	// scale * q with q an integer in [-128, 127]. Zero means unset and
	// is treated as 1 (the plain integer grid), so zero-valued Tensor
	// literals keep their historical semantics.
	scale float32
}

// New allocates a zero tensor of the given dtype and shape with the
// default layout for its rank (NCHW for 4-D, RowMajor otherwise).
func New(dtype DType, shape ...int) *Tensor {
	layout := LayoutRowMajor
	if len(shape) == 4 {
		layout = LayoutNCHW
	}
	return NewWithLayout(dtype, layout, shape...)
}

// NewWithLayout allocates a zero tensor with an explicit layout.
func NewWithLayout(dtype DType, layout Layout, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	n := s.NumElements()
	if n < 0 {
		panic(fmt.Sprintf("tensor: negative shape %v", s))
	}
	return &Tensor{shape: s, dtype: dtype, layout: layout, data: make([]float32, n)}
}

// FromData builds a tensor around the given backing data (not copied).
// The data length must match the shape. FP16 tensors are quantized.
func FromData(dtype DType, data []float32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	layout := LayoutRowMajor
	if len(shape) == 4 {
		layout = LayoutNCHW
	}
	t := &Tensor{shape: s, dtype: dtype, layout: layout, data: data}
	t.Quantize()
	return t
}

// Shape returns the tensor's shape (shared, do not mutate).
func (t *Tensor) Shape() Shape { return t.shape }

// DType returns the element type.
func (t *Tensor) DType() DType { return t.dtype }

// Layout returns the memory layout tag.
func (t *Tensor) Layout() Layout { return t.layout }

// SetLayout overrides the layout tag without moving data. Use Transform
// to actually permute.
func (t *Tensor) SetLayout(l Layout) { t.layout = l }

// Data exposes the backing float32 slice (aliased, not copied).
func (t *Tensor) Data() []float32 { return t.data }

// NumElements returns the element count.
func (t *Tensor) NumElements() int { return len(t.data) }

// Bytes returns the size of the tensor in device memory.
func (t *Tensor) Bytes() int { return len(t.data) * t.dtype.Size() }

// At returns the element at the given multi-index (row-major within the
// declared shape ordering).
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index, quantizing for FP16 tensors.
func (t *Tensor) Set(v float32, idx ...int) {
	if t.dtype == FP16 {
		v = fp16.ToFloat32(fp16.FromFloat32(v))
	}
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: t.shape.Clone(), dtype: t.dtype, layout: t.layout, scale: t.scale}
	c.data = append([]float32(nil), t.data...)
	return c
}

// Scale returns the INT8 quantization step (1 when unset). It is
// meaningful only for INT8 tensors but always safe to read.
func (t *Tensor) Scale() float32 {
	if t.scale == 0 {
		return 1
	}
	return t.scale
}

// SetScale sets the INT8 quantization step without requantizing the
// data. Non-positive scales reset to the unset (grid-of-1) state.
func (t *Tensor) SetScale(s float32) {
	if s <= 0 {
		s = 0
	}
	t.scale = s
}

// CalibrateScale chooses the symmetric per-tensor scale that maps the
// tensor's max-abs value onto the INT8 grid (maxAbs/127) and then
// quantizes onto that grid. All-zero tensors keep scale 1. Only INT8
// tensors are affected.
func (t *Tensor) CalibrateScale() {
	if t.dtype != INT8 {
		return
	}
	var maxAbs float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		t.scale = 0
	} else {
		t.scale = maxAbs / 127
	}
	t.Quantize()
}

// Quantize re-rounds all elements through the tensor's dtype. It is a
// no-op for FP32.
func (t *Tensor) Quantize() {
	switch t.dtype {
	case FP16:
		fp16.Quantize(t.data)
	case INT8:
		s := float64(t.Scale())
		for i, v := range t.data {
			q := math.Round(float64(v) / s)
			if q > 127 {
				q = 127
			} else if q < -128 {
				q = -128
			}
			t.data[i] = float32(q * s)
		}
	}
}

// Fill sets every element to v (quantized per dtype).
func (t *Tensor) Fill(v float32) {
	if t.dtype == FP16 {
		v = fp16.ToFloat32(fp16.FromFloat32(v))
	}
	for i := range t.data {
		t.data[i] = v
	}
}

// FillRandom fills the tensor with deterministic pseudo-random values in
// [-scale, scale] using the given seed, then quantizes. Kernels are
// validated against reference implementations on this data.
func (t *Tensor) FillRandom(seed int64, scale float32) {
	rng := rand.New(rand.NewSource(seed))
	for i := range t.data {
		t.data[i] = (rng.Float32()*2 - 1) * scale
	}
	t.Quantize()
}

// AsType returns a copy converted to the requested dtype. Converting
// to INT8 without a scale already set calibrates one from the data
// (maxAbs/127) — quantizing on the unset grid-of-1 would zero any
// tensor whose values sit below 0.5.
func (t *Tensor) AsType(d DType) *Tensor {
	c := t.Clone()
	c.dtype = d
	if d == INT8 && c.scale == 0 {
		c.CalibrateScale()
		return c
	}
	c.Quantize()
	return c
}

// String summarizes the tensor without dumping all data.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor{%s %s %s, %d elems}", t.dtype, t.layout, t.shape, len(t.data))
}

// MaxAbsDiff returns the maximum elementwise absolute difference between
// two same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.shape.Equal(b.shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	var m float64
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether every element of a is within atol + rtol*|b|
// of the corresponding element of b.
func AllClose(a, b *Tensor, rtol, atol float64) bool {
	if !a.shape.Equal(b.shape) {
		return false
	}
	for i := range a.data {
		x, y := float64(a.data[i]), float64(b.data[i])
		if math.IsNaN(x) || math.IsNaN(y) {
			return false
		}
		if math.Abs(x-y) > atol+rtol*math.Abs(y) {
			return false
		}
	}
	return true
}
