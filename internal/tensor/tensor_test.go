package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTypeProperties(t *testing.T) {
	if FP16.Size() != 2 || FP32.Size() != 4 || INT8.Size() != 1 {
		t.Error("dtype sizes wrong")
	}
	if FP16.String() != "float16" || FP32.String() != "float32" || INT8.String() != "int8" {
		t.Error("dtype names wrong")
	}
}

func TestShapeBasics(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.NumElements() != 24 {
		t.Errorf("NumElements = %d, want 24", s.NumElements())
	}
	if !s.Equal(Shape{2, 3, 4}) || s.Equal(Shape{2, 3}) || s.Equal(Shape{2, 3, 5}) {
		t.Error("Shape.Equal broken")
	}
	if s.String() != "(2, 3, 4)" {
		t.Errorf("Shape.String = %q", s.String())
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 2 {
		t.Error("Clone aliases")
	}
	if (Shape{}).NumElements() != 1 {
		t.Error("scalar shape should have 1 element")
	}
}

func TestNewDefaults(t *testing.T) {
	t4 := New(FP16, 1, 2, 3, 4)
	if t4.Layout() != LayoutNCHW {
		t.Errorf("4-D default layout = %v, want NCHW", t4.Layout())
	}
	t2 := New(FP32, 3, 5)
	if t2.Layout() != LayoutRowMajor {
		t.Errorf("2-D default layout = %v, want RowMajor", t2.Layout())
	}
	if t2.Bytes() != 15*4 || t4.Bytes() != 24*2 {
		t.Error("Bytes wrong")
	}
}

func TestAtSetOffsets(t *testing.T) {
	m := New(FP32, 2, 3)
	m.Set(7, 1, 2)
	if m.At(1, 2) != 7 {
		t.Error("At/Set round trip failed")
	}
	if m.Data()[1*3+2] != 7 {
		t.Error("row-major offset wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds index should panic")
		}
	}()
	m.At(2, 0)
}

func TestFP16SetQuantizes(t *testing.T) {
	m := New(FP16, 1)
	m.Set(2049, 0) // not representable in fp16; rounds to 2048
	if m.At(0) != 2048 {
		t.Errorf("FP16 Set should quantize: got %g", m.At(0))
	}
	f := New(FP32, 1)
	f.Set(2049, 0)
	if f.At(0) != 2049 {
		t.Error("FP32 Set must not quantize")
	}
}

func TestFromDataQuantizes(t *testing.T) {
	data := []float32{2049}
	tt := FromData(FP16, data, 1)
	if tt.At(0) != 2048 {
		t.Errorf("FromData FP16 should quantize, got %g", tt.At(0))
	}
}

func TestInt8Quantize(t *testing.T) {
	tt := FromData(INT8, []float32{1.4, -1.6, 200, -200}, 4)
	want := []float32{1, -2, 127, -128}
	for i, w := range want {
		if tt.Data()[i] != w {
			t.Errorf("INT8 quantize [%d] = %g, want %g", i, tt.Data()[i], w)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(FP32, 4)
	a.Fill(1)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Error("Clone aliases data")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New(FP16, 100)
	b := New(FP16, 100)
	a.FillRandom(42, 1)
	b.FillRandom(42, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("FillRandom not deterministic for equal seeds")
	}
	b.FillRandom(43, 1)
	if MaxAbsDiff(a, b) == 0 {
		t.Error("different seeds should differ")
	}
	for _, v := range a.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("value %g out of scale", v)
		}
	}
}

func TestAllClose(t *testing.T) {
	a := FromData(FP32, []float32{1, 2, 3}, 3)
	b := FromData(FP32, []float32{1.0005, 2, 3}, 3)
	if !AllClose(a, b, 1e-3, 0) {
		t.Error("AllClose should accept within rtol")
	}
	if AllClose(a, b, 1e-5, 0) {
		t.Error("AllClose should reject beyond rtol")
	}
	c := FromData(FP32, []float32{1, 2}, 2)
	if AllClose(a, c, 1, 1) {
		t.Error("AllClose should reject shape mismatch")
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	src := NewWithLayout(FP32, LayoutNCHW, 2, 3, 4, 5)
	src.FillRandom(7, 1)
	nhwc := ToNHWC(src)
	if nhwc.Layout() != LayoutNHWC || !nhwc.Shape().Equal(Shape{2, 4, 5, 3}) {
		t.Fatalf("ToNHWC produced %v %v", nhwc.Layout(), nhwc.Shape())
	}
	back := ToNCHW(nhwc)
	if MaxAbsDiff(src, back) != 0 {
		t.Error("NCHW->NHWC->NCHW is not identity")
	}
}

func TestLayoutElementMapping(t *testing.T) {
	src := NewWithLayout(FP32, LayoutNCHW, 1, 2, 2, 2)
	// Put channel index in the value so we can track the permutation.
	for c := 0; c < 2; c++ {
		for h := 0; h < 2; h++ {
			for w := 0; w < 2; w++ {
				src.Set(float32(c*100+h*10+w), 0, c, h, w)
			}
		}
	}
	nhwc := ToNHWC(src)
	for c := 0; c < 2; c++ {
		for h := 0; h < 2; h++ {
			for w := 0; w < 2; w++ {
				if got := nhwc.At(0, h, w, c); got != float32(c*100+h*10+w) {
					t.Fatalf("NHWC(0,%d,%d,%d) = %g", h, w, c, got)
				}
			}
		}
	}
}

func TestPadSliceChannels(t *testing.T) {
	src := NewWithLayout(FP16, LayoutNHWC, 2, 3, 3, 3)
	src.FillRandom(9, 1)
	padded := PadChannels(src, 8)
	if !padded.Shape().Equal(Shape{2, 3, 3, 8}) {
		t.Fatalf("padded shape %v", padded.Shape())
	}
	// Padding region must be zero.
	for n := 0; n < 2; n++ {
		for h := 0; h < 3; h++ {
			for w := 0; w < 3; w++ {
				for c := 3; c < 8; c++ {
					if padded.At(n, h, w, c) != 0 {
						t.Fatalf("pad region nonzero at %d,%d,%d,%d", n, h, w, c)
					}
				}
			}
		}
	}
	back := SliceChannels(padded, 3)
	if MaxAbsDiff(src, back) != 0 {
		t.Error("pad/slice is not identity on valid region")
	}
}

func TestTranspose2D(t *testing.T) {
	m := FromData(FP32, []float32{1, 2, 3, 4, 5, 6}, 2, 3)
	tr := Transpose2D(m)
	if !tr.Shape().Equal(Shape{3, 2}) {
		t.Fatalf("transpose shape %v", tr.Shape())
	}
	if tr.At(2, 1) != m.At(1, 2) || tr.At(0, 1) != m.At(1, 0) {
		t.Error("transpose values wrong")
	}
	if MaxAbsDiff(Transpose2D(tr), m) != 0 {
		t.Error("double transpose is not identity")
	}
}

func TestReshape(t *testing.T) {
	m := New(FP32, 2, 6)
	m.FillRandom(1, 1)
	r := Reshape(m, 3, 4)
	if !r.Shape().Equal(Shape{3, 4}) {
		t.Fatalf("reshape shape %v", r.Shape())
	}
	for i := range m.Data() {
		if r.Data()[i] != m.Data()[i] {
			t.Fatal("reshape must preserve data order")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid reshape should panic")
		}
	}()
	Reshape(m, 5, 5)
}

// Property: layout round trip is the identity for random shapes.
func TestLayoutRoundTripProperty(t *testing.T) {
	f := func(seed int64, n, c, h, w uint8) bool {
		N, C, H, W := int(n%4)+1, int(c%9)+1, int(h%6)+1, int(w%6)+1
		src := NewWithLayout(FP32, LayoutNCHW, N, C, H, W)
		src.FillRandom(seed, 10)
		return MaxAbsDiff(src, ToNCHW(ToNHWC(src))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: PadChannels then SliceChannels is the identity.
func TestPadSliceProperty(t *testing.T) {
	f := func(seed int64, c, pad uint8) bool {
		C := int(c%16) + 1
		P := C + int(pad%8)
		src := NewWithLayout(FP16, LayoutNHWC, 1, 3, 3, C)
		src.FillRandom(seed, 1)
		return MaxAbsDiff(src, SliceChannels(PadChannels(src, P), C)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		r, c := rng.Intn(8)+1, rng.Intn(8)+1
		m := New(FP32, r, c)
		m.FillRandom(int64(i), 5)
		if MaxAbsDiff(Transpose2D(Transpose2D(m)), m) != 0 {
			t.Fatal("transpose involution violated")
		}
	}
}
