// The Bolt tuning pipeline: compilation is staged so that nothing
// downstream ever blocks on a measurement it did not need.
//
//  1. workload extraction — walk the optimized graph and collect every
//     GEMM/Conv tuning task;
//  2. dedup + cache lookup — identical workloads collapse to one task,
//     and tasks present in the persistent tuning log (tunelog) skip
//     measurement entirely;
//  3. parallel profiling — unresolved tasks fan out across a worker
//     pool. Each worker owns a gpu.Clock; the pipeline's tuning cost
//     is the pool's critical path (max across workers, not the sum),
//     plus the shared sample-program generation stage, which is
//     compiled once and parallelized across the same workers;
//  4. lowering — consumes resolved configs without measuring anything.
package codegen

import (
	"fmt"
	"sort"
	"sync"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// tuningTask is one unique tuning workload (either a GEMM or a Conv).
type tuningTask struct {
	key    tunelog.Key
	gemm   profiler.GemmWorkload
	conv   profiler.ConvWorkload
	isConv bool
}

// gemmTaskKey keys a dense workload for dedup and the tuning log.
func gemmTaskKey(w profiler.GemmWorkload, dev *gpu.Device) tunelog.Key {
	return tunelog.GemmKey(w.M, w.N, w.K, w.DType, dev.Name)
}

// convTaskKey keys a convolution workload.
func convTaskKey(s cutlass.ConvShape, dt tensor.DType, dev *gpu.Device) tunelog.Key {
	return tunelog.ConvKey(s, dt, dev.Name)
}

// denseWorkload reads the GEMM problem off a Dense node.
func denseWorkload(n *relay.Node) profiler.GemmWorkload {
	x, w := n.Inputs[0], n.Inputs[1]
	return profiler.GemmWorkload{M: x.Shape[0], N: w.Shape[1], K: x.Shape[1], DType: n.DType}
}

// extractWorkloads is stage 1: collect every tuning task in the graph,
// deduplicated in first-appearance order. total counts tasks before
// dedup.
func extractWorkloads(g *relay.Graph, dev *gpu.Device) (unique []tuningTask, total int) {
	seen := make(map[tunelog.Key]bool)
	for _, n := range g.Nodes {
		var t tuningTask
		switch n.Op {
		case relay.OpDense:
			w := denseWorkload(n)
			t = tuningTask{key: gemmTaskKey(w, dev), gemm: w}
		case relay.OpConv2D:
			t = tuningTask{key: convTaskKey(n.Conv, n.DType, dev), conv: profiler.ConvWorkload{Shape: n.Conv, DType: n.DType}, isConv: true}
		default:
			continue
		}
		total++
		if !seen[t.key] {
			seen[t.key] = true
			unique = append(unique, t)
		}
	}
	return unique, total
}

// planTask computes a task's guided profiling plan (which candidates
// to measure, or a measurement-free predicted pick). The planner's
// model is frozen for the whole planning pass, so plans are
// independent of pool width and task order.
func planTask(p *profiler.Profiler, t tuningTask) (profiler.Plan, error) {
	if t.isConv {
		return p.PlanConv(t.conv)
	}
	return p.PlanGemm(t.gemm)
}

// guidanceFor resolves the pipeline's effective guidance: the
// profiler's own model if it carries one, else the tuning log's
// persistent model; knob overrides come from Options. An error is
// returned when guided knobs are requested with no model to guide by —
// silently falling back to full sweeps would misreport the run.
func guidanceFor(opts Options) (profiler.Guidance, error) {
	g := opts.Profiler.Guide
	if g.Model == nil && opts.Log != nil {
		g.Model = opts.Log.Model
	}
	if opts.TopK > 0 {
		g.TopK = opts.TopK
	}
	if opts.TrustThreshold > 0 {
		g.TrustThreshold = opts.TrustThreshold
	}
	if (g.TopK > 0 || g.TrustThreshold > 0) && g.Model == nil {
		return profiler.Guidance{}, fmt.Errorf("codegen: guided tuning (TopK=%d, TrustThreshold=%g) needs a cost model: attach one to the profiler or pass a tuning log", g.TopK, g.TrustThreshold)
	}
	return g, nil
}

// cacheUsable reports whether a cached config can actually lower the
// task on this device (a corrupt or foreign entry must fall through to
// profiling rather than produce an unlaunchable kernel).
func cacheUsable(e tunelog.Entry, t tuningTask, dev *gpu.Device) bool {
	if e.Config.Validate(dev) != nil {
		return false
	}
	if t.isConv {
		conv := &cutlass.Conv2D{Shape: t.conv.Shape, Config: e.Config, Epilogue: cutlass.DefaultEpilogue()}
		return conv.SupportsProblem()
	}
	return e.Config.SupportsProblem(t.gemm.M, t.gemm.N, t.gemm.K)
}

// runTuningPipeline executes stages 1-3 and returns the resolved
// config for every tuning task in the graph. It charges the prototype
// profiler's clock with the pipeline's critical-path cost.
func runTuningPipeline(g *relay.Graph, dev *gpu.Device, opts Options) (map[tunelog.Key]profiler.Result, rt.TuningStats, error) {
	proto := opts.Profiler
	stats := rt.TuningStats{PredictionError: -1}

	guide, err := guidanceFor(opts)
	if err != nil {
		return nil, stats, err
	}

	// Stage 1: extraction.
	unique, total := extractWorkloads(g, dev)
	stats.Workloads = total
	stats.UniqueWorkloads = len(unique)

	// Stage 2: cache lookup. Hits skip measurement entirely.
	resolved := make(map[tunelog.Key]profiler.Result, len(unique))
	var pending []tuningTask
	for _, t := range unique {
		if opts.Log != nil {
			if e, ok := opts.Log.Lookup(t.key); ok && cacheUsable(e, t, dev) {
				resolved[t.key] = profiler.Result{Config: e.Config, Time: e.TimeSeconds, Predicted: e.Predicted}
				stats.CacheHits++
				continue
			}
		}
		pending = append(pending, t)
	}
	if len(pending) == 0 {
		return resolved, stats, nil
	}

	// Stage 2.5: planning. Every task's measurement plan is computed
	// upfront against a frozen cost model (Predict uses the last Fit;
	// workers only Observe), so the plans — and therefore kernel
	// selection — are independent of pool width and completion order.
	planner := proto.Worker(nil, nil)
	planner.Guide = guide
	plans := make([]profiler.Plan, len(pending))
	for i, t := range pending {
		if plans[i], err = planTask(planner, t); err != nil {
			return nil, stats, fmt.Errorf("planning %s: %w", t.key, err)
		}
	}

	// jobs is the requested pool width; the measurement pool below
	// additionally caps it at the task count (a worker without a task
	// contributes nothing), but the sample-program stage parallelizes
	// over the full requested width — nvcc invocations are independent
	// of how many workloads need them.
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = 1
	}
	poolJobs := jobs
	if poolJobs > len(pending) {
		poolJobs = len(pending)
	}

	// Stage 3a: shared sample-program generation — only for templates a
	// plan actually measures. Guidance that prunes a candidate also
	// prunes its nvcc invocation, which is where most of the cold-start
	// cost lives. Templates are compiled once per distinct config, and
	// the invocations are independent, so the stage's cost is the
	// parallel critical path over the worker count.
	distinct := make(map[string]bool)
	var names []string
	for _, pl := range plans {
		for _, cfg := range pl.Measure {
			if name := cfg.Name(); !distinct[name] {
				distinct[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	stats.SamplePrograms = len(names)
	batches := (len(names) + jobs - 1) / jobs
	compileSeconds := float64(batches) * proto.CompileLatency

	// Stage 3b: the measurement pool. Tasks are statically partitioned
	// round-robin so the critical path (and therefore the reported
	// tuning time) is deterministic for a given Jobs value. Predicted
	// plans resolve inline first — they measure nothing and charge no
	// clock, so routing them through the pool would only skew the
	// round-robin partition.
	results := make([]profiler.Result, len(pending))
	errs := make([]error, len(pending))
	for i, t := range pending {
		if plans[i].Predicted {
			if t.isConv {
				results[i], errs[i] = planner.ProfileConvPlan(t.conv, plans[i])
			} else {
				results[i], errs[i] = planner.ProfileGemmPlan(t.gemm, plans[i])
			}
		}
	}
	clocks := make([]gpu.Clock, poolJobs)
	var wg sync.WaitGroup
	for w := 0; w < poolJobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := proto.Worker(&clocks[w], names)
			worker.Guide = guide
			for i := w; i < len(pending); i += poolJobs {
				if plans[i].Predicted {
					continue
				}
				t := pending[i]
				if t.isConv {
					results[i], errs[i] = worker.ProfileConvPlan(t.conv, plans[i])
				} else {
					results[i], errs[i] = worker.ProfileGemmPlan(t.gemm, plans[i])
				}
			}
		}(w)
	}
	wg.Wait()

	// Fold this run's measurements into the model once the pool has
	// drained: the next pipeline (or the next first-use compile in a
	// serving process) plans against everything learned here.
	if guide.Model != nil {
		guide.Model.Fit()
	}

	measureSeconds := 0.0
	for w := range clocks {
		if e := clocks[w].Elapsed(); e > measureSeconds {
			measureSeconds = e
		}
	}
	stats.TuningSeconds = compileSeconds + measureSeconds

	predErrSum, predErrN := 0.0, 0
	for i, t := range pending {
		if errs[i] != nil {
			return nil, stats, fmt.Errorf("profiling %s: %w", t.key, errs[i])
		}
		r := results[i]
		resolved[t.key] = r
		stats.ProfiledWorkloads++
		stats.Measurements += r.Candidates
		stats.EnumeratedCandidates += r.Enumerated
		stats.SkippedCandidates += r.Enumerated - r.Candidates
		if r.Predicted {
			stats.PredictedWorkloads++
		}
		if r.PredictionError >= 0 {
			predErrSum += r.PredictionError
			predErrN++
		}
		if opts.Log != nil {
			opts.Log.Record(t.key, tunelog.Entry{
				Config:      r.Config,
				TimeSeconds: r.Time,
				Trials:      r.Candidates,
				Predicted:   r.Predicted,
			})
		}
	}
	if predErrN > 0 {
		stats.PredictionError = predErrSum / float64(predErrN)
	}

	// Merge the critical path into the caller's tuning clock.
	if c := proto.Clock(); c != nil {
		c.Advance(stats.TuningSeconds)
	}
	return resolved, stats, nil
}
