// The Bolt tuning pipeline: compilation is staged so that nothing
// downstream ever blocks on a measurement it did not need.
//
//  1. workload extraction — walk the optimized graph and collect every
//     GEMM/Conv tuning task;
//  2. dedup + cache lookup — identical workloads collapse to one task,
//     and tasks present in the persistent tuning log (tunelog) skip
//     measurement entirely;
//  3. parallel profiling — unresolved tasks fan out across a worker
//     pool. Each worker owns a gpu.Clock; the pipeline's tuning cost
//     is the pool's critical path (max across workers, not the sum),
//     plus the shared sample-program generation stage, which is
//     compiled once and parallelized across the same workers;
//  4. lowering — consumes resolved configs without measuring anything.
package codegen

import (
	"fmt"
	"sort"
	"sync"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// tuningTask is one unique tuning workload (either a GEMM or a Conv).
type tuningTask struct {
	key    tunelog.Key
	gemm   profiler.GemmWorkload
	conv   profiler.ConvWorkload
	isConv bool
}

// gemmTaskKey keys a dense workload for dedup and the tuning log.
func gemmTaskKey(w profiler.GemmWorkload, dev *gpu.Device) tunelog.Key {
	return tunelog.GemmKey(w.M, w.N, w.K, w.DType, dev.Name)
}

// convTaskKey keys a convolution workload.
func convTaskKey(s cutlass.ConvShape, dt tensor.DType, dev *gpu.Device) tunelog.Key {
	return tunelog.ConvKey(s, dt, dev.Name)
}

// denseWorkload reads the GEMM problem off a Dense node.
func denseWorkload(n *relay.Node) profiler.GemmWorkload {
	x, w := n.Inputs[0], n.Inputs[1]
	return profiler.GemmWorkload{M: x.Shape[0], N: w.Shape[1], K: x.Shape[1], DType: n.DType}
}

// extractWorkloads is stage 1: collect every tuning task in the graph,
// deduplicated in first-appearance order. total counts tasks before
// dedup.
func extractWorkloads(g *relay.Graph, dev *gpu.Device) (unique []tuningTask, total int) {
	seen := make(map[tunelog.Key]bool)
	for _, n := range g.Nodes {
		var t tuningTask
		switch n.Op {
		case relay.OpDense:
			w := denseWorkload(n)
			t = tuningTask{key: gemmTaskKey(w, dev), gemm: w}
		case relay.OpConv2D:
			t = tuningTask{key: convTaskKey(n.Conv, n.DType, dev), conv: profiler.ConvWorkload{Shape: n.Conv, DType: n.DType}, isConv: true}
		default:
			continue
		}
		total++
		if !seen[t.key] {
			seen[t.key] = true
			unique = append(unique, t)
		}
	}
	return unique, total
}

// candidateNames enumerates the distinct sample programs a task's
// search would build (stage 3's shared pre-generation set).
func candidateNames(p *profiler.Profiler, t tuningTask) []string {
	var cfgs []cutlass.GemmConfig
	if t.isConv {
		cfgs = p.ConvCandidates(t.conv)
	} else {
		cfgs = p.GemmCandidates(t.gemm)
	}
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name()
	}
	return names
}

// cacheUsable reports whether a cached config can actually lower the
// task on this device (a corrupt or foreign entry must fall through to
// profiling rather than produce an unlaunchable kernel).
func cacheUsable(e tunelog.Entry, t tuningTask, dev *gpu.Device) bool {
	if e.Config.Validate(dev) != nil {
		return false
	}
	if t.isConv {
		conv := &cutlass.Conv2D{Shape: t.conv.Shape, Config: e.Config, Epilogue: cutlass.DefaultEpilogue()}
		return conv.SupportsProblem()
	}
	return e.Config.SupportsProblem(t.gemm.M, t.gemm.N, t.gemm.K)
}

// runTuningPipeline executes stages 1-3 and returns the resolved
// config for every tuning task in the graph. It charges the prototype
// profiler's clock with the pipeline's critical-path cost.
func runTuningPipeline(g *relay.Graph, dev *gpu.Device, opts Options) (map[tunelog.Key]profiler.Result, rt.TuningStats, error) {
	proto := opts.Profiler
	var stats rt.TuningStats

	// Stage 1: extraction.
	unique, total := extractWorkloads(g, dev)
	stats.Workloads = total
	stats.UniqueWorkloads = len(unique)

	// Stage 2: cache lookup. Hits skip measurement entirely.
	resolved := make(map[tunelog.Key]profiler.Result, len(unique))
	var pending []tuningTask
	for _, t := range unique {
		if opts.Log != nil {
			if e, ok := opts.Log.Lookup(t.key); ok && cacheUsable(e, t, dev) {
				resolved[t.key] = profiler.Result{Config: e.Config, Time: e.TimeSeconds}
				stats.CacheHits++
				continue
			}
		}
		pending = append(pending, t)
	}
	if len(pending) == 0 {
		return resolved, stats, nil
	}

	// jobs is the requested pool width; the measurement pool below
	// additionally caps it at the task count (a worker without a task
	// contributes nothing), but the sample-program stage parallelizes
	// over the full requested width — nvcc invocations are independent
	// of how many workloads need them.
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = 1
	}
	poolJobs := jobs
	if poolJobs > len(pending) {
		poolJobs = len(pending)
	}

	// Stage 3a: shared sample-program generation. Templates are
	// compiled once per distinct config — never per workload, never per
	// worker — and the nvcc invocations are independent, so the stage's
	// cost is the parallel critical path over the worker count.
	distinct := make(map[string]bool)
	var names []string
	for _, t := range pending {
		for _, name := range candidateNames(proto, t) {
			if !distinct[name] {
				distinct[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	stats.SamplePrograms = len(names)
	batches := (len(names) + jobs - 1) / jobs
	compileSeconds := float64(batches) * proto.CompileLatency

	// Stage 3b: the measurement pool. Tasks are statically partitioned
	// round-robin so the critical path (and therefore the reported
	// tuning time) is deterministic for a given Jobs value.
	results := make([]profiler.Result, len(pending))
	errs := make([]error, len(pending))
	clocks := make([]gpu.Clock, poolJobs)
	var wg sync.WaitGroup
	for w := 0; w < poolJobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := proto.Worker(&clocks[w], names)
			for i := w; i < len(pending); i += poolJobs {
				t := pending[i]
				if t.isConv {
					results[i], errs[i] = worker.ProfileConv(t.conv)
				} else {
					results[i], errs[i] = worker.ProfileGemm(t.gemm)
				}
			}
		}(w)
	}
	wg.Wait()

	measureSeconds := 0.0
	for w := range clocks {
		if e := clocks[w].Elapsed(); e > measureSeconds {
			measureSeconds = e
		}
	}
	stats.TuningSeconds = compileSeconds + measureSeconds

	for i, t := range pending {
		if errs[i] != nil {
			return nil, stats, fmt.Errorf("profiling %s: %w", t.key, errs[i])
		}
		resolved[t.key] = results[i]
		stats.ProfiledWorkloads++
		stats.Measurements += results[i].Candidates
		if opts.Log != nil {
			opts.Log.Record(t.key, tunelog.Entry{
				Config:      results[i].Config,
				TimeSeconds: results[i].Time,
				Trials:      results[i].Candidates,
			})
		}
	}

	// Merge the critical path into the caller's tuning clock.
	if c := proto.Clock(); c != nil {
		c.Advance(stats.TuningSeconds)
	}
	return resolved, stats, nil
}
