// Package codegen lowers an optimized relay graph into a runnable,
// priceable rt.Module — the BYOC code-generation stage of paper
// Figure 3.
//
// Two backends are provided:
//
//   - TunerBolt: the paper's system. Anchor ops are profiled by the
//     light-weight profiler and instantiated as CUTLASS-style templated
//     kernels (white-box: the module carries the emitted source);
//     persistent chains lower to b2b kernels; folded layout/pad glue
//     costs no launches.
//   - TunerAnsor: the baseline. Anchors are tuned by the opaque
//     evolutionary searcher over SIMT schedules; graph-level state is
//     whatever TVM's standard operator fusion gives (epilogues fused
//     into the generated kernel, no persistent fusion, no padding).
package codegen

import (
	"fmt"

	"bolt/internal/ansor"
	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/persistent"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
	"bolt/internal/tunelog"
)

// TunerKind selects the backend.
type TunerKind int

const (
	// TunerBolt uses the hardware-native templated search.
	TunerBolt TunerKind = iota
	// TunerAnsor uses the opaque auto-tuner baseline.
	TunerAnsor
)

// Options configures compilation.
type Options struct {
	Tuner TunerKind

	// Profiler is required for TunerBolt.
	Profiler *profiler.Profiler

	// Log is an optional persistent tuning cache (TunerBolt): workloads
	// found in it skip measurement entirely, and freshly profiled
	// workloads are recorded back.
	Log *tunelog.Log

	// Jobs is the profiling pool width (TunerBolt). Values < 1 mean 1.
	Jobs int

	// TopK, when > 0, limits guided profiling to the cost model's k
	// best-ranked candidates per workload (TunerBolt). Requires a model
	// source: either the profiler carries one (Profiler.Guide.Model) or
	// Log does. Until the model has trained, sweeps stay full.
	TopK int

	// TrustThreshold, when > 0, skips measurement entirely for a
	// workload once the model's held-out rank-correlation confidence
	// reaches it, emitting the predicted-best config as a
	// measurement-free tunelog entry. Same model-source requirement as
	// TopK. 0 means never skip.
	TrustThreshold float64

	// AnsorTuner and AnsorTrials are required for TunerAnsor; trials is
	// the measured-candidate budget per distinct workload ("task").
	AnsorTuner  *ansor.Tuner
	AnsorTrials int

	// EmitSource attaches generated CUDA-like source to Bolt kernels.
	EmitSource bool
}

// Compile lowers the graph. For TunerBolt the graph should already be
// optimized (relay.Optimize); for TunerAnsor it should carry TVM-level
// fusion only (fold BN + fuse epilogue).
//
// For TunerBolt, compilation is a staged pipeline (see pipeline.go):
// workload extraction, dedup + cache lookup, a parallel profiling
// pool, and a lowering pass that never blocks on measurement. The
// module's Tuning field reports what each stage did.
func Compile(g *relay.Graph, dev *gpu.Device, opts Options) (*rt.Module, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c := &compiler{g: g, dev: dev, opts: opts, ansorCache: map[string]ansor.Result{}}
	c.slots = make(map[int]int, len(g.Nodes))
	for i, n := range g.Nodes {
		c.slots[n.ID] = i
	}
	m := &rt.Module{Graph: g, Device: dev, Plan: relay.PlanMemory(g)}
	if opts.Tuner == TunerBolt {
		if opts.Profiler == nil {
			return nil, fmt.Errorf("codegen: TunerBolt requires a profiler")
		}
		resolved, stats, err := runTuningPipeline(g, dev, opts)
		if err != nil {
			return nil, fmt.Errorf("codegen: tuning pipeline: %w", err)
		}
		c.resolved = resolved
		m.Tuning = stats
	}
	for i, n := range g.Nodes {
		k, err := c.lower(n)
		if err != nil {
			return nil, fmt.Errorf("codegen: lowering %s: %w", n, err)
		}
		k.Slot = i
		m.Kernels = append(m.Kernels, k)
	}
	return m, nil
}

type compiler struct {
	g          *relay.Graph
	dev        *gpu.Device
	opts       Options
	ansorCache map[string]ansor.Result
	// slots maps node ID -> dense slot index in the execution
	// environment (the node's topological position).
	slots map[int]int
	// resolved maps tuning tasks to their selected configs (stage 4's
	// input; filled by the tuning pipeline for TunerBolt).
	resolved map[tunelog.Key]profiler.Result
}

// slot returns the environment slot holding the node's value.
func (c *compiler) slot(n *relay.Node) int { return c.slots[n.ID] }

// optSlot returns the node's slot, or -1 for an absent operand (e.g.
// a dense/conv without a fused bias).
func (c *compiler) optSlot(n *relay.Node) int {
	if n == nil {
		return -1
	}
	return c.slot(n)
}

// optValue fetches an optional operand from the environment.
func optValue(env *rt.Env, slot int) *tensor.Tensor {
	if slot < 0 {
		return nil
	}
	return env.Value(slot)
}

// gemmResult returns the resolved config for a dense workload. Every
// TunerBolt task must have been covered by the tuning pipeline; a miss
// means extraction and lowering drifted apart, which must fail loudly
// rather than silently serial-profile with broken accounting.
func (c *compiler) gemmResult(w profiler.GemmWorkload) (profiler.Result, error) {
	key := gemmTaskKey(w, c.dev)
	if r, ok := c.resolved[key]; ok {
		return r, nil
	}
	return profiler.Result{}, fmt.Errorf("tuning pipeline did not resolve %s", key)
}

// convResult is the convolution counterpart of gemmResult.
func (c *compiler) convResult(s cutlass.ConvShape, dt tensor.DType) (profiler.Result, error) {
	key := convTaskKey(s, dt, c.dev)
	if r, ok := c.resolved[key]; ok {
		return r, nil
	}
	return profiler.Result{}, fmt.Errorf("tuning pipeline did not resolve %s", key)
}

func (c *compiler) lower(n *relay.Node) (rt.Kernel, error) {
	switch n.Op {
	case relay.OpInput:
		name := n.Name
		return freeKernel(n, func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor { return env.Input(name) }), nil
	case relay.OpConstant:
		v := n.Value
		return freeKernel(n, func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor { return v }), nil
	case relay.OpDense:
		return c.lowerDense(n)
	case relay.OpConv2D:
		return c.lowerConv(n)
	case relay.OpPersistentGemm:
		return c.lowerPersistentGemm(n)
	case relay.OpPersistentConv:
		return c.lowerPersistentConv(n)
	case relay.OpBiasAdd:
		x, b := c.slot(n.Inputs[0]), c.slot(n.Inputs[1])
		layout := n.Layout
		return launchKernel(n, rt.ElementwiseLikeDesc(kname(n), shapeElems(n), 2, 1, n.DType),
			func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
				return rt.BiasAddInto(dst, env.Value(x), env.Value(b), layout)
			}), nil
	case relay.OpActivation:
		x := c.slot(n.Inputs[0])
		act := n.Act
		return launchKernel(n, rt.ElementwiseLikeDesc(kname(n), shapeElems(n), 1, 1+act.FLOPs(), n.DType),
			func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
				return rt.ActivationInto(dst, env.Value(x), act)
			}), nil
	case relay.OpAdd:
		a, b := c.slot(n.Inputs[0]), c.slot(n.Inputs[1])
		return launchKernel(n, rt.ElementwiseLikeDesc(kname(n), shapeElems(n), 2, 1, n.DType),
			func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
				return rt.AddInto(dst, env.Value(a), env.Value(b))
			}), nil
	case relay.OpBatchNorm:
		x, ga, be := c.slot(n.Inputs[0]), c.slot(n.Inputs[1]), c.slot(n.Inputs[2])
		me, va := c.slot(n.Inputs[3]), c.slot(n.Inputs[4])
		eps := n.Eps
		layout := n.Layout
		return launchKernel(n, rt.ElementwiseLikeDesc(kname(n), shapeElems(n), 1, 2, n.DType),
			func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
				return rt.BatchNormInto(dst, env.Value(x), env.Value(ga), env.Value(be), env.Value(me), env.Value(va), eps, layout)
			}), nil
	case relay.OpMaxPool:
		x := c.slot(n.Inputs[0])
		pool := n.Pool
		layout := n.Layout
		return launchKernel(n, rt.PoolDesc(kname(n), shapeElems(n), pool.Kernel, n.DType),
			func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
				return rt.MaxPoolInto(dst, env.Value(x), pool, layout)
			}), nil
	case relay.OpGlobalAvgPool:
		x := c.slot(n.Inputs[0])
		layout := n.Inputs[0].Layout
		inElems := n.Inputs[0].Shape.NumElements()
		desc := rt.ElementwiseLikeDesc(kname(n), shapeElems(n), 1, 1, n.DType)
		desc.GlobalLoadB = float64(inElems * n.DType.Size())
		return launchKernel(n, desc,
			func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
				return rt.GlobalAvgPoolInto(dst, env.Value(x), layout)
			}), nil
	case relay.OpFlatten:
		x := c.slot(n.Inputs[0])
		return freeKernel(n, func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
			return rt.FlattenInto(dst, env.Value(x))
		}), nil
	case relay.OpSoftmax:
		x := c.slot(n.Inputs[0])
		return launchKernel(n, rt.ElementwiseLikeDesc(kname(n), shapeElems(n), 3, 8, n.DType),
			func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
				return rt.SoftmaxInto(dst, env.Value(x))
			}), nil
	case relay.OpLayoutTransform:
		x := c.slot(n.Inputs[0])
		to := n.ToLayout
		exec := func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
			if to == tensor.LayoutNHWC {
				return tensor.ToNHWCInto(dst, env.Value(x))
			}
			return tensor.ToNCHWInto(dst, env.Value(x))
		}
		if n.Folded {
			// Implemented inside the adjacent templated kernel: the
			// permuted store costs no extra launch (paper §3.2.3).
			return freeKernel(n, exec), nil
		}
		return launchKernel(n, rt.ElementwiseLikeDesc(kname(n), shapeElems(n), 1, 0, n.DType), exec), nil
	case relay.OpPadChannels:
		x := c.slot(n.Inputs[0])
		padTo := n.PadTo
		desc := rt.PadDesc(n.Inputs[0].Shape.NumElements(), shapeElems(n), n.DType)
		return launchKernel(n, desc,
			func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
				return tensor.PadChannelsInto(dst, env.Value(x), padTo)
			}), nil
	case relay.OpSliceChannels:
		x := c.slot(n.Inputs[0])
		padTo := n.PadTo
		return freeKernel(n, func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
			return tensor.SliceChannelsInto(dst, env.Value(x), padTo)
		}), nil
	default:
		return rt.Kernel{}, fmt.Errorf("unsupported op %v", n.Op)
	}
}

func kname(n *relay.Node) string { return fmt.Sprintf("%s_%d", n.Op, n.ID) }

func shapeElems(n *relay.Node) int { return n.Shape.NumElements() }

func freeKernel(n *relay.Node, exec func(*rt.Env, *tensor.Tensor) *tensor.Tensor) rt.Kernel {
	return rt.Kernel{Name: kname(n), Node: n, Launches: 0, Exec: exec}
}

func launchKernel(n *relay.Node, desc gpu.KernelDesc, exec func(*rt.Env, *tensor.Tensor) *tensor.Tensor) rt.Kernel {
	return rt.Kernel{Name: desc.Name, Node: n, Desc: desc, Launches: 1, Exec: exec}
}

// epilogueOf mirrors the relay helper.
func epilogueOf(n *relay.Node) cutlass.Epilogue {
	if n.Epilogue != nil {
		return *n.Epilogue
	}
	e := cutlass.DefaultEpilogue()
	e.OutDType = n.DType
	return e
}

func (c *compiler) lowerDense(n *relay.Node) (rt.Kernel, error) {
	x, w := n.Inputs[0], n.Inputs[1]
	wl := denseWorkload(n)
	m, nn, k := wl.M, wl.N, wl.K
	epi := epilogueOf(n)
	var bias *relay.Node
	if len(n.Inputs) > 2 {
		bias = n.Inputs[2]
	}

	if c.opts.Tuner == TunerAnsor {
		return c.lowerAnsorGemm(n, x, w, bias, m, nn, k, epi)
	}

	res, err := c.gemmResult(wl)
	if err != nil {
		return rt.Kernel{}, err
	}
	g := &cutlass.Gemm{Config: res.Config, Epilogue: epi}
	xs, ws, bs := c.slot(x), c.slot(w), c.optSlot(bias)
	kern := launchKernel(n, g.Desc(c.dev, m, nn, k), func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
		return g.RunInto(dst, env.Value(xs), env.Value(ws), optValue(env, bs))
	})
	if c.opts.EmitSource {
		kern.Source = emitGemmSource(g, m, nn, k)
	}
	return kern, nil
}

func (c *compiler) lowerConv(n *relay.Node) (rt.Kernel, error) {
	x, w := n.Inputs[0], n.Inputs[1]
	shape := n.Conv
	epi := epilogueOf(n)
	var bias *relay.Node
	if len(n.Inputs) > 2 {
		bias = n.Inputs[2]
	}

	if c.opts.Tuner == TunerAnsor {
		return c.lowerAnsorConv(n, x, w, bias, shape, epi)
	}

	res, err := c.convResult(shape, n.DType)
	if err != nil {
		return rt.Kernel{}, err
	}
	conv := &cutlass.Conv2D{Shape: shape, Config: res.Config, Epilogue: epi}
	xs, ws, bs := c.slot(x), c.slot(w), c.optSlot(bias)
	kern := launchKernel(n, conv.Desc(c.dev), func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
		return conv.RunInto(dst, env.Value(xs), env.Value(ws), optValue(env, bs))
	})
	if c.opts.EmitSource {
		kern.Source = emitConvSource(conv)
	}
	return kern, nil
}

func (c *compiler) lowerPersistentGemm(n *relay.Node) (rt.Kernel, error) {
	m := n.Inputs[0].Shape[0]
	layers := make([]persistent.GemmLayer, len(n.Chain))
	for i, cl := range n.Chain {
		cfg, ok := relay.ResidenceConfigFor(cl.N, n.DType, c.dev)
		if !ok {
			return rt.Kernel{}, fmt.Errorf("persistent gemm layer %d: residence infeasible", i)
		}
		layers[i] = persistent.GemmLayer{N: cl.N, K: cl.K, Config: cfg, Epilogue: cl.Epilogue}
	}
	f, err := persistent.ChooseGemmResidence(m, layers, c.dev)
	if err != nil {
		return rt.Kernel{}, err
	}
	xs := c.slot(n.Inputs[0])
	operands := c.chainOperands(n.Chain)
	kern := launchKernel(n, f.Desc(c.dev), func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
		ws, bs := operands(env)
		return f.RunInto(dst, env.Value(xs), ws, bs)
	})
	if c.opts.EmitSource {
		kern.Source = emitPersistentGemmSource(f, m)
	}
	return kern, nil
}

// chainOperands resolves a persistent chain's weights and biases.
// Constant operands (the universal case) are bound at compile time so
// the hot path allocates nothing; anything else falls back to a
// per-call environment lookup.
func (c *compiler) chainOperands(chain []relay.ChainLayer) func(env *rt.Env) (ws, bs []*tensor.Tensor) {
	allConst := true
	for _, cl := range chain {
		if cl.Weight.Op != relay.OpConstant || (cl.Bias != nil && cl.Bias.Op != relay.OpConstant) {
			allConst = false
			break
		}
	}
	if allConst {
		ws := make([]*tensor.Tensor, len(chain))
		bs := make([]*tensor.Tensor, len(chain))
		for i, cl := range chain {
			ws[i] = cl.Weight.Value
			if cl.Bias != nil {
				bs[i] = cl.Bias.Value
			}
		}
		return func(*rt.Env) ([]*tensor.Tensor, []*tensor.Tensor) { return ws, bs }
	}
	wSlots := make([]int, len(chain))
	bSlots := make([]int, len(chain))
	for i, cl := range chain {
		wSlots[i] = c.slot(cl.Weight)
		bSlots[i] = -1
		if cl.Bias != nil {
			bSlots[i] = c.slot(cl.Bias)
		}
	}
	return func(env *rt.Env) ([]*tensor.Tensor, []*tensor.Tensor) {
		ws := make([]*tensor.Tensor, len(wSlots))
		bs := make([]*tensor.Tensor, len(bSlots))
		for i, s := range wSlots {
			ws[i] = env.Value(s)
			if bSlots[i] >= 0 {
				bs[i] = env.Value(bSlots[i])
			}
		}
		return ws, bs
	}
}

func (c *compiler) lowerPersistentConv(n *relay.Node) (rt.Kernel, error) {
	layers := make([]persistent.ConvLayer, len(n.Chain))
	for i, cl := range n.Chain {
		cfg, ok := relay.ResidenceConfigFor(cl.Conv.OC, n.DType, c.dev)
		if !ok {
			return rt.Kernel{}, fmt.Errorf("persistent conv layer %d: residence infeasible", i)
		}
		if cl.Conv.IC%cfg.AlignA != 0 {
			a := relay.AlignFor(cl.Conv.IC)
			if m := cutlass.MaxAlignment(n.DType); a > m {
				a = m
			}
			cfg.AlignA, cfg.AlignB = a, a
		}
		layers[i] = persistent.ConvLayer{Shape: cl.Conv, Config: cfg, Epilogue: cl.Epilogue}
	}
	f, err := persistent.ChooseConvResidence(layers, c.dev)
	if err != nil {
		return rt.Kernel{}, err
	}
	xs := c.slot(n.Inputs[0])
	operands := c.chainOperands(n.Chain)
	kern := launchKernel(n, f.Desc(c.dev), func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
		ws, bs := operands(env)
		return f.RunInto(dst, env.Value(xs), ws, bs)
	})
	if c.opts.EmitSource {
		kern.Source = emitPersistentConvSource(f)
	}
	return kern, nil
}

// lowerAnsorGemm prices a Dense through the baseline tuner. TVM's own
// operator fusion computes the epilogue inside the generated kernel,
// so only the extra flops are charged.
func (c *compiler) lowerAnsorGemm(n *relay.Node, x, w, bias *relay.Node, m, nn, k int, epi cutlass.Epilogue) (rt.Kernel, error) {
	key := fmt.Sprintf("gemm_%d_%d_%d", m, nn, k)
	res, ok := c.ansorCache[key]
	if !ok {
		res = c.opts.AnsorTuner.TuneGemm(m, nn, k, c.trials(), n.DType)
		c.ansorCache[key] = res
	}
	desc := res.Schedule.GemmDesc(c.dev, m, nn, k, n.DType)
	desc.FLOPs += epi.FLOPsOn(m, nn)
	xs, ws, bs := c.slot(x), c.slot(w), c.optSlot(bias)
	// Functional execution reuses the reference path (numerics are
	// schedule-independent).
	return launchKernel(n, desc, func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
		return simtGemmRun(dst, env.Value(xs), env.Value(ws), optValue(env, bs), epi)
	}), nil
}

func (c *compiler) lowerAnsorConv(n *relay.Node, x, w, bias *relay.Node, shape cutlass.ConvShape, epi cutlass.Epilogue) (rt.Kernel, error) {
	m, nn, k := shape.ImplicitGemm()
	key := fmt.Sprintf("conv_%d_%d_%d_%d", m, nn, k, shape.StrideH)
	res, ok := c.ansorCache[key]
	if !ok {
		geo := ansor.ConvGeometry{M: m, N: nn, K: k, ActivationElems: shape.N * shape.H * shape.W * shape.IC}
		res = c.opts.AnsorTuner.TuneConv(geo, c.trials(), n.DType)
		c.ansorCache[key] = res
	}
	geo := ansor.ConvGeometry{M: m, N: nn, K: k, ActivationElems: shape.N * shape.H * shape.W * shape.IC}
	desc := res.Schedule.ConvDesc(c.dev, geo, n.DType)
	desc.FLOPs += epi.FLOPsOn(m, nn)
	layout := n.Layout
	xs, ws, bs := c.slot(x), c.slot(w), c.optSlot(bias)
	return launchKernel(n, desc, func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
		return simtConvRun(dst, shape, env.Value(xs), env.Value(ws), optValue(env, bs), epi, layout)
	}), nil
}

func (c *compiler) trials() int {
	if c.opts.AnsorTrials > 0 {
		return c.opts.AnsorTrials
	}
	return 900
}

// simtGemmRun executes a GEMM functionally with a permissive alignment
// config (the baseline's numerics; schedules do not change math).
func simtGemmRun(dst *tensor.Tensor, a, b, bias *tensor.Tensor, epi cutlass.Epilogue) *tensor.Tensor {
	g := &cutlass.Gemm{Config: permissiveConfig(), Epilogue: epi}
	return g.RunInto(dst, a, b, bias)
}

func simtConvRun(dst *tensor.Tensor, s cutlass.ConvShape, x, w, bias *tensor.Tensor, epi cutlass.Epilogue, layout tensor.Layout) *tensor.Tensor {
	// The baseline runs NCHW models directly; our functional kernels
	// are NHWC, so transform around them when needed.
	nchw := layout == tensor.LayoutNCHW
	if !nchw {
		conv := &cutlass.Conv2D{Shape: s, Config: permissiveConfig(), Epilogue: epi}
		return conv.RunInto(dst, x, w, bias)
	}
	conv := &cutlass.Conv2D{Shape: s, Config: permissiveConfig(), Epilogue: epi}
	out := conv.Run(tensor.ToNHWC(x), w, bias)
	return tensor.ToNCHWInto(dst, out)
}

func permissiveConfig() cutlass.GemmConfig {
	return cutlass.GemmConfig{
		TB:     cutlass.Shape3{M: 64, N: 64, K: 32},
		Warp:   cutlass.Shape3{M: 32, N: 32, K: 32},
		Inst:   cutlass.Shape3{M: 16, N: 8, K: 8},
		Stages: 2, SwizzleLog: 1,
		AlignA: 1, AlignB: 1, AlignC: 1,
		Op: gpu.OpClassTensorOp, DType: tensor.FP16,
	}
}
