package codegen

import (
	"fmt"
	"strings"

	"bolt/internal/cutlass"
	"bolt/internal/persistent"
)

// This file emits human-readable CUDA C++ in the CUTLASS instantiation
// convention for each Bolt kernel, fulfilling the paper's white-box
// promise (§3.2.3): the generated code is real template instantiation
// source a user can inspect and extend, not an opaque extern call.

func activationFunctor(a cutlass.Activation) string {
	switch a {
	case cutlass.ActReLU:
		return "cutlass::epilogue::thread::ReLu"
	case cutlass.ActGELU:
		return "cutlass::epilogue::thread::GELU_taylor"
	case cutlass.ActHardswish:
		return "cutlass::epilogue::thread::HardSwish"
	case cutlass.ActSoftplus:
		return "bolt::epilogue::thread::Softplus"
	case cutlass.ActSigmoid:
		return "cutlass::epilogue::thread::Sigmoid"
	default:
		return "cutlass::epilogue::thread::Identity"
	}
}

func epilogueType(e cutlass.Epilogue, alignC int) string {
	if e.Act == cutlass.ActIdentity && !e.BiasVector {
		return fmt.Sprintf("cutlass::epilogue::thread::LinearCombination<\n"+
			"      cutlass::half_t, %d, float, float>", alignC)
	}
	return fmt.Sprintf("cutlass::epilogue::thread::LinearCombinationGeneric<\n"+
		"      %s, cutlass::half_t, %d, float, float>", activationFunctor(e.Act), alignC)
}

func shapeType(kind string, s cutlass.Shape3) string {
	return fmt.Sprintf("cutlass::gemm::%s<%d, %d, %d>", kind, s.M, s.N, s.K)
}

// emitGemmSource renders the device-level GEMM instantiation.
func emitGemmSource(g *cutlass.Gemm, m, n, k int) string {
	c := g.Config
	var b strings.Builder
	fmt.Fprintf(&b, "// %s  problem_size=(%d, %d, %d)\n", g.Name(), m, n, k)
	fmt.Fprintf(&b, "using %s = cutlass::gemm::device::Gemm<\n", ident(g.Name()))
	b.WriteString("    cutlass::half_t, cutlass::layout::RowMajor,   // A\n")
	b.WriteString("    cutlass::half_t, cutlass::layout::RowMajor,   // B\n")
	b.WriteString("    cutlass::half_t, cutlass::layout::RowMajor,   // C/D\n")
	b.WriteString("    float,                                        // accumulator\n")
	fmt.Fprintf(&b, "    cutlass::arch::OpClass%s, cutlass::arch::Sm75,\n", c.Op)
	fmt.Fprintf(&b, "    %s,\n", shapeType("GemmShape", c.TB))
	fmt.Fprintf(&b, "    %s,\n", shapeType("GemmShape", c.Warp))
	fmt.Fprintf(&b, "    %s,\n", shapeType("GemmShape", c.Inst))
	fmt.Fprintf(&b, "    %s,\n", epilogueType(g.Epilogue, c.AlignC))
	fmt.Fprintf(&b, "    cutlass::gemm::threadblock::GemmIdentityThreadblockSwizzle<%d>,\n", 1<<c.SwizzleLog)
	fmt.Fprintf(&b, "    %d /*stages*/, %d /*alignA*/, %d /*alignB*/>;\n", c.Stages, c.AlignA, c.AlignB)
	return b.String()
}

// emitConvSource renders the implicit-GEMM fprop instantiation.
func emitConvSource(conv *cutlass.Conv2D) string {
	c := conv.Config
	s := conv.Shape
	var b strings.Builder
	fmt.Fprintf(&b, "// %s  NHWC=(%d, %d, %d, %d) OHWI=(%d, %d, %d, %d) stride=(%d, %d) pad=(%d, %d)\n",
		conv.Name(), s.N, s.H, s.W, s.IC, s.OC, s.KH, s.KW, s.IC, s.StrideH, s.StrideW, s.PadH, s.PadW)
	fmt.Fprintf(&b, "using %s = cutlass::conv::device::ImplicitGemmConvolution<\n", ident(conv.Name()))
	b.WriteString("    cutlass::conv::kernel::DefaultConv2dFprop<\n")
	b.WriteString("      cutlass::half_t, cutlass::layout::TensorNHWC,\n")
	b.WriteString("      cutlass::half_t, cutlass::layout::TensorNHWC,\n")
	b.WriteString("      cutlass::half_t, cutlass::layout::TensorNHWC,\n")
	fmt.Fprintf(&b, "      float, cutlass::arch::OpClass%s, cutlass::arch::Sm75,\n", c.Op)
	fmt.Fprintf(&b, "      %s,\n", shapeType("GemmShape", c.TB))
	fmt.Fprintf(&b, "      %s,\n", shapeType("GemmShape", c.Warp))
	fmt.Fprintf(&b, "      %s,\n", shapeType("GemmShape", c.Inst))
	fmt.Fprintf(&b, "      %s,\n", epilogueType(conv.Epilogue, c.AlignC))
	fmt.Fprintf(&b, "      cutlass::gemm::threadblock::GemmIdentityThreadblockSwizzle<%d>,\n", 1<<c.SwizzleLog)
	fmt.Fprintf(&b, "      %d, cutlass::arch::OpMultiplyAdd,\n", c.Stages)
	b.WriteString("      cutlass::conv::IteratorAlgorithm::kOptimized>::Kernel>;\n")
	return b.String()
}

// emitPersistentGemmSource renders the b2b fused kernel: Bolt's new
// template extending the threadblock-level CUTLASS GEMM design.
func emitPersistentGemmSource(f *persistent.FusedGemm, m int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s  M=%d, %d fused layers, %s\n", f.Name(), m, len(f.Layers), f.Kind)
	fmt.Fprintf(&b, "using %s = bolt::gemm::device::B2bGemm<\n", ident(f.Name()))
	b.WriteString("    cutlass::half_t, cutlass::layout::RowMajor, float,\n")
	for i, l := range f.Layers {
		fmt.Fprintf(&b, "    // layer %d: N=%d K=%d\n", i, l.N, l.K)
		fmt.Fprintf(&b, "    %s, %s, %s,\n",
			shapeType("GemmShape", l.Config.TB), shapeType("GemmShape", l.Config.Warp), epilogueType(l.Epilogue, l.Config.AlignC))
	}
	if f.Kind == persistent.RFResident {
		b.WriteString("    bolt::gemm::warp::AccumulatorFragmentIterator /*RF-resident*/>;\n")
	} else {
		b.WriteString("    bolt::gemm::threadblock::SmemFragmentIterator /*smem-resident, conflict-free layout*/>;\n")
	}
	return b.String()
}

// emitPersistentConvSource renders the b2b fused convolution.
func emitPersistentConvSource(f *persistent.FusedConv) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s  %d fused layers, %s\n", f.Name(), len(f.Layers), f.Kind)
	fmt.Fprintf(&b, "using %s = bolt::conv::device::B2bImplicitGemmConvolution<\n", ident(f.Name()))
	for i, l := range f.Layers {
		s := l.Shape
		fmt.Fprintf(&b, "    // layer %d: %dx%d k%dx%d s%d ic%d oc%d\n", i, s.H, s.W, s.KH, s.KW, s.StrideH, s.IC, s.OC)
		fmt.Fprintf(&b, "    %s, %s, %s,\n",
			shapeType("GemmShape", l.Config.TB), shapeType("GemmShape", l.Config.Warp), epilogueType(l.Epilogue, l.Config.AlignC))
	}
	if f.Kind == persistent.RFResident {
		b.WriteString("    bolt::gemm::warp::AccumulatorFragmentIterator /*RF-resident*/>;\n")
	} else {
		b.WriteString("    bolt::gemm::threadblock::SmemFragmentIterator /*smem-resident*/>;\n")
	}
	return b.String()
}

// ident sanitizes a kernel name into a C++ identifier.
func ident(name string) string {
	r := strings.NewReplacer("-", "_", ".", "_", " ", "_")
	return r.Replace(name)
}
