package codegen

import (
	"testing"

	"bolt/internal/ansor"
	"bolt/internal/gpu"
	"bolt/internal/models"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// compileZoo compiles a zoo model through the full Bolt pipeline.
func compileZoo(t *testing.T, g *relay.Graph) *rt.Module {
	t.Helper()
	dev := gpu.T4()
	if err := relay.Optimize(g, dev); err != nil {
		t.Fatal(err)
	}
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	m, err := Compile(g, dev, Options{Tuner: TunerBolt, Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ansorCompileZoo compiles through the baseline tuner with a tiny
// trial budget (the functional path is what matters here).
func ansorCompileZoo(t *testing.T, g *relay.Graph, dev *gpu.Device) *rt.Module {
	t.Helper()
	relay.FoldBatchNorm(g)
	relay.FuseEpilogue(g)
	m, err := Compile(g, dev, Options{Tuner: TunerAnsor, AnsorTuner: ansor.NewTuner(dev, nil, 5), AnsorTrials: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestZooCompiles is the integration sweep: every model in the zoo
// must optimize, partition, profile, and compile, producing a module
// with sane accounting.
func TestZooCompiles(t *testing.T) {
	cases := []struct {
		name  string
		build func() *relay.Graph
		// minLaunches sanity-checks that fusion did not collapse the
		// model into nothing, maxLaunches that fusion happened at all.
		minLaunches, maxLaunches int
	}{
		{"VGG-16", func() *relay.Graph { return models.VGG(16, 8) }, 15, 30},
		{"ResNet-18", func() *relay.Graph { return models.ResNet(18, 8) }, 25, 50},
		{"ResNet-50", func() *relay.Graph { return models.ResNet(50, 8) }, 50, 100},
		{"RepVGG-A0", func() *relay.Graph { return models.RepVGG("A0", 8, models.RepVGGOptions{}) }, 20, 30},
		{"RepVGGAug-A0", func() *relay.Graph {
			return models.RepVGG("A0", 8, models.RepVGGOptions{Deepen1x1: true})
		}, 20, 35},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := compileZoo(t, c.build())
			if tm := m.Time(); tm <= 0 || tm > 1 {
				t.Errorf("modeled time %g implausible", tm)
			}
			l := m.LaunchCount()
			if l < c.minLaunches || l > c.maxLaunches {
				t.Errorf("%d launches outside [%d, %d]", l, c.minLaunches, c.maxLaunches)
			}
			// Every launched kernel must have a priceable descriptor.
			for i := range m.Kernels {
				k := &m.Kernels[i]
				if k.Launches > 0 && m.Device.KernelTime(k.Desc) <= 0 {
					t.Errorf("kernel %s has non-positive time", k.Name)
				}
			}
		})
	}
}

// TestRepVGGAugFusesPairs: the deepened model's 3x3+1x1 pairs must all
// become persistent kernels — this is the mechanism behind Table 5's
// modest speed cost.
func TestRepVGGAugFusesPairs(t *testing.T) {
	g := models.RepVGG("A0", 8, models.RepVGGOptions{Deepen1x1: true})
	conv3x3 := 0
	for _, n := range g.Nodes {
		if n.Op == relay.OpConv2D && n.Conv.KH == 3 {
			conv3x3++
		}
	}
	m := compileZoo(t, g)
	persistentKernels := 0
	looseOneByOne := 0
	for i := range m.Kernels {
		switch m.Kernels[i].Node.Op {
		case relay.OpPersistentConv:
			persistentKernels++
		case relay.OpConv2D:
			if m.Kernels[i].Node.Conv.KH == 1 {
				looseOneByOne++
			}
		}
	}
	// 21 of the 22 3x3 convs gain a 1x1 follower; every pair for which
	// fusion is beneficial becomes a persistent kernel. Require the
	// vast majority to fuse.
	if persistentKernels < 15 {
		t.Errorf("only %d persistent conv kernels (of ~21 pairs)", persistentKernels)
	}
	if looseOneByOne > 6 {
		t.Errorf("%d unfused 1x1 convs remain", looseOneByOne)
	}
	_ = conv3x3
}

// TestResNetDownsampleNotFused: ResNet's 1x1 downsample convs have
// stride 2 and feed residual adds (fan-out), so persistent fusion must
// leave them alone.
func TestResNetDownsampleNotFused(t *testing.T) {
	g := models.ResNet(18, 8)
	m := compileZoo(t, g)
	for i := range m.Kernels {
		n := m.Kernels[i].Node
		if n.Op == relay.OpPersistentConv {
			for _, cl := range n.Chain[1:] {
				if cl.Conv.StrideH != 1 {
					t.Errorf("strided conv fused into a chain: %+v", cl.Conv)
				}
			}
		}
	}
}

// TestBaselineZooCompiles runs the Ansor path over a couple of models.
func TestBaselineZooCompiles(t *testing.T) {
	dev := gpu.T4()
	for _, build := range []func() *relay.Graph{
		func() *relay.Graph { return models.ResNet(18, 8) },
		func() *relay.Graph { return models.RepVGG("A0", 8, models.RepVGGOptions{}) },
	} {
		g := build()
		relay.FoldBatchNorm(g)
		relay.FuseEpilogue(g)
		m, err := Compile(g, dev, Options{Tuner: TunerAnsor, AnsorTuner: newTestTuner(dev), AnsorTrials: 16})
		if err != nil {
			t.Fatal(err)
		}
		if m.Time() <= 0 {
			t.Error("baseline module time must be positive")
		}
	}
}

// TestZooPlannedExecutorGolden is the planned executor's oracle sweep:
// for every zoo model (at a reduced resolution so functional execution
// stays affordable) the arena-planned Run must be bit-identical to the
// clone-based executor — on the first call, and again on a second call
// that reuses the recycled arena. The memory report must show the
// planner genuinely beating the naive sum of intermediates.
func TestZooPlannedExecutorGolden(t *testing.T) {
	cases := []struct {
		name  string
		batch int
		build func() *relay.Graph
	}{
		{"VGG-16", 2, func() *relay.Graph { return models.VGGAt(16, 2, 32) }},
		{"ResNet-18", 2, func() *relay.Graph { return models.ResNetAt(18, 2, 32) }},
		{"ResNet-50", 1, func() *relay.Graph { return models.ResNetAt(50, 1, 32) }},
		{"RepVGG-A0", 2, func() *relay.Graph { return models.RepVGGAt("A0", 2, 32, models.RepVGGOptions{}) }},
		{"RepVGGAug-A0", 2, func() *relay.Graph {
			return models.RepVGGAt("A0", 2, 32, models.RepVGGOptions{Deepen1x1: true})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := compileZoo(t, c.build())
			if m.Plan == nil {
				t.Fatal("compiled module has no memory plan")
			}
			in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, c.batch, 3, 32, 32)
			in.FillRandom(42, 1)
			inputs := map[string]*tensor.Tensor{"data": in}

			ref := m.RunUnplanned(inputs)
			first := m.Run(inputs).Clone() // view into the arena: clone before rerunning
			if d := tensor.MaxAbsDiff(first, ref); d != 0 {
				t.Errorf("planned output deviates from clone-based executor: max diff %g", d)
			}
			second := m.Run(inputs)
			if d := tensor.MaxAbsDiff(second, first); d != 0 {
				t.Errorf("second arena-reusing run deviates: max diff %g (stale arena state?)", d)
			}

			mem := m.Memory()
			if mem.PlannedArenaBytes >= mem.NaiveActivationBytes {
				t.Errorf("planned arena %d not below naive sum %d", mem.PlannedArenaBytes, mem.NaiveActivationBytes)
			}
			if mem.PlannedArenaBytes < mem.PeakActivationBytes {
				t.Errorf("planned arena %d below peak single intermediate %d (impossible)",
					mem.PlannedArenaBytes, mem.PeakActivationBytes)
			}
			if mem.ReuseFactor <= 1 {
				t.Errorf("reuse factor %.2f, want > 1", mem.ReuseFactor)
			}
		})
	}
}

// TestBaselinePlannedExecutorGolden covers the Ansor fallback path
// (NCHW graphs, SIMT reference kernels) with the same oracle.
func TestBaselinePlannedExecutorGolden(t *testing.T) {
	dev := gpu.T4()
	m := ansorCompileZoo(t, models.ResNetAt(18, 1, 32), dev)
	in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 1, 3, 32, 32)
	in.FillRandom(43, 1)
	inputs := map[string]*tensor.Tensor{"data": in}
	ref := m.RunUnplanned(inputs)
	got := m.Run(inputs)
	if d := tensor.MaxAbsDiff(got, ref); d != 0 {
		t.Errorf("baseline planned output deviates: max diff %g", d)
	}
}

// TestPlannedRunAllocsReduction locks in the hot-path win: the planned
// executor must allocate less than half of what the clone-based one
// does per Run. AllocsPerRun pins GOMAXPROCS to 1, so the measurement
// counts tensor allocations, not scheduler noise.
func TestPlannedRunAllocsReduction(t *testing.T) {
	m := compileZoo(t, models.ResNetAt(18, 2, 32))
	in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 2, 3, 32, 32)
	in.FillRandom(44, 1)
	inputs := map[string]*tensor.Tensor{"data": in}
	m.Run(inputs) // materialize the arena before measuring

	planned := testing.AllocsPerRun(3, func() { m.Run(inputs) })
	clone := testing.AllocsPerRun(3, func() { m.RunUnplanned(inputs) })
	if planned > clone/2 {
		t.Errorf("planned Run allocs/op = %.0f, clone-based = %.0f: want >= 50%% reduction", planned, clone)
	}
	t.Logf("allocs/op: planned %.0f vs clone-based %.0f (%.1fx)", planned, clone, clone/planned)
}
