package codegen

import (
	"bytes"
	"testing"

	"bolt/internal/gpu"
	"bolt/internal/models"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tunelog"
)

// guidedCompile runs the full Bolt pipeline against a tuning log with
// the guidance knobs set, returning the module and its stats.
func guidedCompile(t *testing.T, g *relay.Graph, dev *gpu.Device, log *tunelog.Log, topK int, trust float64, jobs int) *rt.Module {
	t.Helper()
	if err := relay.Optimize(g, dev); err != nil {
		t.Fatal(err)
	}
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	m, err := Compile(g, dev, Options{
		Tuner: TunerBolt, Profiler: p, Log: log,
		Jobs: jobs, TopK: topK, TrustThreshold: trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// coldLogWithModel builds an entry-free tuning log that carries an
// already-trained cost model — the warm-process cold-model-compile
// scenario (model persisted in the tunelog, cache entries for these
// workloads absent).
func coldLogWithModel(t *testing.T, trained *tunelog.Log) *tunelog.Log {
	t.Helper()
	cold := tunelog.New()
	cold.Model.Ingest(trained.Model)
	if !cold.Model.Trained() {
		t.Fatal("transferred model is untrained")
	}
	return cold
}

// trainOnResNet full-sweeps ResNet-18 into a fresh log, training the
// log's model from every measurement, and returns the log plus the
// oracle module.
func trainOnResNet(t *testing.T, dev *gpu.Device) (*tunelog.Log, *rt.Module) {
	t.Helper()
	log := tunelog.New()
	m := guidedCompile(t, models.ResNet(18, 8), dev, log, 0, 0, 4)
	if !log.Model.Trained() {
		t.Fatal("full-sweep compile with a log must train the log's model")
	}
	if m.Tuning.Measurements != m.Tuning.EnumeratedCandidates {
		t.Fatalf("unguided sweep must measure everything: %d of %d",
			m.Tuning.Measurements, m.Tuning.EnumeratedCandidates)
	}
	return log, m
}

func TestGuidedPipelineCutsTuningTimeAtMatchedQuality(t *testing.T) {
	dev := gpu.T4()
	trained, oracle := trainOnResNet(t, dev)

	cold := coldLogWithModel(t, trained)
	guided := guidedCompile(t, models.ResNet(18, 8), dev, cold, 8, 0, 4)

	gs, os := guided.Tuning, oracle.Tuning
	if gs.CacheHits != 0 {
		t.Fatalf("cold log should have no cache hits, got %d", gs.CacheHits)
	}
	if gs.Measurements > 8*gs.ProfiledWorkloads {
		t.Errorf("guided run measured %d candidates across %d workloads, budget 8 each",
			gs.Measurements, gs.ProfiledWorkloads)
	}
	if gs.SkippedCandidates != gs.EnumeratedCandidates-gs.Measurements {
		t.Errorf("skip accounting inconsistent: %d skipped, %d enumerated, %d measured",
			gs.SkippedCandidates, gs.EnumeratedCandidates, gs.Measurements)
	}
	if gs.TuningSeconds > 0.5*os.TuningSeconds {
		t.Errorf("guided cold compile cost %.1fs vs full sweep %.1fs, want <= 0.5x",
			gs.TuningSeconds, os.TuningSeconds)
	}
	if ratio := guided.Time() / oracle.Time(); ratio > 1.05 {
		t.Errorf("guided module runs at %.4fx the oracle, want <= 1.05x", ratio)
	}
	if gs.PredictionError < 0 {
		t.Error("guided run consulted a trained model; mean prediction error must be reported")
	}
}

func TestGuidedPipelineIsWorkerCountInvariant(t *testing.T) {
	dev := gpu.T4()
	trained, _ := trainOnResNet(t, dev)

	a := guidedCompile(t, models.ResNet(18, 8), dev, coldLogWithModel(t, trained), 8, 0, 1)
	b := guidedCompile(t, models.ResNet(18, 8), dev, coldLogWithModel(t, trained), 8, 0, 8)
	if len(a.Kernels) != len(b.Kernels) {
		t.Fatalf("kernel counts differ: %d vs %d", len(a.Kernels), len(b.Kernels))
	}
	for i := range a.Kernels {
		ka, kb := a.Kernels[i], b.Kernels[i]
		if ka.Name != kb.Name || ka.Desc != kb.Desc {
			t.Errorf("kernel %d differs across pool widths: %s vs %s", i, ka.Name, kb.Name)
		}
	}
	if a.Tuning.Measurements != b.Tuning.Measurements ||
		a.Tuning.PredictedWorkloads != b.Tuning.PredictedWorkloads {
		t.Errorf("guided stats differ across pool widths: %+v vs %+v", a.Tuning, b.Tuning)
	}
}

func TestPredictOnlyCompileMeasuresNothing(t *testing.T) {
	dev := gpu.T4()
	trained, oracle := trainOnResNet(t, dev)
	conf := trained.Model.Confidence()
	if conf <= 0.3 {
		t.Fatalf("trained model confidence %.3f too low for a predict-only test", conf)
	}

	cold := coldLogWithModel(t, trained)
	m := guidedCompile(t, models.ResNet(18, 8), dev, cold, 0, conf*0.9, 4)

	s := m.Tuning
	if s.PredictedWorkloads != s.ProfiledWorkloads || s.PredictedWorkloads == 0 {
		t.Fatalf("want every workload predicted, got %d of %d", s.PredictedWorkloads, s.ProfiledWorkloads)
	}
	if s.Measurements != 0 || s.SamplePrograms != 0 || s.TuningSeconds != 0 {
		t.Errorf("predict-only compile must be measurement-free: %+v", s)
	}
	if ratio := m.Time() / oracle.Time(); ratio > 1.05 {
		t.Errorf("predict-only module runs at %.4fx the oracle, want <= 1.05x", ratio)
	}

	// The measurement-free entries must round-trip flagged as predicted.
	var buf bytes.Buffer
	if err := cold.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded := tunelog.New()
	if err := reloaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	predicted := 0
	for _, tsk := range extractTasks(t, dev) {
		if e, ok := reloaded.Lookup(tsk); ok && e.Predicted {
			predicted++
		}
	}
	if predicted != s.PredictedWorkloads {
		t.Errorf("%d predicted entries in reloaded log, stats say %d", predicted, s.PredictedWorkloads)
	}
}

// extractTasks returns the tunelog keys of ResNet-18's tuning tasks.
func extractTasks(t *testing.T, dev *gpu.Device) []tunelog.Key {
	t.Helper()
	g := models.ResNet(18, 8)
	if err := relay.Optimize(g, dev); err != nil {
		t.Fatal(err)
	}
	unique, _ := extractWorkloads(g, dev)
	keys := make([]tunelog.Key, len(unique))
	for i, u := range unique {
		keys[i] = u.key
	}
	return keys
}

func TestGuidedKnobsRequireModelSource(t *testing.T) {
	dev := gpu.T4()
	g := models.ResNet(18, 8)
	if err := relay.Optimize(g, dev); err != nil {
		t.Fatal(err)
	}
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	if _, err := Compile(g, dev, Options{Tuner: TunerBolt, Profiler: p, TopK: 8}); err == nil {
		t.Error("TopK with no model source must fail loudly, not silently full-sweep")
	}
	if _, err := Compile(g, dev, Options{Tuner: TunerBolt, Profiler: p, TrustThreshold: 0.5}); err == nil {
		t.Error("TrustThreshold with no model source must fail loudly")
	}
}
