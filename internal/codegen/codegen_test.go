package codegen

import (
	"strings"
	"testing"

	"bolt/internal/ansor"
	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/profiler"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// smallCNN builds a compact network exercising conv, bias, activation,
// 1x1 follower (persistent-fusion candidate), pooling, dense, softmax.
func smallCNN(batch int) *relay.Graph {
	b := relay.NewBuilder()
	x := b.Input("data", tensor.FP16, batch, 8, 16, 16)
	c := b.Conv2D(x, b.Weight("w0", 16, 3, 3, 8), 1, 1)
	c = b.BiasAdd(c, b.Weight("b0", 16))
	c = b.Activation(c, cutlass.ActReLU)
	c = b.Conv2D(c, b.Weight("w1", 16, 1, 1, 16), 1, 0)
	c = b.BiasAdd(c, b.Weight("b1", 16))
	c = b.Activation(c, cutlass.ActReLU)
	g := b.GlobalAvgPool(c)
	d := b.Dense(g, b.Weight("wfc", 16, 8))
	d = b.BiasAdd(d, b.Weight("bfc", 8))
	return b.Build(b.Softmax(d))
}

func boltCompile(t *testing.T, g *relay.Graph, dev *gpu.Device) *rt.Module {
	t.Helper()
	if err := relay.Optimize(g, dev); err != nil {
		t.Fatal(err)
	}
	p := profiler.New(dev, nil)
	p.Measure.NoiseStdDev = 0
	m, err := Compile(g, dev, Options{Tuner: TunerBolt, Profiler: p, EmitSource: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func ansorCompile(t *testing.T, g *relay.Graph, dev *gpu.Device, trials int) *rt.Module {
	t.Helper()
	relay.FoldBatchNorm(g)
	relay.FuseEpilogue(g)
	m, err := Compile(g, dev, Options{Tuner: TunerAnsor, AnsorTuner: ansor.NewTuner(dev, nil, 3), AnsorTrials: trials})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBoltCompileAndRun(t *testing.T) {
	dev := gpu.T4()
	g := smallCNN(2)
	m := boltCompile(t, g, dev)

	in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 2, 8, 16, 16)
	in.FillRandom(5, 1)
	out := m.Run(map[string]*tensor.Tensor{"data": in})
	if !out.Shape().Equal(tensor.Shape{2, 8}) {
		t.Fatalf("output shape %v", out.Shape())
	}
	// Softmax rows sum to 1.
	for i := 0; i < 2; i++ {
		sum := float32(0)
		for j := 0; j < 8; j++ {
			sum += out.At(i, j)
		}
		if sum < 0.98 || sum > 1.02 {
			t.Errorf("softmax row %d sums to %g", i, sum)
		}
	}
	if m.Time() <= 0 {
		t.Error("module time must be positive")
	}
	if m.Throughput(2) <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestOptimizedNumericsMatchUnoptimized(t *testing.T) {
	// The whole pass pipeline (layout transform, epilogue fusion,
	// persistent fusion, padding) must not change results beyond FP16
	// noise: compile the same network both ways and compare outputs.
	dev := gpu.T4()
	in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 2, 8, 16, 16)
	in.FillRandom(6, 1)

	opt := boltCompile(t, smallCNN(2), dev)
	ref := ansorCompile(t, smallCNN(2), dev, 8)

	a := opt.Run(map[string]*tensor.Tensor{"data": in})
	b := ref.Run(map[string]*tensor.Tensor{"data": in})
	if !tensor.AllClose(a, b, 5e-2, 1e-2) {
		t.Errorf("optimized output deviates: max diff %g", tensor.MaxAbsDiff(a, b))
	}
}

func TestBoltFasterAndFewerLaunches(t *testing.T) {
	dev := gpu.T4()
	bolt := boltCompile(t, smallCNN(32), dev)
	baseline := ansorCompile(t, smallCNN(32), dev, 32)
	if bolt.Time() >= baseline.Time() {
		t.Errorf("bolt %.3gus not faster than ansor %.3gus", bolt.Time()*1e6, baseline.Time()*1e6)
	}
	if bolt.LaunchCount() >= baseline.LaunchCount() {
		t.Errorf("bolt launches %d not fewer than baseline %d (fusion should eliminate launches)",
			bolt.LaunchCount(), baseline.LaunchCount())
	}
}

func TestPersistentChainLowered(t *testing.T) {
	dev := gpu.T4()
	g := smallCNN(32)
	m := boltCompile(t, g, dev)
	found := false
	for i := range m.Kernels {
		if m.Kernels[i].Node.Op == relay.OpPersistentConv {
			found = true
			if m.Kernels[i].Launches != 1 {
				t.Error("persistent chain must be one launch")
			}
			if !strings.Contains(m.Kernels[i].Source, "B2bImplicitGemmConvolution") {
				t.Error("persistent conv source not emitted")
			}
		}
	}
	if !found {
		t.Error("3x3+1x1 chain was not lowered to a persistent kernel")
	}
}

func TestEmittedSource(t *testing.T) {
	dev := gpu.T4()
	m := boltCompile(t, smallCNN(2), dev)
	src := m.Sources()
	for _, want := range []string{
		"cutlass::gemm::device::Gemm<",
		"cutlass::half_t",
		"GemmShape<",
		"Sm75",
		"LinearCombination",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted source missing %q", want)
		}
	}
	// Fused ReLU epilogues appear as epilogue functors.
	if !strings.Contains(src, "ReLu") {
		t.Error("fused ReLU epilogue not visible in source")
	}
}

func TestReportAndKernelAccounting(t *testing.T) {
	dev := gpu.T4()
	m := boltCompile(t, smallCNN(4), dev)
	rows := m.Report()
	if len(rows) == 0 {
		t.Fatal("empty report")
	}
	totalPct := 0.0
	for i, r := range rows {
		totalPct += r.Percent
		if i > 0 && r.Time > rows[i-1].Time {
			t.Error("report not sorted by time")
		}
	}
	if totalPct < 99 || totalPct > 101 {
		t.Errorf("percentages sum to %.1f", totalPct)
	}
}

func TestBatchNormGraphCompiles(t *testing.T) {
	dev := gpu.T4()
	b := relay.NewBuilder()
	x := b.Input("data", tensor.FP16, 2, 8, 8, 8)
	w := b.Weight("w", 8, 3, 3, 8)
	c := b.Conv2D(x, w, 1, 1)
	ones := []float32{1, 1, 1, 1, 1, 1, 1, 1}
	zeros := make([]float32, 8)
	ga := b.Constant("g", tensor.FromData(tensor.FP32, append([]float32{}, ones...), 8))
	be := b.Constant("b", tensor.FromData(tensor.FP32, zeros, 8))
	me := b.Constant("m", tensor.FromData(tensor.FP32, append([]float32{}, zeros...), 8))
	va := b.Constant("v", tensor.FromData(tensor.FP32, append([]float32{}, ones...), 8))
	c = b.BatchNorm(c, ga, be, me, va, 1e-5)
	g := b.Build(b.Activation(c, cutlass.ActReLU))

	// Unoptimized: BN executes as its own kernel.
	mRef, err := Compile(g, dev, Options{Tuner: TunerAnsor, AnsorTuner: ansor.NewTuner(dev, nil, 9), AnsorTrials: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 2, 8, 8, 8)
	in.FillRandom(9, 1)
	refOut := mRef.Run(map[string]*tensor.Tensor{"data": in})

	// Optimized: BN folds away.
	g2 := smallBNGraph()
	mOpt := boltCompile(t, g2, dev)
	optOut := mOpt.Run(map[string]*tensor.Tensor{"data": in})
	if !tensor.AllClose(optOut, refOut, 5e-2, 1e-2) {
		t.Errorf("BN folding changed numerics: %g", tensor.MaxAbsDiff(optOut, refOut))
	}
}

// smallBNGraph rebuilds the same graph (builders are single-use).
func smallBNGraph() *relay.Graph {
	b := relay.NewBuilder()
	x := b.Input("data", tensor.FP16, 2, 8, 8, 8)
	w := b.Weight("w", 8, 3, 3, 8)
	c := b.Conv2D(x, w, 1, 1)
	ones := []float32{1, 1, 1, 1, 1, 1, 1, 1}
	zeros := make([]float32, 8)
	ga := b.Constant("g", tensor.FromData(tensor.FP32, append([]float32{}, ones...), 8))
	be := b.Constant("b", tensor.FromData(tensor.FP32, zeros, 8))
	me := b.Constant("m", tensor.FromData(tensor.FP32, append([]float32{}, zeros...), 8))
	va := b.Constant("v", tensor.FromData(tensor.FP32, append([]float32{}, ones...), 8))
	c = b.BatchNorm(c, ga, be, me, va, 1e-5)
	return b.Build(b.Activation(c, cutlass.ActReLU))
}

func TestUnalignedConvGetsPadded(t *testing.T) {
	dev := gpu.T4()
	b := relay.NewBuilder()
	x := b.Input("data", tensor.FP16, 4, 46, 10, 13) // IC=46 unaligned
	c := b.Conv2D(x, b.Weight("w", 32, 3, 3, 46), 1, 1)
	g := b.Build(c)
	m := boltCompile(t, g, dev)
	foundPad := false
	for i := range m.Kernels {
		n := m.Kernels[i].Node
		if n.Op == relay.OpPadChannels {
			foundPad = true
			if m.Kernels[i].Launches != 1 {
				t.Error("pad kernel must cost a launch (Table 3 overhead)")
			}
		}
		if n.Op == relay.OpConv2D && n.Conv.IC != 48 {
			t.Errorf("conv IC %d, want padded 48", n.Conv.IC)
		}
	}
	if !foundPad {
		t.Error("no pad kernel for unaligned conv")
	}
	// Functional check: padded pipeline equals direct computation.
	in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 4, 46, 10, 13)
	in.FillRandom(10, 1)
	out := m.Run(map[string]*tensor.Tensor{"data": in})
	if !out.Shape().Equal(tensor.Shape{4, 32, 10, 13}) {
		t.Errorf("padded conv output shape %v", out.Shape())
	}
}

// newTestTuner builds a small deterministic baseline tuner.
func newTestTuner(dev *gpu.Device) *ansor.Tuner { return ansor.NewTuner(dev, nil, 17) }

func TestCompileErrorPaths(t *testing.T) {
	dev := gpu.T4()
	// A graph with an op no backend implements (constructed directly).
	bad := &relay.Node{ID: 0, Op: relay.OpKind(999), Shape: tensor.Shape{1}, DType: tensor.FP16}
	g := &relay.Graph{Nodes: []*relay.Node{bad}, Output: bad}
	p := profiler.New(dev, nil)
	if _, err := Compile(g, dev, Options{Tuner: TunerBolt, Profiler: p}); err == nil {
		t.Error("unsupported op must fail compilation")
	}
	// An invalid graph (dangling input) must be rejected up front.
	orphan := &relay.Node{ID: 1, Op: relay.OpInput, Name: "x", Shape: tensor.Shape{1}, DType: tensor.FP16}
	use := &relay.Node{ID: 2, Op: relay.OpActivation, Inputs: []*relay.Node{orphan}, Shape: tensor.Shape{1}, DType: tensor.FP16}
	g2 := &relay.Graph{Nodes: []*relay.Node{use}, Output: use} // orphan missing from Nodes
	if _, err := Compile(g2, dev, Options{Tuner: TunerBolt, Profiler: p}); err == nil {
		t.Error("topologically invalid graph must fail compilation")
	}
}

func TestSliceChannelsExecution(t *testing.T) {
	// OC padding inserts a folded slice; the executed pipeline must
	// produce the logical (unpadded) channel count.
	dev := gpu.T4()
	b := relay.NewBuilder()
	x := b.Input("data", tensor.FP16, 2, 16, 6, 6)
	c := b.Conv2D(x, b.Weight("w", 30, 3, 3, 16), 1, 1) // OC=30 -> padded to 32 + slice
	g := b.Build(c)
	m := boltCompile(t, g, dev)
	in := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNCHW, 2, 16, 6, 6)
	in.FillRandom(3, 1)
	out := m.Run(map[string]*tensor.Tensor{"data": in})
	if !out.Shape().Equal(tensor.Shape{2, 30, 6, 6}) {
		t.Fatalf("output shape %v, want logical OC=30", out.Shape())
	}
}
