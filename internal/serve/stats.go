package serve

import (
	"sort"

	"bolt/internal/obs"
)

// Priority classifies a request for the scheduler. Priorities shape
// *when* a request is batched, never *whether* it is served: the
// weighted round-robin across tenants guarantees every deployed model
// makes progress regardless of the priority mix.
type Priority int

const (
	// PriorityNormal (the zero value, so it is the default) dispatches
	// when a full bucket is available or after the tenant's batch
	// window.
	PriorityNormal Priority = iota
	// PriorityHigh is latency-sensitive: its presence preempts the
	// batch window — the tenant dispatches immediately with whatever is
	// pending, high-priority requests first.
	PriorityHigh
	// PriorityBulk is throughput-oriented: it waits for a full largest
	// bucket, holding out bulkWindowFactor times the batch window (or
	// InferOptions.MaxWait) before dispatching underfull.
	PriorityBulk

	numPriorities = 3
)

// priorityOrder is the order requests are drained into a batch within
// one tenant: latency-sensitive first, bulk last.
var priorityOrder = [numPriorities]Priority{PriorityHigh, PriorityNormal, PriorityBulk}

// Priorities lists every priority in dispatch order (for stats
// iteration).
func Priorities() []Priority { return priorityOrder[:] }

func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityBulk:
		return "bulk"
	}
	return "invalid"
}

// DeviceStats is one worker's share of the served work: which device
// it models, how much simulated time it spent executing, and how many
// batches it ran. Batches sum to the aggregate Stats.Batches and
// UtilizationShare to 1 (once any work ran), so per-device accounting
// is exact against the aggregate.
type DeviceStats struct {
	// Worker is the executor index.
	Worker int
	// Device names the worker's device ("" for homogeneous legacy
	// streams configured via ServerOptions.Workers).
	Device string
	// Batches counts batches dispatched to this worker.
	Batches int64
	// FailedBatches counts this worker's batches answered with an error
	// (compile failures, execution errors, injected faults). Sums to the
	// aggregate Stats.FailedBatches.
	FailedBatches int64
	// PaddedBatches counts this worker's batches that ran on a bucket
	// larger than their real row count (zero-padded rows filled the
	// rest). Sums to the aggregate Stats.PaddedBatches.
	PaddedBatches int64
	// BusySeconds is the simulated time this worker spent executing
	// (the sum of its batches' modeled costs).
	BusySeconds float64
	// SimMakespan is this worker's simulated clock: when its last batch
	// finished.
	SimMakespan float64
	// UtilizationShare is this worker's BusySeconds over the pool's
	// total busy time — on a well-balanced heterogeneous pool it tracks
	// the devices' modeled speed ratio.
	UtilizationShare float64
}

// Stats is a snapshot of serving counters — per model (ModelStats) or
// aggregated across every model a server has ever deployed (Stats).
type Stats struct {
	Requests int64
	Batches  int64
	// Evictions counts compiled variants dropped by the per-tenant LRU
	// budget (DeployOptions.MaxVariantBytes).
	Evictions int64
	// FailedBatches counts batches answered with an error — compile
	// failures, execution errors, or faults injected through
	// ServerOptions.Fault. Every request in a failed batch received the
	// batch's error.
	FailedBatches int64
	// BacklogSeconds is the modeled EFT backlog at snapshot time —
	// simulated seconds of accepted-but-unfinished work (see
	// Server.BacklogSeconds). Aggregate snapshots only; 0 on per-model
	// snapshots.
	BacklogSeconds float64
	// PaddedBatches counts batches that ran on a bucket larger than
	// their real row count (DeployOptions.AllowPadding dispatches).
	PaddedBatches int64
	// PaddedRows counts the zero-padding rows across those batches —
	// the modeled compute spent buying earlier schedule slots.
	PaddedRows int64
	// BatchSizes histograms dispatched batch sizes (padded batches count
	// under the bucket they ran on, not their real row count).
	BatchSizes map[int]int64
	// Variants lists the bucket sizes with a live compiled variant on
	// at least one device class (evicted variants drop out until
	// recompiled).
	Variants []int
	// Devices holds the per-worker device rows (aggregate snapshots
	// only; nil on per-model snapshots, since workers are shared).
	Devices []DeviceStats
	// SimMakespan is the modeled wall time to drain everything served
	// so far: for a model snapshot, the simulated clock when its last
	// batch finished; for the aggregate, the largest worker clock.
	SimMakespan float64
	// Latencies holds recent requests' SimLatency values, unordered:
	// for a model snapshot, its last latencyWindow completions; for the
	// aggregate, each model's window concatenated (so the total is
	// bounded by models x latencyWindow, and every tenant's recent
	// traffic is represented regardless of its request rate). Either
	// way a long-running server's stats stay O(1) in lifetime traffic.
	Latencies []float64
	// PriorityLatencies holds the same bounded windows split by request
	// priority (for per-priority percentiles).
	PriorityLatencies map[Priority][]float64
	// Stages is the per-priority stage-latency breakdown (only
	// priorities that served traffic appear). Unlike the bounded
	// latency windows above, the breakdown accumulates over the
	// server's whole lifetime, backed by the same histograms
	// Server.Snapshot exposes.
	Stages map[Priority]StageBreakdown
}

// latencyWindow bounds the retained per-request latency samples (per
// model and per priority class).
const latencyWindow = 4096

// Stage indices of the per-request latency decomposition. Every
// successful request's end-to-end latency splits into exactly these
// four stages (see splitStages): the wait for its batch to form, the
// wait for a worker, the batch execution (including injected stalls),
// and delivery (instantaneous on the sim clock — results are handed
// back the moment the batch finishes).
const (
	stageFormation = iota
	stageQueue
	stageExecute
	stageDeliver
	numStages
)

// stageNames label the stages in Snapshot expositions and trace spans.
var stageNames = [numStages]string{"formation_wait", "queue_wait", "execute", "deliver"}

// StageBreakdown is one priority class's accumulated stage-latency
// decomposition. Each successful request contributes stage durations
// that sum bit-exactly to its SimLatency (FormationWait + QueueWait +
// Execute + Deliver == SimLatency per request, in that evaluation
// order); the accumulated sums here equal the accumulated Latency up
// to float summation order across requests.
type StageBreakdown struct {
	// Count is the number of successful requests observed.
	Count int64
	// FormationWait is the summed simulated time requests spent waiting
	// for their batch to finish forming (batch arrival − request
	// arrival).
	FormationWait float64
	// QueueWait is the summed simulated time formed batches waited for
	// their worker (execution start − batch arrival).
	QueueWait float64
	// Execute is the summed simulated execution time, including
	// injected stalls.
	Execute float64
	// Deliver is the summed delivery time (0 on the sim clock).
	Deliver float64
	// Latency is the summed end-to-end SimLatency of the same requests.
	Latency float64
}

// Add folds another breakdown into this one (the fleet layer uses it
// to aggregate replica breakdowns).
func (b *StageBreakdown) Add(o StageBreakdown) {
	b.Count += o.Count
	b.FormationWait += o.FormationWait
	b.QueueWait += o.QueueWait
	b.Execute += o.Execute
	b.Deliver += o.Deliver
	b.Latency += o.Latency
}

// splitStages decomposes one request's end-to-end latency into
// formation / queue / execute stage durations whose float64 sum
// ((f+q)+e) reproduces lat bit-exactly. The raw inputs already sum to
// lat in exact arithmetic (lat = doneAt − arrival, formation = batch
// arrival − arrival, queue = start − batch arrival, execute = doneAt −
// start), but each subtraction rounds independently, so the execute
// term — the largest — absorbs the rounding residue; the loop
// converges in one or two steps and cascades to the other terms only
// in the degenerate all-zero cases.
func splitStages(lat, formation, queue float64) (f, q, e float64) {
	f, q = formation, queue
	if f < 0 {
		f = 0
	}
	if q < 0 {
		q = 0
	}
	e = lat - f - q
	if e < 0 {
		e = 0
	}
	for i := 0; i < 8; i++ {
		s := f + q + e
		if s == lat {
			break
		}
		diff := lat - s
		switch {
		case e+diff >= 0:
			e += diff
		case q+diff >= 0:
			q += diff
		default:
			f += diff
		}
	}
	return f, q, e
}

// Throughput returns served requests per simulated second.
func (s Stats) Throughput() float64 {
	if s.SimMakespan <= 0 {
		return 0
	}
	return float64(s.Requests) / s.SimMakespan
}

// LatencyPercentile returns the p-th percentile (0..100) of request
// latencies, in simulated seconds, by the nearest-rank method
// (ceil(p/100*n)), so small sample windows do not understate the tail.
func (s Stats) LatencyPercentile(p float64) float64 {
	return percentile(s.Latencies, p)
}

// PriorityPercentile is LatencyPercentile restricted to one priority
// class (0 when that class has served no requests).
func (s Stats) PriorityPercentile(pri Priority, p float64) float64 {
	return percentile(s.PriorityLatencies[pri], p)
}

// percentile implements the nearest-rank percentile over an unordered
// sample window by delegating to obs.NearestRank — the exact sample
// quantile. The bench artifacts' p50/p99 fields derive from these
// bounded windows, so this path stays exact; the histogram-backed
// estimates (obs.Histogram.Percentile) serve the unbounded per-stage
// breakdowns in Server.Snapshot, with the two tied together by an
// equivalence test on dense data.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return obs.NearestRank(sorted, p)
}

// latWindow is a bounded ring of latency samples.
type latWindow struct {
	samples []float64
	next    int // overwrite position once samples is full
}

func (w *latWindow) add(v float64) {
	if len(w.samples) < latencyWindow {
		w.samples = append(w.samples, v)
		return
	}
	w.samples[w.next] = v
	w.next = (w.next + 1) % latencyWindow
}

func (w *latWindow) snapshot() []float64 {
	if len(w.samples) == 0 {
		return nil
	}
	return append([]float64(nil), w.samples...)
}
