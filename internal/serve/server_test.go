package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bolt/internal/rt"
)

// TestServerPriorityPreemptsWindow pins the high-priority semantics: a
// tenant with a long batch window holds normal-priority stragglers,
// but the moment a high-priority request lands the pending batch
// dispatches, high first.
func TestServerPriorityPreemptsWindow(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{
		Buckets: []int{1, 2, 4}, BatchWindow: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	n1, err := s.InferAsync("m", sampleInput(1), InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The window is an hour and the bucket is not full: nothing may
	// dispatch yet.
	select {
	case res := <-n1:
		t.Fatalf("normal request dispatched during window: %+v", res)
	case <-time.After(50 * time.Millisecond):
	}
	hi, err := s.InferAsync("m", sampleInput(2), InferOptions{Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	// The high request preempts the window: both go out promptly, in
	// one batch, high first.
	deadline := time.After(2 * time.Second)
	var hiRes, n1Res Result
	select {
	case hiRes = <-hi:
	case <-deadline:
		t.Fatal("high-priority request did not preempt the batch window")
	}
	select {
	case n1Res = <-n1:
	case <-deadline:
		t.Fatal("pending normal request was not coalesced with the high dispatch")
	}
	if hiRes.Err != nil || n1Res.Err != nil {
		t.Fatalf("errors: %v %v", hiRes.Err, n1Res.Err)
	}
	if hiRes.Batch != 2 || n1Res.Batch != 2 {
		t.Errorf("batch sizes %d/%d, want both coalesced into bucket 2", hiRes.Batch, n1Res.Batch)
	}
	if hiRes.Priority != PriorityHigh || n1Res.Priority != PriorityNormal {
		t.Errorf("priorities %v/%v not propagated", hiRes.Priority, n1Res.Priority)
	}
}

// TestServerBulkWaitsForFullBucket pins the bulk semantics: a full
// largest bucket dispatches immediately, while a lone bulk request is
// held until its MaxWait deadline.
func TestServerBulkWaitsForFullBucket(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{
		Buckets: []int{1, 2, 4}, BatchWindow: 250 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	chans := make([]<-chan Result, 4)
	for i := range chans {
		ch, err := s.InferAsync("m", sampleInput(int64(i+1)), InferOptions{Priority: PriorityBulk})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	start := time.Now()
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Batch != 4 {
			t.Errorf("bulk request %d ran in bucket %d, want the full bucket 4", i, res.Batch)
		}
	}
	// A full bucket must not have waited out the bulk window
	// (bulkWindowFactor * 250ms = 1s).
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Errorf("full bulk bucket waited %v before dispatch", waited)
	}

	// A lone bulk request dispatches underfull once MaxWait passes.
	lone, err := s.InferAsync("m", sampleInput(9), InferOptions{
		Priority: PriorityBulk, MaxWait: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-lone:
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Batch != 1 {
			t.Errorf("lone bulk request ran in bucket %d, want 1", res.Batch)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("lone bulk request with MaxWait was never dispatched")
	}
}

// TestPickWRRProportionalShare pins the smooth weighted round-robin:
// with weights 2:1 the picks interleave proportionally (no starvation,
// no bursts) and are deterministic.
func TestPickWRRProportionalShare(t *testing.T) {
	a := &tenant{name: "a", order: 0, weight: 2}
	b := &tenant{name: "b", order: 1, weight: 1}
	var picks []string
	for i := 0; i < 6; i++ {
		picks = append(picks, pickWRR([]*tenant{a, b}).name)
	}
	got := strings.Join(picks, "")
	if got != "abaaba" {
		t.Errorf("pick sequence %q, want abaaba (smooth 2:1 interleave)", got)
	}
	// Under contention with equal weights the picks alternate strictly.
	c := &tenant{name: "c", order: 0, weight: 1}
	d := &tenant{name: "d", order: 1, weight: 1}
	picks = picks[:0]
	for i := 0; i < 4; i++ {
		picks = append(picks, pickWRR([]*tenant{c, d}).name)
	}
	if got := strings.Join(picks, ""); got != "cdcd" {
		t.Errorf("equal-weight sequence %q, want cdcd", got)
	}
}

// TestServerWeightedShareUnderContention floods two equal-cost tenants
// with very different weights and checks the heavier tenant finishes
// (its last batch completes) no later than the lighter one on the
// simulated clocks — the scheduler favors it while both contend.
func TestServerWeightedShareUnderContention(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("heavy", fakeVariant, DeployOptions{Buckets: []int{1, 2}, Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy("light", fakeVariant, DeployOptions{Buckets: []int{1, 2}, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	const per = 8
	var chans []<-chan Result
	for i := 0; i < per; i++ {
		for _, m := range []string{"heavy", "light"} {
			ch, err := s.InferAsync(m, sampleInput(int64(i+1)), InferOptions{})
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	hs, _ := s.ModelStats("heavy")
	ls, _ := s.ModelStats("light")
	if hs.Requests != per || ls.Requests != per {
		t.Fatalf("requests %d/%d, want %d each", hs.Requests, ls.Requests, per)
	}
	if hs.SimMakespan <= 0 || ls.SimMakespan <= 0 {
		t.Fatal("no simulated time accounted")
	}
	if hs.SimMakespan > ls.SimMakespan {
		t.Errorf("weight-3 tenant finished at %g, after weight-1 tenant at %g",
			hs.SimMakespan, ls.SimMakespan)
	}
}

// TestServerUndeploy pins the lifecycle: queued requests of an
// undeployed model are answered with ErrNotDeployed, new requests are
// rejected, other tenants are unaffected, and the aggregate stats keep
// the retired tenant's traffic.
func TestServerUndeploy(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	for _, m := range []string{"keep", "drop"} {
		if err := s.Deploy(m, fakeVariant, DeployOptions{
			Buckets: []int{1, 4}, BatchWindow: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Serve one request on "drop" so it has traffic to retire.
	if _, err := s.Infer("drop", sampleInput(1), InferOptions{Priority: PriorityHigh}); err != nil {
		t.Fatal(err)
	}
	// Queue a normal request that will still be waiting out its window
	// when the model goes away.
	pending, err := s.InferAsync("drop", sampleInput(2), InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let it reach the tenant queue
	if err := s.Undeploy("drop"); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-pending:
		if !errors.Is(res.Err, ErrNotDeployed) {
			t.Errorf("queued request got %v, want ErrNotDeployed", res.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request was not drained on Undeploy")
	}
	if _, err := s.InferAsync("drop", sampleInput(3), InferOptions{}); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("Infer on undeployed model = %v, want ErrNotDeployed", err)
	}
	if err := s.Undeploy("drop"); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("double Undeploy = %v, want ErrNotDeployed", err)
	}
	if got := s.Models(); len(got) != 1 || got[0] != "keep" {
		t.Errorf("Models() = %v, want [keep]", got)
	}
	if _, err := s.Infer("keep", sampleInput(4), InferOptions{Priority: PriorityHigh}); err != nil {
		t.Errorf("surviving tenant broken after Undeploy: %v", err)
	}
	agg := s.Stats()
	// 2 drop requests (one served, one drained) + 1 keep request.
	if agg.Requests != 3 {
		t.Errorf("aggregate requests %d, want 3 (undeployed traffic stays counted)", agg.Requests)
	}
	if _, ok := s.ModelStats("drop"); ok {
		t.Error("ModelStats must not resolve an undeployed model")
	}
}

// TestServerWarmConcurrentJoinedErrors pins the Warm satellite: the
// requested variants compile concurrently through the CompileJobs-wide
// pool, and the error names every failed bucket.
func TestServerWarmConcurrentJoinedErrors(t *testing.T) {
	boom := errors.New("compile exploded")
	var active, peak atomic.Int32
	s := NewServer(ServerOptions{Workers: 1, CompileJobs: 4})
	defer s.Close()
	err := s.Deploy("m", func(batch int) (*rt.Module, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
		active.Add(-1)
		if batch == 3 || batch == 5 {
			return nil, boom
		}
		return fakeVariant(batch)
	}, DeployOptions{Buckets: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	werr := s.Warm("m", 1, 2, 3, 5)
	if werr == nil {
		t.Fatal("Warm over failing buckets returned nil")
	}
	if !errors.Is(werr, boom) {
		t.Errorf("joined error lost the cause: %v", werr)
	}
	for _, frag := range []string{"bucket 3", "bucket 5"} {
		if !strings.Contains(werr.Error(), frag) {
			t.Errorf("joined error %q does not name %q", werr, frag)
		}
	}
	if strings.Contains(werr.Error(), "bucket 1") || strings.Contains(werr.Error(), "bucket 2") {
		t.Errorf("joined error blames a healthy bucket: %v", werr)
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("peak concurrent compiles %d, want >= 2 (CompileJobs-wide pool)", p)
	}
	if err := s.Warm("m", 7); !errors.Is(err, ErrNotDeployed) && err != nil {
		// Bucket 7 compiles fine; only unknown models error.
		t.Errorf("Warm on extra bucket: %v", err)
	}
	if err := s.Warm("ghost"); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("Warm on unknown model = %v, want ErrNotDeployed", err)
	}
}

// TestTakeBatchExpiredFirst pins the MaxWait promise in batch
// composition: requests whose deadline has passed are drained before
// fresher, higher-priority arrivals, so a sustained stream of
// high/normal traffic cannot bypass an expired bulk request
// indefinitely. Within each pass, priority-then-FIFO order holds.
func TestTakeBatchExpiredFirst(t *testing.T) {
	now := time.Now()
	fresh, expired := now.Add(time.Hour), now.Add(-time.Millisecond)
	mk := func(pri Priority, d time.Time) *request {
		return &request{priority: pri, deadline: d}
	}
	h1 := mk(PriorityHigh, fresh)
	n1, n2 := mk(PriorityNormal, expired), mk(PriorityNormal, fresh)
	b1 := mk(PriorityBulk, expired)
	tn := &tenant{}
	tn.queues[PriorityHigh] = []*request{h1}
	tn.queues[PriorityNormal] = []*request{n1, n2}
	tn.queues[PriorityBulk] = []*request{b1}

	got := takeBatch(tn, 3, now)
	want := []*request{n1, b1, h1} // expired (priority order) first, then fresh high
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		order := func(rs []*request) (s string) {
			for _, r := range rs {
				s += r.priority.String() + " "
			}
			return
		}
		t.Fatalf("takeBatch order %v, want expired-normal expired-bulk fresh-high (got %v)",
			order(got), order(want))
	}
	if len(tn.queues[PriorityNormal]) != 1 || tn.queues[PriorityNormal][0] != n2 {
		t.Errorf("fresh normal request should remain queued: %v", tn.queues[PriorityNormal])
	}
	if len(tn.queues[PriorityHigh]) != 0 || len(tn.queues[PriorityBulk]) != 0 {
		t.Error("drained queues must be empty")
	}
}

// TestServerQueueDepthBackpressure pins the QueueDepth contract: the
// scheduler absorbs at most QueueDepth requests into its queues, the
// channel behind it holds QueueDepth more, and further producers
// block — then Close flushes everyone.
func TestServerQueueDepthBackpressure(t *testing.T) {
	const depth = 2
	s := NewServer(ServerOptions{Workers: 1, QueueDepth: depth})
	if err := s.Deploy("m", fakeVariant, DeployOptions{
		Buckets: []int{1, 8}, BatchWindow: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	// 2*depth bulk requests park without dispatching (hour-long hold);
	// these sends must not block.
	for i := 0; i < 2*depth; i++ {
		if _, err := s.InferAsync("m", sampleInput(int64(i)), InferOptions{Priority: PriorityBulk}); err != nil {
			t.Fatal(err)
		}
	}
	// The next producer must feel backpressure.
	blocked := make(chan error, 1)
	go func() {
		_, err := s.Infer("m", sampleInput(99), InferOptions{Priority: PriorityBulk})
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("request beyond 2x QueueDepth did not block (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	s.Close() // flushes the backlog and unblocks the producer
	select {
	case err := <-blocked:
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("blocked producer got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked producer never released after Close")
	}
}

// TestServerDuplicateDeploy pins name uniqueness and the nil-compile
// guard.
func TestServerDuplicateDeploy(t *testing.T) {
	s := NewServer(ServerOptions{})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy("m", fakeVariant, DeployOptions{}); err == nil {
		t.Error("duplicate Deploy must error")
	}
	if err := s.Deploy("n", nil, DeployOptions{}); err == nil {
		t.Error("nil compile must error")
	}
	if _, err := s.InferAsync("m", sampleInput(1), InferOptions{Priority: Priority(42)}); err == nil {
		t.Error("out-of-range priority must error")
	}
}

// TestServerCloseRejectsAndFlushes pins Close across tenants: batch
// windows are cut short, every accepted request is answered, and
// post-Close calls fail with ErrClosed.
func TestServerCloseRejectsAndFlushes(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 2})
	if err := s.Deploy("m", fakeVariant, DeployOptions{
		Buckets: []int{1, 8}, BatchWindow: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	// Three bulk requests parked behind an hour-long window...
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Infer("m", sampleInput(int64(i)), InferOptions{Priority: PriorityBulk}); err != nil {
				t.Errorf("parked request: %v", err)
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	// ...must all be flushed and answered by Close, promptly.
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not flush parked requests")
	}
	wg.Wait()
	s.Close() // idempotent
	if _, err := s.Infer("m", sampleInput(9), InferOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Infer after Close = %v, want ErrClosed", err)
	}
	if err := s.Deploy("late", fakeVariant, DeployOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Deploy after Close = %v, want ErrClosed", err)
	}
	if err := s.Warm("m"); !errors.Is(err, ErrClosed) {
		t.Errorf("Warm after Close = %v, want ErrClosed", err)
	}
}

// TestNormalizeBucketsEdgeCases is the satellite coverage for
// Options.normalized / normalizeBuckets: dedup, the implied bucket 1,
// dropped non-positive buckets, and defaults.
func TestNormalizeBucketsEdgeCases(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, "[1 2 4 8]"},                  // default set
		{[]int{}, "[1 2 4 8]"},              // empty means default too
		{[]int{8, 4, 8, 0, -3}, "[1 4 8]"},  // dedup + implied 1 + dropped <= 0
		{[]int{0, -1, -100}, "[1]"},         // everything invalid leaves bucket 1
		{[]int{1, 1, 1}, "[1]"},             // explicit 1 does not duplicate
		{[]int{16}, "[1 16]"},               // bucket 1 implied below any set
		{[]int{3, 2, 5, 2, 3}, "[1 2 3 5]"}, // sorted and deduped
	}
	for _, c := range cases {
		got := fmt.Sprint(normalizeBuckets(c.in))
		if got != c.want {
			t.Errorf("normalizeBuckets(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	o := Options{Buckets: []int{4, 4, -2}, Workers: -3, QueueDepth: 0}.normalized()
	if fmt.Sprint(o.Buckets) != "[1 4]" || o.Workers != 1 || o.QueueDepth != 1024 {
		t.Errorf("Options.normalized defaults wrong: %+v", o)
	}
	so := ServerOptions{Workers: 0, QueueDepth: -1, CompileJobs: 0}.normalized()
	if so.Workers != 1 || so.QueueDepth != 1024 || so.CompileJobs != 1 {
		t.Errorf("ServerOptions.normalized defaults wrong: %+v", so)
	}
}

// TestLatencyPercentileEdgeCases is the satellite coverage for the
// percentile math: empty window, p=0, p=100, and a single sample.
func TestLatencyPercentileEdgeCases(t *testing.T) {
	empty := Stats{}
	if got := empty.LatencyPercentile(50); got != 0 {
		t.Errorf("empty window p50 = %g, want 0", got)
	}
	if got := empty.PriorityPercentile(PriorityHigh, 99); got != 0 {
		t.Errorf("empty priority window p99 = %g, want 0", got)
	}
	single := Stats{Latencies: []float64{7.5}}
	for _, p := range []float64{0, 50, 100} {
		if got := single.LatencyPercentile(p); got != 7.5 {
			t.Errorf("single sample p%g = %g, want 7.5", p, got)
		}
	}
	s := Stats{
		Latencies: []float64{4, 1, 3, 2}, // unordered on purpose
		PriorityLatencies: map[Priority][]float64{
			PriorityBulk: {30, 10, 20},
		},
	}
	if got := s.LatencyPercentile(0); got != 1 {
		t.Errorf("p0 = %g, want the minimum 1", got)
	}
	if got := s.LatencyPercentile(100); got != 4 {
		t.Errorf("p100 = %g, want the maximum 4", got)
	}
	if got := s.LatencyPercentile(50); got != 2 {
		t.Errorf("p50 = %g, want nearest-rank 2", got)
	}
	if got := s.LatencyPercentile(-5); got != 1 {
		t.Errorf("p<0 = %g, want clamped to minimum 1", got)
	}
	if got := s.LatencyPercentile(250); got != 4 {
		t.Errorf("p>100 = %g, want clamped to maximum 4", got)
	}
	if got := s.PriorityPercentile(PriorityBulk, 100); got != 30 {
		t.Errorf("bulk p100 = %g, want 30", got)
	}
	if got := s.PriorityPercentile(PriorityHigh, 50); got != 0 {
		t.Errorf("missing priority window p50 = %g, want 0", got)
	}
}
