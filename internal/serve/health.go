package serve

import (
	"math"
	"time"
)

// This file is the server's health surface for the fleet layer above
// it: a cheap modeled-backlog probe (what a router needs to pick the
// least-loaded replica without reaching into the scheduler) and a
// fault hook (what a failure injector needs to kill or stall one
// worker mid-stream without the server growing chaos logic of its
// own).

// BatchFault is one fault decision for one dispatched batch, returned
// by ServerOptions.Fault. The zero value is healthy: the batch runs
// normally.
type BatchFault struct {
	// Err, when non-nil, fails the batch: execution is skipped and
	// every request in it is answered with this error (counted in
	// Stats.FailedBatches). The batch's modeled cost still advances the
	// worker's clock — a dead device stream was scheduled and must stay
	// accounted, or the EFT model would bias every later placement.
	Err error
	// StallSimSeconds, when > 0, advances the worker's simulated clock
	// by that much on top of the batch cost — a modeled device stall
	// (preemption, thermal throttle, a hung kernel) that inflates this
	// batch's latency and every later batch's start on this worker.
	StallSimSeconds float64
	// StallHostDelay, when > 0, blocks the worker goroutine for that
	// host duration before the batch runs — the wall-clock face of the
	// stall, which is what hedged requests race against.
	StallHostDelay time.Duration
}

// FaultHook is consulted once per dispatched batch with the executing
// worker's index, before the batch runs. It is called from worker
// goroutines concurrently, so implementations must be safe for
// concurrent use. A nil hook (the default) means no faults.
type FaultHook func(worker int) BatchFault

// BacklogSeconds is the modeled EFT backlog of this server: the
// simulated seconds of work that is accepted but not yet finished.
// It is the sum of
//
//   - in-flight work: per worker, the scheduler's committed finish
//     time minus the worker's execution clock (the batches dispatched
//     but not yet retired — exactly the gap the pool's finish-time
//     model maintains), and
//   - queued work: per tenant, the modeled cost of draining its
//     accepted rows as a greedy chain of exact buckets, priced with
//     the same memoized per-class costs EFT dispatch uses (unpriced
//     buckets — cold tenants whose pricing compiles are still in
//     flight — contribute zero rather than blocking the probe).
//
// The probe is cheap (O(workers + queued rows), one lock) and is what
// a fleet router uses to place each request on the least-loaded
// replica; Stats carries the same value as Stats.BacklogSeconds.
func (s *Server) BacklogSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backlogLocked()
}

// backlogLocked computes the modeled backlog (caller holds s.mu).
func (s *Server) backlogLocked() float64 {
	b := 0.0
	for w, f := range s.schedModel {
		if d := f - s.clocks[w]; d > 0 {
			b += d
		}
	}
	for _, t := range s.order {
		m := t.accepted
		for m > 0 {
			k := bucketFor(t.buckets, m)
			if c := s.minClassCostLocked(t, k); !math.IsInf(c, 1) {
				b += c
			}
			m -= k
		}
	}
	return b
}
