package serve

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"bolt/internal/obs"
	"bolt/internal/rt"
)

// Tracing validation: span invariants (nesting, exact stage sums),
// byte-identical exports across seeded runs and compile-pool widths,
// and the always-on stage accounting behind Stats.Stages, Result, and
// Snapshot. The traced server uses the gated-compile idiom (see
// Server.Pending): nothing can dispatch until the whole stream is
// queued, so batch composition — and with it the span multiset — is
// deterministic regardless of host scheduling.

// tracedRun floods a gated two-worker server with a fixed request mix
// and returns the tracer plus every delivered result (request order).
func tracedRun(t *testing.T, compileJobs int) (*obs.Tracer, []Result) {
	t.Helper()
	tr := obs.NewTracer()
	s := NewServer(ServerOptions{
		Workers:     2,
		CompileJobs: compileJobs,
		Trace:       tr,
		TraceLabel:  "server",
	})
	defer s.Close()
	gate := make(chan struct{})
	inner := costVariant(func(batch int) int { return batch * (1 << 20) })
	gated := func(batch int) (*rt.Module, error) {
		<-gate
		return inner(batch)
	}
	if err := s.Deploy("m", gated, DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	const n = 12
	pris := [3]Priority{PriorityHigh, PriorityNormal, PriorityBulk}
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		ch, err := s.InferAsync("m", sampleInput(int64(i+1)), InferOptions{
			Priority:   pris[i%3],
			SimArrival: float64(i) * 1e-4,
		})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for s.Pending() < n {
		time.Sleep(200 * time.Microsecond)
	}
	close(gate)
	results := make([]Result, n)
	for i, ch := range chans {
		results[i] = <-ch
		if results[i].Err != nil {
			t.Fatalf("request %d: %v", i, results[i].Err)
		}
	}
	return tr, results
}

// TestTraceExportDeterministic pins the export bytes: two identical
// seeded runs must export byte-identical traces, and so must a run
// with a different compile-pool width — the span multiset depends only
// on modeled costs and simulated arrivals, never on host interleaving.
func TestTraceExportDeterministic(t *testing.T) {
	tr1, _ := tracedRun(t, 1)
	a := tr1.ExportJSON()
	tr2, _ := tracedRun(t, 1)
	if b := tr2.ExportJSON(); !bytes.Equal(a, b) {
		t.Fatalf("trace differs across identical runs:\n%s\nvs\n%s", a, b)
	}
	tr4, _ := tracedRun(t, 4)
	if b := tr4.ExportJSON(); !bytes.Equal(a, b) {
		t.Fatalf("trace differs across CompileJobs 1 vs 4:\n%s\nvs\n%s", a, b)
	}
}

// TestTraceSpanInvariants checks the recorded span tree: no negative
// durations, every request has exactly one root and four stage
// children whose durations sum bit-exactly to the root's, children
// nested inside the root's interval, and the Result decomposition
// matching the span tree.
func TestTraceSpanInvariants(t *testing.T) {
	tr, results := tracedRun(t, 2)
	for _, sp := range tr.Spans() {
		if sp.Start < 0 || sp.Dur < 0 {
			t.Fatalf("span %q has negative start/dur: %v/%v", sp.Name, sp.Start, sp.Dur)
		}
	}
	roots := tr.ByKind(obs.KindRequest)
	if len(roots) != len(results) {
		t.Fatalf("%d request spans, want %d", len(roots), len(results))
	}
	for _, root := range roots {
		kids := tr.ByRequest(root.Proc, root.Req)
		stages := make(map[string]obs.Span)
		var sum float64
		for _, k := range kids {
			if k.Name == obs.KindRequest {
				continue
			}
			stages[k.Name] = k
			sum += k.Dur
			if k.Start < root.Start || k.Start+k.Dur > root.Start+root.Dur+1e-12 {
				t.Fatalf("req %d: child %q [%g,%g] outside root [%g,%g]",
					root.Req, k.Name, k.Start, k.Start+k.Dur, root.Start, root.Start+root.Dur)
			}
		}
		for _, want := range []string{obs.KindEnqueue, obs.KindDispatch, obs.KindExecute, obs.KindDeliver} {
			if _, ok := stages[want]; !ok {
				t.Fatalf("req %d: missing %q child (have %d children)", root.Req, want, len(stages))
			}
		}
		if len(stages) != 4 {
			t.Fatalf("req %d: %d stage children, want 4", root.Req, len(stages))
		}
		if sum != root.Dur {
			t.Fatalf("req %d: stage durations sum %v != root dur %v", root.Req, sum, root.Dur)
		}
	}
	for i, res := range results {
		if got := res.QueueWait + res.ExecuteSeconds; got != res.SimLatency {
			t.Fatalf("request %d: QueueWait+ExecuteSeconds = %v != SimLatency %v", i, got, res.SimLatency)
		}
		if res.QueueWait < 0 || res.ExecuteSeconds < 0 {
			t.Fatalf("request %d: negative breakdown %v/%v", i, res.QueueWait, res.ExecuteSeconds)
		}
	}
}

// TestTraceStageStatsAndSnapshot ties the always-on accounting
// together: Stats.Stages sums must track the summed latencies, and the
// Snapshot exposition must carry the counters and histogram rows.
func TestTraceStageStatsAndSnapshot(t *testing.T) {
	tr, results := tracedRun(t, 2)
	_ = tr
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("m", costVariant(func(b int) int { return b * (1 << 20) }), DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer("m", sampleInput(1), InferOptions{}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	b, ok := st.Stages[PriorityNormal]
	if !ok || b.Count != 1 {
		t.Fatalf("Stages[normal] = %+v, want one request", b)
	}
	stageSum := b.FormationWait + b.QueueWait + b.Execute + b.Deliver
	if diff := math.Abs(stageSum - b.Latency); diff > 1e-12*math.Max(1, math.Abs(b.Latency)) {
		t.Fatalf("stage sums %v != accumulated latency %v", stageSum, b.Latency)
	}
	snap := s.Snapshot()
	for _, want := range []string{
		"requests_total 1",
		"batches_total 1",
		`stage_seconds_bucket{stage="execute",le="+Inf"} 1`,
		`stage_requests_total{priority="normal"} 1`,
		`latency_seconds_count{priority="normal"} 1`,
		"sim_makespan_seconds",
	} {
		if !strings.Contains(snap, want) {
			t.Fatalf("Snapshot missing %q:\n%s", want, snap)
		}
	}
	// The traced run's per-request decompositions accumulate exactly
	// into its Stages rows too.
	var wantLat float64
	for _, res := range results {
		wantLat += res.SimLatency
	}
	if wantLat <= 0 {
		t.Fatal("traced run accounted no latency")
	}
}

// TestTraceDisabledLeavesResultsIdentical pins the off switch: the
// same gated run with and without a tracer must deliver identical
// result accounting — tracing can observe the schedule but never
// perturb it.
func TestTraceDisabledLeavesResultsIdentical(t *testing.T) {
	run := func(trace bool) []Result {
		var tr *obs.Tracer
		if trace {
			tr = obs.NewTracer()
		}
		s := NewServer(ServerOptions{Workers: 2, Trace: tr})
		defer s.Close()
		gate := make(chan struct{})
		inner := costVariant(func(batch int) int { return batch * (1 << 20) })
		gated := func(batch int) (*rt.Module, error) {
			<-gate
			return inner(batch)
		}
		if err := s.Deploy("m", gated, DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
			t.Fatal(err)
		}
		const n = 8
		chans := make([]<-chan Result, n)
		for i := 0; i < n; i++ {
			ch, err := s.InferAsync("m", sampleInput(int64(i+1)), InferOptions{SimArrival: float64(i) * 1e-4})
			if err != nil {
				t.Fatal(err)
			}
			chans[i] = ch
		}
		for s.Pending() < n {
			time.Sleep(200 * time.Microsecond)
		}
		close(gate)
		out := make([]Result, n)
		for i, ch := range chans {
			out[i] = <-ch
		}
		return out
	}
	traced := run(true)
	plain := run(false)
	for i := range traced {
		a, b := traced[i], plain[i]
		if a.SimLatency != b.SimLatency || a.QueueWait != b.QueueWait ||
			a.ExecuteSeconds != b.ExecuteSeconds || a.Batch != b.Batch || a.Worker != b.Worker {
			t.Fatalf("request %d differs with tracing: %+v vs %+v", i, a, b)
		}
	}
}
