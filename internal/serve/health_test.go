package serve

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// costLocked reads the memoized cheapest-class cost for a bucket the
// way the backlog probe prices queued rows.
func costLocked(s *Server, model string, bucket int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.minClassCostLocked(s.tenants[model], bucket)
}

// TestBacklogCountsQueuedRows pins the queued half of the probe
// against the pool's cost model: rows held by a long batch window are
// priced as the greedy exact-bucket chain EFT dispatch would run.
func TestBacklogCountsQueuedRows(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{
		Buckets: []int{1, 2, 4}, BatchWindow: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	if got := s.BacklogSeconds(); got != 0 {
		t.Fatalf("idle backlog %g, want 0", got)
	}
	// Three rows against buckets {1,2,4} with an hour-long window: none
	// dispatch (no full largest bucket), so the probe must price the
	// greedy chain 2+1.
	for i := 0; i < 3; i++ {
		if _, err := s.InferAsync("m", sampleInput(int64(i+1)), InferOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	want := costLocked(s, "m", 2) + costLocked(s, "m", 1)
	if want <= 0 || math.IsInf(want, 1) {
		t.Fatalf("warmed costs unpriced: chain cost %g", want)
	}
	if got := s.BacklogSeconds(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("queued backlog %g, want chain cost %g", got, want)
	}
	if st := s.Stats(); math.Abs(st.BacklogSeconds-want) > 1e-12 {
		t.Fatalf("Stats().BacklogSeconds %g, want %g", st.BacklogSeconds, want)
	}
}

// TestBacklogCountsInFlightWork pins the in-flight half: a dispatched
// batch held on the worker shows up as the scheduler's committed
// finish time minus the execution clock — exactly the batch's modeled
// cost — and drops to zero once it retires.
func TestBacklogCountsInFlightWork(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var gate atomic.Bool
	s := NewServer(ServerOptions{
		Workers: 1,
		Fault: func(worker int) BatchFault {
			if gate.CompareAndSwap(true, false) {
				entered <- struct{}{}
				<-release
			}
			return BatchFault{}
		},
	})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{Buckets: []int{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	gate.Store(true)
	chans := make([]<-chan Result, 4)
	for i := range chans {
		ch, err := s.InferAsync("m", sampleInput(int64(i+1)), InferOptions{})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	<-entered // the full bucket-4 batch is dispatched and held
	want := costLocked(s, "m", 4)
	if got := s.BacklogSeconds(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("in-flight backlog %g, want batch cost %g", got, want)
	}
	close(release)
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if got := s.BacklogSeconds(); got != 0 {
		t.Fatalf("drained backlog %g, want 0", got)
	}
}

// TestFaultHookKillsBatch pins the kill semantics: the injected error
// answers every request in the batch, counts in FailedBatches (both
// aggregate and per-device), and the priced cost still advances the
// worker clock so the EFT model stays honest.
func TestFaultHookKillsBatch(t *testing.T) {
	boom := errors.New("injected device fault")
	var arm atomic.Bool
	s := NewServer(ServerOptions{
		Workers: 1,
		Fault: func(worker int) BatchFault {
			if arm.CompareAndSwap(true, false) {
				return BatchFault{Err: boom}
			}
			return BatchFault{}
		},
	})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{Buckets: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	ch, err := s.InferAsync("m", sampleInput(1), InferOptions{Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if !errors.Is(res.Err, boom) {
		t.Fatalf("result error %v, want the injected fault", res.Err)
	}
	if res.Output != nil {
		t.Fatal("killed batch must not produce output")
	}
	// The healthy path still works after the one-shot fault.
	out, err := s.Infer("m", sampleInput(2), InferOptions{Priority: PriorityHigh})
	if err != nil || out == nil {
		t.Fatalf("post-fault request failed: %v", err)
	}
	st := s.Stats()
	if st.FailedBatches != 1 {
		t.Errorf("FailedBatches %d, want 1", st.FailedBatches)
	}
	if st.Batches != 2 {
		t.Errorf("Batches %d, want 2 (failed batches stay counted)", st.Batches)
	}
	if len(st.Devices) != 1 || st.Devices[0].FailedBatches != 1 {
		t.Errorf("per-device failed batches %+v, want worker 0 at 1", st.Devices)
	}
	if st.SimMakespan <= 0 {
		t.Error("killed batch must still advance the worker clock")
	}
	ms, _ := s.ModelStats("m")
	if ms.FailedBatches != 1 {
		t.Errorf("model FailedBatches %d, want 1", ms.FailedBatches)
	}
}

// TestFaultHookStallDelaysClock pins the stall semantics: the batch
// succeeds but its worker's clock (and the request's SimLatency) is
// late by the stall, while busy seconds — useful work — are untouched.
func TestFaultHookStallDelaysClock(t *testing.T) {
	const stall = 5.0
	var arm atomic.Bool
	s := NewServer(ServerOptions{
		Workers: 1,
		Fault: func(worker int) BatchFault {
			if arm.CompareAndSwap(true, false) {
				return BatchFault{StallSimSeconds: stall}
			}
			return BatchFault{}
		},
	})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{Buckets: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	ch, err := s.InferAsync("m", sampleInput(1), InferOptions{Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.SimLatency < stall {
		t.Errorf("stalled request SimLatency %g, want >= %g", res.SimLatency, stall)
	}
	st := s.Stats()
	if st.FailedBatches != 0 {
		t.Errorf("a stall is not a failure: FailedBatches %d", st.FailedBatches)
	}
	if st.SimMakespan < stall {
		t.Errorf("SimMakespan %g, want >= the %g stall", st.SimMakespan, stall)
	}
	if bs := st.Devices[0].BusySeconds; bs >= stall {
		t.Errorf("BusySeconds %g includes the stall; stalls buy no useful work", bs)
	}
}
