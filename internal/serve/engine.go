// Package serve is Bolt's serving layer: a request queue plus a
// dynamic batcher that coalesces single-sample inference requests into
// batch-bucketed runs over lazily compiled batch variants of one
// source model.
//
// This is the deployment story of the paper's §1/§2.1 motivation:
// dynamic-shape workloads arrive continuously, every new batch size is
// a brand-new workload for the tuner, and Bolt's light-weight profiler
// (plus the persistent tuning log) is what makes compiling a variant
// on demand affordable. The engine leans on the PR-3 runtime split —
// modules are immutable programs, per-run state lives in pooled
// rt.ExecStates — so N workers execute one variant concurrently with
// zero steady-state allocation.
//
// Performance accounting follows the repo's convention: execution is
// functional (real numerics on the host) while time is priced on the
// simulated device. Each worker owns a simulated clock that advances
// by the variant's modeled batch latency, so throughput and latency
// statistics are deterministic and reflect what N device streams would
// deliver, not host scheduling noise.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// CompileVariant compiles the source model at a leading batch
// dimension (relay.Rebatch + the regular compilation pipeline; the
// bolt package wires this to Compile with the tunelog cache).
type CompileVariant func(batch int) (*rt.Module, error)

// ErrClosed is returned by Infer after Close.
var ErrClosed = errors.New("serve: engine closed")

// Options configures an Engine.
type Options struct {
	// Buckets are the allowed batch sizes. The batcher always runs a
	// batch at the largest bucket not exceeding the pending request
	// count, so bucket 1 is implied (and added if absent). Nil means
	// {1, 2, 4, 8}.
	Buckets []int
	// Workers is the number of concurrent executors — the simulated
	// device streams. Values < 1 mean 1.
	Workers int
	// QueueDepth is the pending-request capacity; Infer blocks when the
	// queue is full (backpressure). Values < 1 mean 1024.
	QueueDepth int
	// BatchWindow is how long the batcher holds an underfull batch
	// hoping to fill the largest bucket. Zero means dispatch greedily
	// with whatever is already queued.
	BatchWindow time.Duration
}

func (o Options) normalized() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 1024
	}
	if len(o.Buckets) == 0 {
		o.Buckets = []int{1, 2, 4, 8}
	}
	set := map[int]bool{1: true}
	for _, b := range o.Buckets {
		if b >= 1 {
			set[b] = true
		}
	}
	buckets := make([]int, 0, len(set))
	for b := range set {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	o.Buckets = buckets
	return o
}

// Result is one completed request.
type Result struct {
	// Output is the request's slice of the batch output (leading dim
	// 1), owned by the caller.
	Output *tensor.Tensor
	Err    error
	// Batch is the bucket the request was coalesced into.
	Batch int
	// Worker is the executor (simulated device stream) that ran it.
	Worker int
	// SimLatency is the worker's simulated clock when the batch
	// finished. Under the benchmark's flood model (every request
	// arrives at simulated time zero) this is the request's latency.
	SimLatency float64
}

// Stats is a snapshot of the engine's serving counters.
type Stats struct {
	Requests int64
	Batches  int64
	// BatchSizes histograms dispatched batch sizes.
	BatchSizes map[int]int64
	// Variants lists the bucket sizes compiled so far.
	Variants []int
	// SimMakespan is the largest simulated worker clock: the modeled
	// wall time to drain everything served so far.
	SimMakespan float64
	// Latencies holds recent requests' SimLatency values (a bounded
	// window of the last latencyWindow completions, unordered), so a
	// long-running engine's stats stay O(1) in lifetime traffic.
	Latencies []float64
}

// latencyWindow bounds the retained per-request latency samples.
const latencyWindow = 4096

// Throughput returns served requests per simulated second.
func (s Stats) Throughput() float64 {
	if s.SimMakespan <= 0 {
		return 0
	}
	return float64(s.Requests) / s.SimMakespan
}

// LatencyPercentile returns the p-th percentile (0..100) of request
// latencies, in simulated seconds, by the nearest-rank method
// (ceil(p/100*n)), so small sample windows do not understate the tail.
func (s Stats) LatencyPercentile(p float64) float64 {
	if len(s.Latencies) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Latencies...)
	sort.Float64s(sorted)
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

type request struct {
	inputs map[string]*tensor.Tensor
	resp   chan Result
}

type batchJob struct {
	reqs []*request
}

// variant is one lazily compiled batch-bucketed module.
type variant struct {
	once sync.Once
	mod  *rt.Module
	time float64 // modeled seconds per batch run
	err  error
}

// Engine serves single-sample inference requests over dynamically
// batched, batch-bucketed variants of one compiled model.
type Engine struct {
	compile CompileVariant
	opts    Options

	queue    chan *request
	workerCh []chan batchJob
	done     chan struct{} // dispatcher exited
	wg       sync.WaitGroup
	inflight sync.WaitGroup

	// compileMu serializes variant compilation: concurrent compiles
	// would race on a shared tuning-cache file and oversubscribe the
	// profiling pool.
	compileMu sync.Mutex

	mu       sync.Mutex
	closed   bool
	variants map[int]*variant
	clocks   []float64 // per-worker simulated seconds
	stats    Stats
	latRing  int // next overwrite position once Latencies is full
}

// New starts an engine: one dispatcher plus Options.Workers executor
// goroutines. Variants compile lazily on first use (or eagerly via
// Warm); Close shuts the engine down after draining in-flight work.
func New(compile CompileVariant, opts Options) (*Engine, error) {
	if compile == nil {
		return nil, errors.New("serve: nil compile function")
	}
	opts = opts.normalized()
	e := &Engine{
		compile:  compile,
		opts:     opts,
		queue:    make(chan *request, opts.QueueDepth),
		workerCh: make([]chan batchJob, opts.Workers),
		done:     make(chan struct{}),
		variants: make(map[int]*variant),
		clocks:   make([]float64, opts.Workers),
	}
	e.stats.BatchSizes = make(map[int]int64)
	for i := range e.workerCh {
		e.workerCh[i] = make(chan batchJob, 4)
		e.wg.Add(1)
		go e.worker(i)
	}
	go e.dispatch()
	return e, nil
}

// Infer runs one single-sample request (every input's leading dim must
// be 1) and blocks until its batch completes.
func (e *Engine) Infer(inputs map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	ch, err := e.InferAsync(inputs)
	if err != nil {
		return nil, err
	}
	res := <-ch
	return res.Output, res.Err
}

// InferAsync enqueues one single-sample request and returns the
// channel its Result will be delivered on. The channel is buffered, so
// a caller that abandons it does not wedge a worker.
func (e *Engine) InferAsync(inputs map[string]*tensor.Tensor) (<-chan Result, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.inflight.Add(1)
	e.stats.Requests++
	e.mu.Unlock()
	r := &request{inputs: inputs, resp: make(chan Result, 1)}
	e.queue <- r
	return r.resp, nil
}

// Warm compiles the variants for the given buckets (all configured
// buckets when none are named) before traffic arrives, returning the
// first compile error.
func (e *Engine) Warm(buckets ...int) error {
	if len(buckets) == 0 {
		buckets = e.opts.Buckets
	}
	for _, b := range buckets {
		if v := e.variantFor(b); v.err != nil {
			return v.err
		}
	}
	return nil
}

// Stats returns a snapshot of the serving counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.BatchSizes = make(map[int]int64, len(e.stats.BatchSizes))
	for k, v := range e.stats.BatchSizes {
		s.BatchSizes[k] = v
	}
	s.Variants = make([]int, 0, len(e.variants))
	for b, v := range e.variants {
		if v.mod != nil && v.err == nil {
			s.Variants = append(s.Variants, b)
		}
	}
	sort.Ints(s.Variants)
	s.Latencies = append([]float64(nil), e.stats.Latencies...)
	for _, c := range e.clocks {
		if c > s.SimMakespan {
			s.SimMakespan = c
		}
	}
	return s
}

// Close rejects new requests, waits for every accepted request to be
// answered, and stops the dispatcher and workers. Safe to call more
// than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.inflight.Wait()
	close(e.queue)
	<-e.done
	e.wg.Wait()
}

// bucketFor returns the largest configured bucket not exceeding n
// (bucket 1 always exists).
func (e *Engine) bucketFor(n int) int {
	b := 1
	for _, k := range e.opts.Buckets {
		if k <= n {
			b = k
		}
	}
	return b
}

// dispatch is the batcher: it accumulates queued requests into the
// largest bucket available and hands batches to workers round-robin
// (deterministic load balance across the simulated streams).
func (e *Engine) dispatch() {
	defer func() {
		for _, ch := range e.workerCh {
			close(ch)
		}
		close(e.done)
	}()
	maxB := e.opts.Buckets[len(e.opts.Buckets)-1]
	var backlog []*request
	next := 0
	for {
		if len(backlog) == 0 {
			r, ok := <-e.queue
			if !ok {
				return
			}
			backlog = append(backlog, r)
		}
		backlog = e.fill(backlog, maxB)
		k := e.bucketFor(len(backlog))
		job := batchJob{reqs: append([]*request(nil), backlog[:k]...)}
		backlog = append(backlog[:0], backlog[k:]...)
		e.workerCh[next] <- job
		next = (next + 1) % len(e.workerCh)
	}
}

// fill grows the backlog toward the largest bucket: it always drains
// whatever is already queued, and with a batch window configured it
// waits up to that long for stragglers.
func (e *Engine) fill(backlog []*request, maxB int) []*request {
	if e.opts.BatchWindow > 0 && len(backlog) < maxB {
		timer := time.NewTimer(e.opts.BatchWindow)
		defer timer.Stop()
		for len(backlog) < maxB {
			select {
			case r, ok := <-e.queue:
				if !ok {
					return backlog
				}
				backlog = append(backlog, r)
			case <-timer.C:
				return backlog
			}
		}
		return backlog
	}
	for len(backlog) < maxB {
		select {
		case r, ok := <-e.queue:
			if !ok {
				return backlog
			}
			backlog = append(backlog, r)
		default:
			return backlog
		}
	}
	return backlog
}

func (e *Engine) worker(id int) {
	defer e.wg.Done()
	for job := range e.workerCh[id] {
		e.runBatch(id, job)
	}
}

// variantFor resolves (compiling at most once) the module for a batch
// bucket.
func (e *Engine) variantFor(batch int) *variant {
	e.mu.Lock()
	v := e.variants[batch]
	if v == nil {
		v = &variant{}
		e.variants[batch] = v
	}
	e.mu.Unlock()
	v.once.Do(func() {
		e.compileMu.Lock()
		defer e.compileMu.Unlock()
		mod, err := e.compile(batch)
		var t float64
		if err == nil {
			t = mod.Time()
		}
		// Publish under e.mu so Stats (which iterates variants without
		// going through the Once) is synchronized with this write;
		// post-Do readers are already ordered by the Once itself.
		e.mu.Lock()
		v.mod, v.err, v.time = mod, err, t
		e.mu.Unlock()
	})
	return v
}

// runBatch executes one dispatched batch on worker id and answers its
// requests.
func (e *Engine) runBatch(id int, job batchJob) {
	k := len(job.reqs)
	v := e.variantFor(k)
	var outs []*tensor.Tensor
	err := v.err
	if err == nil {
		outs, err = execBatch(v.mod, job.reqs)
	}
	var doneAt float64
	e.mu.Lock()
	if err == nil {
		e.clocks[id] += v.time
	}
	doneAt = e.clocks[id]
	e.stats.Batches++
	e.stats.BatchSizes[k]++
	for range job.reqs {
		if len(e.stats.Latencies) < latencyWindow {
			e.stats.Latencies = append(e.stats.Latencies, doneAt)
		} else {
			e.stats.Latencies[e.latRing] = doneAt
			e.latRing = (e.latRing + 1) % latencyWindow
		}
	}
	e.mu.Unlock()
	for i, r := range job.reqs {
		res := Result{Err: err, Batch: k, Worker: id, SimLatency: doneAt}
		if err == nil {
			res.Output = outs[i]
		}
		r.resp <- res
		e.inflight.Done()
	}
}

// execBatch stacks the requests' inputs into batch tensors, runs the
// variant on a pooled execution state, and splits the output back into
// per-request tensors. Runtime panics (shape mismatches surface that
// way in this codebase) are converted into request errors rather than
// taking the worker down.
func execBatch(mod *rt.Module, reqs []*request) (outs []*tensor.Tensor, err error) {
	defer func() {
		if p := recover(); p != nil {
			outs, err = nil, fmt.Errorf("serve: batch execution failed: %v", p)
		}
	}()
	batchIn := make(map[string]*tensor.Tensor, len(reqs[0].inputs))
	for name := range reqs[0].inputs {
		if len(reqs) == 1 {
			batchIn[name] = reqs[0].inputs[name]
			continue
		}
		samples := make([]*tensor.Tensor, len(reqs))
		for i, r := range reqs {
			s, ok := r.inputs[name]
			if !ok {
				return nil, fmt.Errorf("serve: request %d in batch is missing input %q", i, name)
			}
			samples[i] = s
		}
		batchIn[name] = tensor.StackBatch(samples)
	}
	outs = make([]*tensor.Tensor, len(reqs))
	if mod.Plan == nil {
		// Hand-built module without a memory plan: clone-based path.
		out := mod.Run(batchIn)
		for i := range reqs {
			outs[i] = tensor.SliceBatch(out, i)
		}
		return outs, nil
	}
	st := mod.AcquireState()
	// Deferred so a recovered execution panic still re-pools the state
	// (ReleaseState drops the aborted run's input references).
	defer mod.ReleaseState(st)
	view := mod.RunOn(st, batchIn)
	for i := range reqs {
		outs[i] = tensor.SliceBatch(view, i)
	}
	return outs, nil
}
