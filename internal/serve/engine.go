// Package serve is Bolt's serving layer: a multi-tenant request
// scheduler plus a dynamic batcher that coalesces single-sample
// inference requests into batch-bucketed runs over lazily compiled
// batch variants of the deployed models.
//
// This is the deployment story of the paper's §1/§2.1 motivation:
// dynamic-shape workloads arrive continuously, every new batch size is
// a brand-new workload for the tuner, and Bolt's light-weight profiler
// (plus the persistent tuning log) is what makes compiling a variant
// on demand affordable. Serving is a multi-tenant infrastructure
// problem, so a Server owns one shared worker pool and schedules many
// models over it: per-model/per-priority FIFO queues, weighted
// round-robin across tenants, and priority-aware batching (a pending
// high-priority request preempts the batch window; bulk requests wait
// for full buckets). The engine leans on the PR-3 runtime split —
// modules are immutable programs, per-run state lives in pooled
// rt.ExecStates — so N workers execute one variant concurrently with
// zero steady-state allocation.
//
// Performance accounting follows the repo's convention: execution is
// functional (real numerics on the host) while time is priced on the
// simulated device. Each worker owns a simulated clock that advances
// by the variant's modeled batch latency, so throughput and latency
// statistics are deterministic and reflect what N device streams would
// deliver, not host scheduling noise.
package serve

import (
	"errors"
	"fmt"
	"time"

	"bolt/internal/gpu"
	"bolt/internal/obs"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// CompileVariant compiles the source model at a leading batch
// dimension (relay.Rebatch + the regular compilation pipeline; the
// bolt package wires this to the tuning pipeline with a shared
// tuning-log cache).
type CompileVariant func(batch int) (*rt.Module, error)

// CompileVariantOn is the heterogeneous-pool form of CompileVariant:
// the server passes the target device class's device (nil for the
// anonymous homogeneous class), so each class executes variants tuned
// for its own silicon. Used with Server.DeployOn.
type CompileVariantOn func(dev *gpu.Device, batch int) (*rt.Module, error)

// ErrClosed is returned by Infer after Close.
var ErrClosed = errors.New("serve: engine closed")

// Options configures a single-model Engine (the pre-multi-tenant
// surface, kept for compatibility; new code should use NewServer).
type Options struct {
	// Buckets are the allowed batch sizes. The batcher always runs a
	// batch at the largest bucket not exceeding the pending request
	// count, so bucket 1 is implied (and added if absent). Nil means
	// {1, 2, 4, 8}.
	Buckets []int
	// Workers is the number of concurrent executors — the simulated
	// device streams. Values < 1 mean 1.
	Workers int
	// QueueDepth is the pending-request capacity; Infer blocks when the
	// queue is full (backpressure). Values < 1 mean 1024.
	QueueDepth int
	// BatchWindow is how long the batcher holds an underfull batch
	// hoping to fill the largest bucket. Zero means dispatch greedily
	// with whatever is already queued.
	BatchWindow time.Duration
	// AllowPadding enables padded-bucket dispatch for the engine's model
	// (see DeployOptions.AllowPadding).
	AllowPadding bool
	// ContinuousBatching replaces the window rule with modeled
	// marginal-gain batch formation (see
	// DeployOptions.ContinuousBatching).
	ContinuousBatching bool
	// Trace, when set, records request-lifecycle spans into the tracer
	// (see ServerOptions.Trace).
	Trace *obs.Tracer
	// TraceLabel names the engine's process in the exported trace
	// (see ServerOptions.TraceLabel).
	TraceLabel string
}

// normalized delegates to the server/deploy normalization so the
// defaults cannot drift between the two surfaces.
func (o Options) normalized() Options {
	so := ServerOptions{Workers: o.Workers, QueueDepth: o.QueueDepth}.normalized()
	o.Workers, o.QueueDepth = so.Workers, so.QueueDepth
	o.Buckets = normalizeBuckets(o.Buckets)
	return o
}

// Result is one completed request.
type Result struct {
	// Output is the request's slice of the batch output (leading dim
	// 1), owned by the caller.
	Output *tensor.Tensor
	Err    error
	// Model names the deployed model that served the request.
	Model string
	// Priority is the request's scheduling class.
	Priority Priority
	// Batch is the bucket the request was coalesced into.
	Batch int
	// Worker is the executor (simulated device stream) that ran it.
	Worker int
	// Device names the worker's device on a heterogeneous pool ("" for
	// the homogeneous legacy streams) — which silicon served this
	// request.
	Device string
	// SimArrival echoes the request's InferOptions.SimArrival.
	SimArrival float64
	// SimLatency is the request's simulated latency: the worker's clock
	// when the batch finished minus the request's simulated arrival.
	// Under the flood model (every request arrives at simulated time
	// zero) this is simply the completion time, matching the
	// pre-arrival-process semantics.
	SimLatency float64
	// QueueWait is the simulated time from the request's arrival to its
	// batch's execution start — batch-formation wait plus worker-queue
	// wait. Set on success only, like SimLatency.
	QueueWait float64
	// ExecuteSeconds is the simulated time the request's batch spent
	// executing (injected stalls included). The decomposition is exact:
	// QueueWait + ExecuteSeconds == SimLatency bit-for-bit, so callers
	// can attribute a request's time without parsing stats.
	ExecuteSeconds float64
}

// EngineModel is the tenant name single-model compatibility wrappers
// (New, bolt.NewEngine) register their one model under.
const EngineModel = "default"

// Engine is the single-model compatibility view over a Server: the
// PR-3 serving surface (Infer/InferAsync/Warm/Stats/Close) bound to
// one deployed model at normal priority.
type Engine struct {
	srv   *Server
	model string
}

// New starts a single-model serving engine: a Server with one deployed
// model. Variants compile lazily on first use (or eagerly via Warm);
// Close shuts the whole server down after draining in-flight work.
func New(compile CompileVariant, opts Options) (*Engine, error) {
	opts = opts.normalized()
	srv := NewServer(ServerOptions{
		Workers:     opts.Workers,
		QueueDepth:  opts.QueueDepth,
		BatchWindow: opts.BatchWindow,
		Trace:       opts.Trace,
		TraceLabel:  opts.TraceLabel,
	})
	if err := srv.Deploy(EngineModel, compile, DeployOptions{
		Buckets:            opts.Buckets,
		AllowPadding:       opts.AllowPadding,
		ContinuousBatching: opts.ContinuousBatching,
	}); err != nil {
		srv.Close()
		return nil, err
	}
	return &Engine{srv: srv, model: EngineModel}, nil
}

// EngineFor returns the single-model Engine view over one deployed
// model (for compatibility wrappers; the Engine shares the server, and
// its Close closes the whole server).
func (s *Server) EngineFor(name string) (*Engine, error) {
	s.mu.Lock()
	_, ok := s.tenants[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: model %q: %w", name, ErrNotDeployed)
	}
	return &Engine{srv: s, model: name}, nil
}

// Server returns the underlying multi-tenant server.
func (e *Engine) Server() *Server { return e.srv }

// Infer runs one single-sample request (every input's leading dim must
// be 1) and blocks until its batch completes.
func (e *Engine) Infer(inputs map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	return e.srv.Infer(e.model, inputs, InferOptions{})
}

// InferAsync enqueues one single-sample request and returns the
// channel its Result will be delivered on.
func (e *Engine) InferAsync(inputs map[string]*tensor.Tensor) (<-chan Result, error) {
	return e.srv.InferAsync(e.model, inputs, InferOptions{})
}

// InferAsyncOpts is InferAsync with explicit InferOptions (e.g. a
// simulated arrival time, so single-model benchmarks can drive the
// engine with a seeded arrival process).
func (e *Engine) InferAsyncOpts(inputs map[string]*tensor.Tensor, opts InferOptions) (<-chan Result, error) {
	return e.srv.InferAsync(e.model, inputs, opts)
}

// Warm compiles the variants for the given buckets (all configured
// buckets when none are named) before traffic arrives, returning a
// joined error naming each failed bucket.
func (e *Engine) Warm(buckets ...int) error {
	return e.srv.Warm(e.model, buckets...)
}

// Stats returns a snapshot of the engine's serving counters.
// SimMakespan is the server-wide largest worker clock, matching the
// pre-multi-tenant behavior.
func (e *Engine) Stats() Stats {
	st, ok := e.srv.ModelStats(e.model)
	if !ok {
		return Stats{}
	}
	st.SimMakespan = e.srv.SimMakespan()
	return st
}

// Close rejects new requests, waits for every accepted request to be
// answered, and stops the underlying server. Safe to call more than
// once.
func (e *Engine) Close() { e.srv.Close() }
