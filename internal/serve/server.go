package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bolt/internal/gpu"
	"bolt/internal/obs"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// ErrNotDeployed is returned by Infer/Warm/Undeploy for a model name
// the server does not (or no longer) serve(s).
var ErrNotDeployed = errors.New("serve: model not deployed")

// bulkWindowFactor is how many batch windows a bulk request holds out
// for a full bucket before it is dispatched underfull (when
// InferOptions.MaxWait does not say otherwise).
const bulkWindowFactor = 4

// ServerOptions configures the resources every deployed model shares:
// the worker pool, the request queue, and the variant-compile pool.
type ServerOptions struct {
	// Workers is the number of concurrent executors — the simulated
	// device streams, shared by all models. Values < 1 mean 1. When
	// Devices is set, Workers is derived from it and this field is
	// ignored (the bolt wrapper rejects setting both).
	Workers int
	// Devices, when non-empty, makes the worker pool heterogeneous: one
	// worker per entry, each modeling that device. Workers that model
	// the same device form one device class and share compiled variants
	// (the tuning-log keys are device-scoped, so different classes'
	// entries coexist in one cache). Dispatch becomes cost-aware
	// earliest-finish-time across the pool instead of round-robin. A
	// nil Devices keeps the homogeneous pre-pool behavior.
	Devices []*gpu.Device
	// QueueDepth is the pending-request capacity across all models:
	// the scheduler stops absorbing arrivals once the queued backlog
	// reaches it, so producers fill the same-sized channel behind it
	// and Infer blocks (backpressure; total buffered requests are
	// bounded by ~2x QueueDepth). Values < 1 mean 1024.
	QueueDepth int
	// BatchWindow is the default batch window for models whose
	// DeployOptions leave it zero: how long the batcher holds an
	// underfull normal-priority batch hoping to fill the largest
	// bucket. Zero means dispatch greedily.
	BatchWindow time.Duration
	// CompileJobs bounds how many variant compiles (lazy or Warm) run
	// concurrently. Values < 1 mean 1.
	CompileJobs int
	// Fault, when set, is consulted before every dispatched batch
	// executes and may fail the batch or stall the worker (see
	// BatchFault). The fleet layer's failure injector plugs in here; a
	// nil hook costs nothing.
	Fault FaultHook
	// OnClose, when set, runs exactly once at the end of Close, after
	// every request is answered and the workers have stopped (the bolt
	// wrapper persists the shared tuning log here, so closing through
	// any view — Server or a compatibility Engine — flushes it).
	OnClose func()
	// Trace, when set, records request-lifecycle spans (plan, compile,
	// dispatch, execute, per-request trees) into the tracer on the
	// simulated clock. Spans never touch the sim clocks or the
	// scheduler's decisions, so a traced run serves bit-identical
	// results and stats to an untraced one. Nil disables span
	// collection entirely; the per-stage latency accounting behind
	// Stats.Stages and Snapshot is always on (it rides the existing
	// stats lock).
	Trace *obs.Tracer
	// TraceLabel names this server's process in the exported trace
	// ("server" when empty). The fleet layer labels each replica here.
	TraceLabel string
}

func (o ServerOptions) normalized() ServerOptions {
	if len(o.Devices) > 0 {
		o.Workers = len(o.Devices)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 1024
	}
	if o.CompileJobs < 1 {
		o.CompileJobs = 1
	}
	return o
}

// DeployOptions configures one model's batching and its share of the
// server.
type DeployOptions struct {
	// Buckets are the allowed batch sizes (bucket 1 is implied and
	// added if absent; non-positive entries are dropped). Nil means
	// {1, 2, 4, 8}.
	Buckets []int
	// Weight is the model's weighted-round-robin share when several
	// models contend for workers. Values < 1 mean 1.
	Weight int
	// BatchWindow overrides ServerOptions.BatchWindow for this model.
	BatchWindow time.Duration
	// MaxVariantBytes bounds the modeled memory (parameters + planned
	// activation arena, per rt.Module.Memory) of this model's compiled
	// variants held per device class. When the budget is exceeded the
	// least-recently-used variants are evicted (Stats.Evictions counts
	// them) and recompile on next use — cheap, since their workloads
	// stay in the shared tuning log and their modeled batch costs stay
	// memoized for dispatch pricing. Zero means unbounded. The budget
	// is per device class because variants multiply by class on a
	// heterogeneous pool. Note that on a multi-class pool the first
	// dispatch of a bucket compiles it on every class to price it, so a
	// budget smaller than a class's working set churns through
	// compile-evict cycles (each cheap — the tuning log makes
	// recompiles measurement-free — but counted in Stats.Evictions).
	MaxVariantBytes int64
	// AllowPadding lets the scheduler run a partial batch on a larger
	// compiled bucket with zero-padded rows whenever the cost model says
	// the padded run completes earlier than draining the rows as a
	// strict chain of exact buckets (each leg priced by the same EFT
	// rule the dispatcher uses). Pad cost is the larger variant's full
	// modeled cost — padding buys schedule slots, not free work — and
	// padded outputs are stripped back to the real rows before they
	// reach callers. Equal-cost ties keep the strict plan, so enabling
	// padding never changes a workload the model prices as neutral.
	// Ignored for single-bucket models (nothing to pad into).
	AllowPadding bool
	// ContinuousBatching replaces the fixed batch-window formation rule
	// for this model: instead of waiting for a full largest bucket or a
	// wall-clock window, a forming batch absorbs queued arrivals (in
	// dispatch order, on their simulated arrival times) while the
	// modeled marginal gain of one more row is positive — one saved
	// launch of the small bucket against the extra wait the rows already
	// in the batch would pay — then dispatches. The policy is
	// work-conserving: with no further queued arrival to price, the
	// batch dispatches rather than idle a worker on the hope of unseen
	// traffic, so BatchWindow only matters as the MaxWait default for
	// requests that keep it. Expired deadlines, high-priority arrivals,
	// and Close still force a dispatch exactly as before. Ignored for
	// single-bucket models (every request already dispatches greedily).
	ContinuousBatching bool
}

// InferOptions classifies one request for the scheduler.
type InferOptions struct {
	// Priority is the request's scheduling class (default
	// PriorityNormal).
	Priority Priority
	// MaxWait bounds how long the batcher may hold this request hoping
	// for a fuller bucket. Zero means the priority's default: the
	// model's batch window for PriorityNormal, bulkWindowFactor batch
	// windows for PriorityBulk. PriorityHigh dispatches immediately
	// and ignores MaxWait — holding a latency-sensitive request would
	// defeat the class.
	MaxWait time.Duration
	// SimArrival is the request's arrival time on the simulated clock,
	// in seconds (negative values mean 0). A worker cannot start a
	// batch before its latest member arrived, and each request's
	// SimLatency is its completion minus its arrival, so a seeded
	// arrival process (e.g. Poisson) yields steady-state queueing
	// percentiles instead of flood-at-t=0 ones. The zero default keeps
	// the flood semantics.
	SimArrival float64
}

// request is one queued inference request.
type request struct {
	t          *tenant
	id         int64 // server-assigned, in InferAsync acceptance order
	inputs     map[string]*tensor.Tensor
	resp       chan Result
	priority   Priority
	deadline   time.Time // when the batcher stops holding it
	simArrival float64   // arrival time on the simulated clock
}

// batchJob is one dispatched batch: requests of a single tenant, in
// priority-then-FIFO order, plus the scheduler's EFT placement.
type batchJob struct {
	t    *tenant
	reqs []*request
	// bucket is the compiled variant the batch runs on — len(reqs) for
	// a strict dispatch, larger when the planner chose a padded run
	// (the bucket−len(reqs) extra rows are zero padding).
	bucket  int
	worker  int     // chosen executor
	class   int     // its device class
	cost    float64 // modeled batch cost on that class (0 if unpriceable)
	priced  bool    // pricing succeeded and the cost was committed to sched
	arrival float64 // latest member's simulated arrival
}

// vkey identifies one compiled variant: a batch bucket on a device
// class.
type vkey struct {
	class  int
	bucket int
}

// variant is one lazily compiled batch-bucketed, device-targeted
// module.
type variant struct {
	once    sync.Once
	mod     *rt.Module
	time    float64 // modeled seconds per batch run
	bytes   int64   // modeled bytes (params + planned arena), for eviction
	lastUse int64   // LRU tick of the last execution/compile
	err     error
}

// tenantStats are one model's serving counters (guarded by Server.mu).
type tenantStats struct {
	requests      int64
	batches       int64
	evictions     int64
	failedBatches int64 // batches answered with an error (incl. injected faults)
	paddedBatches int64 // batches run on a bucket larger than their row count
	paddedRows    int64 // zero-padding rows across those batches
	batchSizes    map[int]int64
	simMakespan   float64
	lat           latWindow
	priLat        [numPriorities]latWindow
	// stages accumulates the per-priority stage-latency decomposition
	// over the tenant's lifetime (unbounded sums, unlike the latency
	// windows above).
	stages [numPriorities]StageBreakdown
	// stageHist are the per-stage latency histograms behind
	// Server.Snapshot (aggregated over priorities); latHist are the
	// per-priority end-to-end histograms.
	stageHist [numStages]*obs.Histogram
	latHist   [numPriorities]*obs.Histogram
}

// newTenantStats returns a zeroed accumulator with its maps and
// histograms allocated.
func newTenantStats() tenantStats {
	ts := tenantStats{batchSizes: make(map[int]int64)}
	for i := range ts.stageHist {
		ts.stageHist[i] = obs.NewHistogram(obs.DefaultLatencyBuckets())
	}
	for i := range ts.latHist {
		ts.latHist[i] = obs.NewHistogram(obs.DefaultLatencyBuckets())
	}
	return ts
}

// observeStages records one successful request's exact stage
// decomposition (f+q+e already sums bit-exactly to lat; deliver is 0
// on the sim clock).
func (ts *tenantStats) observeStages(pri Priority, f, q, e, lat float64) {
	ts.stages[pri].Add(StageBreakdown{
		Count: 1, FormationWait: f, QueueWait: q, Execute: e, Latency: lat,
	})
	ts.stageHist[stageFormation].Observe(f)
	ts.stageHist[stageQueue].Observe(q)
	ts.stageHist[stageExecute].Observe(e)
	ts.stageHist[stageDeliver].Observe(0)
	ts.latHist[pri].Observe(lat)
}

// merge folds another model's counters into this accumulator (latency
// samples pass through the bounded windows, so merging stays O(window)).
func (ts *tenantStats) merge(o *tenantStats) {
	ts.requests += o.requests
	ts.batches += o.batches
	ts.evictions += o.evictions
	ts.failedBatches += o.failedBatches
	ts.paddedBatches += o.paddedBatches
	ts.paddedRows += o.paddedRows
	for k, v := range o.batchSizes {
		ts.batchSizes[k] += v
	}
	for _, v := range o.lat.samples {
		ts.lat.add(v)
	}
	for pri := range o.priLat {
		for _, v := range o.priLat[pri].samples {
			ts.priLat[pri].add(v)
		}
	}
	for pri := range o.stages {
		ts.stages[pri].Add(o.stages[pri])
	}
	for i := range o.stageHist {
		ts.stageHist[i].Merge(o.stageHist[i])
	}
	for i := range o.latHist {
		ts.latHist[i].Merge(o.latHist[i])
	}
}

// stagesSnapshot builds the exported per-priority breakdown map (only
// classes with traffic appear).
func (ts *tenantStats) stagesSnapshot() map[Priority]StageBreakdown {
	out := make(map[Priority]StageBreakdown)
	for _, pri := range priorityOrder {
		if ts.stages[pri].Count > 0 {
			out[pri] = ts.stages[pri]
		}
	}
	return out
}

// tenant is one deployed model: its compiler, buckets, batching
// policy, per-priority queues, per-device variant cache, and counters.
type tenant struct {
	name            string
	order           int // deploy order (WRR tie-break, deterministic iteration)
	compile         CompileVariantOn
	buckets         []int // sorted ascending, 1 always present
	window          time.Duration
	weight          int
	maxVariantBytes int64 // per-class LRU budget (0 = unbounded)
	pad             bool  // DeployOptions.AllowPadding
	continuous      bool  // DeployOptions.ContinuousBatching
	// planRuns counts adaptive-planner invocations — the observable for
	// the single-bucket short-circuit: a model whose ladder has one rung
	// must never reach the planner, whatever its flags say.
	planRuns int64

	wrr     int // smooth weighted-round-robin current weight
	queues  [numPriorities][]*request
	pending int
	// accepted counts requests accepted by InferAsync and not yet taken
	// into a batch — a superset of pending that also covers requests
	// still in flight to the scheduler's queues, so the backlog probe
	// sees a request the moment InferAsync returns.
	accepted int
	removed  bool
	variants map[vkey]*variant
	// costs memoizes each (class, bucket)'s modeled batch cost past the
	// variant's lifetime, so EFT pricing of an evicted variant does not
	// recompile it — only the winning class's execution does.
	costs map[vkey]float64
	// pricing marks buckets whose first-use pricing compiles are in
	// flight on background goroutines; the scheduler skips the tenant's
	// batches for such a bucket instead of blocking dispatch on the
	// compile.
	pricing map[int]bool
	stats   tenantStats
}

// maxBucket returns the tenant's largest configured bucket.
func (t *tenant) maxBucket() int { return t.buckets[len(t.buckets)-1] }

// adaptive reports whether dispatch for this tenant goes through the
// padded/continuous planner. Single-bucket models short-circuit to the
// strict path no matter what the flags say: with one rung there is
// nothing to pad into and nothing for marginal-gain formation to weigh,
// so they must pay zero scheduling overhead.
func (t *tenant) adaptive() bool {
	return (t.pad || t.continuous) && len(t.buckets) > 1
}

// Server is a multi-tenant serving engine: several models share one
// worker pool (the simulated device streams) and one scheduler. Each
// model keeps per-priority FIFO queues; the scheduler dispatches
// batches via weighted round-robin across the models that are ready,
// so no tenant starves, and priorities shape batching within a tenant:
// a pending high-priority request preempts the batch window, bulk
// requests wait for full buckets.
type Server struct {
	opts ServerOptions

	incoming   chan *request
	kick       chan struct{} // nudges the scheduler (Close, Undeploy)
	done       chan struct{} // scheduler exited
	wg         sync.WaitGroup
	inflight   sync.WaitGroup
	compileSem chan struct{} // bounds concurrent variant compiles
	closeHook  sync.Once     // runs ServerOptions.OnClose exactly once

	// pool is the worker topology (device classes) plus the scheduler's
	// modeled finish times; its sched slice is touched only by the
	// scheduler goroutine.
	pool *pool

	mu            sync.Mutex
	closed        bool
	flushing      bool // Close started: dispatch greedily, ignore windows
	nextOrder     int
	lruTick       int64              // variant use counter (LRU eviction order)
	pendingTotal  int                // queued (absorbed, undispatched) requests across tenants
	tenants       map[string]*tenant // live models by name
	order         []*tenant          // live models in deploy order (scheduler scan + WRR ties)
	retired       tenantStats        // merged counters of undeployed models (traffic stays counted)
	workerCh      []chan batchJob
	clocks        []float64 // per-worker simulated seconds
	workerBusy    []float64 // per-worker simulated seconds spent executing
	workerBatches []int64   // per-worker dispatched batches
	workerPadded  []int64   // per-worker padded batches (bucket > rows)
	workerFailed  []int64   // per-worker failed batches
	// schedModel mirrors the pool's scheduler-owned finish times under
	// s.mu, so the backlog probe can read the EFT model from any
	// goroutine without racing the scheduler.
	schedModel []float64
	// nextReq assigns request ids in InferAsync acceptance order
	// (guarded by s.mu), correlating a request's spans across the
	// scheduler, worker, and fleet layers.
	nextReq int64

	// Tracing (nil/empty when ServerOptions.Trace is unset). Each
	// emitting goroutine owns its shard: the scheduler, each worker,
	// and one mutex-shared shard for compile goroutines.
	tr        *obs.Tracer
	trProc    int
	trSched   *obs.Shard
	trCompile *obs.Shard
	trWork    []*obs.Shard
}

// NewServer starts a multi-tenant server: one scheduler plus
// Options.Workers executor goroutines. Models are added with Deploy;
// Close shuts the server down after draining in-flight work.
func NewServer(opts ServerOptions) *Server {
	opts = opts.normalized()
	s := &Server{
		opts:          opts,
		pool:          newPool(opts.Workers, opts.Devices),
		incoming:      make(chan *request, opts.QueueDepth),
		kick:          make(chan struct{}, 1),
		done:          make(chan struct{}),
		compileSem:    make(chan struct{}, opts.CompileJobs),
		tenants:       make(map[string]*tenant),
		retired:       newTenantStats(),
		workerCh:      make([]chan batchJob, opts.Workers),
		clocks:        make([]float64, opts.Workers),
		workerBusy:    make([]float64, opts.Workers),
		workerBatches: make([]int64, opts.Workers),
		workerPadded:  make([]int64, opts.Workers),
		workerFailed:  make([]int64, opts.Workers),
		schedModel:    make([]float64, opts.Workers),
	}
	if opts.Trace != nil {
		label := opts.TraceLabel
		if label == "" {
			label = "server"
		}
		s.tr = opts.Trace
		s.trProc = s.tr.RegisterProcess(label)
		s.trSched = s.tr.NewShard()
		s.trCompile = s.tr.NewShard()
		s.trWork = make([]*obs.Shard, opts.Workers)
		for i := range s.trWork {
			s.trWork[i] = s.tr.NewShard()
		}
	}
	for i := range s.workerCh {
		s.workerCh[i] = make(chan batchJob, 4)
		s.wg.Add(1)
		go s.worker(i)
	}
	go s.schedule()
	return s
}

// Deploy registers a model under a unique name. Its batch variants
// compile lazily on first use (or eagerly via Warm) through the
// server's shared compile pool. The device-agnostic compile function
// targets whatever device the bolt wrapper bound it to; on a
// heterogeneous pool, use DeployOn so every device class gets its own
// variants.
func (s *Server) Deploy(name string, compile CompileVariant, opts DeployOptions) error {
	if compile == nil {
		return errors.New("serve: nil compile function")
	}
	return s.DeployOn(name, func(_ *gpu.Device, batch int) (*rt.Module, error) {
		return compile(batch)
	}, opts)
}

// DeployOn registers a model whose variants compile per device class:
// the pool passes each class's device (nil for the anonymous
// homogeneous class) into compile, so a T4 worker and an A100 worker
// each execute a module tuned for their own silicon while sharing one
// tuning log (its keys are device-scoped).
func (s *Server) DeployOn(name string, compile CompileVariantOn, opts DeployOptions) error {
	if compile == nil {
		return errors.New("serve: nil compile function")
	}
	weight := opts.Weight
	if weight < 1 {
		weight = 1
	}
	window := opts.BatchWindow
	if window <= 0 {
		window = s.opts.BatchWindow
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.tenants[name]; ok {
		return fmt.Errorf("serve: model %q already deployed", name)
	}
	t := &tenant{
		name:            name,
		order:           s.nextOrder,
		compile:         compile,
		buckets:         normalizeBuckets(opts.Buckets),
		window:          window,
		weight:          weight,
		maxVariantBytes: opts.MaxVariantBytes,
		pad:             opts.AllowPadding,
		continuous:      opts.ContinuousBatching,
		variants:        make(map[vkey]*variant),
		costs:           make(map[vkey]float64),
		stats:           newTenantStats(),
	}
	s.nextOrder++
	s.tenants[name] = t
	s.order = append(s.order, t)
	return nil
}

// Undeploy removes a model: new requests for it fail with
// ErrNotDeployed and its queued (not yet dispatched) requests are
// answered with the same error. Batches already handed to workers
// complete normally. The model's counters are folded into the
// aggregate Stats, but the tenant itself — its compiled variants,
// source-graph closure, and scheduler bookkeeping — is released, so a
// server cycling Deploy/Undeploy over many models does not accumulate
// dead state.
func (s *Server) Undeploy(name string) error {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: model %q: %w", name, ErrNotDeployed)
	}
	delete(s.tenants, name)
	t.removed = true
	s.retired.merge(&t.stats)
	for i, lt := range s.order {
		if lt == t {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	var orphans []*request
	for pri := range t.queues {
		orphans = append(orphans, t.queues[pri]...)
		t.queues[pri] = nil
	}
	s.pendingTotal -= t.pending
	t.pending = 0
	s.mu.Unlock()
	for _, r := range orphans {
		s.respond(r, Result{
			Err:      fmt.Errorf("serve: model %q undeployed: %w", name, ErrNotDeployed),
			Model:    name,
			Priority: r.priority,
		})
	}
	// The scheduler may be sleeping on a deadline that just vanished.
	s.nudge()
	return nil
}

// Models lists the currently deployed model names, sorted.
func (s *Server) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Infer runs one single-sample request (every input's leading dim must
// be 1) against a deployed model and blocks until its batch completes.
func (s *Server) Infer(model string, inputs map[string]*tensor.Tensor, opts InferOptions) (*tensor.Tensor, error) {
	ch, err := s.InferAsync(model, inputs, opts)
	if err != nil {
		return nil, err
	}
	res := <-ch
	return res.Output, res.Err
}

// InferAsync enqueues one single-sample request and returns the
// channel its Result will be delivered on. The channel is buffered, so
// a caller that abandons it does not wedge a worker.
func (s *Server) InferAsync(model string, inputs map[string]*tensor.Tensor, opts InferOptions) (<-chan Result, error) {
	if opts.Priority < 0 || opts.Priority >= numPriorities {
		return nil, fmt.Errorf("serve: unknown priority %d", opts.Priority)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	t, ok := s.tenants[model]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: model %q: %w", model, ErrNotDeployed)
	}
	s.inflight.Add(1)
	t.stats.requests++
	t.accepted++
	s.nextReq++
	id := s.nextReq
	wait := opts.MaxWait
	if opts.Priority == PriorityHigh {
		wait = 0 // high ignores MaxWait: it dispatches immediately
	} else if wait <= 0 {
		if opts.Priority == PriorityBulk {
			wait = bulkWindowFactor * t.window
		} else {
			wait = t.window
		}
	}
	s.mu.Unlock()
	arrival := opts.SimArrival
	if arrival < 0 {
		arrival = 0
	}
	r := &request{
		t:          t,
		id:         id,
		inputs:     inputs,
		resp:       make(chan Result, 1),
		priority:   opts.Priority,
		deadline:   time.Now().Add(wait),
		simArrival: arrival,
	}
	s.incoming <- r
	return r.resp, nil
}

// Warm compiles a model's variants for the given buckets (all its
// configured buckets when none are named) — on every device class of
// the pool — before traffic arrives. The compiles run concurrently
// through the server's compile pool (ServerOptions.CompileJobs wide);
// the returned error joins every failed compile's error, naming the
// bucket (and the device on a heterogeneous pool). Warm fails on a
// closed server, and compiles not yet started when the model is
// concurrently Undeployed (or the server Closed) fail with
// ErrNotDeployed/ErrClosed instead of compiling for a dead tenant —
// compiles already running finish, but are dropped with the tenant.
func (s *Server) Warm(model string, buckets ...int) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	t, ok := s.tenants[model]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: model %q: %w", model, ErrNotDeployed)
	}
	if len(buckets) == 0 {
		buckets = t.buckets
	}
	s.mu.Unlock()
	classes := s.pool.classes
	errs := make([]error, len(buckets)*len(classes))
	var wg sync.WaitGroup
	for i, b := range buckets {
		for _, c := range classes {
			wg.Add(1)
			go func(slot, b int, c deviceClass) {
				defer wg.Done()
				where := ""
				if c.name != "" {
					where = fmt.Sprintf(" on %s", c.name)
				}
				s.mu.Lock()
				dead := error(nil)
				switch {
				case s.closed:
					dead = ErrClosed
				case t.removed:
					dead = ErrNotDeployed
				}
				s.mu.Unlock()
				if dead != nil {
					errs[slot] = fmt.Errorf("bucket %d%s: %w", b, where, dead)
					return
				}
				if v := s.variantFor(t, c.id, b); v.err != nil {
					errs[slot] = fmt.Errorf("bucket %d%s: %w", b, where, v.err)
				}
			}(i*len(classes)+c.id, b, c)
		}
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ModelStats returns one deployed model's serving counters.
func (s *Server) ModelStats(name string) (Stats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return Stats{}, false
	}
	return t.snapshotLocked(), true
}

// Stats aggregates the counters of every model this server has ever
// deployed (undeployed models' served traffic stays counted; their
// Variants do not appear, since Undeploy releases the compiled
// modules). SimMakespan is the largest worker clock: the modeled wall
// time to drain everything served so far.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := Stats{
		Requests:          s.retired.requests,
		Batches:           s.retired.batches,
		Evictions:         s.retired.evictions,
		FailedBatches:     s.retired.failedBatches,
		PaddedBatches:     s.retired.paddedBatches,
		PaddedRows:        s.retired.paddedRows,
		BatchSizes:        make(map[int]int64),
		Latencies:         s.retired.lat.snapshot(),
		PriorityLatencies: make(map[Priority][]float64),
		Stages:            s.retired.stagesSnapshot(),
	}
	for k, v := range s.retired.batchSizes {
		agg.BatchSizes[k] = v
	}
	for _, pri := range priorityOrder {
		if w := s.retired.priLat[pri].snapshot(); w != nil {
			agg.PriorityLatencies[pri] = w
		}
	}
	variants := make(map[int]bool)
	for _, t := range s.order {
		agg.Requests += t.stats.requests
		agg.Batches += t.stats.batches
		agg.Evictions += t.stats.evictions
		agg.FailedBatches += t.stats.failedBatches
		agg.PaddedBatches += t.stats.paddedBatches
		agg.PaddedRows += t.stats.paddedRows
		for k, v := range t.stats.batchSizes {
			agg.BatchSizes[k] += v
		}
		for key, v := range t.variants {
			if v.mod != nil && v.err == nil {
				variants[key.bucket] = true
			}
		}
		agg.Latencies = append(agg.Latencies, t.stats.lat.samples...)
		for _, pri := range priorityOrder {
			if w := t.stats.priLat[pri].samples; len(w) > 0 {
				agg.PriorityLatencies[pri] = append(agg.PriorityLatencies[pri], w...)
			}
			if b := t.stats.stages[pri]; b.Count > 0 {
				merged := agg.Stages[pri]
				merged.Add(b)
				agg.Stages[pri] = merged
			}
		}
	}
	for b := range variants {
		agg.Variants = append(agg.Variants, b)
	}
	sort.Ints(agg.Variants)
	for _, c := range s.clocks {
		if c > agg.SimMakespan {
			agg.SimMakespan = c
		}
	}
	agg.Devices = s.deviceStatsLocked()
	agg.BacklogSeconds = s.backlogLocked()
	return agg
}

// deviceStatsLocked builds the per-worker device rows (caller holds
// s.mu). Batches sum to the aggregate batch count and utilization
// shares to 1 (once any work ran), so per-device accounting is exact
// against the aggregate.
func (s *Server) deviceStatsLocked() []DeviceStats {
	total := 0.0
	for _, b := range s.workerBusy {
		total += b
	}
	out := make([]DeviceStats, len(s.clocks))
	for w := range out {
		out[w] = DeviceStats{
			Worker:        w,
			Device:        s.pool.specs[w].DeviceName(),
			Batches:       s.workerBatches[w],
			FailedBatches: s.workerFailed[w],
			PaddedBatches: s.workerPadded[w],
			BusySeconds:   s.workerBusy[w],
			SimMakespan:   s.clocks[w],
		}
		if total > 0 {
			out[w].UtilizationShare = s.workerBusy[w] / total
		}
	}
	return out
}

// Pending returns the number of accepted, not-yet-dispatched requests
// across all models. Benchmarks that want a deterministic batch
// composition gate the first dispatch (e.g. behind the compile
// function) and poll Pending until every enqueued request is visible to
// the scheduler, so planning always sees the whole queue regardless of
// wall-clock scheduling noise.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingTotal
}

// SimMakespan returns the largest worker clock without building the
// full aggregate snapshot.
func (s *Server) SimMakespan() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m float64
	for _, c := range s.clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// snapshotLocked copies one tenant's counters (caller holds s.mu).
func (t *tenant) snapshotLocked() Stats {
	st := Stats{
		Requests:          t.stats.requests,
		Batches:           t.stats.batches,
		Evictions:         t.stats.evictions,
		FailedBatches:     t.stats.failedBatches,
		PaddedBatches:     t.stats.paddedBatches,
		PaddedRows:        t.stats.paddedRows,
		BatchSizes:        make(map[int]int64, len(t.stats.batchSizes)),
		SimMakespan:       t.stats.simMakespan,
		Latencies:         t.stats.lat.snapshot(),
		PriorityLatencies: make(map[Priority][]float64),
		Stages:            t.stats.stagesSnapshot(),
	}
	for k, v := range t.stats.batchSizes {
		st.BatchSizes[k] = v
	}
	buckets := make(map[int]bool)
	for key, v := range t.variants {
		if v.mod != nil && v.err == nil {
			buckets[key.bucket] = true
		}
	}
	for b := range buckets {
		st.Variants = append(st.Variants, b)
	}
	sort.Ints(st.Variants)
	for _, pri := range priorityOrder {
		if w := t.stats.priLat[pri].snapshot(); w != nil {
			st.PriorityLatencies[pri] = w
		}
	}
	return st
}

// Close rejects new requests, flushes and answers every accepted
// request (batch windows are cut short), stops the scheduler and
// workers, and finally runs ServerOptions.OnClose (once). Safe to call
// more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		s.wg.Wait()
		s.runCloseHook()
		return
	}
	s.closed = true
	s.flushing = true
	s.mu.Unlock()
	s.nudge()
	s.inflight.Wait()
	close(s.incoming)
	<-s.done
	s.wg.Wait()
	s.runCloseHook()
}

func (s *Server) runCloseHook() {
	s.closeHook.Do(func() {
		if s.opts.OnClose != nil {
			s.opts.OnClose()
		}
	})
}

// nudge wakes the scheduler without blocking.
func (s *Server) nudge() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// respond answers one request and retires it from the in-flight count.
func (s *Server) respond(r *request, res Result) {
	r.resp <- res
	s.inflight.Done()
}

// enqueue moves an accepted request into its tenant's priority queue
// (or answers it immediately if the tenant was undeployed in between).
func (s *Server) enqueue(r *request) {
	s.mu.Lock()
	removed := r.t.removed
	if !removed {
		r.t.queues[r.priority] = append(r.t.queues[r.priority], r)
		r.t.pending++
		s.pendingTotal++
	}
	s.mu.Unlock()
	if removed {
		s.respond(r, Result{
			Err:      fmt.Errorf("serve: model %q undeployed: %w", r.t.name, ErrNotDeployed),
			Model:    r.t.name,
			Priority: r.priority,
		})
	}
}

// schedule is the scheduler loop: it absorbs arrivals into per-tenant
// priority queues and dispatches ready batches to workers by modeled
// earliest finish time across the device pool (deterministic,
// cost-aware load balance across the simulated streams). Tenant
// selection is weighted round-robin; within a tenant, batches drain
// high-priority requests first.
func (s *Server) schedule() {
	defer func() {
		s.mu.Lock()
		chs := s.workerCh
		s.mu.Unlock()
		for _, ch := range chs {
			close(ch)
		}
		close(s.done)
	}()
	open := true // incoming not yet closed
	for {
		open = s.drainIncoming(open)
		if job := s.nextJob(time.Now()); job != nil {
			s.dispatch(job)
			continue
		}
		if !open && !s.hasPending() {
			return
		}
		s.await(open)
	}
}

// dispatch places one ready batch on the earliest-finish-time worker,
// commits that worker's modeled finish time, and hands the batch over.
// Every device class is already priced when a batch reaches here
// (nextJob defers un-priced buckets to background pricing compiles),
// so pricing is a single locked read of the cost memo. On homogeneous
// pools with equal costs EFT degenerates to round-robin; with mixed
// devices the fast class absorbs proportionally more work, and a full
// bucket never waits while any worker's modeled finish time would
// admit it earlier.
func (s *Server) dispatch(job *batchJob) {
	if job.bucket < len(job.reqs) {
		job.bucket = len(job.reqs)
	}
	for _, r := range job.reqs {
		if r.simArrival > job.arrival {
			job.arrival = r.simArrival
		}
	}
	costs := make([]float64, len(s.pool.classes))
	live := make([]bool, len(s.pool.classes))
	s.mu.Lock()
	for c := range costs {
		key := vkey{class: c, bucket: job.bucket}
		if cost, ok := job.t.costs[key]; ok {
			costs[c] = cost
			v := job.t.variants[key]
			live[c] = v != nil && v.mod != nil && v.err == nil
		} else {
			// Pricing resolved with a failed compile: never placeable
			// unless every class failed (then worker 0 surfaces the
			// error).
			costs[c] = math.Inf(1)
		}
	}
	s.mu.Unlock()
	pl := s.pool.place(costs, live, job.arrival)
	job.worker, job.class = pl.worker, pl.class
	if !math.IsInf(pl.finish, 1) {
		job.cost, job.priced = costs[pl.class], true
	}
	s.pool.commit(pl)
	if job.priced {
		// Mirror the committed finish time under s.mu for the backlog
		// probe (the pool's own sched stays scheduler-private).
		s.mu.Lock()
		s.schedModel[pl.worker] = pl.finish
		s.mu.Unlock()
	}
	if s.tr != nil {
		var eft strings.Builder
		for c, cost := range costs {
			if c > 0 {
				eft.WriteByte(',')
			}
			eft.WriteString(className(s.pool.classes[c].name))
			eft.WriteByte('=')
			eft.WriteString(strconv.FormatFloat(cost, 'g', -1, 64))
		}
		args := []obs.Arg{
			{Key: "model", Val: job.t.name},
			{Key: "bucket", Val: job.bucket},
			{Key: "rows", Val: len(job.reqs)},
			{Key: "worker", Val: pl.worker},
			{Key: "class", Val: className(s.pool.classes[pl.class].name)},
			{Key: "eft_costs", Val: eft.String()},
		}
		if !math.IsInf(pl.finish, 1) {
			args = append(args, obs.Arg{Key: "finish", Val: pl.finish})
		}
		s.trSched.Emit(obs.Span{
			Name: obs.KindDispatch, Cat: obs.CatBatch, Proc: s.trProc,
			Track: "scheduler", Start: job.arrival, Args: args,
		})
	}
	s.workerCh[pl.worker] <- *job
}

// className names a device class in trace spans and snapshots
// ("default" for the anonymous homogeneous class).
func className(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// bucketPricedLocked reports whether every device class has a resolved
// price for the bucket: a memoized cost, or a compile that completed
// with an error (caller holds s.mu).
func (s *Server) bucketPricedLocked(t *tenant, k int) bool {
	for c := range s.pool.classes {
		key := vkey{class: c, bucket: k}
		if _, ok := t.costs[key]; ok {
			continue
		}
		if v := t.variants[key]; v != nil && v.err != nil {
			continue
		}
		return false
	}
	return true
}

// ensurePricingLocked kicks off background pricing compiles for a
// bucket's unresolved classes, at most once at a time per bucket
// (caller holds s.mu). The scheduler keeps dispatching other tenants
// while the compiles run; completion nudges it back.
func (s *Server) ensurePricingLocked(t *tenant, k int) {
	if t.pricing == nil {
		t.pricing = make(map[int]bool)
	}
	if t.pricing[k] {
		return
	}
	t.pricing[k] = true
	// Tracked on the server WaitGroup so Close waits for in-flight
	// pricing compiles before running OnClose — their tuning-log
	// entries land before the close-time persist.
	s.wg.Add(1)
	go s.priceBucket(t, k)
}

// priceBucket compiles a bucket's variant on every class that has no
// resolved price yet (concurrently, each gated by the CompileJobs
// pool), then clears the in-flight mark and wakes the scheduler.
// Classes whose cost is memoized are skipped — pricing never
// recompiles an evicted variant — and an Undeploy races the compiles
// the same way it races Warm: classes not yet started are abandoned
// rather than compiled for a dead tenant. A closing (flushing) server
// still prices, because its queued requests must be answered.
func (s *Server) priceBucket(t *tenant, k int) {
	defer s.wg.Done()
	var wg sync.WaitGroup
	for c := range s.pool.classes {
		key := vkey{class: c, bucket: k}
		s.mu.Lock()
		done := t.removed
		if !done {
			_, done = t.costs[key]
		}
		if !done {
			if v := t.variants[key]; v != nil && v.err != nil {
				done = true
			}
		}
		s.mu.Unlock()
		if done {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s.variantFor(t, c, k)
		}(c)
	}
	wg.Wait()
	s.mu.Lock()
	delete(t.pricing, k)
	s.mu.Unlock()
	s.nudge()
}

// drainIncoming absorbs requests already queued on the incoming
// channel without blocking, stopping once the absorbed backlog reaches
// QueueDepth (further arrivals stay in the channel, so producers feel
// backpressure). Returns whether the channel is still open.
func (s *Server) drainIncoming(open bool) bool {
	for open {
		if s.queuesFull() {
			return true
		}
		select {
		case r, ok := <-s.incoming:
			if !ok {
				return false
			}
			s.enqueue(r)
		default:
			return true
		}
	}
	return false
}

// queuesFull reports whether the absorbed backlog has reached the
// configured QueueDepth.
func (s *Server) queuesFull() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingTotal >= s.opts.QueueDepth
}

// await blocks until something can have changed the schedule: a new
// arrival (only while the backlog has room), a nudge (Close/Undeploy),
// or the nearest request deadline.
func (s *Server) await(open bool) {
	var inCh chan *request
	if open && !s.queuesFull() {
		inCh = s.incoming
	}
	var timerC <-chan time.Time
	if wait, ok := s.nearestDeadline(time.Now()); ok {
		// An already-expired deadline (floored to 0) can reach here
		// only while a batch waits on a background pricing compile —
		// nextJob dispatches expired work otherwise. Poll at 1ms
		// instead of spinning hot until the compile's nudge arrives;
		// genuinely future deadlines keep their exact timer.
		if wait == 0 {
			wait = time.Millisecond
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case r, ok := <-inCh:
		if ok {
			s.enqueue(r)
		}
		// A closed channel is noticed by the next drainIncoming.
	case <-s.kick:
	case <-timerC:
	}
}

// hasPending reports whether any tenant has queued requests.
func (s *Server) hasPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.order {
		if t.pending > 0 {
			return true
		}
	}
	return false
}

// nearestDeadline returns how long until the earliest queued request's
// deadline (clamped to >= 0), or ok=false when nothing is queued. The
// scan is O(queued requests) because MaxWait can vary per request
// (FIFO heads are not necessarily earliest); at this simulation's
// scale (queues bounded near QueueDepth) that is deliberate — an
// incremental per-queue minimum is the upgrade path if servers ever
// hold very deep backlogs.
func (s *Server) nearestDeadline(now time.Time) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var wait time.Duration
	found := false
	for _, t := range s.order {
		for pri := range t.queues {
			for _, r := range t.queues[pri] {
				w := r.deadline.Sub(now)
				if w < 0 {
					w = 0
				}
				if !found || w < wait {
					wait, found = w, true
				}
			}
		}
	}
	return wait, found
}

// nextJob picks the next batch to dispatch, or nil when no tenant is
// ready. A tenant is ready when a high-priority request is pending,
// when its backlog fills its largest bucket, when any queued request's
// deadline has passed, when the server is flushing for Close, or — for
// continuous-batching tenants — whenever anything is pending at all
// (continuous formation is work-conserving: it sizes the batch from the
// visible queue instead of holding it for a window). Among ready
// tenants, smooth weighted round-robin decides who goes; the winner's
// batch is sized by the strict bucket rule or, for adaptive tenants, by
// the padded/continuous planner.
func (s *Server) nextJob(now time.Time) *batchJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ready []*tenant
	for _, t := range s.order {
		if t.pending == 0 || t.removed {
			continue
		}
		if (t.continuous && t.adaptive()) || s.flushing || len(t.queues[PriorityHigh]) > 0 || t.pending >= t.maxBucket() {
			ready = append(ready, t)
			continue
		}
		urgent := false
	scan:
		for pri := range t.queues {
			for _, r := range t.queues[pri] {
				if !r.deadline.After(now) {
					urgent = true
					break scan
				}
			}
		}
		if urgent {
			ready = append(ready, t)
		}
	}
	if len(ready) == 0 {
		return nil
	}
	// Every ready tenant's bucket must be priced before any batch goes
	// out: dispatch order is the weighted-round-robin contract, and
	// serving whoever happens to be priced first would invert it (the
	// skipped pickWRR calls would also corrupt the smooth-WRR state).
	// Unpriced buckets compile on background goroutines — overlapping
	// through the CompileJobs pool and nudging the scheduler when done
	// — so the scheduler goroutine itself stays responsive (arrivals,
	// Undeploy, Close) during a cold tenant's first compile. Warm
	// avoids the stall entirely. Adaptive tenants price their whole
	// ladder: the planner compares arbitrary rungs, and a plan made on a
	// half-priced ladder would depend on compile timing.
	allPriced := true
	for _, t := range ready {
		if t.adaptive() {
			for _, b := range t.buckets {
				if !s.bucketPricedLocked(t, b) {
					s.ensurePricingLocked(t, b)
					allPriced = false
				}
			}
			continue
		}
		k := bucketFor(t.buckets, t.pending)
		if !s.bucketPricedLocked(t, k) {
			s.ensurePricingLocked(t, k)
			allPriced = false
		}
	}
	if !allPriced {
		return nil
	}
	t := pickWRR(ready)
	pending := t.pending
	var plan dispatchPlan
	var pt planTrace
	if t.adaptive() {
		plan, pt = s.planAdaptiveLocked(t, now)
	} else {
		k := bucketFor(t.buckets, t.pending)
		plan = dispatchPlan{take: k, bucket: k}
		pt = planTrace{mode: "strict"}
	}
	reqs := takeBatch(t, plan.take, now)
	t.pending -= len(reqs)
	t.accepted -= len(reqs)
	s.pendingTotal -= len(reqs)
	if s.tr != nil {
		arr := 0.0
		for _, r := range reqs {
			if r.simArrival > arr {
				arr = r.simArrival
			}
		}
		args := []obs.Arg{
			{Key: "model", Val: t.name},
			{Key: "mode", Val: pt.mode},
			{Key: "pending", Val: pending},
			{Key: "take", Val: len(reqs)},
			{Key: "bucket", Val: plan.bucket},
			{Key: "padded", Val: plan.bucket > len(reqs)},
		}
		if !math.IsInf(pt.strictFinish, 1) && pt.strictFinish > 0 {
			args = append(args, obs.Arg{Key: "strict_finish", Val: pt.strictFinish})
		}
		if !math.IsInf(pt.padFinish, 1) && pt.padFinish > 0 {
			args = append(args, obs.Arg{Key: "padded_finish", Val: pt.padFinish})
		}
		s.trSched.Emit(obs.Span{
			Name: obs.KindPlan, Cat: obs.CatBatch, Proc: s.trProc,
			Track: "scheduler", Start: arr, Args: args,
		})
	}
	return &batchJob{t: t, reqs: reqs, bucket: plan.bucket}
}

// planTrace carries the planner's modeled alternatives out to the plan
// span: which formation mode ran and, when the padded planner priced
// both schedules, the strict chain's and the best padded rung's
// modeled finish times.
type planTrace struct {
	mode         string
	strictFinish float64
	padFinish    float64
}

// dispatchPlan is one sizing decision: take rows off the queue, run
// them on the bucket variant (bucket > take means zero-padded rows).
type dispatchPlan struct {
	take   int
	bucket int
}

// planAdaptiveLocked sizes the next batch for a padding and/or
// continuous-batching tenant (caller holds s.mu; the tenant's whole
// bucket ladder is priced). Continuous formation first decides how many
// visible rows to coalesce; the bucket decision then prices running
// them padded on a larger rung against draining them as a strict chain.
func (s *Server) planAdaptiveLocked(t *tenant, now time.Time) (dispatchPlan, planTrace) {
	t.planRuns++
	n := t.pending
	if m := t.maxBucket(); n > m {
		n = m
	}
	vis := dispatchOrderLocked(t, n, now)
	mode := "padded"
	if t.continuous {
		vis = vis[:s.formBatchLocked(t, vis)]
		mode = "continuous"
		if t.pad {
			mode = "continuous+padded"
		}
	}
	plan, pt := s.chooseBucketLocked(t, vis)
	pt.mode = mode
	return plan, pt
}

// dispatchOrderLocked returns up to limit queued requests in exactly
// the order takeBatch would drain them — expired deadlines first, then
// priority-then-FIFO — without removing anything (caller holds s.mu).
// The planner prices the very rows the dispatch will take.
func dispatchOrderLocked(t *tenant, limit int, now time.Time) []*request {
	reqs := make([]*request, 0, limit)
	seen := make(map[*request]bool, limit)
	for pass := 0; pass < 2; pass++ {
		for _, pri := range priorityOrder {
			for _, r := range t.queues[pri] {
				if len(reqs) < limit && !seen[r] && (pass == 1 || !r.deadline.After(now)) {
					seen[r] = true
					reqs = append(reqs, r)
				}
			}
		}
	}
	return reqs
}

// formBatchLocked is continuous batch formation: starting from the
// first visible row, the batch absorbs the next queued arrival while
// the modeled marginal gain of one more row is positive, and returns
// the chosen row count. The gain of growing from m to m+1 rows is one
// saved single-row launch (the absorbed row no longer needs its own
// dispatch) plus the batch-cost delta c(m) − c(m+1), minus the extra
// wait the m rows already in the batch would pay if the next row's
// simulated arrival is later than the batch could start (its rows all
// present and a worker modeled free). Zero-gain rows are absorbed too:
// without padding, the chain-cost model plateaus exactly at bucket
// boundaries (rows past a full rung chain as their own dispatches at
// identical cost), and stopping there would wedge formation at the
// first rung forever — only a row that costs real extra wait (or a
// modeled loss) stops the scan. The scan is work-conserving: it
// only weighs rows already queued, never holds the batch for traffic
// that might arrive — so a continuous tenant's batch window is reduced
// to the MaxWait default for its requests. An unpriceable ladder makes
// the gain NaN, which stops the scan (strict fallback downstream).
func (s *Server) formBatchLocked(t *tenant, vis []*request) int {
	m := 1
	if len(vis) <= m {
		return len(vis)
	}
	c1 := s.dispatchCostLocked(t, 1)
	minSched := s.pool.minSched()
	arrMax := vis[0].simArrival
	for m < len(vis) {
		next := vis[m].simArrival
		start := arrMax
		if minSched > start {
			start = minSched
		}
		extra := next - start
		if extra < 0 {
			extra = 0
		}
		gain := c1 + s.dispatchCostLocked(t, m) - s.dispatchCostLocked(t, m+1) - float64(m)*extra
		if !(gain >= 0) { // NaN-safe: an Inf-cost ladder stops here too
			break
		}
		if next > arrMax {
			arrMax = next
		}
		m++
	}
	return m
}

// chooseBucketLocked decides how the chosen rows run: strictly (the
// largest bucket not exceeding the row count — the pre-padding rule) or
// padded onto a larger rung. Every larger compiled bucket is priced by
// the same EFT preview the dispatcher uses, at the full larger
// variant's cost; the strict alternative is the modeled makespan of
// draining the rows as a greedy chain of exact buckets. Padding wins
// only on a strictly earlier modeled completion — ties keep the strict
// plan, so the padded path never changes a cost-neutral schedule.
func (s *Server) chooseBucketLocked(t *tenant, vis []*request) (dispatchPlan, planTrace) {
	n := len(vis)
	k := bucketFor(t.buckets, n)
	strict := dispatchPlan{take: k, bucket: k}
	if !t.pad {
		return strict, planTrace{}
	}
	arr := 0.0
	for _, r := range vis {
		if r.simArrival > arr {
			arr = r.simArrival
		}
	}
	padBucket, padFinish := 0, math.Inf(1)
	for _, b := range t.buckets {
		if b <= n {
			continue
		}
		if fin := s.pool.previewFinish(s.classCostsLocked(t, b), arr); fin < padFinish {
			padBucket, padFinish = b, fin
		}
	}
	if padBucket == 0 && s.tr == nil {
		return strict, planTrace{padFinish: padFinish}
	}
	// The strict chain is the decision input when a padded rung exists;
	// with tracing on it is priced regardless, so the plan span always
	// carries both modeled alternatives (previewing on a scratch copy
	// of sched is side-effect-free — the decision is unchanged).
	chain := s.chainFinishLocked(t, vis)
	pt := planTrace{strictFinish: chain, padFinish: padFinish}
	if padBucket == 0 || !(padFinish < chain) {
		return strict, pt
	}
	return dispatchPlan{take: n, bucket: padBucket}, pt
}

// chainFinishLocked prices the strict counterfactual for a set of rows:
// decompose them greedily into exact buckets (in dispatch order, each
// segment arriving with its latest member) and EFT-place the chain on a
// scratch copy of the pool's finish times (caller holds s.mu).
func (s *Server) chainFinishLocked(t *tenant, vis []*request) float64 {
	var costSets [][]float64
	var arrivals []float64
	for i := 0; i < len(vis); {
		k := bucketFor(t.buckets, len(vis)-i)
		arr := 0.0
		for _, r := range vis[i : i+k] {
			if r.simArrival > arr {
				arr = r.simArrival
			}
		}
		costSets = append(costSets, s.classCostsLocked(t, k))
		arrivals = append(arrivals, arr)
		i += k
	}
	return s.pool.chainFinish(costSets, arrivals)
}

// classCostsLocked returns the tenant's memoized per-class costs for a
// bucket, +Inf where pricing resolved with a failed compile (caller
// holds s.mu; the planner only runs on fully priced ladders).
func (s *Server) classCostsLocked(t *tenant, b int) []float64 {
	costs := make([]float64, len(s.pool.classes))
	for c := range costs {
		if cost, ok := t.costs[vkey{class: c, bucket: b}]; ok {
			costs[c] = cost
		} else {
			costs[c] = math.Inf(1)
		}
	}
	return costs
}

// minClassCostLocked is the cheapest class's memoized cost for a bucket
// (+Inf when no class priced it), the planner's device-agnostic cost of
// one launch (caller holds s.mu).
func (s *Server) minClassCostLocked(t *tenant, b int) float64 {
	best := math.Inf(1)
	for c := range s.pool.classes {
		if cost, ok := t.costs[vkey{class: c, bucket: b}]; ok && cost < best {
			best = cost
		}
	}
	return best
}

// dispatchCostLocked is the modeled cost of draining m rows in one
// dispatch decision (caller holds s.mu): with padding, the cheapest
// rung that fits them all; without, the summed cost of the greedy
// exact-bucket chain they would dispatch as.
func (s *Server) dispatchCostLocked(t *tenant, m int) float64 {
	if t.pad {
		best := math.Inf(1)
		for _, b := range t.buckets {
			if b < m {
				continue
			}
			if c := s.minClassCostLocked(t, b); c < best {
				best = c
			}
		}
		return best
	}
	total := 0.0
	for m > 0 {
		k := bucketFor(t.buckets, m)
		total += s.minClassCostLocked(t, k)
		m -= k
	}
	return total
}

// takeBatch drains up to k of a tenant's queued requests. Requests
// whose deadline has passed go first (MaxWait is a promise: an expired
// request must not be bypassed indefinitely by a stream of newer,
// higher-priority arrivals); the rest fill in priority-then-FIFO
// order.
func takeBatch(t *tenant, k int, now time.Time) []*request {
	reqs := make([]*request, 0, k)
	for pass := 0; pass < 2; pass++ {
		for _, pri := range priorityOrder {
			q := t.queues[pri]
			kept := q[:0]
			for _, r := range q {
				if len(reqs) < k && (pass == 1 || !r.deadline.After(now)) {
					reqs = append(reqs, r)
				} else {
					kept = append(kept, r)
				}
			}
			t.queues[pri] = kept
		}
	}
	return reqs
}

// pickWRR implements smooth weighted round-robin: every ready tenant
// gains its weight, the largest current weight wins and pays back the
// round's total, so interleavings are proportional to weight and
// deterministic (ready is in deploy order; the first maximum wins).
func pickWRR(ready []*tenant) *tenant {
	total := 0
	var best *tenant
	for _, t := range ready {
		t.wrr += t.weight
		total += t.weight
		if best == nil || t.wrr > best.wrr {
			best = t
		}
	}
	best.wrr -= total
	return best
}

// normalizeBuckets sorts, dedups, drops non-positive entries, and
// guarantees bucket 1 (nil means {1, 2, 4, 8}).
func normalizeBuckets(buckets []int) []int {
	if len(buckets) == 0 {
		buckets = []int{1, 2, 4, 8}
	}
	set := map[int]bool{1: true}
	for _, b := range buckets {
		if b >= 1 {
			set[b] = true
		}
	}
	out := make([]int, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// bucketFor returns the largest bucket not exceeding n (bucket 1
// always exists).
func bucketFor(buckets []int, n int) int {
	b := 1
	for _, k := range buckets {
		if k <= n {
			b = k
		}
	}
	return b
}

func (s *Server) worker(id int) {
	defer s.wg.Done()
	for job := range s.workerCh[id] {
		s.runBatch(id, job)
	}
}

// variantFor resolves (compiling at most once, through the shared
// compile pool) a tenant's module for a batch bucket on one device
// class. A successful compile memoizes the variant's modeled batch
// cost (surviving eviction, for dispatch pricing) and then enforces
// the tenant's per-class LRU budget.
func (s *Server) variantFor(t *tenant, class, batch int) *variant {
	key := vkey{class: class, bucket: batch}
	s.mu.Lock()
	v := t.variants[key]
	if v == nil {
		v = &variant{}
		t.variants[key] = v
	}
	if v.mod != nil {
		s.lruTick++
		v.lastUse = s.lruTick
	}
	s.mu.Unlock()
	v.once.Do(func() {
		s.compileSem <- struct{}{}
		defer func() { <-s.compileSem }()
		mod, err := t.compile(s.pool.classes[class].dev, batch)
		var tm float64
		var bytes int64
		if err == nil {
			tm = mod.Time()
			mem := mod.Memory()
			bytes = int64(mem.ParamBytes + mem.PlannedArenaBytes)
		}
		// Publish under s.mu so Stats (which iterates variants without
		// going through the Once) is synchronized with this write;
		// post-Do readers are already ordered by the Once itself.
		s.mu.Lock()
		v.mod, v.err, v.time, v.bytes = mod, err, tm, bytes
		if err == nil {
			t.costs[key] = tm
			s.lruTick++
			v.lastUse = s.lruTick
			s.evictLocked(t, class, v)
		}
		s.mu.Unlock()
		if s.tr != nil {
			args := []obs.Arg{
				{Key: "model", Val: t.name},
				{Key: "device", Val: className(s.pool.classes[class].name)},
				{Key: "bucket", Val: batch},
			}
			dur := 0.0
			if err != nil {
				args = append(args, obs.Arg{Key: "kind", Val: "error"})
			} else {
				// cold: the tuner measured candidates; predicted: the
				// cost model resolved workloads measurement-free; warm:
				// every workload came from the shared tuning log.
				tu := mod.Tuning
				kind := "warm"
				switch {
				case tu.Measurements > 0:
					kind = "cold"
				case tu.PredictedWorkloads > 0:
					kind = "predicted"
				}
				dur = tu.TuningSeconds
				args = append(args,
					obs.Arg{Key: "kind", Val: kind},
					obs.Arg{Key: "measurements", Val: tu.Measurements},
					obs.Arg{Key: "cache_hits", Val: tu.CacheHits},
					obs.Arg{Key: "predicted_workloads", Val: tu.PredictedWorkloads},
					obs.Arg{Key: "modeled_batch_seconds", Val: tm},
				)
			}
			// Compile spans live off the serving clock (tuning happens
			// before traffic is timed); Start is 0 and the exporter lays
			// the compile track out sequentially.
			s.trCompile.Emit(obs.Span{
				Name: obs.KindCompile, Cat: obs.CatCompile, Proc: s.trProc,
				Track: "compile", Dur: dur, Args: args,
			})
		}
	})
	return v
}

// evictLocked enforces a tenant's per-class variant budget (caller
// holds s.mu): while the class's live compiled variants exceed
// MaxVariantBytes, the least-recently-used one (never keep, which was
// just compiled or is about to execute) is dropped from the cache and
// counted. In-flight batches holding the evicted module finish
// normally — eviction only forgets the cache entry; a later dispatch
// recompiles it through the shared tuning log, measurement-free.
func (s *Server) evictLocked(t *tenant, class int, keep *variant) {
	if t.maxVariantBytes <= 0 {
		return
	}
	for {
		total := int64(0)
		var oldestKey vkey
		var oldest *variant
		for key, v := range t.variants {
			if key.class != class || v.mod == nil || v.err != nil {
				continue
			}
			total += v.bytes
			if v != keep && (oldest == nil || v.lastUse < oldest.lastUse) {
				oldestKey, oldest = key, v
			}
		}
		if total <= t.maxVariantBytes || oldest == nil {
			return
		}
		delete(t.variants, oldestKey)
		t.stats.evictions++
	}
}

// runBatch executes one dispatched batch on worker id and answers its
// requests. The worker's clock advances by the cost the scheduler
// priced the batch at, starting no earlier than the batch's latest
// simulated arrival — mirroring the EFT model exactly, so the clock
// converges to the scheduler's committed finish times.
func (s *Server) runBatch(id int, job batchJob) {
	n := len(job.reqs)
	b := job.bucket
	if b < n {
		b = n
	}
	var fault BatchFault
	if s.opts.Fault != nil {
		fault = s.opts.Fault(id)
		if fault.StallHostDelay > 0 {
			time.Sleep(fault.StallHostDelay)
		}
	}
	var outs []*tensor.Tensor
	err := fault.Err
	if err == nil {
		v := s.variantFor(job.t, job.class, b)
		if err = v.err; err == nil {
			outs, err = execBatch(v.mod, job.reqs, b)
		}
	}
	s.mu.Lock()
	// Advance the clock by the cost the scheduler committed to its
	// finish-time model — even when execution failed (a priced batch
	// was dispatched and must stay accounted, or sched[worker] would
	// lead the clock forever and bias every later placement away from
	// this worker). Only unpriceable batches (never committed) leave
	// the clock untouched.
	execStart := s.clocks[id]
	if job.priced {
		if job.arrival > execStart {
			execStart = job.arrival
		}
		s.clocks[id] = execStart + job.cost
		s.workerBusy[id] += job.cost
	}
	if fault.StallSimSeconds > 0 {
		// A stalled device stream: the batch (and every later start on
		// this worker) is late by the stall, but no useful work was
		// bought, so busy seconds stay untouched.
		s.clocks[id] += fault.StallSimSeconds
	}
	s.workerBatches[id]++
	if err != nil {
		s.workerFailed[id]++
	}
	doneAt := s.clocks[id]
	device := s.pool.specs[id].DeviceName()
	st := &job.t.stats
	if job.t.removed {
		// The tenant was undeployed while this batch was in flight; its
		// counters were already folded into the retired accumulator, so
		// record there to keep the aggregate exact.
		st = &s.retired
	}
	st.batches++
	st.batchSizes[b]++
	if err != nil {
		st.failedBatches++
	}
	if b > n {
		st.paddedBatches++
		st.paddedRows += int64(b - n)
		s.workerPadded[id]++
	}
	if doneAt > st.simMakespan {
		st.simMakespan = doneAt
	}
	// Per-request stage decomposition: formation (batch arrival −
	// request arrival), queue (execution start − batch arrival), and
	// execute (completion − start, stalls included), nudged so the
	// three sum bit-exactly to the request's SimLatency.
	stages := make([][3]float64, n)
	if err == nil {
		for i, r := range job.reqs {
			lat := doneAt - r.simArrival
			st.lat.add(lat)
			st.priLat[r.priority].add(lat)
			f, q, e := splitStages(lat, job.arrival-r.simArrival, execStart-job.arrival)
			stages[i] = [3]float64{f, q, e}
			st.observeStages(r.priority, f, q, e, lat)
		}
	}
	s.mu.Unlock()
	if s.tr != nil {
		s.trWork[id].Emit(obs.Span{
			Name: obs.KindExecute, Cat: obs.CatBatch, Proc: s.trProc,
			Track: "worker " + strconv.Itoa(id),
			Start: execStart, Dur: doneAt - execStart,
			Args: []obs.Arg{
				{Key: "model", Val: job.t.name},
				{Key: "bucket", Val: b},
				{Key: "rows", Val: n},
				{Key: "padded_rows", Val: b - n},
				{Key: "device", Val: className(device)},
				{Key: "failed", Val: err != nil},
			},
		})
	}
	for i, r := range job.reqs {
		res := Result{
			Err:        err,
			Model:      job.t.name,
			Priority:   r.priority,
			Batch:      b,
			Worker:     id,
			Device:     device,
			SimArrival: r.simArrival,
		}
		if err == nil {
			res.Output = outs[i]
			res.SimLatency = doneAt - r.simArrival
			f, q, e := stages[i][0], stages[i][1], stages[i][2]
			// QueueWait + ExecuteSeconds reproduces SimLatency
			// bit-exactly: splitStages guarantees (f+q)+e == lat.
			res.QueueWait = f + q
			res.ExecuteSeconds = e
			if s.tr != nil {
				s.emitRequestSpans(id, r, res, f, q, e)
			}
		} else if s.tr != nil {
			s.trWork[id].Emit(obs.Span{
				Name: obs.KindRequest, Cat: obs.CatRequest, Proc: s.trProc,
				Track: reqTrack(r.id), Req: r.id,
				Start: r.simArrival, Dur: doneAt - r.simArrival,
				Args: []obs.Arg{
					{Key: "model", Val: job.t.name},
					{Key: "priority", Val: r.priority.String()},
					{Key: "failed", Val: true},
				},
			})
		}
		s.respond(r, res)
	}
}

// reqTrack names a request's Perfetto track.
func reqTrack(id int64) string { return "req " + strconv.FormatInt(id, 10) }

// emitRequestSpans records one delivered request's lifecycle tree: a
// root request span covering arrival → delivery with enqueue /
// dispatch-wait / execute / deliver children tiling it. The children's
// durations are the exact stage decomposition, so their sum equals the
// root's duration bit-for-bit.
func (s *Server) emitRequestSpans(worker int, r *request, res Result, f, q, e float64) {
	sh := s.trWork[worker]
	track := reqTrack(r.id)
	sh.Emit(obs.Span{
		Name: obs.KindRequest, Cat: obs.CatRequest, Proc: s.trProc,
		Track: track, Req: r.id,
		Start: r.simArrival, Dur: res.SimLatency,
		Args: []obs.Arg{
			{Key: "model", Val: res.Model},
			{Key: "priority", Val: r.priority.String()},
			{Key: "bucket", Val: res.Batch},
			{Key: "worker", Val: res.Worker},
			{Key: "device", Val: className(res.Device)},
		},
	})
	t0 := r.simArrival
	t1 := t0 + f
	t2 := t1 + q
	sh.Emit(obs.Span{
		Name: obs.KindEnqueue, Cat: obs.CatRequest, Proc: s.trProc,
		Track: track, Req: r.id, Start: t0, Dur: f,
		Args: []obs.Arg{{Key: "stage", Val: stageNames[stageFormation]}},
	})
	sh.Emit(obs.Span{
		Name: obs.KindDispatch, Cat: obs.CatRequest, Proc: s.trProc,
		Track: track, Req: r.id, Start: t1, Dur: q,
		Args: []obs.Arg{{Key: "stage", Val: stageNames[stageQueue]}},
	})
	sh.Emit(obs.Span{
		Name: obs.KindExecute, Cat: obs.CatRequest, Proc: s.trProc,
		Track: track, Req: r.id, Start: t2, Dur: e,
		Args: []obs.Arg{{Key: "stage", Val: stageNames[stageExecute]}},
	})
	sh.Emit(obs.Span{
		Name: obs.KindDeliver, Cat: obs.CatRequest, Proc: s.trProc,
		Track: track, Req: r.id, Start: t2 + e, Dur: 0,
		Args: []obs.Arg{{Key: "stage", Val: stageNames[stageDeliver]}},
	})
}

// execBatch stacks the requests' inputs into batch tensors (zero-padded
// to bucket rows when the planner chose a larger variant), runs the
// variant on a pooled execution state, and splits the real rows back
// into per-request tensors — padding rows never reach a caller, and the
// real rows are bit-identical to an unpadded run because every operator
// is row-independent along the batch dimension. Runtime panics (shape
// mismatches surface that way in this codebase) are converted into
// request errors rather than taking the worker down.
func execBatch(mod *rt.Module, reqs []*request, bucket int) (outs []*tensor.Tensor, err error) {
	defer func() {
		if p := recover(); p != nil {
			outs, err = nil, fmt.Errorf("serve: batch execution failed: %v", p)
		}
	}()
	n := len(reqs)
	batchIn := make(map[string]*tensor.Tensor, len(reqs[0].inputs))
	for name := range reqs[0].inputs {
		var stacked *tensor.Tensor
		if n == 1 {
			stacked = reqs[0].inputs[name]
		} else {
			samples := make([]*tensor.Tensor, len(reqs))
			for i, r := range reqs {
				s, ok := r.inputs[name]
				if !ok {
					return nil, fmt.Errorf("serve: request %d in batch is missing input %q", i, name)
				}
				samples[i] = s
			}
			stacked = tensor.StackBatch(samples)
		}
		if bucket > n {
			stacked = tensor.PadBatch(stacked, bucket)
		}
		batchIn[name] = stacked
	}
	outs = make([]*tensor.Tensor, n)
	if bucket > n {
		// Padded run: RunRows strips the output back to the real rows
		// (pooled state handled inside, like Run).
		out := mod.RunRows(batchIn, n)
		for i := range reqs {
			outs[i] = tensor.SliceBatch(out, i)
		}
		return outs, nil
	}
	if mod.Plan == nil {
		// Hand-built module without a memory plan: clone-based path.
		out := mod.Run(batchIn)
		for i := range reqs {
			outs[i] = tensor.SliceBatch(out, i)
		}
		return outs, nil
	}
	st := mod.AcquireState()
	// Deferred so a recovered execution panic still re-pools the state
	// (ReleaseState drops the aborted run's input references).
	defer mod.ReleaseState(st)
	view := mod.RunOn(st, batchIn)
	for i := range reqs {
		outs[i] = tensor.SliceBatch(view, i)
	}
	return outs, nil
}
