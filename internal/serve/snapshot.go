package serve

import (
	"strconv"

	"bolt/internal/obs"
)

// This file is the server's metrics exposition: Snapshot renders the
// always-on counters and stage-latency histograms as sorted text (one
// metric row per line, Prometheus-style histogram rows), built from a
// fresh obs.Registry on each call. FillRegistry exposes the same rows
// for aggregation — the fleet layer fills one registry from every
// replica, so counters add and histograms merge into a fleet-wide
// exposition.

// Snapshot renders the server's metrics as a deterministic text
// exposition: request/batch counters, per-worker device rows, the
// per-stage latency histograms (formation wait / queue wait / execute
// / deliver), per-priority stage sums, and histogram-backed
// end-to-end latency percentiles. It reflects everything the server
// has ever served (undeployed tenants included) and works whether or
// not tracing is enabled.
func (s *Server) Snapshot() string {
	reg := obs.NewRegistry()
	s.FillRegistry(reg)
	return reg.Render()
}

// FillRegistry adds the server's metric rows into reg. Filling several
// servers into one registry aggregates them: counters add, gauges keep
// their maximum, histograms merge.
func (s *Server) FillRegistry(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// One lifetime accumulator: retired tenants plus the live ones.
	var reqs, batches, failed, evict, padB, padR int64
	addCounters := func(ts *tenantStats) {
		reqs += ts.requests
		batches += ts.batches
		failed += ts.failedBatches
		evict += ts.evictions
		padB += ts.paddedBatches
		padR += ts.paddedRows
	}
	addCounters(&s.retired)
	for _, t := range s.order {
		addCounters(&t.stats)
	}
	reg.Counter("requests_total", nil, float64(reqs))
	reg.Counter("batches_total", nil, float64(batches))
	reg.Counter("failed_batches_total", nil, float64(failed))
	reg.Counter("evictions_total", nil, float64(evict))
	reg.Counter("padded_batches_total", nil, float64(padB))
	reg.Counter("padded_rows_total", nil, float64(padR))
	reg.Gauge("pending_requests", nil, float64(s.pendingTotal))
	reg.Gauge("backlog_seconds", nil, s.backlogLocked())
	var makespan float64
	for w, c := range s.clocks {
		if c > makespan {
			makespan = c
		}
		wl := obs.L("worker", strconv.Itoa(w), "device", className(s.pool.specs[w].DeviceName()))
		reg.Counter("worker_batches_total", wl, float64(s.workerBatches[w]))
		reg.Counter("worker_busy_seconds_total", wl, s.workerBusy[w])
	}
	reg.Gauge("sim_makespan_seconds", nil, makespan)

	each := func(fn func(ts *tenantStats)) {
		fn(&s.retired)
		for _, t := range s.order {
			fn(&t.stats)
		}
	}
	for stage := 0; stage < numStages; stage++ {
		each(func(ts *tenantStats) {
			if ts.stageHist[stage].Count() > 0 {
				reg.Histogram("stage_seconds", obs.L("stage", stageNames[stage]), ts.stageHist[stage])
			}
		})
	}
	for _, pri := range priorityOrder {
		pl := obs.L("priority", pri.String())
		each(func(ts *tenantStats) {
			if ts.latHist[pri].Count() > 0 {
				reg.Histogram("latency_seconds", pl, ts.latHist[pri])
			}
			b := ts.stages[pri]
			if b.Count == 0 {
				return
			}
			reg.Counter("stage_requests_total", pl, float64(b.Count))
			reg.Counter("stage_formation_wait_seconds_total", pl, b.FormationWait)
			reg.Counter("stage_queue_wait_seconds_total", pl, b.QueueWait)
			reg.Counter("stage_execute_seconds_total", pl, b.Execute)
			reg.Counter("stage_deliver_seconds_total", pl, b.Deliver)
			reg.Counter("latency_seconds_total", pl, b.Latency)
		})
	}
}
