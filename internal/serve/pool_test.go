package serve

import (
	"math"
	"testing"
	"time"

	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// fakeVariantOn is fakeVariant with the module bound to the target
// device, so its modeled batch cost (Module.Time) differs by device
// class: the same kernel descriptor prices faster on an A100 than on a
// T4.
func fakeVariantOn(dev *gpu.Device, batch int) (*rt.Module, error) {
	mod, err := fakeVariant(batch)
	if err != nil {
		return nil, err
	}
	if dev != nil {
		mod.Device = dev
	}
	return mod, nil
}

// TestNewPoolGroupsClasses pins the device-class grouping: same-name
// devices share a class, nil devices form the anonymous class, and
// classes appear in first-appearance order.
func TestNewPoolGroupsClasses(t *testing.T) {
	t4a, t4b, a100 := gpu.T4(), gpu.T4(), gpu.A100()
	p := newPool(4, []*gpu.Device{t4a, a100, t4b, a100})
	if len(p.classes) != 2 {
		t.Fatalf("got %d classes, want 2 (T4 instances share one)", len(p.classes))
	}
	if p.classes[0].name != t4a.Name || p.classes[1].name != a100.Name {
		t.Errorf("class order %q/%q, want first-appearance T4 then A100",
			p.classes[0].name, p.classes[1].name)
	}
	if got := p.classOf; got[0] != 0 || got[1] != 1 || got[2] != 0 || got[3] != 1 {
		t.Errorf("classOf = %v, want [0 1 0 1]", got)
	}

	anon := newPool(3, nil)
	if len(anon.classes) != 1 || anon.classes[0].dev != nil || anon.classes[0].name != "" {
		t.Errorf("homogeneous pool classes = %+v, want one anonymous class", anon.classes)
	}
}

// TestPlaceEFTDeterministicTieBreak pins the placement policy: equal
// finish times go to the lowest worker index (so a homogeneous pool
// with equal costs degenerates to round-robin), equal finish times
// across classes prefer the class with a live compiled variant, and
// the whole sequence is reproducible.
func TestPlaceEFTDeterministicTieBreak(t *testing.T) {
	// Homogeneous 3-worker pool, equal costs: round-robin emerges.
	p := newPool(3, nil)
	var seq []int
	for i := 0; i < 6; i++ {
		pl := p.place([]float64{2}, []bool{true}, 0)
		p.commit(pl)
		seq = append(seq, pl.worker)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("homogeneous placement sequence %v, want %v", seq, want)
		}
	}

	// Two classes, equal cost and equal clocks: the tie must go to the
	// class whose variant is already compiled, not the lower index.
	p2 := newPool(2, []*gpu.Device{gpu.T4(), gpu.A100()})
	pl := p2.place([]float64{5, 5}, []bool{false, true}, 0)
	if pl.worker != 1 {
		t.Errorf("tie with only class 1 compiled placed on worker %d, want 1", pl.worker)
	}
	// Both compiled: lowest index wins.
	pl = p2.place([]float64{5, 5}, []bool{true, true}, 0)
	if pl.worker != 0 {
		t.Errorf("full tie placed on worker %d, want 0", pl.worker)
	}

	// An unpriceable class (+Inf) loses to any finite class...
	pl = p2.place([]float64{math.Inf(1), 9}, []bool{false, false}, 0)
	if pl.worker != 1 {
		t.Errorf("infinite-cost class won placement: worker %d", pl.worker)
	}
	// ...and when every class is infinite, worker 0 surfaces the error
	// without corrupting the finish-time model.
	before := append([]float64(nil), p2.sched...)
	pl = p2.place([]float64{math.Inf(1), math.Inf(1)}, []bool{false, false}, 0)
	p2.commit(pl)
	if pl.worker != 0 {
		t.Errorf("all-infinite placement on worker %d, want 0", pl.worker)
	}
	for w := range before {
		if p2.sched[w] != before[w] {
			t.Errorf("commit of unpriceable batch moved sched[%d] from %g to %g", w, before[w], p2.sched[w])
		}
	}
}

// TestPlaceEFTKeepsFastDeviceBusy pins the ISSUE-5 dispatch property:
// on a mixed pool the fast device is never left idle while a full
// bucket waits — every batch goes to the worker whose modeled finish
// time is smallest, so the work split tracks the classes' cost ratio.
func TestPlaceEFTKeepsFastDeviceBusy(t *testing.T) {
	p := newPool(2, []*gpu.Device{gpu.T4(), gpu.A100()})
	costs := []float64{3, 1} // T4 class 3x slower than A100 class
	live := []bool{true, true}
	counts := make([]int, 2)
	for i := 0; i < 12; i++ {
		// The invariant: the chosen worker's finish time is the minimum
		// over all workers.
		pl := p.place(costs, live, 0)
		for w := range p.sched {
			if alt := p.sched[w] + costs[p.classOf[w]]; alt < pl.finish {
				t.Fatalf("batch %d placed at finish %g while worker %d would finish at %g", i, pl.finish, w, alt)
			}
		}
		p.commit(pl)
		counts[pl.worker]++
	}
	if counts[1] <= counts[0] {
		t.Errorf("A100 ran %d batches vs T4's %d, want the fast class to absorb more", counts[1], counts[0])
	}
	// With a 3:1 cost ratio over 12 batches the steady-state split is
	// 3 T4 : 9 A100 (finish times interleave exactly).
	if counts[0] != 3 || counts[1] != 9 {
		t.Errorf("split %v, want [3 9] for a 3:1 cost ratio", counts)
	}
}

// TestServerHeteroDispatchAndDeviceStats runs a real mixed-device
// server over the fake variant: the A100 class must absorb more
// batches than the T4 class, per-device stats must sum to the
// aggregate, and results must carry the serving device's name.
func TestServerHeteroDispatchAndDeviceStats(t *testing.T) {
	t4, a100 := gpu.T4(), gpu.A100()
	s := NewServer(ServerOptions{Devices: []*gpu.Device{t4, a100}})
	defer s.Close()
	if err := s.DeployOn("m", fakeVariantOn, DeployOptions{Buckets: []int{1, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	const requests = 64
	chans := make([]<-chan Result, requests)
	for i := range chans {
		ch, err := s.InferAsync("m", sampleInput(int64(i+1)), InferOptions{Priority: PriorityBulk})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	perDevice := map[string]int{}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Device == "" {
			t.Fatalf("request %d served without a device name", i)
		}
		perDevice[res.Device]++
		want := sampleInput(int64(i + 1))["x"]
		for j, v := range want.Data() {
			if res.Output.Data()[j] != v+1 {
				t.Fatalf("request %d wrong output", i)
			}
		}
	}
	if perDevice[a100.Name] < perDevice[t4.Name] {
		t.Errorf("A100 served %d requests vs T4's %d, want the fast device to absorb at least as many",
			perDevice[a100.Name], perDevice[t4.Name])
	}
	agg := s.Stats()
	if len(agg.Devices) != 2 {
		t.Fatalf("got %d device rows, want 2", len(agg.Devices))
	}
	var batches int64
	var share float64
	for _, d := range agg.Devices {
		batches += d.Batches
		share += d.UtilizationShare
		if d.Batches > 0 && d.BusySeconds <= 0 {
			t.Errorf("worker %d (%s) ran %d batches with zero busy time", d.Worker, d.Device, d.Batches)
		}
		if d.SimMakespan > agg.SimMakespan {
			t.Errorf("worker %d makespan %g exceeds aggregate %g", d.Worker, d.SimMakespan, agg.SimMakespan)
		}
	}
	if batches != agg.Batches {
		t.Errorf("per-device batches sum to %d, aggregate says %d", batches, agg.Batches)
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("utilization shares sum to %g, want 1", share)
	}
}

// TestServerSimArrivalSemantics pins the arrival-process satellite: a
// worker cannot start a batch before its latest member arrived, and
// SimLatency is completion minus arrival — so an idle server's request
// latency is just its batch cost, regardless of how late it arrives.
func TestServerSimArrivalSemantics(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{Buckets: []int{1}}); err != nil {
		t.Fatal(err)
	}
	// First request: flood semantics (arrival 0).
	r0, err := s.InferAsync("m", sampleInput(1), InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res0 := <-r0
	if res0.Err != nil {
		t.Fatal(res0.Err)
	}
	cost := res0.SimLatency
	if cost <= 0 {
		t.Fatalf("flood request latency %g, want > 0", cost)
	}
	// Second request arrives at sim t=5s, far beyond the first batch's
	// completion: the worker idles until then, so latency stays ~cost
	// while the makespan jumps past the arrival.
	r1, err := s.InferAsync("m", sampleInput(2), InferOptions{SimArrival: 5})
	if err != nil {
		t.Fatal(err)
	}
	res1 := <-r1
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	if res1.SimArrival != 5 {
		t.Errorf("SimArrival echoed as %g, want 5", res1.SimArrival)
	}
	if math.Abs(res1.SimLatency-cost) > 1e-12 {
		t.Errorf("idle-server latency %g, want the batch cost %g (completion minus arrival)", res1.SimLatency, cost)
	}
	if st := s.Stats(); st.SimMakespan < 5 {
		t.Errorf("makespan %g, want >= the 5s arrival the worker waited for", st.SimMakespan)
	}
	// Negative arrivals clamp to the flood default.
	r2, err := s.InferAsync("m", sampleInput(3), InferOptions{SimArrival: -3})
	if err != nil {
		t.Fatal(err)
	}
	if res2 := <-r2; res2.SimArrival != 0 {
		t.Errorf("negative SimArrival echoed as %g, want clamped 0", res2.SimArrival)
	}
}

// TestServerVariantEvictionLRU pins the eviction satellite: with a
// tiny per-class budget, warming several buckets evicts the
// least-recently-used variants (counted in Stats), while serving still
// works — evicted variants recompile on demand.
func TestServerVariantEvictionLRU(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{
		Buckets:         []int{1, 2, 4},
		MaxVariantBytes: 1, // smaller than any variant: at most one survives
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	st, _ := s.ModelStats("m")
	if st.Evictions < 2 {
		t.Errorf("evictions = %d after warming 3 buckets into a 1-byte budget, want >= 2", st.Evictions)
	}
	if len(st.Variants) > 1 {
		t.Errorf("live variants %v, want at most one under the budget", st.Variants)
	}
	// Serving an evicted bucket recompiles and still answers correctly.
	out, err := s.Infer("m", sampleInput(9), InferOptions{Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleInput(9)["x"]
	for i, v := range want.Data() {
		if out.Data()[i] != v+1 {
			t.Fatalf("post-eviction output wrong at %d", i)
		}
	}
	if agg := s.Stats(); agg.Evictions != st.Evictions && agg.Evictions < st.Evictions {
		t.Errorf("aggregate evictions %d lost the per-model count %d", agg.Evictions, st.Evictions)
	}
}

// TestServerSingleDevicePoolMatchesWorkers pins the migration
// guarantee: a Devices pool with one entry serves exactly like the
// legacy Workers form — same outputs, same batch histogram, and its
// single device row accounts for all batches.
func TestServerSingleDevicePoolMatchesWorkers(t *testing.T) {
	run := func(opts ServerOptions) (map[int]int64, []float64) {
		s := NewServer(opts)
		defer s.Close()
		if err := s.DeployOn("m", fakeVariantOn, DeployOptions{
			Buckets: []int{1, 2, 4}, BatchWindow: 20 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		outs := make([]float64, 0, 8)
		chans := make([]<-chan Result, 8)
		for i := range chans {
			ch, err := s.InferAsync("m", sampleInput(int64(i+1)), InferOptions{Priority: PriorityBulk})
			if err != nil {
				t.Fatal(err)
			}
			chans[i] = ch
		}
		for _, ch := range chans {
			res := <-ch
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			outs = append(outs, float64(res.Output.Data()[0]))
		}
		return s.Stats().BatchSizes, outs
	}
	legacyBatches, legacyOuts := run(ServerOptions{Workers: 1})
	poolBatches, poolOuts := run(ServerOptions{Devices: []*gpu.Device{gpu.T4()}})
	for i := range legacyOuts {
		if legacyOuts[i] != poolOuts[i] {
			t.Fatalf("output %d differs between Workers form (%g) and single-device pool (%g)",
				i, legacyOuts[i], poolOuts[i])
		}
	}
	for k, v := range legacyBatches {
		if poolBatches[k] != v {
			t.Errorf("batch histogram differs: legacy %v vs pool %v", legacyBatches, poolBatches)
			break
		}
	}
}

// The fake module graphs must be plannable, or eviction sizing
// (Module.Memory) would panic; pin that assumption here so a change to
// fakeVariant fails loudly.
func TestFakeVariantIsPlannable(t *testing.T) {
	mod, err := fakeVariant(2)
	if err != nil {
		t.Fatal(err)
	}
	if plan := relay.PlanMemory(mod.Graph); plan == nil {
		t.Fatal("fake module graph did not plan")
	}
	if mod.Memory().PlannedArenaBytes <= 0 {
		t.Error("fake module reports a zero-byte arena; eviction sizing would be vacuous")
	}
	_ = tensor.Shape{} // keep the tensor import pinned alongside relay
}
