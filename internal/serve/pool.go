package serve

import (
	"math"

	"bolt/internal/gpu"
)

// This file is the heterogeneous device pool: the scheduler's view of
// the worker topology when a server's workers model different GPUs
// (ServerOptions.Devices). Workers that model the same device are
// grouped into one device class — they share compiled variants and
// modeled batch costs, since the tuning-log keys are device-scoped and
// a variant compiled for one T4 stream is exactly the variant every
// other T4 stream would compile. Dispatch is cost-aware earliest
// finish time (EFT): each ready batch is priced on every device class
// via the compiled variant's modeled batch cost, and goes to the
// worker whose modeled finish time (clock + cost) is smallest. Big
// buckets therefore gravitate to the fast device while small batches
// keep the slower streams busy, and the whole placement sequence is
// deterministic — the pool's finish-time model is owned by the
// scheduler goroutine and advanced at dispatch, never read from the
// racy execution clocks.

// WorkerSpec describes one worker of the pool: the device it models.
// A nil Device is the legacy homogeneous stream (ServerOptions.Workers
// without Devices): all such workers form one anonymous class and
// variants compile exactly as before the pool existed.
type WorkerSpec struct {
	Device *gpu.Device
}

// DeviceName names the worker's device ("" for an anonymous
// homogeneous stream).
func (w WorkerSpec) DeviceName() string {
	if w.Device == nil {
		return ""
	}
	return w.Device.Name
}

// deviceClass is one group of same-device workers. Variants and batch
// costs are cached per class, not per worker.
type deviceClass struct {
	id   int
	dev  *gpu.Device // nil for the anonymous homogeneous class
	name string
}

// pool is the worker topology plus the scheduler's modeled finish time
// per worker. sched is written only by the scheduler goroutine (at
// dispatch), so EFT placement needs no locking and cannot race with
// the workers' execution clocks: sched[w] leads clocks[w] by exactly
// the batches dispatched-but-not-finished, and the two converge to the
// same value because both advance by the same job costs in the same
// per-worker FIFO order.
type pool struct {
	specs   []WorkerSpec
	classes []deviceClass
	classOf []int     // worker index -> class id
	sched   []float64 // modeled finish time per worker (scheduler-owned)
}

// newPool groups workers into device classes in first-appearance
// order. devices may be shorter than workers (or empty): workers
// beyond it model no device and join the anonymous class.
func newPool(workers int, devices []*gpu.Device) *pool {
	p := &pool{
		specs:   make([]WorkerSpec, workers),
		classOf: make([]int, workers),
		sched:   make([]float64, workers),
	}
	byName := make(map[string]int)
	for w := range p.specs {
		var dev *gpu.Device
		if w < len(devices) {
			dev = devices[w]
		}
		p.specs[w].Device = dev
		name := p.specs[w].DeviceName()
		id, ok := byName[name]
		if !ok {
			id = len(p.classes)
			byName[name] = id
			p.classes = append(p.classes, deviceClass{id: id, dev: dev, name: name})
		}
		p.classOf[w] = id
	}
	return p
}

// placement is one EFT decision.
type placement struct {
	worker int
	class  int
	finish float64 // modeled completion time of the batch on that worker
}

// place picks the earliest-finish-time worker for a batch that arrived
// at the given simulated time: finish(w) = max(sched[w], arrival) +
// costs[classOf[w]]. Ties prefer a class whose variant is already
// compiled (live[class]) — no point paying a compile on an equally
// fast device — and then the lowest worker index, so the sequence is
// deterministic. A class priced at +Inf (its variant failed to
// compile) is only chosen when every class is infinite, in which case
// worker 0 takes the batch and surfaces the compile error.
func (p *pool) place(costs []float64, live []bool, arrival float64) placement {
	return p.placeOn(p.sched, costs, live, arrival)
}

// placeOn is the placement rule over an explicit finish-time vector,
// so the padded-dispatch planner can simulate hypothetical placements
// on a scratch copy of sched without committing anything. A nil live
// treats every class as uncompiled (the tie-break then falls straight
// to the lowest worker index, which is all a what-if preview needs).
func (p *pool) placeOn(sched []float64, costs []float64, live []bool, arrival float64) placement {
	best := placement{worker: -1, finish: math.Inf(1)}
	for w := range p.specs {
		c := p.classOf[w]
		start := sched[w]
		if arrival > start {
			start = arrival
		}
		finish := start + costs[c]
		switch {
		case best.worker < 0 || finish < best.finish:
			best = placement{worker: w, class: c, finish: finish}
		case finish == best.finish && live != nil && live[c] && !live[best.class]:
			best = placement{worker: w, class: c, finish: finish}
		}
	}
	return best
}

// previewFinish returns the modeled EFT completion of one hypothetical
// batch without committing it — what the padded-dispatch planner uses
// to price "run these rows padded on the larger bucket, now".
func (p *pool) previewFinish(costs []float64, arrival float64) float64 {
	return p.placeOn(p.sched, costs, nil, arrival).finish
}

// chainFinish simulates greedily EFT-placing a sequence of batches
// (each with its own per-class costs and arrival), committing each
// placement to a scratch copy of sched, and returns the chain's
// makespan. This is the strict-bucket counterfactual the planner
// compares a padded dispatch against: without padding, n pending rows
// drain as a greedy chain of exact buckets, each link placed by the
// same EFT rule the real dispatcher uses.
func (p *pool) chainFinish(costSets [][]float64, arrivals []float64) float64 {
	scratch := append([]float64(nil), p.sched...)
	finish := 0.0
	for i, costs := range costSets {
		pl := p.placeOn(scratch, costs, nil, arrivals[i])
		if !math.IsInf(pl.finish, 1) {
			scratch[pl.worker] = pl.finish
		}
		if pl.finish > finish {
			finish = pl.finish
		}
	}
	return finish
}

// minSched returns the smallest modeled finish time across the pool —
// the first moment any worker frees up, which continuous batch
// formation uses as "when could this batch start".
func (p *pool) minSched() float64 {
	m := p.sched[0]
	for _, v := range p.sched[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// commit advances the scheduler's finish-time model for a placed
// batch. Skipped for unpriceable (failed-compile) batches, whose
// execution advances no clock either.
func (p *pool) commit(pl placement) {
	if !math.IsInf(pl.finish, 1) {
		p.sched[pl.worker] = pl.finish
	}
}
