package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// fakeVariant builds a hand-made two-kernel module (input -> x+1) at
// the given batch, so engine mechanics are testable without the
// compilation pipeline. The launch desc gives batches a modeled cost,
// so simulated clocks advance.
func fakeVariant(batch int) (*rt.Module, error) {
	in := &relay.Node{ID: 0, Op: relay.OpInput, Name: "x",
		Shape: tensor.Shape{batch, 4}, DType: tensor.FP32}
	add := &relay.Node{ID: 1, Op: relay.OpActivation, Inputs: []*relay.Node{in},
		Shape: tensor.Shape{batch, 4}, DType: tensor.FP32}
	g := &relay.Graph{Nodes: []*relay.Node{in, add}, Inputs: []*relay.Node{in}, Output: add}
	return &rt.Module{
		Graph:  g,
		Device: gpu.T4(),
		Kernels: []rt.Kernel{
			{Name: "in", Node: in, Slot: 0,
				Exec: func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor { return env.Input("x") }},
			{Name: "add1", Node: add, Slot: 1, Launches: 1,
				Desc: rt.ElementwiseLikeDesc("add1", batch*4, 1, 1, tensor.FP32),
				Exec: func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
					x := env.Value(0)
					out := x.Clone()
					for i, v := range x.Data() {
						out.Data()[i] = v + 1
					}
					return out
				}},
		},
	}, nil
}

func sampleInput(seed int64) map[string]*tensor.Tensor {
	in := tensor.New(tensor.FP32, 1, 4)
	in.FillRandom(seed, 1)
	return map[string]*tensor.Tensor{"x": in}
}

func TestEngineInferAddsOne(t *testing.T) {
	e, err := New(fakeVariant, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	in := sampleInput(7)
	out, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in["x"].Data() {
		if out.Data()[i] != v+1 {
			t.Fatalf("out[%d] = %g, want %g", i, out.Data()[i], v+1)
		}
	}
	if !out.Shape().Equal(tensor.Shape{1, 4}) {
		t.Errorf("output shape %v, want (1, 4)", out.Shape())
	}
}

func TestEngineBatchesFlood(t *testing.T) {
	e, err := New(fakeVariant, Options{
		Buckets: []int{1, 2, 4}, Workers: 2, BatchWindow: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const n = 8
	chans := make([]<-chan Result, n)
	inputs := make([]map[string]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		inputs[i] = sampleInput(int64(i + 1))
		ch, err := e.InferAsync(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		for j, v := range inputs[i]["x"].Data() {
			if res.Output.Data()[j] != v+1 {
				t.Fatalf("request %d slot %d: got %g want %g", i, j, res.Output.Data()[j], v+1)
			}
		}
		if res.SimLatency <= 0 {
			t.Error("simulated latency must be positive")
		}
	}
	st := e.Stats()
	if st.Requests != n {
		t.Errorf("requests %d, want %d", st.Requests, n)
	}
	if st.BatchSizes[4] == 0 {
		t.Errorf("flood of %d should have produced a bucket-4 batch: %v", n, st.BatchSizes)
	}
	if st.SimMakespan <= 0 || st.Throughput() <= 0 {
		t.Errorf("bad makespan/throughput: %+v", st)
	}
	if st.LatencyPercentile(99) < st.LatencyPercentile(50) {
		t.Error("p99 below p50")
	}
}

func TestEngineCompileErrorPropagates(t *testing.T) {
	boom := errors.New("no such variant")
	e, err := New(func(batch int) (*rt.Module, error) {
		if batch > 1 {
			return nil, boom
		}
		return fakeVariant(batch)
	}, Options{Buckets: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Warm(2); !errors.Is(err, boom) {
		t.Errorf("Warm error %v, want %v", err, boom)
	}
	// Bucket 1 still serves.
	if _, err := e.Infer(sampleInput(1)); err != nil {
		t.Errorf("bucket-1 request failed: %v", err)
	}
}

func TestEngineExecPanicBecomesError(t *testing.T) {
	e, err := New(fakeVariant, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Wrong input name: env.Input panics inside the kernel; the worker
	// must answer with an error, not die.
	bad := map[string]*tensor.Tensor{"nope": tensor.New(tensor.FP32, 1, 4)}
	if _, err := e.Infer(bad); err == nil {
		t.Fatal("bad input should error")
	}
	// The engine is still alive afterwards.
	if _, err := e.Infer(sampleInput(3)); err != nil {
		t.Fatalf("engine wedged after panic: %v", err)
	}
}

func TestEngineCloseRejectsAndDrains(t *testing.T) {
	e, err := New(fakeVariant, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Infer(sampleInput(int64(i))); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	e.Close()
	e.Close() // idempotent
	if _, err := e.Infer(sampleInput(99)); !errors.Is(err, ErrClosed) {
		t.Errorf("Infer after Close = %v, want ErrClosed", err)
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{Buckets: []int{8, 4, 8, 0, -3}}.normalized()
	want := []int{1, 4, 8}
	if fmt.Sprint(o.Buckets) != fmt.Sprint(want) {
		t.Errorf("buckets %v, want %v", o.Buckets, want)
	}
	if o.Workers != 1 || o.QueueDepth != 1024 {
		t.Errorf("defaults wrong: %+v", o)
	}
}
