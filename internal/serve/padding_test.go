package serve

import (
	"testing"

	"bolt/internal/gpu"
	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// costVariant builds the fakeVariant module with an arbitrary modeled
// kernel size per batch, so tests can shape the bucket ladder's cost
// curve (e.g. make the bucket-2 variant cheaper than bucket 1 to force
// a padded dispatch, or exactly equal to pin tie-breaking).
func costVariant(elems func(batch int) int) CompileVariant {
	return func(batch int) (*rt.Module, error) {
		in := &relay.Node{ID: 0, Op: relay.OpInput, Name: "x",
			Shape: tensor.Shape{batch, 4}, DType: tensor.FP32}
		add := &relay.Node{ID: 1, Op: relay.OpActivation, Inputs: []*relay.Node{in},
			Shape: tensor.Shape{batch, 4}, DType: tensor.FP32}
		g := &relay.Graph{Nodes: []*relay.Node{in, add}, Inputs: []*relay.Node{in}, Output: add}
		return &rt.Module{
			Graph:  g,
			Device: gpu.T4(),
			Kernels: []rt.Kernel{
				{Name: "in", Node: in, Slot: 0,
					Exec: func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor { return env.Input("x") }},
				{Name: "add1", Node: add, Slot: 1, Launches: 1,
					Desc: rt.ElementwiseLikeDesc("add1", elems(batch), 1, 1, tensor.FP32),
					Exec: func(env *rt.Env, dst *tensor.Tensor) *tensor.Tensor {
						x := env.Value(0)
						out := x.Clone()
						for i, v := range x.Data() {
							out.Data()[i] = v + 1
						}
						return out
					}},
			},
		}, nil
	}
}

// TestPaddedDispatchBeatsStrict forces the padded plan: the bucket-2
// variant is modeled cheaper than bucket 1, so a lone high-priority
// request must run zero-padded on bucket 2, produce the same output,
// and be counted by the padded stats.
func TestPaddedDispatchBeatsStrict(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	cheap2 := func(batch int) int {
		if batch >= 2 {
			return 1 << 20
		}
		return 1 << 22
	}
	if err := s.Deploy("m", costVariant(cheap2), DeployOptions{
		Buckets: []int{1, 2}, AllowPadding: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	in := sampleInput(3)
	ch, err := s.InferAsync("m", in, InferOptions{Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Batch != 2 {
		t.Errorf("batch %d, want the padded bucket 2", res.Batch)
	}
	for i, v := range in["x"].Data() {
		if res.Output.Data()[i] != v+1 {
			t.Fatalf("padded output[%d] = %g, want %g", i, res.Output.Data()[i], v+1)
		}
	}
	if !res.Output.Shape().Equal(tensor.Shape{1, 4}) {
		t.Errorf("padded output shape %v, want (1, 4)", res.Output.Shape())
	}
	st, _ := s.ModelStats("m")
	if st.PaddedBatches != 1 || st.PaddedRows != 1 {
		t.Errorf("padded batches/rows = %d/%d, want 1/1", st.PaddedBatches, st.PaddedRows)
	}
	if st.BatchSizes[2] != 1 || st.BatchSizes[1] != 0 {
		t.Errorf("batch histogram %v, want the one batch under bucket 2", st.BatchSizes)
	}
}

// TestPaddedTieKeepsStrict pins the tie-break: when the padded and
// strict plans price identically, the strict plan must win — on every
// run, so enabling padding cannot make a cost-neutral schedule flap.
func TestPaddedTieKeepsStrict(t *testing.T) {
	flat := func(int) int { return 1 << 20 }
	for run := 0; run < 2; run++ {
		s := NewServer(ServerOptions{Workers: 1})
		if err := s.Deploy("m", costVariant(flat), DeployOptions{
			Buckets: []int{1, 2}, AllowPadding: true,
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Warm("m"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Infer("m", sampleInput(5), InferOptions{Priority: PriorityHigh}); err != nil {
			t.Fatal(err)
		}
		st, _ := s.ModelStats("m")
		if st.PaddedBatches != 0 || st.PaddedRows != 0 {
			t.Errorf("run %d: tie padded %d batches/%d rows, want strict (0/0)", run, st.PaddedBatches, st.PaddedRows)
		}
		if st.BatchSizes[1] != 1 || st.BatchSizes[2] != 0 {
			t.Errorf("run %d: batch histogram %v, want exactly one bucket-1 batch", run, st.BatchSizes)
		}
		s.Close()
	}
}

// TestContinuousFormationMarginalGain drives formBatchLocked directly:
// simultaneous arrivals are absorbed as long as a row's marginal batch
// cost stays below a single-row launch, while an arrival far in the
// simulated future (a huge extra wait for the rows already formed) must
// stop the scan.
func TestContinuousFormationMarginalGain(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{
		Buckets: []int{1, 2, 4, 8}, ContinuousBatching: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	tn := s.tenants["m"]
	flood := []*request{{simArrival: 0}, {simArrival: 0}, {simArrival: 0}, {simArrival: 0}, {simArrival: 0}}
	got := s.formBatchLocked(tn, flood)
	s.mu.Unlock()
	if got != len(flood) {
		t.Errorf("flood of %d simultaneous rows formed %d, want all absorbed (elementwise marginal cost < one launch)", len(flood), got)
	}
	s.mu.Lock()
	late := []*request{{simArrival: 0}, {simArrival: 0}, {simArrival: 1000}}
	got = s.formBatchLocked(tn, late)
	s.mu.Unlock()
	if got != 2 {
		t.Errorf("formation over a 1000s-late third arrival took %d rows, want 2 (extra wait dwarfs the saved launch)", got)
	}
}

// TestPaddedStatsSummation checks the padded counters line up across
// every view: per-model, per-device, and the aggregate — including
// traffic of a model that has since been undeployed (retired counters).
func TestPaddedStatsSummation(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 2})
	defer s.Close()
	cheap2 := func(batch int) int {
		if batch >= 2 {
			return 1 << 20
		}
		return 1 << 22
	}
	for _, name := range []string{"a", "b"} {
		if err := s.Deploy(name, costVariant(cheap2), DeployOptions{
			Buckets: []int{1, 2}, AllowPadding: true,
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Warm(name); err != nil {
			t.Fatal(err)
		}
	}
	const perModel = 3
	for i := 0; i < perModel; i++ {
		for _, name := range []string{"a", "b"} {
			if _, err := s.Infer(name, sampleInput(int64(i+1)), InferOptions{Priority: PriorityHigh}); err != nil {
				t.Fatal(err)
			}
		}
	}
	stA, _ := s.ModelStats("a")
	stB, _ := s.ModelStats("b")
	if stA.PaddedBatches != perModel || stB.PaddedBatches != perModel {
		t.Fatalf("per-model padded batches %d/%d, want %d each", stA.PaddedBatches, stB.PaddedBatches, perModel)
	}
	if err := s.Undeploy("a"); err != nil {
		t.Fatal(err)
	}
	agg := s.Stats()
	if agg.PaddedBatches != 2*perModel || agg.PaddedRows != 2*perModel {
		t.Errorf("aggregate padded %d batches/%d rows, want %d/%d (undeployed traffic stays counted)",
			agg.PaddedBatches, agg.PaddedRows, 2*perModel, 2*perModel)
	}
	var devSum int64
	for _, d := range agg.Devices {
		devSum += d.PaddedBatches
	}
	if devSum != agg.PaddedBatches {
		t.Errorf("device padded batches sum to %d, want the aggregate %d", devSum, agg.PaddedBatches)
	}
}

// TestSingleBucketShortCircuit pins the guard: a single-bucket model
// with both adaptive flags set must never reach the planner (zero
// planner invocations, not merely zero padded batches).
func TestSingleBucketShortCircuit(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	if err := s.Deploy("m", fakeVariant, DeployOptions{
		Buckets: []int{1}, AllowPadding: true, ContinuousBatching: true,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Infer("m", sampleInput(int64(i+1)), InferOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	runs := s.tenants["m"].planRuns
	s.mu.Unlock()
	if runs != 0 {
		t.Errorf("single-bucket model hit the adaptive planner %d times, want 0", runs)
	}
	st, _ := s.ModelStats("m")
	if st.PaddedBatches != 0 || st.BatchSizes[1] != 4 {
		t.Errorf("single-bucket stats %+v, want 4 strict bucket-1 batches", st)
	}
}
