// Deploy-time accuracy gating for mixed-precision serving variants.
//
// The RepVGG study above models *training-time* accuracy analytically;
// this file is the generalized *deploy-time* check: before a reduced-
// precision variant (FP16/INT8) is allowed to serve traffic, its
// outputs on a calibration batch are compared against the FP32
// RunUnplanned oracle of the same model, and the relative divergence
// must clear the tenant's accuracy budget or the deploy falls back to
// FP32 with a reported reason.
package accuracy

import (
	"fmt"
	"math"

	"bolt/internal/relay"
	"bolt/internal/rt"
	"bolt/internal/tensor"
)

// DivergenceReport records the outcome of gating one precision deploy.
type DivergenceReport struct {
	// Requested and Served are the tenant's asked-for compute precision
	// and the one actually deployed (they differ only on fallback).
	Requested tensor.DType
	Served    tensor.DType
	// Budget is the tenant's accuracy budget: the maximum tolerated
	// relative L-inf divergence from the FP32 oracle. Non-positive
	// means the deploy was not gated.
	Budget float64
	// Divergence is the measured max relative divergence across the
	// calibration batches; -1 when no check ran (FP32 requested, or no
	// budget set).
	Divergence float64
	// Batches is how many calibration batches were compared.
	Batches int
	// Fallback reports that the variant failed its budget and the
	// tenant was deployed at FP32 instead; Reason says why.
	Fallback bool
	Reason   string
}

// String renders the report the way serving logs want it.
func (r DivergenceReport) String() string {
	if r.Fallback {
		return fmt.Sprintf("requested %s, serving %s (%s)", r.Requested, r.Served, r.Reason)
	}
	if r.Divergence < 0 {
		return fmt.Sprintf("serving %s (ungated)", r.Served)
	}
	return fmt.Sprintf("serving %s (divergence %.2e within budget %.2e)", r.Served, r.Divergence, r.Budget)
}

// CalibrationInputs builds a deterministic pseudo-random input batch
// for the graph at its authored batch size. The same seed always
// produces the same batch, so gate decisions are reproducible.
func CalibrationInputs(g *relay.Graph, seed int64) map[string]*tensor.Tensor {
	inputs := make(map[string]*tensor.Tensor, len(g.Inputs))
	for i, in := range g.Inputs {
		t := tensor.NewWithLayout(in.DType, in.Layout, in.Shape...)
		t.FillRandom(seed+int64(i)*7919, 1)
		inputs[in.Name] = t
	}
	return inputs
}

// Divergence is the relative L-inf distance between a candidate output
// and the oracle output: max |cand - oracle| / max |oracle|. An
// all-zero oracle compares on absolute error.
func Divergence(candidate, oracle *tensor.Tensor) float64 {
	diff := tensor.MaxAbsDiff(candidate, oracle)
	var ref float64
	for _, v := range oracle.Data() {
		if a := math.Abs(float64(v)); a > ref {
			ref = a
		}
	}
	if ref == 0 {
		return diff
	}
	return diff / ref
}

// GatePrecision decides which precision variant of g a tenant may
// serve. It casts the graph to the requested precision, measures its
// divergence from the FP32 oracle over `batches` seeded calibration
// batches (candidate through the planned executor serving uses, oracle
// through RunUnplanned), and returns the graph to deploy:
//
//   - requested FP32 (the oracle itself) or a non-positive budget
//     skips the check;
//   - divergence within budget returns the requested-precision graph;
//   - over budget falls back to the FP32 graph with Fallback set and a
//     human-readable Reason.
//
// compile lowers a graph for whatever device the caller deploys to;
// GatePrecision itself is device-agnostic.
func GatePrecision(g *relay.Graph, requested tensor.DType, budget float64, batches int, seed int64,
	compile func(*relay.Graph) (*rt.Module, error)) (*relay.Graph, DivergenceReport, error) {

	rep := DivergenceReport{Requested: requested, Served: requested, Budget: budget, Divergence: -1}
	cand, err := relay.CastPrecision(g, requested)
	if err != nil {
		return nil, rep, err
	}
	if requested == tensor.FP32 || budget <= 0 {
		return cand, rep, nil
	}
	if batches < 1 {
		batches = 1
	}

	oracleGraph, err := relay.CastPrecision(g, tensor.FP32)
	if err != nil {
		return nil, rep, err
	}
	candMod, err := compile(cand)
	if err != nil {
		return nil, rep, fmt.Errorf("accuracy: compiling %s candidate: %w", requested, err)
	}
	oracleMod, err := compile(oracleGraph)
	if err != nil {
		return nil, rep, fmt.Errorf("accuracy: compiling FP32 oracle: %w", err)
	}

	var worst float64
	for b := 0; b < batches; b++ {
		inputs := CalibrationInputs(g, seed+int64(b)*104729)
		got := candMod.Run(inputs)
		want := oracleMod.RunUnplanned(inputs)
		if d := Divergence(got, want); d > worst {
			worst = d
		}
	}
	rep.Divergence = worst
	rep.Batches = batches
	// compile may have optimized the probe graphs in place (fusion,
	// layout rewrites are device-specific); hand the caller a fresh cast
	// so the deployed source goes through its own per-device pipeline.
	serve := requested
	if worst > budget {
		rep.Fallback = true
		rep.Served = tensor.FP32
		rep.Reason = fmt.Sprintf("%s divergence %.2e exceeds budget %.2e; falling back to float32",
			requested, worst, budget)
		serve = tensor.FP32
	}
	fresh, err := relay.CastPrecision(g, serve)
	if err != nil {
		return nil, rep, err
	}
	return fresh, rep, nil
}
