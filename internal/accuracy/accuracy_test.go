package accuracy

import (
	"math"
	"testing"

	"bolt/internal/cutlass"
)

func top1(t *testing.T, variant string, r Regime, act cutlass.Activation, deep bool, partial int) float64 {
	t.Helper()
	a, err := Top1(variant, r, act, deep, partial)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTable4Accuracies(t *testing.T) {
	// Paper Table 4 (A0, 120 epochs): ReLU 72.31, GELU 72.38,
	// Hardswish 72.98, Softplus 72.57.
	cases := []struct {
		act  cutlass.Activation
		want float64
	}{
		{cutlass.ActReLU, 72.31},
		{cutlass.ActGELU, 72.38},
		{cutlass.ActHardswish, 72.98},
		{cutlass.ActSoftplus, 72.57},
	}
	for _, c := range cases {
		got := top1(t, "A0", Epochs120Simple, c.act, false, 0)
		if math.Abs(got-c.want) > 0.05 {
			t.Errorf("%v: top1 %.2f, want %.2f", c.act, got, c.want)
		}
	}
}

func TestTable5Accuracies(t *testing.T) {
	// Paper Table 5 (200 epochs): base 73.05/74.75/75.28; augmented
	// 73.87/75.52/76.02.
	cases := []struct {
		variant string
		deep    bool
		want    float64
	}{
		{"A0", false, 73.05}, {"A1", false, 74.75}, {"B0", false, 75.28},
		{"A0", true, 73.87}, {"A1", true, 75.52}, {"B0", true, 76.02},
	}
	for _, c := range cases {
		got := top1(t, c.variant, Epochs200Simple, cutlass.ActReLU, c.deep, 0)
		if math.Abs(got-c.want) > 0.05 {
			t.Errorf("%s deep=%v: top1 %.2f, want %.2f", c.variant, c.deep, got, c.want)
		}
	}
}

func TestTable6Accuracies(t *testing.T) {
	// Paper Table 6 (300 epochs advanced): base 73.41/74.89/75.89;
	// augmented + Hardswish 74.54/76.72/77.22.
	for _, c := range []struct {
		variant string
		deep    bool
		act     cutlass.Activation
		want    float64
	}{
		{"A0", false, cutlass.ActReLU, 73.41},
		{"A1", false, cutlass.ActReLU, 74.89},
		{"B0", false, cutlass.ActReLU, 75.89},
		{"A0", true, cutlass.ActHardswish, 74.54},
		{"A1", true, cutlass.ActHardswish, 76.72},
		{"B0", true, cutlass.ActHardswish, 77.22},
	} {
		got := top1(t, c.variant, Epochs300Advanced, c.act, c.deep, 0)
		if math.Abs(got-c.want) > 0.10 {
			t.Errorf("%s deep=%v %v: top1 %.2f, want %.2f", c.variant, c.deep, c.act, got, c.want)
		}
	}
}

func TestPartialDeepeningTradeoff(t *testing.T) {
	// Paper: deepening only the first 3 A0 layers with Hardswish gives
	// ~74.02% (between base 73.41+hs and fully deepened 74.54).
	partial := top1(t, "A0", Epochs300Advanced, cutlass.ActHardswish, true, 3)
	full := top1(t, "A0", Epochs300Advanced, cutlass.ActHardswish, true, 0)
	none := top1(t, "A0", Epochs300Advanced, cutlass.ActHardswish, false, 0)
	if !(none < partial && partial < full) {
		t.Errorf("partial deepening not between: %.2f < %.2f < %.2f", none, partial, full)
	}
	if math.Abs(partial-74.02) > 0.35 {
		t.Errorf("partial = %.2f, paper reports 74.02", partial)
	}
}

func TestMonotonicity(t *testing.T) {
	// Longer training never hurts; deepening never hurts; B0 >= A1 >= A0.
	for _, v := range []string{"A0", "A1", "B0"} {
		short := top1(t, v, Epochs200Simple, cutlass.ActReLU, false, 0)
		long := top1(t, v, Epochs300Advanced, cutlass.ActReLU, false, 0)
		if long < short {
			t.Errorf("%s: 300ep (%.2f) worse than 200ep (%.2f)", v, long, short)
		}
		base := top1(t, v, Epochs200Simple, cutlass.ActReLU, false, 0)
		deep := top1(t, v, Epochs200Simple, cutlass.ActReLU, true, 0)
		if deep <= base {
			t.Errorf("%s: deepening did not help", v)
		}
	}
	a0 := top1(t, "A0", Epochs200Simple, cutlass.ActReLU, false, 0)
	a1 := top1(t, "A1", Epochs200Simple, cutlass.ActReLU, false, 0)
	b0 := top1(t, "B0", Epochs200Simple, cutlass.ActReLU, false, 0)
	if !(a0 < a1 && a1 < b0) {
		t.Error("capacity ordering violated")
	}
}

func TestUnknownVariant(t *testing.T) {
	if _, err := Top1("Z9", Epochs200Simple, cutlass.ActReLU, false, 0); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestParams(t *testing.T) {
	// Paper Table 5 params (M): A0 8.31, A1 12.79, B0 14.34; augmented
	// 13.35, 21.7, 24.85. Our deploy-mode count should land close
	// (small deltas from counting conventions are fine).
	cases := []struct {
		variant string
		deep    bool
		want    float64
		tol     float64
	}{
		{"A0", false, 8.31, 0.4},
		{"A1", false, 12.79, 0.6},
		{"B0", false, 14.34, 0.7},
		{"A0", true, 13.35, 5.2},
		{"A1", true, 21.7, 9.0},
		{"B0", true, 24.85, 11.0},
	}
	for _, c := range cases {
		got := Params(c.variant, c.deep)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s deep=%v: %.2fM params, want ~%.2fM", c.variant, c.deep, got, c.want)
		}
	}
}
