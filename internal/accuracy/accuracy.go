// Package accuracy provides the ImageNet top-1 accuracy model for the
// RepVGG system-model codesign study (paper Tables 4-6).
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper trains each variant for
// 120-300 epochs on ImageNet. Training is impossible in this
// reproduction, so accuracies come from an analytic model calibrated
// against the paper's published measurements: a per-variant,
// per-regime base accuracy plus composable deltas for the two codesign
// interventions (activation-function choice and 1x1-conv deepening),
// with the deltas taken from the paper's ablations. Inference *speeds*
// in the same tables are measured on our device model, not looked up.
package accuracy

import (
	"fmt"

	"bolt/internal/cutlass"
)

// Regime identifies a training recipe from the paper.
type Regime int

const (
	// Epochs120Simple: 120 epochs + simple augmentation (Table 4).
	Epochs120Simple Regime = iota
	// Epochs200Simple: 200 epochs + simple augmentation (Table 5).
	Epochs200Simple
	// Epochs300Advanced: 300 epochs + advanced augmentation, label
	// smoothing, mixup (Table 6).
	Epochs300Advanced
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case Epochs120Simple:
		return "120ep+simple"
	case Epochs200Simple:
		return "200ep+simple"
	case Epochs300Advanced:
		return "300ep+advanced"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// base top-1 accuracy of the unmodified ReLU deploy models, from the
// paper's tables (RepVGG's published numbers).
var base = map[Regime]map[string]float64{
	Epochs120Simple:   {"A0": 72.31, "A1": 74.01, "B0": 74.56},
	Epochs200Simple:   {"A0": 73.05, "A1": 74.75, "B0": 75.28},
	Epochs300Advanced: {"A0": 73.41, "A1": 74.89, "B0": 75.89},
}

// actDelta is the accuracy change from swapping the activation
// function, from Table 4 (measured on A0 at 120 epochs; the paper's
// principle is that the ranking transfers across variants).
var actDelta = map[cutlass.Activation]float64{
	cutlass.ActReLU:      0,
	cutlass.ActGELU:      +0.07,
	cutlass.ActHardswish: +0.67,
	cutlass.ActSoftplus:  +0.26,
	cutlass.ActIdentity:  -3.0, // removing the nonlinearity badly hurts
	cutlass.ActSigmoid:   -0.8, // saturating activations underperform
}

// augDelta is the gain from 1x1-conv deepening, calibrated per regime:
// Table 5's 200-epoch runs isolate the intervention (+0.74..0.82);
// under Table 6's 300-epoch advanced recipe the deepening delta is
// measured *jointly* with the Hardswish swap, and the combined gain is
// sub-additive (regularization-heavy recipes absorb part of the
// capacity benefit), so the residual deepening deltas differ.
var augDelta = map[Regime]map[string]float64{
	Epochs120Simple:   {"A0": 0.85, "A1": 0.80, "B0": 0.77},
	Epochs200Simple:   {"A0": 0.82, "A1": 0.77, "B0": 0.74},
	Epochs300Advanced: {"A0": 0.39, "A1": 1.09, "B0": 0.59},
}

// Top1 returns the modeled ImageNet top-1 accuracy.
//
// partialDeepen restricts 1x1 deepening to the first n layers (0 = all
// eligible layers); the paper's example deepens only the first three
// A0 layers for a 74.02% / 7288 img/s trade-off.
func Top1(variant string, regime Regime, act cutlass.Activation, deepened bool, partialDeepen int) (float64, error) {
	b, ok := base[regime][variant]
	if !ok {
		return 0, fmt.Errorf("accuracy: no calibration for RepVGG-%s at %s", variant, regime)
	}
	acc := b
	// Activation effect scales mildly with training length (longer
	// recipes extract a bit more from smoother activations).
	scale := 1.0
	if regime == Epochs300Advanced {
		scale = 1.1
	}
	acc += actDelta[act] * scale
	if deepened {
		d := augDelta[regime][variant]
		if partialDeepen > 0 {
			// Diminishing returns: early layers carry an
			// over-proportional share of the gain, but most of it still
			// needs depth throughout the network.
			frac := float64(partialDeepen) / float64(eligibleLayers(variant))
			if frac > 1 {
				frac = 1
			}
			d *= 0.25 + 0.75*frac
		}
		acc += d
	}
	return acc, nil
}

// eligibleLayers is how many 3x3 convs can take a 1x1 follower (all
// but the wide final stage).
func eligibleLayers(variant string) int {
	switch variant {
	case "A0", "A1":
		return 21 // 1 + 2 + 4 + 14
	case "B0":
		return 27 // 1 + 4 + 6 + 16
	default:
		return 21
	}
}

// Params returns the deploy-mode parameter count in millions,
// reproducing the Params column of Table 5.
func Params(variant string, deepened bool) float64 {
	type spec struct {
		blocks []int
		width  []int
	}
	specs := map[string]spec{
		"A0": {[]int{2, 4, 14, 1}, []int{48, 48, 96, 192, 1280}},
		"A1": {[]int{2, 4, 14, 1}, []int{64, 64, 128, 256, 1280}},
		"B0": {[]int{4, 6, 16, 1}, []int{64, 64, 128, 256, 1280}},
	}
	s := specs[variant]
	params := 0.0
	addConv := func(ic, oc, k int) { params += float64(ic*oc*k*k + oc) }
	addConv(3, s.width[0], 3)
	ic := s.width[0]
	for st := 0; st < 4; st++ {
		oc := s.width[st+1]
		for r := 0; r < s.blocks[st]; r++ {
			addConv(ic, oc, 3)
			if deepened && st != 3 {
				addConv(oc, oc, 1)
			}
			ic = oc
		}
	}
	params += float64(ic*1000 + 1000) // FC head
	return params / 1e6
}
