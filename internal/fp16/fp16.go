// Package fp16 implements IEEE 754 binary16 (half precision) arithmetic
// in software.
//
// Bolt's evaluation runs entirely in FP16 on tensor cores; this package
// is the numeric substrate that stands in for the GPU's native half
// type. Values are stored as raw uint16 bit patterns (type Float16) and
// converted to float32 for arithmetic, exactly as CUDA device code
// promotes __half to float inside the MMA pipeline's FP32 accumulators.
package fp16

import "math"

// Float16 is an IEEE 754 binary16 value stored as its raw bit pattern:
// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
type Float16 uint16

// Useful constants.
const (
	// PositiveInfinity is the binary16 +Inf bit pattern.
	PositiveInfinity Float16 = 0x7C00
	// NegativeInfinity is the binary16 -Inf bit pattern.
	NegativeInfinity Float16 = 0xFC00
	// NaN is a canonical binary16 quiet NaN.
	NaN Float16 = 0x7E00
	// MaxValue is the largest finite binary16 value, 65504.
	MaxValue Float16 = 0x7BFF
	// SmallestNormal is the smallest positive normal value, 2^-14.
	SmallestNormal Float16 = 0x0400
	// SmallestSubnormal is the smallest positive subnormal value, 2^-24.
	SmallestSubnormal Float16 = 0x0001
	// One is the binary16 encoding of 1.0.
	One Float16 = 0x3C00
	// Zero is positive zero.
	Zero Float16 = 0x0000
)

// FromFloat32 converts a float32 to binary16 using round-to-nearest-even,
// the rounding mode used by CUDA's __float2half_rn and by tensor-core
// stores. Overflow produces infinity; underflow produces (possibly
// subnormal) small values or zero.
func FromFloat32(f float32) Float16 {
	bits := math.Float32bits(f)
	sign := uint16((bits >> 16) & 0x8000)
	exp := int32((bits>>23)&0xFF) - 127
	mant := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			// Preserve NaN-ness; set a quiet-bit mantissa.
			return Float16(sign | 0x7E00)
		}
		return Float16(sign | 0x7C00)
	case exp > 15: // overflow -> Inf
		return Float16(sign | 0x7C00)
	case exp >= -14: // normal range
		// 10-bit mantissa; round to nearest even on the 13 dropped bits.
		m := mant >> 13
		round := mant & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && m&1 == 1) {
			m++
			if m == 0x400 { // mantissa overflow -> bump exponent
				m = 0
				exp++
				if exp > 15 {
					return Float16(sign | 0x7C00)
				}
			}
		}
		return Float16(sign | uint16(exp+15)<<10 | uint16(m))
	case exp >= -24: // subnormal range
		// Shift the implicit leading 1 into the mantissa.
		mant |= 0x800000
		shift := uint32(-exp - 14 + 13) // 13 base bits + denormalization
		m := mant >> shift
		// Round to nearest even on the dropped bits.
		dropped := mant & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if dropped > half || (dropped == half && m&1 == 1) {
			m++
			// A subnormal rounding up to 0x400 becomes the smallest
			// normal; the encoding below handles it transparently
			// because 0x400 sets the exponent field to 1.
		}
		return Float16(sign | uint16(m))
	default: // underflow to zero
		return Float16(sign)
	}
}

// ToFloat32 converts a binary16 value to float32 exactly (binary16 is a
// subset of binary32, so this conversion is lossless).
func ToFloat32(h Float16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	mant := uint32(h & 0x3FF)

	switch exp {
	case 0:
		if mant == 0 { // signed zero
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize into binary32.
		e := int32(-14)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | uint32(e+127)<<23 | mant<<13)
	case 0x1F:
		if mant == 0 { // infinity
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7F800000 | mant<<13 | 0x400000)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// FromFloat64 converts a float64 to binary16 (via float32, rounding twice;
// the double rounding is harmless for our value ranges and matches how
// host code typically produces half data).
func FromFloat64(f float64) Float16 { return FromFloat32(float32(f)) }

// ToFloat64 converts a binary16 value to float64 exactly.
func ToFloat64(h Float16) float64 { return float64(ToFloat32(h)) }

// IsNaN reports whether h encodes a NaN.
func IsNaN(h Float16) bool { return h&0x7C00 == 0x7C00 && h&0x3FF != 0 }

// IsInf reports whether h is an infinity. sign > 0 restricts to +Inf,
// sign < 0 to -Inf, and sign == 0 matches either.
func IsInf(h Float16, sign int) bool {
	if h&0x7FFF != 0x7C00 {
		return false
	}
	neg := h&0x8000 != 0
	return sign == 0 || (sign > 0 && !neg) || (sign < 0 && neg)
}

// IsFinite reports whether h is neither infinite nor NaN.
func IsFinite(h Float16) bool { return h&0x7C00 != 0x7C00 }

// Neg returns h with its sign flipped (including for zero, Inf, NaN).
func Neg(h Float16) Float16 { return h ^ 0x8000 }

// Abs returns h with the sign bit cleared.
func Abs(h Float16) Float16 { return h &^ 0x8000 }

// Add returns the binary16 sum a+b, computed in float32 and rounded once.
func Add(a, b Float16) Float16 { return FromFloat32(ToFloat32(a) + ToFloat32(b)) }

// Sub returns the binary16 difference a-b.
func Sub(a, b Float16) Float16 { return FromFloat32(ToFloat32(a) - ToFloat32(b)) }

// Mul returns the binary16 product a*b.
func Mul(a, b Float16) Float16 { return FromFloat32(ToFloat32(a) * ToFloat32(b)) }

// Div returns the binary16 quotient a/b.
func Div(a, b Float16) Float16 { return FromFloat32(ToFloat32(a) / ToFloat32(b)) }

// FMA returns a*b+c with a single final rounding, mirroring the HFMA2
// behaviour of accumulating in higher precision before the half store.
func FMA(a, b, c Float16) Float16 {
	return FromFloat32(float32(float64(ToFloat32(a))*float64(ToFloat32(b)) + float64(ToFloat32(c))))
}

// Less reports a < b under IEEE ordering (NaN compares false).
func Less(a, b Float16) bool { return ToFloat32(a) < ToFloat32(b) }

// Equal reports a == b under IEEE semantics (+0 == -0; NaN != NaN).
func Equal(a, b Float16) bool { return ToFloat32(a) == ToFloat32(b) }

// EncodeSlice converts a []float32 into freshly allocated binary16 values.
func EncodeSlice(src []float32) []Float16 {
	dst := make([]Float16, len(src))
	for i, f := range src {
		dst[i] = FromFloat32(f)
	}
	return dst
}

// DecodeSlice converts binary16 values into freshly allocated float32s.
func DecodeSlice(src []Float16) []float32 {
	dst := make([]float32, len(src))
	for i, h := range src {
		dst[i] = ToFloat32(h)
	}
	return dst
}

// Quantize rounds every element of src through binary16 in place,
// emulating a store-to-half/load-from-half round trip.
func Quantize(src []float32) {
	for i, f := range src {
		src[i] = ToFloat32(FromFloat32(f))
	}
}

// Ulp returns the distance between h and the next representable value
// away from zero, as a float64. Useful for tolerance computation in
// numeric tests.
func Ulp(h Float16) float64 {
	if !IsFinite(h) {
		return math.Inf(1)
	}
	a := Abs(h)
	next := a + 1
	if next&0x7C00 == 0x7C00 { // stepped into Inf
		return ToFloat64(MaxValue) - ToFloat64(a-1)
	}
	return ToFloat64(next) - ToFloat64(a)
}
