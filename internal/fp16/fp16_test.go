package fp16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		f    float32
		want Float16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},
		{-65504, 0xFBFF},
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
		{5.9604645e-08, 0x0001},   // smallest subnormal
		{6.103515625e-05, 0x0400}, // smallest normal
		{0.333251953125, 0x3555},  // nearest half to 1/3
		{1024, 0x6400},
		{-2.5, 0xC100},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.want {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.want)
		}
	}
}

func TestKnownDecodings(t *testing.T) {
	cases := []struct {
		h    Float16
		want float32
	}{
		{0x0000, 0},
		{0x3C00, 1},
		{0xBC00, -1},
		{0x7BFF, 65504},
		{0x0001, 5.9604645e-08},
		{0x03FF, 6.097555e-05}, // largest subnormal
		{0x0400, 6.103515625e-05},
		{0x3555, 0.33325195},
	}
	for _, c := range cases {
		if got := ToFloat32(c.h); got != c.want {
			t.Errorf("ToFloat32(%#04x) = %g, want %g", c.h, got, c.want)
		}
	}
}

func TestOverflowToInfinity(t *testing.T) {
	if got := FromFloat32(65520); got != PositiveInfinity {
		t.Errorf("FromFloat32(65520) = %#04x, want +Inf (first value rounding to Inf)", got)
	}
	if got := FromFloat32(65519.9); got != MaxValue {
		t.Errorf("FromFloat32(65519.9) = %#04x, want MaxValue", got)
	}
	if got := FromFloat32(-1e30); got != NegativeInfinity {
		t.Errorf("FromFloat32(-1e30) = %#04x, want -Inf", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := FromFloat32(1e-10); got != 0 {
		t.Errorf("FromFloat32(1e-10) = %#04x, want +0", got)
	}
	if got := FromFloat32(-1e-10); got != 0x8000 {
		t.Errorf("FromFloat32(-1e-10) = %#04x, want -0", got)
	}
	// Values exactly halfway to the smallest subnormal round to even (zero).
	if got := FromFloat32(2.9802322e-08); got != 0 {
		t.Errorf("halfway-to-subnormal should round to even zero, got %#04x", got)
	}
}

func TestNaNPropagation(t *testing.T) {
	n := FromFloat32(float32(math.NaN()))
	if !IsNaN(n) {
		t.Fatalf("FromFloat32(NaN) = %#04x is not NaN", n)
	}
	if !math.IsNaN(float64(ToFloat32(n))) {
		t.Errorf("ToFloat32(NaN half) should be NaN")
	}
	if IsNaN(PositiveInfinity) || IsNaN(One) {
		t.Errorf("IsNaN misclassifies Inf or 1.0")
	}
}

func TestIsInf(t *testing.T) {
	if !IsInf(PositiveInfinity, 1) || !IsInf(PositiveInfinity, 0) || IsInf(PositiveInfinity, -1) {
		t.Error("IsInf(+Inf) sign handling wrong")
	}
	if !IsInf(NegativeInfinity, -1) || !IsInf(NegativeInfinity, 0) || IsInf(NegativeInfinity, 1) {
		t.Error("IsInf(-Inf) sign handling wrong")
	}
	if IsInf(NaN, 0) || IsInf(One, 0) {
		t.Error("IsInf misclassifies NaN or finite")
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 2049 is exactly halfway between representable 2048 and 2050;
	// round-to-even picks 2048.
	if got := ToFloat32(FromFloat32(2049)); got != 2048 {
		t.Errorf("2049 should round to even 2048, got %g", got)
	}
	// 2051 is halfway between 2050 and 2052; round-to-even picks 2052.
	if got := ToFloat32(FromFloat32(2051)); got != 2052 {
		t.Errorf("2051 should round to even 2052, got %g", got)
	}
	// 2049.5 is above halfway; rounds up to 2050.
	if got := ToFloat32(FromFloat32(2049.5)); got != 2050 {
		t.Errorf("2049.5 should round up to 2050, got %g", got)
	}
}

func TestSubnormalRounding(t *testing.T) {
	// Largest subnormal + half a subnormal ulp rounds to smallest normal.
	largestSub := ToFloat32(Float16(0x03FF))
	smallestNorm := ToFloat32(SmallestNormal)
	mid := (largestSub + smallestNorm) / 2
	got := FromFloat32(mid)
	if got != SmallestNormal {
		t.Errorf("midpoint %g should round (to even) to smallest normal, got %#04x", mid, got)
	}
}

func TestNegAbs(t *testing.T) {
	if Neg(One) != 0xBC00 || Neg(Neg(One)) != One {
		t.Error("Neg broken")
	}
	if Abs(Float16(0xBC00)) != One || Abs(One) != One {
		t.Error("Abs broken")
	}
}

func TestArithmetic(t *testing.T) {
	two := FromFloat32(2)
	three := FromFloat32(3)
	if ToFloat32(Add(two, three)) != 5 {
		t.Error("2+3 != 5")
	}
	if ToFloat32(Sub(two, three)) != -1 {
		t.Error("2-3 != -1")
	}
	if ToFloat32(Mul(two, three)) != 6 {
		t.Error("2*3 != 6")
	}
	if ToFloat32(Div(three, two)) != 1.5 {
		t.Error("3/2 != 1.5")
	}
	if ToFloat32(FMA(two, three, One)) != 7 {
		t.Error("2*3+1 != 7")
	}
}

func TestAdditionRoundsOnce(t *testing.T) {
	// 2048 + 1 in FP16: 2049 is not representable, result rounds to 2048.
	a := FromFloat32(2048)
	b := FromFloat32(1)
	if got := ToFloat32(Add(a, b)); got != 2048 {
		t.Errorf("2048+1 in fp16 = %g, want 2048 (absorption)", got)
	}
}

func TestComparisons(t *testing.T) {
	if !Less(One, FromFloat32(2)) || Less(FromFloat32(2), One) {
		t.Error("Less broken")
	}
	if Less(NaN, One) || Less(One, NaN) {
		t.Error("NaN comparisons must be false")
	}
	if !Equal(Zero, Float16(0x8000)) {
		t.Error("+0 must equal -0")
	}
	if Equal(NaN, NaN) {
		t.Error("NaN must not equal NaN")
	}
}

func TestSliceCodecs(t *testing.T) {
	src := []float32{0, 1, -1, 0.5, 65504, 3.14159}
	enc := EncodeSlice(src)
	dec := DecodeSlice(enc)
	for i := range src {
		want := ToFloat32(FromFloat32(src[i]))
		if dec[i] != want {
			t.Errorf("slice round trip [%d]: got %g want %g", i, dec[i], want)
		}
	}
	q := append([]float32(nil), src...)
	Quantize(q)
	for i := range q {
		if q[i] != dec[i] {
			t.Errorf("Quantize[%d] = %g, want %g", i, q[i], dec[i])
		}
	}
}

func TestUlp(t *testing.T) {
	// Near 1.0 the fp16 ulp is 2^-10.
	if got := Ulp(One); got != 1.0/1024 {
		t.Errorf("Ulp(1) = %g, want %g", got, 1.0/1024)
	}
	// Subnormal ulp is 2^-24.
	if got := Ulp(SmallestSubnormal); got != math.Pow(2, -24) {
		t.Errorf("Ulp(subnormal) = %g, want 2^-24", got)
	}
	if !math.IsInf(Ulp(PositiveInfinity), 1) {
		t.Error("Ulp(Inf) should be +Inf")
	}
}

// Property: decoding then encoding any half bit pattern is the identity
// (modulo NaN payload canonicalization).
func TestRoundTripHalfProperty(t *testing.T) {
	f := func(bits uint16) bool {
		h := Float16(bits)
		if IsNaN(h) {
			return IsNaN(FromFloat32(ToFloat32(h)))
		}
		return FromFloat32(ToFloat32(h)) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: conversion is monotone on finite values.
func TestMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a := float32(rng.NormFloat64() * 100)
		b := float32(rng.NormFloat64() * 100)
		if a > b {
			a, b = b, a
		}
		ha, hb := FromFloat32(a), FromFloat32(b)
		if ToFloat32(ha) > ToFloat32(hb) {
			t.Fatalf("monotonicity violated: %g->%g but %g->%g", a, ToFloat32(ha), b, ToFloat32(hb))
		}
	}
}

// Property: the rounded value is within half an ulp of the input for
// values within the normal range.
func TestRoundingErrorBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		f := float32(math.Exp(rng.Float64()*20-10)) * float32(1-2*rng.Intn(2))
		h := FromFloat32(f)
		if !IsFinite(h) {
			continue
		}
		err := math.Abs(ToFloat64(h) - float64(f))
		if err > Ulp(h)/2+1e-12 {
			t.Fatalf("rounding error %g exceeds half ulp %g for %g", err, Ulp(h)/2, f)
		}
	}
}

// Property: commutativity of Add and Mul.
func TestCommutativityProperty(t *testing.T) {
	f := func(x, y uint16) bool {
		a, b := Float16(x), Float16(y)
		if IsNaN(a) || IsNaN(b) {
			return true
		}
		return Add(a, b) == Add(b, a) && Mul(a, b) == Mul(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	var sink Float16
	for i := 0; i < b.N; i++ {
		sink = FromFloat32(vals[i&4095])
	}
	_ = sink
}

func BenchmarkToFloat32(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = ToFloat32(Float16(i & 0x7BFF))
	}
	_ = sink
}
