// Package costmodel implements the learned kernel performance model
// shared by the opaque Ansor-style tuner and Bolt's guided profiler:
// ridge regression over schedule/template features predicting log
// kernel time, trained online as measurements land.
//
// The package is deliberately deterministic and seedable — no
// math/rand global state anywhere. A Predictor's weights depend only
// on the *set* of observations it has seen (never their arrival
// order), so a profiling pool of any width trains the same model, and
// a model reloaded from JSON reproduces the exact ranking it would
// have produced in the process that saved it.
package costmodel

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"
	"sort"
	"sync"
)

// Solve fits ridge regression — (X'X + lambda I) w = X'y — by
// Gaussian elimination with partial pivoting, accumulating normal
// equations over rows in the given order. It returns nil when there
// are fewer rows than features (underdetermined; callers treat nil as
// "not trained").
func Solve(feats [][]float64, targets []float64, lambda float64) []float64 {
	if len(feats) == 0 {
		return nil
	}
	n := len(feats[0])
	if len(feats) < n {
		return nil
	}
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		a[i][i] = lambda
	}
	for r, f := range feats {
		y := targets[r]
		for i := 0; i < n; i++ {
			b[i] += f[i] * y
			for j := 0; j < n; j++ {
				a[i][j] += f[i] * f[j]
			}
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		if math.Abs(a[col][col]) < 1e-12 {
			continue
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for j := col; j < n; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * w[j]
		}
		if math.Abs(a[i][i]) < 1e-12 {
			w[i] = 0
		} else {
			w[i] = sum / a[i][i]
		}
	}
	return w
}

// Observation is one measured sample the predictor learns from.
type Observation struct {
	// Group identifies the workload the sample belongs to. The model's
	// job is ranking candidates *within* one workload, so held-out
	// confidence is rank correlation computed per group.
	Group string `json:"g"`
	// Feat is the feature vector (see Features).
	Feat []float64 `json:"f"`
	// Y is the learning target: log kernel seconds (lower is faster).
	Y float64 `json:"y"`
}

const (
	// ridgeLambda regularizes the fit (same strength the Ansor-style
	// tuner uses).
	ridgeLambda = 1e-2
	// heldOutMod holds out one observation in heldOutMod (selected by a
	// seeded, order-independent hash) for confidence estimation.
	heldOutMod = 4
	// minGroupRank is the smallest held-out group that contributes a
	// rank-correlation vote (rank correlation over fewer points is
	// noise).
	minGroupRank = 4
	// minHeldOut is the minimum held-out sample count before the model
	// reports any confidence at all.
	minHeldOut = 8
)

// Predictor is a seedable, thread-safe online cost model. Observe
// records measurements (idempotently — re-observing an identical
// sample is a no-op, so merging two logs never double-counts), Fit
// retrains from the full observation set in a canonical order, and
// Predict scores candidates with the weights of the last Fit.
type Predictor struct {
	mu      sync.Mutex
	seed    int64
	dim     int
	obs     []Observation
	seen    map[uint64]struct{}
	weights []float64
	conf    float64
}

// NewPredictor returns an empty predictor. The seed parameterizes the
// held-out split (which observations are withheld from training to
// score confidence); two predictors with the same seed and the same
// observation set are bit-identical.
func NewPredictor(seed int64) *Predictor {
	return &Predictor{seed: seed, seen: make(map[uint64]struct{})}
}

// obsHash fingerprints an observation under a seed: the basis of both
// the dedup set and the held-out split. It depends only on the
// observation's value, never on insertion order.
func obsHash(seed int64, o Observation) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(o.Group))
	for _, f := range o.Feat {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		h.Write(b[:])
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(o.Y))
	h.Write(b[:])
	return h.Sum64()
}

// Observe records one measured sample. Non-finite targets, empty
// features, dimension mismatches, and exact duplicates are dropped.
func (p *Predictor) Observe(group string, feat []float64, y float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observeLocked(Observation{Group: group, Feat: feat, Y: y})
}

func (p *Predictor) observeLocked(o Observation) {
	if len(o.Feat) == 0 || math.IsNaN(o.Y) || math.IsInf(o.Y, 0) {
		return
	}
	if p.dim == 0 {
		p.dim = len(o.Feat)
	}
	if len(o.Feat) != p.dim {
		return
	}
	o.Feat = append([]float64(nil), o.Feat...)
	h := obsHash(p.seed, o)
	if p.seen == nil {
		p.seen = make(map[uint64]struct{})
	}
	if _, ok := p.seen[h]; ok {
		return
	}
	p.seen[h] = struct{}{}
	p.obs = append(p.obs, o)
}

// Ingest merges every observation of other (dedup applies) and refits.
func (p *Predictor) Ingest(other *Predictor) {
	if other == nil || other == p {
		return
	}
	other.mu.Lock()
	rows := make([]Observation, len(other.obs))
	copy(rows, other.obs)
	other.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, o := range rows {
		p.observeLocked(o)
	}
	p.fitLocked()
}

// Len returns the number of distinct observations recorded.
func (p *Predictor) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.obs)
}

// lessObs is the canonical observation order: fits iterate
// observations sorted by value, so weights never depend on which
// worker measured what first.
func lessObs(a, b Observation) bool {
	if a.Group != b.Group {
		return a.Group < b.Group
	}
	for i := range a.Feat {
		if i >= len(b.Feat) {
			return false
		}
		if a.Feat[i] != b.Feat[i] {
			return a.Feat[i] < b.Feat[i]
		}
	}
	if len(a.Feat) != len(b.Feat) {
		return len(a.Feat) < len(b.Feat)
	}
	return a.Y < b.Y
}

// Fit retrains the model: training rows (the non-held-out majority)
// are solved exactly in canonical order, then confidence is scored as
// the sample-weighted mean Spearman rank correlation between
// predicted and measured times across held-out groups.
func (p *Predictor) Fit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fitLocked()
}

func (p *Predictor) fitLocked() {
	rows := make([]Observation, len(p.obs))
	copy(rows, p.obs)
	sort.Slice(rows, func(a, b int) bool { return lessObs(rows[a], rows[b]) })

	var trainF [][]float64
	var trainY []float64
	var held []Observation
	for _, o := range rows {
		if obsHash(p.seed, o)%heldOutMod == 0 {
			held = append(held, o)
		} else {
			trainF = append(trainF, o.Feat)
			trainY = append(trainY, o.Y)
		}
	}
	w := Solve(trainF, trainY, ridgeLambda)
	if w == nil {
		p.weights, p.conf = nil, 0
		return
	}
	p.weights = w

	// held is sorted by Group first, so groups are contiguous and the
	// confidence sum is accumulated in a deterministic order.
	total, votes := 0.0, 0
	for i := 0; i < len(held); {
		j := i
		for j < len(held) && held[j].Group == held[i].Group {
			j++
		}
		if n := j - i; n >= minGroupRank {
			preds := make([]float64, n)
			actual := make([]float64, n)
			for k, o := range held[i:j] {
				preds[k] = dot(w, o.Feat)
				actual[k] = o.Y
			}
			total += spearman(preds, actual) * float64(n)
			votes += n
		}
		i = j
	}
	if votes < minHeldOut {
		p.conf = 0
		return
	}
	p.conf = total / float64(votes)
	if p.conf < 0 {
		p.conf = 0
	}
	if p.conf > 1 {
		p.conf = 1
	}
}

func dot(w, f []float64) float64 {
	s := 0.0
	for i := range w {
		if i < len(f) {
			s += w[i] * f[i]
		}
	}
	return s
}

// ranks assigns average ranks (ties share their mean rank).
func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && x[idx[j]] == x[idx[i]] {
			j++
		}
		mean := float64(i+j-1) / 2
		for k := i; k < j; k++ {
			r[idx[k]] = mean
		}
		i = j
	}
	return r
}

// spearman computes the Spearman rank correlation of two equal-length
// samples (Pearson correlation of their average ranks); 0 when either
// sample is constant.
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Predict returns the model's score for a feature vector — predicted
// log kernel seconds, lower is faster — using the weights of the last
// Fit (0 before any successful fit).
func (p *Predictor) Predict(feat []float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.weights == nil {
		return 0
	}
	return dot(p.weights, feat)
}

// Trained reports whether the model has enough data behind a fit to
// produce meaningful predictions.
func (p *Predictor) Trained() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.weights != nil
}

// Confidence returns the held-out ranking quality of the last Fit in
// [0, 1]: the sample-weighted mean Spearman rank correlation between
// predicted and measured times across held-out workload groups (0
// until enough held-out samples exist). This is what a trust gate
// compares against its threshold before skipping measurement.
func (p *Predictor) Confidence() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conf
}

// predictorJSON is the persistence format: the seed and the raw
// observation set. Weights are derived state and are refit on load,
// so a loaded model is bit-identical to the one that saved it.
type predictorJSON struct {
	Seed int64         `json:"seed"`
	Obs  []Observation `json:"obs"`
}

// MarshalJSON serializes the predictor with observations in canonical
// order (stable files under any training interleaving).
func (p *Predictor) MarshalJSON() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rows := make([]Observation, len(p.obs))
	copy(rows, p.obs)
	sort.Slice(rows, func(a, b int) bool { return lessObs(rows[a], rows[b]) })
	return json.Marshal(predictorJSON{Seed: p.seed, Obs: rows})
}

// UnmarshalJSON replaces the predictor's state with the serialized
// observation set and refits.
func (p *Predictor) UnmarshalJSON(data []byte) error {
	var pj predictorJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seed = pj.Seed
	p.dim = 0
	p.obs = nil
	p.seen = make(map[uint64]struct{})
	p.weights, p.conf = nil, 0
	for _, o := range pj.Obs {
		p.observeLocked(o)
	}
	p.fitLocked()
	return nil
}
