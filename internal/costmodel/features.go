package costmodel

import (
	"math"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// Features extracts the model's input vector for one templated-kernel
// candidate: the CUTLASS template parameters, the workload geometry,
// occupancy-derived launch structure (grid size, waves, resident
// warps — all statically derivable, no measurement), and the device
// class. Pass conv for convolution workloads (m, n, k are then the
// implicit-GEMM dims) and nil for plain GEMMs.
//
// The vector length is constant for a given workload kind mix, so one
// Predictor can learn across GEMM and Conv tasks on several devices
// at once.
func Features(cfg cutlass.GemmConfig, m, n, k int, conv *cutlass.ConvShape, dev *gpu.Device) []float64 {
	lg := func(x float64) float64 { return math.Log2(x + 1) }
	lgi := func(x int) float64 { return lg(float64(x)) }

	tilesM := (m + cfg.TB.M - 1) / cfg.TB.M
	tilesN := (n + cfg.TB.N - 1) / cfg.TB.N
	grid := tilesM * tilesN
	kIters := (k + cfg.TB.K - 1) / cfg.TB.K

	occ := dev.Occupancy(gpu.KernelDesc{
		ThreadsPerBlock: cfg.Threads(),
		RegsPerThread:   cfg.RegsPerThread(),
		SharedMemBytes:  cfg.SharedMemBytes(),
	})
	// Wave quantization: blocks on the busiest SM in steady state (the
	// occupancy-rule launch structure, statically derivable).
	waves, critical := 0.0, 0.0
	if slots := occ.BlocksPerSM * dev.SMs; slots > 0 {
		waves = float64((grid + slots - 1) / slots)
		full := grid / slots
		tail := grid % slots
		critical = float64(full*occ.BlocksPerSM + (tail+dev.SMs-1)/dev.SMs)
	}
	underutil := lgi(dev.SMs) - lgi(grid)
	if underutil < 0 {
		underutil = 0
	}
	alignAB := cfg.AlignA
	if cfg.AlignB < alignAB {
		alignAB = cfg.AlignB
	}

	// Log-domain roofline components. These are compile-time formulae
	// over the template parameters — the analytic issue-efficiency
	// model CUTLASS-style configs expose, per-block work, and a DRAM
	// traffic estimate under swizzled L2 reuse — not measurements. A
	// linear model over log components can reconstruct a multiplicative
	// cost model, which is exactly the regression's job.
	issueLg := math.Log2(cfg.IssueEffForK(k) + 1e-6)
	// Steady-state residency on the busiest SM (the simulator's wave
	// distribution, reproduced from the same occupancy rules).
	conc := grid
	if slots := occ.BlocksPerSM * dev.SMs; conc > slots {
		conc = slots
	}
	activeSMs := dev.SMs
	if conc < activeSMs {
		activeSMs = conc
	}
	lat := 0.0
	if activeSMs > 0 {
		perSM := float64(conc) / float64(activeSMs) * float64(cfg.WarpCount())
		lat = gpu.LatencyHidingEff(int(math.Round(perSM)))
	}
	latLg := math.Log2(lat + 1e-6)
	vecLg := math.Log2(gpu.VectorEff(alignAB, cfg.DType) + 1e-6)
	esize := float64(cfg.DType.Size())
	perBlockLg := math.Log2(float64(cfg.TB.M)*float64(cfg.TB.N)*float64(k) + 1)
	g := 1 << cfg.SwizzleLog
	if g > tilesM {
		g = tilesM
	}
	if g > tilesN {
		g = tilesN
	}
	if g < 1 {
		g = 1
	}
	// Shrink the swizzle group while its pipeline slice overflows L2,
	// then price redundant re-reads with the L2 residency discount —
	// the same static traffic estimate the templates are priced with.
	for g > 1 && g*(cfg.TB.M+cfg.TB.N)*cfg.TB.K*cfg.Stages*int(esize)*4 > dev.L2Bytes {
		g /= 2
	}
	aFoot := float64(m) * float64(k) * esize
	bFoot := float64(k) * float64(n) * esize
	traffic := cutlass.L2Discounted(dev, aFoot, (tilesN+g-1)/g) +
		cutlass.L2Discounted(dev, bFoot, (tilesM+g-1)/g) +
		float64(m)*float64(n)*esize
	trafficLg := math.Log2(traffic + 1)

	f := []float64{
		1, // bias
		lgi(cfg.TB.M), lgi(cfg.TB.N), lgi(cfg.TB.K),
		lgi(cfg.Warp.M * cfg.Warp.N),
		float64(cfg.WarpCount()),
		float64(cfg.Stages),
		float64(cfg.SwizzleLog),
		lgi(alignAB), lgi(cfg.AlignC),
		lgi(m), lgi(n), lgi(k),
		lgi(grid), lgi(kIters),
		underutil,
		lg(waves),
		lg(critical),
		float64(occ.WarpsPerSM),
		occ.Fraction,
		issueLg,
		latLg,
		vecLg,
		lgi(activeSMs),
		perBlockLg,
		trafficLg,
		lgi(cfg.SharedMemBytes()),
		lgi(dev.SMs),
		lg(dev.PeakTFLOPS(cfg.Op, cfg.DType)),
		lg(dev.DRAMBWGBs),
	}
	// Dtype indicators: mixed-precision serving trains one model over
	// FP32/FP16/INT8 candidates, and peak TFLOPS alone cannot separate
	// e.g. element-size effects on the SIMT path from op-class effects.
	// FP16 — the zoo's authored precision — is the all-zeros baseline,
	// so FP16-only training data yields the exact pre-mixed-precision
	// regression (all-zero columns draw zero weight). (Growing the
	// vector is safe: the predictor drops persisted observations whose
	// dimension no longer matches.)
	switch cfg.DType {
	case tensor.FP32:
		f = append(f, 1, 0)
	case tensor.INT8:
		f = append(f, 0, 1)
	default:
		f = append(f, 0, 0)
	}
	if conv != nil {
		f = append(f, 1, lgi(conv.KH*conv.KW), lgi(conv.StrideH*conv.StrideW))
	} else {
		f = append(f, 0, 0, 0)
	}
	return f
}
