package costmodel

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// lcg is a tiny deterministic generator so tests depend on no
// math/rand state at all.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

func TestSolveRecoversLinearFunction(t *testing.T) {
	truth := []float64{0.5, -1.25, 2.0, 0.75}
	var g lcg = 7
	var feats [][]float64
	var targets []float64
	for i := 0; i < 64; i++ {
		f := []float64{1, g.next() * 4, g.next() * 4, g.next() * 4}
		y := 0.0
		for j := range f {
			y += truth[j] * f[j]
		}
		feats = append(feats, f)
		targets = append(targets, y)
	}
	w := Solve(feats, targets, 1e-6)
	if w == nil {
		t.Fatal("Solve returned nil on a well-posed system")
	}
	for j := range truth {
		if math.Abs(w[j]-truth[j]) > 1e-3 {
			t.Fatalf("weight %d: got %.6f, want %.6f", j, w[j], truth[j])
		}
	}
}

func TestSolveUnderdeterminedReturnsNil(t *testing.T) {
	feats := [][]float64{{1, 2, 3}, {4, 5, 6}}
	if w := Solve(feats, []float64{1, 2}, 1e-2); w != nil {
		t.Fatalf("Solve with 2 rows of 3 features should return nil, got %v", w)
	}
	if w := Solve(nil, nil, 1e-2); w != nil {
		t.Fatalf("Solve with no rows should return nil, got %v", w)
	}
}

// synthObs builds a deterministic learnable dataset: groups of
// candidates whose log-time is a fixed linear function of the
// features plus small group-specific structure.
func synthObs(groups, perGroup int) []Observation {
	truth := []float64{-8, 0.6, -0.9, 0.3, 1.1}
	var g lcg = 99
	var out []Observation
	for gi := 0; gi < groups; gi++ {
		for s := 0; s < perGroup; s++ {
			f := []float64{1, g.next() * 3, g.next() * 3, g.next() * 3, g.next()}
			y := 0.0
			for j := range f {
				y += truth[j] * f[j]
			}
			out = append(out, Observation{Group: fmt.Sprintf("wl-%d", gi), Feat: f, Y: y})
		}
	}
	return out
}

func TestPredictorRankingIsInsertionOrderIndependent(t *testing.T) {
	obs := synthObs(10, 24)

	fitFrom := func(order []int) *Predictor {
		p := NewPredictor(1)
		for _, i := range order {
			p.Observe(obs[i].Group, obs[i].Feat, obs[i].Y)
		}
		p.Fit()
		return p
	}
	fwd := make([]int, len(obs))
	rev := make([]int, len(obs))
	interleaved := make([]int, 0, len(obs))
	for i := range obs {
		fwd[i] = i
		rev[i] = len(obs) - 1 - i
	}
	// Two-worker round-robin interleaving.
	for i := 0; i < len(obs); i += 2 {
		interleaved = append(interleaved, i)
	}
	for i := 1; i < len(obs); i += 2 {
		interleaved = append(interleaved, i)
	}

	a, b, c := fitFrom(fwd), fitFrom(rev), fitFrom(interleaved)
	for i := range obs {
		pa, pb, pc := a.Predict(obs[i].Feat), b.Predict(obs[i].Feat), c.Predict(obs[i].Feat)
		if pa != pb || pa != pc {
			t.Fatalf("obs %d: predictions diverge across insertion orders: %v %v %v", i, pa, pb, pc)
		}
	}
	if a.Confidence() != b.Confidence() || a.Confidence() != c.Confidence() {
		t.Fatalf("confidence diverges across insertion orders: %v %v %v",
			a.Confidence(), b.Confidence(), c.Confidence())
	}
}

func TestPredictorConfidenceSeparatesLearnableFromPoisoned(t *testing.T) {
	good := NewPredictor(1)
	for _, o := range synthObs(10, 24) {
		good.Observe(o.Group, o.Feat, o.Y)
	}
	good.Fit()
	if !good.Trained() {
		t.Fatal("good predictor did not train")
	}
	if c := good.Confidence(); c < 0.7 {
		t.Fatalf("learnable data should give high held-out confidence, got %.3f", c)
	}

	// Poison: identical features, targets replaced by values
	// uncorrelated with them — the model cannot rank held-out
	// candidates, so the trust gate must see low confidence.
	poisoned := NewPredictor(1)
	var g lcg = 12345
	for _, o := range synthObs(10, 24) {
		poisoned.Observe(o.Group, o.Feat, g.next()*10-15)
	}
	poisoned.Fit()
	if c := poisoned.Confidence(); c > 0.35 {
		t.Fatalf("poisoned targets should give low held-out confidence, got %.3f", c)
	}
}

func TestPredictorObserveDeduplicates(t *testing.T) {
	p := NewPredictor(1)
	f := []float64{1, 2, 3}
	p.Observe("g", f, -7)
	p.Observe("g", f, -7)
	p.Observe("g", f, -7.5) // different target: a distinct sample
	if p.Len() != 2 {
		t.Fatalf("want 2 distinct observations after duplicate insert, got %d", p.Len())
	}
}

func TestPredictorJSONRoundTripIsBitIdentical(t *testing.T) {
	p := NewPredictor(42)
	obs := synthObs(10, 24)
	for _, o := range obs {
		p.Observe(o.Group, o.Feat, o.Y)
	}
	p.Fit()

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q := &Predictor{}
	if err := json.Unmarshal(data, q); err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("round-trip lost observations: %d -> %d", p.Len(), q.Len())
	}
	if !q.Trained() {
		t.Fatal("round-tripped predictor is untrained (weights must refit on load)")
	}
	if p.Confidence() != q.Confidence() {
		t.Fatalf("confidence changed across round-trip: %v -> %v", p.Confidence(), q.Confidence())
	}
	for i := range obs {
		if a, b := p.Predict(obs[i].Feat), q.Predict(obs[i].Feat); a != b {
			t.Fatalf("obs %d: prediction changed across round-trip: %v -> %v", i, a, b)
		}
	}

	// Ingesting the round-tripped copy back must be a no-op (dedup).
	before := p.Len()
	p.Ingest(q)
	if p.Len() != before {
		t.Fatalf("ingesting a copy grew the observation set: %d -> %d", before, p.Len())
	}
}

func TestFeaturesDimensionIsStable(t *testing.T) {
	dev := gpu.T4()
	cfg := cutlass.GemmConfig{
		TB:     cutlass.Shape3{M: 128, N: 128, K: 32},
		Warp:   cutlass.Shape3{M: 64, N: 64, K: 32},
		Inst:   cutlass.InstructionShape(dev.Arch),
		Stages: 2, SwizzleLog: 1,
		AlignA: 8, AlignB: 8, AlignC: 8,
		Op: gpu.OpClassTensorOp, DType: tensor.FP16,
	}
	gemm := Features(cfg, 1024, 1024, 1024, nil, dev)
	shape := cutlass.ConvShape{N: 8, H: 56, W: 56, IC: 64, OC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	m, n, k := shape.ImplicitGemm()
	conv := Features(cfg, m, n, k, &shape, dev)
	if len(gemm) != len(conv) {
		t.Fatalf("gemm (%d) and conv (%d) feature vectors must have one dimension", len(gemm), len(conv))
	}
	a100 := Features(cfg, 1024, 1024, 1024, nil, gpu.A100())
	if len(a100) != len(gemm) {
		t.Fatalf("device change altered feature dimension: %d vs %d", len(a100), len(gemm))
	}
}
