package ansor

import (
	"math/rand"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// Tuner runs evolutionary search with a learned cost model over the
// SIMT schedule space, measuring candidates on the device and charging
// realistic per-trial costs (kernel compilation plus RPC measurement
// round trips) to the tuning clock. This is what makes Ansor's tuning
// take hours where Bolt's profiler takes minutes (paper Figure 10b).
type Tuner struct {
	dev   *gpu.Device
	clock *gpu.Clock
	rng   *rand.Rand

	// CompilePerTrial is the simulated cost of building one candidate
	// kernel (seconds). Each trial compiles a distinct schedule.
	CompilePerTrial float64
	// MeasureOverhead is the per-trial host-side cost (upload, RPC,
	// timer setup) beyond the kernel executions themselves.
	MeasureOverhead float64
	// Measure controls the repeats per trial.
	Measure gpu.MeasureOptions

	// PopulationSize and EvolveBatch shape the search: each round
	// samples a population, ranks it with the cost model, and measures
	// the top EvolveBatch schedules on hardware.
	PopulationSize int
	EvolveBatch    int
}

// NewTuner builds a tuner with the default search hyper-parameters.
func NewTuner(dev *gpu.Device, clock *gpu.Clock, seed int64) *Tuner {
	return &Tuner{
		dev:             dev,
		clock:           clock,
		rng:             rand.New(rand.NewSource(seed)),
		CompilePerTrial: 1.5,
		MeasureOverhead: 0.8,
		Measure:         gpu.QuickMeasure(),
		PopulationSize:  512,
		EvolveBatch:     64,
	}
}

// Result is the outcome of a tuning run.
type Result struct {
	Schedule Schedule
	Time     float64 // best measured kernel time, seconds
	Trials   int     // schedules actually measured
}

// descFn lowers a schedule to a kernel descriptor for the problem
// being tuned.
type descFn func(Schedule) gpu.KernelDesc

// TuneGemm searches `trials` measured candidates for an m×n×k GEMM.
func (t *Tuner) TuneGemm(m, n, k, trials int, dt tensor.DType) Result {
	return t.tune(trials, dt, m, n, k, func(s Schedule) gpu.KernelDesc {
		return s.GemmDesc(t.dev, m, n, k, dt)
	})
}

// TuneConv searches `trials` measured candidates for a convolution.
func (t *Tuner) TuneConv(g ConvGeometry, trials int, dt tensor.DType) Result {
	return t.tune(trials, dt, g.M, g.N, g.K, func(s Schedule) gpu.KernelDesc {
		return s.ConvDesc(t.dev, g, dt)
	})
}

func (t *Tuner) tune(trials int, dt tensor.DType, m, n, k int, lower descFn) Result {
	model := newCostModel()
	best := Result{Time: -1}
	var elite []Schedule

	for best.Trials < trials {
		// Build a candidate population: random exploration plus
		// mutations of the measured elite.
		pop := make([]Schedule, 0, t.PopulationSize)
		for len(pop) < t.PopulationSize/2 {
			if s, ok := t.randomSchedule(dt); ok {
				pop = append(pop, s)
			}
		}
		for _, e := range elite {
			for i := 0; i < 8 && len(pop) < t.PopulationSize; i++ {
				if s, ok := t.mutate(e, dt); ok {
					pop = append(pop, s)
				}
			}
		}
		for len(pop) < t.PopulationSize {
			if s, ok := t.randomSchedule(dt); ok {
				pop = append(pop, s)
			}
		}

		// Rank with the learned model (cold start: keep sampled order,
		// i.e. random search).
		if model.trained() {
			scores := make([]float64, len(pop))
			for i, s := range pop {
				scores[i] = model.predict(features(s, m, n, k))
			}
			sortByScore(pop, scores)
		}

		// Measure the top batch on the device.
		batch := t.EvolveBatch
		if rem := trials - best.Trials; batch > rem {
			batch = rem
		}
		measured := pop[:0]
		for _, s := range pop {
			if len(measured) == batch {
				break
			}
			desc := lower(s)
			if t.clock != nil {
				t.clock.Advance(t.CompilePerTrial + t.MeasureOverhead)
			}
			tm := gpu.Measure(t.dev, desc, t.Measure, t.rng, t.clock)
			best.Trials++
			gflops := desc.FLOPs / tm / 1e9
			model.observe(features(s, m, n, k), gflops)
			if best.Time < 0 || tm < best.Time {
				best.Time = tm
				best.Schedule = s
			}
			measured = append(measured, s)
		}
		model.fit()

		// New elite: the best schedules measured so far (greedy).
		elite = append(elite[:0], best.Schedule)
	}
	// Final verification run: the winning schedule is re-timed with the
	// full measurement methodology (mean of many runs), removing the
	// min-of-noisy-samples bias of the search loop.
	best.Time = t.dev.KernelTime(lower(best.Schedule))
	if t.clock != nil {
		t.clock.Advance(best.Time * float64(gpu.DefaultMeasure().Repeats))
	}
	return best
}

func pick(rng *rand.Rand, opts []int) int { return opts[rng.Intn(len(opts))] }

func (t *Tuner) randomSchedule(dt tensor.DType) (Schedule, bool) {
	s := Schedule{
		TileM:   pick(t.rng, tileOpts),
		TileN:   pick(t.rng, tileOpts),
		TileK:   pick(t.rng, tileKOpts),
		ThreadM: pick(t.rng, threadOpts),
		ThreadN: pick(t.rng, threadOpts),
		Vec:     pick(t.rng, vecOpts),
		Unroll:  pick(t.rng, unrollOpts),
	}
	return s, s.Valid(t.dev, dt)
}

func (t *Tuner) mutate(s Schedule, dt tensor.DType) (Schedule, bool) {
	m := s
	switch t.rng.Intn(7) {
	case 0:
		m.TileM = pick(t.rng, tileOpts)
	case 1:
		m.TileN = pick(t.rng, tileOpts)
	case 2:
		m.TileK = pick(t.rng, tileKOpts)
	case 3:
		m.ThreadM = pick(t.rng, threadOpts)
	case 4:
		m.ThreadN = pick(t.rng, threadOpts)
	case 5:
		m.Vec = pick(t.rng, vecOpts)
	case 6:
		m.Unroll = pick(t.rng, unrollOpts)
	}
	return m, m.Valid(t.dev, dt)
}

// sortByScore sorts pop descending by score (simple insertion sort —
// population is small and this avoids pulling in reflect-heavy sort
// for a hot path).
func sortByScore(pop []Schedule, scores []float64) {
	for i := 1; i < len(pop); i++ {
		s, sc := pop[i], scores[i]
		j := i - 1
		for j >= 0 && scores[j] < sc {
			pop[j+1], scores[j+1] = pop[j], scores[j]
			j--
		}
		pop[j+1], scores[j+1] = s, sc
	}
}
