// Package ansor implements the baseline auto-tuner Bolt is compared
// against: an opaque-device-model schedule searcher in the style of
// Ansor / the TVM auto-scheduler (Zheng et al., OSDI 2020).
//
// The searcher knows nothing about tensor cores — like the 2021-era
// TVM FP16 schedules the paper benchmarks, its space contains only
// SIMT multi-level-tiling schedules (threadblock tile -> thread tile ->
// vectorize/unroll). It learns a cost model from measurements and
// explores with evolutionary search over thousands of trials. Both
// performance gaps the paper demonstrates fall out of this design:
// the generated kernels cannot reach tensor-core throughput, and the
// search burns hours of (simulated) compile+measure time.
package ansor

import (
	"fmt"
	"math"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// Schedule is one point in the SIMT multi-level tiling space: an
// output tile per threadblock, a register tile per thread, a K-loop
// tile staged through shared memory, a vectorization width, and an
// unroll pragma.
type Schedule struct {
	TileM, TileN     int // threadblock output tile
	ThreadM, ThreadN int // per-thread register tile
	TileK            int // shared-memory K stage
	Vec              int // vector load width (elements)
	Unroll           int // inner-loop unroll factor
}

// String renders compactly for logs.
func (s Schedule) String() string {
	return fmt.Sprintf("tile%dx%dx%d_thr%dx%d_vec%d_unroll%d",
		s.TileM, s.TileN, s.TileK, s.ThreadM, s.ThreadN, s.Vec, s.Unroll)
}

// Threads returns threads per block.
func (s Schedule) Threads() int {
	return (s.TileM / s.ThreadM) * (s.TileN / s.ThreadN)
}

// RegsPerThread estimates register usage: the accumulator tile plus
// operand staging plus bookkeeping. Ansor's best schedules aggressively
// consume registers (paper §4.1.1).
func (s Schedule) RegsPerThread() int {
	return s.ThreadM*s.ThreadN + 2*(s.ThreadM+s.ThreadN) + 24
}

// SharedMemBytes returns the double-buffered staging footprint.
func (s Schedule) SharedMemBytes(dt tensor.DType) int {
	return 2 * (s.TileM + s.TileN) * s.TileK * dt.Size()
}

// Valid reports whether the schedule is realizable on the device.
func (s Schedule) Valid(d *gpu.Device, dt tensor.DType) bool {
	if s.TileM <= 0 || s.TileN <= 0 || s.TileK <= 0 || s.ThreadM <= 0 || s.ThreadN <= 0 {
		return false
	}
	if s.TileM%s.ThreadM != 0 || s.TileN%s.ThreadN != 0 {
		return false
	}
	th := s.Threads()
	if th < 32 || th > d.MaxThreads || th%32 != 0 {
		return false
	}
	if s.RegsPerThread() > d.MaxRegsThread {
		return false
	}
	// One block must actually fit on an SM (register file capacity);
	// otherwise the kernel cannot launch at all.
	if s.RegsPerThread()*th > d.RegistersPerSM {
		return false
	}
	if s.SharedMemBytes(dt) > d.SharedMemBlock {
		return false
	}
	switch s.Vec {
	case 1, 2, 4, 8:
	default:
		return false
	}
	return true
}

// issueEff models the sustained fraction of SIMT peak for the
// schedule's inner loop. Larger register tiles amortize shared-memory
// loads; vectorization and unrolling reduce issue overhead. The
// ceiling (~0.55 of HFMA2 peak for the best schedules) reflects what
// hand-measured TVM FP16 SIMT kernels achieve — far below tensor-core
// rates, which is precisely the gap in the paper's Figure 1.
func (s Schedule) issueEff() float64 {
	rb := float64(s.ThreadM*s.ThreadN) / float64(s.ThreadM*s.ThreadN+10)
	vec := map[int]float64{1: 0.72, 2: 0.86, 4: 0.95, 8: 1.0}[s.Vec]
	unroll := 0.88 + 0.12*math.Min(1, float64(s.Unroll)/64)
	return 0.52 * rb * vec * unroll
}

// GemmDesc lowers the schedule applied to an m×n×k GEMM into a device
// kernel descriptor (SIMT op class — no tensor cores in this space).
func (s Schedule) GemmDesc(d *gpu.Device, m, n, k int, dt tensor.DType) gpu.KernelDesc {
	tilesM := (m + s.TileM - 1) / s.TileM
	tilesN := (n + s.TileN - 1) / s.TileN
	esize := dt.Size()
	aFoot := float64(m) * float64(k) * float64(esize)
	bFoot := float64(k) * float64(n) * float64(esize)
	// Ansor schedules do not swizzle threadblocks; rely on L2 only.
	loadB := l2Discounted(d, aFoot, tilesN) + l2Discounted(d, bFoot, tilesM)
	return gpu.KernelDesc{
		Name:            "ansor_gemm_" + s.String(),
		GridBlocks:      tilesM * tilesN,
		ThreadsPerBlock: s.Threads(),
		RegsPerThread:   s.RegsPerThread(),
		SharedMemBytes:  s.SharedMemBytes(dt),
		FLOPs:           2 * float64(m) * float64(n) * float64(k),
		GlobalLoadB:     loadB,
		GlobalStoreB:    float64(m) * float64(n) * float64(esize),
		OpClass:         gpu.OpClassSIMT,
		DType:           dt,
		AlignmentElems:  s.Vec,
		IssueEff:        s.issueEff(),
		// No threadblock rasterization/swizzle in the generated
		// schedules: coalescing and L2 behaviour are noticeably worse
		// than the hand-engineered library iterators.
		MemEff: 0.70,
	}
}

// ConvDesc lowers the schedule applied to a convolution. Direct
// convolution schedules exploit spatial locality that plain GEMM
// tiling cannot, so their issue efficiency is somewhat higher — the
// paper's Figure 8 shows Ansor's conv gap (2.7-3.5x) is smaller than
// its GEMM gap (6-9.5x).
func (s Schedule) ConvDesc(d *gpu.Device, cs ConvGeometry, dt tensor.DType) gpu.KernelDesc {
	m, n, k := cs.M, cs.N, cs.K
	desc := s.GemmDesc(d, m, n, k, dt)
	desc.Name = "ansor_conv2d_" + s.String()
	// Spatial-locality bonus shrinks as feature maps grow: large
	// activations need large halo regions per tile, and the generated
	// schedules handle halos with per-element predication whose cost
	// scales with the staged footprint (early VGG-style 224x224 layers
	// are where Ansor's conv schedules fall furthest behind).
	bonus := 1.9
	switch {
	case cs.ActivationElems >= 50<<20:
		bonus = 1.15
	case cs.ActivationElems >= 10<<20:
		bonus = 1.5
	}
	desc.IssueEff = math.Min(0.90, desc.IssueEff*bonus)
	// Direct conv reads the true activation footprint.
	esize := dt.Size()
	tilesN := (n + s.TileN - 1) / s.TileN
	desc.GlobalLoadB = l2Discounted(d, float64(cs.ActivationElems)*float64(esize), tilesN) +
		l2Discounted(d, float64(k*n)*float64(esize), (m+s.TileM-1)/s.TileM)
	return desc
}

// ConvGeometry carries the implicit-GEMM view of a convolution plus
// its true activation footprint.
type ConvGeometry struct {
	M, N, K         int
	ActivationElems int
}

func l2Discounted(d *gpu.Device, footprintB float64, rereads int) float64 {
	if rereads <= 1 || footprintB*4 <= float64(d.L2Bytes) {
		return footprintB
	}
	return footprintB * float64(rereads)
}

// SpaceSize returns the number of syntactically possible schedules —
// the breadth an opaque tuner must search, versus the profiler's tens.
func SpaceSize() int {
	return len(tileOpts) * len(tileOpts) * len(threadOpts) * len(threadOpts) * len(tileKOpts) * len(vecOpts) * len(unrollOpts)
}

var (
	tileOpts   = []int{16, 32, 64, 128, 256}
	threadOpts = []int{1, 2, 4, 8, 16}
	tileKOpts  = []int{8, 16, 32, 64}
	vecOpts    = []int{1, 2, 4, 8}
	unrollOpts = []int{0, 16, 64, 256}
)
