package ansor

import (
	"math"

	"bolt/internal/costmodel"
)

// costModel is the learned performance model: ridge regression over
// schedule features predicting log throughput, retrained as
// measurements accumulate. This mirrors the XGBoost-style learned
// model in Ansor at the fidelity our search needs: it ranks candidates
// so the tuner measures only the most promising ones.
type costModel struct {
	lambda  float64
	weights []float64
	feats   [][]float64
	targets []float64
}

func newCostModel() *costModel { return &costModel{lambda: 1e-2} }

const numFeatures = 9

// features extracts the schedule descriptors the model learns from.
// The device is opaque to the tuner: only schedule-structural and
// problem-size features are available (no tensor-core or occupancy
// oracle), which is exactly why opaque tuning is less informed.
func features(s Schedule, m, n, k int) []float64 {
	lg := func(x int) float64 { return math.Log2(float64(x) + 1) }
	return []float64{
		1, // bias
		lg(s.TileM), lg(s.TileN), lg(s.TileK),
		lg(s.ThreadM * s.ThreadN),
		lg(s.Threads()),
		lg(s.Vec), lg(s.Unroll),
		lg(m*n) - lg(s.TileM*s.TileN), // grid size proxy
	}
}

// observe records a measured sample (throughput in GFLOP/s).
func (c *costModel) observe(f []float64, gflops float64) {
	c.feats = append(c.feats, f)
	c.targets = append(c.targets, math.Log(gflops+1e-9))
}

// fit solves the ridge system through the shared costmodel solver
// (the same Gaussian elimination this package originally carried);
// with fewer samples than features the previous weights are kept.
func (c *costModel) fit() {
	if w := costmodel.Solve(c.feats, c.targets, c.lambda); w != nil {
		c.weights = w
	}
}

// predict scores a feature vector; higher is better. Before any fit,
// all candidates score equally (cold-start random search).
func (c *costModel) predict(f []float64) float64 {
	if c.weights == nil {
		return 0
	}
	s := 0.0
	for i, w := range c.weights {
		s += w * f[i]
	}
	return s
}

// trained reports whether the model has been fit at least once.
func (c *costModel) trained() bool { return c.weights != nil }
