package ansor

import (
	"testing"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

func TestScheduleDerived(t *testing.T) {
	s := Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 8, ThreadN: 8, Vec: 4, Unroll: 64}
	if s.Threads() != 64 {
		t.Errorf("threads = %d, want 64", s.Threads())
	}
	if s.RegsPerThread() != 64+32+24 {
		t.Errorf("regs = %d", s.RegsPerThread())
	}
	if s.SharedMemBytes(tensor.FP16) != 2*(64+64)*16*2 {
		t.Errorf("smem = %d", s.SharedMemBytes(tensor.FP16))
	}
}

func TestScheduleValidity(t *testing.T) {
	d := gpu.T4()
	good := Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 4, ThreadN: 4, Vec: 4, Unroll: 64}
	if !good.Valid(d, tensor.FP16) {
		t.Error("good schedule rejected")
	}
	cases := []Schedule{
		{TileM: 64, TileN: 64, TileK: 16, ThreadM: 3, ThreadN: 4, Vec: 4},   // no divide
		{TileM: 16, TileN: 16, TileK: 16, ThreadM: 8, ThreadN: 8, Vec: 4},   // 4 threads < 1 warp
		{TileM: 256, TileN: 256, TileK: 16, ThreadM: 1, ThreadN: 1, Vec: 4}, // 64k threads
		{TileM: 256, TileN: 256, TileK: 64, ThreadM: 8, ThreadN: 8, Vec: 4}, // smem blowout
		{TileM: 64, TileN: 64, TileK: 16, ThreadM: 4, ThreadN: 4, Vec: 3},   // bad vec
		{TileM: 64, TileN: 64, TileK: 16, ThreadM: 16, ThreadN: 16, Vec: 4}, // register blowout
	}
	for i, s := range cases {
		if s.Valid(d, tensor.FP16) {
			t.Errorf("case %d: invalid schedule accepted: %v", i, s)
		}
	}
}

func TestIssueEffOrdering(t *testing.T) {
	big := Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 8, ThreadN: 8, Vec: 8, Unroll: 64}
	small := Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 2, ThreadN: 2, Vec: 1, Unroll: 0}
	if big.issueEff() <= small.issueEff() {
		t.Error("register-blocked vectorized schedule must have higher issue efficiency")
	}
	if e := big.issueEff(); e > 0.65 {
		t.Errorf("SIMT issue ceiling too high: %f (tensor-core gap would vanish)", e)
	}
}

func TestGemmDescIsSIMT(t *testing.T) {
	d := gpu.T4()
	s := Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 8, ThreadN: 8, Vec: 8, Unroll: 64}
	desc := s.GemmDesc(d, 1024, 1024, 1024, tensor.FP16)
	if desc.OpClass != gpu.OpClassSIMT {
		t.Fatal("Ansor schedules must be SIMT (no tensor cores in the space)")
	}
	if desc.FLOPs != 2*1024*1024*1024 {
		t.Error("FLOPs wrong")
	}
}

func TestSpaceSizeIsLarge(t *testing.T) {
	// The opaque search space must dwarf the profiler's tens of
	// candidates — that asymmetry is the tuning-time story.
	if SpaceSize() < 10000 {
		t.Errorf("schedule space %d too small to justify learned search", SpaceSize())
	}
}

func TestTunerFindsGoodSchedule(t *testing.T) {
	d := gpu.T4()
	var clock gpu.Clock
	tuner := NewTuner(d, &clock, 1)
	res := tuner.TuneGemm(1024, 1024, 1024, 128, tensor.FP16)
	if res.Trials != 128 {
		t.Errorf("trials = %d, want 128", res.Trials)
	}
	if !res.Schedule.Valid(d, tensor.FP16) {
		t.Error("best schedule invalid")
	}
	// The tuner should find something within 2x of the space's best
	// (exhaustively checking a fine subsample).
	bestKnown := exhaustiveBest(d, 1024, 1024, 1024)
	if res.Time > 2*bestKnown {
		t.Errorf("tuned time %.3g vs best known %.3g: search not converging", res.Time, bestKnown)
	}
	if clock.Elapsed() < float64(res.Trials)*tuner.CompilePerTrial {
		t.Error("tuning clock must charge at least compile time per trial")
	}
}

func exhaustiveBest(d *gpu.Device, m, n, k int) float64 {
	best := -1.0
	for _, tm := range tileOpts {
		for _, tn := range tileOpts {
			for _, thm := range threadOpts {
				for _, thn := range threadOpts {
					s := Schedule{TileM: tm, TileN: tn, TileK: 32, ThreadM: thm, ThreadN: thn, Vec: 8, Unroll: 64}
					if !s.Valid(d, tensor.FP16) {
						continue
					}
					t := d.KernelTime(s.GemmDesc(d, m, n, k, tensor.FP16))
					if best < 0 || t < best {
						best = t
					}
				}
			}
		}
	}
	return best
}

func TestLearnedModelBeatsRandom(t *testing.T) {
	d := gpu.T4()
	// With the same trial budget, model-guided search should on average
	// find a schedule at least as good as pure random sampling.
	tuner := NewTuner(d, nil, 42)
	guided := tuner.TuneGemm(2048, 2048, 2048, 192, tensor.FP16)

	rnd := NewTuner(d, nil, 43)
	rnd.EvolveBatch = 192 // one giant batch: no model feedback rounds
	random := rnd.TuneGemm(2048, 2048, 2048, 192, tensor.FP16)

	if guided.Time > random.Time*1.25 {
		t.Errorf("guided search (%.3g) much worse than random (%.3g)", guided.Time, random.Time)
	}
}

func TestCostModelFitPredict(t *testing.T) {
	m := newCostModel()
	if m.trained() {
		t.Error("untrained model claims training")
	}
	// Synthetic target: throughput grows with thread tile.
	for tm := 1; tm <= 8; tm *= 2 {
		for tn := 1; tn <= 8; tn *= 2 {
			s := Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: tm, ThreadN: tn, Vec: 4, Unroll: 64}
			m.observe(features(s, 1024, 1024, 1024), float64(tm*tn*100))
		}
	}
	m.fit()
	if !m.trained() {
		t.Fatal("model did not train")
	}
	lo := m.predict(features(Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 1, ThreadN: 1, Vec: 4, Unroll: 64}, 1024, 1024, 1024))
	hi := m.predict(features(Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 8, ThreadN: 8, Vec: 4, Unroll: 64}, 1024, 1024, 1024))
	if hi <= lo {
		t.Errorf("model failed to learn monotone trend: hi %f <= lo %f", hi, lo)
	}
}

func TestConvDescBetterThanGemmIssue(t *testing.T) {
	d := gpu.T4()
	s := Schedule{TileM: 64, TileN: 64, TileK: 16, ThreadM: 8, ThreadN: 8, Vec: 8, Unroll: 64}
	g := ConvGeometry{M: 32 * 56 * 56, N: 64, K: 576, ActivationElems: 32 * 56 * 56 * 64}
	conv := s.ConvDesc(d, g, tensor.FP16)
	gemm := s.GemmDesc(d, g.M, g.N, g.K, tensor.FP16)
	if conv.IssueEff <= gemm.IssueEff {
		t.Error("direct conv schedules should have higher issue efficiency than GEMM tiling")
	}
}
