package cutlass

import (
	"testing"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// int8Config builds an IMMA (INT8 tensor core) configuration: the
// mixed-precision path CUTLASS templates expose beyond FP16 (paper
// §2.2 lists B1/INT4/INT8/... support as part of the templated
// design).
func int8Config() GemmConfig {
	return GemmConfig{
		TB:     Shape3{128, 128, 64},
		Warp:   Shape3{64, 64, 64},
		Inst:   Shape3{8, 8, 16}, // Turing IMMA m8n8k16
		Stages: 2, SwizzleLog: 1,
		AlignA: 16, AlignB: 16, AlignC: 16,
		Op: gpu.OpClassTensorOp, DType: tensor.INT8,
	}
}

func TestInt8ConfigValid(t *testing.T) {
	if err := int8Config().Validate(gpu.T4()); err != nil {
		t.Fatalf("IMMA config invalid: %v", err)
	}
}

func TestMaxAlignment(t *testing.T) {
	if MaxAlignment(tensor.FP16) != 8 {
		t.Error("FP16 max alignment is 8 (128-bit)")
	}
	if MaxAlignment(tensor.INT8) != 16 {
		t.Error("INT8 max alignment is 16 (128-bit)")
	}
	if MaxAlignment(tensor.FP32) != 4 {
		t.Error("FP32 max alignment is 4 (128-bit)")
	}
}

func TestInt8DoubleRateOverFP16(t *testing.T) {
	d := gpu.T4()
	i8 := &Gemm{Config: int8Config(), Epilogue: Epilogue{Alpha: 1, OutDType: tensor.INT8}}
	f16 := &Gemm{Config: stdConfig(), Epilogue: DefaultEpilogue()}
	m, n, k := 4096, 4096, 4096
	ratio := f16.Time(d, m, n, k) / i8.Time(d, m, n, k)
	// T4 INT8 tensor peak is 130 TOPS vs 65 TFLOPS FP16: ~2x on a
	// compute-bound GEMM.
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("INT8/FP16 speedup %.2f, want ~2x", ratio)
	}
}

func TestInt8Functional(t *testing.T) {
	d := gpu.T4()
	cfg := int8Config()
	cfg.TB = Shape3{64, 64, 64}
	cfg.Warp = Shape3{32, 32, 64}
	g, err := NewGemm(cfg, Epilogue{Alpha: 1, OutDType: tensor.FP32}, d)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.New(tensor.INT8, 32, 64)
	b := tensor.New(tensor.INT8, 64, 32)
	a.FillRandom(1, 10) // quantizes to integers in [-10, 10]
	b.FillRandom(2, 10)
	got := g.Run(a, b, nil)
	want := ReferenceGemm(a, b, nil, Epilogue{Alpha: 1, OutDType: tensor.FP32})
	if tensor.MaxAbsDiff(got, want) != 0 {
		t.Errorf("INT8 GEMM deviates: %g (integer math must be exact)", tensor.MaxAbsDiff(got, want))
	}
	// Integer inputs stay integers after quantization.
	for _, v := range a.Data() {
		if v != float32(int(v)) {
			t.Fatal("INT8 tensor holds non-integers")
		}
	}
}

func TestInt8UnsupportedOnVolta(t *testing.T) {
	volta := gpu.T4()
	volta.Arch = gpu.SM70
	if err := int8Config().Validate(volta); err == nil {
		t.Error("IMMA on sm_70 should be rejected")
	}
}
