package cutlass

import (
	"math"
	"testing"
	"testing/quick"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// smallConfig is a valid config whose tiles are small enough for quick
// functional tests.
func smallConfig() GemmConfig {
	return GemmConfig{
		TB:     Shape3{64, 64, 32},
		Warp:   Shape3{32, 32, 32},
		Inst:   Shape3{16, 8, 8},
		Stages: 2, SwizzleLog: 1,
		AlignA: 8, AlignB: 8, AlignC: 8,
		Op: gpu.OpClassTensorOp, DType: tensor.FP16,
	}
}

func randMat(t *testing.T, seed int64, r, c int) *tensor.Tensor {
	t.Helper()
	m := tensor.New(tensor.FP16, r, c)
	m.FillRandom(seed, 1)
	return m
}

func TestGemmMatchesReference(t *testing.T) {
	d := gpu.T4()
	g, err := NewGemm(smallConfig(), DefaultEpilogue(), d)
	if err != nil {
		t.Fatal(err)
	}
	a := randMat(t, 1, 48, 64)
	b := randMat(t, 2, 64, 32)
	got := g.Run(a, b, nil)
	want := ReferenceGemm(a, b, nil, DefaultEpilogue())
	if !tensor.AllClose(got, want, 1e-2, 1e-3) {
		t.Errorf("gemm deviates from reference: max diff %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestGemmBiasActivationEpilogues(t *testing.T) {
	d := gpu.T4()
	a := randMat(t, 3, 32, 40)
	b := randMat(t, 4, 40, 24)
	bias := randMat(t, 5, 1, 24)
	bias = tensor.Reshape(bias, 24)
	for _, act := range []Activation{ActIdentity, ActReLU, ActGELU, ActHardswish, ActSoftplus, ActSigmoid} {
		epi := BiasActivation(act)
		g, err := NewGemm(smallConfig(), epi, d)
		if err != nil {
			t.Fatal(err)
		}
		got := g.Run(a, b, bias)
		want := ReferenceGemm(a, b, bias, epi)
		if !tensor.AllClose(got, want, 1e-2, 1e-3) {
			t.Errorf("%s epilogue deviates: max diff %g", act, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestGemmBetaMatrix(t *testing.T) {
	d := gpu.T4()
	epi := Epilogue{Alpha: 0.5, Beta: 2, OutDType: tensor.FP16}
	g, err := NewGemm(smallConfig(), epi, d)
	if err != nil {
		t.Fatal(err)
	}
	a := randMat(t, 6, 16, 32)
	b := randMat(t, 7, 32, 16)
	c := randMat(t, 8, 16, 16)
	got := g.Run(a, b, c)
	want := ReferenceGemm(a, b, c, epi)
	if !tensor.AllClose(got, want, 1e-2, 1e-3) {
		t.Errorf("alpha/beta epilogue deviates: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestGemmColumnReduction(t *testing.T) {
	d := gpu.T4()
	epi := DefaultEpilogue()
	epi.ReduceColumns = true
	g, err := NewGemm(smallConfig(), epi, d)
	if err != nil {
		t.Fatal(err)
	}
	a := randMat(t, 9, 24, 16)
	b := randMat(t, 10, 16, 8)
	out, red := g.RunWithReduction(a, b, nil)
	if red == nil {
		t.Fatal("reduction requested but nil returned")
	}
	for j := 0; j < 8; j++ {
		sum := float32(0)
		for i := 0; i < 24; i++ {
			sum += out.At(i, j)
		}
		if math.Abs(float64(sum-red.At(j))) > 1e-3 {
			t.Errorf("column %d reduction %g != %g", j, red.At(j), sum)
		}
	}
	// Without the flag no reduction is produced.
	g2, _ := NewGemm(smallConfig(), DefaultEpilogue(), d)
	if _, r := g2.RunWithReduction(a, b, nil); r != nil {
		t.Error("unexpected reduction tensor")
	}
}

func TestGemmFP32Output(t *testing.T) {
	d := gpu.T4()
	epi := DefaultEpilogue()
	epi.OutDType = tensor.FP32
	g, err := NewGemm(smallConfig(), epi, d)
	if err != nil {
		t.Fatal(err)
	}
	a := randMat(t, 11, 16, 16)
	b := randMat(t, 12, 16, 16)
	out := g.Run(a, b, nil)
	if out.DType() != tensor.FP32 {
		t.Error("output dtype conversion not honored")
	}
}

func TestGemmShapePanics(t *testing.T) {
	d := gpu.T4()
	g, _ := NewGemm(smallConfig(), DefaultEpilogue(), d)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := randMat(t, 13, 16, 32)
	bBad := randMat(t, 14, 16, 16) // K mismatch
	expectPanic("k mismatch", func() { g.Run(a, bBad, nil) })
	bUnaligned := randMat(t, 15, 32, 15) // N=15 violates align 8
	expectPanic("alignment", func() { g.Run(a, bUnaligned, nil) })
	biasBad := randMat(t, 16, 1, 7)
	bOK := randMat(t, 17, 32, 16)
	gb, _ := NewGemm(smallConfig(), BiasActivation(ActReLU), d)
	expectPanic("bias length", func() { gb.Run(a, bOK, tensor.Reshape(biasBad, 7)) })
}

func TestDescResources(t *testing.T) {
	d := gpu.T4()
	g, _ := NewGemm(smallConfig(), DefaultEpilogue(), d)
	k := g.Desc(d, 1024, 1024, 512)
	if k.GridBlocks != 16*16 {
		t.Errorf("grid = %d, want 256", k.GridBlocks)
	}
	if k.ThreadsPerBlock != 128 {
		t.Errorf("threads = %d", k.ThreadsPerBlock)
	}
	if k.FLOPs < 2*1024*1024*512 {
		t.Error("FLOPs must include the main loop")
	}
	if k.OpClass != gpu.OpClassTensorOp || k.DType != tensor.FP16 || k.AlignmentElems != 8 {
		t.Error("desc metadata wrong")
	}
}

func TestBiggerTilesWinOnBigGemm(t *testing.T) {
	d := gpu.T4()
	big, _ := NewGemm(stdConfig(), DefaultEpilogue(), d)
	small, _ := NewGemm(smallConfig(), DefaultEpilogue(), d)
	m, n, k := 4096, 4096, 4096
	if big.Time(d, m, n, k) >= small.Time(d, m, n, k) {
		t.Error("128x128 tiles should beat 64x64 on a huge GEMM")
	}
}

func TestSmallTilesWinOnSmallGemm(t *testing.T) {
	d := gpu.T4()
	big, _ := NewGemm(stdConfig(), DefaultEpilogue(), d)
	small, _ := NewGemm(smallConfig(), DefaultEpilogue(), d)
	// 256x256: only 4 big tiles -> SM starvation.
	if small.Time(d, 256, 256, 1024) >= big.Time(d, 256, 256, 1024) {
		t.Error("small tiles should win on a small GEMM (wave quantization)")
	}
}

func TestA100NearPeak(t *testing.T) {
	// Paper §3.2.3: generated FP16 GEMM reaches 300+ TFLOPS on A100,
	// >95% of the 312 TFLOPS limit. Our model must reproduce that for
	// a large, well-tiled GEMM.
	d := gpu.A100()
	cfg := GemmConfig{
		TB:     Shape3{256, 128, 32},
		Warp:   Shape3{64, 64, 32},
		Inst:   Shape3{16, 8, 16},
		Stages: 3, SwizzleLog: 2,
		AlignA: 8, AlignB: 8, AlignC: 8,
		Op: gpu.OpClassTensorOp, DType: tensor.FP16,
	}
	g, err := NewGemm(cfg, DefaultEpilogue(), d)
	if err != nil {
		t.Fatal(err)
	}
	m, n, k := 8192, 8192, 8192
	tflops := 2 * float64(m) * float64(n) * float64(k) / g.Time(d, m, n, k) / 1e12
	if tflops < 0.90*312 {
		t.Errorf("A100 big GEMM achieves %.0f TFLOPS, want >= 90%% of 312", tflops)
	}
	if tflops > 312 {
		t.Errorf("achieved %.0f TFLOPS exceeds hardware peak", tflops)
	}
}

func TestElementwiseDescIsMemoryBound(t *testing.T) {
	d := gpu.T4()
	k := ElementwiseDesc(d, 1280*3072, ActGELU, tensor.FP16)
	bd := d.Breakdown(k)
	if bd.Memory <= bd.Compute {
		t.Errorf("elementwise kernel should be memory bound: %+v", bd)
	}
}

// Property: GEMM is linear in A — gemm(a1+a2, b) == gemm(a1,b)+gemm(a2,b)
// within FP16 tolerance.
func TestGemmLinearityProperty(t *testing.T) {
	d := gpu.T4()
	g, _ := NewGemm(smallConfig(), Epilogue{Alpha: 1, OutDType: tensor.FP32}, d)
	f := func(seed int64) bool {
		a1 := tensor.New(tensor.FP16, 8, 16)
		a2 := tensor.New(tensor.FP16, 8, 16)
		b := tensor.New(tensor.FP16, 16, 8)
		a1.FillRandom(seed, 0.5)
		a2.FillRandom(seed+1, 0.5)
		b.FillRandom(seed+2, 0.5)
		sum := a1.Clone()
		for i, v := range a2.Data() {
			sum.Data()[i] += v
		}
		sum.Quantize()
		d1 := g.Run(a1, b, nil)
		d2 := g.Run(a2, b, nil)
		ds := g.Run(sum, b, nil)
		for i := range ds.Data() {
			if math.Abs(float64(ds.Data()[i]-(d1.Data()[i]+d2.Data()[i]))) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: identity weights make GEMM a copy.
func TestGemmIdentityProperty(t *testing.T) {
	d := gpu.T4()
	g, _ := NewGemm(smallConfig(), DefaultEpilogue(), d)
	eye := tensor.New(tensor.FP16, 16, 16)
	for i := 0; i < 16; i++ {
		eye.Set(1, i, i)
	}
	a := randMat(t, 20, 24, 16)
	out := g.Run(a, eye, nil)
	if tensor.MaxAbsDiff(out, a) != 0 {
		t.Error("A x I != A")
	}
}

func TestActivationFunctions(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float32
		want float64
		tol  float64
	}{
		{ActReLU, -1, 0, 0},
		{ActReLU, 2, 2, 0},
		{ActGELU, 0, 0, 1e-6},
		{ActGELU, 100, 100, 1e-3},
		{ActHardswish, -4, 0, 0},
		{ActHardswish, 4, 4, 0},
		{ActHardswish, 0, 0, 0},
		{ActHardswish, 1, 1.0 * 4 / 6, 1e-6},
		{ActSoftplus, 0, math.Log(2), 1e-6},
		{ActSoftplus, 30, 30, 1e-4},
		{ActSigmoid, 0, 0.5, 1e-6},
		{ActIdentity, -7.5, -7.5, 0},
	}
	for _, c := range cases {
		if got := c.act.Apply(c.x); math.Abs(float64(got)-c.want) > c.tol {
			t.Errorf("%s(%g) = %g, want %g", c.act, c.x, got, c.want)
		}
	}
}

func TestGELUMonotoneNearOrigin(t *testing.T) {
	prev := ActGELU.Apply(-3)
	for x := float32(-2.9); x < 3; x += 0.1 {
		cur := ActGELU.Apply(x)
		if cur < prev-0.02 {
			t.Fatalf("GELU decreased sharply at %g", x)
		}
		prev = cur
	}
}

func BenchmarkFunctionalGemm128(b *testing.B) {
	d := gpu.T4()
	g, _ := NewGemm(smallConfig(), DefaultEpilogue(), d)
	a := tensor.New(tensor.FP16, 128, 128)
	bb := tensor.New(tensor.FP16, 128, 128)
	a.FillRandom(1, 1)
	bb.FillRandom(2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Run(a, bb, nil)
	}
}

func BenchmarkDescPricing(b *testing.B) {
	d := gpu.T4()
	g, _ := NewGemm(stdConfig(), DefaultEpilogue(), d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Time(d, 1280, 3072, 768)
	}
}
