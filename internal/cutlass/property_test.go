package cutlass

import (
	"math/rand"
	"testing"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// randValidConfig draws from the template parameter lattice until a
// config passes validation (the lattice is dense enough that this
// terminates fast).
func randValidConfig(rng *rand.Rand, d *gpu.Device) GemmConfig {
	tbs := []int{32, 64, 128, 256}
	ks := []int{32, 64}
	for {
		tb := Shape3{tbs[rng.Intn(4)], tbs[rng.Intn(4)], ks[rng.Intn(2)]}
		warp := Shape3{tbs[rng.Intn(3)], tbs[rng.Intn(3)], tb.K}
		cfg := GemmConfig{
			TB: tb, Warp: warp, Inst: InstructionShape(d.Arch),
			Stages: 2, SwizzleLog: rng.Intn(4),
			AlignA: 8, AlignB: 8, AlignC: 8,
			Op: gpu.OpClassTensorOp, DType: tensor.FP16,
		}
		if d.Arch >= gpu.SM80 {
			cfg.Stages = 2 + rng.Intn(3)
		}
		if cfg.Validate(d) == nil {
			return cfg
		}
	}
}

// Property: every valid config produces a launchable, finitely priced
// kernel on aligned problems.
func TestValidConfigsAreLaunchableProperty(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 300; i++ {
		cfg := randValidConfig(rng, d)
		g := &Gemm{Config: cfg, Epilogue: DefaultEpilogue()}
		m := 64 * (1 + rng.Intn(32))
		n := 64 * (1 + rng.Intn(32))
		k := 64 * (1 + rng.Intn(32))
		desc := g.Desc(d, m, n, k)
		occ := d.Occupancy(desc)
		if occ.BlocksPerSM == 0 {
			t.Fatalf("valid config %s cannot launch (%+v)", cfg.Name(), occ)
		}
		tm := d.KernelTime(desc)
		if tm <= 0 || tm > 1 {
			t.Fatalf("config %s on (%d,%d,%d): time %g implausible", cfg.Name(), m, n, k, tm)
		}
		// Grid must cover the problem exactly once.
		tilesM := (m + cfg.TB.M - 1) / cfg.TB.M
		tilesN := (n + cfg.TB.N - 1) / cfg.TB.N
		if desc.GridBlocks != tilesM*tilesN {
			t.Fatalf("grid %d != %d x %d tiles", desc.GridBlocks, tilesM, tilesN)
		}
	}
}

// Property: traffic is at least compulsory (each operand once) and at
// most the no-reuse bound (re-read per tile row/column).
func TestTrafficBoundsProperty(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		cfg := randValidConfig(rng, d)
		m := 64 * (1 + rng.Intn(64))
		n := 64 * (1 + rng.Intn(64))
		k := 64 * (1 + rng.Intn(16))
		loadB, storeB := cfg.traffic(d, m, n, k, 2)
		compulsory := float64((m*k + k*n) * 2)
		tilesM := (m + cfg.TB.M - 1) / cfg.TB.M
		tilesN := (n + cfg.TB.N - 1) / cfg.TB.N
		worst := float64(m*k*2)*float64(tilesN) + float64(k*n*2)*float64(tilesM)
		if loadB < compulsory-1 || loadB > worst+1 {
			t.Fatalf("traffic %g outside [%g, %g] for %s on (%d,%d,%d)",
				loadB, compulsory, worst, cfg.Name(), m, n, k)
		}
		if storeB != float64(m*n*2) {
			t.Fatalf("store %g != %d", storeB, m*n*2)
		}
	}
}

// Property: GEMM time is (almost) monotone in problem size. Exact
// monotonicity does not hold on tiny grids — doubling N can double the
// number of active SMs and genuinely reduce latency, on real GPUs as
// in the model — so a 10% tolerance is allowed there; K (which adds
// work without adding parallelism) must be strictly monotone.
func TestTimeMonotoneInProblemProperty(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		cfg := randValidConfig(rng, d)
		g := &Gemm{Config: cfg, Epilogue: DefaultEpilogue()}
		m := 64 * (1 + rng.Intn(16))
		n := 64 * (1 + rng.Intn(16))
		k := 64 * (1 + rng.Intn(16))
		base := g.Time(d, m, n, k)
		if g.Time(d, m, n, 2*k) < base-1e-12 {
			t.Fatalf("time not monotone in K for %s at (%d,%d,%d)", cfg.Name(), m, n, k)
		}
		// M/N monotonicity only holds once the grid saturates the
		// device; below that, larger problems recruit idle SMs and can
		// genuinely run in less time.
		tilesM := (m + cfg.TB.M - 1) / cfg.TB.M
		tilesN := (n + cfg.TB.N - 1) / cfg.TB.N
		if tilesM*tilesN >= d.SMs {
			if g.Time(d, 2*m, n, k) < 0.95*base || g.Time(d, m, 2*n, k) < 0.95*base {
				t.Fatalf("time dropped on a larger problem for %s at (%d,%d,%d)", cfg.Name(), m, n, k)
			}
		}
	}
}

// Property: epilogue fusion never loses to the unfused pair
// (GEMM kernel + standalone elementwise kernel) on any activation.
func TestFusionAlwaysWinsProperty(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(13))
	acts := []Activation{ActReLU, ActGELU, ActHardswish, ActSoftplus, ActSigmoid}
	for i := 0; i < 200; i++ {
		cfg := randValidConfig(rng, d)
		act := acts[rng.Intn(len(acts))]
		m := 64 * (1 + rng.Intn(32))
		n := 64 * (1 + rng.Intn(32))
		k := 64 * (1 + rng.Intn(16))
		plain := &Gemm{Config: cfg, Epilogue: DefaultEpilogue()}
		fused := &Gemm{Config: cfg, Epilogue: BiasActivation(act)}
		unfusedT := plain.Time(d, m, n, k) + d.KernelTime(ElementwiseDesc(d, m*n, act, tensor.FP16))
		if fused.Time(d, m, n, k) > unfusedT {
			t.Fatalf("fusion lost for %s %s on (%d,%d,%d)", cfg.Name(), act, m, n, k)
		}
	}
}

// Property: functional GEMM output never contains NaN for finite,
// moderate inputs (FP16 overflow guarded by input scale).
func TestNoNaNProperty(t *testing.T) {
	d := gpu.T4()
	g, _ := NewGemm(smallConfig(), BiasActivation(ActSoftplus), d)
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 30; i++ {
		m := 8 * (1 + rng.Intn(4))
		k := 8 * (1 + rng.Intn(8))
		a := tensor.New(tensor.FP16, m, k)
		b := tensor.New(tensor.FP16, k, 16)
		bias := tensor.New(tensor.FP16, 16)
		a.FillRandom(int64(i), 2)
		b.FillRandom(int64(i+100), 2)
		bias.FillRandom(int64(i+200), 2)
		out := g.Run(a, b, bias)
		for _, v := range out.Data() {
			if v != v {
				t.Fatalf("NaN in output at iteration %d", i)
			}
		}
	}
}
