// Package cutlass is a Go reimplementation of the *shape* of NVIDIA
// CUTLASS: a templated, declaratively parameterized GEMM/Conv kernel
// library.
//
// A kernel is described by a GemmConfig — threadblock, warp, and
// instruction tile shapes, pipeline stages, threadblock swizzling,
// and per-operand alignment — exactly the parameter surface Bolt's
// profiler searches (paper §3.2.2). Configs validate against the same
// divisibility and capacity rules real CUTLASS enforces at compile
// time. Instantiated kernels execute functionally (correct numerics
// over emulated FP16) and lower themselves to gpu.KernelDesc for
// pricing on the device model.
package cutlass

import (
	"fmt"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// Shape3 is an (M, N, K) tile shape.
type Shape3 struct {
	M, N, K int
}

// String renders as "MxNxK" in CUTLASS kernel-name convention.
func (s Shape3) String() string { return fmt.Sprintf("%dx%dx%d", s.M, s.N, s.K) }

// Area returns M*N, the output footprint of the tile.
func (s Shape3) Area() int { return s.M * s.N }

// InstructionShape returns the native tensor-core MMA shape for an
// architecture (HMMA m16n8k8 on Turing, m16n8k16 on Ampere).
func InstructionShape(arch gpu.Arch) Shape3 {
	if arch >= gpu.SM80 {
		return Shape3{16, 8, 16}
	}
	return Shape3{16, 8, 8}
}

// GemmConfig selects one point in the CUTLASS template parameter space.
type GemmConfig struct {
	// TB, Warp, Inst are the threadblock, warp, and instruction tile
	// shapes. TB is partitioned into warps in M and N; Warp.K == TB.K.
	TB, Warp, Inst Shape3

	// Stages is the software pipeline depth of the global->shared
	// memory staging (2 on Turing; up to 4-5 on Ampere).
	Stages int

	// SwizzleLog selects the threadblock swizzling functor: tiles are
	// scheduled in 2^SwizzleLog × 2^SwizzleLog groups to improve L2
	// locality.
	SwizzleLog int

	// AlignA/B/C are the vector access widths in elements for the two
	// operands and the output (8 = 128-bit for FP16).
	AlignA, AlignB, AlignC int

	// Op selects tensor cores or SIMT CUDA cores.
	Op gpu.OpClass

	// DType is the operand element type (accumulation is FP32).
	DType tensor.DType
}

// WarpsM returns the number of warps along M.
func (c GemmConfig) WarpsM() int { return c.TB.M / c.Warp.M }

// WarpsN returns the number of warps along N.
func (c GemmConfig) WarpsN() int { return c.TB.N / c.Warp.N }

// WarpCount returns total warps per threadblock.
func (c GemmConfig) WarpCount() int { return c.WarpsM() * c.WarpsN() }

// Threads returns threads per threadblock.
func (c GemmConfig) Threads() int { return c.WarpCount() * 32 }

// SharedMemBytes returns the shared memory consumed by the pipelined
// A and B tile stages.
func (c GemmConfig) SharedMemBytes() int {
	return c.Stages * (c.TB.M + c.TB.N) * c.TB.K * c.DType.Size()
}

// RegsPerThread estimates the register budget: FP32 accumulators for
// the warp tile plus double-buffered operand fragments plus fixed
// overhead for pointers and predicates.
func (c GemmConfig) RegsPerThread() int {
	accum := c.Warp.M * c.Warp.N / 32
	operands := (c.Warp.M + c.Warp.N) * c.Inst.K / 32
	return accum + operands + 32
}

// Name renders a CUTLASS-style kernel name, e.g.
// "cutlass_tensorop_h1688gemm_128x128_32x2_align8".
func (c GemmConfig) Name() string {
	op := "simt_s"
	if c.Op == gpu.OpClassTensorOp {
		op = fmt.Sprintf("tensorop_h%d%d%d", c.Inst.M, c.Inst.N, c.Inst.K)
	}
	return fmt.Sprintf("cutlass_%sgemm_%dx%d_%dx%d_align%d",
		op, c.TB.M, c.TB.N, c.TB.K, c.Stages, c.AlignC)
}

// validAlign accepts the CUTLASS alignment ladder; 16 exists for
// 8-bit operands (16 x int8 = 128 bits).
func validAlign(a int) bool { return a == 1 || a == 2 || a == 4 || a == 8 || a == 16 }

// MaxAlignment returns the widest legal vector access (elements) for a
// dtype: 128 bits / element size.
func MaxAlignment(dt tensor.DType) int { return 16 / dt.Size() }

// Validate enforces the structural rules the CUTLASS template system
// checks at compile time plus the device resource limits that would
// make the kernel unlaunchable.
func (c GemmConfig) Validate(d *gpu.Device) error {
	if c.TB.M <= 0 || c.TB.N <= 0 || c.TB.K <= 0 {
		return fmt.Errorf("cutlass: non-positive threadblock shape %v", c.TB)
	}
	if c.Warp.M <= 0 || c.Warp.N <= 0 || c.Warp.K <= 0 {
		return fmt.Errorf("cutlass: non-positive warp shape %v", c.Warp)
	}
	if c.TB.M%c.Warp.M != 0 || c.TB.N%c.Warp.N != 0 {
		return fmt.Errorf("cutlass: warp %v does not tile threadblock %v", c.Warp, c.TB)
	}
	if c.Warp.K != c.TB.K {
		return fmt.Errorf("cutlass: warp K %d must equal threadblock K %d", c.Warp.K, c.TB.K)
	}
	if c.Op == gpu.OpClassTensorOp {
		if c.Inst.M <= 0 || c.Inst.N <= 0 || c.Inst.K <= 0 {
			return fmt.Errorf("cutlass: non-positive instruction shape %v", c.Inst)
		}
		if c.Warp.M%c.Inst.M != 0 || c.Warp.N%c.Inst.N != 0 || c.Warp.K%c.Inst.K != 0 {
			return fmt.Errorf("cutlass: instruction %v does not tile warp %v", c.Inst, c.Warp)
		}
		if c.DType == tensor.FP32 {
			return fmt.Errorf("cutlass: no FP32 tensor cores on %s", d.Arch)
		}
		if c.DType == tensor.INT8 && d.Arch < gpu.SM75 {
			return fmt.Errorf("cutlass: INT8 tensor cores (IMMA) require sm_75+, have %s", d.Arch)
		}
	}
	warps := c.WarpCount()
	if warps < 1 || warps > 16 {
		return fmt.Errorf("cutlass: %d warps per threadblock out of range [1,16]", warps)
	}
	if c.Threads() > d.MaxThreads {
		return fmt.Errorf("cutlass: %d threads exceeds device max %d", c.Threads(), d.MaxThreads)
	}
	if c.Stages < 2 || c.Stages > 5 {
		return fmt.Errorf("cutlass: stages %d out of range [2,5]", c.Stages)
	}
	if c.Stages > 2 && d.Arch < gpu.SM80 {
		return fmt.Errorf("cutlass: multistage (cp.async) pipelines require sm_80, have %s", d.Arch)
	}
	if smem := c.SharedMemBytes(); smem > d.SharedMemBlock {
		return fmt.Errorf("cutlass: %d B shared memory exceeds device %d B", smem, d.SharedMemBlock)
	}
	if regs := c.RegsPerThread(); regs > d.MaxRegsThread {
		return fmt.Errorf("cutlass: %d registers/thread exceeds device cap %d", regs, d.MaxRegsThread)
	}
	if regs := c.RegsPerThread() * c.Threads(); regs > d.RegistersPerSM {
		return fmt.Errorf("cutlass: block needs %d registers, SM has %d — kernel cannot launch", regs, d.RegistersPerSM)
	}
	if c.SwizzleLog < 0 || c.SwizzleLog > 3 {
		return fmt.Errorf("cutlass: swizzle log %d out of range [0,3]", c.SwizzleLog)
	}
	if !validAlign(c.AlignA) || !validAlign(c.AlignB) || !validAlign(c.AlignC) {
		return fmt.Errorf("cutlass: alignments must be 1/2/4/8, got %d/%d/%d", c.AlignA, c.AlignB, c.AlignC)
	}
	return nil
}

// SupportsProblem reports whether the config's alignments are legal for
// a given GEMM problem size: the contiguous dimension of each operand
// must be divisible by its alignment (paper §3.2.3 — unaligned shapes
// force alignment 1 or 2 kernels).
func (c GemmConfig) SupportsProblem(m, n, k int) bool {
	// A is MxK row-major (contiguous K); B is KxN row-major
	// (contiguous N); C/D are MxN (contiguous N).
	return k%c.AlignA == 0 && n%c.AlignB == 0 && n%c.AlignC == 0
}

// issueEff models the sustained fraction of peak math issue for the
// config's main loop: pipeline fill/drain cost over the K iterations,
// and per-warp amortization of shared-memory operand fetches (large
// warp tiles achieve a higher compute-to-memory ratio, one of the
// profiler's stated heuristics).
func (c GemmConfig) issueEff(k int) float64 {
	kIters := float64((k + c.TB.K - 1) / c.TB.K)
	pipe := kIters / (kIters + float64(c.Stages) - 1)
	warpArea := float64(c.Warp.M * c.Warp.N)
	warp := warpArea / (warpArea + 128)
	base := 0.98
	if c.Op == gpu.OpClassSIMT {
		base = 0.90
	}
	// Deeper software pipelines (cp.async multistage on sm_80) keep the
	// tensor cores fed across global-memory latency spikes. Normalized
	// so the 2-stage Turing baseline is 1.0.
	feed := (float64(c.Stages) / (float64(c.Stages) + 0.35)) / (2 / 2.35)
	return base * pipe * warp * feed * alignIssueEff(min2(c.AlignA, c.AlignB))
}

// alignIssueEff models the main-loop slowdown of narrow-alignment
// kernels: below 128-bit vectors, every shared-memory stage moves data
// with more (and predicated) instructions, and ldmatrix feeding the
// tensor cores degrades to element loads (paper §3.2.3 — this is why
// Bolt pads to alignment 8 rather than just accepting slower DRAM
// access).
func alignIssueEff(align int) float64 {
	switch {
	case align >= 8:
		return 1.0
	case align >= 4:
		return 0.72
	case align >= 2:
		return 0.42
	default:
		return 0.28
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// IssueEffForK exposes the main-loop issue-efficiency model so that
// fused kernels built outside this package (persistent kernels) can
// price their stacked main loops consistently.
func (c GemmConfig) IssueEffForK(k int) float64 { return c.issueEff(k) }

// tileCounts returns grid tiling of an m x n output.
func (c GemmConfig) tileCounts(m, n int) (tilesM, tilesN int) {
	return (m + c.TB.M - 1) / c.TB.M, (n + c.TB.N - 1) / c.TB.N
}

// L2Discounted returns the DRAM traffic for an operand whose
// compulsory footprint is read `rereads` times by different tile
// groups: if the whole operand stays resident in L2 (with headroom for
// the other streams), only the compulsory read reaches DRAM.
func L2Discounted(d *gpu.Device, footprintB float64, rereads int) float64 {
	if rereads <= 1 || footprintB*4 <= float64(d.L2Bytes) {
		return footprintB
	}
	return footprintB * float64(rereads)
}

// traffic estimates DRAM traffic (bytes loaded, stored) for an
// m x n x k GEMM under this config. Threadblock swizzling schedules
// tiles in g x g groups whose operand rows/columns stay L2-resident,
// dividing redundant re-reads by g (shrunk when the group footprint
// exceeds L2); an operand small enough to live in L2 outright is only
// read from DRAM once regardless.
func (c GemmConfig) traffic(d *gpu.Device, m, n, k int, outSize int) (loadB, storeB float64) {
	esize := c.DType.Size()
	tilesM, tilesN := c.tileCounts(m, n)
	g := 1 << c.SwizzleLog
	if g > tilesM {
		g = tilesM
	}
	if g > tilesN {
		g = tilesN
	}
	if g < 1 {
		g = 1
	}
	// Tiles in a swizzle group march through K together, so the shared
	// L2 working set is one pipeline slice per group member, not the
	// whole K depth. Shrink the group only if even the slice footprint
	// overflows L2 (rare).
	for g > 1 && g*(c.TB.M+c.TB.N)*c.TB.K*c.Stages*esize*4 > d.L2Bytes {
		g /= 2
	}
	aFoot := float64(m) * float64(k) * float64(esize)
	bFoot := float64(k) * float64(n) * float64(esize)
	loadB = L2Discounted(d, aFoot, (tilesN+g-1)/g) + L2Discounted(d, bFoot, (tilesM+g-1)/g)
	return loadB, float64(m) * float64(n) * float64(outSize)
}
