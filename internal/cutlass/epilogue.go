package cutlass

import (
	"fmt"
	"math"

	"bolt/internal/tensor"
)

// Activation enumerates the elementwise epilogue functions CUTLASS can
// fuse after the accumulator (paper §3.3 explores these for the
// system-model codesign study).
type Activation int

const (
	// ActIdentity applies no nonlinearity.
	ActIdentity Activation = iota
	// ActReLU is max(0, x).
	ActReLU
	// ActGELU is the Gaussian error linear unit (tanh approximation).
	ActGELU
	// ActHardswish is x * relu6(x+3) / 6.
	ActHardswish
	// ActSoftplus is log(1 + exp(x)).
	ActSoftplus
	// ActSigmoid is 1 / (1 + exp(-x)).
	ActSigmoid
)

// String names the activation as models spell it.
func (a Activation) String() string {
	switch a {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	case ActGELU:
		return "gelu"
	case ActHardswish:
		return "hardswish"
	case ActSoftplus:
		return "softplus"
	case ActSigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// Apply evaluates the activation in FP32, matching how the epilogue
// operates on FP32 accumulator fragments before the half store.
func (a Activation) Apply(x float32) float32 {
	switch a {
	case ActReLU:
		if x < 0 {
			return 0
		}
		return x
	case ActGELU:
		// tanh approximation used by CUTLASS's GELU_taylor.
		x64 := float64(x)
		return float32(0.5 * x64 * (1 + math.Tanh(0.7978845608028654*(x64+0.044715*x64*x64*x64))))
	case ActHardswish:
		r := float64(x) + 3
		if r < 0 {
			r = 0
		} else if r > 6 {
			r = 6
		}
		return float32(float64(x) * r / 6)
	case ActSoftplus:
		x64 := float64(x)
		if x64 > 20 { // avoid overflow; softplus(x) ~= x
			return x
		}
		return float32(math.Log1p(math.Exp(x64)))
	case ActSigmoid:
		return float32(1 / (1 + math.Exp(-float64(x))))
	default:
		return x
	}
}

// FLOPs returns the approximate instruction cost per element, used when
// pricing a standalone elementwise kernel (the unfused baseline).
func (a Activation) FLOPs() float64 {
	switch a {
	case ActReLU:
		return 1
	case ActGELU:
		return 5 // tanh-approx polynomial + one SFU tanh
	case ActHardswish:
		return 4 // clamp + multiply, plain ALU
	case ActSoftplus:
		return 9 // exp + log1p, two SFU trips
	case ActSigmoid:
		return 6
	default:
		return 0
	}
}

// Epilogue describes the fused tail of a GEMM/Conv kernel:
//
//	D = act(alpha * accum + beta * C [+ bias broadcast over columns])
//
// optionally followed by a partial reduction over columns. This covers
// the four CUTLASS epilogue patterns the paper lists in §3.1:
// element-wise operators, data type conversion (OutDType), broadcast
// vector over columns (BiasVector), and partial column reduction.
type Epilogue struct {
	Alpha float32
	Beta  float32
	// BiasVector: C is interpreted as a length-N vector broadcast over
	// rows (the BiasAdd pattern) rather than a full matrix.
	BiasVector bool
	Act        Activation
	// OutDType is the store type (the "data type conversion" pattern).
	OutDType tensor.DType
	// ReduceColumns additionally emits a length-N column-sum tensor.
	ReduceColumns bool
}

// DefaultEpilogue is the plain linear-combination epilogue
// (alpha=1, beta=0, identity activation, FP16 out).
func DefaultEpilogue() Epilogue {
	return Epilogue{Alpha: 1, OutDType: tensor.FP16}
}

// BiasActivation builds the common BiasAdd+activation epilogue.
func BiasActivation(act Activation) Epilogue {
	return Epilogue{Alpha: 1, Beta: 1, BiasVector: true, Act: act, OutDType: tensor.FP16}
}

// apply computes one output element from an accumulator value and the
// corresponding source operand element (bias or C matrix; 0 if none).
func (e Epilogue) apply(acc float32, c float32) float32 {
	v := e.Alpha*acc + e.Beta*c
	return e.Act.Apply(v)
}

// sfuPenalty converts one epilogue (CUDA-core / SFU) operation into
// tensor-core-equivalent flops for pricing: the epilogue phase issues
// to the FP32 ALUs and the special-function units, which run at a
// small fraction of HMMA throughput. This is why exotic activations
// have a visible (if modest) cost even when fused (paper Table 4:
// Softplus costs ~7.7% end-to-end).
const sfuPenalty = 10

// flopsPerElement counts epilogue arithmetic per output element in
// tensor-core-equivalent flops (for kernel pricing; see sfuPenalty).
func (e Epilogue) flopsPerElement() float64 {
	f := 1.0 // alpha scale
	if e.Beta != 0 {
		f += 2
	}
	f += e.Act.FLOPs() * sfuPenalty
	if e.ReduceColumns {
		f++
	}
	return f
}

// FLOPsOn returns the total epilogue arithmetic for an m×n output, for
// external kernel pricing (persistent kernels).
func (e Epilogue) FLOPsOn(m, n int) float64 {
	return e.flopsPerElement() * float64(m) * float64(n)
}

// String summarizes the epilogue for kernel names.
func (e Epilogue) String() string {
	s := "linear_combination"
	if e.BiasVector {
		s += "_bias"
	}
	if e.Act != ActIdentity {
		s += "_" + e.Act.String()
	}
	if e.ReduceColumns {
		s += "_reduce"
	}
	return s
}
