package cutlass

import (
	"strings"
	"testing"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// stdConfig is a canonical valid Turing FP16 tensor-op configuration.
func stdConfig() GemmConfig {
	return GemmConfig{
		TB:     Shape3{128, 128, 32},
		Warp:   Shape3{64, 64, 32},
		Inst:   Shape3{16, 8, 8},
		Stages: 2, SwizzleLog: 1,
		AlignA: 8, AlignB: 8, AlignC: 8,
		Op: gpu.OpClassTensorOp, DType: tensor.FP16,
	}
}

func TestValidConfig(t *testing.T) {
	d := gpu.T4()
	if err := stdConfig().Validate(d); err != nil {
		t.Fatalf("canonical config invalid: %v", err)
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	c := stdConfig()
	if c.WarpsM() != 2 || c.WarpsN() != 2 || c.WarpCount() != 4 {
		t.Errorf("warp partition wrong: %d x %d", c.WarpsM(), c.WarpsN())
	}
	if c.Threads() != 128 {
		t.Errorf("threads = %d, want 128", c.Threads())
	}
	// smem = 2 stages * (128+128)*32 els * 2 B = 32 KiB
	if c.SharedMemBytes() != 32<<10 {
		t.Errorf("smem = %d, want 32768", c.SharedMemBytes())
	}
	// regs = 64*64/32 + (64+64)*8/32 + 32 = 128+32+32 = 192
	if c.RegsPerThread() != 192 {
		t.Errorf("regs = %d, want 192", c.RegsPerThread())
	}
	if !strings.Contains(c.Name(), "tensorop_h1688gemm_128x128_32x2_align8") {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestInstructionShapePerArch(t *testing.T) {
	if InstructionShape(gpu.SM75) != (Shape3{16, 8, 8}) {
		t.Error("Turing HMMA shape wrong")
	}
	if InstructionShape(gpu.SM80) != (Shape3{16, 8, 16}) {
		t.Error("Ampere HMMA shape wrong")
	}
	if InstructionShape(gpu.SM70) != (Shape3{16, 8, 8}) {
		t.Error("Volta should fall back to 16x8x8")
	}
}

func TestInvalidConfigs(t *testing.T) {
	d := gpu.T4()
	mutations := []struct {
		name string
		mut  func(*GemmConfig)
		want string
	}{
		{"warp does not tile tb", func(c *GemmConfig) { c.Warp.M = 48 }, "does not tile threadblock"},
		{"warp K != tb K", func(c *GemmConfig) { c.Warp.K = 16 }, "warp K"},
		{"inst does not tile warp", func(c *GemmConfig) { c.Inst = Shape3{16, 8, 3} }, "does not tile warp"},
		{"too many warps", func(c *GemmConfig) { c.TB = Shape3{512, 512, 32}; c.Warp = Shape3{32, 32, 32} }, "warps per threadblock"},
		{"stages too low", func(c *GemmConfig) { c.Stages = 1 }, "stages"},
		{"multistage on turing", func(c *GemmConfig) { c.Stages = 3 }, "sm_80"},
		{"smem overflow", func(c *GemmConfig) { c.TB = Shape3{256, 256, 64}; c.Warp = Shape3{128, 128, 64} }, ""},
		{"bad alignment", func(c *GemmConfig) { c.AlignA = 3 }, "alignments"},
		{"bad swizzle", func(c *GemmConfig) { c.SwizzleLog = 5 }, "swizzle"},
		{"fp32 tensorop", func(c *GemmConfig) { c.DType = tensor.FP32 }, "no FP32 tensor cores"},
		{"zero tb", func(c *GemmConfig) { c.TB.M = 0 }, "non-positive"},
		{"negative warp", func(c *GemmConfig) { c.Warp.N = -32 }, ""},
	}
	for _, m := range mutations {
		c := stdConfig()
		m.mut(&c)
		err := c.Validate(d)
		if err == nil {
			t.Errorf("%s: expected validation error", m.name)
			continue
		}
		if m.want != "" && !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestMultistageValidOnAmpere(t *testing.T) {
	c := stdConfig()
	c.Inst = Shape3{16, 8, 16}
	c.Stages = 4
	if err := c.Validate(gpu.A100()); err != nil {
		t.Errorf("4-stage config should be valid on A100: %v", err)
	}
}

func TestRegisterOverflowRejected(t *testing.T) {
	d := gpu.T4()
	c := stdConfig()
	// One warp owning a 128x128 tile: 512 accumulator regs alone.
	c.TB = Shape3{128, 128, 32}
	c.Warp = Shape3{128, 128, 32}
	if err := c.Validate(d); err == nil {
		t.Error("128x128 warp tile should exceed the register cap")
	}
}

func TestSupportsProblem(t *testing.T) {
	c := stdConfig()
	if !c.SupportsProblem(1024, 1024, 1024) {
		t.Error("aligned problem rejected")
	}
	if c.SupportsProblem(1024, 1022, 1024) {
		t.Error("N not divisible by 8 must be rejected at alignment 8")
	}
	if c.SupportsProblem(1024, 1024, 1023) {
		t.Error("K not divisible by 8 must be rejected at alignment 8")
	}
	c.AlignA, c.AlignB, c.AlignC = 2, 2, 2
	if !c.SupportsProblem(1024, 1022, 1024) {
		t.Error("alignment-2 kernel should accept even dims")
	}
	// M is never alignment constrained for row-major A.
	if !c.SupportsProblem(33, 1024, 1024) {
		t.Error("odd M must be accepted")
	}
}

func TestIssueEffProperties(t *testing.T) {
	c := stdConfig()
	// Longer K amortizes pipeline fill: efficiency increases.
	if !(c.issueEff(4096) > c.issueEff(256) && c.issueEff(256) > c.issueEff(32)) {
		t.Error("issue efficiency must increase with K depth")
	}
	// Bigger warp tiles amortize operand fetch.
	small := c
	small.Warp = Shape3{32, 32, 32}
	if c.issueEff(1024) <= small.issueEff(1024) {
		t.Error("larger warp tile should have higher issue efficiency")
	}
	if e := c.issueEff(4096); e <= 0 || e > 1 {
		t.Errorf("issueEff out of range: %f", e)
	}
}

func TestTrafficModel(t *testing.T) {
	d := gpu.T4()
	c := stdConfig()
	m, n, k := 1024, 1024, 1024
	loadB, storeB := c.traffic(d, m, n, k, 2)
	if storeB != float64(m*n*2) {
		t.Errorf("store bytes %g, want %d", storeB, m*n*2)
	}
	compulsory := float64((m*k + k*n) * 2)
	if loadB < compulsory {
		t.Errorf("load bytes %g below compulsory %g", loadB, compulsory)
	}
	// More swizzling (bigger tile groups) must not increase traffic.
	c2 := c
	c2.SwizzleLog = 3
	load2, _ := c2.traffic(d, m, n, k, 2)
	if load2 > loadB {
		t.Errorf("swizzle 8 traffic %g > swizzle 2 traffic %g", load2, loadB)
	}
	// No swizzle loads every tile's operands separately.
	c0 := c
	c0.SwizzleLog = 0
	load0, _ := c0.traffic(d, m, n, k, 2)
	if load0 <= loadB {
		t.Errorf("swizzle 0 should have more traffic: %g vs %g", load0, loadB)
	}
}

func TestTrafficTinyProblem(t *testing.T) {
	d := gpu.T4()
	c := stdConfig()
	// Problem smaller than one threadblock tile.
	loadB, storeB := c.traffic(d, 16, 16, 32, 2)
	if loadB <= 0 || storeB != 16*16*2 {
		t.Errorf("tiny problem traffic wrong: load %g store %g", loadB, storeB)
	}
}
