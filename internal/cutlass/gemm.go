package cutlass

import (
	"fmt"
	"runtime"
	"sync"

	"bolt/internal/fp16"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// Gemm is an instantiated GEMM kernel template: a tile configuration
// plus a fused epilogue. It computes D = epilogue(A·B, C) where A is
// M×K and B is K×N, both row-major.
type Gemm struct {
	Config   GemmConfig
	Epilogue Epilogue
}

// NewGemm instantiates the template after validating the configuration.
func NewGemm(cfg GemmConfig, epi Epilogue, d *gpu.Device) (*Gemm, error) {
	if err := cfg.Validate(d); err != nil {
		return nil, err
	}
	return &Gemm{Config: cfg, Epilogue: epi}, nil
}

// Name returns the full kernel name including the epilogue.
func (g *Gemm) Name() string {
	return g.Config.Name() + "_" + g.Epilogue.String()
}

// Run executes the kernel functionally. A is M×K, B is K×N. c is the
// epilogue source operand: a length-N bias vector when
// Epilogue.BiasVector is set, an M×N matrix when Beta != 0 otherwise,
// or nil. The result is quantized to the epilogue's output dtype.
// Accumulation is FP32, as on tensor cores.
func (g *Gemm) Run(a, b, c *tensor.Tensor) *tensor.Tensor {
	d, _ := g.run(nil, a, b, c)
	return d
}

// RunInto executes like Run but writes the result into dst, which must
// be an M×N tensor of the epilogue's output dtype and must not alias
// any operand (the planner guarantees this for arena destinations).
// A nil dst allocates. It returns the destination.
func (g *Gemm) RunInto(dst *tensor.Tensor, a, b, c *tensor.Tensor) *tensor.Tensor {
	d, _ := g.run(dst, a, b, c)
	return d
}

// RunWithReduction executes like Run and additionally returns the
// column-sum reduction tensor when Epilogue.ReduceColumns is set
// (nil otherwise).
func (g *Gemm) RunWithReduction(a, b, c *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	return g.run(nil, a, b, c)
}

func (g *Gemm) run(out *tensor.Tensor, a, b, c *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	as, bs := a.Shape(), b.Shape()
	if len(as) != 2 || len(bs) != 2 {
		panic(fmt.Sprintf("cutlass: gemm operands must be 2-D, got %v x %v", as, bs))
	}
	m, k := as[0], as[1]
	kb, n := bs[0], bs[1]
	if k != kb {
		panic(fmt.Sprintf("cutlass: gemm K mismatch %d vs %d", k, kb))
	}
	if !g.Config.SupportsProblem(m, n, k) {
		panic(fmt.Sprintf("cutlass: problem (%d,%d,%d) violates alignment %d/%d/%d",
			m, n, k, g.Config.AlignA, g.Config.AlignB, g.Config.AlignC))
	}
	var cdata []float32
	if c != nil {
		cs := c.Shape()
		if g.Epilogue.BiasVector {
			if c.NumElements() != n {
				panic(fmt.Sprintf("cutlass: bias length %d != N %d", c.NumElements(), n))
			}
		} else if len(cs) != 2 || cs[0] != m || cs[1] != n {
			panic(fmt.Sprintf("cutlass: C shape %v != (%d, %d)", cs, m, n))
		}
		cdata = c.Data()
	}

	if out == nil {
		out = tensor.New(g.Epilogue.OutDType, m, n)
	} else if out.NumElements() != m*n {
		panic(fmt.Sprintf("cutlass: gemm destination has %d elements, want %dx%d", out.NumElements(), m, n))
	}
	od := out.Data()
	ad, bd := a.Data(), b.Data()
	quant := g.Epilogue.OutDType == tensor.FP16

	rowsDone := parallelRows(m, func(i0, i1 int) {
		accp := getAcc(n)
		defer putAcc(accp)
		acc := *accp
		for i := i0; i < i1; i++ {
			for j := range acc {
				acc[j] = 0
			}
			arow := ad[i*k : (i+1)*k]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := bd[kk*n : (kk+1)*n]
				for j := 0; j < n; j++ {
					acc[j] += av * brow[j]
				}
			}
			orow := od[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				var cv float32
				if cdata != nil {
					if g.Epilogue.BiasVector {
						cv = cdata[j]
					} else {
						cv = cdata[i*n+j]
					}
				}
				v := g.Epilogue.apply(acc[j], cv)
				if quant {
					v = fp16.ToFloat32(fp16.FromFloat32(v))
				}
				orow[j] = v
			}
		}
	})
	_ = rowsDone

	// INT8 outputs are quantized dynamically: a serial max-abs scan
	// picks the per-tensor symmetric scale (maxAbs/127), then the whole
	// output snaps onto that grid. Doing it as a post-pass keeps the
	// result independent of the parallelRows partitioning.
	if g.Epilogue.OutDType == tensor.INT8 {
		out.CalibrateScale()
	}

	var reduced *tensor.Tensor
	if g.Epilogue.ReduceColumns {
		reduced = tensor.New(tensor.FP32, n)
		rd := reduced.Data()
		for i := 0; i < m; i++ {
			row := od[i*n : (i+1)*n]
			for j, v := range row {
				rd[j] += v
			}
		}
	}
	return out, reduced
}

// accPool recycles per-worker accumulator scratch so the serving hot
// path does not allocate one slice per kernel invocation.
var accPool sync.Pool

func getAcc(n int) *[]float32 {
	if v, _ := accPool.Get().(*[]float32); v != nil && cap(*v) >= n {
		*v = (*v)[:n]
		return v
	}
	s := make([]float32, n)
	return &s
}

func putAcc(s *[]float32) { accPool.Put(s) }

// rowTask is one chunk of a parallelRows call, executed by the
// persistent worker pool.
type rowTask struct {
	f      func(i0, i1 int)
	i0, i1 int
	wg     *sync.WaitGroup
}

func (t rowTask) run() {
	t.f(t.i0, t.i1)
	t.wg.Done()
}

var (
	rowPoolOnce sync.Once
	rowTasks    chan rowTask
)

// startRowPool spawns the long-lived workers. A persistent pool (vs.
// per-call goroutines) keeps the per-kernel cost to one counter
// allocation, which is what lets a planned Module.Run stay nearly
// allocation-free.
func startRowPool() {
	n := runtime.GOMAXPROCS(0)
	rowTasks = make(chan rowTask, 4*n)
	for w := 0; w < n; w++ {
		go func() {
			for t := range rowTasks {
				t.run()
			}
		}()
	}
}

// parallelRows splits [0, m) across the persistent worker pool. Small
// problems run inline to avoid synchronization overhead in tight test
// loops; when the pool's queue is full, chunks also run inline rather
// than block. Before parking, the submitter drains the queue itself,
// so a task that re-enters parallelRows cannot deadlock the pool: a
// goroutine only ever parks waiting on chunks held by actively-running
// goroutines (the wait graph follows task ownership and is acyclic).
func parallelRows(m int, f func(i0, i1 int)) int {
	workers := runtime.GOMAXPROCS(0)
	if m < 64 || workers == 1 {
		f(0, m)
		return 1
	}
	if workers > m {
		workers = m
	}
	rowPoolOnce.Do(startRowPool)
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < m; i0 += chunk {
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		wg.Add(1)
		t := rowTask{f: f, i0: i0, i1: i1, wg: &wg}
		select {
		case rowTasks <- t:
		default:
			t.run()
		}
	}
	// Help with whatever is queued (our own chunks included), then
	// park until stolen chunks finish.
	for {
		select {
		case t := <-rowTasks:
			t.run()
			continue
		default:
		}
		break
	}
	wg.Wait()
	return workers
}

// Desc lowers one launch of this kernel on an m×n×k problem to the
// device simulator's descriptor.
func (g *Gemm) Desc(d *gpu.Device, m, n, k int) gpu.KernelDesc {
	cfg := g.Config
	tilesM, tilesN := cfg.tileCounts(m, n)
	loadB, storeB := cfg.traffic(d, m, n, k, g.Epilogue.OutDType.Size())
	if g.Epilogue.Beta != 0 {
		if g.Epilogue.BiasVector {
			loadB += float64(n) * float64(cfg.DType.Size())
		} else {
			loadB += float64(m) * float64(n) * float64(cfg.DType.Size())
		}
	}
	flops := 2 * float64(m) * float64(n) * float64(k)
	flops += g.Epilogue.flopsPerElement() * float64(m) * float64(n)
	align := cfg.AlignA
	if cfg.AlignB < align {
		align = cfg.AlignB
	}
	if cfg.AlignC < align {
		align = cfg.AlignC
	}
	return gpu.KernelDesc{
		Name:            g.Name(),
		GridBlocks:      tilesM * tilesN,
		ThreadsPerBlock: cfg.Threads(),
		RegsPerThread:   cfg.RegsPerThread(),
		SharedMemBytes:  cfg.SharedMemBytes(),
		FLOPs:           flops,
		GlobalLoadB:     loadB,
		GlobalStoreB:    storeB,
		OpClass:         cfg.Op,
		DType:           cfg.DType,
		AlignmentElems:  align,
		IssueEff:        cfg.issueEff(k),
		MemEff:          0.92,
	}
}

// Time prices one launch on the device model.
func (g *Gemm) Time(d *gpu.Device, m, n, k int) float64 {
	return d.KernelTime(g.Desc(d, m, n, k))
}

// ReferenceGemm computes D = act(alpha*A·B + beta*C) with no tiling at
// FP64 accumulation — the oracle kernels are validated against.
func ReferenceGemm(a, b, c *tensor.Tensor, epi Epilogue) *tensor.Tensor {
	as, bs := a.Shape(), b.Shape()
	m, k, n := as[0], as[1], bs[1]
	out := tensor.New(epi.OutDType, m, n)
	ad, bd, od := a.Data(), b.Data(), out.Data()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for kk := 0; kk < k; kk++ {
				sum += float64(ad[i*k+kk]) * float64(bd[kk*n+j])
			}
			var cv float32
			if c != nil {
				if epi.BiasVector {
					cv = c.Data()[j]
				} else {
					cv = c.Data()[i*n+j]
				}
			}
			od[i*n+j] = epi.apply(float32(sum), cv)
		}
	}
	if epi.OutDType == tensor.INT8 {
		out.CalibrateScale() // match the templated kernels' dynamic scale
	} else {
		out.Quantize()
	}
	return out
}

// ElementwiseDesc prices the standalone BiasAdd+activation kernel that
// a non-fused pipeline must launch after the GEMM: it re-reads and
// re-writes the full activation (this is exactly the memory traffic
// epilogue fusion eliminates).
func ElementwiseDesc(d *gpu.Device, elems int, act Activation, dt tensor.DType) gpu.KernelDesc {
	threads := 256
	blocks := (elems + threads*4 - 1) / (threads * 4)
	if blocks == 0 {
		blocks = 1
	}
	return gpu.KernelDesc{
		Name:            "elementwise_" + act.String(),
		GridBlocks:      blocks,
		ThreadsPerBlock: threads,
		RegsPerThread:   32,
		FLOPs:           (2 + act.FLOPs()) * float64(elems),
		GlobalLoadB:     float64(elems * dt.Size()), // activation re-read (+bias, negligible)
		GlobalStoreB:    float64(elems * dt.Size()),
		OpClass:         gpu.OpClassSIMT,
		DType:           dt,
		AlignmentElems:  8,
		IssueEff:        0.85,
		MemEff:          0.95,
	}
}
