package cutlass

import (
	"fmt"

	"bolt/internal/fp16"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// ConvShape describes a 2-D convolution problem in NHWC layout (the
// only layout CUTLASS supports for convolutions — paper §3.2.3).
// Weights are OHWI: (OC, KH, KW, IC).
type ConvShape struct {
	N, H, W, IC, OC  int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
}

// Conv3x3 builds the common square-kernel shape used throughout the
// paper's tables.
func Conv3x3(n, h, w, ic, oc, stride, pad int) ConvShape {
	return ConvShape{N: n, H: h, W: w, IC: ic, OC: oc, KH: 3, KW: 3,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
}

// Conv1x1 builds a pointwise convolution (stride 1, no padding) — the
// shape persistent fusion requires for trailing layers.
func Conv1x1(n, h, w, ic, oc int) ConvShape {
	return ConvShape{N: n, H: h, W: w, IC: ic, OC: oc, KH: 1, KW: 1,
		StrideH: 1, StrideW: 1}
}

// OutH returns the output height.
func (s ConvShape) OutH() int { return (s.H+2*s.PadH-s.KH)/s.StrideH + 1 }

// OutW returns the output width.
func (s ConvShape) OutW() int { return (s.W+2*s.PadW-s.KW)/s.StrideW + 1 }

// ImplicitGemm returns the (M, N, K) of the implicit-GEMM formulation:
// M = N·OH·OW (one row per output pixel), N = OC, K = IC·KH·KW.
func (s ConvShape) ImplicitGemm() (m, n, k int) {
	return s.N * s.OutH() * s.OutW(), s.OC, s.IC * s.KH * s.KW
}

// FLOPs returns the multiply-add work (2 flops per MAC).
func (s ConvShape) FLOPs() float64 {
	m, n, k := s.ImplicitGemm()
	return 2 * float64(m) * float64(n) * float64(k)
}

// String renders like the paper's workload tables.
func (s ConvShape) String() string {
	return fmt.Sprintf("conv %dx%dx%dx%d k%dx%d s%d ic%d oc%d",
		s.N, s.H, s.W, s.IC, s.KH, s.KW, s.StrideH, s.IC, s.OC)
}

// Validate sanity-checks the problem geometry.
func (s ConvShape) Validate() error {
	if s.N <= 0 || s.H <= 0 || s.W <= 0 || s.IC <= 0 || s.OC <= 0 {
		return fmt.Errorf("cutlass: non-positive conv dims %+v", s)
	}
	if s.KH <= 0 || s.KW <= 0 || s.StrideH <= 0 || s.StrideW <= 0 {
		return fmt.Errorf("cutlass: non-positive kernel/stride %+v", s)
	}
	if s.PadH < 0 || s.PadW < 0 {
		return fmt.Errorf("cutlass: negative padding %+v", s)
	}
	if s.OutH() <= 0 || s.OutW() <= 0 {
		return fmt.Errorf("cutlass: empty output for %+v", s)
	}
	return nil
}

// Conv2D is an instantiated implicit-GEMM forward-convolution kernel.
type Conv2D struct {
	Shape    ConvShape
	Config   GemmConfig
	Epilogue Epilogue
}

// NewConv2D validates and instantiates the template.
func NewConv2D(shape ConvShape, cfg GemmConfig, epi Epilogue, d *gpu.Device) (*Conv2D, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(d); err != nil {
		return nil, err
	}
	return &Conv2D{Shape: shape, Config: cfg, Epilogue: epi}, nil
}

// Name returns the kernel name in CUTLASS conv convention.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("%s_fprop_%s", c.Config.Name(), c.Epilogue.String())
}

// SupportsProblem reports whether the operand alignments divide the
// channel counts (NHWC innermost dimension is C; paper §3.2.3: a
// 3-input-channel first layer forces alignment 1).
func (c *Conv2D) SupportsProblem() bool {
	s := c.Shape
	// Activation & weight contiguous dim: IC; output contiguous dim: OC.
	return s.IC%c.Config.AlignA == 0 && s.IC%c.Config.AlignB == 0 && s.OC%c.Config.AlignC == 0
}

// Run executes the convolution functionally. x is NHWC (N,H,W,IC);
// w is OHWI (OC,KH,KW,IC); bias is a length-OC vector or nil. The
// output is NHWC (N,OH,OW,OC), quantized to the epilogue out dtype.
func (c *Conv2D) Run(x, w, bias *tensor.Tensor) *tensor.Tensor {
	return c.RunInto(nil, x, w, bias)
}

// RunInto executes like Run but writes into dst, an NHWC
// (N,OH,OW,OC) tensor of the epilogue's output dtype that must not
// alias any operand. A nil dst allocates. It returns the destination.
func (c *Conv2D) RunInto(dst *tensor.Tensor, x, w, bias *tensor.Tensor) *tensor.Tensor {
	s := c.Shape
	xs, ws := x.Shape(), w.Shape()
	if len(xs) != 4 || xs[0] != s.N || xs[1] != s.H || xs[2] != s.W || xs[3] != s.IC {
		panic(fmt.Sprintf("cutlass: conv input shape %v != NHWC of %+v", xs, s))
	}
	if len(ws) != 4 || ws[0] != s.OC || ws[1] != s.KH || ws[2] != s.KW || ws[3] != s.IC {
		panic(fmt.Sprintf("cutlass: conv weight shape %v != OHWI of %+v", ws, s))
	}
	if !c.SupportsProblem() {
		panic(fmt.Sprintf("cutlass: conv %+v violates alignment %d/%d/%d",
			s, c.Config.AlignA, c.Config.AlignB, c.Config.AlignC))
	}
	var bd []float32
	if bias != nil {
		if bias.NumElements() != s.OC {
			panic(fmt.Sprintf("cutlass: bias length %d != OC %d", bias.NumElements(), s.OC))
		}
		bd = bias.Data()
	}
	oh, ow := s.OutH(), s.OutW()
	out := dst
	if out == nil {
		out = tensor.NewWithLayout(c.Epilogue.OutDType, tensor.LayoutNHWC, s.N, oh, ow, s.OC)
	} else if out.NumElements() != s.N*oh*ow*s.OC {
		panic(fmt.Sprintf("cutlass: conv destination has %d elements, want NHWC (%d,%d,%d,%d)",
			out.NumElements(), s.N, oh, ow, s.OC))
	}
	xd, wd, od := x.Data(), w.Data(), out.Data()
	quant := c.Epilogue.OutDType == tensor.FP16

	rows := s.N * oh
	parallelRows(rows, func(r0, r1 int) {
		accp := getAcc(s.OC)
		defer putAcc(accp)
		acc := *accp
		for r := r0; r < r1; r++ {
			in := r / oh
			io := r % oh
			for jo := 0; jo < ow; jo++ {
				for k := range acc {
					acc[k] = 0
				}
				for kh := 0; kh < s.KH; kh++ {
					ih := io*s.StrideH - s.PadH + kh
					if ih < 0 || ih >= s.H {
						continue
					}
					for kw := 0; kw < s.KW; kw++ {
						iw := jo*s.StrideW - s.PadW + kw
						if iw < 0 || iw >= s.W {
							continue
						}
						xoff := ((in*s.H+ih)*s.W + iw) * s.IC
						for oc := 0; oc < s.OC; oc++ {
							woff := ((oc*s.KH+kh)*s.KW + kw) * s.IC
							sum := acc[oc]
							for ic := 0; ic < s.IC; ic++ {
								sum += xd[xoff+ic] * wd[woff+ic]
							}
							acc[oc] = sum
						}
					}
				}
				ooff := ((in*oh+io)*ow + jo) * s.OC
				for oc := 0; oc < s.OC; oc++ {
					var cv float32
					if bd != nil {
						cv = bd[oc]
					}
					v := c.Epilogue.apply(acc[oc], cv)
					if quant {
						v = fp16.ToFloat32(fp16.FromFloat32(v))
					}
					od[ooff+oc] = v
				}
			}
		}
	})
	// INT8 outputs are quantized dynamically with a serial max-abs scan
	// (see Gemm.run) so the result is partitioning-independent.
	if c.Epilogue.OutDType == tensor.INT8 {
		out.CalibrateScale()
	}
	return out
}

// Desc lowers the convolution to a device kernel descriptor using the
// implicit-GEMM dimensions. Activation traffic counts the true NHWC
// footprint (halo overlap between filter taps hits L2/SMEM, not DRAM).
func (c *Conv2D) Desc(d *gpu.Device) gpu.KernelDesc {
	s := c.Shape
	m, n, k := s.ImplicitGemm()
	cfg := c.Config
	tilesM, tilesN := cfg.tileCounts(m, n)
	esize := cfg.DType.Size()

	g := 1 << cfg.SwizzleLog
	if g > tilesM {
		g = tilesM
	}
	if g > tilesN {
		g = tilesN
	}
	// Activation footprint re-read once per column-tile group; weight
	// footprint once per row-tile group — unless the operand stays
	// L2-resident, in which case DRAM sees it once.
	actB := L2Discounted(d, float64(s.N*s.H*s.W*s.IC)*float64(esize), (tilesN+g-1)/g)
	wB := L2Discounted(d, float64(s.OC*s.KH*s.KW*s.IC)*float64(esize), (tilesM+g-1)/g)
	loadB := actB + wB
	if bias := c.Epilogue; bias.Beta != 0 && bias.BiasVector {
		loadB += float64(s.OC * esize)
	}
	storeB := float64(m) * float64(n) * float64(c.Epilogue.OutDType.Size())

	flops := 2*float64(m)*float64(n)*float64(k) + c.Epilogue.flopsPerElement()*float64(m)*float64(n)

	align := cfg.AlignA
	if cfg.AlignB < align {
		align = cfg.AlignB
	}
	if cfg.AlignC < align {
		align = cfg.AlignC
	}
	// Implicit-GEMM fprop pays extra predication and pointer math in
	// its main loop versus a plain GEMM.
	issue := cfg.issueEff(k) * 0.72
	return gpu.KernelDesc{
		Name:            c.Name(),
		GridBlocks:      tilesM * tilesN,
		ThreadsPerBlock: cfg.Threads(),
		RegsPerThread:   cfg.RegsPerThread() + 16, // im2col iterator state
		SharedMemBytes:  cfg.SharedMemBytes(),
		FLOPs:           flops,
		GlobalLoadB:     loadB,
		GlobalStoreB:    storeB,
		OpClass:         cfg.Op,
		DType:           cfg.DType,
		AlignmentElems:  align,
		IssueEff:        issue,
		MemEff:          0.9,
	}
}

// Time prices one launch on the device model.
func (c *Conv2D) Time(d *gpu.Device) float64 { return d.KernelTime(c.Desc(d)) }

// ReferenceConv2D computes the convolution directly with FP64
// accumulation, the oracle for kernel validation.
func ReferenceConv2D(s ConvShape, x, w, bias *tensor.Tensor, epi Epilogue) *tensor.Tensor {
	oh, ow := s.OutH(), s.OutW()
	out := tensor.NewWithLayout(epi.OutDType, tensor.LayoutNHWC, s.N, oh, ow, s.OC)
	xd, wd, od := x.Data(), w.Data(), out.Data()
	for in := 0; in < s.N; in++ {
		for io := 0; io < oh; io++ {
			for jo := 0; jo < ow; jo++ {
				for oc := 0; oc < s.OC; oc++ {
					sum := 0.0
					for kh := 0; kh < s.KH; kh++ {
						ih := io*s.StrideH - s.PadH + kh
						if ih < 0 || ih >= s.H {
							continue
						}
						for kw := 0; kw < s.KW; kw++ {
							iw := jo*s.StrideW - s.PadW + kw
							if iw < 0 || iw >= s.W {
								continue
							}
							for ic := 0; ic < s.IC; ic++ {
								sum += float64(xd[((in*s.H+ih)*s.W+iw)*s.IC+ic]) *
									float64(wd[((oc*s.KH+kh)*s.KW+kw)*s.IC+ic])
							}
						}
					}
					var cv float32
					if bias != nil {
						cv = bias.Data()[oc]
					}
					od[((in*oh+io)*ow+jo)*s.OC+oc] = epi.apply(float32(sum), cv)
				}
			}
		}
	}
	if epi.OutDType == tensor.INT8 {
		out.CalibrateScale() // match the templated kernels' dynamic scale
	} else {
		out.Quantize()
	}
	return out
}
