package cutlass

import (
	"testing"

	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

func convConfig() GemmConfig {
	c := smallConfig()
	c.AlignA, c.AlignB, c.AlignC = 8, 8, 8
	return c
}

func randNHWC(seed int64, n, h, w, c int) *tensor.Tensor {
	t := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNHWC, n, h, w, c)
	t.FillRandom(seed, 1)
	return t
}

func randOHWI(seed int64, oc, kh, kw, ic int) *tensor.Tensor {
	t := tensor.New(tensor.FP16, oc, kh, kw, ic)
	t.FillRandom(seed, 0.5)
	return t
}

func TestConvShapeGeometry(t *testing.T) {
	s := Conv3x3(32, 56, 56, 64, 64, 1, 1)
	if s.OutH() != 56 || s.OutW() != 56 {
		t.Errorf("3x3 s1 p1 should preserve spatial dims, got %dx%d", s.OutH(), s.OutW())
	}
	s2 := Conv3x3(32, 56, 56, 64, 128, 2, 1)
	if s2.OutH() != 28 || s2.OutW() != 28 {
		t.Errorf("stride 2 should halve: got %dx%d", s2.OutH(), s2.OutW())
	}
	p := Conv1x1(32, 56, 56, 48, 48)
	if p.OutH() != 56 || p.OutW() != 56 || p.KH != 1 || p.PadH != 0 {
		t.Error("Conv1x1 geometry wrong")
	}
	m, n, k := s.ImplicitGemm()
	if m != 32*56*56 || n != 64 || k != 64*9 {
		t.Errorf("implicit gemm dims (%d,%d,%d)", m, n, k)
	}
	if s.FLOPs() != 2*float64(m)*float64(n)*float64(k) {
		t.Error("FLOPs wrong")
	}
}

func TestConvShapeValidate(t *testing.T) {
	good := Conv3x3(1, 8, 8, 8, 8, 1, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
	bad := good
	bad.StrideH = 0
	if bad.Validate() == nil {
		t.Error("zero stride accepted")
	}
	bad2 := good
	bad2.H = 1
	bad2.KH = 5
	bad2.PadH = 0
	if bad2.Validate() == nil {
		t.Error("empty output accepted")
	}
	bad3 := good
	bad3.PadW = -1
	if bad3.Validate() == nil {
		t.Error("negative pad accepted")
	}
}

func TestConvMatchesReference(t *testing.T) {
	d := gpu.T4()
	s := Conv3x3(2, 8, 8, 8, 16, 1, 1)
	conv, err := NewConv2D(s, convConfig(), DefaultEpilogue(), d)
	if err != nil {
		t.Fatal(err)
	}
	x := randNHWC(1, 2, 8, 8, 8)
	w := randOHWI(2, 16, 3, 3, 8)
	got := conv.Run(x, w, nil)
	want := ReferenceConv2D(s, x, w, nil, DefaultEpilogue())
	if !tensor.AllClose(got, want, 1e-2, 1e-3) {
		t.Errorf("conv deviates from reference: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestConvStrideAndPad(t *testing.T) {
	d := gpu.T4()
	s := ConvShape{N: 1, H: 9, W: 9, IC: 8, OC: 8, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	conv, err := NewConv2D(s, convConfig(), DefaultEpilogue(), d)
	if err != nil {
		t.Fatal(err)
	}
	x := randNHWC(3, 1, 9, 9, 8)
	w := randOHWI(4, 8, 3, 3, 8)
	got := conv.Run(x, w, nil)
	if !got.Shape().Equal(tensor.Shape{1, 5, 5, 8}) {
		t.Fatalf("output shape %v, want (1,5,5,8)", got.Shape())
	}
	want := ReferenceConv2D(s, x, w, nil, DefaultEpilogue())
	if !tensor.AllClose(got, want, 1e-2, 1e-3) {
		t.Errorf("strided conv deviates: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestConvBiasEpilogue(t *testing.T) {
	d := gpu.T4()
	s := Conv1x1(1, 6, 6, 8, 8)
	for _, act := range []Activation{ActReLU, ActHardswish, ActGELU, ActSoftplus} {
		conv, err := NewConv2D(s, convConfig(), BiasActivation(act), d)
		if err != nil {
			t.Fatal(err)
		}
		x := randNHWC(5, 1, 6, 6, 8)
		w := randOHWI(6, 8, 1, 1, 8)
		bias := tensor.New(tensor.FP16, 8)
		bias.FillRandom(7, 1)
		got := conv.Run(x, w, bias)
		want := ReferenceConv2D(s, x, w, bias, BiasActivation(act))
		if !tensor.AllClose(got, want, 1e-2, 1e-3) {
			t.Errorf("%s conv epilogue deviates: %g", act, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestConv1x1IsPointwiseGemm(t *testing.T) {
	// A 1x1 conv over NHWC is exactly a GEMM with M=N*H*W.
	d := gpu.T4()
	s := Conv1x1(2, 4, 4, 16, 8)
	conv, _ := NewConv2D(s, convConfig(), DefaultEpilogue(), d)
	x := randNHWC(8, 2, 4, 4, 16)
	w := randOHWI(9, 8, 1, 1, 16)
	got := conv.Run(x, w, nil)

	g, _ := NewGemm(convConfig(), DefaultEpilogue(), d)
	a := tensor.Reshape(x, 2*4*4, 16)
	// Weights OHWI (8,1,1,16) -> (8,16); GEMM needs K x N = 16 x 8.
	wm := tensor.Transpose2D(tensor.Reshape(w, 8, 16))
	want := g.Run(a, wm, nil)
	if tensor.MaxAbsDiff(tensor.Reshape(got, 32, 8), want) != 0 {
		t.Error("1x1 conv != equivalent GEMM")
	}
}

func TestConvAlignmentRules(t *testing.T) {
	d := gpu.T4()
	// IC=3 (first conv layer) cannot use alignment 8.
	s := Conv3x3(1, 8, 8, 3, 8, 1, 1)
	conv, err := NewConv2D(s, convConfig(), DefaultEpilogue(), d)
	if err != nil {
		t.Fatal(err)
	}
	if conv.SupportsProblem() {
		t.Error("IC=3 must not satisfy alignment 8")
	}
	cfg := convConfig()
	cfg.AlignA, cfg.AlignB = 1, 1
	conv2, _ := NewConv2D(s, cfg, DefaultEpilogue(), d)
	if !conv2.SupportsProblem() {
		t.Error("alignment 1 must accept IC=3")
	}
}

func TestConvDescPricing(t *testing.T) {
	d := gpu.T4()
	s := Conv3x3(32, 56, 56, 64, 64, 1, 1)
	cfg := stdConfig()
	conv, _ := NewConv2D(s, cfg, DefaultEpilogue(), d)
	desc := conv.Desc(d)
	m, n, k := s.ImplicitGemm()
	if desc.FLOPs < 2*float64(m)*float64(n)*float64(k) {
		t.Error("conv FLOPs must cover the implicit GEMM")
	}
	// Implicit-GEMM conv must price below the equivalent explicit GEMM's
	// im2col traffic but above zero.
	bd := d.Breakdown(desc)
	if bd.Total <= 0 {
		t.Error("conv time must be positive")
	}
	// Achieved TFLOPS plausible for T4 tensor cores.
	tflops := desc.FLOPs / bd.Total / 1e12
	if tflops > 65 {
		t.Errorf("conv achieves %f TFLOPS > peak", tflops)
	}
}

func TestConvAlignmentAffectsSpeed(t *testing.T) {
	d := gpu.T4()
	// Memory-heavy conv: unaligned (align 2) vs aligned (align 8).
	s8 := Conv3x3(32, 20, 26, 48, 32, 1, 1)
	cfg8 := stdConfig()
	conv8, _ := NewConv2D(s8, cfg8, DefaultEpilogue(), d)

	s2 := Conv3x3(32, 20, 26, 46, 32, 1, 1)
	cfg2 := stdConfig()
	cfg2.AlignA, cfg2.AlignB, cfg2.AlignC = 2, 2, 2
	conv2, _ := NewConv2D(s2, cfg2, DefaultEpilogue(), d)

	// Despite doing slightly more work (48 vs 46 channels), the aligned
	// kernel should be faster — this is Table 3's padding premise.
	if conv8.Time(d) >= conv2.Time(d) {
		t.Errorf("aligned conv (%.3gus) should beat unaligned (%.3gus)",
			conv8.Time(d)*1e6, conv2.Time(d)*1e6)
	}
}
