package persistent

import (
	"fmt"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// ConvLayer is one convolution in a fused chain.
type ConvLayer struct {
	Shape    cutlass.ConvShape
	Config   cutlass.GemmConfig
	Epilogue cutlass.Epilogue
}

// FusedConv is a validated persistent convolution chain. The first
// layer may be any convolution; every subsequent layer must be a 1×1
// convolution with stride 1 and no padding (paper §3.1.1), so the
// output pixels map one-to-one and threadblock residence holds with
// ThreadBlock_N == output channels.
type FusedConv struct {
	Layers []ConvLayer
	Kind   Residence
}

// NewFusedConv validates residence and resource rules.
func NewFusedConv(layers []ConvLayer, kind Residence, d *gpu.Device) (*FusedConv, error) {
	if len(layers) < 2 {
		return nil, fmt.Errorf("persistent: need at least 2 conv layers, have %d", len(layers))
	}
	tbM := layers[0].Config.TB.M
	for i, l := range layers {
		if err := l.Shape.Validate(); err != nil {
			return nil, fmt.Errorf("persistent: conv layer %d: %w", i, err)
		}
		if err := l.Config.Validate(d); err != nil {
			return nil, fmt.Errorf("persistent: conv layer %d: %w", i, err)
		}
		if l.Config.TB.M != tbM {
			return nil, fmt.Errorf("persistent: conv layer %d ThreadBlock_M %d != layer 0's %d", i, l.Config.TB.M, tbM)
		}
		// Residence: ThreadBlock_N must cover the layer's output channels.
		if l.Config.TB.N < l.Shape.OC {
			return nil, fmt.Errorf("persistent: conv layer %d violates threadblock residence: ThreadBlock_N %d < OC %d",
				i, l.Config.TB.N, l.Shape.OC)
		}
		if kind == RFResident && l.Config.Warp.N != l.Config.TB.N {
			return nil, fmt.Errorf("persistent: conv layer %d violates RF residence: Warp_N %d != ThreadBlock_N %d",
				i, l.Config.Warp.N, l.Config.TB.N)
		}
		if i > 0 {
			prev := layers[i-1].Shape
			if l.Shape.KH != 1 || l.Shape.KW != 1 || l.Shape.StrideH != 1 || l.Shape.StrideW != 1 ||
				l.Shape.PadH != 0 || l.Shape.PadW != 0 {
				return nil, fmt.Errorf("persistent: conv layer %d must be 1x1/stride 1/no padding, got k%dx%d s%d p%d",
					i, l.Shape.KH, l.Shape.KW, l.Shape.StrideH, l.Shape.PadH)
			}
			if l.Shape.IC != prev.OC {
				return nil, fmt.Errorf("persistent: conv layer %d IC %d != layer %d OC %d", i, l.Shape.IC, i-1, prev.OC)
			}
			if l.Shape.N != prev.N || l.Shape.H != prev.OutH() || l.Shape.W != prev.OutW() {
				return nil, fmt.Errorf("persistent: conv layer %d input %dx%dx%d != layer %d output %dx%dx%d",
					i, l.Shape.N, l.Shape.H, l.Shape.W, i-1, prev.N, prev.OutH(), prev.OutW())
			}
		}
	}
	f := &FusedConv{Layers: layers, Kind: kind}
	gemm := f.asGemm()
	if kind == RFResident && gemm.regsPerThread() > d.MaxRegsThread {
		return nil, fmt.Errorf("persistent: RF-resident conv fusion needs %d registers/thread, cap is %d",
			gemm.regsPerThread(), d.MaxRegsThread)
	}
	if gemm.sharedMemBytes() > d.SharedMemBlock {
		return nil, fmt.Errorf("persistent: fused conv needs %d B shared memory, cap is %d",
			gemm.sharedMemBytes(), d.SharedMemBlock)
	}
	return f, nil
}

// asGemm maps the chain onto the implicit-GEMM fused-GEMM machinery for
// resource accounting (M = N·OH·OW of the first layer's output, which
// all layers share by the 1×1 constraint).
func (f *FusedConv) asGemm() *FusedGemm {
	layers := make([]GemmLayer, len(f.Layers))
	for i, l := range f.Layers {
		_, n, k := l.Shape.ImplicitGemm()
		layers[i] = GemmLayer{N: n, K: k, Config: l.Config, Epilogue: l.Epilogue}
	}
	m, _, _ := f.Layers[0].Shape.ImplicitGemm()
	return &FusedGemm{M: m, Layers: layers, Kind: f.Kind}
}

// Name returns the kernel name.
func (f *FusedConv) Name() string {
	return fmt.Sprintf("cutlass_b2b_conv2d_fprop_x%d_%s", len(f.Layers), f.Kind)
}

// Run executes the chain functionally; results must equal running each
// conv kernel unfused. weights[i] is OHWI for layer i; biases[i] may be
// nil.
func (f *FusedConv) Run(x *tensor.Tensor, weights, biases []*tensor.Tensor) *tensor.Tensor {
	return f.RunInto(nil, x, weights, biases)
}

// RunInto executes like Run but the final layer writes into dst (nil
// allocates); in-chain intermediates stay kernel-internal. It returns
// the destination.
func (f *FusedConv) RunInto(dst *tensor.Tensor, x *tensor.Tensor, weights, biases []*tensor.Tensor) *tensor.Tensor {
	if len(weights) != len(f.Layers) {
		panic(fmt.Sprintf("persistent: %d weights for %d conv layers", len(weights), len(f.Layers)))
	}
	cur := x
	for i, l := range f.Layers {
		conv := &cutlass.Conv2D{Shape: l.Shape, Config: l.Config, Epilogue: l.Epilogue}
		var b *tensor.Tensor
		if biases != nil {
			b = biases[i]
		}
		var out *tensor.Tensor
		if i == len(f.Layers)-1 {
			out = dst
		}
		cur = conv.RunInto(out, cur, weights[i], b)
	}
	return cur
}

// Desc lowers the fused chain to a single kernel descriptor. The first
// layer contributes its true NHWC activation footprint; weights of all
// layers stream in; only the final activation is stored.
func (f *FusedConv) Desc(d *gpu.Device) gpu.KernelDesc {
	g := f.asGemm()
	desc := g.Desc(d)
	desc.Name = f.Name()
	// Replace the A0 term (implicit-GEMM m*k overstates conv input
	// traffic) with the true activation footprint.
	first := f.Layers[0]
	m, _, k0 := first.Shape.ImplicitGemm()
	esize := first.Config.DType.Size()
	implicitA := float64(m) * float64(k0) * float64(esize)
	actual := float64(first.Shape.N*first.Shape.H*first.Shape.W*first.Shape.IC) * float64(esize)
	desc.GlobalLoadB += actual - implicitA
	// Implicit-GEMM main loop overhead, as in cutlass.Conv2D.Desc.
	desc.IssueEff *= 0.72
	desc.RegsPerThread += 16
	return desc
}

// Time prices the fused conv chain.
func (f *FusedConv) Time(d *gpu.Device) float64 { return d.KernelTime(f.Desc(d)) }

// UnfusedConvTime prices the chain as separate per-layer kernels with
// per-layer epilogue fusion (the paper's baseline in Table 2).
func UnfusedConvTime(d *gpu.Device, layers []ConvLayer) float64 {
	total := 0.0
	for _, l := range layers {
		conv := &cutlass.Conv2D{Shape: l.Shape, Config: unfusedConfig(l.Config), Epilogue: l.Epilogue}
		total += conv.Time(d)
	}
	return total
}

// ChooseGemmResidence validates RF-resident fusion first (faster when
// it fits — no SMEM round trip) and falls back to shared-memory
// residence, mirroring Bolt's automatic selection. It returns the
// fused kernel with the lower modeled time among valid options.
func ChooseGemmResidence(m int, layers []GemmLayer, d *gpu.Device) (*FusedGemm, error) {
	var best *FusedGemm
	var firstErr error
	for _, kind := range []Residence{RFResident, SMEMResident} {
		for _, tbM := range []int{layers[0].Config.TB.M, 64, 32, 16} {
			ls := retileForResidence(layers, kind)
			for i := range ls {
				ls[i].Config.TB.M = tbM
				if ls[i].Config.Warp.M > tbM {
					ls[i].Config.Warp.M = tbM
				}
			}
			f, err := NewFusedGemm(m, ls, kind, d)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if best == nil || f.Time(d) < best.Time(d) {
				best = f
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("persistent: no valid residence: %w", firstErr)
	}
	return best, nil
}

// ChooseConvResidence is the convolution counterpart of
// ChooseGemmResidence.
func ChooseConvResidence(layers []ConvLayer, d *gpu.Device) (*FusedConv, error) {
	var best *FusedConv
	var firstErr error
	for _, kind := range []Residence{RFResident, SMEMResident} {
		for _, tbM := range []int{layers[0].Config.TB.M, 64, 32, 16} {
			ls := make([]ConvLayer, len(layers))
			copy(ls, layers)
			for i := range ls {
				ls[i].Config = residenceConfig(ls[i].Config, kind)
				ls[i].Config.TB.M = tbM
				if ls[i].Config.Warp.M > tbM {
					ls[i].Config.Warp.M = tbM
				}
			}
			f, err := NewFusedConv(ls, kind, d)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if best == nil || f.Time(d) < best.Time(d) {
				best = f
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("persistent: no valid residence: %w", firstErr)
	}
	return best, nil
}

func retileForResidence(layers []GemmLayer, kind Residence) []GemmLayer {
	out := make([]GemmLayer, len(layers))
	copy(out, layers)
	for i := range out {
		out[i].Config = residenceConfig(out[i].Config, kind)
	}
	return out
}

// residenceConfig adjusts warp tiling for the residence kind:
// RF-resident requires Warp_N == ThreadBlock_N; SMEM-resident prefers
// narrower warps to spread register pressure.
func residenceConfig(c cutlass.GemmConfig, kind Residence) cutlass.GemmConfig {
	out := c
	if kind == RFResident {
		out.Warp.N = out.TB.N
	} else if out.Warp.N == out.TB.N && out.TB.N >= 64 {
		out.Warp.N = out.TB.N / 2
	}
	return out
}
