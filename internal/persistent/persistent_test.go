package persistent

import (
	"strings"
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// b2bConfig builds a residence-compatible config: ThreadBlock_N covers
// n, narrow warps in M (as in CUTLASS's b2b examples).
func b2bConfig(n int, warpN int) cutlass.GemmConfig {
	return cutlass.GemmConfig{
		TB:     cutlass.Shape3{M: 64, N: n, K: 32},
		Warp:   cutlass.Shape3{M: 16, N: warpN, K: 32},
		Inst:   cutlass.Shape3{M: 16, N: 8, K: 8},
		Stages: 2, SwizzleLog: 0,
		AlignA: 8, AlignB: 8, AlignC: 8,
		Op: gpu.OpClassTensorOp, DType: tensor.FP16,
	}
}

func twoLayers(n0, k0, n1 int) []GemmLayer {
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	return []GemmLayer{
		{N: n0, K: k0, Config: b2bConfig(tbn(n0), tbn(n0)), Epilogue: relu},
		{N: n1, K: n0, Config: b2bConfig(tbn(n1), tbn(n1)), Epilogue: relu},
	}
}

// tbn rounds n up to a legal tile extent (multiple of instruction N).
func tbn(n int) int {
	r := (n + 7) / 8 * 8
	if r < 8 {
		r = 8
	}
	return r
}

func TestFusedGemmValid(t *testing.T) {
	d := gpu.T4()
	f, err := NewFusedGemm(4096, twoLayers(64, 256, 16), RFResident, d)
	if err != nil {
		t.Fatalf("valid RF-resident fusion rejected: %v", err)
	}
	if !strings.Contains(f.Name(), "b2b_gemm_x2_rf-resident") {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestResidenceViolations(t *testing.T) {
	d := gpu.T4()

	// ThreadBlock_N smaller than GEMM_N breaks threadblock residence.
	layers := twoLayers(64, 256, 16)
	layers[0].Config.TB.N = 32
	layers[0].Config.Warp.N = 32
	if _, err := NewFusedGemm(4096, layers, SMEMResident, d); err == nil ||
		!strings.Contains(err.Error(), "threadblock residence") {
		t.Errorf("expected threadblock residence error, got %v", err)
	}

	// RF residence additionally requires Warp_N == ThreadBlock_N.
	layers = twoLayers(64, 256, 16)
	layers[0].Config.Warp.N = 32
	if _, err := NewFusedGemm(4096, layers, RFResident, d); err == nil ||
		!strings.Contains(err.Error(), "RF residence") {
		t.Errorf("expected RF residence error, got %v", err)
	}
	// ...but SMEM residence accepts narrower warps.
	if _, err := NewFusedGemm(4096, layers, SMEMResident, d); err != nil {
		t.Errorf("smem residence should accept narrow warps: %v", err)
	}

	// K of layer 1 must equal N of layer 0 (D0 feeds A1).
	layers = twoLayers(64, 256, 16)
	layers[1].K = 32
	if _, err := NewFusedGemm(4096, layers, RFResident, d); err == nil ||
		!strings.Contains(err.Error(), "output N") {
		t.Errorf("expected layer chaining error, got %v", err)
	}

	// Mismatched ThreadBlock_M across layers.
	layers = twoLayers(64, 256, 16)
	layers[1].Config.TB.M = 128
	if _, err := NewFusedGemm(4096, layers, RFResident, d); err == nil ||
		!strings.Contains(err.Error(), "ThreadBlock_M") {
		t.Errorf("expected TB_M mismatch error, got %v", err)
	}

	// Fewer than two layers is not a fusion.
	if _, err := NewFusedGemm(4096, twoLayers(64, 256, 16)[:1], RFResident, d); err == nil {
		t.Error("single layer accepted")
	}
}

func TestRFPressureFallsBackToSMEM(t *testing.T) {
	d := gpu.T4()
	// N=256: RF-resident would need Warp_N=256 -> accumulators blow the
	// register budget (the paper's stated RF-resident limitation).
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	layers := []GemmLayer{
		{N: 256, K: 128, Config: b2bConfig(256, 256), Epilogue: relu},
		{N: 256, K: 256, Config: b2bConfig(256, 256), Epilogue: relu},
	}
	if _, err := NewFusedGemm(8192, layers, RFResident, d); err == nil ||
		!strings.Contains(err.Error(), "registers") {
		t.Fatalf("expected register-pressure rejection, got %v", err)
	}
	f, err := ChooseGemmResidence(8192, layers, d)
	if err != nil {
		t.Fatalf("ChooseGemmResidence failed: %v", err)
	}
	if f.Kind != SMEMResident {
		t.Errorf("expected smem fallback, got %v", f.Kind)
	}
}

func TestChoosePrefersRFWhenSmall(t *testing.T) {
	d := gpu.T4()
	f, err := ChooseGemmResidence(16384, twoLayers(64, 256, 16), d)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != RFResident {
		t.Errorf("small-N fusion should pick RF residence, got %v", f.Kind)
	}
}

func TestFusedGemmNumericsMatchUnfused(t *testing.T) {
	d := gpu.T4()
	layers := twoLayers(64, 128, 16)
	f, err := NewFusedGemm(96, layers, RFResident, d)
	if err != nil {
		t.Fatal(err)
	}
	a0 := tensor.New(tensor.FP16, 96, 128)
	a0.FillRandom(1, 0.5)
	w0 := tensor.New(tensor.FP16, 128, 64)
	w0.FillRandom(2, 0.2)
	w1 := tensor.New(tensor.FP16, 64, 16)
	w1.FillRandom(3, 0.2)
	b0 := tensor.New(tensor.FP16, 64)
	b0.FillRandom(4, 0.5)
	b1 := tensor.New(tensor.FP16, 16)
	b1.FillRandom(5, 0.5)

	fused := f.Run(a0, []*tensor.Tensor{w0, w1}, []*tensor.Tensor{b0, b1})

	// Unfused reference: two independent reference GEMMs.
	d0 := cutlass.ReferenceGemm(a0, w0, b0, layers[0].Epilogue)
	d1 := cutlass.ReferenceGemm(d0, w1, b1, layers[1].Epilogue)
	if !tensor.AllClose(fused, d1, 1e-2, 1e-3) {
		t.Errorf("fused result deviates from unfused composition: %g", tensor.MaxAbsDiff(fused, d1))
	}
}

func TestFusedGemmFasterThanUnfused(t *testing.T) {
	d := gpu.T4()
	// Table 1 style: memory-bound, large M, small N/K.
	cases := []struct{ m, n0, k0, n1 int }{
		{16384, 64, 256, 16},
		{32768, 128, 576, 64},
		{128320, 32, 96, 96},
	}
	for _, c := range cases {
		relu := cutlass.BiasActivation(cutlass.ActReLU)
		layers := []GemmLayer{
			{N: c.n0, K: c.k0, Config: b2bConfig(tbn(c.n0), tbn(c.n0)), Epilogue: relu},
			{N: c.n1, K: c.n0, Config: b2bConfig(tbn(c.n1), tbn(c.n1)), Epilogue: relu},
		}
		f, err := ChooseGemmResidence(c.m, layers, d)
		if err != nil {
			t.Fatalf("(%d,%d,%d)+(%d): %v", c.m, c.n0, c.k0, c.n1, err)
		}
		fused := f.Time(d)
		unfused := UnfusedGemmTime(d, c.m, layers)
		ratio := unfused / fused
		if ratio < 1.05 {
			t.Errorf("(%d,%d,%d)->(%d): fusion speedup %.2fx, want > 1.05x", c.m, c.n0, c.k0, c.n1, ratio)
		}
		if ratio > 3 {
			t.Errorf("(%d,%d,%d)->(%d): fusion speedup %.2fx implausibly high", c.m, c.n0, c.k0, c.n1, ratio)
		}
	}
}

func TestFusedDescTraffic(t *testing.T) {
	d := gpu.T4()
	layers := twoLayers(64, 256, 16)
	f, _ := NewFusedGemm(16384, layers, RFResident, d)
	desc := f.Desc(d)
	// Single launch: one grid, and global traffic must exclude the
	// intermediate: store is only M x N1.
	wantStore := float64(16384 * 16 * 2)
	if desc.GlobalStoreB != wantStore {
		t.Errorf("store bytes %g, want %g (final layer only)", desc.GlobalStoreB, wantStore)
	}
	// Load must not contain M*N0 (the intermediate).
	maxLoad := float64(16384*256+256*64+64*16+64+16) * 2.5
	if desc.GlobalLoadB > maxLoad {
		t.Errorf("load bytes %g too high — intermediate not eliminated?", desc.GlobalLoadB)
	}
	if desc.SMEMTrafficB != 0 {
		t.Error("RF-resident fusion must not stage through shared memory")
	}
	smem := NewMust(t, 16384, retileForResidence(layers, SMEMResident), SMEMResident, d)
	if smem.Desc(d).SMEMTrafficB == 0 {
		t.Error("smem-resident fusion must stage through shared memory")
	}
}

// NewMust wraps NewFusedGemm for tests.
func NewMust(t *testing.T, m int, layers []GemmLayer, kind Residence, d *gpu.Device) *FusedGemm {
	t.Helper()
	f, err := NewFusedGemm(m, layers, kind, d)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestThreeLayerChain(t *testing.T) {
	d := gpu.T4()
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	layers := []GemmLayer{
		{N: 64, K: 96, Config: b2bConfig(64, 64), Epilogue: relu},
		{N: 32, K: 64, Config: b2bConfig(32, 32), Epilogue: relu},
		{N: 16, K: 32, Config: b2bConfig(16, 16), Epilogue: relu},
	}
	f, err := NewFusedGemm(4096, layers, RFResident, d)
	if err != nil {
		t.Fatalf("3-layer chain rejected: %v", err)
	}
	// Functional equivalence for the 3-chain.
	a0 := tensor.New(tensor.FP16, 64, 96)
	a0.FillRandom(10, 0.5)
	ws := []*tensor.Tensor{
		tensor.New(tensor.FP16, 96, 64),
		tensor.New(tensor.FP16, 64, 32),
		tensor.New(tensor.FP16, 32, 16),
	}
	for i, w := range ws {
		w.FillRandom(int64(20+i), 0.2)
	}
	f3 := &FusedGemm{M: 64, Layers: layers, Kind: RFResident}
	got := f3.Run(a0, ws, nil)
	cur := a0
	for i, l := range layers {
		cur = cutlass.ReferenceGemm(cur, ws[i], nil, l.Epilogue)
	}
	if !tensor.AllClose(got, cur, 1e-2, 1e-3) {
		t.Errorf("3-layer fused deviates: %g", tensor.MaxAbsDiff(got, cur))
	}
	// Fusing 3 must beat fusing 2 + one standalone (more launches
	// and intermediate traffic eliminated).
	two, err := NewFusedGemm(4096, layers[:2], RFResident, d)
	if err != nil {
		t.Fatal(err)
	}
	lone := UnfusedGemmTime(d, 4096, layers[2:])
	if f.Time(d) >= two.Time(d)+lone {
		t.Error("3-layer fusion should beat 2-layer fusion + standalone kernel")
	}
}

func TestTinyNWorkloads(t *testing.T) {
	// Table 1's (2464,1,4)+(2464,4,1): N below the instruction shape
	// must still validate via tile padding.
	d := gpu.T4()
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	layers := []GemmLayer{
		{N: 1, K: 4, Config: b2bConfig(8, 8), Epilogue: relu},
		{N: 4, K: 1, Config: b2bConfig(8, 8), Epilogue: relu},
	}
	f, err := ChooseGemmResidence(2464, layers, d)
	if err != nil {
		t.Fatalf("tiny-N fusion rejected: %v", err)
	}
	if UnfusedGemmTime(d, 2464, layers)/f.Time(d) <= 1.0 {
		t.Error("tiny-N fusion should still win (launch latency dominates)")
	}
}
