package persistent

import (
	"strings"
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// repvggPair builds the Table 2 pattern: a 3x3 conv followed by a 1x1
// conv with matched channels.
func repvggPair(n, h, w, ic, oc, stride int) []ConvLayer {
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	s0 := cutlass.Conv3x3(n, h, w, ic, oc, stride, 1)
	s1 := cutlass.Conv1x1(n, s0.OutH(), s0.OutW(), oc, oc)
	cfg := b2bConfig(tbn(oc), tbn(oc))
	return []ConvLayer{
		{Shape: s0, Config: cfg, Epilogue: relu},
		{Shape: s1, Config: cfg, Epilogue: relu},
	}
}

func TestFusedConvValid(t *testing.T) {
	d := gpu.T4()
	f, err := NewFusedConv(repvggPair(32, 56, 56, 48, 48, 1), RFResident, d)
	if err != nil {
		t.Fatalf("valid conv fusion rejected: %v", err)
	}
	if !strings.Contains(f.Name(), "b2b_conv2d") {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestConvResidenceRules(t *testing.T) {
	d := gpu.T4()

	// Second conv with a 3x3 filter breaks residence.
	layers := repvggPair(32, 56, 56, 48, 48, 1)
	layers[1].Shape.KH, layers[1].Shape.KW = 3, 3
	layers[1].Shape.PadH, layers[1].Shape.PadW = 1, 1
	if _, err := NewFusedConv(layers, RFResident, d); err == nil ||
		!strings.Contains(err.Error(), "1x1") {
		t.Errorf("expected 1x1 constraint error, got %v", err)
	}

	// Second conv with stride 2 breaks residence.
	layers = repvggPair(32, 56, 56, 48, 48, 1)
	layers[1].Shape.StrideH, layers[1].Shape.StrideW = 2, 2
	if _, err := NewFusedConv(layers, RFResident, d); err == nil {
		t.Error("stride-2 trailing conv accepted")
	}

	// Channel mismatch between layers.
	layers = repvggPair(32, 56, 56, 48, 48, 1)
	layers[1].Shape.IC = 64
	layers[1].Shape.OC = 64
	layers[1].Config = b2bConfig(64, 64)
	if _, err := NewFusedConv(layers, RFResident, d); err == nil ||
		!strings.Contains(err.Error(), "IC") {
		t.Errorf("expected channel chaining error, got %v", err)
	}

	// ThreadBlock_N below OC breaks threadblock residence.
	layers = repvggPair(32, 56, 56, 48, 48, 1)
	layers[0].Config.TB.N = 32
	layers[0].Config.Warp.N = 32
	if _, err := NewFusedConv(layers, SMEMResident, d); err == nil ||
		!strings.Contains(err.Error(), "threadblock residence") {
		t.Errorf("expected residence error, got %v", err)
	}
}

func TestFusedConvNumerics(t *testing.T) {
	d := gpu.T4()
	layers := repvggPair(1, 8, 8, 8, 16, 1)
	f, err := NewFusedConv(layers, RFResident, d)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewWithLayout(tensor.FP16, tensor.LayoutNHWC, 1, 8, 8, 8)
	x.FillRandom(1, 0.5)
	w0 := tensor.New(tensor.FP16, 16, 3, 3, 8)
	w0.FillRandom(2, 0.2)
	w1 := tensor.New(tensor.FP16, 16, 1, 1, 16)
	w1.FillRandom(3, 0.2)
	b0 := tensor.New(tensor.FP16, 16)
	b0.FillRandom(4, 0.5)
	b1 := tensor.New(tensor.FP16, 16)
	b1.FillRandom(5, 0.5)

	fused := f.Run(x, []*tensor.Tensor{w0, w1}, []*tensor.Tensor{b0, b1})

	d0 := cutlass.ReferenceConv2D(layers[0].Shape, x, w0, b0, layers[0].Epilogue)
	d1 := cutlass.ReferenceConv2D(layers[1].Shape, d0, w1, b1, layers[1].Epilogue)
	if !tensor.AllClose(fused, d1, 1e-2, 1e-3) {
		t.Errorf("fused conv deviates from unfused composition: %g", tensor.MaxAbsDiff(fused, d1))
	}
}

func TestFusedConvFasterThanUnfused(t *testing.T) {
	d := gpu.T4()
	// Table 2 rows (channels 48 and 64, the small-channel regime the
	// paper targets).
	cases := []struct {
		n, h, w, ic, oc, stride int
	}{
		{32, 224, 224, 3, 48, 2},
		{32, 112, 112, 48, 48, 2},
		{32, 56, 56, 48, 48, 1},
		{32, 224, 224, 3, 64, 2},
		{32, 112, 112, 64, 64, 2},
		{32, 56, 56, 64, 64, 1},
	}
	for _, c := range cases {
		layers := repvggPair(c.n, c.h, c.w, c.ic, c.oc, c.stride)
		// IC=3 layers need narrower alignment.
		if c.ic%8 != 0 {
			layers[0].Config.AlignA = 1
			layers[0].Config.AlignB = 1
		}
		f, err := ChooseConvResidence(layers, d)
		if err != nil {
			t.Fatalf("%dx%d ic%d oc%d: %v", c.h, c.w, c.ic, c.oc, err)
		}
		ratio := UnfusedConvTime(d, layers) / f.Time(d)
		if ratio < 1.02 {
			t.Errorf("%dx%d ic%d oc%d s%d: conv fusion speedup %.2fx, want > 1.02x",
				c.h, c.w, c.ic, c.oc, c.stride, ratio)
		}
		if ratio > 3 {
			t.Errorf("%dx%d ic%d oc%d s%d: conv fusion speedup %.2fx implausibly high",
				c.h, c.w, c.ic, c.oc, c.stride, ratio)
		}
	}
}

func TestFusedConvDescSingleLaunch(t *testing.T) {
	d := gpu.T4()
	layers := repvggPair(32, 56, 56, 64, 64, 1)
	f, err := ChooseConvResidence(layers, d)
	if err != nil {
		t.Fatal(err)
	}
	desc := f.Desc(d)
	m, _, _ := layers[0].Shape.ImplicitGemm()
	if desc.GridBlocks != (m+f.Layers[0].Config.TB.M-1)/f.Layers[0].Config.TB.M {
		t.Errorf("grid %d not a single tile column over M=%d", desc.GridBlocks, m)
	}
	// Final store only: M x OC of the last layer.
	wantStore := float64(m * 64 * 2)
	if desc.GlobalStoreB != wantStore {
		t.Errorf("store %g, want %g", desc.GlobalStoreB, wantStore)
	}
}
