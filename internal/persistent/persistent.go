// Package persistent implements Bolt's persistent-kernel fusion
// (paper §3.1.1): fusing chains of back-to-back GEMMs or convolutions
// into a single kernel whose main loops run consecutively, keeping the
// intermediate activation in threadblock-local storage.
//
// Two designs are provided, mirroring the paper:
//
//   - RF-resident fusion: the first layer's accumulator stays entirely
//     in the register file. Requires Warp_N == ThreadBlock_N == GEMM_N
//     for every layer (each warp owns the full N extent so the next
//     layer needs no cross-warp data).
//   - Shared-memory-resident fusion: the accumulator is staged through
//     shared memory with a conflict-free layout, relaxing the warp
//     constraint to ThreadBlock_N == GEMM_N.
//
// Both require *threadblock residence*: each layer's output tile must
// stay within the threadblock that produced it, which forces a single
// tile column (ThreadBlock_N covers all of N) and, for convolutions,
// trailing layers with 1x1 filters, stride 1, and no padding.
package persistent

import (
	"fmt"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// Residence selects where the inter-layer activation lives.
type Residence int

const (
	// RFResident keeps the intermediate activation in registers.
	RFResident Residence = iota
	// SMEMResident stages the intermediate activation through shared
	// memory.
	SMEMResident
)

// String names the residence kind.
func (r Residence) String() string {
	if r == RFResident {
		return "rf-resident"
	}
	return "smem-resident"
}

// GemmLayer is one GEMM in a fused chain: D_i = epilogue_i(D_{i-1} · W_i).
type GemmLayer struct {
	N, K     int
	Config   cutlass.GemmConfig
	Epilogue cutlass.Epilogue
}

// FusedGemm is a validated persistent kernel fusing len(Layers) GEMMs
// that share the M dimension.
type FusedGemm struct {
	M      int
	Layers []GemmLayer
	Kind   Residence
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }

// NewFusedGemm validates threadblock residence and resource limits and
// returns the fused kernel.
func NewFusedGemm(m int, layers []GemmLayer, kind Residence, d *gpu.Device) (*FusedGemm, error) {
	if len(layers) < 2 {
		return nil, fmt.Errorf("persistent: need at least 2 layers, have %d", len(layers))
	}
	if m <= 0 {
		return nil, fmt.Errorf("persistent: non-positive M %d", m)
	}
	tbM := layers[0].Config.TB.M
	for i, l := range layers {
		if err := l.Config.Validate(d); err != nil {
			return nil, fmt.Errorf("persistent: layer %d: %w", i, err)
		}
		if l.N <= 0 || l.K <= 0 {
			return nil, fmt.Errorf("persistent: layer %d has non-positive dims (N=%d, K=%d)", i, l.N, l.K)
		}
		// The M dimension must stay the same for all layers (paper eq. 1-2),
		// and every layer must use the same threadblock row partition.
		if l.Config.TB.M != tbM {
			return nil, fmt.Errorf("persistent: layer %d ThreadBlock_M %d != layer 0's %d", i, l.Config.TB.M, tbM)
		}
		// Threadblock residence: one tile column covers the whole GEMM N
		// (ThreadBlock_N = GEMM_N, modulo instruction-shape padding), so
		// the next layer's input never leaves the threadblock.
		if l.Config.TB.N < l.N {
			return nil, fmt.Errorf("persistent: layer %d violates threadblock residence: ThreadBlock_N %d < GEMM_N %d",
				i, l.Config.TB.N, l.N)
		}
		if kind == RFResident && l.Config.Warp.N != l.Config.TB.N {
			return nil, fmt.Errorf("persistent: layer %d violates RF residence: Warp_N %d != ThreadBlock_N %d",
				i, l.Config.Warp.N, l.Config.TB.N)
		}
		if i > 0 && l.K != layers[i-1].N {
			return nil, fmt.Errorf("persistent: layer %d input K %d != layer %d output N %d",
				i, l.K, i-1, layers[i-1].N)
		}
	}
	f := &FusedGemm{M: m, Layers: layers, Kind: kind}
	if kind == RFResident && f.regsPerThread() > d.MaxRegsThread {
		return nil, fmt.Errorf("persistent: RF-resident fusion needs %d registers/thread, cap is %d (use smem-resident)",
			f.regsPerThread(), d.MaxRegsThread)
	}
	if f.sharedMemBytes() > d.SharedMemBlock {
		return nil, fmt.Errorf("persistent: fused kernel needs %d B shared memory, cap is %d",
			f.sharedMemBytes(), d.SharedMemBlock)
	}
	return f, nil
}

// regsPerThread estimates peak register pressure. RF-resident fusion
// holds the producing layer's accumulator fragment while computing the
// consumer, so consecutive layers' accumulators coexist (the paper's
// stated RF-pressure limitation for large GEMM_N).
func (f *FusedGemm) regsPerThread() int {
	peak := 0
	for i, l := range f.Layers {
		regs := l.Config.RegsPerThread()
		if f.Kind == RFResident && i > 0 {
			prev := f.Layers[i-1].Config
			regs += prev.Warp.M * prev.Warp.N / 32 // live accumulator fragment
		}
		if regs > peak {
			peak = regs
		}
	}
	return peak
}

// sharedMemBytes returns the fused kernel's shared-memory footprint:
// the largest layer staging plus, for SMEM residence, the accumulator
// tile buffer.
func (f *FusedGemm) sharedMemBytes() int {
	peak := 0
	for _, l := range f.Layers {
		s := l.Config.SharedMemBytes()
		if s > peak {
			peak = s
		}
	}
	if f.Kind == SMEMResident {
		// FP16 accumulator tile staged between layers (stored through
		// the smem fragment iterator).
		staging := 0
		for _, l := range f.Layers[:len(f.Layers)-1] {
			s := l.Config.TB.M * l.Config.TB.N * 2
			if s > staging {
				staging = s
			}
		}
		peak += staging
	}
	return peak
}

// Name returns a kernel name in the CUTLASS b2b convention.
func (f *FusedGemm) Name() string {
	return fmt.Sprintf("cutlass_b2b_gemm_x%d_%s", len(f.Layers), f.Kind)
}

// Run executes the fused chain functionally: numerically it must be
// identical to running the layers' unfused kernels in sequence (the
// intermediate is converted to FP16 in-register before feeding the next
// main loop, exactly as the unfused pipeline's store+load would).
// weights[i] is layer i's K×N matrix; biases[i] may be nil.
func (f *FusedGemm) Run(a0 *tensor.Tensor, weights, biases []*tensor.Tensor) *tensor.Tensor {
	return f.RunInto(nil, a0, weights, biases)
}

// RunInto executes like Run but the final layer writes into dst (nil
// allocates); the in-chain intermediates model the fused kernel's
// register/SMEM residence and never touch the arena. It returns the
// destination.
func (f *FusedGemm) RunInto(dst *tensor.Tensor, a0 *tensor.Tensor, weights, biases []*tensor.Tensor) *tensor.Tensor {
	if len(weights) != len(f.Layers) {
		panic(fmt.Sprintf("persistent: %d weights for %d layers", len(weights), len(f.Layers)))
	}
	cur := a0
	for i, l := range f.Layers {
		g := &cutlass.Gemm{Config: l.Config, Epilogue: l.Epilogue}
		var c *tensor.Tensor
		if biases != nil {
			c = biases[i]
		}
		var out *tensor.Tensor
		if i == len(f.Layers)-1 {
			out = dst
		}
		cur = g.RunInto(out, cur, weights[i], c)
	}
	return cur
}

// Desc lowers the fused kernel to one device descriptor: a single
// launch whose main loops run back-to-back. Global traffic contains
// only the first layer's input, each layer's weights, and the final
// store — the intermediate activations never touch global memory
// (the paper's benefit (i)); the single launch is benefit (ii).
func (f *FusedGemm) Desc(d *gpu.Device) gpu.KernelDesc {
	first := f.Layers[0]
	tbM := first.Config.TB.M
	tilesM := (f.M + tbM - 1) / tbM
	esize := first.Config.DType.Size()

	flops := 0.0
	loadB := float64(f.M) * float64(first.K) * float64(esize) // A0
	issueNum, issueDen := 0.0, 0.0
	threads := 0
	for _, l := range f.Layers {
		// Tensor cores process the instruction-padded tile.
		nEff := roundUp(l.N, l.Config.Inst.N)
		kEff := roundUp(l.K, l.Config.Inst.K)
		lf := 2 * float64(f.M) * float64(nEff) * float64(kEff)
		flops += lf + l.Epilogue.FLOPsOn(f.M, l.N)
		// Weights are shared by all threadblocks concurrently; they are
		// DRAM-read once and then served from L2.
		loadB += float64(l.K) * float64(l.N) * float64(esize)
		issueNum += lf * l.Config.IssueEffForK(l.K)
		issueDen += lf
		if th := l.Config.Threads(); th > threads {
			threads = th
		}
		if l.Epilogue.BiasVector {
			loadB += float64(l.N) * float64(esize)
		}
	}
	last := f.Layers[len(f.Layers)-1]
	storeB := float64(f.M) * float64(last.N) * float64(last.Epilogue.OutDType.Size())

	smemTraffic := 0.0
	if f.Kind == SMEMResident {
		// Each intermediate tile is written to and read from shared
		// memory once (conflict-free layout by construction).
		for _, l := range f.Layers[:len(f.Layers)-1] {
			smemTraffic += 2 * float64(f.M) * float64(l.N) * 2
		}
	}

	align := first.Config.AlignA
	return gpu.KernelDesc{
		Name:             f.Name(),
		GridBlocks:       tilesM,
		ThreadsPerBlock:  threads,
		RegsPerThread:    f.regsPerThread(),
		SharedMemBytes:   f.sharedMemBytes(),
		FLOPs:            flops,
		GlobalLoadB:      loadB,
		GlobalStoreB:     storeB,
		OpClass:          first.Config.Op,
		DType:            first.Config.DType,
		AlignmentElems:   align,
		IssueEff:         issueNum / issueDen,
		MemEff:           0.92,
		SMEMTrafficB:     smemTraffic,
		BankConflictWays: 1,
	}
}

// Time prices the fused kernel.
func (f *FusedGemm) Time(d *gpu.Device) float64 { return d.KernelTime(f.Desc(d)) }

// UnfusedGemmTime prices the baseline: each layer as its own kernel
// (epilogue still fused per layer — the paper's "Bolt with only
// epilogue fusion" baseline), paying the intermediate store+load and
// one launch per layer.
func UnfusedGemmTime(d *gpu.Device, m int, layers []GemmLayer) float64 {
	total := 0.0
	for _, l := range layers {
		g := &cutlass.Gemm{Config: unfusedConfig(l.Config), Epilogue: l.Epilogue}
		total += g.Time(d, m, l.N, l.K)
	}
	return total
}

// unfusedConfig widens a residence-constrained tile config back to a
// generic one (the standalone kernel need not cover all of N with one
// tile; pick the library default 128x128 when it fits).
func unfusedConfig(c cutlass.GemmConfig) cutlass.GemmConfig {
	out := c
	if out.TB.N > 128 {
		out.TB.N = 128
		if out.Warp.N > 64 {
			out.Warp.N = 64
		}
	}
	return out
}
