package persistent

import (
	"math/rand"
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// randChain draws a random residence-compatible GEMM chain.
func randChain(rng *rand.Rand) (int, []GemmLayer) {
	m := 1024 * (1 + rng.Intn(64))
	depth := 2 + rng.Intn(3)
	relu := cutlass.BiasActivation(cutlass.ActReLU)
	widths := []int{8, 16, 32, 48, 64, 96, 128}
	layers := make([]GemmLayer, depth)
	k := widths[rng.Intn(len(widths))] * 2
	for i := range layers {
		n := widths[rng.Intn(len(widths))]
		layers[i] = GemmLayer{N: n, K: k, Config: b2bConfig(tbn(n), tbn(n)), Epilogue: relu}
		k = n
	}
	return m, layers
}

// Property: whenever ChooseGemmResidence accepts a chain, the fused
// kernel must (a) be a single launch, (b) store only the final layer,
// and (c) never lose to the unfused pipeline by more than noise.
func TestFusedNeverMuchWorseProperty(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(31))
	accepted := 0
	for i := 0; i < 100; i++ {
		m, layers := randChain(rng)
		f, err := ChooseGemmResidence(m, layers, d)
		if err != nil {
			continue // residence infeasible for this draw: fine
		}
		accepted++
		desc := f.Desc(d)
		last := layers[len(layers)-1]
		wantStore := float64(m) * float64(last.N) * 2
		if desc.GlobalStoreB != wantStore {
			t.Fatalf("chain %d: store %g != %g", i, desc.GlobalStoreB, wantStore)
		}
		fused := f.Time(d)
		unfused := UnfusedGemmTime(d, m, layers)
		if fused > unfused*1.02 {
			t.Fatalf("chain %d (M=%d, depth %d): fused %.3gus worse than unfused %.3gus",
				i, m, len(layers), fused*1e6, unfused*1e6)
		}
	}
	if accepted < 30 {
		t.Fatalf("only %d/100 random chains accepted — generator or validator too strict", accepted)
	}
}

// Property: fused numerics equal the unfused composition for random
// small chains.
func TestFusedNumericsProperty(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 25; i++ {
		_, layers := randChain(rng)
		f, err := ChooseGemmResidence(512, layers, d)
		if err != nil {
			continue
		}
		m := 48 // small M for the functional check
		a := tensor.New(tensor.FP16, m, layers[0].K)
		a.FillRandom(int64(i), 0.5)
		ws := make([]*tensor.Tensor, len(layers))
		bs := make([]*tensor.Tensor, len(layers))
		for j, l := range layers {
			ws[j] = tensor.New(tensor.FP16, l.K, l.N)
			ws[j].FillRandom(int64(i*10+j), 0.2)
			bs[j] = tensor.New(tensor.FP16, l.N)
			bs[j].FillRandom(int64(i*100+j), 0.3)
		}
		small := &FusedGemm{M: m, Layers: f.Layers, Kind: f.Kind}
		got := small.Run(a, ws, bs)
		cur := a
		for j, l := range layers {
			cur = cutlass.ReferenceGemm(cur, ws[j], bs[j], l.Epilogue)
		}
		if !tensor.AllClose(got, cur, 2e-2, 2e-3) {
			t.Fatalf("chain %d: fused deviates by %g", i, tensor.MaxAbsDiff(got, cur))
		}
	}
}

// Property: the RF-resident register estimate is always at least the
// plain kernel's (fusion can only add pressure) and SMEM residence
// always needs at least the plain kernel's shared memory.
func TestResourcePressureProperty(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 100; i++ {
		m, layers := randChain(rng)
		for _, kind := range []Residence{RFResident, SMEMResident} {
			ls := retileForResidence(layers, kind)
			f, err := NewFusedGemm(m, ls, kind, d)
			if err != nil {
				continue
			}
			for _, l := range ls {
				if kind == RFResident && f.regsPerThread() < l.Config.RegsPerThread() {
					t.Fatalf("fused regs %d below plain layer's %d", f.regsPerThread(), l.Config.RegsPerThread())
				}
				if f.sharedMemBytes() < l.Config.SharedMemBytes() {
					t.Fatalf("fused smem %d below plain layer's %d", f.sharedMemBytes(), l.Config.SharedMemBytes())
				}
			}
		}
	}
}
