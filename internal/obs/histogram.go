package obs

import (
	"math"
	"sort"
)

// Histogram is a fixed-bucket histogram over float64 observations.
// Buckets are cumulative-upper-bound ("le") style: an observation v
// lands in the first bucket whose bound satisfies v <= bound, with an
// implicit +Inf bucket at the end. Sum and Count are exact; quantiles
// are estimated by linear interpolation inside the covering bucket and
// clamped to the observed [min, max], which makes the single-
// observation and every-value-on-a-boundary cases exact.
//
// Histogram is not goroutine-safe; the serving stack updates it under
// the server mutex.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []int64   // len(bounds)+1; last is the +Inf bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given ascending bucket
// upper bounds. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// DefaultLatencyBuckets covers simulated latencies from 1 microsecond
// to ~67 seconds in powers of four — wide enough for every bench
// workload, narrow enough that interpolated percentiles track the
// sample percentiles on dense data.
func DefaultLatencyBuckets() []float64 {
	bounds := make([]float64, 0, 14)
	for v := 1e-6; v < 100; v *= 4 {
		bounds = append(bounds, v)
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bound
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum reports the exact sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min reports the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Bounds returns the bucket upper bounds (not including +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counts returns the per-bucket counts, the last entry being the +Inf
// bucket.
func (h *Histogram) Counts() []int64 { return append([]int64(nil), h.counts...) }

// Merge adds o's observations into h. Both histograms must share the
// same bucket bounds.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			panic("obs: merging histograms with different bucket layouts")
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.bounds = append([]float64(nil), h.bounds...)
	c.counts = append([]int64(nil), h.counts...)
	return &c
}

// Percentile estimates the p-th percentile (p in [0, 100]) using the
// nearest-rank rule over bucket counts with linear interpolation
// inside the covering bucket. An empty histogram reports 0; a single
// observation reports that observation exactly.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if rank > cum+c {
			cum += c
			continue
		}
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo < h.min {
			lo = h.min
		}
		if hi < lo {
			hi = lo
		}
		est := lo + (hi-lo)*float64(rank-cum)/float64(c)
		return est
	}
	return h.max
}

// NearestRank is the exact sample percentile used by the serving
// layer's bounded latency windows: the smallest value whose rank is at
// least ceil(p/100 * n). xs must be sorted ascending; p is in
// [0, 100]. Empty input reports 0.
func NearestRank(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
