package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func emitSample(t *Tracer) {
	pid := t.RegisterProcess("server")
	sched := t.NewShard()
	w0 := t.NewShard()
	w1 := t.NewShard()
	var wg sync.WaitGroup
	emit := func(sh *Shard, spans []Span) {
		defer wg.Done()
		for _, sp := range spans {
			sp.Proc = pid
			sh.Emit(sp)
		}
	}
	wg.Add(3)
	go emit(sched, []Span{
		{Name: KindPlan, Cat: CatBatch, Track: "scheduler", Start: 0, Args: []Arg{{"bucket", 4}}},
		{Name: KindDispatch, Cat: CatBatch, Track: "scheduler", Start: 0, Args: []Arg{{"worker", 0}}},
		{Name: KindPlan, Cat: CatBatch, Track: "scheduler", Start: 1e-3, Args: []Arg{{"bucket", 2}}},
	})
	go emit(w0, []Span{
		{Name: KindExecute, Cat: CatBatch, Track: "worker 0", Start: 0, Dur: 2e-3},
		{Name: KindRequest, Cat: CatRequest, Track: "req 1", Req: 1, Start: 0, Dur: 2e-3},
	})
	go emit(w1, []Span{
		{Name: KindExecute, Cat: CatBatch, Track: "worker 1", Start: 1e-3, Dur: 2e-3},
		{Name: KindCompile, Cat: CatCompile, Track: "compile", Dur: 5e-2, Args: []Arg{{"kind", "cold"}}},
	})
	wg.Wait()
}

func TestTracerCanonicalOrderDeterministic(t *testing.T) {
	export := func() []byte {
		tr := NewTracer()
		emitSample(tr)
		return tr.ExportJSON()
	}
	a := export()
	for i := 0; i < 10; i++ {
		if b := export(); !bytes.Equal(a, b) {
			t.Fatalf("export differs across identical runs:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestTracerQueryAPI(t *testing.T) {
	tr := NewTracer()
	emitSample(tr)
	if got := tr.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
	if got := len(tr.ByKind(KindPlan)); got != 2 {
		t.Fatalf("ByKind(plan) = %d spans, want 2", got)
	}
	reqs := tr.ByRequest(1, 1)
	if len(reqs) != 1 || reqs[0].Name != KindRequest {
		t.Fatalf("ByRequest = %+v, want one request span", reqs)
	}
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not sorted by start: %v after %v", spans[i].Start, spans[i-1].Start)
		}
	}
}

func TestTracerShardCapacityDrops(t *testing.T) {
	tr := NewTracer()
	tr.shardCap = 4
	sh := tr.NewShard()
	for i := 0; i < 10; i++ {
		sh.Emit(Span{Name: KindExecute, Start: float64(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want cap 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
}

// TestTracerExportSchema validates the Chrome trace-event JSON shape
// that Perfetto expects: a traceEvents array of M metadata and X
// complete events with pid/tid/ts, compile tracks laid out
// sequentially.
func TestTracerExportSchema(t *testing.T) {
	tr := NewTracer()
	emitSample(tr)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(tr.ExportJSON(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			meta++
			if ev["name"] != "process_name" && ev["name"] != "thread_name" {
				t.Fatalf("unexpected metadata event %v", ev)
			}
		case "X":
			complete++
			for _, k := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("complete event missing %q: %v", k, ev)
				}
			}
			if ts := ev["ts"].(float64); ts < 0 {
				t.Fatalf("negative ts: %v", ev)
			}
			if dur := ev["dur"].(float64); dur < 0 {
				t.Fatalf("negative dur: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if meta == 0 || complete != 7 {
		t.Fatalf("got %d metadata and %d complete events, want >0 and 7", meta, complete)
	}
}
