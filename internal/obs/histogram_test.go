package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestHistogramEmptyPercentile(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty histogram p%v = %v, want 0", p, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram stats: count %d sum %v min %v max %v",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	const v = 3.7e-4
	h.Observe(v)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := h.Percentile(p); got != v {
			t.Fatalf("single-observation p%v = %v, want exactly %v", p, got, v)
		}
	}
	if h.Count() != 1 || h.Sum() != v || h.Min() != v || h.Max() != v {
		t.Fatalf("single-observation stats: count %d sum %v min %v max %v",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 4}
	h := NewHistogram(bounds)
	// Observations landing exactly on bucket upper bounds must count
	// into that bucket (le semantics) and report the bound exactly
	// when every observation shares it.
	for i := 0; i < 10; i++ {
		h.Observe(2)
	}
	counts := h.Counts()
	if counts[1] != 10 {
		t.Fatalf("boundary value 2 landed in counts %v, want all in bucket le=2", counts)
	}
	for _, p := range []float64{1, 50, 100} {
		if got := h.Percentile(p); got != 2 {
			t.Fatalf("all-on-boundary p%v = %v, want exactly 2", p, got)
		}
	}
	// Above the last bound goes to the +Inf bucket and the percentile
	// stays within [min, max].
	h.Observe(100)
	if got := h.Counts()[3]; got != 1 {
		t.Fatalf("+Inf bucket count = %d, want 1", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Fatalf("p100 with +Inf observation = %v, want 100", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(DefaultLatencyBuckets())
	b := NewHistogram(DefaultLatencyBuckets())
	a.Observe(1e-5)
	a.Observe(2e-3)
	b.Observe(4e-2)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if got, want := a.Sum(), 1e-5+2e-3+4e-2; math.Abs(got-want) > 1e-15 {
		t.Fatalf("merged sum = %v, want %v", got, want)
	}
	if a.Min() != 1e-5 || a.Max() != 4e-2 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

// TestHistogramNearestRankEquivalence is the satellite gate for
// replacing sort-based quantiles: on dense data the histogram-backed
// percentile must agree with the exact nearest-rank sample percentile
// to within one bucket's width.
func TestHistogramNearestRankEquivalence(t *testing.T) {
	// Fine uniform buckets over the data range.
	const width = 1e-4
	var bounds []float64
	for b := width; b <= 0.1+width; b += width {
		bounds = append(bounds, b)
	}
	h := NewHistogram(bounds)
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := rng.Float64() * 0.1
		xs = append(xs, v)
		h.Observe(v)
	}
	sort.Float64s(xs)
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9} {
		exact := NearestRank(xs, p)
		est := h.Percentile(p)
		if math.Abs(est-exact) > width {
			t.Fatalf("p%v: histogram %v vs nearest-rank %v differ by more than bucket width %v",
				p, est, exact, width)
		}
	}
}

func TestNearestRankMatchesLegacyFormula(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {10, 1}, {50, 5}, {90, 9}, {99, 10}, {100, 10}}
	for _, c := range cases {
		if got := NearestRank(xs, c.p); got != c.want {
			t.Fatalf("NearestRank(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := NearestRank(nil, 50); got != 0 {
		t.Fatalf("NearestRank(empty) = %v, want 0", got)
	}
}

func TestRegistryRenderDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("requests_total", nil, 96)
		r.Counter("requests_total", nil, 4) // accumulates
		r.Gauge("sim_makespan_seconds", nil, 0.25)
		r.Gauge("sim_makespan_seconds", nil, 0.125) // max wins
		h := NewHistogram([]float64{1, 2})
		h.Observe(0.5)
		h.Observe(3)
		r.Histogram("stage_seconds", L("stage", "execute", "priority", "normal"), h)
		r.Histogram("stage_seconds", L("stage", "execute", "priority", "normal"), h)
		return r.Render()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("registry render not deterministic:\n%s\nvs\n%s", a, b)
	}
	want := "requests_total 100\n"
	if !contains(a, want) {
		t.Fatalf("render missing %q:\n%s", want, a)
	}
	if !contains(a, "sim_makespan_seconds 0.25\n") {
		t.Fatalf("gauge did not keep max:\n%s", a)
	}
	if !contains(a, `stage_seconds_count{priority="normal",stage="execute"} 4`) {
		t.Fatalf("histogram rows missing or labels unsorted:\n%s", a)
	}
	if !contains(a, `stage_seconds_bucket{priority="normal",stage="execute",le="+Inf"} 4`) {
		t.Fatalf("+Inf bucket row missing:\n%s", a)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
