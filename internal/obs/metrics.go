package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Labels is an ordered set of label key/value pairs attached to a
// metric row.
type Labels [][2]string

// L is shorthand for building a label set: obs.L("stage", "execute",
// "priority", "high"). It panics on an odd number of arguments.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs: L takes key/value pairs")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, [2]string{kv[i], kv[i+1]})
	}
	return ls
}

func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append(Labels(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	parts := make([]string, len(sorted))
	for i, l := range sorted {
		parts[i] = fmt.Sprintf("%s=%q", l[0], l[1])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metricRow struct {
	name   string
	labels string
	kind   metricKind
	value  float64
	hist   *Histogram
}

// Registry accumulates counters, gauges, and histograms and renders
// them as a sorted text exposition. It is a build-then-render
// structure: the serving layer fills a fresh registry from its locked
// stats on each Snapshot call, so the registry itself needs no
// locking discipline beyond its own mutex-free single-threaded use.
type Registry struct {
	rows map[string]*metricRow
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{rows: make(map[string]*metricRow)}
}

func (r *Registry) row(name string, labels Labels, kind metricKind) *metricRow {
	key := name + labels.render()
	row, ok := r.rows[key]
	if !ok {
		row = &metricRow{name: name, labels: labels.render(), kind: kind}
		r.rows[key] = row
	}
	if row.kind != kind {
		panic("obs: metric " + key + " registered with two kinds")
	}
	return row
}

// Counter adds v to the named counter row.
func (r *Registry) Counter(name string, labels Labels, v float64) {
	r.row(name, labels, kindCounter).value += v
}

// Gauge sets the named gauge row to the maximum of its current value
// and v, so merging the same gauge from several replicas keeps the
// peak (the useful aggregate for makespans and backlogs).
func (r *Registry) Gauge(name string, labels Labels, v float64) {
	row := r.row(name, labels, kindGauge)
	if v > row.value {
		row.value = v
	}
}

// Histogram merges h into the named histogram row. Rows merged under
// the same name and labels must share bucket layouts.
func (r *Registry) Histogram(name string, labels Labels, h *Histogram) {
	row := r.row(name, labels, kindHistogram)
	if row.hist == nil {
		row.hist = NewHistogram(h.Bounds())
	}
	row.hist.Merge(h)
}

func formatMetric(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render returns the text exposition: one `name{labels} value` line
// per counter/gauge row and Prometheus-style `_bucket`/`_sum`/`_count`
// lines per histogram row, all sorted by name then labels, so the
// output is deterministic.
func (r *Registry) Render() string {
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		row := r.rows[k]
		switch row.kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", row.name, row.labels, formatMetric(row.value))
		case kindHistogram:
			h := row.hist
			inner := strings.TrimSuffix(strings.TrimPrefix(row.labels, "{"), "}")
			join := func(le string) string {
				if inner == "" {
					return "{le=" + le + "}"
				}
				return "{" + inner + ",le=" + le + "}"
			}
			var cum int64
			counts := h.Counts()
			bounds := h.Bounds()
			for i, bound := range bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", row.name, join(strconv.Quote(formatMetric(bound))), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", row.name, join(`"+Inf"`), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", row.name, row.labels, formatMetric(h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", row.name, row.labels, h.Count())
		}
	}
	return b.String()
}
